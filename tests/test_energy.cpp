/**
 * @file
 * Tests for the first-order energy model extension.
 */

#include <gtest/gtest.h>

#include "src/sim/energy.hpp"
#include "src/trace/render.hpp"

namespace sms {
namespace {

TEST(Energy, ZeroResultZeroDynamicEnergy)
{
    SimResult r;
    GpuConfig config = GpuConfig::tableI();
    EnergyBreakdown e = estimateEnergy(r, config);
    EXPECT_DOUBLE_EQ(e.rb_dynamic, 0.0);
    EXPECT_DOUBLE_EQ(e.dram, 0.0);
    EXPECT_DOUBLE_EQ(e.rb_static, 0.0); // zero cycles -> zero leakage
    EXPECT_DOUBLE_EQ(e.total(), 0.0);
}

TEST(Energy, ComponentsScaleWithCounters)
{
    SimResult r;
    r.cycles = 1000;
    r.stack.pushes = 100;
    r.stack.pops = 100;
    r.dram.loads = 10;
    GpuConfig config = GpuConfig::tableI();
    EnergyModel model;
    EnergyBreakdown e = estimateEnergy(r, config, model);
    EXPECT_DOUBLE_EQ(e.rb_dynamic, 200.0 * model.rb_entry_pj);
    EXPECT_DOUBLE_EQ(e.dram, 10.0 * model.dram_pj);
    EXPECT_GT(e.rb_static, 0.0);
    EXPECT_GT(e.total(), e.rb_dynamic);
}

TEST(Energy, BiggerRbStacksLeakMore)
{
    SimResult r;
    r.cycles = 100000;
    GpuConfig rb8 = makeGpuConfig(StackConfig::baseline(8));
    GpuConfig rb32 = makeGpuConfig(StackConfig::baseline(32));
    EXPECT_GT(estimateEnergy(r, rb32).rb_static,
              estimateEnergy(r, rb8).rb_static);
}

TEST(Energy, HierarchyOrderingOfPerEventCosts)
{
    // The whole argument rests on register file << shared << L1 <<
    // L2 << DRAM; keep the constants ordered.
    EnergyModel m;
    EXPECT_LT(m.rb_entry_pj, m.shared_pj);
    EXPECT_LT(m.shared_pj, m.l1_pj);
    EXPECT_LT(m.l1_pj, m.l2_pj);
    EXPECT_LT(m.l2_pj, m.dram_pj);
}

TEST(Energy, SmsReducesTotalEnergyOnDeepScene)
{
    RenderParams params;
    params.width = 20;
    params.height = 20;
    auto workload =
        prepareWorkload(SceneId::SHIP, ScaleProfile::Tiny, &params);
    GpuConfig base_cfg = makeGpuConfig(StackConfig::baseline(8));
    GpuConfig sms_cfg = makeGpuConfig(StackConfig::sms());
    SimResult base = runWorkload(*workload, base_cfg);
    SimResult sms = runWorkload(*workload, sms_cfg);
    EnergyBreakdown base_e = estimateEnergy(base, base_cfg);
    EnergyBreakdown sms_e = estimateEnergy(sms, sms_cfg);
    // SMS trades DRAM energy for much cheaper shared-memory energy.
    EXPECT_LT(sms_e.dram, base_e.dram);
    EXPECT_GT(sms_e.shared, 0.0);
    EXPECT_LT(sms_e.total(), base_e.total());
}

} // namespace
} // namespace sms
