/**
 * @file
 * Tests for the cache-directory garbage collector: strict
 * oldest-mtime-first eviction order, byte-budget semantics, dry-run
 * leaving the directory untouched, and non-cache file names never
 * being eligible.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <sys/stat.h>
#include <unistd.h>
#include <utime.h>
#include <vector>

#include "src/serve/cache_gc.hpp"

namespace sms {
namespace {

/** Fresh per-test directory, removed on destruction. */
class TempDir
{
  public:
    TempDir()
        : path_("/tmp/sms_cache_gc_test_" +
                std::to_string(static_cast<long>(::getpid())) + "_" +
                std::to_string(counter_++))
    {
        std::string cmd = "rm -rf '" + path_ + "' && mkdir -p '" +
                          path_ + "'";
        [[maybe_unused]] int rc = std::system(cmd.c_str());
    }
    ~TempDir()
    {
        std::string cmd = "rm -rf '" + path_ + "'";
        [[maybe_unused]] int rc = std::system(cmd.c_str());
    }
    const std::string &path() const { return path_; }

  private:
    static int counter_;
    std::string path_;
};

int TempDir::counter_ = 0;

/** Create a file of @p bytes with mtime @p age_seconds in the past. */
std::string
makeFile(const TempDir &dir, const std::string &name, size_t bytes,
         long age_seconds)
{
    std::string path = dir.path() + "/" + name;
    std::FILE *f = std::fopen(path.c_str(), "wb");
    EXPECT_NE(f, nullptr) << path;
    std::vector<char> fill(bytes, 'x');
    if (bytes) {
        EXPECT_EQ(std::fwrite(fill.data(), 1, bytes, f), bytes);
    }
    std::fclose(f);
    struct utimbuf times{};
    times.actime = ::time(nullptr) - age_seconds;
    times.modtime = ::time(nullptr) - age_seconds;
    EXPECT_EQ(::utime(path.c_str(), &times), 0) << path;
    return path;
}

bool
exists(const std::string &path)
{
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0;
}

TEST(CacheGc, BudgetMetIsNoOp)
{
    TempDir dir;
    std::string a = makeFile(dir, "a.wkld", 100, 300);
    std::string b = makeFile(dir, "b.tape", 100, 200);

    CacheGcOptions options;
    options.max_bytes = 1000;
    CacheGcResult result;
    std::string error;
    ASSERT_TRUE(runCacheGc(dir.path(), options, result, error)) << error;
    EXPECT_EQ(result.scanned_files, 2u);
    EXPECT_EQ(result.scanned_bytes, 200u);
    EXPECT_EQ(result.evicted_files, 0u);
    EXPECT_TRUE(result.evicted.empty());
    EXPECT_TRUE(exists(a));
    EXPECT_TRUE(exists(b));
}

TEST(CacheGc, EvictsOldestFirstUntilUnderBudget)
{
    TempDir dir;
    // Oldest to newest: c.res (400s), a.wkld (300s), b.tape (200s),
    // d.res (100s). 100 bytes each; budget 250 forces out exactly the
    // two oldest.
    std::string c = makeFile(dir, "c.res", 100, 400);
    std::string a = makeFile(dir, "a.wkld", 100, 300);
    std::string b = makeFile(dir, "b.tape", 100, 200);
    std::string d = makeFile(dir, "d.res", 100, 100);

    CacheGcOptions options;
    options.max_bytes = 250;
    CacheGcResult result;
    std::string error;
    ASSERT_TRUE(runCacheGc(dir.path(), options, result, error)) << error;
    EXPECT_EQ(result.scanned_files, 4u);
    EXPECT_EQ(result.scanned_bytes, 400u);
    EXPECT_EQ(result.evicted_files, 2u);
    EXPECT_EQ(result.evicted_bytes, 200u);
    ASSERT_EQ(result.evicted.size(), 2u);
    EXPECT_EQ(result.evicted[0], c);
    EXPECT_EQ(result.evicted[1], a);
    EXPECT_FALSE(exists(c));
    EXPECT_FALSE(exists(a));
    EXPECT_TRUE(exists(b));
    EXPECT_TRUE(exists(d));
}

TEST(CacheGc, MtimeTieBreaksByPath)
{
    TempDir dir;
    std::string b = makeFile(dir, "b.res", 100, 300);
    std::string a = makeFile(dir, "a.res", 100, 300);
    std::string c = makeFile(dir, "c.res", 100, 100);

    CacheGcOptions options;
    options.max_bytes = 250;
    CacheGcResult result;
    std::string error;
    ASSERT_TRUE(runCacheGc(dir.path(), options, result, error)) << error;
    ASSERT_EQ(result.evicted.size(), 1u);
    EXPECT_EQ(result.evicted[0], a); // same mtime: path order decides
    EXPECT_TRUE(exists(b));
    EXPECT_TRUE(exists(c));
}

TEST(CacheGc, DryRunReportsButDeletesNothing)
{
    TempDir dir;
    std::string old_file = makeFile(dir, "old.wkld", 100, 400);
    std::string new_file = makeFile(dir, "new.res", 100, 100);

    CacheGcOptions options;
    options.max_bytes = 100;
    options.dry_run = true;
    CacheGcResult result;
    std::string error;
    ASSERT_TRUE(runCacheGc(dir.path(), options, result, error)) << error;
    EXPECT_EQ(result.evicted_files, 1u);
    ASSERT_EQ(result.evicted.size(), 1u);
    EXPECT_EQ(result.evicted[0], old_file);
    EXPECT_TRUE(exists(old_file));
    EXPECT_TRUE(exists(new_file));
}

TEST(CacheGc, NonCacheNamesAreNeverTouched)
{
    TempDir dir;
    // A zero budget evicts everything eligible — but only cache entry
    // suffixes (.wkld/.tape/.res) and orphaned atomic-write temps
    // (names containing ".tmp.") are eligible.
    std::string keep1 = makeFile(dir, "README.txt", 100, 500);
    std::string keep2 = makeFile(dir, "results.json", 100, 500);
    std::string keep3 = makeFile(dir, "resume", 100, 500); // no dot-res
    std::string gone1 = makeFile(dir, "a.wkld", 100, 400);
    std::string gone2 = makeFile(dir, "a.wkld.tmp.1234.5", 100, 300);

    CacheGcOptions options;
    options.max_bytes = 0;
    CacheGcResult result;
    std::string error;
    ASSERT_TRUE(runCacheGc(dir.path(), options, result, error)) << error;
    EXPECT_EQ(result.scanned_files, 2u);
    EXPECT_EQ(result.evicted_files, 2u);
    EXPECT_TRUE(exists(keep1));
    EXPECT_TRUE(exists(keep2));
    EXPECT_TRUE(exists(keep3));
    EXPECT_FALSE(exists(gone1));
    EXPECT_FALSE(exists(gone2));
}

TEST(CacheGc, MissingDirectoryIsAnError)
{
    CacheGcOptions options;
    options.max_bytes = 100;
    CacheGcResult result;
    std::string error;
    EXPECT_FALSE(runCacheGc("/tmp/sms_cache_gc_test_does_not_exist_xyz",
                            options, result, error));
    EXPECT_FALSE(error.empty());
}

} // namespace
} // namespace sms
