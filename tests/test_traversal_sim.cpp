/**
 * @file
 * Direct tests of the RT-unit pipeline model (TraversalSim) and the
 * GpuConfig plumbing, at a finer grain than the whole-GPU suite.
 */

#include <gtest/gtest.h>

#include "src/bvh/traverse.hpp"
#include "src/sim/traversal_sim.hpp"
#include "src/trace/render.hpp"

namespace sms {
namespace {

/** Six well-separated triangles: a guaranteed two-level BVH. */
Scene
twoTriangleScene()
{
    Scene scene;
    uint16_t mat = scene.addMaterial({});
    for (int i = 0; i < 6; ++i) {
        float x = -5.0f + 2.0f * i;
        float z = 5.0f + 2.0f * i;
        scene.addTriangle(
            Triangle({x - 1, -1, z}, {x + 1, -1, z}, {x, 1, z}), mat);
    }
    return scene;
}

/** Job with one active lane shooting at the first triangle. */
WarpJob
singleLaneJob(const Scene &scene, const WideBvh &bvh)
{
    WarpJob job;
    job.job_id = 0;
    job.warp_id = 0;
    Ray ray({-5, 0, 0}, {0, 0, 1}, 1e-4f);
    job.rays[0] = ray;
    job.active[0] = true;
    HitRecord hit = traverseClosest(scene, bvh, ray);
    job.expected_hit[0] = hit.valid();
    job.expected_t[0] = hit.t;
    job.expected_prim[0] = hit.primitive;
    return job;
}

struct Rig
{
    Scene scene;
    WideBvh bvh;
    GpuConfig config;
    MemorySystem mem;
    SharedMemory shared;

    Rig()
        : scene(twoTriangleScene()), bvh(WideBvh::build(scene)),
          config(GpuConfig::tableI()),
          mem(config.resolvedMemConfig(), config.num_sms),
          shared(config.shared_latency)
    {}
};

TEST(TraversalSim, RunsSingleLaneJobToCompletion)
{
    Rig rig;
    WarpJob job = singleLaneJob(rig.scene, rig.bvh);
    TraversalSim sim(rig.scene, rig.bvh, rig.config, job, 0, 0,
                     0x100000000ull, rig.mem, rig.shared, nullptr);
    ASSERT_FALSE(sim.done());

    Cycle now = 0;
    int guard = 0;
    while (!sim.done()) {
        Cycle op_done = sim.stepFetch(now);
        EXPECT_GE(op_done, now);
        Cycle done = sim.stepStack(op_done);
        EXPECT_GE(done, op_done);
        now = done;
        ASSERT_LT(++guard, 1000) << "traversal did not terminate";
    }
    EXPECT_EQ(sim.mismatches(), 0u);
    EXPECT_GE(sim.counters().steps, 2u); // at least root + a leaf
    EXPECT_GT(sim.counters().box_tests, 0u);
    EXPECT_GT(sim.counters().prim_tests, 0u);
    // Shallow traversal: the 8-entry RB stack never spills.
    EXPECT_EQ(sim.stackStats().rb_spills, 0u);
}

TEST(TraversalSim, InactiveJobCompletesImmediately)
{
    Rig rig;
    WarpJob job;
    job.job_id = 0;
    TraversalSim sim(rig.scene, rig.bvh, rig.config, job, 0, 0,
                     0x100000000ull, rig.mem, rig.shared, nullptr);
    EXPECT_TRUE(sim.done());
    EXPECT_EQ(sim.mismatches(), 0u);
}

TEST(TraversalSim, WrongOracleIsDetected)
{
    // The validation path must actually fire: corrupt the oracle and
    // expect a mismatch to be reported.
    Rig rig;
    WarpJob job = singleLaneJob(rig.scene, rig.bvh);
    job.expected_hit[0] = !job.expected_hit[0];
    TraversalSim sim(rig.scene, rig.bvh, rig.config, job, 0, 0,
                     0x100000000ull, rig.mem, rig.shared, nullptr);
    Cycle now = 0;
    while (!sim.done())
        now = sim.stepStack(sim.stepFetch(now));
    EXPECT_EQ(sim.mismatches(), 1u);
}

TEST(TraversalSim, AnyHitTerminatesEarly)
{
    Rig rig;
    WarpJob closest = singleLaneJob(rig.scene, rig.bvh);
    WarpJob shadow = closest;
    shadow.any_hit = true;
    // An occluded shadow ray along the same path.
    shadow.expected_hit[0] = true;

    auto run_steps = [&](const WarpJob &job) {
        TraversalSim sim(rig.scene, rig.bvh, rig.config, job, 0, 0,
                         0x100000000ull, rig.mem, rig.shared, nullptr);
        Cycle now = 0;
        while (!sim.done())
            now = sim.stepStack(sim.stepFetch(now));
        EXPECT_EQ(sim.mismatches(), 0u);
        return sim.counters().prim_tests;
    };
    uint64_t closest_tests = run_steps(closest);
    uint64_t shadow_tests = run_steps(shadow);
    // The any-hit query can stop at the first accepted hit.
    EXPECT_LE(shadow_tests, closest_tests);
}

TEST(TraversalSim, DepthObserverReceivesRootPush)
{
    class Counter : public DepthObserver
    {
      public:
        void
        onStackAccess(uint32_t, uint32_t depth) override
        {
            ++events;
            if (depth > max_depth)
                max_depth = depth;
        }
        uint32_t events = 0;
        uint32_t max_depth = 0;
    };

    Rig rig;
    WarpJob job = singleLaneJob(rig.scene, rig.bvh);
    Counter obs;
    TraversalSim sim(rig.scene, rig.bvh, rig.config, job, 0, 0,
                     0x100000000ull, rig.mem, rig.shared, &obs);
    Cycle now = 0;
    while (!sim.done())
        now = sim.stepStack(sim.stepFetch(now));
    EXPECT_GT(obs.events, 0u);
    EXPECT_GE(obs.max_depth, 1u);
}

TEST(TraversalSim, FetchTouchesNodeAndPrimitiveTraffic)
{
    Rig rig;
    WarpJob job = singleLaneJob(rig.scene, rig.bvh);
    TraversalSim sim(rig.scene, rig.bvh, rig.config, job, 0, 0,
                     0x100000000ull, rig.mem, rig.shared, nullptr);
    Cycle now = 0;
    while (!sim.done())
        now = sim.stepStack(sim.stepFetch(now));
    EXPECT_GT(rig.mem.l1(0).stats().loads, 0u);
    EXPECT_GT(rig.mem.l1(0).missesByClass(TrafficClass::Node), 0u);
    EXPECT_GT(rig.mem.l1(0).missesByClass(TrafficClass::Primitive), 0u);
}

// ---------------------------------------------------------------------
// GpuConfig
// ---------------------------------------------------------------------

TEST(GpuConfig, TableIDefaults)
{
    GpuConfig config = GpuConfig::tableI();
    EXPECT_EQ(config.num_sms, 8u);
    EXPECT_EQ(config.max_warps_per_rt, 4u);
    EXPECT_EQ(config.unified_bytes, 64u * 1024u);
    EXPECT_EQ(config.mem.l1_latency, 20u);
    EXPECT_EQ(config.mem.l2_latency, 160u);
    EXPECT_EQ(config.mem.l2.ways, 16u);
    EXPECT_FALSE(config.mem.l1.allocate_on_store); // write-around L1
    EXPECT_TRUE(config.stack.name() == "RB_8");
}

TEST(GpuConfig, ResolvedMemConfigAppliesCarveOut)
{
    GpuConfig config = GpuConfig::tableI();
    config.stack = StackConfig::withSh(8, 8);
    MemoryHierarchyConfig resolved = config.resolvedMemConfig();
    EXPECT_EQ(resolved.l1.size_bytes, 56u * 1024u);
    EXPECT_EQ(config.sharedStackBytes(), 8u * 1024u);
}

TEST(GpuConfig, OverrideBeatsCarveOut)
{
    GpuConfig config = GpuConfig::tableI();
    config.stack = StackConfig::withSh(8, 8);
    config.l1_override_bytes = 128 * 1024;
    EXPECT_EQ(config.effectiveL1Bytes(), 128u * 1024u);
}

TEST(GpuConfig, OversizedShStackIsFatal)
{
    GpuConfig config = GpuConfig::tableI();
    config.stack = StackConfig::withSh(8, 64); // 64 KB: nothing left
    EXPECT_EXIT(config.effectiveL1Bytes(), ::testing::ExitedWithCode(1),
                "do not fit");
}

} // namespace
} // namespace sms
