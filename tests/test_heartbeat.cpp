/**
 * @file
 * Tests for the per-shard heartbeat files: write/read round-trip, the
 * torn-write contract (a reader must skip half-written or foreign
 * files, never trust them), directory scans, the completion summary,
 * and the end-to-end configure -> progress notes -> finish flow over
 * the metrics sampler.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/serve/heartbeat.hpp"
#include "src/stats/metrics.hpp"
#include "src/stats/report.hpp"
#include "src/trace/cache_io.hpp"

namespace sms {
namespace {

/** Fresh scratch directory per test. */
std::string
scratchDir(const std::string &name)
{
    std::string dir = ::testing::TempDir() + "hb_" + name;
    std::string cmd = "rm -rf '" + dir + "'";
    EXPECT_EQ(std::system(cmd.c_str()), 0);
    EXPECT_TRUE(ensureDir(dir));
    return dir;
}

HeartbeatInfo
sampleInfo(uint32_t index, uint32_t count)
{
    HeartbeatInfo info;
    info.shard_index = index;
    info.shard_count = count;
    info.pid = 4242;
    info.seq = 17;
    info.wall_seconds = 1.5;
    info.cells_owned = 12;
    info.cells_done = 7;
    info.done = false;
    info.counters["sim.cycles_retired"] = 123456u;
    return info;
}

TEST(Heartbeat, PathLayout)
{
    EXPECT_EQ(heartbeatPath("/tmp/hb", 3), "/tmp/hb/shard-3.hb");
}

TEST(Heartbeat, WriteReadRoundTrip)
{
    std::string dir = scratchDir("roundtrip");
    HeartbeatInfo info = sampleInfo(2, 4);
    std::string error;
    ASSERT_TRUE(writeHeartbeat(dir, info, error)) << error;

    HeartbeatInfo back;
    ASSERT_TRUE(readHeartbeat(heartbeatPath(dir, 2), back, error))
        << error;
    EXPECT_EQ(back.shard_index, 2u);
    EXPECT_EQ(back.shard_count, 4u);
    EXPECT_EQ(back.pid, 4242);
    EXPECT_EQ(back.seq, 17u);
    EXPECT_DOUBLE_EQ(back.wall_seconds, 1.5);
    EXPECT_EQ(back.cells_owned, 12u);
    EXPECT_EQ(back.cells_done, 7u);
    EXPECT_FALSE(back.done);
    EXPECT_EQ(back.counters.numberOr("sim.cycles_retired", 0.0),
              123456.0);
    EXPECT_DOUBLE_EQ(back.progress(), 7.0 / 12.0);
}

TEST(Heartbeat, ReaderRejectsTornAndForeignFiles)
{
    std::string dir = scratchDir("torn");
    HeartbeatInfo info;
    std::string error;

    // A torn write: valid prefix of a real document, cut mid-JSON.
    {
        std::ofstream torn(heartbeatPath(dir, 1));
        torn << "{\"schema\": \"sms-heartbeat-1\", \"shard\": {\"ind";
    }
    EXPECT_FALSE(readHeartbeat(heartbeatPath(dir, 1), info, error));
    EXPECT_NE(error.find("torn or invalid"), std::string::npos);

    // Valid JSON of some other schema.
    {
        std::ofstream foreign(heartbeatPath(dir, 2));
        foreign << "{\"schema\": \"sms-bench-1\"}\n";
    }
    EXPECT_FALSE(readHeartbeat(heartbeatPath(dir, 2), info, error));
    EXPECT_NE(error.find("schema"), std::string::npos);

    // Out-of-range shard identity.
    {
        std::ofstream bad(heartbeatPath(dir, 3));
        bad << "{\"schema\": \"sms-heartbeat-1\", \"shard\": "
               "{\"index\": 5, \"count\": 2}}\n";
    }
    EXPECT_FALSE(readHeartbeat(heartbeatPath(dir, 3), info, error));

    EXPECT_FALSE(readHeartbeat(dir + "/shard-9.hb", info, error));
}

TEST(Heartbeat, DirectoryScanSkipsTornAndTemporaries)
{
    std::string dir = scratchDir("scan");
    std::string error;
    ASSERT_TRUE(writeHeartbeat(dir, sampleInfo(2, 3), error)) << error;
    ASSERT_TRUE(writeHeartbeat(dir, sampleInfo(1, 3), error)) << error;

    // A torn heartbeat is counted as skipped; an atomic-write
    // temporary (in-flight rename) is ignored without counting.
    {
        std::ofstream torn(heartbeatPath(dir, 3));
        torn << "{\"schema\": \"sms-heart";
    }
    {
        std::ofstream tmp(dir + "/shard-1.hb.tmp.123.7");
        tmp << "half-written";
    }
    {
        std::ofstream other(dir + "/notes.txt");
        other << "not a heartbeat";
    }

    std::vector<HeartbeatView> views;
    size_t skipped = 0;
    ASSERT_TRUE(readHeartbeatDir(dir, views, skipped, error)) << error;
    ASSERT_EQ(views.size(), 2u);
    EXPECT_EQ(skipped, 1u);
    // Sorted by shard index.
    EXPECT_EQ(views[0].info.shard_index, 1u);
    EXPECT_EQ(views[1].info.shard_index, 2u);
    EXPECT_GE(views[0].age_seconds, 0.0);

    std::vector<HeartbeatView> none;
    EXPECT_FALSE(
        readHeartbeatDir(dir + "/missing", none, skipped, error));
}

TEST(Heartbeat, SummaryTracksCompleteness)
{
    std::string dir = scratchDir("summary");
    std::string error;
    HeartbeatInfo a = sampleInfo(1, 2);
    a.cells_done = a.cells_owned;
    a.done = true;
    HeartbeatInfo b = sampleInfo(2, 2);
    ASSERT_TRUE(writeHeartbeat(dir, a, error)) << error;
    ASSERT_TRUE(writeHeartbeat(dir, b, error)) << error;

    JsonValue summary = heartbeatSummaryJson(dir);
    ASSERT_TRUE(summary.isObject());
    const JsonValue *shards = summary.find("shards");
    ASSERT_TRUE(shards && shards->isArray());
    EXPECT_EQ(shards->size(), 2u);
    const JsonValue *complete = summary.find("complete");
    ASSERT_TRUE(complete && complete->isBool());
    EXPECT_FALSE(complete->asBool()); // shard 2 is not done

    b.cells_done = b.cells_owned;
    b.done = true;
    ASSERT_TRUE(writeHeartbeat(dir, b, error)) << error;
    summary = heartbeatSummaryJson(dir);
    ASSERT_TRUE(summary.isObject());
    EXPECT_TRUE(summary.find("complete")->asBool());

    // No readable heartbeats -> Null (callers omit the block).
    EXPECT_TRUE(heartbeatSummaryJson(dir + "/missing").isNull());
}

TEST(Heartbeat, EndToEndConfigureProgressFinish)
{
    std::string dir = scratchDir("endtoend");
    EXPECT_FALSE(heartbeatActive());
    heartbeatConfigure(dir, 1, 1);
    EXPECT_TRUE(heartbeatActive());
    EXPECT_TRUE(metricsOn()); // heartbeats ride the metrics sampler
    EXPECT_EQ(heartbeatDir(), dir);

    heartbeatNoteCellsOwned(3);
    heartbeatNoteCellDone();
    heartbeatNoteCellDone();
    heartbeatNoteCellDone();
    heartbeatFinish(); // synchronous final write

    EXPECT_GE(heartbeatWriteCount(), 1u);
    HeartbeatInfo info;
    std::string error;
    ASSERT_TRUE(readHeartbeat(heartbeatPath(dir, 1), info, error))
        << error;
    EXPECT_TRUE(info.done);
    EXPECT_EQ(info.cells_owned, 3u);
    EXPECT_EQ(info.cells_done, 3u);
    EXPECT_DOUBLE_EQ(info.progress(), 1.0);

    JsonValue summary = heartbeatSummaryJson(dir);
    ASSERT_TRUE(summary.isObject());
    EXPECT_TRUE(summary.find("complete")->asBool());
}

} // namespace
} // namespace sms
