/**
 * @file
 * Tests for the assembled global-memory hierarchy: latency tiers,
 * write-through behaviour, port arbitration and off-chip accounting.
 */

#include <gtest/gtest.h>

#include "src/memory/memory_system.hpp"

namespace sms {
namespace {

MemoryHierarchyConfig
smallConfig()
{
    MemoryHierarchyConfig config;
    config.l1 = {4 * kLineBytes, 0, kLineBytes, false};
    config.l1_latency = 20;
    config.l1_ports = 4;
    config.l2 = {64 * kLineBytes, 4, kLineBytes};
    config.l2_latency = 160;
    config.l2_ports = 4;
    config.dram = {250, 4};
    return config;
}

TEST(MemorySystem, LatencyTiers)
{
    MemorySystem mem(smallConfig(), 1);
    // Cold: L1 miss, L2 miss -> DRAM.
    Cycle cold = mem.accessLine(0, 0, false, TrafficClass::Node, 0);
    EXPECT_GE(cold, 250u);
    // Warm: L1 hit.
    Cycle warm = mem.accessLine(0, 0, false, TrafficClass::Node, 1000);
    EXPECT_EQ(warm, 1000u + 20u);
}

TEST(MemorySystem, L2HitIsMidTier)
{
    MemorySystem mem(smallConfig(), 1);
    // Fill L1 with 4 lines; the 5th evicts line 0 from L1 but it stays
    // in the L2.
    for (Addr a = 0; a < 5; ++a)
        mem.accessLine(0, a * kLineBytes, false, TrafficClass::Node,
                       1000 + a);
    Cycle l2_hit =
        mem.accessLine(0, 0, false, TrafficClass::Node, 5000);
    EXPECT_EQ(l2_hit, 5000u + 160u);
}

TEST(MemorySystem, PerSmL1sAreIndependent)
{
    MemorySystem mem(smallConfig(), 2);
    mem.accessLine(0, 0, false, TrafficClass::Node, 0);
    EXPECT_EQ(mem.l1(0).stats().loads, 1u);
    EXPECT_EQ(mem.l1(1).stats().loads, 0u);
    // SM 1 misses its own L1 but hits the shared L2.
    Cycle c = mem.accessLine(1, 0, false, TrafficClass::Node, 1000);
    EXPECT_EQ(c, 1000u + 160u);
}

TEST(MemorySystem, StoreMissWritesAroundL1)
{
    MemorySystem mem(smallConfig(), 1);
    mem.accessLine(0, 0, true, TrafficClass::Stack, 0);
    // No-write-allocate: the line is not in L1, but it IS in the L2.
    EXPECT_FALSE(mem.l1(0).probe(0));
    EXPECT_TRUE(mem.l2().probe(0));
}

TEST(MemorySystem, WriteThroughKeepsL2Current)
{
    MemorySystem mem(smallConfig(), 1);
    mem.accessLine(0, 0, false, TrafficClass::Stack, 0); // load/fill
    uint64_t l2_before = mem.l2().stats().stores;
    mem.accessLine(0, 0, true, TrafficClass::Stack, 100); // L1 store hit
    EXPECT_EQ(mem.l2().stats().stores, l2_before + 1);
}

TEST(MemorySystem, OffchipCountsDramAccesses)
{
    MemorySystem mem(smallConfig(), 1);
    EXPECT_EQ(mem.offchipAccesses(), 0u);
    mem.accessLine(0, 0, false, TrafficClass::Node, 0);
    EXPECT_EQ(mem.offchipAccesses(), 1u);
    mem.accessLine(0, 0, false, TrafficClass::Node, 1000); // L1 hit
    EXPECT_EQ(mem.offchipAccesses(), 1u);
}

TEST(MemorySystem, AccessRangeCoversAllLines)
{
    MemorySystem mem(smallConfig(), 1);
    // A 176-byte node fetch starting mid-line touches 3 lines.
    mem.accessRange(0, 100, 176, false, TrafficClass::Node, 0);
    EXPECT_EQ(mem.l1(0).stats().loads, 3u);
}

TEST(MemorySystem, L1PortWidthThrottlesBursts)
{
    MemoryHierarchyConfig config = smallConfig();
    config.l1_ports = 1;
    MemorySystem wide(smallConfig(), 1);
    MemorySystem narrow(config, 1);
    // Warm both so every access is an L1 hit.
    for (Addr a = 0; a < 4; ++a) {
        wide.accessLine(0, a * kLineBytes, false, TrafficClass::Node, 0);
        narrow.accessLine(0, a * kLineBytes, false, TrafficClass::Node,
                          0);
    }
    // A 4-line burst at the same cycle: the narrow port serializes.
    Cycle wide_done = 0, narrow_done = 0;
    for (Addr a = 0; a < 4; ++a) {
        wide_done = std::max(
            wide_done, wide.accessLine(0, a * kLineBytes, false,
                                       TrafficClass::Node, 10000));
        narrow_done = std::max(
            narrow_done, narrow.accessLine(0, a * kLineBytes, false,
                                           TrafficClass::Node, 10000));
    }
    EXPECT_LT(wide_done, narrow_done);
}

TEST(MemorySystem, DirtyL2EvictionReachesDram)
{
    MemoryHierarchyConfig config = smallConfig();
    config.l2 = {4 * kLineBytes, 0, kLineBytes}; // tiny L2
    MemorySystem mem(config, 1);
    // Dirty a line in the L2 via a store, then stream loads over it.
    mem.accessLine(0, 0, true, TrafficClass::Stack, 0);
    uint64_t dram_before = mem.dram().stats().accesses();
    for (Addr a = 1; a <= 4; ++a)
        mem.accessLine(0, a * kLineBytes, false, TrafficClass::Node,
                       100 * a);
    // The dirty line's writeback shows up as a DRAM store.
    EXPECT_GT(mem.dram().stats().stores, 0u);
    EXPECT_GT(mem.dram().stats().accesses(), dram_before);
}

} // namespace
} // namespace sms
