/**
 * @file
 * Ray-stream reorder tests: sort-key structure, determinism, ray
 * multiset preservation, the barrier dependency structure of the
 * repacked stream, and end-to-end simulation of reordered (and
 * quantized) traversal variants against the functional oracle,
 * including tape-replay counter identity.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "src/bvh/node_layout.hpp"
#include "src/scene/registry.hpp"
#include "src/sim/gpu_sim.hpp"
#include "src/sim/ray_reorder.hpp"
#include "src/sim/traversal_tape.hpp"
#include "src/trace/render.hpp"

namespace sms {
namespace {

constexpr uint64_t kMortonMask = (1ull << 30) - 1;

using RayFacts = std::tuple<float, float, float, float, float, float,
                            uint32_t, bool, float, uint32_t, bool>;

/** Every active ray of @p jobs with its oracle values, sorted. */
std::vector<RayFacts>
rayMultiset(const WarpJobList &jobs)
{
    std::vector<RayFacts> out;
    for (const WarpJob &job : jobs)
        for (uint32_t l = 0; l < kWarpSize; ++l)
            if (job.active[l])
                out.emplace_back(job.rays[l].origin.x,
                                 job.rays[l].origin.y,
                                 job.rays[l].origin.z, job.rays[l].dir.x,
                                 job.rays[l].dir.y, job.rays[l].dir.z,
                                 job.segment, job.any_hit,
                                 job.expected_t[l], job.expected_prim[l],
                                 job.expected_hit[l]);
    std::sort(out.begin(), out.end());
    return out;
}

TEST(RayOrderKey, OctantOccupiesTopBitsMortonTheRest)
{
    Aabb bounds({0, 0, 0}, {100, 100, 100});
    Ray at_lo({0, 0, 0}, {1, 1, 1});
    Ray at_hi({100, 100, 100}, {1, 1, 1});
    // Same octant, extreme origins: morton spans [0, 2^30).
    EXPECT_EQ(rayOrderKey(at_lo, bounds) & kMortonMask, 0u);
    EXPECT_EQ(rayOrderKey(at_hi, bounds) & kMortonMask, kMortonMask);
    EXPECT_EQ(rayOrderKey(at_lo, bounds) >> 30,
              rayOrderKey(at_hi, bounds) >> 30);
    // Flipping one direction sign changes the octant (top bits).
    Ray flipped({0, 0, 0}, {-1, 1, 1});
    EXPECT_NE(rayOrderKey(at_lo, bounds) >> 30,
              rayOrderKey(flipped, bounds) >> 30);
    // All-positive directions sort before all-negative ones.
    Ray negative({0, 0, 0}, {-1, -1, -1});
    EXPECT_LT(rayOrderKey(at_lo, bounds),
              rayOrderKey(negative, bounds));
}

TEST(RayOrderKey, MortonIsMonotonicAlongTheDiagonal)
{
    Aabb bounds({0, 0, 0}, {64, 64, 64});
    uint64_t prev = 0;
    for (int i = 0; i < 8; ++i) {
        float v = static_cast<float>(i * 8);
        Ray ray({v, v, v}, {1, 1, 1});
        uint64_t key = rayOrderKey(ray, bounds) & kMortonMask;
        if (i > 0)
            EXPECT_GT(key, prev);
        prev = key;
    }
}

class RayReorderWorkload : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        workload_ = prepareWorkload(SceneId::BUNNY, ScaleProfile::Tiny);
    }
    static void TearDownTestSuite() { workload_.reset(); }

    static std::shared_ptr<Workload> workload_;
};

std::shared_ptr<Workload> RayReorderWorkload::workload_;

TEST_F(RayReorderWorkload, NoneModeIsIdentity)
{
    const WarpJobList &jobs = workload_->render.jobs;
    WarpJobList same =
        reorderJobs(jobs, workload_->bvh, RayOrderConfig::none());
    ASSERT_EQ(same.size(), jobs.size());
    for (size_t j = 0; j < jobs.size(); ++j) {
        EXPECT_EQ(same[j].job_id, jobs[j].job_id);
        EXPECT_EQ(same[j].parent, jobs[j].parent);
        EXPECT_EQ(same[j].barrier, jobs[j].barrier);
    }
}

TEST_F(RayReorderWorkload, ReorderPreservesTheRayMultiset)
{
    const WarpJobList &jobs = workload_->render.jobs;
    WarpJobList reordered = reorderJobs(jobs, workload_->bvh,
                                        RayOrderConfig::octantMorton());
    EXPECT_EQ(rayMultiset(reordered), rayMultiset(jobs));
}

TEST_F(RayReorderWorkload, ReorderIsDeterministic)
{
    const WarpJobList &jobs = workload_->render.jobs;
    WarpJobList a = reorderJobs(jobs, workload_->bvh,
                                RayOrderConfig::octantMorton());
    WarpJobList b = reorderJobs(jobs, workload_->bvh,
                                RayOrderConfig::octantMorton());
    ASSERT_EQ(a.size(), b.size());
    for (size_t j = 0; j < a.size(); ++j) {
        EXPECT_EQ(a[j].barrier, b[j].barrier);
        EXPECT_EQ(a[j].segment, b[j].segment);
        EXPECT_EQ(a[j].active, b[j].active);
        for (uint32_t l = 0; l < kWarpSize; ++l) {
            if (!a[j].active[l])
                continue;
            EXPECT_EQ(a[j].rays[l].origin.x, b[j].rays[l].origin.x);
            EXPECT_EQ(a[j].expected_prim[l], b[j].expected_prim[l]);
        }
    }
}

TEST_F(RayReorderWorkload, BarrierStructureReplacesParentEdges)
{
    const WarpJobList &jobs = workload_->render.jobs;
    WarpJobList reordered = reorderJobs(jobs, workload_->bvh,
                                        RayOrderConfig::octantMorton());
    ASSERT_FALSE(reordered.empty());
    int32_t prev_barrier = -1;
    bool saw_barrier = false;
    for (size_t j = 0; j < reordered.size(); ++j) {
        const WarpJob &job = reordered[j];
        EXPECT_EQ(job.job_id, static_cast<uint32_t>(j));
        EXPECT_EQ(job.parent, -1);
        // A barrier always points at an earlier job and never moves
        // backwards across the stream (batches are emitted in order).
        EXPECT_LT(job.barrier, static_cast<int32_t>(j));
        EXPECT_GE(job.barrier, prev_barrier);
        prev_barrier = job.barrier;
        if (job.barrier >= 0)
            saw_barrier = true;
    }
    // The bunny workload traces secondary rays, so at least one later
    // wavefront batch must carry a real barrier.
    EXPECT_TRUE(saw_barrier);
    // Jobs within one batch share segment/any_hit with their batch.
    for (size_t j = 1; j < reordered.size(); ++j)
        if (reordered[j].barrier == reordered[j - 1].barrier)
            EXPECT_EQ(reordered[j].segment, reordered[j - 1].segment);
}

TEST_F(RayReorderWorkload, SimulatedVariantsMatchTheOracle)
{
    SimResult base =
        runWorkload(*workload_, makeGpuConfig(StackConfig::sms()));
    EXPECT_EQ(base.mismatches, 0u);

    // Reordered, quantized, and combined variants all run the full
    // timing simulation; runWorkload() itself asserts zero oracle
    // mismatches, and the ray population must be unchanged.
    GpuConfig reorder = makeGpuConfig(StackConfig::sms());
    reorder.ray_order = RayOrderConfig::octantMorton();
    SimResult r = runWorkload(*workload_, reorder);
    EXPECT_EQ(r.mismatches, 0u);
    EXPECT_EQ(r.rays, base.rays);

    GpuConfig quantized = makeGpuConfig(StackConfig::sms());
    quantized.node_layout = NodeLayoutConfig::quantized(8);
    SimResult q = runWorkload(*workload_, quantized);
    EXPECT_EQ(q.mismatches, 0u);
    EXPECT_EQ(q.rays, base.rays);
    // Inflated boxes can only add node visits, never remove them.
    EXPECT_GE(q.ops.node_visits, base.ops.node_visits);

    GpuConfig both = makeGpuConfig(StackConfig::sms());
    both.node_layout = NodeLayoutConfig::quantized(8);
    both.ray_order = RayOrderConfig::octantMorton();
    SimResult qr = runWorkload(*workload_, both);
    EXPECT_EQ(qr.mismatches, 0u);
    EXPECT_EQ(qr.rays, base.rays);
}

TEST_F(RayReorderWorkload, VariantTapeReplayIsCounterIdentical)
{
    GpuConfig config = makeGpuConfig(StackConfig::sms());
    config.node_layout = NodeLayoutConfig::quantized(8);
    config.ray_order = RayOrderConfig::octantMorton();

    TraversalTape tape;
    SimOptions record;
    record.record_tape = &tape;
    SimResult a = runWorkload(*workload_, config, record);

    SimOptions replay;
    replay.replay_tape = &tape;
    SimResult b = runWorkload(*workload_, config, replay);

    EXPECT_EQ(b.cycles, a.cycles);
    EXPECT_EQ(b.instructions, a.instructions);
    EXPECT_EQ(b.offchip_accesses, a.offchip_accesses);
    EXPECT_EQ(b.ops.node_visits, a.ops.node_visits);
    EXPECT_EQ(b.ops.prim_tests, a.ops.prim_tests);
    for (int cls = 0; cls < kTrafficClassCount; ++cls) {
        EXPECT_EQ(b.l1_class_misses[cls], a.l1_class_misses[cls]);
        EXPECT_EQ(b.l2_class_misses[cls], a.l2_class_misses[cls]);
    }
}

} // namespace
} // namespace sms
