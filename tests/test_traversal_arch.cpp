/**
 * @file
 * Competing-traversal-architecture tests: stackless parent-link
 * structure, bit-identical differential traversal against the stack
 * reference (closest and any-hit, randomized scenes), the ray-path
 * predictor's hash/schedule semantics, end-to-end simulation of both
 * architectures against the functional oracle (zero stack traffic for
 * stackless, predictor-table traffic for predicted, the stall.arch.*
 * accounting leaves, zero-epsilon conservation), tape record/replay
 * counter identity, and variant/result-cache digest distinctness.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/bvh/stackless.hpp"
#include "src/bvh/traverse.hpp"
#include "src/bvh/wide_bvh.hpp"
#include "src/scene/registry.hpp"
#include "src/serve/result_cache.hpp"
#include "src/sim/gpu_sim.hpp"
#include "src/sim/ray_predictor.hpp"
#include "src/sim/traversal_tape.hpp"
#include "src/trace/render.hpp"
#include "src/util/rng.hpp"

namespace sms {
namespace {

Scene
randomSoup(uint32_t count, uint64_t seed)
{
    Scene scene;
    uint16_t mat = scene.addMaterial({});
    Pcg32 rng(seed);
    for (uint32_t i = 0; i < count; ++i) {
        Vec3 c{rng.nextRange(-50, 50), rng.nextRange(-50, 50),
               rng.nextRange(-50, 50)};
        auto jitter = [&]() {
            return Vec3{rng.nextRange(-2.0f, 2.0f),
                        rng.nextRange(-2.0f, 2.0f),
                        rng.nextRange(-2.0f, 2.0f)};
        };
        scene.addTriangle(
            Triangle(c + jitter(), c + jitter(), c + jitter()), mat);
    }
    for (uint32_t i = 0; i < count / 8 + 1; ++i)
        scene.addSphere(Sphere({rng.nextRange(-50, 50),
                                rng.nextRange(-50, 50),
                                rng.nextRange(-50, 50)},
                               rng.nextRange(0.3f, 3.0f)),
                        mat);
    return scene;
}

Ray
randomRay(Pcg32 &rng)
{
    Vec3 dir;
    do {
        dir = Vec3{rng.nextRange(-1, 1), rng.nextRange(-1, 1),
                   rng.nextRange(-1, 1)};
    } while (lengthSquared(dir) < 1e-4f);
    return Ray({rng.nextRange(-60, 60), rng.nextRange(-60, 60),
                rng.nextRange(-60, 60)},
               normalize(dir), 1e-4f);
}

// ---------------------------------------------------------------------
// Architecture configuration arithmetic
// ---------------------------------------------------------------------

TEST(TraversalArchConfig, NamesAndEquality)
{
    EXPECT_FALSE(TraversalArchConfig::stack().active());
    EXPECT_TRUE(TraversalArchConfig::stackless().active());
    EXPECT_TRUE(TraversalArchConfig::predicted().active());
    EXPECT_STREQ(TraversalArchConfig::stack().name(), "stack");
    EXPECT_STREQ(TraversalArchConfig::stackless().name(), "sl");
    EXPECT_STREQ(TraversalArchConfig::predicted().name(), "pred");

    EXPECT_EQ(TraversalArchConfig::stackless(),
              TraversalArchConfig::stackless());
    EXPECT_NE(TraversalArchConfig::stack(),
              TraversalArchConfig::stackless());
    // Predictor parameters participate in equality only when the
    // predictor is selected.
    TraversalArchConfig a = TraversalArchConfig::predicted();
    TraversalArchConfig b = TraversalArchConfig::predicted();
    b.predictor_entries_log2 = 10;
    EXPECT_NE(a, b);
    TraversalArchConfig c = TraversalArchConfig::stackless();
    TraversalArchConfig d = TraversalArchConfig::stackless();
    d.predictor_entries_log2 = 10;
    EXPECT_EQ(c, d);
}

TEST(TraversalArchConfig, VariantDigestsAreDistinct)
{
    GpuConfig base = makeGpuConfig(StackConfig::sms());
    GpuConfig sl = base;
    sl.traversal_arch = TraversalArchConfig::stackless();
    GpuConfig pred = base;
    pred.traversal_arch = TraversalArchConfig::predicted();
    GpuConfig pred_small = pred;
    pred_small.traversal_arch.predictor_entries_log2 = 8;

    EXPECT_EQ(base.variant().digest(), 0u);
    std::set<uint64_t> digests{sl.variant().digest(),
                               pred.variant().digest(),
                               pred_small.variant().digest()};
    EXPECT_EQ(digests.size(), 3u);
    EXPECT_EQ(digests.count(0), 0u);

    // The architecture also keys the result cache.
    std::set<uint64_t> cfg{gpuConfigDigest(base), gpuConfigDigest(sl),
                           gpuConfigDigest(pred),
                           gpuConfigDigest(pred_small)};
    EXPECT_EQ(cfg.size(), 4u);

    // And the display tag names it.
    EXPECT_NE(sl.variant().tag().find("sl"), std::string::npos);
    EXPECT_NE(pred.variant().tag().find("pred"), std::string::npos);
}

// ---------------------------------------------------------------------
// Parent links
// ---------------------------------------------------------------------

TEST(StacklessLinks, ParentSlotInverseOfChildEdges)
{
    Scene scene = randomSoup(400, 17);
    WideBvh bvh = WideBvh::build(scene);
    StacklessLinks links = StacklessLinks::build(bvh);
    ASSERT_EQ(links.parent.size(), bvh.nodes().size());
    ASSERT_EQ(links.slot.size(), bvh.nodes().size());

    // Every interior child edge has a matching parent/slot entry.
    for (size_t n = 0; n < bvh.nodes().size(); ++n) {
        const WideNode &node = bvh.nodes()[n];
        for (uint8_t c = 0; c < node.child_count; ++c) {
            if (!node.children[c].isInternal())
                continue;
            uint32_t child = node.children[c].nodeIndex();
            EXPECT_EQ(links.parent[child], static_cast<uint32_t>(n));
            EXPECT_EQ(links.slot[child], c);
        }
    }
    // Exactly one root.
    size_t roots = 0;
    for (uint32_t p : links.parent)
        if (p == StacklessLinks::kNoParent)
            ++roots;
    EXPECT_EQ(roots, 1u);
    if (bvh.rootRef().isInternal())
        EXPECT_EQ(links.parent[bvh.rootRef().nodeIndex()],
                  StacklessLinks::kNoParent);
}

// ---------------------------------------------------------------------
// Differential traversal (functional reference)
// ---------------------------------------------------------------------

TEST(StacklessTraversal, ClosestHitBitIdenticalToStack)
{
    for (uint64_t seed : {3u, 19u, 71u}) {
        Scene scene = randomSoup(500, seed);
        WideBvh bvh = WideBvh::build(scene);
        StacklessLinks links = StacklessLinks::build(bvh);
        Pcg32 rng(seed * 7919 + 1);
        for (int r = 0; r < 400; ++r) {
            Ray ray = randomRay(rng);
            TraversalCounters sc{}, lc{};
            HitRecord a = traverseClosest(scene, bvh, ray, &sc);
            HitRecord b =
                traverseClosestStackless(scene, bvh, links, ray, &lc);
            ASSERT_EQ(b.valid(), a.valid())
                << "seed " << seed << " ray " << r;
            if (a.valid()) {
                // Bit-identical, including the winning primitive on
                // equal-t ties: a subtree the stackless re-test culls
                // under a tightened tMax could never have updated the
                // hit (its entry distance already exceeds tMax).
                EXPECT_EQ(b.t, a.t) << "seed " << seed << " ray " << r;
                EXPECT_EQ(b.primitive, a.primitive)
                    << "seed " << seed << " ray " << r;
                EXPECT_EQ(b.kind, a.kind);
            }
            // The stack machine visits every leaf it pushed even after
            // tMax tightened past it; the stackless re-test culls such
            // leaves on backtrack, so it does at most the stack
            // machine's leaf work — with zero stack operations.
            EXPECT_LE(lc.leaf_visits, sc.leaf_visits);
            EXPECT_LE(lc.prim_tests, sc.prim_tests);
            EXPECT_EQ(lc.stack_pushes, 0u);
            EXPECT_EQ(lc.stack_pops, 0u);
        }
    }
}

TEST(StacklessTraversal, AnyHitMatchesStack)
{
    Scene scene = randomSoup(500, 23);
    WideBvh bvh = WideBvh::build(scene);
    StacklessLinks links = StacklessLinks::build(bvh);
    Pcg32 rng(555);
    size_t hits = 0;
    for (int r = 0; r < 400; ++r) {
        Ray ray = randomRay(rng);
        bool a = traverseAnyHit(scene, bvh, ray);
        bool b = traverseAnyHitStackless(scene, bvh, links, ray);
        EXPECT_EQ(b, a) << "ray " << r;
        hits += a;
    }
    // The soup is dense enough that both outcomes occur.
    EXPECT_GT(hits, 0u);
    EXPECT_LT(hits, 400u);
}

// ---------------------------------------------------------------------
// Predictor hash and schedule
// ---------------------------------------------------------------------

TEST(RayPredictor, HashIsDeterministicAndParamSensitive)
{
    TraversalArchConfig arch = TraversalArchConfig::predicted();
    Ray a({1.0f, 2.0f, 3.0f}, normalize(Vec3{1, 1, 0}));
    Ray b({1.0f, 2.0f, 3.0f}, normalize(Vec3{1, 1, 0}));
    EXPECT_EQ(rayPredictorHash(a, arch), rayPredictorHash(b, arch));

    Ray far_origin({40.0f, 2.0f, 3.0f}, normalize(Vec3{1, 1, 0}));
    EXPECT_NE(rayPredictorHash(a, arch),
              rayPredictorHash(far_origin, arch));
    Ray flipped({1.0f, 2.0f, 3.0f}, normalize(Vec3{-1, 1, 0}));
    EXPECT_NE(rayPredictorHash(a, arch), rayPredictorHash(flipped, arch));

    // Coarser quantization folds nearby rays onto one slot.
    TraversalArchConfig coarse = arch;
    coarse.predictor_origin_bits = 0;
    coarse.predictor_dir_bits = 0;
    Ray nudged({1.0f + 1e-6f, 2.0f, 3.0f}, normalize(Vec3{1, 1, 0}));
    EXPECT_EQ(rayPredictorHash(a, coarse),
              rayPredictorHash(nudged, coarse));
}

TEST(RayPredictor, ScheduleTrainsInJobOrder)
{
    Scene scene = randomSoup(300, 31);
    WideBvh bvh = WideBvh::build(scene);
    TraversalArchConfig arch = TraversalArchConfig::predicted();

    // Two closest-hit jobs carrying the same ray in lane 0: the first
    // probes a cold table, the second must see the leaf the first
    // trained.
    Pcg32 rng(99);
    Ray ray;
    HitRecord oracle;
    do {
        ray = randomRay(rng);
        oracle = traverseClosest(scene, bvh, ray);
    } while (!oracle.valid());

    WarpJobList jobs(2);
    for (uint32_t j = 0; j < 2; ++j) {
        jobs[j].job_id = j;
        jobs[j].warp_id = j;
        jobs[j].any_hit = false;
        jobs[j].active[0] = true;
        jobs[j].rays[0] = ray;
        jobs[j].expected_hit[0] = true;
        jobs[j].expected_t[0] = oracle.t;
        jobs[j].expected_prim[0] = oracle.primitive;
    }

    PredictorSchedule schedule = buildPredictorSchedule(jobs, bvh, arch);
    ASSERT_EQ(schedule.jobs.size(), 2u);
    // Cold probe: nothing predicted, but the first job trains lane 0.
    EXPECT_EQ(schedule.jobs[0].predicted[0], 0u);
    EXPECT_EQ(schedule.jobs[0].write_mask & 1u, 1u);
    // Warm probe: a valid leaf containing the expected primitive.
    ChildRef predicted =
        ChildRef::fromBits(schedule.jobs[1].predicted[0]);
    ASSERT_TRUE(predicted.isLeaf());
    bool covers = false;
    for (uint32_t i = 0; i < predicted.primCount(); ++i)
        covers |= bvh.primIndices()[predicted.primOffset() + i] ==
                  oracle.primitive;
    EXPECT_TRUE(covers);
    // Identical ray, identical table state: both probe the same entry.
    EXPECT_EQ(schedule.jobs[1].entry[0], schedule.jobs[0].entry[0]);

    // An any-hit job never trains the table.
    jobs[0].any_hit = true;
    PredictorSchedule shadow = buildPredictorSchedule(jobs, bvh, arch);
    EXPECT_EQ(shadow.jobs[0].write_mask, 0u);
    EXPECT_EQ(shadow.jobs[1].predicted[0], 0u);
}

// ---------------------------------------------------------------------
// End-to-end simulation
// ---------------------------------------------------------------------

class TraversalArchWorkload : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        workload_ = prepareWorkload(SceneId::BUNNY, ScaleProfile::Tiny);
    }
    static void TearDownTestSuite() { workload_.reset(); }

    static std::shared_ptr<Workload> workload_;
};

std::shared_ptr<Workload> TraversalArchWorkload::workload_;

TEST_F(TraversalArchWorkload, StacklessMatchesOracleWithZeroStackTraffic)
{
    SimResult base =
        runWorkload(*workload_, makeGpuConfig(StackConfig::baseline(8)));

    GpuConfig config = makeGpuConfig(StackConfig::baseline(8));
    config.traversal_arch = TraversalArchConfig::stackless();
    SimResult r = runWorkload(*workload_, config);

    EXPECT_EQ(r.mismatches, 0u);
    EXPECT_EQ(r.rays, base.rays);
    // Stack traffic is zero by construction, not merely reduced.
    EXPECT_EQ(r.stack.pushes, 0u);
    EXPECT_EQ(r.stack.pops, 0u);
    EXPECT_EQ(r.stack.global_stores, 0u);
    EXPECT_EQ(r.stack.global_loads, 0u);
    EXPECT_EQ(r.dram.by_class[static_cast<int>(TrafficClass::Stack)], 0u);
    EXPECT_EQ(r.l1_class_misses[static_cast<int>(TrafficClass::Stack)],
              0u);
    // Backtracking re-visits cost extra node work, surfaced in the
    // dedicated accounting leaf; conservation still closes exactly.
    EXPECT_GT(r.ops.node_visits, base.ops.node_visits);
    EXPECT_GT(r.accounting.leaf(CycleLeaf::StallArchBacktrack), 0u);
    EXPECT_EQ(r.accounting.leaf(CycleLeaf::StallArchPredictor), 0u);
    EXPECT_TRUE(r.accounting.conserved());
}

TEST_F(TraversalArchWorkload, PredictedMatchesOracleWithPredictorTraffic)
{
    SimResult base =
        runWorkload(*workload_, makeGpuConfig(StackConfig::baseline(8)));

    GpuConfig config = makeGpuConfig(StackConfig::baseline(8));
    config.traversal_arch = TraversalArchConfig::predicted();
    SimResult r = runWorkload(*workload_, config);

    EXPECT_EQ(r.mismatches, 0u);
    EXPECT_EQ(r.rays, base.rays);
    // The predictor table is a real traffic class: probes and
    // train-writebacks reach DRAM (compulsory misses at minimum).
    EXPECT_GT(r.dram.by_class[static_cast<int>(TrafficClass::Predictor)],
              0u);
    EXPECT_GT(r.accounting.leaf(CycleLeaf::StallArchPredictor), 0u);
    EXPECT_EQ(r.accounting.leaf(CycleLeaf::StallArchBacktrack), 0u);
    EXPECT_TRUE(r.accounting.conserved());
}

TEST_F(TraversalArchWorkload, ArchTapeReplayIsCounterIdentical)
{
    for (TraversalArchConfig arch : {TraversalArchConfig::stackless(),
                                     TraversalArchConfig::predicted()}) {
        GpuConfig config = makeGpuConfig(StackConfig::sms());
        config.traversal_arch = arch;

        TraversalTape tape;
        SimOptions record;
        record.record_tape = &tape;
        SimResult a = runWorkload(*workload_, config, record);

        SimOptions replay;
        replay.replay_tape = &tape;
        SimResult b = runWorkload(*workload_, config, replay);

        EXPECT_EQ(b.cycles, a.cycles) << arch.name();
        EXPECT_EQ(b.instructions, a.instructions) << arch.name();
        EXPECT_EQ(b.offchip_accesses, a.offchip_accesses) << arch.name();
        EXPECT_EQ(b.ops.node_visits, a.ops.node_visits) << arch.name();
        EXPECT_EQ(b.ops.prim_tests, a.ops.prim_tests) << arch.name();
        EXPECT_EQ(b.accounting.leaf(CycleLeaf::StallArchBacktrack),
                  a.accounting.leaf(CycleLeaf::StallArchBacktrack))
            << arch.name();
        EXPECT_EQ(b.accounting.leaf(CycleLeaf::StallArchPredictor),
                  a.accounting.leaf(CycleLeaf::StallArchPredictor))
            << arch.name();
        for (int cls = 0; cls < kTrafficClassCount; ++cls) {
            EXPECT_EQ(b.l1_class_misses[cls], a.l1_class_misses[cls]);
            EXPECT_EQ(b.l2_class_misses[cls], a.l2_class_misses[cls]);
        }
    }
}

TEST_F(TraversalArchWorkload, ArchTapeReplaysUnderAnyStackConfig)
{
    // A tape recorded under one stack configuration drives the timing
    // model under another (the repo-wide tape contract); the traversal
    // work counters are configuration-independent.
    GpuConfig rb = makeGpuConfig(StackConfig::baseline(8));
    rb.traversal_arch = TraversalArchConfig::stackless();
    TraversalTape tape;
    SimOptions record;
    record.record_tape = &tape;
    SimResult a = runWorkload(*workload_, rb, record);

    GpuConfig sms = makeGpuConfig(StackConfig::sms());
    sms.traversal_arch = TraversalArchConfig::stackless();
    SimOptions replay;
    replay.replay_tape = &tape;
    SimResult b = runWorkload(*workload_, sms, replay);

    EXPECT_EQ(b.ops.node_visits, a.ops.node_visits);
    EXPECT_EQ(b.ops.leaf_visits, a.ops.leaf_visits);
    EXPECT_EQ(b.ops.prim_tests, a.ops.prim_tests);
    EXPECT_EQ(b.ops.box_tests, a.ops.box_tests);
    EXPECT_EQ(b.stack.pushes, 0u);
    EXPECT_TRUE(b.accounting.conserved());
}

} // namespace
} // namespace sms
