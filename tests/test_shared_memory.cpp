/**
 * @file
 * Tests for the banked shared-memory model, including the exact bank
 * assignments of the paper's Fig. 9 and the conflict behaviour the
 * skewed access pattern attacks.
 */

#include <gtest/gtest.h>

#include "src/core/stack_config.hpp"
#include "src/memory/shared_memory.hpp"

namespace sms {
namespace {

/** Byte address of (thread, entry) in the SH_8 stack file layout. */
Addr
sh8Addr(uint32_t tid, uint32_t entry)
{
    return (static_cast<Addr>(tid) * 8 + entry) * 8;
}

TEST(SharedBank, BankOfAddress)
{
    EXPECT_EQ(sharedBankOf(0), 0u);
    EXPECT_EQ(sharedBankOf(4), 1u);
    EXPECT_EQ(sharedBankOf(124), 31u);
    EXPECT_EQ(sharedBankOf(128), 0u);
}

TEST(SharedBank, Fig9BankAssignments)
{
    // Fig. 9: with SH_8, an 8-entry stack spans 16 banks; even threads
    // cover banks 0-15, odd threads banks 16-31.
    // Thread 0, entry 0 -> banks 0,1.
    EXPECT_EQ(sharedBankOf(sh8Addr(0, 0)), 0u);
    EXPECT_EQ(sharedBankOf(sh8Addr(0, 0) + 4), 1u);
    // Thread 1, entry 0 -> banks 16,17.
    EXPECT_EQ(sharedBankOf(sh8Addr(1, 0)), 16u);
    EXPECT_EQ(sharedBankOf(sh8Addr(1, 0) + 4), 17u);
    // Thread 2, entry 1 -> banks 2,3.
    EXPECT_EQ(sharedBankOf(sh8Addr(2, 1)), 2u);
    EXPECT_EQ(sharedBankOf(sh8Addr(2, 1) + 4), 3u);
    // Thread 3, entry 1 -> banks 18,19.
    EXPECT_EQ(sharedBankOf(sh8Addr(3, 1)), 18u);
    EXPECT_EQ(sharedBankOf(sh8Addr(3, 1) + 4), 19u);
    // Thread 16 behaves like thread 0 (wraps at bank 32).
    EXPECT_EQ(sharedBankOf(sh8Addr(16, 0)), 0u);
    // Thread 17 behaves like thread 1.
    EXPECT_EQ(sharedBankOf(sh8Addr(17, 0)), 16u);
}

TEST(ConflictPasses, EmptyAndSingle)
{
    EXPECT_EQ(SharedMemory::conflictPasses({}), 0u);
    EXPECT_EQ(SharedMemory::conflictPasses({{0, 0, 8}}), 1u);
}

TEST(ConflictPasses, DistinctBanksNoConflict)
{
    // 16 lanes, each touching its own pair of banks (entry index equal
    // to tid/2 spreads across all banks — the skewed pattern).
    std::vector<SharedLaneRequest> lanes;
    for (uint32_t t = 0; t < 16; ++t)
        lanes.push_back({t, sh8Addr(t, skewBaseEntry(t, 8)), 8});
    EXPECT_EQ(SharedMemory::conflictPasses(lanes), 1u);
}

TEST(ConflictPasses, SameEntryIndexSeriializesEvenLanes)
{
    // All 32 lanes accessing entry 0 of their own stack: the 16 even
    // lanes collide on banks 0-1 and the 16 odd lanes on banks 16-17 —
    // a 16-way conflict (the paper's unskewed worst case).
    std::vector<SharedLaneRequest> lanes;
    for (uint32_t t = 0; t < 32; ++t)
        lanes.push_back({t, sh8Addr(t, 0), 8});
    EXPECT_EQ(SharedMemory::conflictPasses(lanes), 16u);
}

TEST(ConflictPasses, SkewStrictlyImproves)
{
    std::vector<SharedLaneRequest> base_lanes, skew_lanes;
    for (uint32_t t = 0; t < 32; ++t) {
        base_lanes.push_back({t, sh8Addr(t, 0), 8});
        skew_lanes.push_back({t, sh8Addr(t, skewBaseEntry(t, 8)), 8});
    }
    uint32_t base = SharedMemory::conflictPasses(base_lanes);
    uint32_t skew = SharedMemory::conflictPasses(skew_lanes);
    EXPECT_LT(skew, base);
    EXPECT_EQ(skew, 2u); // pairs of threads share a base entry
}

TEST(ConflictPasses, BroadcastSameWordIsFree)
{
    // Lanes reading the same word broadcast without conflict.
    std::vector<SharedLaneRequest> lanes;
    for (uint32_t t = 0; t < 32; ++t)
        lanes.push_back({t, 64, 4});
    EXPECT_EQ(SharedMemory::conflictPasses(lanes), 1u);
}

TEST(ConflictPasses, BroadcastSameEntrySpanningTwoBanks)
{
    // All lanes reading the same 8 B entry: it spans two banks (two
    // words), but both words broadcast, so one pass suffices.
    std::vector<SharedLaneRequest> lanes;
    for (uint32_t t = 0; t < 32; ++t)
        lanes.push_back({t, 64, 8});
    EXPECT_EQ(SharedMemory::conflictPasses(lanes), 1u);
}

TEST(ConflictPasses, StraddlingEntriesWrapAroundBanks)
{
    // Lane t reads the 8 B entry at t*8, i.e. words 2t and 2t+1. Lanes
    // 0-15 cover all 32 banks exactly once; lanes 16-31 revisit those
    // banks at different rows, so the warp needs exactly two passes.
    std::vector<SharedLaneRequest> lanes;
    for (uint32_t t = 0; t < 32; ++t)
        lanes.push_back({t, static_cast<Addr>(t) * 8, 8});
    EXPECT_EQ(SharedMemory::conflictPasses(lanes), 2u);
}

TEST(ConflictPasses, WideRequestSpansManyBanks)
{
    // One lane touching 64 B = 16 words = 16 banks: still one pass.
    EXPECT_EQ(SharedMemory::conflictPasses({{0, 0, 64}}), 1u);
    // Two lanes, same 64 B, different rows -> 2 passes.
    std::vector<SharedLaneRequest> lanes{{0, 0, 64}, {1, 128, 64}};
    EXPECT_EQ(SharedMemory::conflictPasses(lanes), 2u);
}

TEST(SharedMemory, AccessLatencyAndStats)
{
    SharedMemory sm(20);
    std::vector<SharedLaneRequest> one{{0, 0, 8}};
    Cycle done = sm.access(100, one);
    EXPECT_EQ(done, 100u + 20u);
    EXPECT_EQ(sm.stats().accesses, 1u);
    EXPECT_EQ(sm.stats().lane_requests, 1u);
    EXPECT_EQ(sm.stats().conflict_cycles, 0u);
}

TEST(SharedMemory, ConflictAddsDelayCycles)
{
    SharedMemory sm(20);
    std::vector<SharedLaneRequest> lanes;
    for (uint32_t t = 0; t < 32; ++t)
        lanes.push_back({t, sh8Addr(t, 0), 8});
    Cycle done = sm.access(0, lanes);
    EXPECT_EQ(done, 16u - 1u + 20u);
    EXPECT_EQ(sm.stats().conflict_cycles, 15u);
}

TEST(SharedMemory, PipelineOccupancySerializesAccesses)
{
    SharedMemory sm(20);
    std::vector<SharedLaneRequest> one{{0, 0, 8}};
    sm.access(0, one);
    // Issued in the same cycle: the pipeline slot is taken for 1 pass.
    Cycle second = sm.access(0, one);
    EXPECT_EQ(second, 1u + 20u - 1u + 1u); // starts at cycle 1
}

TEST(SharedMemory, ConflictObservabilityCounters)
{
    SharedMemory sm(20);
    std::vector<SharedLaneRequest> one{{0, 0, 8}};
    sm.access(0, one); // 1 pass, conflict-free
    std::vector<SharedLaneRequest> lanes;
    for (uint32_t t = 0; t < 32; ++t)
        lanes.push_back({t, sh8Addr(t, 0), 8});
    sm.access(100, lanes); // 16-way conflict
    EXPECT_EQ(sm.stats().conflict_passes, 1u + 16u);
    EXPECT_EQ(sm.stats().conflicted_accesses, 1u);
    EXPECT_EQ(sm.stats().max_passes, 16u);
    EXPECT_DOUBLE_EQ(sm.stats().avgConflictDelay(), 15.0 / 2.0);
}

TEST(SharedMemory, EmptyAccessIsFree)
{
    SharedMemory sm(20);
    EXPECT_EQ(sm.access(50, {}), 50u);
    EXPECT_EQ(sm.stats().accesses, 0u);
}

} // namespace
} // namespace sms
