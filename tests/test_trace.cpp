/**
 * @file
 * Tests for the path-tracer front end: camera, film, and the warp-job
 * generator (structure, determinism, oracle completeness).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <map>

#include "src/trace/camera.hpp"
#include "src/trace/film.hpp"
#include "src/trace/path_tracer.hpp"
#include "src/trace/render.hpp"

namespace sms {
namespace {

TEST(Camera, CenterRayPointsAtLookAt)
{
    CameraDesc desc;
    desc.position = {0, 0, 5};
    desc.lookAt = {0, 0, 0};
    Camera camera(desc, 64, 64);
    Ray ray = camera.generateRay(32, 32, 0.0f, 0.0f);
    EXPECT_NEAR(length(ray.origin - desc.position), 0.0f, 1e-6f);
    EXPECT_NEAR(ray.dir.z, -1.0f, 0.05f);
    EXPECT_NEAR(length(ray.dir), 1.0f, 1e-5f);
}

TEST(Camera, CornersDivergeSymmetrically)
{
    CameraDesc desc;
    desc.position = {0, 0, 5};
    desc.lookAt = {0, 0, 0};
    Camera camera(desc, 64, 64);
    Ray left = camera.generateRay(0, 32, 0.5f, 0.5f);
    Ray right = camera.generateRay(63, 32, 0.5f, 0.5f);
    EXPECT_LT(left.dir.x, 0.0f);
    EXPECT_GT(right.dir.x, 0.0f);
    EXPECT_NEAR(left.dir.x, -right.dir.x, 0.05f);
    Ray bottom = camera.generateRay(32, 0, 0.5f, 0.5f);
    Ray top = camera.generateRay(32, 63, 0.5f, 0.5f);
    EXPECT_LT(bottom.dir.y, 0.0f);
    EXPECT_GT(top.dir.y, 0.0f);
}

TEST(Camera, WiderFovSpreadsRays)
{
    CameraDesc narrow_desc;
    narrow_desc.verticalFovDeg = 30.0f;
    CameraDesc wide_desc;
    wide_desc.verticalFovDeg = 90.0f;
    Camera narrow(narrow_desc, 32, 32);
    Camera wide(wide_desc, 32, 32);
    float narrow_spread =
        std::fabs(narrow.generateRay(0, 16, 0.5f, 0.5f).dir.x);
    float wide_spread =
        std::fabs(wide.generateRay(0, 16, 0.5f, 0.5f).dir.x);
    EXPECT_GT(wide_spread, narrow_spread);
}

TEST(Film, AccumulateAndNormalize)
{
    Film film(4, 4);
    film.add(1, 2, {2, 4, 6});
    film.add(1, 2, {2, 0, 2});
    film.normalize(2);
    EXPECT_EQ(film.at(1, 2), Vec3(2, 2, 4));
    EXPECT_EQ(film.at(0, 0), Vec3(0, 0, 0));
}

TEST(Film, HashDetectsDifferences)
{
    Film a(8, 8), b(8, 8);
    EXPECT_EQ(a.contentHash(), b.contentHash());
    b.add(3, 3, {0.5f, 0, 0});
    EXPECT_NE(a.contentHash(), b.contentHash());
}

TEST(Film, WritesValidPpm)
{
    Film film(4, 2);
    film.add(0, 0, {1, 0, 0});
    std::string path = ::testing::TempDir() + "sms_test.ppm";
    ASSERT_TRUE(film.writePpm(path));
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char magic[3] = {};
    ASSERT_EQ(std::fread(magic, 1, 2, f), 2u);
    EXPECT_EQ(magic[0], 'P');
    EXPECT_EQ(magic[1], '6');
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    std::remove(path.c_str());
    EXPECT_GE(size, static_cast<long>(4 * 2 * 3));
}

TEST(RenderParams, ComplexScenesUseReducedScale)
{
    // §VII-A: CHSNT, ROBOT, PARK render at 32x32 with 1 spp.
    for (SceneId id : {SceneId::CHSNT, SceneId::ROBOT, SceneId::PARK}) {
        RenderParams p = RenderParams::forScene(id);
        EXPECT_EQ(p.width, 32u);
        EXPECT_EQ(p.spp, 1u);
    }
    RenderParams normal = RenderParams::forScene(SceneId::BUNNY);
    EXPECT_GT(normal.width, 32u);
}

class JobGenTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        scene_ = new Scene(makeScene(SceneId::SHIP, ScaleProfile::Tiny));
        bvh_ = new WideBvh(WideBvh::build(*scene_));
        RenderParams params;
        params.width = 16;
        params.height = 16;
        params.spp = 2;
        params.max_bounces = 2;
        out_ = new RenderOutput(
            renderAndBuildJobs(*scene_, *bvh_, params));
    }

    static void
    TearDownTestSuite()
    {
        delete out_;
        delete bvh_;
        delete scene_;
        out_ = nullptr;
        bvh_ = nullptr;
        scene_ = nullptr;
    }

    static Scene *scene_;
    static WideBvh *bvh_;
    static RenderOutput *out_;
};

Scene *JobGenTest::scene_ = nullptr;
WideBvh *JobGenTest::bvh_ = nullptr;
RenderOutput *JobGenTest::out_ = nullptr;

TEST_F(JobGenTest, JobIdsAreDenseAndParentsPrecede)
{
    for (uint32_t i = 0; i < out_->jobs.size(); ++i) {
        const WarpJob &job = out_->jobs[i];
        EXPECT_EQ(job.job_id, i);
        if (job.parent >= 0)
            EXPECT_LT(static_cast<uint32_t>(job.parent), i);
    }
}

TEST_F(JobGenTest, WarpChainsAreSequential)
{
    // Jobs of one warp form a single chain: every non-root job's
    // parent belongs to the same warp.
    for (const WarpJob &job : out_->jobs) {
        if (job.parent >= 0)
            EXPECT_EQ(out_->jobs[job.parent].warp_id, job.warp_id);
    }
}

TEST_F(JobGenTest, PrimaryJobsHaveAllLanesActive)
{
    // 16x16 x 2 spp = 512 paths = 16 full warps.
    uint32_t primaries = 0;
    for (const WarpJob &job : out_->jobs) {
        if (job.parent == -1) {
            ++primaries;
            EXPECT_FALSE(job.any_hit);
            EXPECT_EQ(job.activeLanes(), kWarpSize);
        }
    }
    EXPECT_EQ(primaries, 16u);
}

TEST_F(JobGenTest, ShadowJobsAreAnyHitWithBoundedSegments)
{
    uint32_t shadows = 0;
    for (const WarpJob &job : out_->jobs) {
        if (!job.any_hit)
            continue;
        ++shadows;
        for (uint32_t lane = 0; lane < kWarpSize; ++lane) {
            if (!job.active[lane])
                continue;
            // Shadow rays carry a finite segment (to the light).
            EXPECT_LT(job.rays[lane].tMax, kRayInfinity);
        }
    }
    EXPECT_GT(shadows, 0u);
}

TEST_F(JobGenTest, OraclesMatchReferenceTraversal)
{
    int checked = 0;
    for (const WarpJob &job : out_->jobs) {
        for (uint32_t lane = 0; lane < kWarpSize && checked < 300;
             ++lane) {
            if (!job.active[lane])
                continue;
            ++checked;
            if (job.any_hit) {
                EXPECT_EQ(traverseAnyHit(*scene_, *bvh_, job.rays[lane]),
                          job.expected_hit[lane]);
            } else {
                HitRecord hit =
                    traverseClosest(*scene_, *bvh_, job.rays[lane]);
                EXPECT_EQ(hit.valid(), job.expected_hit[lane]);
                if (hit.valid())
                    EXPECT_EQ(hit.primitive, job.expected_prim[lane]);
            }
        }
    }
    EXPECT_GE(checked, 300);
}

TEST_F(JobGenTest, ActiveLanesShrinkAlongChains)
{
    // Paths die over bounces: a closest-hit job never has more active
    // lanes than its warp's previous closest-hit job.
    std::map<uint32_t, uint32_t> last_active;
    for (const WarpJob &job : out_->jobs) {
        if (job.any_hit)
            continue;
        auto it = last_active.find(job.warp_id);
        if (it != last_active.end())
            EXPECT_LE(job.activeLanes(), it->second);
        last_active[job.warp_id] = job.activeLanes();
    }
}

TEST(PathTracer, DeterministicImages)
{
    Scene scene = makeScene(SceneId::REF, ScaleProfile::Tiny);
    WideBvh bvh = WideBvh::build(scene);
    RenderParams params;
    params.width = 16;
    params.height = 16;
    RenderOutput a = renderAndBuildJobs(scene, bvh, params);
    RenderOutput b = renderAndBuildJobs(scene, bvh, params);
    EXPECT_EQ(a.film.contentHash(), b.film.contentHash());
    EXPECT_EQ(a.jobs.size(), b.jobs.size());
    EXPECT_EQ(a.rays, b.rays);
}

TEST(PathTracer, SeedChangesImage)
{
    Scene scene = makeScene(SceneId::REF, ScaleProfile::Tiny);
    WideBvh bvh = WideBvh::build(scene);
    RenderParams params;
    params.width = 16;
    params.height = 16;
    params.spp = 2;
    RenderOutput a = renderAndBuildJobs(scene, bvh, params);
    params.seed = 99;
    RenderOutput b = renderAndBuildJobs(scene, bvh, params);
    EXPECT_NE(a.film.contentHash(), b.film.contentHash());
}

TEST(PathTracer, ImageHasSignal)
{
    Scene scene = makeScene(SceneId::BUNNY, ScaleProfile::Tiny);
    WideBvh bvh = WideBvh::build(scene);
    RenderParams params;
    params.width = 24;
    params.height = 24;
    RenderOutput out = renderAndBuildJobs(scene, bvh, params);
    double total = 0.0;
    uint32_t lit = 0;
    for (uint32_t y = 0; y < params.height; ++y) {
        for (uint32_t x = 0; x < params.width; ++x) {
            const Vec3 &p = out.film.at(x, y);
            total += p.x + p.y + p.z;
            lit += (p.x + p.y + p.z) > 1e-4f ? 1 : 0;
        }
    }
    EXPECT_GT(total, 0.1);
    EXPECT_GT(lit, params.width * params.height / 4);
}

TEST(PathTracer, NoShadowRaysWhenDisabled)
{
    Scene scene = makeScene(SceneId::BUNNY, ScaleProfile::Tiny);
    WideBvh bvh = WideBvh::build(scene);
    RenderParams params;
    params.width = 16;
    params.height = 16;
    params.shadow_rays = false;
    RenderOutput out = renderAndBuildJobs(scene, bvh, params);
    for (const WarpJob &job : out.jobs)
        EXPECT_FALSE(job.any_hit);
}

TEST(PathTracer, BounceDepthBoundsSegments)
{
    Scene scene = makeScene(SceneId::BUNNY, ScaleProfile::Tiny);
    WideBvh bvh = WideBvh::build(scene);
    RenderParams params;
    params.width = 16;
    params.height = 16;
    params.max_bounces = 0;
    RenderOutput out = renderAndBuildJobs(scene, bvh, params);
    for (const WarpJob &job : out.jobs)
        EXPECT_EQ(job.segment, 0u);

    params.max_bounces = 3;
    RenderOutput deep = renderAndBuildJobs(scene, bvh, params);
    uint32_t max_segment = 0;
    for (const WarpJob &job : deep.jobs)
        max_segment = std::max(max_segment, job.segment);
    EXPECT_GT(max_segment, 0u);
    EXPECT_LE(max_segment, 3u);
    EXPECT_GT(deep.jobs.size(), out.jobs.size());
}

} // namespace
} // namespace sms
