/**
 * @file
 * Tests for the scene container and the 16 procedural LumiBench
 * stand-in generators (determinism, structure, unified primitive ids).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "src/scene/builders.hpp"
#include "src/scene/registry.hpp"
#include "src/scene/scene.hpp"
#include "src/util/rng.hpp"

namespace sms {
namespace {

/** Cheap structural fingerprint of a scene. */
uint64_t
sceneFingerprint(const Scene &scene)
{
    uint64_t h = 14695981039346656037ull;
    auto mix = [&h](float f) {
        uint32_t bits;
        static_assert(sizeof(bits) == sizeof(f));
        std::memcpy(&bits, &f, sizeof(bits));
        h = (h ^ bits) * 1099511628211ull;
    };
    for (const Triangle &t : scene.triangles()) {
        mix(t.v0.x);
        mix(t.v1.y);
        mix(t.v2.z);
    }
    for (const Sphere &s : scene.spheres()) {
        mix(s.center.x);
        mix(s.radius);
    }
    return h;
}

TEST(Scene, AddAndQueryPrimitives)
{
    Scene scene;
    uint16_t mat = scene.addMaterial({{1, 0, 0}, {0, 0, 0}, 0.0f});
    scene.addTriangle(Triangle({0, 0, 0}, {1, 0, 0}, {0, 1, 0}), mat);
    scene.addSphere(Sphere({5, 0, 0}, 1.0f), mat);

    EXPECT_EQ(scene.triangleCount(), 1u);
    EXPECT_EQ(scene.sphereCount(), 1u);
    EXPECT_EQ(scene.primitiveCount(), 2u);
    EXPECT_EQ(scene.primitiveKind(0), PrimitiveKind::Triangle);
    EXPECT_EQ(scene.primitiveKind(1), PrimitiveKind::Sphere);
    EXPECT_EQ(scene.primitiveMaterial(1).albedo, Vec3(1, 0, 0));
}

TEST(Scene, PrimitiveBoundsAndCentroid)
{
    Scene scene;
    uint16_t mat = scene.addMaterial({});
    scene.addTriangle(Triangle({0, 0, 0}, {2, 0, 0}, {0, 2, 0}), mat);
    scene.addSphere(Sphere({5, 5, 5}, 2.0f), mat);

    Aabb tb = scene.primitiveBounds(0);
    EXPECT_TRUE(tb.contains(Vec3{2, 0, 0}));
    EXPECT_NEAR(length(scene.primitiveCentroid(1) - Vec3(5, 5, 5)), 0.0f,
                1e-6f);
    EXPECT_TRUE(scene.primitiveBounds(1).contains(Vec3{7, 5, 5}));
}

TEST(Scene, IntersectPrimitiveShrinksRay)
{
    Scene scene;
    uint16_t mat = scene.addMaterial({});
    scene.addTriangle(Triangle({-1, -1, 2}, {1, -1, 2}, {0, 1, 2}), mat);
    scene.addTriangle(Triangle({-1, -1, 5}, {1, -1, 5}, {0, 1, 5}), mat);

    Ray ray({0, 0, 0}, {0, 0, 1});
    HitRecord hit;
    EXPECT_TRUE(scene.intersectPrimitive(1, ray, hit));
    EXPECT_NEAR(hit.t, 5.0f, 1e-4f);
    // The nearer triangle now wins and re-shrinks tMax.
    EXPECT_TRUE(scene.intersectPrimitive(0, ray, hit));
    EXPECT_NEAR(hit.t, 2.0f, 1e-4f);
    EXPECT_EQ(hit.primitive, 0u);
    // The far one can no longer hit within the shrunk segment.
    EXPECT_FALSE(scene.intersectPrimitive(1, ray, hit));
}

TEST(Scene, NormalFacesIncomingRay)
{
    Scene scene;
    uint16_t mat = scene.addMaterial({});
    scene.addTriangle(Triangle({-1, -1, 2}, {1, -1, 2}, {0, 1, 2}), mat);
    Ray forward({0, 0, 0}, {0, 0, 1});
    HitRecord hit;
    ASSERT_TRUE(scene.intersectPrimitive(0, forward, hit));
    EXPECT_LT(dot(hit.normal, forward.dir), 0.0f);

    Ray backward({0, 0, 4}, {0, 0, -1});
    HitRecord hit2;
    ASSERT_TRUE(scene.intersectPrimitive(0, backward, hit2));
    EXPECT_LT(dot(hit2.normal, backward.dir), 0.0f);
}

TEST(Scene, BruteForcePicksClosest)
{
    Scene scene;
    uint16_t mat = scene.addMaterial({});
    scene.addSphere(Sphere({0, 0, 10}, 1.0f), mat);
    scene.addSphere(Sphere({0, 0, 5}, 1.0f), mat);
    HitRecord hit = scene.intersectBruteForce(Ray({0, 0, 0}, {0, 0, 1}));
    ASSERT_TRUE(hit.valid());
    EXPECT_EQ(hit.primitive, 1u);
    EXPECT_NEAR(hit.t, 4.0f, 1e-4f);
}

TEST(SceneRegistry, NamesRoundTrip)
{
    for (SceneId id : allScenes()) {
        EXPECT_EQ(sceneFromName(sceneName(id)), id);
    }
    EXPECT_STREQ(sceneName(SceneId::WKND), "WKND");
    EXPECT_STREQ(sceneName(SceneId::PARK), "PARK");
}

TEST(SceneRegistry, PaperInfoMatchesTableII)
{
    EXPECT_DOUBLE_EQ(paperSceneInfo(SceneId::ROBOT).triangles_millions,
                     20.6);
    EXPECT_DOUBLE_EQ(paperSceneInfo(SceneId::ROBOT).bvh_mb, 1869.0);
    EXPECT_DOUBLE_EQ(paperSceneInfo(SceneId::WKND).triangles_millions,
                     0.0);
    EXPECT_DOUBLE_EQ(paperSceneInfo(SceneId::SHIP).bvh_mb, 0.5);
}

class SceneGeneratorTest : public ::testing::TestWithParam<SceneId>
{
};

TEST_P(SceneGeneratorTest, DeterministicAcrossBuilds)
{
    Scene a = makeScene(GetParam(), ScaleProfile::Tiny);
    Scene b = makeScene(GetParam(), ScaleProfile::Tiny);
    EXPECT_EQ(a.primitiveCount(), b.primitiveCount());
    EXPECT_EQ(sceneFingerprint(a), sceneFingerprint(b));
}

TEST_P(SceneGeneratorTest, HasGeometryAndFiniteBounds)
{
    Scene scene = makeScene(GetParam(), ScaleProfile::Tiny);
    EXPECT_GT(scene.primitiveCount(), 0u);
    Aabb bounds = scene.bounds();
    EXPECT_FALSE(bounds.empty());
    for (int axis = 0; axis < 3; ++axis) {
        EXPECT_TRUE(std::isfinite(bounds.lo[axis]));
        EXPECT_TRUE(std::isfinite(bounds.hi[axis]));
    }
}

TEST_P(SceneGeneratorTest, NameMatchesRegistry)
{
    Scene scene = makeScene(GetParam(), ScaleProfile::Tiny);
    EXPECT_EQ(scene.name, sceneName(GetParam()));
}

TEST_P(SceneGeneratorTest, ScaleProfilesOrdered)
{
    Scene tiny = makeScene(GetParam(), ScaleProfile::Tiny);
    Scene small = makeScene(GetParam(), ScaleProfile::Small);
    EXPECT_LT(tiny.primitiveCount(), small.primitiveCount());
}

TEST_P(SceneGeneratorTest, CameraSeesTheScene)
{
    // The camera must not sit inside a primitive-free void pointing
    // away: a ray toward lookAt should hit something or at least the
    // scene bounds.
    Scene scene = makeScene(GetParam(), ScaleProfile::Tiny);
    Vec3 dir = normalize(scene.camera.lookAt - scene.camera.position);
    Ray ray(scene.camera.position, dir);
    float t;
    EXPECT_TRUE(scene.bounds().intersect(ray, t));
}

INSTANTIATE_TEST_SUITE_P(AllScenes, SceneGeneratorTest,
                         ::testing::ValuesIn(allScenes()),
                         [](const auto &info) {
                             return std::string(sceneName(info.param));
                         });

TEST(SceneCharacter, WkndIsSpheresOnly)
{
    Scene scene = makeScene(SceneId::WKND, ScaleProfile::Tiny);
    EXPECT_EQ(scene.triangleCount(), 0u);
    EXPECT_GT(scene.sphereCount(), 10u);
}

TEST(SceneCharacter, ShipHasLongThinPrimitives)
{
    Scene scene = makeScene(SceneId::SHIP, ScaleProfile::Small);
    // Count triangles whose bounding box is much longer in one axis
    // than the others (the rigging ribbons).
    uint32_t thin = 0;
    for (const Triangle &t : scene.triangles()) {
        Vec3 e = t.bounds().extent();
        float longest = std::max({e.x, e.y, e.z});
        float shortest = std::min({e.x, e.y, e.z});
        float mid = e.x + e.y + e.z - longest - shortest;
        if (longest > 3.0f && mid < longest * 0.5f)
            ++thin;
    }
    EXPECT_GT(thin, 100u);
}

TEST(SceneCharacter, ComplexScenesAreLargest)
{
    auto count = [](SceneId id) {
        return makeScene(id, ScaleProfile::Tiny).primitiveCount();
    };
    // The paper's "simple" trio must stay well below the dense meshes.
    EXPECT_LT(count(SceneId::REF), count(SceneId::CHSNT));
    EXPECT_LT(count(SceneId::BATH), count(SceneId::PARTY));
    EXPECT_LT(count(SceneId::SHIP), count(SceneId::FRST));
}

TEST(Builders, QuadProducesTwoTriangles)
{
    Scene scene;
    uint16_t mat = scene.addMaterial({});
    builders::addQuad(scene, {0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
                      mat);
    EXPECT_EQ(scene.triangleCount(), 2u);
}

TEST(Builders, BoxProducesTwelveTriangles)
{
    Scene scene;
    uint16_t mat = scene.addMaterial({});
    builders::addBox(scene, Aabb({0, 0, 0}, {1, 1, 1}), mat);
    EXPECT_EQ(scene.triangleCount(), 12u);
    // The box mesh bounds must equal the requested box.
    Aabb bounds = scene.bounds();
    EXPECT_TRUE(bounds.contains(Vec3{1, 1, 1}));
    EXPECT_TRUE(bounds.contains(Vec3{0, 0, 0}));
    EXPECT_FALSE(bounds.contains(Vec3{1.1f, 0, 0}));
}

TEST(Builders, TerrainResolutionCounts)
{
    Scene scene;
    uint16_t mat = scene.addMaterial({});
    builders::addTerrain(scene, 0, 0, 10, 10, 5,
                         [](float, float) { return 0.0f; }, mat);
    EXPECT_EQ(scene.triangleCount(), 2u * 5 * 5);
}

TEST(Builders, IcosphereSubdivisionCounts)
{
    Scene scene;
    uint16_t mat = scene.addMaterial({});
    builders::addIcosphere(scene, {0, 0, 0}, 1.0f, 0, mat);
    EXPECT_EQ(scene.triangleCount(), 20u);
    Scene scene2;
    uint16_t mat2 = scene2.addMaterial({});
    builders::addIcosphere(scene2, {0, 0, 0}, 1.0f, 2, mat2);
    EXPECT_EQ(scene2.triangleCount(), 20u * 16);
}

TEST(Builders, IcosphereVerticesOnSphere)
{
    Scene scene;
    uint16_t mat = scene.addMaterial({});
    builders::addIcosphere(scene, {1, 2, 3}, 2.0f, 2, mat);
    for (const Triangle &t : scene.triangles()) {
        for (const Vec3 &v : {t.v0, t.v1, t.v2})
            EXPECT_NEAR(length(v - Vec3(1, 2, 3)), 2.0f, 1e-4f);
    }
}

TEST(Builders, BlobIsDeterministicAndBounded)
{
    Scene a, b;
    uint16_t ma = a.addMaterial({});
    uint16_t mb = b.addMaterial({});
    builders::addBlob(a, {0, 0, 0}, 1.0f, 2, 0.3f, 42, ma);
    builders::addBlob(b, {0, 0, 0}, 1.0f, 2, 0.3f, 42, mb);
    ASSERT_EQ(a.triangleCount(), b.triangleCount());
    EXPECT_EQ(sceneFingerprint(a), sceneFingerprint(b));
    // Displacement is bounded by the noise amplitude.
    for (const Triangle &t : a.triangles())
        EXPECT_LT(length(t.v0), 1.0f * (1.0f + 0.3f * 1.5f) + 0.01f);
}

TEST(Builders, RibbonIsThin)
{
    Scene scene;
    uint16_t mat = scene.addMaterial({});
    builders::addRibbon(scene, {0, 0, 0}, {10, 0, 0}, 0.1f, mat);
    EXPECT_EQ(scene.triangleCount(), 2u);
    Vec3 e = scene.bounds().extent();
    EXPECT_NEAR(e.x, 10.0f, 1e-4f);
    EXPECT_LE(std::max(e.y, e.z), 0.11f);
}

TEST(Builders, ClutterStaysInsideRegion)
{
    Scene scene;
    uint16_t mat = scene.addMaterial({});
    Pcg32 rng(11);
    Aabb region({0, 0, 0}, {4, 4, 4});
    builders::addClutter(scene, region, 50, 0.2f, rng, mat);
    EXPECT_EQ(scene.triangleCount(), 200u); // 4 faces per tetrahedron
    Aabb padded({-0.3f, -0.3f, -0.3f}, {4.3f, 4.3f, 4.3f});
    EXPECT_TRUE(padded.contains(scene.bounds()));
}

} // namespace
} // namespace sms
