/**
 * @file
 * Tests of the timeline tracer: category parsing and gating, ring-cap
 * drop-oldest behaviour, Chrome-trace export validity, event ordering
 * under concurrent parallelFor emission, the trace_summarize fold, and
 * an end-to-end tiny-scene trace through the full simulator.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/stats/report.hpp"
#include "src/stats/timeline.hpp"
#include "src/trace/render.hpp"
#include "src/util/parallel.hpp"

namespace sms {
namespace {

/** Tracer fixture: every test starts and ends with tracing off. */
class TimelineTest : public ::testing::Test
{
  protected:
    void SetUp() override { timelineShutdown(); }
    void TearDown() override
    {
        timelineShutdown();
        if (!trace_path_.empty())
            std::remove(trace_path_.c_str());
    }

    /** Enable tracing with no export path (tests export explicitly). */
    void
    enable(uint32_t categories = kTimelineAllCategories,
           size_t cap = 1u << 16)
    {
        TimelineConfig config;
        config.categories = categories;
        config.ring_capacity = cap;
        timelineConfigure(config);
    }

    /** Export to a per-test temp file and parse the document. */
    JsonValue
    exportAndParse()
    {
        trace_path_ = std::string("test_timeline_") +
                      ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name() +
                      ".json";
        std::string error;
        EXPECT_TRUE(timelineExportTo(trace_path_, error)) << error;
        std::ifstream in(trace_path_, std::ios::binary);
        EXPECT_TRUE(in.good());
        std::ostringstream buffer;
        buffer << in.rdbuf();
        JsonValue doc;
        EXPECT_TRUE(JsonValue::parse(buffer.str(), doc, error)) << error;
        return doc;
    }

    std::string trace_path_;
};

TEST_F(TimelineTest, CategoryParsing)
{
    uint32_t mask = 0;
    std::string error;
    EXPECT_TRUE(timelineParseCategories("stack,cache", mask, error));
    EXPECT_EQ(mask,
              static_cast<uint32_t>(TimelineCategory::Stack) |
                  static_cast<uint32_t>(TimelineCategory::Cache));
    EXPECT_TRUE(timelineParseCategories("all", mask, error));
    EXPECT_EQ(mask, kTimelineAllCategories);
    EXPECT_TRUE(timelineParseCategories("default", mask, error));
    EXPECT_EQ(mask, kTimelineDefaultCategories);
    EXPECT_TRUE(timelineParseCategories("", mask, error));
    EXPECT_EQ(mask, kTimelineDefaultCategories);
    EXPECT_TRUE(timelineParseCategories("default,stackops", mask, error));
    EXPECT_EQ(mask, kTimelineAllCategories);
    EXPECT_FALSE(timelineParseCategories("bogus", mask, error));
    EXPECT_NE(error.find("bogus"), std::string::npos);
}

TEST_F(TimelineTest, CategoryListRoundTrips)
{
    for (uint32_t mask :
         {kTimelineDefaultCategories, kTimelineAllCategories,
          static_cast<uint32_t>(TimelineCategory::Dram)}) {
        uint32_t parsed = 0;
        std::string error;
        ASSERT_TRUE(timelineParseCategories(timelineCategoryList(mask),
                                            parsed, error))
            << error;
        EXPECT_EQ(parsed, mask);
    }
    // StackOps is deliberately not part of the default mask.
    EXPECT_EQ(kTimelineDefaultCategories &
                  static_cast<uint32_t>(TimelineCategory::StackOps),
              0u);
}

TEST_F(TimelineTest, OffByDefaultAndEmissionsAreNoOps)
{
    EXPECT_FALSE(timelineAnyOn());
    EXPECT_FALSE(timelineOn(TimelineCategory::Stack));
    timelineSpan(TimelineCategory::Stack, "ignored", 0, 10);
    timelineInstantNow(TimelineCategory::Stack, "ignored");
    timelineCounter(TimelineCategory::Dram, "ignored", 0, 1);
    TimelineStats stats = timelineStats();
    EXPECT_FALSE(stats.enabled);
    EXPECT_EQ(stats.events_recorded, 0u);
}

TEST_F(TimelineTest, CategoryFilterDropsDisabledCategories)
{
    enable(static_cast<uint32_t>(TimelineCategory::Cache));
    EXPECT_TRUE(timelineOn(TimelineCategory::Cache));
    EXPECT_FALSE(timelineOn(TimelineCategory::Stack));
    timelineSpan(TimelineCategory::Stack, "dropped", 0, 5);
    timelineSpan(TimelineCategory::Cache, "kept", 0, 5);
    TimelineStats stats = timelineStats();
    EXPECT_EQ(stats.events_recorded, 1u);
}

TEST_F(TimelineTest, RingCapDropsOldestKeepsNewest)
{
    enable(kTimelineAllCategories, 8);
    for (uint64_t i = 0; i < 20; ++i)
        timelineSpan(TimelineCategory::Sim, "span", i, 1);

    TimelineStats stats = timelineStats();
    EXPECT_EQ(stats.events_recorded, 20u);
    EXPECT_EQ(stats.events_kept, 8u);
    EXPECT_EQ(stats.events_dropped, 12u);

    JsonValue doc = exportAndParse();
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    std::vector<uint64_t> ts;
    for (const JsonValue &e : events->elements())
        if (e.stringOr("ph", "") == "X")
            ts.push_back(static_cast<uint64_t>(e.numberOr("ts", -1.0)));
    // Drop-oldest: exactly the last 8 timestamps survive, in order.
    ASSERT_EQ(ts.size(), 8u);
    for (size_t i = 0; i < ts.size(); ++i)
        EXPECT_EQ(ts[i], 12 + i);
    EXPECT_EQ(doc.find("otherData")->numberOr("events_dropped", 0.0),
              12.0);
}

TEST_F(TimelineTest, ExportIsValidChromeTraceJson)
{
    enable();
    uint32_t pid = timelineNewProcess("test process");
    timelineNameThread(pid, 3, "test thread");
    TimelineContext &ctx = timelineContext();
    ctx.pid = pid;
    ctx.tid = 3;
    ctx.now = 40;
    timelineSpan(TimelineCategory::Sim, "work", 10, 25, 7, "items");
    timelineInstantNow(TimelineCategory::Stack, "borrow", 2, "chain_len");
    timelineCounter(TimelineCategory::Dram, "backlog", 50, 11);
    ctx = TimelineContext{};

    JsonValue doc = exportAndParse();
    EXPECT_EQ(doc.stringOr("displayTimeUnit", ""), "ms");
    const JsonValue *other = doc.find("otherData");
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->stringOr("schema", ""), "sms-timeline-1");

    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    bool saw_process_meta = false, saw_thread_meta = false;
    bool saw_span = false, saw_instant = false, saw_counter = false;
    for (const JsonValue &e : events->elements()) {
        std::string ph = e.stringOr("ph", "");
        std::string name = e.stringOr("name", "");
        if (ph == "M" && name == "process_name" &&
            e.numberOr("pid", -1.0) == pid)
            saw_process_meta = true;
        if (ph == "M" && name == "thread_name" &&
            e.numberOr("tid", -1.0) == 3)
            saw_thread_meta = true;
        if (ph == "X" && name == "work") {
            saw_span = true;
            EXPECT_EQ(e.numberOr("ts", 0.0), 10.0);
            EXPECT_EQ(e.numberOr("dur", 0.0), 25.0);
            EXPECT_EQ(e.numberOr("pid", 0.0), pid);
            EXPECT_EQ(e.numberOr("tid", 0.0), 3.0);
            EXPECT_EQ(e.stringOr("cat", ""), "sim");
            ASSERT_NE(e.find("args"), nullptr);
            EXPECT_EQ(e.find("args")->numberOr("items", 0.0), 7.0);
        }
        if (ph == "i" && name == "borrow") {
            saw_instant = true;
            // Instants stamp at the context's current cycle.
            EXPECT_EQ(e.numberOr("ts", 0.0), 40.0);
            EXPECT_EQ(e.stringOr("s", ""), "t");
        }
        if (ph == "C" && name == "backlog") {
            saw_counter = true;
            ASSERT_NE(e.find("args"), nullptr);
            EXPECT_EQ(e.find("args")->numberOr("value", 0.0), 11.0);
        }
    }
    EXPECT_TRUE(saw_process_meta);
    EXPECT_TRUE(saw_thread_meta);
    EXPECT_TRUE(saw_span);
    EXPECT_TRUE(saw_instant);
    EXPECT_TRUE(saw_counter);
}

TEST_F(TimelineTest, ConcurrentEmissionKeepsPerTrackOrder)
{
    enable();
    constexpr size_t kTracks = 8;
    constexpr uint64_t kPerTrack = 200;
    parallelFor(kTracks, [&](size_t i) {
        TimelineContext &ctx = timelineContext();
        ctx.pid = 1;
        ctx.tid = static_cast<uint32_t>(i);
        for (uint64_t k = 0; k < kPerTrack; ++k)
            timelineSpan(TimelineCategory::Sim, "work", k * 10, 5, i,
                         "track");
        ctx = TimelineContext{};
    });

    TimelineStats stats = timelineStats();
    EXPECT_EQ(stats.events_recorded, kTracks * kPerTrack);
    EXPECT_EQ(stats.events_dropped, 0u);

    JsonValue doc = exportAndParse();
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    // Per (pid, tid) track: all events present, timestamps ascending in
    // file order whatever thread interleaving produced them.
    std::vector<uint64_t> seen(kTracks, 0);
    std::vector<double> last_ts(kTracks, -1.0);
    for (const JsonValue &e : events->elements()) {
        if (e.stringOr("ph", "") != "X")
            continue;
        auto tid = static_cast<size_t>(e.numberOr("tid", -1.0));
        ASSERT_LT(tid, kTracks);
        double ts = e.numberOr("ts", -1.0);
        EXPECT_GE(ts, last_ts[tid]);
        last_ts[tid] = ts;
        ++seen[tid];
    }
    for (size_t i = 0; i < kTracks; ++i)
        EXPECT_EQ(seen[i], kPerTrack) << "track " << i;
}

TEST_F(TimelineTest, SummarizeFoldsPerCategoryTotals)
{
    enable();
    timelineSpan(TimelineCategory::Cache, "l1_miss", 0, 100);
    timelineSpan(TimelineCategory::Cache, "l2_miss", 50, 300);
    timelineInstantNow(TimelineCategory::Stack, "borrow");
    timelineInstantNow(TimelineCategory::Stack, "flush");
    timelineInstantNow(TimelineCategory::Stack, "flush");
    timelineCounter(TimelineCategory::Dram, "dram_backlog", 10, 4);
    timelineCounter(TimelineCategory::Dram, "dram_backlog", 20, 9);

    JsonValue doc = exportAndParse();
    std::vector<TraceCategorySummary> summaries;
    std::string error;
    ASSERT_TRUE(summarizeTraceDocument(doc, summaries, error)) << error;
    ASSERT_EQ(summaries.size(), 3u); // cache, dram, stack (sorted)
    EXPECT_EQ(summaries[0].category, "cache");
    EXPECT_EQ(summaries[0].span_events, 2u);
    EXPECT_EQ(summaries[0].span_time, 400u);
    EXPECT_EQ(summaries[1].category, "dram");
    EXPECT_EQ(summaries[1].counter_events, 2u);
    EXPECT_EQ(summaries[1].counter_max, 9u);
    EXPECT_EQ(summaries[2].category, "stack");
    EXPECT_EQ(summaries[2].instant_events, 3u);
    EXPECT_EQ(summaries[2].span_time, 0u);

    JsonValue not_a_trace = JsonValue::object();
    EXPECT_FALSE(summarizeTraceDocument(not_a_trace, summaries, error));
}

TEST_F(TimelineTest, SummarizeEmptyTraceYieldsZeroTotals)
{
    // A configured-but-idle tracer exports a valid document with no
    // events; the fold must succeed and report exact zeros, not fail.
    enable();
    JsonValue doc = exportAndParse();
    TraceSummary summary;
    std::string error;
    ASSERT_TRUE(summarizeTrace(doc, summary, error)) << error;
    EXPECT_TRUE(summary.categories.empty());
    EXPECT_TRUE(summary.names.empty());
    EXPECT_EQ(summary.doc_events, 0u);
    EXPECT_EQ(summary.events_recorded, 0u);
    EXPECT_EQ(summary.events_dropped, 0u);
}

TEST_F(TimelineTest, SummarizeBreaksDownPerName)
{
    enable();
    timelineSpan(TimelineCategory::Sim, "fetch", 0, 40);
    timelineSpan(TimelineCategory::Sim, "fetch", 50, 10);
    timelineSpan(TimelineCategory::Sim, "intersect", 90, 20);
    timelineInstantNow(TimelineCategory::Stack, "borrow");

    JsonValue doc = exportAndParse();
    TraceSummary summary;
    std::string error;
    ASSERT_TRUE(summarizeTrace(doc, summary, error)) << error;
    ASSERT_EQ(summary.names.size(), 3u); // sorted by (category, name)
    EXPECT_EQ(summary.names[0].category, "sim");
    EXPECT_EQ(summary.names[0].name, "fetch");
    EXPECT_EQ(summary.names[0].span_events, 2u);
    EXPECT_EQ(summary.names[0].span_time, 50u);
    EXPECT_EQ(summary.names[1].name, "intersect");
    EXPECT_EQ(summary.names[1].span_time, 20u);
    EXPECT_EQ(summary.names[2].category, "stack");
    EXPECT_EQ(summary.names[2].name, "borrow");
    EXPECT_EQ(summary.names[2].instant_events, 1u);
    // Per-name rows sum to the per-category rows.
    uint64_t sim_name_time = summary.names[0].span_time +
                             summary.names[1].span_time;
    for (const TraceCategorySummary &s : summary.categories)
        if (s.category == "sim")
            EXPECT_EQ(s.span_time, sim_name_time);
}

TEST_F(TimelineTest, SummarizeReportsRingDrops)
{
    // With a ring that can only hold 4 of 12 events, the header's
    // recorded/dropped counters must surface through the summary so
    // consumers know the totals are lower bounds.
    enable(kTimelineAllCategories, 4);
    for (uint64_t i = 0; i < 12; ++i)
        timelineSpan(TimelineCategory::Sim, "span", i * 10, 5);

    JsonValue doc = exportAndParse();
    TraceSummary summary;
    std::string error;
    ASSERT_TRUE(summarizeTrace(doc, summary, error)) << error;
    EXPECT_EQ(summary.events_recorded, 12u);
    EXPECT_EQ(summary.events_dropped, 8u);
    EXPECT_EQ(summary.doc_events, 4u);
    ASSERT_EQ(summary.categories.size(), 1u);
    EXPECT_EQ(summary.categories[0].span_events, 4u);
}

TEST_F(TimelineTest, EndToEndTinySceneProducesMultiCategoryTrace)
{
    enable();
    RenderParams params;
    params.width = 24;
    params.height = 24;
    params.spp = 1;
    params.max_bounces = 2;
    auto workload = prepareWorkload(SceneId::BUNNY, ScaleProfile::Tiny,
                                    &params);
    // A small register-buffer forces RB spills, so the stack category
    // sees traffic even on a tiny scene.
    SimResult result =
        runWorkload(*workload, makeGpuConfig(StackConfig::sms(2, 8)));
    EXPECT_GT(result.cycles, 0u);

    JsonValue doc = exportAndParse();
    std::vector<TraceCategorySummary> summaries;
    std::string error;
    ASSERT_TRUE(summarizeTraceDocument(doc, summaries, error)) << error;
    uint64_t with_span_time = 0;
    uint64_t stack_activity = 0, dram_activity = 0;
    for (const TraceCategorySummary &s : summaries) {
        if (s.span_time > 0)
            ++with_span_time;
        if (s.category == "stack")
            stack_activity = s.instant_events + s.span_events;
        if (s.category == "dram")
            dram_activity = s.counter_events;
    }
    // Cold caches guarantee cache spans; every step emits sim spans;
    // the tiny RB guarantees spill instants; cold misses reach DRAM.
    EXPECT_GE(with_span_time, 2u);
    EXPECT_GT(stack_activity, 0u);
    EXPECT_GT(dram_activity, 0u);

    // The trace process carries the scene/config label for Perfetto.
    bool saw_label = false;
    for (const JsonValue &e : doc.find("traceEvents")->elements()) {
        if (e.stringOr("ph", "") == "M" &&
            e.stringOr("name", "") == "process_name") {
            std::string label =
                e.find("args")->stringOr("name", "");
            if (label.find("BUNNY") != std::string::npos)
                saw_label = true;
        }
    }
    EXPECT_TRUE(saw_label);
}

TEST_F(TimelineTest, ShutdownDiscardsRecordingAndDisables)
{
    enable();
    timelineSpan(TimelineCategory::Sim, "work", 0, 1);
    EXPECT_EQ(timelineStats().events_recorded, 1u);
    timelineShutdown();
    EXPECT_FALSE(timelineAnyOn());
    EXPECT_EQ(timelineStats().events_recorded, 0u);
    // Re-enabling starts a fresh recording.
    enable();
    EXPECT_EQ(timelineStats().events_recorded, 0u);
    timelineSpan(TimelineCategory::Sim, "work", 0, 1);
    EXPECT_EQ(timelineStats().events_recorded, 1u);
}

} // namespace
} // namespace sms
