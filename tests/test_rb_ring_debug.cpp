/**
 * @file
 * Death tests for the SMS_DEBUG_ASSERT guards on the ring-buffer hot
 * path. The release build compiles these guards out (NDEBUG), so this
 * translation unit un-defines NDEBUG *before* any include: check.hpp
 * then expands SMS_DEBUG_ASSERT to the checked form, and the inline
 * RbRing/WarpStackModel bodies instantiated here carry the guards.
 * This test binary is the only TU in its executable, so the checked
 * instantiations cannot collide with release-mode copies.
 *
 * These pin the underflow bug class this PR fixes: pop_back()/
 * pop_front() on an empty ring used to wrap count_ to ~4 billion and
 * corrupt every later size/occupancy computation instead of failing.
 */

#undef NDEBUG

#include <gtest/gtest.h>

#include "src/core/warp_stack.hpp"

namespace sms {
namespace {

TEST(RbRingDebugGuards, PopBackOnEmptyRingDies)
{
    RbRing ring;
    EXPECT_DEATH(ring.pop_back(), "pop_back on empty ring");
}

TEST(RbRingDebugGuards, PopFrontOnEmptyRingDies)
{
    RbRing ring;
    EXPECT_DEATH(ring.pop_front(), "pop_front on empty ring");
}

TEST(RbRingDebugGuards, PopAfterDrainDiesInsteadOfUnderflowing)
{
    RbRing ring;
    ring.push_back(1);
    ring.push_back(2);
    ring.pop_front();
    ring.pop_back();
    ASSERT_TRUE(ring.empty());
    EXPECT_DEATH(ring.pop_back(), "pop_back on empty ring");
}

/** The pooled per-lane rings inside WarpStackModel carry the same
 *  guards: popping a drained lane must fail loudly, not underflow. */
TEST(RbRingDebugGuards, ModelPeekOnEmptyLaneDies)
{
    StackConfig config;
    config.rb_entries = 4;
    WarpStackModel model(config, 0x0, 0x100000000ull);
    EXPECT_DEATH(model.peek(0), "peek on empty stack");
}

} // namespace
} // namespace sms
