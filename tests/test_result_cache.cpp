/**
 * @file
 * Tests for the content-addressed result cache: bit-exact SimResult
 * round-trips, key separation across configs/workloads, corruption
 * tolerance (an invalid entry is a counted failure and a miss, never a
 * wrong result), and the fully-warm sweep path that must perform zero
 * simulateJobs() calls.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <sys/stat.h>
#include <unistd.h>

#include "bench/bench_util.hpp"
#include "src/serve/result_cache.hpp"
#include "src/sim/gpu_sim.hpp"
#include "src/stats/report.hpp"
#include "src/trace/render.hpp"
#include "src/sim/traversal_tape.hpp"

namespace sms {
namespace {

/** RAII environment-variable override. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        had_old_ = old != nullptr;
        if (had_old_)
            old_ = old;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_old_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

  private:
    const char *name_;
    bool had_old_;
    std::string old_;
};

/** Fresh per-test cache directory, removed on destruction. */
class TempCacheDir
{
  public:
    TempCacheDir()
        : path_("/tmp/sms_result_cache_test_" +
                std::to_string(static_cast<long>(::getpid())) + "_" +
                std::to_string(counter_++))
    {
        std::string cmd = "rm -rf '" + path_ + "'";
        [[maybe_unused]] int rc = std::system(cmd.c_str());
    }
    ~TempCacheDir()
    {
        std::string cmd = "rm -rf '" + path_ + "'";
        [[maybe_unused]] int rc = std::system(cmd.c_str());
    }
    const std::string &path() const { return path_; }

  private:
    static int counter_;
    std::string path_;
};

int TempCacheDir::counter_ = 0;

TEST(ResultCache, DisabledWithoutEnv)
{
    ScopedEnv env("SMS_RESULT_CACHE", nullptr);
    EXPECT_EQ(resultCacheDir(), "");
}

TEST(ResultCache, RoundTripIsBitExact)
{
    TempCacheDir dir;
    resetResultCacheStats();

    auto workload = prepareWorkload(SceneId::REF, ScaleProfile::Tiny);
    ASSERT_NE(workload, nullptr);
    GpuConfig config = makeGpuConfig(StackConfig::sms());
    SimResult fresh = runWorkload(*workload, config);

    uint64_t fingerprint =
        workloadFingerprint(workload->render.jobs, workload->bvh);
    uint64_t digest = gpuConfigDigest(config);
    ASSERT_TRUE(storeCachedResult(dir.path(), workload->id,
                                  workload->profile, fingerprint, digest,
                                  fresh, 1.5));

    SimResult cached;
    double wall = 0.0;
    ASSERT_TRUE(loadCachedResult(dir.path(), workload->id,
                                 workload->profile, fingerprint, digest,
                                 cached, wall));
    // Every serialized counter survives the round trip (full JSON
    // record compare), and the recording run's wall rides along.
    EXPECT_EQ(toJson(fresh).dump(), toJson(cached).dump());
    EXPECT_DOUBLE_EQ(wall, 1.5);

    ResultCacheStats stats = resultCacheStats();
    EXPECT_EQ(stats.stores, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.failures, 0u);
}

TEST(ResultCache, MissingEntryIsQuietMiss)
{
    TempCacheDir dir;
    resetResultCacheStats();
    SimResult result;
    double wall = 0.0;
    EXPECT_FALSE(loadCachedResult(dir.path(), SceneId::REF,
                                  ScaleProfile::Tiny, 0x1234, 0x5678,
                                  result, wall));
    ResultCacheStats stats = resultCacheStats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.failures, 0u);
}

TEST(ResultCache, DigestSeparatesConfigs)
{
    // Every GpuConfig field participates in the digest: different stack
    // configurations — and the same configuration with a different L1
    // size — must key to different entries.
    uint64_t base =
        gpuConfigDigest(makeGpuConfig(StackConfig::baseline(8)));
    uint64_t sms = gpuConfigDigest(makeGpuConfig(StackConfig::sms()));
    uint64_t sms_l1 =
        gpuConfigDigest(makeGpuConfig(StackConfig::sms(), 64 * 1024));
    uint64_t deep =
        gpuConfigDigest(makeGpuConfig(StackConfig::baseline(16)));
    EXPECT_NE(base, sms);
    EXPECT_NE(sms, sms_l1);
    EXPECT_NE(base, deep);

    // Deterministic across calls.
    EXPECT_EQ(sms, gpuConfigDigest(makeGpuConfig(StackConfig::sms())));
}

TEST(ResultCache, DigestSeparatesTraversalVariantAxes)
{
    // The node-layout and ray-order axes change the functional
    // traversal, so configs differing ONLY there must map to distinct
    // cache cells; likewise the decode-latency knob.
    GpuConfig base = makeGpuConfig(StackConfig::sms());
    uint64_t d_base = gpuConfigDigest(base);

    GpuConfig q8 = base;
    q8.node_layout = NodeLayoutConfig::quantized(8);
    GpuConfig q4 = base;
    q4.node_layout = NodeLayoutConfig::quantized(4);
    GpuConfig mort = base;
    mort.ray_order = RayOrderConfig::octantMorton();
    GpuConfig both = q8;
    both.ray_order = RayOrderConfig::octantMorton();
    GpuConfig decode = base;
    decode.timing.node_decode_op += 2;

    EXPECT_NE(gpuConfigDigest(q8), d_base);
    EXPECT_NE(gpuConfigDigest(q4), d_base);
    EXPECT_NE(gpuConfigDigest(q8), gpuConfigDigest(q4));
    EXPECT_NE(gpuConfigDigest(mort), d_base);
    EXPECT_NE(gpuConfigDigest(both), gpuConfigDigest(q8));
    EXPECT_NE(gpuConfigDigest(both), gpuConfigDigest(mort));
    EXPECT_NE(gpuConfigDigest(decode), d_base);

    // An exact layout ignores bits_per_plane: not part of the key.
    GpuConfig exact_bits = base;
    exact_bits.node_layout.bits_per_plane = 12;
    EXPECT_EQ(gpuConfigDigest(exact_bits), d_base);
}

TEST(ResultCache, PathSeparatesKeys)
{
    std::string a = resultCachePath("/d", SceneId::REF,
                                    ScaleProfile::Tiny, 0x1, 0x2);
    std::string b = resultCachePath("/d", SceneId::REF,
                                    ScaleProfile::Tiny, 0x1, 0x3);
    std::string c = resultCachePath("/d", SceneId::REF,
                                    ScaleProfile::Small, 0x1, 0x2);
    std::string d = resultCachePath("/d", SceneId::WKND,
                                    ScaleProfile::Tiny, 0x1, 0x2);
    std::string e = resultCachePath("/d", SceneId::REF,
                                    ScaleProfile::Tiny, 0x9, 0x2);
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
    EXPECT_NE(a, d);
    EXPECT_NE(a, e);
}

TEST(ResultCache, CorruptEntryIsFailureThenRewritten)
{
    TempCacheDir dir;
    resetResultCacheStats();

    auto workload = prepareWorkload(SceneId::REF, ScaleProfile::Tiny);
    GpuConfig config = makeGpuConfig(StackConfig::sms());
    SimResult fresh = runWorkload(*workload, config);
    uint64_t fingerprint =
        workloadFingerprint(workload->render.jobs, workload->bvh);
    uint64_t digest = gpuConfigDigest(config);
    ASSERT_TRUE(storeCachedResult(dir.path(), workload->id,
                                  workload->profile, fingerprint, digest,
                                  fresh, 0.5));

    // Flip one byte in the middle of the entry.
    std::string path = resultCachePath(dir.path(), workload->id,
                                       workload->profile, fingerprint,
                                       digest);
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    ASSERT_GT(size, 32);
    std::fseek(f, size / 2, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, size / 2, SEEK_SET);
    std::fputc(c ^ 0xff, f);
    std::fclose(f);

    resetResultCacheStats();
    SimResult cached;
    double wall = 0.0;
    EXPECT_FALSE(loadCachedResult(dir.path(), workload->id,
                                  workload->profile, fingerprint, digest,
                                  cached, wall));
    ResultCacheStats stats = resultCacheStats();
    EXPECT_EQ(stats.failures, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 0u);

    // Rewritten entry validates again.
    ASSERT_TRUE(storeCachedResult(dir.path(), workload->id,
                                  workload->profile, fingerprint, digest,
                                  fresh, 0.5));
    ASSERT_TRUE(loadCachedResult(dir.path(), workload->id,
                                 workload->profile, fingerprint, digest,
                                 cached, wall));
    EXPECT_EQ(toJson(fresh).dump(), toJson(cached).dump());
}

TEST(ResultCache, TruncatedEntryIsRejected)
{
    TempCacheDir dir;
    resetResultCacheStats();

    auto workload = prepareWorkload(SceneId::REF, ScaleProfile::Tiny);
    GpuConfig config = makeGpuConfig(StackConfig::baseline(8));
    SimResult fresh = runWorkload(*workload, config);
    uint64_t fingerprint =
        workloadFingerprint(workload->render.jobs, workload->bvh);
    uint64_t digest = gpuConfigDigest(config);
    ASSERT_TRUE(storeCachedResult(dir.path(), workload->id,
                                  workload->profile, fingerprint, digest,
                                  fresh, 0.5));

    std::string path = resultCachePath(dir.path(), workload->id,
                                       workload->profile, fingerprint,
                                       digest);
    struct stat st{};
    ASSERT_EQ(::stat(path.c_str(), &st), 0);
    ASSERT_EQ(::truncate(path.c_str(), st.st_size / 3), 0);

    resetResultCacheStats();
    SimResult cached;
    double wall = 0.0;
    EXPECT_FALSE(loadCachedResult(dir.path(), workload->id,
                                  workload->profile, fingerprint, digest,
                                  cached, wall));
    EXPECT_EQ(resultCacheStats().failures, 1u);
}

TEST(ResultCache, WarmSweepSimulatesNothing)
{
    using benchutil::CellOrigin;
    using benchutil::runSweep;
    using benchutil::SweepResult;

    TempCacheDir dir;
    ScopedEnv env("SMS_RESULT_CACHE", dir.path().c_str());
    ScopedEnv no_wkld("SMS_WORKLOAD_CACHE", nullptr);

    std::vector<std::shared_ptr<Workload>> workloads = {
        prepareWorkload(SceneId::REF, ScaleProfile::Tiny),
        prepareWorkload(SceneId::WKND, ScaleProfile::Tiny),
    };
    std::vector<StackConfig> configs = {StackConfig::baseline(8),
                                        StackConfig::sms()};

    resetResultCacheStats();
    SweepResult cold = runSweep(workloads, configs, {}, 2);
    ResultCacheStats after_cold = resultCacheStats();
    EXPECT_EQ(after_cold.misses, 4u);
    EXPECT_EQ(after_cold.stores, 4u);
    EXPECT_EQ(after_cold.hits, 0u);
    for (const auto &row : cold.cell_origin)
        for (CellOrigin origin : row)
            EXPECT_EQ(origin, CellOrigin::Simulated);

    // The warm sweep must be served entirely from the cache: zero
    // simulateJobs() calls, every cell a hit, counters identical.
    resetResultCacheStats();
    resetSimulateJobsCallCount();
    SweepResult warm = runSweep(workloads, configs, {}, 2);
    EXPECT_EQ(simulateJobsCallCount(), 0u);
    ResultCacheStats after_warm = resultCacheStats();
    EXPECT_EQ(after_warm.hits, 4u);
    EXPECT_EQ(after_warm.misses, 0u);
    EXPECT_EQ(after_warm.failures, 0u);
    for (const auto &row : warm.cell_origin)
        for (CellOrigin origin : row)
            EXPECT_EQ(origin, CellOrigin::CacheHit);
    for (size_t s = 0; s < cold.results.size(); ++s)
        for (size_t c = 0; c < cold.results[s].size(); ++c)
            EXPECT_EQ(toJson(cold.results[s][c]).dump(),
                      toJson(warm.results[s][c]).dump())
                << "scene " << s << " config " << c;
}

} // namespace
} // namespace sms
