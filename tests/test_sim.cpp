/**
 * @file
 * Tests of the GPU timing simulator: determinism, oracle agreement,
 * configuration-independent functional behaviour, and the monotonic
 * traffic properties the paper's evaluation rests on.
 */

#include <gtest/gtest.h>

#include "src/stats/report.hpp"
#include "src/trace/render.hpp"

namespace sms {
namespace {

/** Shared tiny workload so the suite stays fast. */
const Workload &
bunnyWorkload()
{
    static std::shared_ptr<Workload> workload = [] {
        RenderParams params;
        params.width = 24;
        params.height = 24;
        params.spp = 1;
        params.max_bounces = 2;
        return prepareWorkload(SceneId::BUNNY, ScaleProfile::Tiny,
                               &params);
    }();
    return *workload;
}

const Workload &
shipWorkload()
{
    static std::shared_ptr<Workload> workload = [] {
        RenderParams params;
        params.width = 24;
        params.height = 24;
        params.spp = 1;
        params.max_bounces = 2;
        return prepareWorkload(SceneId::SHIP, ScaleProfile::Tiny,
                               &params);
    }();
    return *workload;
}

class SimConfigTest : public ::testing::TestWithParam<StackConfig>
{
};

TEST_P(SimConfigTest, MatchesFunctionalOracle)
{
    // runWorkload() asserts mismatches == 0 internally; surface it.
    SimResult r = runWorkload(bunnyWorkload(), makeGpuConfig(GetParam()));
    EXPECT_EQ(r.mismatches, 0u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.instructions, 0u);
}

TEST_P(SimConfigTest, Deterministic)
{
    SimResult a = runWorkload(shipWorkload(), makeGpuConfig(GetParam()));
    SimResult b = runWorkload(shipWorkload(), makeGpuConfig(GetParam()));
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.offchip_accesses, b.offchip_accesses);
    EXPECT_EQ(a.shared_mem.conflict_cycles, b.shared_mem.conflict_cycles);
    EXPECT_EQ(a.depth_hist.total(), b.depth_hist.total());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SimConfigTest,
    ::testing::Values(StackConfig::baseline(8), StackConfig::baseline(2),
                      StackConfig::rbFull(), StackConfig::withSh(8, 8),
                      StackConfig::withSh(8, 8, true, false),
                      StackConfig::sms(), StackConfig::sms(2, 8)),
    [](const auto &info) {
        std::string name = info.param.name();
        for (char &c : name)
            if (c == '+')
                c = '_';
        return name;
    });

TEST(Sim, InstructionsAreConfigIndependent)
{
    // Normalized IPC must reduce to a cycle ratio: the instruction
    // stream cannot depend on the stack configuration.
    const Workload &w = shipWorkload();
    SimResult base = runWorkload(w, makeGpuConfig(StackConfig::baseline(8)));
    SimResult full = runWorkload(w, makeGpuConfig(StackConfig::rbFull()));
    SimResult sms = runWorkload(w, makeGpuConfig(StackConfig::sms()));
    EXPECT_EQ(base.instructions, full.instructions);
    EXPECT_EQ(base.instructions, sms.instructions);
    EXPECT_EQ(base.ops.node_visits, sms.ops.node_visits);
    EXPECT_EQ(base.ops.prim_tests, sms.ops.prim_tests);
    EXPECT_EQ(base.ops.steps, sms.ops.steps);
}

TEST(Sim, DepthHistogramConfigIndependent)
{
    // Stack depth is a property of the traversal, not of the hardware
    // realization (Fig. 4/5 are measured once).
    const Workload &w = shipWorkload();
    SimResult a = runWorkload(w, makeGpuConfig(StackConfig::baseline(8)));
    SimResult b = runWorkload(w, makeGpuConfig(StackConfig::sms()));
    EXPECT_EQ(a.depth_hist.total(), b.depth_hist.total());
    EXPECT_EQ(a.depth_hist.maxSeen(), b.depth_hist.maxSeen());
    EXPECT_DOUBLE_EQ(a.depth_hist.mean(), b.depth_hist.mean());
}

TEST(Sim, RbFullNeverTouchesMemoryForStacks)
{
    SimResult r =
        runWorkload(shipWorkload(), makeGpuConfig(StackConfig::rbFull()));
    EXPECT_EQ(r.stack.rb_spills, 0u);
    EXPECT_EQ(r.stack.global_stores, 0u);
    EXPECT_EQ(r.stack.global_loads, 0u);
    EXPECT_EQ(r.stack.sh_stores, 0u);
    EXPECT_EQ(r.shared_mem.accesses, 0u);
}

TEST(Sim, SmallerRbSpillsMore)
{
    const Workload &w = shipWorkload();
    SimResult rb2 = runWorkload(w, makeGpuConfig(StackConfig::baseline(2)));
    SimResult rb8 = runWorkload(w, makeGpuConfig(StackConfig::baseline(8)));
    SimResult rb16 =
        runWorkload(w, makeGpuConfig(StackConfig::baseline(16)));
    EXPECT_GT(rb2.stack.rb_spills, rb8.stack.rb_spills);
    EXPECT_GT(rb8.stack.rb_spills, rb16.stack.rb_spills);
    EXPECT_GE(rb2.offchip_accesses, rb8.offchip_accesses);
}

TEST(Sim, ShStackAbsorbsOffchipTraffic)
{
    // The paper's core claim: the SH stack converts off-chip stack
    // traffic into shared-memory traffic.
    const Workload &w = shipWorkload();
    SimResult base = runWorkload(w, makeGpuConfig(StackConfig::baseline(8)));
    SimResult sh = runWorkload(w, makeGpuConfig(StackConfig::withSh(8, 8)));
    EXPECT_LT(sh.stack.global_stores, base.stack.global_stores);
    EXPECT_GT(sh.stack.sh_stores, 0u);
    EXPECT_LE(sh.offchip_accesses, base.offchip_accesses);
    EXPECT_GT(sh.shared_mem.accesses, 0u);
}

TEST(Sim, ReallocationReducesGlobalSpills)
{
    const Workload &w = shipWorkload();
    SimResult sh =
        runWorkload(w, makeGpuConfig(StackConfig::withSh(8, 8, true,
                                                         false)));
    SimResult ra = runWorkload(w, makeGpuConfig(StackConfig::sms()));
    EXPECT_GT(ra.stack.borrows, 0u);
    EXPECT_LE(ra.stack.global_stores, sh.stack.global_stores);
}

TEST(Sim, SkewReducesConflictCycles)
{
    const Workload &w = shipWorkload();
    SimResult plain =
        runWorkload(w, makeGpuConfig(StackConfig::withSh(8, 8)));
    SimResult skew = runWorkload(
        w, makeGpuConfig(StackConfig::withSh(8, 8, true, false)));
    EXPECT_LT(skew.shared_mem.conflict_cycles,
              plain.shared_mem.conflict_cycles);
}

TEST(Sim, ShCarveOutShrinksL1)
{
    GpuConfig none = makeGpuConfig(StackConfig::baseline(8));
    GpuConfig sh8 = makeGpuConfig(StackConfig::withSh(8, 8));
    GpuConfig sh16 = makeGpuConfig(StackConfig::withSh(8, 16));
    EXPECT_EQ(none.effectiveL1Bytes(), 64u * 1024u);
    EXPECT_EQ(sh8.effectiveL1Bytes(), 56u * 1024u);
    EXPECT_EQ(sh16.effectiveL1Bytes(), 48u * 1024u);
    GpuConfig forced = makeGpuConfig(StackConfig::baseline(8), 16 * 1024);
    EXPECT_EQ(forced.effectiveL1Bytes(), 16u * 1024u);
}

TEST(Sim, LargerL1Helps)
{
    const Workload &w = bunnyWorkload();
    SimResult small = runWorkload(
        w, makeGpuConfig(StackConfig::baseline(8), 16 * 1024));
    SimResult large = runWorkload(
        w, makeGpuConfig(StackConfig::baseline(8), 256 * 1024));
    EXPECT_LT(large.cycles, small.cycles);
}

TEST(Sim, JobAccountingMatchesWorkload)
{
    const Workload &w = bunnyWorkload();
    SimResult r = runWorkload(w, makeGpuConfig(StackConfig::baseline(8)));
    EXPECT_EQ(r.jobs, w.render.jobs.size());
    EXPECT_EQ(r.rays, w.render.rays);
    EXPECT_GT(r.warps, 0u);
}

TEST(Sim, DepthTraceOnlyForRequestedWarps)
{
    SimOptions options;
    options.depth_trace_warps = {0};
    SimResult r = runWorkload(bunnyWorkload(),
                              makeGpuConfig(StackConfig::baseline(8)),
                              options);
    EXPECT_GT(r.depth_trace.size(), 0u);
    for (const DepthTraceRecord &rec : r.depth_trace)
        EXPECT_EQ(rec.warp_id, 0u);

    SimResult no_trace = runWorkload(
        bunnyWorkload(), makeGpuConfig(StackConfig::baseline(8)));
    EXPECT_TRUE(no_trace.depth_trace.empty());
}

TEST(Sim, MoreSmsFinishFaster)
{
    // Throughput sanity: doubling the SM count cannot slow the frame.
    const Workload &w = shipWorkload();
    GpuConfig few = makeGpuConfig(StackConfig::baseline(8));
    few.num_sms = 2;
    GpuConfig many = makeGpuConfig(StackConfig::baseline(8));
    many.num_sms = 8;
    SimResult few_r = runWorkload(w, few);
    SimResult many_r = runWorkload(w, many);
    EXPECT_LE(many_r.cycles, few_r.cycles);
}

TEST(Sim, CyclesCoverZeroLatencyCompletionTies)
{
    // Regression: frame cycles are the maximum over ALL event
    // retirement cycles, not just the event the heap happens to pop
    // last. A job whose lanes are all inactive retires with zero
    // latency, tying with whatever else shares its issue cycle —
    // appending one must never change the reported frame length, and
    // the seq tie-break must keep the whole result deterministic.
    const Workload &w = bunnyWorkload();
    GpuConfig config = makeGpuConfig(StackConfig::sms());

    SimResult base = simulateJobs(w.scene, w.bvh, w.render.jobs, config);

    WarpJobList padded = w.render.jobs;
    WarpJob idle;
    idle.job_id = static_cast<uint32_t>(padded.size());
    idle.warp_id = padded.back().warp_id + 1;
    padded.push_back(idle);

    SimResult with_idle = simulateJobs(w.scene, w.bvh, padded, config);
    EXPECT_EQ(with_idle.cycles, base.cycles);
    EXPECT_EQ(with_idle.instructions, base.instructions);
    EXPECT_EQ(with_idle.jobs, base.jobs + 1);

    // Exact-JSON determinism across repeated runs, including the
    // padded job list where completion ties are guaranteed.
    SimResult again = simulateJobs(w.scene, w.bvh, padded, config);
    EXPECT_EQ(toJson(with_idle).dump(), toJson(again).dump());
}

TEST(Sim, EmptyJobListCompletes)
{
    const Workload &w = bunnyWorkload();
    SimResult r = simulateJobs(w.scene, w.bvh, {},
                               makeGpuConfig(StackConfig::baseline(8)));
    EXPECT_EQ(r.cycles, 0u);
    EXPECT_EQ(r.jobs, 0u);
}

} // namespace
} // namespace sms
