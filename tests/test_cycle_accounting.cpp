/**
 * @file
 * Tests of the top-down cycle accounting: leaf-name round trips, the
 * CycleAccount arithmetic, the conservation invariant across the
 * paper's configuration matrix (every simulated warp-active cycle is
 * attributed to exactly one leaf, at zero epsilon), the slot-budget
 * closure via idle.done, the JSON block emitted with every bench
 * record, and a cross-validation of the accounting totals against the
 * independently recorded timeline trace.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/stats/cycle_accounting.hpp"
#include "src/stats/report.hpp"
#include "src/stats/timeline.hpp"
#include "src/trace/render.hpp"

namespace sms {
namespace {

TEST(CycleLeaf, NamesRoundTrip)
{
    for (int i = 0; i < kCycleLeafCount; ++i) {
        CycleLeaf leaf = static_cast<CycleLeaf>(i);
        EXPECT_EQ(cycleLeafFromName(cycleLeafName(leaf)), i);
    }
    EXPECT_EQ(cycleLeafFromName("bogus"), -1);
    EXPECT_EQ(cycleLeafFromName(""), -1);
    // Exactly one idle leaf; everything else counts as warp-active.
    int idle = 0;
    for (int i = 0; i < kCycleLeafCount; ++i)
        if (cycleLeafIsIdle(static_cast<CycleLeaf>(i)))
            ++idle;
    EXPECT_EQ(idle, 1);
    EXPECT_TRUE(cycleLeafIsIdle(CycleLeaf::IdleDone));
}

TEST(CycleAccount, SumsAndMerge)
{
    CycleAccount a;
    a.add(CycleLeaf::Issue, 10);
    a.add(CycleLeaf::Intersect, 5);
    a.add(CycleLeaf::StallMemL2Miss, 3);
    a.warp_active_cycles = 18;
    EXPECT_EQ(a.activeSum(), 18u);
    EXPECT_TRUE(a.conserved());
    a.add(CycleLeaf::IdleDone, 4);
    a.slot_cycles = 22;
    EXPECT_EQ(a.activeSum(), 18u); // idle is not warp-active
    EXPECT_EQ(a.totalSum(), 22u);
    EXPECT_TRUE(a.conserved());

    CycleAccount b;
    b.add(CycleLeaf::Issue, 1);
    b.warp_active_cycles = 1;
    b.slot_cycles = 1;
    b.merge(a);
    EXPECT_EQ(b.leaf(CycleLeaf::Issue), 11u);
    EXPECT_EQ(b.warp_active_cycles, 19u);
    EXPECT_EQ(b.slot_cycles, 23u);
    EXPECT_TRUE(b.conserved());

    CycleAccount leaky;
    leaky.add(CycleLeaf::Issue, 2);
    leaky.warp_active_cycles = 3;
    EXPECT_FALSE(leaky.conserved());
}

TEST(CycleAccount, JsonShape)
{
    CycleAccount a;
    a.add(CycleLeaf::StallStackBorrowChain, 7);
    a.add(CycleLeaf::IdleDone, 2);
    a.warp_active_cycles = 7;
    a.slot_cycles = 9;
    JsonValue v = toJson(a);
    EXPECT_EQ(v.numberOr("version", 0),
              static_cast<double>(kCycleAccountingVersion));
    EXPECT_EQ(v.numberOr("warp_active_cycles", 0), 7.0);
    EXPECT_EQ(v.numberOr("slot_cycles", 0), 9.0);
    const JsonValue *leaves = v.find("leaves");
    ASSERT_NE(leaves, nullptr);
    EXPECT_EQ(leaves->numberOr("stall.stack.borrow_chain", 0), 7.0);
    EXPECT_EQ(leaves->numberOr("idle.done", 0), 2.0);
    // The stall.arch.* leaves only exist under the non-default
    // traversal architectures; at zero they are suppressed so
    // default-architecture records stay byte-identical to older files.
    EXPECT_EQ(leaves->size(), static_cast<size_t>(kCycleLeafCount) - 2);
    EXPECT_EQ(leaves->find("stall.arch.backtrack"), nullptr);
    EXPECT_EQ(leaves->find("stall.arch.predictor"), nullptr);
    a.add(CycleLeaf::StallArchBacktrack, 3);
    a.add(CycleLeaf::StallArchPredictor, 4);
    JsonValue v2 = toJson(a);
    const JsonValue *leaves2 = v2.find("leaves");
    ASSERT_NE(leaves2, nullptr);
    EXPECT_EQ(leaves2->size(), static_cast<size_t>(kCycleLeafCount));
    EXPECT_EQ(leaves2->numberOr("stall.arch.backtrack", 0), 3.0);
    EXPECT_EQ(leaves2->numberOr("stall.arch.predictor", 0), 4.0);
}

class CycleAccountingSim : public ::testing::Test
{
  protected:
    std::shared_ptr<Workload>
    makeWorkload(SceneId id = SceneId::BUNNY)
    {
        RenderParams params;
        params.width = 20;
        params.height = 20;
        params.spp = 1;
        params.max_bounces = 2;
        return prepareWorkload(id, ScaleProfile::Tiny, &params);
    }

    /** Every invariant the accounting promises, on one result. */
    void
    expectConserved(const SimResult &r, const GpuConfig &config)
    {
        // Run-level conservation at zero epsilon.
        EXPECT_EQ(r.accounting.activeSum(), r.accounting.warp_active_cycles);
        // Slot-budget closure: idle.done absorbs exactly the unused
        // warp-slot cycles, nothing more.
        EXPECT_EQ(r.accounting.totalSum(), r.accounting.slot_cycles);
        EXPECT_EQ(r.accounting.slot_cycles,
                  static_cast<uint64_t>(config.num_sms) *
                      config.max_warps_per_rt * r.cycles);

        // Per-SM trees carry the same invariants and sum to the run
        // aggregate leaf by leaf.
        ASSERT_EQ(r.sm_accounting.size(), config.num_sms);
        CycleAccount sum;
        for (const CycleAccount &sm : r.sm_accounting) {
            EXPECT_EQ(sm.activeSum(), sm.warp_active_cycles);
            EXPECT_EQ(sm.totalSum(), sm.slot_cycles);
            EXPECT_EQ(sm.slot_cycles,
                      static_cast<uint64_t>(config.max_warps_per_rt) *
                          r.cycles);
            sum.merge(sm);
        }
        for (int i = 0; i < kCycleLeafCount; ++i)
            EXPECT_EQ(sum.leaves[i], r.accounting.leaves[i])
                << cycleLeafName(static_cast<CycleLeaf>(i));
        EXPECT_EQ(sum.warp_active_cycles,
                  r.accounting.warp_active_cycles);
    }
};

TEST_F(CycleAccountingSim, ConservationHoldsAcrossConfigMatrix)
{
    auto workload = makeWorkload();
    const StackConfig configs[] = {
        StackConfig::baseline(8), StackConfig::baseline(2),
        StackConfig::rbFull(),    StackConfig::withSh(8, 8),
        StackConfig::sms(),       StackConfig::sms(2, 8),
    };
    for (const StackConfig &stack : configs) {
        GpuConfig config = makeGpuConfig(stack);
        SimResult r = runWorkload(*workload, config);
        SCOPED_TRACE(stack.name());
        ASSERT_GT(r.cycles, 0u);
        expectConserved(r, config);
        // Every run does issue and intersection work.
        EXPECT_GT(r.accounting.leaf(CycleLeaf::Issue), 0u);
        EXPECT_GT(r.accounting.leaf(CycleLeaf::Intersect), 0u);
    }
}

TEST_F(CycleAccountingSim, StallLeavesTrackTheStackConfig)
{
    auto workload = makeWorkload();
    SimResult full =
        runWorkload(*workload, makeGpuConfig(StackConfig::rbFull()));
    SimResult rb2 =
        runWorkload(*workload, makeGpuConfig(StackConfig::baseline(2)));

    auto stack_stalls = [](const SimResult &r) {
        return r.accounting.leaf(CycleLeaf::StallStackSpill) +
               r.accounting.leaf(CycleLeaf::StallStackRefill) +
               r.accounting.leaf(CycleLeaf::StallStackBorrowChain) +
               r.accounting.leaf(CycleLeaf::StallStackForcedFlush);
    };
    // A full-depth register buffer never talks to the stack manager, so
    // no cycle can be attributed to a stack stall; cold caches still
    // produce memory-stall cycles.
    EXPECT_EQ(stack_stalls(full), 0u);
    EXPECT_GT(full.accounting.leaf(CycleLeaf::StallMemL2Miss) +
                  full.accounting.leaf(CycleLeaf::StallMemL1Miss) +
                  full.accounting.leaf(CycleLeaf::StallMemDramQueue),
              0u);
    // A 2-entry RB spills constantly; some of that manager traffic must
    // surface as attributed stall cycles.
    EXPECT_GT(stack_stalls(rb2), 0u);
}

TEST_F(CycleAccountingSim, SimResultJsonCarriesTheAccountingBlock)
{
    auto workload = makeWorkload();
    GpuConfig config = makeGpuConfig(StackConfig::sms(2, 8));
    SimResult r = runWorkload(*workload, config);

    JsonValue v = toJson(r);
    const JsonValue *acct = v.find("cycle_accounting");
    ASSERT_NE(acct, nullptr);
    EXPECT_EQ(acct->numberOr("version", 0),
              static_cast<double>(kCycleAccountingVersion));
    EXPECT_EQ(acct->numberOr("warp_active_cycles", 0),
              static_cast<double>(r.accounting.warp_active_cycles));
    EXPECT_EQ(acct->numberOr("slot_cycles", 0),
              static_cast<double>(r.accounting.slot_cycles));

    const JsonValue *leaves = acct->find("leaves");
    ASSERT_NE(leaves, nullptr);
    uint64_t active_from_json = 0;
    for (const auto &[name, count] : leaves->members()) {
        int idx = cycleLeafFromName(name);
        ASSERT_GE(idx, 0) << name;
        EXPECT_EQ(count.asU64(), r.accounting.leaves[idx]) << name;
        if (!cycleLeafIsIdle(static_cast<CycleLeaf>(idx)))
            active_from_json += count.asU64();
    }
    // Conservation survives the JSON round trip.
    EXPECT_EQ(active_from_json, r.accounting.warp_active_cycles);

    const JsonValue *per_sm = acct->find("per_sm");
    ASSERT_NE(per_sm, nullptr);
    ASSERT_TRUE(per_sm->isArray());
    EXPECT_EQ(per_sm->size(), r.sm_accounting.size());
}

/**
 * The accounting and the timeline tracer observe the same run through
 * two independent code paths; their totals must agree exactly:
 *
 *  - the intersect leaf equals the summed sim/"intersect" spans;
 *  - issue plus the memory-stall leaves equal the summed sim/"fetch"
 *    plus sim/"stack" spans (a fetch window is issue work plus its
 *    miss/queue stalls; every stack round is issue work);
 *  - the stack-stall and bank-conflict leaves together equal the
 *    summed stack/"mgr_stall" spans (the manager-busy window is what
 *    those leaves decompose).
 */
TEST_F(CycleAccountingSim, AccountingAgreesWithTimelineTrace)
{
    timelineShutdown();
    TimelineConfig tl;
    tl.categories = static_cast<uint32_t>(TimelineCategory::Sim) |
                    static_cast<uint32_t>(TimelineCategory::Stack);
    tl.ring_capacity = 1u << 21;
    timelineConfigure(tl);

    auto workload = makeWorkload();
    SimResult r =
        runWorkload(*workload, makeGpuConfig(StackConfig::sms(2, 8)));

    std::string path = testing::TempDir() + "sms_accounting_trace.json";
    std::string error;
    ASSERT_TRUE(timelineExportTo(path, error)) << error;
    TimelineStats stats = timelineStats();
    timelineShutdown();
    ASSERT_EQ(stats.events_dropped, 0u)
        << "ring too small for the cross-validation to be exact";

    JsonValue doc;
    {
        // The trace is one JSON document, not JSONL; parse directly.
        std::ifstream in(path, std::ios::binary);
        ASSERT_TRUE(in.good());
        std::ostringstream buffer;
        buffer << in.rdbuf();
        ASSERT_TRUE(JsonValue::parse(buffer.str(), doc, error)) << error;
    }
    std::remove(path.c_str());

    TraceSummary summary;
    ASSERT_TRUE(summarizeTrace(doc, summary, error)) << error;

    auto span_time = [&](const char *cat, const char *name) {
        for (const TraceNameSummary &n : summary.names)
            if (n.category == cat && n.name == name)
                return n.span_time;
        return uint64_t{0};
    };

    const CycleAccount &a = r.accounting;
    EXPECT_EQ(a.leaf(CycleLeaf::Intersect), span_time("sim", "intersect"));
    EXPECT_EQ(a.leaf(CycleLeaf::Issue) +
                  a.leaf(CycleLeaf::StallMemL1Miss) +
                  a.leaf(CycleLeaf::StallMemL2Miss) +
                  a.leaf(CycleLeaf::StallMemDramQueue),
              span_time("sim", "fetch") + span_time("sim", "stack"));
    EXPECT_EQ(a.leaf(CycleLeaf::StallStackSpill) +
                  a.leaf(CycleLeaf::StallStackRefill) +
                  a.leaf(CycleLeaf::StallStackBorrowChain) +
                  a.leaf(CycleLeaf::StallStackForcedFlush) +
                  a.leaf(CycleLeaf::StallShmemBankConflict),
              span_time("stack", "mgr_stall"));
    // The three identities above partition every warp-active cycle.
    EXPECT_EQ(a.warp_active_cycles,
              span_time("sim", "intersect") + span_time("sim", "fetch") +
                  span_time("sim", "stack") +
                  span_time("stack", "mgr_stall"));
}

TEST(CycleAccountingEnv, CheckToggleReadsEnvOnce)
{
    // The value is cached after first use; we can only assert it is
    // stable, not drive it from here.
    bool first = cycleAccountingChecksEnabled();
    EXPECT_EQ(cycleAccountingChecksEnabled(), first);
}

} // namespace
} // namespace sms
