/**
 * @file
 * Quantized node-layout tests: configuration arithmetic, the
 * conservative-containment guarantee of the builder (randomized
 * property test), and a differential traversal check — decoded nodes
 * must visit a superset of the exact visit set while producing
 * identical closest hits.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/bvh/node_layout.hpp"
#include "src/bvh/traverse.hpp"
#include "src/bvh/wide_bvh.hpp"
#include "src/scene/registry.hpp"
#include "src/util/rng.hpp"

namespace sms {
namespace {

Scene
randomSoup(uint32_t count, uint64_t seed)
{
    Scene scene;
    uint16_t mat = scene.addMaterial({});
    Pcg32 rng(seed);
    for (uint32_t i = 0; i < count; ++i) {
        Vec3 c{rng.nextRange(-50, 50), rng.nextRange(-50, 50),
               rng.nextRange(-50, 50)};
        auto jitter = [&]() {
            return Vec3{rng.nextRange(-2.0f, 2.0f),
                        rng.nextRange(-2.0f, 2.0f),
                        rng.nextRange(-2.0f, 2.0f)};
        };
        scene.addTriangle(
            Triangle(c + jitter(), c + jitter(), c + jitter()), mat);
    }
    for (uint32_t i = 0; i < count / 8 + 1; ++i)
        scene.addSphere(Sphere({rng.nextRange(-50, 50),
                                rng.nextRange(-50, 50),
                                rng.nextRange(-50, 50)},
                               rng.nextRange(0.3f, 3.0f)),
                        mat);
    return scene;
}

Ray
randomRay(Pcg32 &rng)
{
    Vec3 dir;
    do {
        dir = Vec3{rng.nextRange(-1, 1), rng.nextRange(-1, 1),
                   rng.nextRange(-1, 1)};
    } while (lengthSquared(dir) < 1e-4f);
    return Ray({rng.nextRange(-60, 60), rng.nextRange(-60, 60),
                rng.nextRange(-60, 60)},
               normalize(dir), 1e-4f);
}

/**
 * Internal nodes reachable from the root by boxes intersecting the
 * FIXED ray segment (no tMax shrinking). Without pruning, conservative
 * box inflation can only add reachable nodes, making the superset
 * property exact rather than order-dependent.
 */
std::set<uint32_t>
reachableNodes(const WideBvh &bvh, const std::vector<WideNode> &nodes,
               const Ray &ray)
{
    std::set<uint32_t> visited;
    if (bvh.empty() || !bvh.rootRef().isInternal())
        return visited;
    std::vector<uint32_t> stack{bvh.rootRef().nodeIndex()};
    while (!stack.empty()) {
        uint32_t index = stack.back();
        stack.pop_back();
        if (!visited.insert(index).second)
            continue;
        const WideNode &node = nodes[index];
        for (uint8_t c = 0; c < node.child_count; ++c) {
            if (!node.children[c].isInternal())
                continue;
            float t;
            if (node.child_bounds[c].intersect(ray, t))
                stack.push_back(node.children[c].nodeIndex());
        }
    }
    return visited;
}

/** Closest-hit traversal reading node boxes from @p nodes. */
HitRecord
closestHitOver(const Scene &scene, const WideBvh &bvh,
               const std::vector<WideNode> &nodes, Ray ray)
{
    HitRecord hit;
    if (bvh.empty())
        return hit;
    uint32_t tested = 0;
    std::vector<ChildRef> stack{bvh.rootRef()};
    while (!stack.empty()) {
        ChildRef ref = stack.back();
        stack.pop_back();
        if (ref.isLeaf()) {
            intersectLeaf(scene, bvh, ref, ray, hit, false, tested);
            continue;
        }
        ChildHits hits =
            intersectNodeChildren(nodes[ref.nodeIndex()], ray);
        for (int i = hits.count - 1; i >= 0; --i)
            stack.push_back(hits.refs[i]);
    }
    return hit;
}

// ---------------------------------------------------------------------
// Layout configuration arithmetic
// ---------------------------------------------------------------------

TEST(NodeLayoutConfig, ExactMatchesWideBvhLayout)
{
    NodeLayoutConfig exact = NodeLayoutConfig::exact();
    EXPECT_FALSE(exact.isQuantized());
    EXPECT_EQ(exact.nodeBytes(), WideBvh::kNodeBytes);
    EXPECT_EQ(exact.nodeAddress(0), WideBvh::kNodeBase);
    EXPECT_EQ(exact.nodeAddress(7),
              WideBvh::kNodeBase + 7 * WideBvh::kNodeBytes);
    EXPECT_EQ(exact.name(), "exact");
}

TEST(NodeLayoutConfig, QuantizedFootprint)
{
    // 16 B header + 24 B refs + ceil(36*bits/8) B planes.
    EXPECT_EQ(NodeLayoutConfig::quantized(8).nodeBytes(), 76u);
    EXPECT_EQ(NodeLayoutConfig::quantized(4).nodeBytes(), 58u);
    EXPECT_EQ(NodeLayoutConfig::quantized(16).nodeBytes(), 112u);
    EXPECT_EQ(NodeLayoutConfig::quantized(1).nodeBytes(),
              16u + 24u + 5u);
    EXPECT_LT(NodeLayoutConfig::quantized(16).nodeBytes(),
              WideBvh::kNodeBytes);
    EXPECT_EQ(NodeLayoutConfig::quantized(8).name(), "q8");
    EXPECT_EQ(NodeLayoutConfig::quantized(12).name(), "q12");
}

TEST(NodeLayoutConfig, Equality)
{
    EXPECT_EQ(NodeLayoutConfig::exact(), NodeLayoutConfig::exact());
    EXPECT_EQ(NodeLayoutConfig::quantized(8),
              NodeLayoutConfig::quantized(8));
    EXPECT_NE(NodeLayoutConfig::quantized(8),
              NodeLayoutConfig::quantized(4));
    EXPECT_NE(NodeLayoutConfig::exact(), NodeLayoutConfig::quantized(8));
    // bits_per_plane is irrelevant while the layout is exact.
    NodeLayoutConfig a = NodeLayoutConfig::exact();
    NodeLayoutConfig b = NodeLayoutConfig::exact();
    b.bits_per_plane = 12;
    EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------
// Conservative containment (randomized property)
// ---------------------------------------------------------------------

TEST(QuantizedBvh, ConservativeContainmentProperty)
{
    for (uint64_t seed : {1u, 7u, 42u}) {
        for (uint32_t count : {16u, 120u, 600u}) {
            Scene scene = randomSoup(count, seed);
            WideBvh bvh = WideBvh::build(scene);
            for (uint32_t bits : {2u, 4u, 8u, 12u, 16u}) {
                QuantizedBvh qbvh;
                qbvh.build(bvh, NodeLayoutConfig::quantized(bits));
                ASSERT_EQ(qbvh.nodes().size(), bvh.nodes().size());
                for (size_t n = 0; n < bvh.nodes().size(); ++n) {
                    const WideNode &exact = bvh.nodes()[n];
                    const WideNode &decoded = qbvh.node(
                        static_cast<uint32_t>(n));
                    ASSERT_EQ(decoded.child_count, exact.child_count);
                    for (uint8_t c = 0; c < exact.child_count; ++c) {
                        EXPECT_EQ(decoded.children[c],
                                  exact.children[c]);
                        EXPECT_TRUE(decoded.child_bounds[c].contains(
                            exact.child_bounds[c]))
                            << "seed=" << seed << " count=" << count
                            << " bits=" << bits << " node=" << n
                            << " child=" << int(c);
                    }
                }
            }
        }
    }
}

TEST(QuantizedBvh, CoarseGridsStayFinite)
{
    // 1-bit planes collapse every box onto a 2-point grid; containment
    // must still hold and boxes must not blow up to non-finite extents.
    Scene scene = randomSoup(64, 3);
    WideBvh bvh = WideBvh::build(scene);
    QuantizedBvh qbvh;
    qbvh.build(bvh, NodeLayoutConfig::quantized(1));
    for (size_t n = 0; n < bvh.nodes().size(); ++n) {
        const WideNode &exact = bvh.nodes()[n];
        const WideNode &decoded = qbvh.node(static_cast<uint32_t>(n));
        for (uint8_t c = 0; c < exact.child_count; ++c) {
            EXPECT_TRUE(decoded.child_bounds[c].contains(
                exact.child_bounds[c]));
            for (int axis = 0; axis < 3; ++axis) {
                EXPECT_TRUE(std::isfinite(
                    decoded.child_bounds[c].lo[axis]));
                EXPECT_TRUE(std::isfinite(
                    decoded.child_bounds[c].hi[axis]));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Differential traversal
// ---------------------------------------------------------------------

TEST(QuantizedBvh, TraversalVisitsSupersetWithIdenticalHits)
{
    for (uint64_t seed : {11u, 29u}) {
        Scene scene = randomSoup(400, seed);
        WideBvh bvh = WideBvh::build(scene);
        QuantizedBvh qbvh;
        qbvh.build(bvh, NodeLayoutConfig::quantized(8));

        Pcg32 rng(seed * 1000 + 5);
        size_t superset_strict = 0;
        for (int r = 0; r < 200; ++r) {
            Ray ray = randomRay(rng);

            std::set<uint32_t> exact_visits =
                reachableNodes(bvh, bvh.nodes(), ray);
            std::set<uint32_t> quantized_visits =
                reachableNodes(bvh, qbvh.nodes(), ray);
            for (uint32_t n : exact_visits)
                EXPECT_TRUE(quantized_visits.count(n))
                    << "ray " << r << " seed " << seed
                    << ": exact visited node " << n
                    << " missing from the quantized visit set";
            if (quantized_visits.size() > exact_visits.size())
                ++superset_strict;

            HitRecord exact_hit =
                closestHitOver(scene, bvh, bvh.nodes(), ray);
            HitRecord quantized_hit =
                closestHitOver(scene, bvh, qbvh.nodes(), ray);
            ASSERT_EQ(quantized_hit.valid(), exact_hit.valid())
                << "ray " << r << " seed " << seed;
            if (exact_hit.valid()) {
                // Leaf tests are exact in both runs, so the closest
                // distance is bit-identical; only equal-t ties may
                // resolve to a different primitive id.
                EXPECT_EQ(quantized_hit.t, exact_hit.t)
                    << "ray " << r << " seed " << seed;
            }
        }
        // Inflated boxes must actually inflate the visit set for some
        // rays, or the quantized path is silently running exact boxes.
        EXPECT_GT(superset_strict, 0u);
    }
}

} // namespace
} // namespace sms
