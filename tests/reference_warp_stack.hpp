/**
 * @file
 * Frozen pre-SoA WarpStackModel — the AoS reference implementation the
 * batched model in src/core/warp_stack.* replaced. Kept verbatim (minus
 * timeline instrumentation) as the oracle for the AoS-vs-SoA
 * differential suite: identical operation sequences through this model
 * and the production model must produce byte-identical WarpStackStats
 * and per-operation transaction lists.
 *
 * Test-only: not linked into the simulator.
 */

#ifndef SMS_TESTS_REFERENCE_WARP_STACK_HPP
#define SMS_TESTS_REFERENCE_WARP_STACK_HPP

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/core/stack_config.hpp"
#include "src/core/stack_txn.hpp"
#include "src/core/warp_stack.hpp"
#include "src/memory/request.hpp"
#include "src/util/check.hpp"

namespace sms {


/**
 * Growable circular buffer holding one lane's RB stack. Supports the
 * deque subset the stack model needs (push/pop at both ends) without
 * std::deque's segmented-map allocation per instance — RefWarpStackModel
 * is constructed once per trace-ray warp, so construction cost is on
 * the simulator's hot path.
 */
class RefRbRing
{
  public:
    bool empty() const { return count_ == 0; }
    uint32_t size() const { return count_; }

    uint64_t back() const { return at((start_ + count_ - 1) & mask_); }
    uint64_t front() const { return at(start_); }

    void
    push_back(uint64_t value)
    {
        if (count_ > mask_)
            grow();
        at((start_ + count_) & mask_) = value;
        ++count_;
    }

    void pop_back() { --count_; }

    void
    push_front(uint64_t value)
    {
        if (count_ > mask_)
            grow();
        start_ = (start_ + mask_) & mask_;
        at(start_) = value;
        ++count_;
    }

    void
    pop_front()
    {
        start_ = (start_ + 1) & mask_;
        --count_;
    }

    void
    clear()
    {
        start_ = 0;
        count_ = 0;
    }

  private:
    void grow();

    /** Storage: the inline array until the first grow(), heap after. */
    uint64_t &at(uint32_t i) { return heap_.empty() ? inline_[i] : heap_[i]; }
    uint64_t at(uint32_t i) const
    {
        return heap_.empty() ? inline_[i] : heap_[i];
    }

    static constexpr uint32_t kInlineCapacity = 8; ///< power of two
    uint64_t inline_[kInlineCapacity];
    std::vector<uint64_t> heap_;
    uint32_t start_ = 0;
    uint32_t count_ = 0;
    uint32_t mask_ = kInlineCapacity - 1;
};


/**
 * Hierarchical traversal stacks of all 32 lanes of one warp.
 *
 * Instances are created per trace-ray warp instruction: a warp leaves
 * the RT unit only when all its lanes finished (§V-B), so SH segments
 * can never stay borrowed across warps.
 */
class RefWarpStackModel
{
  public:
    /**
     * @param config      stack configuration
     * @param shared_base simulated shared-memory base of this warp
     *                    slot's SH stack file
     * @param local_base  simulated global-memory base of this warp's
     *                    per-thread spill regions
     */
    RefWarpStackModel(const StackConfig &config, Addr shared_base,
                   Addr local_base);

    /** Push @p value on @p lane's stack; transactions appended. */
    void push(uint32_t lane, uint64_t value, StackTxnList &txns);

    /**
     * Pop @p lane's stack top.
     * @return false when the stack is empty (traversal is over)
     */
    bool pop(uint32_t lane, uint64_t &value, StackTxnList &txns);

    /**
     * Read @p lane's stack top without popping — the RT unit reads the
     * top entry to obtain the next fetch address (§II-B) before the
     * operation completes and the actual pop happens. No transactions:
     * the top always resides in the on-chip RB stack.
     */
    uint64_t
    peek(uint32_t lane) const
    {
        SMS_ASSERT(!lanes_[lane].rb.empty(), "peek on empty stack");
        return lanes_[lane].rb.back();
    }

    /** True when @p lane's logical stack holds no values. */
    bool laneEmpty(uint32_t lane) const { return lanes_[lane].depth == 0; }

    /**
     * Logical stack depth of @p lane (across all three levels). O(1):
     * the depth counter is maintained on push/pop — internal migrations
     * between RB/SH/global never change the logical total.
     */
    uint32_t logicalDepth(uint32_t lane) const { return lanes_[lane].depth; }

    /**
     * Mark @p lane's traversal complete; with reallocation enabled its
     * dedicated SH segment becomes borrowable by other lanes.
     */
    void finishLane(uint32_t lane);

    /**
     * Terminate @p lane's traversal with entries still on the stack
     * (any-hit early-out). Hardware just resets the stack pointers, so
     * no memory transactions are generated; the lane then counts as
     * finished exactly like finishLane().
     */
    void abandonLane(uint32_t lane);

    bool laneFinished(uint32_t lane) const { return lanes_[lane].finished; }

    /** Install a depth observer (may be nullptr). */
    void setDepthObserver(DepthObserver *observer) { observer_ = observer; }

    const WarpStackStats &stats() const { return stats_; }
    const StackConfig &config() const { return config_; }

    /** Number of segments currently borrowed by @p lane (tests). */
    uint32_t borrowedCount(uint32_t lane) const;

    /** Entries currently resident in @p lane's SH chain (tests). */
    uint32_t shDepth(uint32_t lane) const;

    /** Entries currently spilled to global memory for @p lane (tests). */
    uint32_t
    globalDepth(uint32_t lane) const
    {
        return static_cast<uint32_t>(lanes_[lane].global.size());
    }

    /** Shared-memory address of segment-local entry slot (tests). */
    Addr sharedSlotAddr(uint32_t owner_lane, uint32_t slot) const;

  private:
    /** One per-lane SH segment (a circular queue in shared memory).
     *  Slot storage lives in the model-wide sh_slots_ array (indexed by
     *  owner lane) so constructing a warp costs one allocation, not 32. */
    struct Segment
    {
        uint32_t top = 0;
        uint32_t bottom = 0;
        uint32_t count = 0;
        uint32_t base = 0;     ///< skewed initial slot
        uint32_t flushes = 0;  ///< consecutive-flush counter
        uint32_t owner = 0;    ///< owning lane (fixed)
        int32_t borrower = -1; ///< borrowing lane, -1 when not borrowed
        bool available = false; ///< idle: owner finished, not borrowed

        bool empty() const { return count == 0; }
    };

    struct LaneState
    {
        RefRbRing rb;                        ///< front = oldest, back = top
        std::vector<uint32_t> chain;      ///< segment ids, front = bottom
        std::vector<uint64_t> global;     ///< back = newest spill
        uint32_t depth = 0;               ///< rb + SH chain + global
        uint32_t sh_count = 0;            ///< entries across the SH chain
        uint32_t global_high_water = 0;   ///< slots ever used (addressing)
        bool finished = false;
    };

    void spillFromRb(uint32_t lane, StackTxnList &txns);
    void shPushTop(uint32_t lane, uint64_t value, StackTxnList &txns);
    uint64_t shPopTop(uint32_t lane, StackTxnList &txns);
    void shPushBottom(uint32_t lane, uint64_t value, StackTxnList &txns);
    bool shBottomHasSpace(uint32_t lane) const;
    bool tryBorrow(uint32_t lane);
    bool tryFlushBottom(uint32_t lane, StackTxnList &txns,
                        bool ignore_budget = false);
    void singleMoveToGlobal(uint32_t lane, StackTxnList &txns);
    void pushGlobal(uint32_t lane, uint64_t value, StackTxnList &txns,
                    StackTxnOrigin origin = StackTxnOrigin::Spill);
    uint64_t popGlobal(uint32_t lane, StackTxnList &txns);
    void releaseIfEmptyBorrowed(uint32_t lane);
    void observe(uint32_t lane);

    /** Flip a segment's availability, maintaining available_count_. */
    void setAvailable(Segment &seg, bool available);

    bool segFull(const Segment &seg) const
    {
        return seg.count == config_.sh_entries;
    }

    /** Slot @p idx of the segment owned by lane @p owner. */
    uint64_t &shSlot(uint32_t owner, uint32_t idx)
    {
        return sh_slots_[owner * config_.sh_entries + idx];
    }

    Addr globalSlotAddr(uint32_t lane, uint32_t slot) const;

    StackConfig config_;
    Addr shared_base_;
    Addr local_base_;
    std::vector<Segment> segments_; ///< kWarpSize segments (may be empty)
    std::vector<uint64_t> sh_slots_; ///< kWarpSize * sh_entries values
    std::vector<LaneState> lanes_;
    /** Segments currently marked available — lets tryBorrow() skip its
     *  all-lane scan in the common case where no lane has finished. */
    uint32_t available_count_ = 0;
    WarpStackStats stats_;
    DepthObserver *observer_ = nullptr;
};


// ------- implementation (verbatim from the pre-SoA model) -------


inline void
RefRbRing::grow()
{
    std::vector<uint64_t> wider((mask_ + 1) * 2);
    for (uint32_t i = 0; i < count_; ++i)
        wider[i] = at((start_ + i) & mask_);
    heap_ = std::move(wider);
    start_ = 0;
    mask_ = static_cast<uint32_t>(heap_.size()) - 1;
}

inline RefWarpStackModel::RefWarpStackModel(const StackConfig &config, Addr shared_base,
                               Addr local_base)
    : config_(config), shared_base_(shared_base), local_base_(local_base)
{
    SMS_ASSERT(config.rb_entries >= 1 || config.rb_unbounded,
               "RB stack needs at least one entry");
    lanes_.resize(kWarpSize);
    if (config_.hasShStack()) {
        segments_.resize(kWarpSize);
        sh_slots_.assign(static_cast<size_t>(kWarpSize) * config_.sh_entries,
                         0);
        for (uint32_t lane = 0; lane < kWarpSize; ++lane) {
            Segment &seg = segments_[lane];
            seg.owner = lane;
            seg.base = config_.skewed_bank_access
                           ? skewBaseEntry(lane, config_.sh_entries)
                           : 0;
            seg.top = seg.base;
            seg.bottom = seg.base;
            // Each lane's chain starts with its dedicated segment.
            lanes_[lane].chain.push_back(lane);
        }
    }
}

inline Addr
RefWarpStackModel::sharedSlotAddr(uint32_t owner_lane, uint32_t slot) const
{
    return shared_base_ +
           (static_cast<Addr>(owner_lane) * config_.sh_entries + slot) *
               kStackEntryBytes;
}

inline Addr
RefWarpStackModel::globalSlotAddr(uint32_t lane, uint32_t slot) const
{
    // Interleaved per-thread local memory: consecutive spill slots of
    // one thread are kWarpSize entries apart, so lanes spilling the
    // same slot index coalesce while divergent depths do not (§II-C).
    return local_base_ +
           (static_cast<Addr>(slot) * kWarpSize + lane) * kStackEntryBytes;
}

inline uint32_t
RefWarpStackModel::shDepth(uint32_t lane) const
{
    uint32_t total = 0;
    for (uint32_t seg_id : lanes_[lane].chain)
        total += segments_[seg_id].count;
    return total;
}

inline uint32_t
RefWarpStackModel::borrowedCount(uint32_t lane) const
{
    uint32_t n = 0;
    for (uint32_t seg_id : lanes_[lane].chain)
        if (segments_[seg_id].owner != lane)
            ++n;
    return n;
}

inline void
RefWarpStackModel::observe(uint32_t lane)
{
    if (observer_)
        observer_->onStackAccess(lane, logicalDepth(lane));
}

inline void
RefWarpStackModel::push(uint32_t lane, uint64_t value, StackTxnList &txns)
{
    SMS_ASSERT(lane < kWarpSize, "lane %u out of range", lane);
    LaneState &ls = lanes_[lane];
    SMS_ASSERT(!ls.finished, "push on finished lane %u", lane);

    if (!config_.rb_unbounded && ls.rb.size() == config_.rb_entries)
        spillFromRb(lane, txns);

    ls.rb.push_back(value);
    ++ls.depth;
    ++stats_.pushes;
    if (ls.depth > stats_.max_logical_depth)
        stats_.max_logical_depth = ls.depth;
    observe(lane);
}

inline void
RefWarpStackModel::spillFromRb(uint32_t lane, StackTxnList &txns)
{
    LaneState &ls = lanes_[lane];
    uint64_t oldest = ls.rb.front();
    ls.rb.pop_front();
    ++stats_.rb_spills;
    if (config_.hasShStack()) {
        ++stats_.rb_spills_to_sh;
        shPushTop(lane, oldest, txns);
    } else {
        ++stats_.rb_spills_to_global;
        pushGlobal(lane, oldest, txns);
    }
}

inline void
RefWarpStackModel::shPushTop(uint32_t lane, uint64_t value, StackTxnList &txns)
{
    LaneState &ls = lanes_[lane];
    SMS_ASSERT(!ls.chain.empty(), "lane %u has no SH segment", lane);

    Segment *top = &segments_[ls.chain.back()];
    if (segFull(*top)) {
        bool resolved = false;
        if (config_.intra_warp_realloc) {
            if (borrowedCount(lane) < config_.max_borrowed &&
                tryBorrow(lane)) {
                resolved = true;
            } else if (ls.chain.size() > 1 &&
                       tryFlushBottom(lane, txns)) {
                // Flushing exists because *linked* stacks are not
                // contiguous (§VI-B); with a single dedicated segment
                // the plain single-entry move below applies.
                resolved = true;
            } else if (ls.chain.size() > 1) {
                // The paper sizes the flush budget so this never
                // happens on its workloads (§VI-B: 72 entries suffice).
                // Beyond that envelope, correctness requires flushing
                // anyway; the forced flush is counted separately.
                bool flushed = tryFlushBottom(lane, txns, true);
                SMS_ASSERT(flushed, "forced flush failed");
                ++stats_.forced_flushes;
                resolved = true;
            }
        }
        if (!resolved) {
            // Single-entry move: oldest SH value migrates off-chip
            // (shared load + global store), freeing one slot (§VI-A).
            singleMoveToGlobal(lane, txns);
        }
        top = &segments_[ls.chain.back()];
        SMS_ASSERT(!segFull(*top), "SH top still full after overflow fix");
    }

    // Circular push at the segment top.
    if (top->empty()) {
        top->top = top->base;
        top->bottom = top->base;
    } else {
        top->top = (top->top + 1) % config_.sh_entries;
    }
    shSlot(top->owner, top->top) = value;
    ++top->count;
    ++ls.sh_count;
    txns.push_back({StackTxnKind::SharedStore,
                    sharedSlotAddr(top->owner, top->top),
                    kStackEntryBytes, StackTxnOrigin::Spill});
    ++stats_.sh_stores;
}

inline uint64_t
RefWarpStackModel::shPopTop(uint32_t lane, StackTxnList &txns)
{
    LaneState &ls = lanes_[lane];
    // Find the topmost non-empty segment (empty own segments may sit in
    // the chain after flush promotions; they hold nothing).
    int idx = static_cast<int>(ls.chain.size()) - 1;
    while (idx >= 0 && segments_[ls.chain[idx]].empty())
        --idx;
    SMS_ASSERT(idx >= 0, "shPopTop on empty SH chain (lane %u)", lane);

    Segment &seg = segments_[ls.chain[idx]];
    uint64_t value = shSlot(seg.owner, seg.top);
    txns.push_back({StackTxnKind::SharedLoad,
                    sharedSlotAddr(seg.owner, seg.top), kStackEntryBytes,
                    StackTxnOrigin::Refill});
    ++stats_.sh_loads;
    --seg.count;
    --ls.sh_count;
    if (seg.empty()) {
        seg.top = seg.base;
        seg.bottom = seg.base;
        seg.flushes = 0; // drained: consecutive-flush budget resets
    } else {
        seg.top = (seg.top + config_.sh_entries - 1) % config_.sh_entries;
    }

    releaseIfEmptyBorrowed(lane);
    return value;
}

inline void
RefWarpStackModel::setAvailable(Segment &seg, bool available)
{
    if (seg.available == available)
        return;
    seg.available = available;
    if (available)
        ++available_count_;
    else
        --available_count_;
}

inline void
RefWarpStackModel::releaseIfEmptyBorrowed(uint32_t lane)
{
    LaneState &ls = lanes_[lane];
    // Release empty borrowed segments from the top of the chain; the
    // paper releases the top stack the moment it empties (§V-B).
    while (!ls.chain.empty()) {
        Segment &seg = segments_[ls.chain.back()];
        if (seg.owner == lane || !seg.empty())
            break;
        seg.borrower = -1;
        seg.flushes = 0;
        setAvailable(seg, lanes_[seg.owner].finished);
        ls.chain.pop_back();
    }
}

inline void
RefWarpStackModel::shPushBottom(uint32_t lane, uint64_t value,
                             StackTxnList &txns)
{
    LaneState &ls = lanes_[lane];
    Segment &seg = segments_[ls.chain.front()];
    SMS_ASSERT(!segFull(seg), "shPushBottom on full bottom segment");
    if (seg.empty()) {
        seg.top = seg.base;
        seg.bottom = seg.base;
    } else {
        seg.bottom =
            (seg.bottom + config_.sh_entries - 1) % config_.sh_entries;
    }
    shSlot(seg.owner, seg.bottom) = value;
    ++seg.count;
    ++ls.sh_count;
    txns.push_back({StackTxnKind::SharedStore,
                    sharedSlotAddr(seg.owner, seg.bottom),
                    kStackEntryBytes, StackTxnOrigin::Refill});
    ++stats_.sh_stores;
}

inline bool
RefWarpStackModel::shBottomHasSpace(uint32_t lane) const
{
    const LaneState &ls = lanes_[lane];
    if (ls.chain.empty())
        return false;
    return !segFull(segments_[ls.chain.front()]);
}

inline bool
RefWarpStackModel::tryBorrow(uint32_t lane)
{
    // Common case: no lane finished yet, nothing borrowable — skip the
    // scan entirely.
    if (available_count_ == 0)
        return false;
    // Deterministic policy: borrow the available segment with the
    // lowest owner lane id.
    for (uint32_t owner = 0; owner < kWarpSize; ++owner) {
        Segment &seg = segments_[owner];
        if (!seg.available)
            continue;
        SMS_ASSERT(seg.empty(), "available segment %u not empty", owner);
        setAvailable(seg, false);
        seg.borrower = static_cast<int32_t>(lane);
        seg.flushes = 0;
        seg.top = seg.base;
        seg.bottom = seg.base;
        lanes_[lane].chain.push_back(owner);
        ++stats_.borrows;
        uint32_t len = static_cast<uint32_t>(lanes_[lane].chain.size());
        if (len >= kBorrowChainBuckets)
            len = kBorrowChainBuckets - 1;
        ++stats_.borrow_chain_hist[len];
        return true;
    }
    return false;
}

inline bool
RefWarpStackModel::tryFlushBottom(uint32_t lane, StackTxnList &txns,
                               bool ignore_budget)
{
    LaneState &ls = lanes_[lane];
    uint32_t bottom_id = ls.chain.front();
    Segment &seg = segments_[bottom_id];

    if (seg.empty()) {
        // Nothing to flush: promoting the empty bottom segment to the
        // top provides capacity for free (possible when the dedicated
        // segment drained while borrowed segments still hold entries).
        if (ls.chain.size() == 1)
            return false; // it is already the top and it is full-checked
        ls.chain.erase(ls.chain.begin());
        ls.chain.push_back(bottom_id);
        return true;
    }

    if (seg.flushes >= config_.max_flushes && !ignore_budget)
        return false;

    // Flush the entire bottom segment to global memory, oldest first,
    // then promote the emptied segment to the top of the chain (§VI-B).
    StackTxnOrigin origin = ignore_budget ? StackTxnOrigin::ForcedFlush
                                          : StackTxnOrigin::BorrowChain;
    uint32_t flushed = seg.count;
    while (!seg.empty()) {
        uint64_t value = shSlot(seg.owner, seg.bottom);
        txns.push_back({StackTxnKind::SharedLoad,
                        sharedSlotAddr(seg.owner, seg.bottom),
                        kStackEntryBytes, origin});
        ++stats_.sh_loads;
        --seg.count;
        if (!seg.empty()) {
            seg.bottom = (seg.bottom + 1) % config_.sh_entries;
        }
        pushGlobal(lane, value, txns, origin);
    }
    seg.top = seg.base;
    seg.bottom = seg.base;
    ls.sh_count -= flushed;
    ++seg.flushes;
    ++stats_.flushes;
    stats_.flushed_entries += flushed;

    if (ls.chain.size() > 1) {
        ls.chain.erase(ls.chain.begin());
        ls.chain.push_back(bottom_id);
    }
    return true;
}

inline void
RefWarpStackModel::singleMoveToGlobal(uint32_t lane, StackTxnList &txns)
{
    LaneState &ls = lanes_[lane];
    // Oldest SH entry lives at the bottom of the bottom-most non-empty
    // segment.
    size_t idx = 0;
    while (idx < ls.chain.size() && segments_[ls.chain[idx]].empty())
        ++idx;
    SMS_ASSERT(idx < ls.chain.size(),
               "single move with empty SH chain (lane %u)", lane);
    Segment &seg = segments_[ls.chain[idx]];

    uint64_t value = shSlot(seg.owner, seg.bottom);
    txns.push_back({StackTxnKind::SharedLoad,
                    sharedSlotAddr(seg.owner, seg.bottom),
                    kStackEntryBytes, StackTxnOrigin::Spill});
    ++stats_.sh_loads;
    --seg.count;
    --ls.sh_count;
    if (seg.empty()) {
        seg.top = seg.base;
        seg.bottom = seg.base;
        seg.flushes = 0;
    } else {
        seg.bottom = (seg.bottom + 1) % config_.sh_entries;
    }
    pushGlobal(lane, value, txns);
    ++stats_.single_moves;
}

inline void
RefWarpStackModel::pushGlobal(uint32_t lane, uint64_t value,
                           StackTxnList &txns, StackTxnOrigin origin)
{
    LaneState &ls = lanes_[lane];
    ls.global.push_back(value);
    uint32_t slot = static_cast<uint32_t>(ls.global.size()) - 1;
    if (slot + 1 > ls.global_high_water)
        ls.global_high_water = slot + 1;
    txns.push_back({StackTxnKind::GlobalStore, globalSlotAddr(lane, slot),
                    kStackEntryBytes, origin});
    ++stats_.global_stores;
}

inline uint64_t
RefWarpStackModel::popGlobal(uint32_t lane, StackTxnList &txns)
{
    LaneState &ls = lanes_[lane];
    SMS_ASSERT(!ls.global.empty(), "popGlobal on empty spill region");
    uint32_t slot = static_cast<uint32_t>(ls.global.size()) - 1;
    uint64_t value = ls.global.back();
    ls.global.pop_back();
    txns.push_back({StackTxnKind::GlobalLoad, globalSlotAddr(lane, slot),
                    kStackEntryBytes, StackTxnOrigin::Refill});
    ++stats_.global_loads;
    return value;
}

inline bool
RefWarpStackModel::pop(uint32_t lane, uint64_t &value, StackTxnList &txns)
{
    SMS_ASSERT(lane < kWarpSize, "lane %u out of range", lane);
    LaneState &ls = lanes_[lane];
    if (laneEmpty(lane))
        return false;

    observe(lane); // record the occupied depth this pop touches
    SMS_ASSERT(!ls.rb.empty(), "logical depth > 0 but RB empty");
    value = ls.rb.back();
    ls.rb.pop_back();
    --ls.depth;
    ++stats_.pops;

    // Eager refill (Fig. 7 steps 2/5/6). sh_count > 0 implies an SH
    // stack exists, so no separate hasShStack() check is needed.
    if (ls.sh_count > 0) {
        uint64_t from_sh = shPopTop(lane, txns);
        ls.rb.push_front(from_sh);
        ++stats_.rb_refills;
        ++stats_.rb_refills_from_sh;
        if (!ls.global.empty() && shBottomHasSpace(lane)) {
            uint64_t from_global = popGlobal(lane, txns);
            shPushBottom(lane, from_global, txns);
        }
    } else if (!ls.global.empty()) {
        uint64_t from_global = popGlobal(lane, txns);
        ls.rb.push_front(from_global);
        ++stats_.rb_refills;
        ++stats_.rb_refills_from_global;
    }
    return true;
}

inline void
RefWarpStackModel::abandonLane(uint32_t lane)
{
    LaneState &ls = lanes_[lane];
    ls.rb.clear();
    ls.global.clear();
    ls.depth = 0;
    ls.sh_count = 0;
    if (config_.hasShStack()) {
        for (uint32_t seg_id : ls.chain) {
            Segment &seg = segments_[seg_id];
            seg.count = 0;
            seg.top = seg.base;
            seg.bottom = seg.base;
        }
    }
    finishLane(lane);
}

inline void
RefWarpStackModel::finishLane(uint32_t lane)
{
    LaneState &ls = lanes_[lane];
    SMS_ASSERT(laneEmpty(lane), "finishLane with non-empty stack");
    ls.finished = true;
    if (!config_.hasShStack())
        return;

    // Release any leftover borrowed segments (all empty by now); only
    // the dedicated segment stays in the chain. Flush promotions can
    // leave the dedicated segment anywhere in the chain, so filter by
    // ownership rather than position.
    std::vector<uint32_t> kept;
    for (uint32_t seg_id : ls.chain) {
        Segment &seg = segments_[seg_id];
        SMS_ASSERT(seg.empty(), "releasing non-empty segment");
        if (seg.owner == lane) {
            kept.push_back(seg_id);
            continue;
        }
        seg.borrower = -1;
        seg.flushes = 0;
        setAvailable(seg, lanes_[seg.owner].finished);
    }
    SMS_ASSERT(kept.size() == 1, "lane %u lost its dedicated segment",
               lane);
    ls.chain = std::move(kept);

    // The dedicated segment becomes borrowable if nobody borrowed it
    // already while we were running (impossible) — mark it idle.
    Segment &own = segments_[lane];
    if (own.borrower < 0) {
        setAvailable(own, config_.intra_warp_realloc);
        own.flushes = 0;
    }
}


} // namespace sms

#endif // SMS_TESTS_REFERENCE_WARP_STACK_HPP
