/**
 * @file
 * Unit and property tests for the geometry primitives: Vec3, Aabb slab
 * test, Möller–Trumbore triangles, and spheres.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/geometry/aabb.hpp"
#include "src/geometry/ray.hpp"
#include "src/geometry/sphere.hpp"
#include "src/geometry/triangle.hpp"
#include "src/geometry/vec3.hpp"
#include "src/util/rng.hpp"

namespace sms {
namespace {

Vec3
randomUnit(Pcg32 &rng)
{
    for (;;) {
        Vec3 v{rng.nextRange(-1, 1), rng.nextRange(-1, 1),
               rng.nextRange(-1, 1)};
        float len2 = lengthSquared(v);
        if (len2 > 1e-4f && len2 <= 1.0f)
            return v / std::sqrt(len2);
    }
}

TEST(Vec3, Arithmetic)
{
    Vec3 a{1, 2, 3}, b{4, 5, 6};
    EXPECT_EQ(a + b, Vec3(5, 7, 9));
    EXPECT_EQ(b - a, Vec3(3, 3, 3));
    EXPECT_EQ(a * 2.0f, Vec3(2, 4, 6));
    EXPECT_EQ(2.0f * a, a * 2.0f);
    EXPECT_EQ(a * b, Vec3(4, 10, 18));
    EXPECT_EQ(-a, Vec3(-1, -2, -3));
    EXPECT_FLOAT_EQ(dot(a, b), 32.0f);
}

TEST(Vec3, CrossIsOrthogonal)
{
    Pcg32 rng(7);
    for (int i = 0; i < 100; ++i) {
        Vec3 a = randomUnit(rng), b = randomUnit(rng);
        Vec3 c = cross(a, b);
        EXPECT_NEAR(dot(c, a), 0.0f, 1e-5f);
        EXPECT_NEAR(dot(c, b), 0.0f, 1e-5f);
    }
}

TEST(Vec3, NormalizeAndLength)
{
    EXPECT_FLOAT_EQ(length(Vec3(3, 4, 0)), 5.0f);
    Vec3 n = normalize(Vec3(0, 0, 10));
    EXPECT_EQ(n, Vec3(0, 0, 1));
    EXPECT_EQ(normalize(Vec3(0.0f)), Vec3(0.0f)); // zero-safe
}

TEST(Vec3, MinMaxAxis)
{
    Vec3 a{1, 5, 3}, b{2, 0, 4};
    EXPECT_EQ(min(a, b), Vec3(1, 0, 3));
    EXPECT_EQ(max(a, b), Vec3(2, 5, 4));
    EXPECT_EQ(maxAxis(Vec3(1, 2, 3)), 2);
    EXPECT_EQ(maxAxis(Vec3(9, 2, 3)), 0);
    EXPECT_EQ(maxAxis(Vec3(1, 5, 3)), 1);
}

TEST(Vec3, ReflectPreservesLengthAndFlipsNormalComponent)
{
    Pcg32 rng(9);
    for (int i = 0; i < 100; ++i) {
        Vec3 d = randomUnit(rng);
        Vec3 n = randomUnit(rng);
        Vec3 r = reflect(d, n);
        EXPECT_NEAR(length(r), 1.0f, 1e-5f);
        EXPECT_NEAR(dot(r, n), -dot(d, n), 1e-5f);
    }
}

TEST(Aabb, DefaultIsEmpty)
{
    Aabb box;
    EXPECT_TRUE(box.empty());
    EXPECT_FLOAT_EQ(box.surfaceArea(), 0.0f);
}

TEST(Aabb, ExtendAndContain)
{
    Aabb box;
    box.extend({1, 2, 3});
    EXPECT_FALSE(box.empty());
    EXPECT_TRUE(box.contains(Vec3{1, 2, 3}));
    box.extend({-1, 0, 5});
    EXPECT_TRUE(box.contains(Vec3{0, 1, 4}));
    EXPECT_FALSE(box.contains(Vec3{0, 1, 6}));
    EXPECT_FLOAT_EQ(box.surfaceArea(),
                    2.0f * (2 * 2 + 2 * 2 + 2 * 2));
}

TEST(Aabb, ContainsBox)
{
    Aabb outer({0, 0, 0}, {10, 10, 10});
    EXPECT_TRUE(outer.contains(Aabb({1, 1, 1}, {9, 9, 9})));
    EXPECT_FALSE(outer.contains(Aabb({1, 1, 1}, {9, 9, 11})));
    EXPECT_TRUE(outer.contains(Aabb())); // empty box is inside anything
}

TEST(Aabb, SlabHitsAndMisses)
{
    Aabb box({-1, -1, -1}, {1, 1, 1});
    float t;
    Ray hit({-5, 0, 0}, {1, 0, 0});
    ASSERT_TRUE(box.intersect(hit, t));
    EXPECT_NEAR(t, 4.0f, 1e-5f);

    Ray miss({-5, 2, 0}, {1, 0, 0});
    EXPECT_FALSE(box.intersect(miss, t));

    Ray away({-5, 0, 0}, {-1, 0, 0});
    EXPECT_FALSE(box.intersect(away, t));
}

TEST(Aabb, SlabRespectsSegment)
{
    Aabb box({-1, -1, -1}, {1, 1, 1});
    float t;
    Ray short_ray({-5, 0, 0}, {1, 0, 0}, 0.0f, 3.0f);
    EXPECT_FALSE(box.intersect(short_ray, t));
    Ray late_ray({-5, 0, 0}, {1, 0, 0}, 7.0f, 100.0f);
    EXPECT_FALSE(box.intersect(late_ray, t));
}

TEST(Aabb, OriginInsideReportsEntryAtTmin)
{
    Aabb box({-1, -1, -1}, {1, 1, 1});
    float t;
    Ray inside({0, 0, 0}, {0, 1, 0});
    ASSERT_TRUE(box.intersect(inside, t));
    EXPECT_FLOAT_EQ(t, inside.tMin);
}

TEST(Aabb, AxisParallelRayZeroDirection)
{
    Aabb box({-1, -1, -1}, {1, 1, 1});
    float t;
    // Ray parallel to x axis within slab bounds: must hit.
    Ray in_slab({-5, 0.5f, 0.5f}, {1, 0, 0});
    EXPECT_TRUE(box.intersect(in_slab, t));
    // Parallel but outside the y slab: must miss.
    Ray out_slab({-5, 2.0f, 0.5f}, {1, 0, 0});
    EXPECT_FALSE(box.intersect(out_slab, t));
}

TEST(Aabb, PropertySampledPointsAgree)
{
    // Slab test against random boxes/rays cross-checked by sampling
    // points along the ray.
    Pcg32 rng(1234);
    for (int iter = 0; iter < 300; ++iter) {
        Vec3 a{rng.nextRange(-5, 5), rng.nextRange(-5, 5),
               rng.nextRange(-5, 5)};
        Vec3 b{rng.nextRange(-5, 5), rng.nextRange(-5, 5),
               rng.nextRange(-5, 5)};
        Aabb box(min(a, b), max(a, b));
        Ray ray({rng.nextRange(-10, 10), rng.nextRange(-10, 10),
                 rng.nextRange(-10, 10)},
                randomUnit(rng), 0.0f, 40.0f);
        float t;
        bool hit = box.intersect(ray, t);

        bool sampled_hit = false;
        for (int s = 0; s <= 4000; ++s) {
            float ts = 40.0f * s / 4000.0f;
            if (box.contains(ray.at(ts))) {
                sampled_hit = true;
                break;
            }
        }
        // Sampling can miss thin intersections but never invents one.
        if (sampled_hit)
            EXPECT_TRUE(hit) << "iteration " << iter;
        if (hit) {
            EXPECT_GE(t, ray.tMin);
            EXPECT_LE(t, ray.tMax);
        }
    }
}

TEST(Aabb, MergeCoversBoth)
{
    Aabb a({0, 0, 0}, {1, 1, 1});
    Aabb b({2, -1, 0}, {3, 1, 1});
    Aabb m = Aabb::merge(a, b);
    EXPECT_TRUE(m.contains(a));
    EXPECT_TRUE(m.contains(b));
}

TEST(Triangle, HitBarycentricInterior)
{
    Triangle tri({0, 0, 0}, {1, 0, 0}, {0, 1, 0});
    Ray ray({0.25f, 0.25f, -1}, {0, 0, 1});
    float t, u, v;
    ASSERT_TRUE(tri.intersect(ray, t, u, v));
    EXPECT_NEAR(t, 1.0f, 1e-5f);
    EXPECT_NEAR(u, 0.25f, 1e-5f);
    EXPECT_NEAR(v, 0.25f, 1e-5f);
}

TEST(Triangle, MissOutsideEdges)
{
    Triangle tri({0, 0, 0}, {1, 0, 0}, {0, 1, 0});
    float t, u, v;
    Ray beyond({0.8f, 0.8f, -1}, {0, 0, 1});
    EXPECT_FALSE(tri.intersect(beyond, t, u, v));
    Ray left({-0.1f, 0.5f, -1}, {0, 0, 1});
    EXPECT_FALSE(tri.intersect(left, t, u, v));
}

TEST(Triangle, BackfaceStillHits)
{
    // Möller–Trumbore without culling hits from both sides.
    Triangle tri({0, 0, 0}, {1, 0, 0}, {0, 1, 0});
    Ray ray({0.2f, 0.2f, 1}, {0, 0, -1});
    float t, u, v;
    EXPECT_TRUE(tri.intersect(ray, t, u, v));
}

TEST(Triangle, RespectsSegmentBounds)
{
    Triangle tri({0, 0, 0}, {1, 0, 0}, {0, 1, 0});
    float t, u, v;
    Ray near_miss({0.2f, 0.2f, -1}, {0, 0, 1}, 0.0f, 0.5f);
    EXPECT_FALSE(tri.intersect(near_miss, t, u, v));
    Ray behind({0.2f, 0.2f, -1}, {0, 0, 1}, 1.5f, 5.0f);
    EXPECT_FALSE(tri.intersect(behind, t, u, v));
}

TEST(Triangle, ParallelRayMisses)
{
    Triangle tri({0, 0, 0}, {1, 0, 0}, {0, 1, 0});
    Ray ray({0, 0, 1}, {1, 0, 0});
    float t, u, v;
    EXPECT_FALSE(tri.intersect(ray, t, u, v));
}

TEST(Triangle, DegenerateTriangleNeverHits)
{
    Triangle degenerate({0, 0, 0}, {1, 0, 0}, {2, 0, 0});
    Ray ray({0.5f, -1, 0}, {0, 1, 0});
    float t, u, v;
    EXPECT_FALSE(degenerate.intersect(ray, t, u, v));
}

TEST(Triangle, PropertyHitPointMatchesBarycentric)
{
    Pcg32 rng(77);
    for (int iter = 0; iter < 300; ++iter) {
        Triangle tri(
            {rng.nextRange(-2, 2), rng.nextRange(-2, 2),
             rng.nextRange(-2, 2)},
            {rng.nextRange(-2, 2), rng.nextRange(-2, 2),
             rng.nextRange(-2, 2)},
            {rng.nextRange(-2, 2), rng.nextRange(-2, 2),
             rng.nextRange(-2, 2)});
        if (tri.area() < 1e-3f)
            continue;
        // Aim at a random interior point from a random origin.
        float u0 = rng.nextFloat();
        float v0 = rng.nextFloat() * (1.0f - u0);
        Vec3 target = tri.v0 * (1 - u0 - v0) + tri.v1 * u0 + tri.v2 * v0;
        Vec3 origin = target + randomUnit(rng) * rng.nextRange(0.5f, 4.0f);
        Ray ray(origin, normalize(target - origin), 1e-4f);

        float t, u, v;
        if (!tri.intersect(ray, t, u, v))
            continue; // grazing numeric misses are acceptable
        Vec3 p = ray.at(t);
        Vec3 q = tri.v0 * (1 - u - v) + tri.v1 * u + tri.v2 * v;
        EXPECT_NEAR(length(p - q), 0.0f, 1e-3f);
    }
}

TEST(Triangle, BoundsContainVertices)
{
    Triangle tri({0, 1, 2}, {-1, 4, 0}, {3, -2, 5});
    Aabb box = tri.bounds();
    EXPECT_TRUE(box.contains(tri.v0));
    EXPECT_TRUE(box.contains(tri.v1));
    EXPECT_TRUE(box.contains(tri.v2));
    EXPECT_TRUE(box.contains(tri.centroid()));
}

TEST(Sphere, HitFromOutside)
{
    Sphere s({0, 0, 0}, 1.0f);
    Ray ray({-5, 0, 0}, {1, 0, 0});
    float t;
    ASSERT_TRUE(s.intersect(ray, t));
    EXPECT_NEAR(t, 4.0f, 1e-4f);
    EXPECT_NEAR(length(s.normalAt(ray.at(t)) - Vec3(-1, 0, 0)), 0.0f,
                1e-4f);
}

TEST(Sphere, HitFromInsideTakesFarRoot)
{
    Sphere s({0, 0, 0}, 2.0f);
    Ray ray({0, 0, 0}, {0, 1, 0});
    float t;
    ASSERT_TRUE(s.intersect(ray, t));
    EXPECT_NEAR(t, 2.0f, 1e-4f);
}

TEST(Sphere, MissAndBehind)
{
    Sphere s({0, 0, 0}, 1.0f);
    float t;
    Ray miss({-5, 3, 0}, {1, 0, 0});
    EXPECT_FALSE(s.intersect(miss, t));
    Ray behind({5, 0, 0}, {1, 0, 0});
    EXPECT_FALSE(s.intersect(behind, t));
}

TEST(Sphere, SegmentBounds)
{
    Sphere s({0, 0, 0}, 1.0f);
    float t;
    Ray short_ray({-5, 0, 0}, {1, 0, 0}, 0.0f, 3.0f);
    EXPECT_FALSE(s.intersect(short_ray, t));
}

TEST(Sphere, PropertyHitPointOnSurface)
{
    Pcg32 rng(55);
    for (int iter = 0; iter < 300; ++iter) {
        Sphere s({rng.nextRange(-3, 3), rng.nextRange(-3, 3),
                  rng.nextRange(-3, 3)},
                 rng.nextRange(0.2f, 2.0f));
        Ray ray({rng.nextRange(-8, 8), rng.nextRange(-8, 8),
                 rng.nextRange(-8, 8)},
                randomUnit(rng));
        float t;
        if (!s.intersect(ray, t))
            continue;
        EXPECT_NEAR(length(ray.at(t) - s.center), s.radius, 1e-3f);
        EXPECT_GE(t, ray.tMin);
    }
}

TEST(Sphere, BoundsContainSurface)
{
    Sphere s({1, 2, 3}, 1.5f);
    Aabb box = s.bounds();
    EXPECT_TRUE(box.contains(s.center + Vec3(1.5f, 0, 0)));
    EXPECT_TRUE(box.contains(s.center - Vec3(0, 1.5f, 0)));
}

} // namespace
} // namespace sms
