/**
 * @file
 * Tests for the machine-readable report layer: JsonValue serialize /
 * parse round-trips, the statistics-struct JSON views, JSONL files,
 * the run manifest, and the bench_compare record comparison (which
 * must flag an injected IPC regression and pass identical records).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "src/core/stack_config.hpp"
#include "src/sim/gpu_sim.hpp"
#include "src/stats/report.hpp"

namespace sms {
namespace {

/** Parse or fail the test with the parser's message. */
JsonValue
parseOk(const std::string &text)
{
    JsonValue v;
    std::string error;
    EXPECT_TRUE(JsonValue::parse(text, v, error)) << error;
    return v;
}

TEST(JsonValue, ScalarRoundTrip)
{
    EXPECT_EQ(JsonValue().dump(), "null");
    EXPECT_EQ(JsonValue(true).dump(), "true");
    EXPECT_EQ(JsonValue(false).dump(), "false");
    EXPECT_EQ(JsonValue(42).dump(), "42");
    EXPECT_EQ(JsonValue(-7).dump(), "-7");
    EXPECT_EQ(JsonValue(1.5).dump(), "1.5");
    EXPECT_EQ(JsonValue("hi").dump(), "\"hi\"");

    // Integral doubles below 2^53 print without an exponent or dot.
    EXPECT_EQ(JsonValue(uint64_t{1} << 40).dump(), "1099511627776");
}

TEST(JsonValue, NonFiniteBecomesNull)
{
    EXPECT_EQ(JsonValue(std::nan("")).dump(), "null");
    EXPECT_EQ(JsonValue(INFINITY).dump(), "null");
}

TEST(JsonValue, StringEscapes)
{
    JsonValue v(std::string("a\"b\\c\n\t\x01"));
    EXPECT_EQ(v.dump(), "\"a\\\"b\\\\c\\n\\t\\u0001\"");
    JsonValue back = parseOk(v.dump());
    EXPECT_EQ(back.asString(), v.asString());
}

TEST(JsonValue, ObjectPreservesInsertionOrder)
{
    JsonValue obj = JsonValue::object();
    obj["zebra"] = 1;
    obj["apple"] = 2;
    obj["mango"] = 3;
    EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
}

TEST(JsonValue, NestedRoundTrip)
{
    JsonValue obj = JsonValue::object();
    obj["name"] = "run";
    obj["ok"] = true;
    obj["ipc"] = 0.875;
    JsonValue arr = JsonValue::array();
    arr.push(1);
    arr.push(JsonValue::object());
    arr.push(JsonValue());
    obj["items"] = arr;

    JsonValue back = parseOk(obj.dump());
    EXPECT_TRUE(back.isObject());
    EXPECT_EQ(back.stringOr("name", ""), "run");
    EXPECT_TRUE(back.find("ok")->asBool());
    EXPECT_DOUBLE_EQ(back.numberOr("ipc", 0.0), 0.875);
    ASSERT_EQ(back.find("items")->size(), 3u);
    EXPECT_EQ(back.find("items")->at(0).asU64(), 1u);
    EXPECT_TRUE(back.find("items")->at(2).isNull());

    // Round-trip again: dump(parse(dump(x))) is a fixed point.
    EXPECT_EQ(back.dump(), obj.dump());
}

TEST(JsonValue, ParseUnicodeEscapes)
{
    JsonValue v = parseOk("\"\\u0041\\u00e9\\ud83d\\ude00\"");
    EXPECT_EQ(v.asString(), "A\xc3\xa9\xf0\x9f\x98\x80");
}

TEST(JsonValue, ParseErrors)
{
    JsonValue v;
    std::string error;
    EXPECT_FALSE(JsonValue::parse("", v, error));
    EXPECT_FALSE(JsonValue::parse("{", v, error));
    EXPECT_FALSE(JsonValue::parse("[1,]", v, error));
    EXPECT_FALSE(JsonValue::parse("{\"a\":1} trailing", v, error));
    EXPECT_FALSE(JsonValue::parse("'single'", v, error));
    EXPECT_FALSE(error.empty());
}

TEST(JsonValue, PrettyPrintParses)
{
    JsonValue obj = JsonValue::object();
    obj["a"] = 1;
    JsonValue arr = JsonValue::array();
    arr.push("x");
    obj["b"] = arr;
    std::string pretty = obj.dump(2);
    EXPECT_NE(pretty.find('\n'), std::string::npos);
    EXPECT_EQ(parseOk(pretty).dump(), obj.dump());
}

TEST(Report, SimResultJsonCarriesNewCounters)
{
    SimResult r;
    r.cycles = 1000;
    r.instructions = 800;
    r.l1_class_misses[0] = 11;
    r.l1_class_misses[1] = 22;
    r.l1_class_misses[2] = 33;
    r.l2_class_misses[2] = 5;
    r.dram.busy_cycles = 250;
    r.dram.queue_wait_cycles = 40;
    r.dram.max_queue_wait = 9;
    r.shared_mem.conflict_passes = 17;
    r.shared_mem.conflicted_accesses = 4;
    r.shared_mem.max_passes = 6;
    r.stack.rb_spills_to_sh = 100;
    r.stack.rb_spills_to_global = 3;
    r.stack.rb_refills_from_sh = 90;
    r.stack.rb_refills_from_global = 2;
    r.stack.borrows = 7;
    r.stack.borrow_chain_hist[1] = 5;
    r.stack.borrow_chain_hist[2] = 2;

    JsonValue j = toJson(r);
    JsonValue back = parseOk(j.dump());

    EXPECT_DOUBLE_EQ(back.numberOr("ipc", 0.0), 0.8);
    const JsonValue *l1 = back.find("l1");
    ASSERT_NE(l1, nullptr);
    const JsonValue *cls = l1->find("class_misses");
    ASSERT_NE(cls, nullptr);
    EXPECT_EQ(cls->numberOr("node", 0), 11.0);
    EXPECT_EQ(cls->numberOr("primitive", 0), 22.0);
    EXPECT_EQ(cls->numberOr("stack", 0), 33.0);
    const JsonValue *l2 = back.find("l2");
    ASSERT_NE(l2, nullptr);
    EXPECT_EQ(l2->find("class_misses")->numberOr("stack", 0), 5.0);

    const JsonValue *dram = back.find("dram");
    ASSERT_NE(dram, nullptr);
    EXPECT_EQ(dram->numberOr("busy_cycles", 0), 250.0);
    EXPECT_EQ(dram->numberOr("max_queue_wait", 0), 9.0);
    EXPECT_DOUBLE_EQ(back.numberOr("dram_occupancy", 0.0), 0.25);

    const JsonValue *sm = back.find("shared_mem");
    ASSERT_NE(sm, nullptr);
    EXPECT_EQ(sm->numberOr("conflict_passes", 0), 17.0);
    EXPECT_EQ(sm->numberOr("conflicted_accesses", 0), 4.0);
    EXPECT_EQ(sm->numberOr("max_passes", 0), 6.0);

    const JsonValue *stack = back.find("stack");
    ASSERT_NE(stack, nullptr);
    EXPECT_EQ(stack->numberOr("rb_spills_to_sh", 0), 100.0);
    EXPECT_EQ(stack->numberOr("rb_spills_to_global", 0), 3.0);
    EXPECT_EQ(stack->numberOr("rb_refills_from_sh", 0), 90.0);
    EXPECT_EQ(stack->numberOr("rb_refills_from_global", 0), 2.0);
    const JsonValue *hist = stack->find("borrow_chain_hist");
    ASSERT_NE(hist, nullptr);
    ASSERT_GE(hist->size(), 3u);
    EXPECT_EQ(hist->at(1).asU64(), 5u);
    EXPECT_EQ(hist->at(2).asU64(), 2u);
}

TEST(Report, StackConfigJsonRoundTrip)
{
    StackConfig c = StackConfig::sms();
    JsonValue j = toJson(c);
    JsonValue back = parseOk(j.dump());
    EXPECT_EQ(back.numberOr("rb_entries", 0),
              static_cast<double>(c.rb_entries));
    EXPECT_EQ(back.numberOr("sh_entries", 0),
              static_cast<double>(c.sh_entries));
    EXPECT_EQ(back.find("skewed_bank_access")->asBool(),
              c.skewed_bank_access);
    EXPECT_EQ(back.find("intra_warp_realloc")->asBool(),
              c.intra_warp_realloc);
}

TEST(Report, ManifestHasSchemaAndFigure)
{
    JsonValue m = makeRunManifest("fig13", "Small");
    EXPECT_EQ(m.stringOr("schema", ""), "sms-bench-1");
    EXPECT_EQ(m.stringOr("figure", ""), "fig13");
    EXPECT_EQ(m.stringOr("profile", ""), "Small");
    EXPECT_FALSE(m.stringOr("git", "").empty());
    // Timestamp looks like ISO-8601 UTC.
    std::string ts = m.stringOr("timestamp", "");
    ASSERT_EQ(ts.size(), 20u);
    EXPECT_EQ(ts[4], '-');
    EXPECT_EQ(ts[10], 'T');
    EXPECT_EQ(ts[19], 'Z');
}

TEST(Report, JsonLinesAppendAndRead)
{
    std::string path = testing::TempDir() + "sms_report_test.jsonl";
    std::remove(path.c_str());

    JsonValue a = JsonValue::object();
    a["run"] = 1;
    JsonValue b = JsonValue::object();
    b["run"] = 2;
    std::string error;
    ASSERT_TRUE(appendJsonLine(path, a, error)) << error;
    ASSERT_TRUE(appendJsonLine(path, b, error)) << error;

    std::vector<JsonValue> records;
    ASSERT_TRUE(readJsonLines(path, records, error)) << error;
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].numberOr("run", 0), 1.0);
    EXPECT_EQ(records[1].numberOr("run", 0), 2.0);

    std::remove(path.c_str());
    EXPECT_FALSE(readJsonLines(path, records, error));
}

/** A minimal two-scene record in the bench schema. */
JsonValue
makeRecord(double ipc_scale)
{
    JsonValue rec = makeRunManifest("fig13", "Small");
    JsonValue results = JsonValue::array();
    const char *scenes[] = {"WKND", "BUNNY"};
    for (int s = 0; s < 2; ++s) {
        for (int c = 0; c < 2; ++c) {
            JsonValue cell = JsonValue::object();
            cell["scene"] = scenes[s];
            cell["config"] = c == 0 ? "RB_8" : "RB_8+SH_8+SK+RA";
            cell["config_index"] = c;
            cell["ipc"] = (0.5 + 0.1 * c) * (c == 1 ? ipc_scale : 1.0);
            cell["norm_ipc"] = c == 0 ? 1.0 : 1.2 * ipc_scale;
            cell["offchip_accesses"] = 1000.0 - 100.0 * c;
            results.push(cell);
        }
    }
    rec["results"] = results;
    JsonValue summary = JsonValue::array();
    JsonValue row = JsonValue::object();
    row["config"] = "RB_8+SH_8+SK+RA";
    row["mean_norm_ipc"] = 1.2 * ipc_scale;
    row["mean_norm_offchip"] = 0.9;
    summary.push(row);
    rec["summary"] = summary;
    return rec;
}

TEST(Compare, IdenticalRecordsPass)
{
    JsonValue rec = makeRecord(1.0);
    std::vector<CompareIssue> issues;
    std::string error;
    ASSERT_EQ(
        compareBenchRecords(rec, rec, CompareOptions{}, issues, error),
        CompareStatus::Ok)
        << error;
    EXPECT_TRUE(issues.empty());
}

TEST(Compare, DetectsInjectedIpcRegression)
{
    // The acceptance test of the issue: a 5% IPC regression on the SMS
    // config must trip the default 2% gate.
    JsonValue good = makeRecord(1.0);
    JsonValue bad = makeRecord(0.95);
    std::vector<CompareIssue> issues;
    std::string error;
    ASSERT_EQ(
        compareBenchRecords(good, bad, CompareOptions{}, issues, error),
        CompareStatus::Ok)
        << error;
    EXPECT_FALSE(issues.empty());
    bool saw_ipc = false;
    for (const CompareIssue &issue : issues)
        if (issue.metric == "ipc" || issue.metric == "norm_ipc" ||
            issue.metric == "mean_norm_ipc")
            saw_ipc = true;
    EXPECT_TRUE(saw_ipc);
}

TEST(Compare, WithinEpsilonPasses)
{
    JsonValue good = makeRecord(1.0);
    JsonValue near = makeRecord(1.001); // 0.1% < 2%
    std::vector<CompareIssue> issues;
    std::string error;
    ASSERT_EQ(
        compareBenchRecords(good, near, CompareOptions{}, issues, error),
        CompareStatus::Ok)
        << error;
    EXPECT_TRUE(issues.empty());
}

TEST(Compare, MissingCellFlaggedUnlessAllowed)
{
    JsonValue full = makeRecord(1.0);
    JsonValue partial = makeRecord(1.0);
    // Drop BUNNY cells from the partial record.
    JsonValue trimmed = JsonValue::array();
    for (const JsonValue &cell : partial.find("results")->elements())
        if (cell.stringOr("scene", "") != "BUNNY")
            trimmed.push(cell);
    partial["results"] = trimmed;

    std::vector<CompareIssue> issues;
    std::string error;
    ASSERT_EQ(compareBenchRecords(full, partial, CompareOptions{},
                                  issues, error),
              CompareStatus::Ok)
        << error;
    EXPECT_FALSE(issues.empty());

    issues.clear();
    CompareOptions lax;
    lax.allow_missing = true;
    ASSERT_EQ(compareBenchRecords(full, partial, lax, issues, error),
              CompareStatus::Ok)
        << error;
    EXPECT_TRUE(issues.empty());
}

/**
 * Attach a conserved counters.cycle_accounting block to every cell of
 * @p rec. @p issue_scale multiplies the issue leaf (the conservation
 * totals are recomputed, so scaled blocks stay internally consistent).
 */
void
attachAccounting(JsonValue &rec, double issue_scale = 1.0)
{
    JsonValue cells = JsonValue::array();
    for (const JsonValue &cell : rec.find("results")->elements()) {
        JsonValue copy = cell;
        uint64_t issue = static_cast<uint64_t>(4000 * issue_scale);
        uint64_t intersect = 3000, l2 = 500, idle = 1500;
        JsonValue leaves = JsonValue::object();
        leaves["issue"] = issue;
        leaves["intersect"] = intersect;
        leaves["stall.mem.l2_miss"] = l2;
        leaves["idle.done"] = idle;
        JsonValue acct = JsonValue::object();
        acct["version"] = 1;
        acct["warp_active_cycles"] = issue + intersect + l2;
        acct["slot_cycles"] = issue + intersect + l2 + idle;
        acct["leaves"] = leaves;
        JsonValue counters = JsonValue::object();
        counters["cycle_accounting"] = acct;
        copy["counters"] = counters;
        cells.push(copy);
    }
    rec["results"] = cells;
}

TEST(Compare, AccountingCheckPassesOnIdenticalRecords)
{
    JsonValue rec = makeRecord(1.0);
    attachAccounting(rec);
    CompareOptions options;
    options.check_accounting = true;
    std::vector<CompareIssue> issues;
    std::string error;
    ASSERT_EQ(compareBenchRecords(rec, rec, options, issues, error),
              CompareStatus::Ok)
        << error;
    EXPECT_TRUE(issues.empty());
}

TEST(Compare, AccountingCheckFlagsLeafDrift)
{
    JsonValue good = makeRecord(1.0);
    JsonValue bad = makeRecord(1.0);
    attachAccounting(good, 1.0);
    attachAccounting(bad, 1.10); // 10% more issue cycles, conserved
    CompareOptions options;
    options.check_accounting = true; // default 2% leaf epsilon
    std::vector<CompareIssue> issues;
    std::string error;
    ASSERT_EQ(compareBenchRecords(good, bad, options, issues, error),
              CompareStatus::Ok)
        << error;
    bool saw_leaf = false;
    for (const CompareIssue &issue : issues)
        if (issue.metric == "accounting:issue")
            saw_leaf = true;
    EXPECT_TRUE(saw_leaf);

    // Without the flag the same drift passes silently.
    issues.clear();
    ASSERT_EQ(
        compareBenchRecords(good, bad, CompareOptions{}, issues, error),
        CompareStatus::Ok)
        << error;
    EXPECT_TRUE(issues.empty());
}

TEST(Compare, AccountingCheckFlagsBrokenConservation)
{
    JsonValue good = makeRecord(1.0);
    JsonValue leaky = makeRecord(1.0);
    attachAccounting(good);
    attachAccounting(leaky);
    // Corrupt one leaf without updating the totals: the per-record
    // conservation re-check must fire even though both sides agree.
    JsonValue cells = JsonValue::array();
    for (const JsonValue &cell : leaky.find("results")->elements()) {
        JsonValue copy = cell;
        copy["counters"]["cycle_accounting"]["leaves"]["issue"] = 1;
        cells.push(copy);
    }
    leaky["results"] = cells;

    CompareOptions options;
    options.check_accounting = true;
    std::vector<CompareIssue> issues;
    std::string error;
    ASSERT_EQ(compareBenchRecords(good, leaky, options, issues, error),
              CompareStatus::Ok)
        << error;
    bool saw_conservation = false;
    for (const CompareIssue &issue : issues)
        if (issue.metric == "accounting-conservation")
            saw_conservation = true;
    EXPECT_TRUE(saw_conservation);
}

TEST(Compare, AccountingCheckSkipsRecordsWithoutBlocks)
{
    // Old goldens predate the block; the check must not fail them.
    JsonValue rec = makeRecord(1.0);
    CompareOptions options;
    options.check_accounting = true;
    std::vector<CompareIssue> issues;
    std::string error;
    ASSERT_EQ(compareBenchRecords(rec, rec, options, issues, error),
              CompareStatus::Ok)
        << error;
    EXPECT_TRUE(issues.empty());
}

TEST(Compare, FigureMismatchIsAnError)
{
    JsonValue a = makeRecord(1.0);
    JsonValue b = makeRecord(1.0);
    b["figure"] = "fig15";
    std::vector<CompareIssue> issues;
    std::string error;
    EXPECT_EQ(compareBenchRecords(a, b, CompareOptions{}, issues, error),
              CompareStatus::SchemaMismatch);
    EXPECT_FALSE(error.empty());
}

} // namespace
} // namespace sms
