/**
 * @file
 * Tests for the cache tag model (LRU, associativity, write policies),
 * the DRAM bandwidth queue, and the line-geometry helpers.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/memory/cache.hpp"
#include "src/memory/dram.hpp"
#include "src/memory/request.hpp"
#include "src/util/rng.hpp"

namespace sms {
namespace {

constexpr Addr kLine = kLineBytes;

/**
 * Timestamp-based true-LRU reference model: the pre-optimization
 * formulation of Cache (O(ways) scans, uint64 recency clock). The
 * production recency-list implementation must match it access for
 * access — same hits, same evictions, same writebacks.
 */
class ReferenceCache
{
  public:
    explicit ReferenceCache(const CacheConfig &config) : config_(config)
    {
        uint64_t total_lines = config.size_bytes / config.line_bytes;
        if (config.ways == 0 || config.ways >= total_lines) {
            num_sets_ = 1;
            num_ways_ = static_cast<uint32_t>(total_lines);
        } else {
            num_ways_ = config.ways;
            num_sets_ = static_cast<uint32_t>(total_lines / config.ways);
        }
        lines_.resize(static_cast<size_t>(num_sets_) * num_ways_);
    }

    Cache::Result
    access(Addr line_addr, bool write)
    {
        Cache::Result result;
        Line *set =
            &lines_[static_cast<size_t>(
                        (line_addr / config_.line_bytes) % num_sets_) *
                    num_ways_];
        ++clock_;
        for (uint32_t w = 0; w < num_ways_; ++w) {
            if (set[w].valid && set[w].tag == line_addr) {
                set[w].lru = clock_;
                set[w].dirty = set[w].dirty || write;
                result.hit = true;
                return result;
            }
        }
        if (write && !config_.allocate_on_store)
            return result;
        Line *victim = &set[0];
        for (uint32_t w = 0; w < num_ways_; ++w) {
            if (!set[w].valid) {
                victim = &set[w];
                break;
            }
            if (set[w].lru < victim->lru)
                victim = &set[w];
        }
        if (victim->valid && victim->dirty) {
            result.evicted_dirty = true;
            result.evicted_line = victim->tag;
        }
        victim->valid = true;
        victim->tag = line_addr;
        victim->dirty = write;
        victim->lru = clock_;
        return result;
    }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        uint64_t lru = 0;
    };

    CacheConfig config_;
    uint32_t num_sets_ = 1;
    uint32_t num_ways_ = 1;
    std::vector<Line> lines_;
    uint64_t clock_ = 0;
};

void
crossCheck(const CacheConfig &config, uint32_t accesses, Addr addr_lines,
           uint64_t seed)
{
    Cache cache(config);
    ReferenceCache ref(config);
    Pcg32 rng(seed);
    for (uint32_t i = 0; i < accesses; ++i) {
        Addr addr = static_cast<Addr>(rng.nextU32() % addr_lines) *
                    config.line_bytes;
        bool write = rng.nextU32() % 4 == 0;
        Cache::Result got =
            cache.access(addr, write, TrafficClass::Node);
        Cache::Result want = ref.access(addr, write);
        ASSERT_EQ(got.hit, want.hit) << "access " << i;
        ASSERT_EQ(got.evicted_dirty, want.evicted_dirty) << "access " << i;
        if (want.evicted_dirty) {
            ASSERT_EQ(got.evicted_line, want.evicted_line)
                << "access " << i;
        }
    }
}

TEST(Cache, RecencyListMatchesTimestampLruFullyAssociative)
{
    // Table I L1D geometry: fully associative, the hashed-tag-index
    // fast path.
    crossCheck({64 * 1024, 0, kLineBytes, false}, 50000, 1500, 1);
    crossCheck({64 * 1024, 0, kLineBytes, true}, 50000, 1500, 2);
}

TEST(Cache, RecencyListMatchesTimestampLruSetAssociative)
{
    // Table I L2 geometry: 16-way, non-power-of-two set count.
    crossCheck({3 * 1024 * 1024 / 8, 16, kLineBytes, true}, 50000, 9000,
               3);
    // Tiny 2-way cache: maximal eviction churn.
    crossCheck({4 * kLineBytes, 2, kLineBytes, true}, 20000, 13, 4);
}

TEST(LineMath, AlignAndCover)
{
    EXPECT_EQ(lineAlign(0), 0u);
    EXPECT_EQ(lineAlign(127), 0u);
    EXPECT_EQ(lineAlign(128), 128u);
    EXPECT_EQ(linesCovering(0, 0), 0u);
    EXPECT_EQ(linesCovering(0, 1), 1u);
    EXPECT_EQ(linesCovering(0, 128), 1u);
    EXPECT_EQ(linesCovering(0, 129), 2u);
    EXPECT_EQ(linesCovering(120, 16), 2u);
    EXPECT_EQ(linesCovering(100, 300), 4u);
}

TEST(Cache, HitAfterFill)
{
    Cache cache({1024, 0, kLineBytes});
    EXPECT_FALSE(cache.access(0, false, TrafficClass::Node).hit);
    EXPECT_TRUE(cache.access(0, false, TrafficClass::Node).hit);
    EXPECT_EQ(cache.stats().loads, 2u);
    EXPECT_EQ(cache.stats().load_misses, 1u);
}

TEST(Cache, FullyAssociativeGeometry)
{
    Cache cache({8 * kLine, 0, kLineBytes});
    EXPECT_EQ(cache.numSets(), 1u);
    EXPECT_EQ(cache.numWays(), 8u);
}

TEST(Cache, SetAssociativeGeometry)
{
    Cache cache({64 * kLine, 4, kLineBytes});
    EXPECT_EQ(cache.numWays(), 4u);
    EXPECT_EQ(cache.numSets(), 16u);
}

TEST(Cache, NonPowerOfTwoSetCount)
{
    // The Table I L2: 3MB/16-way/128B lines = 1536 sets.
    Cache cache({3 * 1024 * 1024, 16, kLineBytes});
    EXPECT_EQ(cache.numSets(), 1536u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    Cache cache({2 * kLine, 0, kLineBytes});
    cache.access(0 * kLine, false, TrafficClass::Node);
    cache.access(1 * kLine, false, TrafficClass::Node);
    cache.access(0 * kLine, false, TrafficClass::Node); // refresh line 0
    cache.access(2 * kLine, false, TrafficClass::Node); // evicts line 1
    EXPECT_TRUE(cache.probe(0 * kLine));
    EXPECT_FALSE(cache.probe(1 * kLine));
    EXPECT_TRUE(cache.probe(2 * kLine));
}

TEST(Cache, DirtyEvictionReported)
{
    Cache cache({kLine, 0, kLineBytes});
    cache.access(0, true, TrafficClass::Stack); // dirty fill
    Cache::Result r = cache.access(kLine, false, TrafficClass::Node);
    EXPECT_TRUE(r.evicted_dirty);
    EXPECT_EQ(r.evicted_line, 0u);
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionSilent)
{
    Cache cache({kLine, 0, kLineBytes});
    cache.access(0, false, TrafficClass::Node);
    Cache::Result r = cache.access(kLine, false, TrafficClass::Node);
    EXPECT_FALSE(r.evicted_dirty);
}

TEST(Cache, NoWriteAllocateWritesAround)
{
    CacheConfig config{4 * kLine, 0, kLineBytes, false};
    Cache cache(config);
    Cache::Result r = cache.access(0, true, TrafficClass::Stack);
    EXPECT_FALSE(r.hit);
    EXPECT_FALSE(cache.probe(0)); // store miss did not allocate
    // A load allocates; a subsequent store hits and dirties it.
    cache.access(0, false, TrafficClass::Stack);
    EXPECT_TRUE(cache.access(0, true, TrafficClass::Stack).hit);
    Cache::Result evict = cache.access(kLine, false, TrafficClass::Node);
    (void)evict;
    EXPECT_EQ(cache.stats().store_misses, 1u);
}

TEST(Cache, SetsAreIndependent)
{
    // Two lines mapping to different sets never evict each other.
    Cache cache({4 * kLine, 2, kLineBytes}); // 2 sets x 2 ways
    cache.access(0 * kLine, false, TrafficClass::Node); // set 0
    cache.access(2 * kLine, false, TrafficClass::Node); // set 0
    cache.access(1 * kLine, false, TrafficClass::Node); // set 1
    cache.access(4 * kLine, false, TrafficClass::Node); // set 0, evicts
    EXPECT_TRUE(cache.probe(1 * kLine));
    EXPECT_FALSE(cache.probe(0 * kLine));
}

TEST(Cache, ClassMissAccounting)
{
    Cache cache({8 * kLine, 0, kLineBytes});
    cache.access(0, false, TrafficClass::Node);
    cache.access(kLine, false, TrafficClass::Stack);
    cache.access(2 * kLine, false, TrafficClass::Stack);
    EXPECT_EQ(cache.missesByClass(TrafficClass::Node), 1u);
    EXPECT_EQ(cache.missesByClass(TrafficClass::Stack), 2u);
    EXPECT_EQ(cache.missesByClass(TrafficClass::Primitive), 0u);
}

TEST(Cache, ResetDropsLinesKeepsStats)
{
    Cache cache({8 * kLine, 0, kLineBytes});
    cache.access(0, false, TrafficClass::Node);
    cache.reset();
    EXPECT_FALSE(cache.probe(0));
    EXPECT_EQ(cache.stats().loads, 1u);
}

TEST(Cache, MissRateComputation)
{
    Cache cache({8 * kLine, 0, kLineBytes});
    cache.access(0, false, TrafficClass::Node);
    cache.access(0, false, TrafficClass::Node);
    EXPECT_DOUBLE_EQ(cache.stats().missRate(), 0.5);
}

// ---------------------------------------------------------------------
// DRAM
// ---------------------------------------------------------------------

TEST(Dram, LatencyWithoutContention)
{
    Dram dram({200, 4});
    EXPECT_EQ(dram.access(1000, false, TrafficClass::Node), 1200u);
}

TEST(Dram, BandwidthSerializesBackToBack)
{
    Dram dram({200, 4});
    Cycle a = dram.access(0, false, TrafficClass::Node);
    Cycle b = dram.access(0, false, TrafficClass::Node);
    Cycle c = dram.access(0, false, TrafficClass::Node);
    EXPECT_EQ(a, 200u);
    EXPECT_EQ(b, 204u);
    EXPECT_EQ(c, 208u);
    EXPECT_EQ(dram.stats().queue_wait_cycles, 4u + 8u);
}

TEST(Dram, IdleGapsResetQueue)
{
    Dram dram({200, 4});
    dram.access(0, false, TrafficClass::Node);
    Cycle later = dram.access(1000, false, TrafficClass::Node);
    EXPECT_EQ(later, 1200u);
}

TEST(Dram, CountsByClassAndDirection)
{
    Dram dram({200, 4});
    dram.access(0, false, TrafficClass::Node);
    dram.access(0, true, TrafficClass::Stack);
    dram.access(0, true, TrafficClass::Stack);
    EXPECT_EQ(dram.stats().loads, 1u);
    EXPECT_EQ(dram.stats().stores, 2u);
    EXPECT_EQ(dram.stats().accesses(), 3u);
    EXPECT_EQ(dram.stats().by_class[(int)TrafficClass::Stack], 2u);
}

} // namespace
} // namespace sms
