/**
 * @file
 * Tests for the live metrics registry and sampler: the gated-off path
 * (no counter moves while telemetry is off), registry identity,
 * exact sums under concurrent increments, histogram bucket
 * boundaries, the sms-metrics-1 JSONL series written by the sampler,
 * and the series validator's rejection cases.
 *
 * Ordering matters: the telemetry gate is process-wide and sticky, so
 * the gated-off expectations run first (gtest executes tests in
 * registration order) before any test configures the sampler.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/stats/metrics.hpp"
#include "src/stats/report.hpp"

namespace sms {
namespace {

TEST(MetricsGatedOff, NothingMovesWhileOff)
{
    ASSERT_FALSE(metricsOn());
    MetricCounter &c = metricCounter("test.gated_counter");
    MetricGauge &g = metricGauge("test.gated_gauge");
    MetricHistogram &h =
        metricHistogram("test.gated_hist", {1.0, 10.0});
    c.add(5);
    g.set(7);
    g.add(3);
    g.max(99);
    h.observe(0.5);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
    for (uint64_t count : h.counts())
        EXPECT_EQ(count, 0u);
}

TEST(MetricsGatedOff, HistogramReregisterWithOtherBoundsDies)
{
    metricHistogram("test.rereg_hist", {1.0, 2.0});
    EXPECT_DEATH(metricHistogram("test.rereg_hist", {1.0, 3.0}),
                 "re-registered");
}

TEST(MetricsRegistry, LookupReturnsStableIdentity)
{
    MetricCounter &a = metricCounter("test.identity");
    MetricCounter &b = metricCounter("test.identity");
    EXPECT_EQ(&a, &b);
    MetricGauge &ga = metricGauge("test.identity_gauge");
    MetricGauge &gb = metricGauge("test.identity_gauge");
    EXPECT_EQ(&ga, &gb);
    MetricHistogram &ha = metricHistogram("test.identity_hist", {1.0});
    MetricHistogram &hb = metricHistogram("test.identity_hist", {1.0});
    EXPECT_EQ(&ha, &hb);
}

/** Everything below runs with the sampler configured (gate on). */
class MetricsOnTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // No export path: the registry is live but nothing is written
        // unless the individual test configures a path itself.
        MetricsConfig config;
        config.interval_ms = 3600000; // effectively manual-flush only
        metricsConfigure(config);
        ASSERT_TRUE(metricsOn());
        ASSERT_TRUE(metricsActive());
    }
};

TEST_F(MetricsOnTest, ConcurrentIncrementsSumExactly)
{
    MetricCounter &c = metricCounter("test.concurrent");
    constexpr int kThreads = 8;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&c] {
            for (int i = 0; i < kPerThread; ++i)
                c.add(1);
        });
    for (std::thread &w : workers)
        w.join();
    EXPECT_EQ(c.value(),
              static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST_F(MetricsOnTest, GaugeSetAddMax)
{
    MetricGauge &g = metricGauge("test.gauge_ops");
    g.set(10);
    EXPECT_EQ(g.value(), 10);
    g.add(-3);
    EXPECT_EQ(g.value(), 7);
    g.max(5); // below current: no change
    EXPECT_EQ(g.value(), 7);
    g.max(42);
    EXPECT_EQ(g.value(), 42);
}

TEST_F(MetricsOnTest, HistogramBucketBoundaries)
{
    MetricHistogram &h =
        metricHistogram("test.bounds_hist", {1.0, 3.0, 10.0});
    // Bounds are inclusive upper bounds; one overflow bucket after.
    h.observe(0.5);  // bucket 0
    h.observe(1.0);  // bucket 0 (exactly on the bound)
    h.observe(1.001); // bucket 1
    h.observe(3.0);  // bucket 1
    h.observe(9.99); // bucket 2
    h.observe(10.0); // bucket 2
    h.observe(10.5); // overflow
    std::vector<uint64_t> counts = h.counts();
    ASSERT_EQ(counts.size(), 4u);
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 2u);
    EXPECT_EQ(counts[2], 2u);
    EXPECT_EQ(counts[3], 1u);
}

TEST_F(MetricsOnTest, SnapshotSortedAndCollectorMerged)
{
    static std::atomic<uint64_t> external{123};
    metricsAddCollector(
        [](const std::function<void(const char *, uint64_t)> &sink) {
            sink("test.external_counter", external.load());
        });
    metricCounter("test.snap_counter").add(4);
    MetricsSnapshot snap = metricsSnapshot();
    EXPECT_GT(snap.seq, 0u);
    for (size_t i = 1; i < snap.counters.size(); ++i)
        EXPECT_LE(snap.counters[i - 1].first, snap.counters[i].first);
    EXPECT_EQ(snap.counterOr("test.external_counter", 0), 123u);
    EXPECT_GE(snap.counterOr("test.snap_counter", 0), 4u);
    EXPECT_EQ(snap.counterOr("test.no_such_counter", 77), 77u);
}

TEST_F(MetricsOnTest, SamplerWritesValidSeries)
{
    std::string path =
        ::testing::TempDir() + "metrics_series_test.jsonl";
    std::remove(path.c_str());
    MetricsConfig config;
    config.path = path;
    config.interval_ms = 5;
    metricsConfigure(config);
    MetricCounter &c = metricCounter("test.series_counter");
    for (int i = 0; i < 10; ++i) {
        c.add(3);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    metricsFlushNow();
    metricsFlushNow();

    std::vector<JsonValue> lines;
    std::string error;
    ASSERT_TRUE(readJsonLines(path, lines, error)) << error;
    ASSERT_GE(lines.size(), 2u);
    EXPECT_TRUE(validateMetricsSeries(lines, error)) << error;
    EXPECT_EQ(lines[0].stringOr("schema", ""), kMetricsSchema);
    EXPECT_GE(metricsStats().samples, lines.size());
    std::remove(path.c_str());

    // Hand the state back to the manual-flush config so later tests
    // are not surprised by a 5 ms sampler.
    MetricsConfig quiet;
    quiet.interval_ms = 3600000;
    metricsConfigure(quiet);
}

TEST_F(MetricsOnTest, ValidatorRejectsBrokenSeries)
{
    auto sample = [](uint64_t seq, double wall, long pid,
                     uint64_t counter) {
        JsonValue line = JsonValue::object();
        line["schema"] = kMetricsSchema;
        line["pid"] = static_cast<long long>(pid);
        line["seq"] = seq;
        line["wall_ms"] = wall;
        JsonValue counters = JsonValue::object();
        counters["c"] = counter;
        line["counters"] = std::move(counters);
        return line;
    };
    std::string error;

    std::vector<JsonValue> ok = {sample(1, 0.0, 42, 5),
                                 sample(2, 1.0, 42, 9)};
    EXPECT_TRUE(validateMetricsSeries(ok, error)) << error;

    std::vector<JsonValue> empty;
    EXPECT_FALSE(validateMetricsSeries(empty, error));

    std::vector<JsonValue> bad_schema = {sample(1, 0.0, 42, 5)};
    bad_schema[0]["schema"] = "sms-bench-1";
    EXPECT_FALSE(validateMetricsSeries(bad_schema, error));
    EXPECT_NE(error.find("schema"), std::string::npos);

    std::vector<JsonValue> mixed_pid = {sample(1, 0.0, 42, 5),
                                        sample(2, 1.0, 43, 9)};
    EXPECT_FALSE(validateMetricsSeries(mixed_pid, error));
    EXPECT_NE(error.find("pids"), std::string::npos);

    std::vector<JsonValue> stale_seq = {sample(2, 0.0, 42, 5),
                                        sample(2, 1.0, 42, 9)};
    EXPECT_FALSE(validateMetricsSeries(stale_seq, error));
    EXPECT_NE(error.find("seq"), std::string::npos);

    std::vector<JsonValue> wall_back = {sample(1, 5.0, 42, 5),
                                        sample(2, 1.0, 42, 9)};
    EXPECT_FALSE(validateMetricsSeries(wall_back, error));
    EXPECT_NE(error.find("wall_ms"), std::string::npos);

    std::vector<JsonValue> counter_back = {sample(1, 0.0, 42, 9),
                                           sample(2, 1.0, 42, 5)};
    EXPECT_FALSE(validateMetricsSeries(counter_back, error));
    EXPECT_NE(error.find("backwards"), std::string::npos);
}

} // namespace
} // namespace sms
