/**
 * @file
 * Tests for the traversal tape: encoding round-trips, the
 * record-then-replay counter-identity guarantee (the tentpole property:
 * a tape recorded under any stack configuration drives a timing run
 * whose SimResult is byte-identical to full execution under every other
 * configuration), the sweep-level tape modes, and on-disk persistence.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/sim/traversal_tape.hpp"
#include "src/stats/report.hpp"
#include "src/trace/render.hpp"
#include "src/trace/workload_cache.hpp"

namespace sms {
namespace {

/** RAII environment-variable override. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        had_old_ = old != nullptr;
        if (had_old_)
            old_ = old;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_old_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

  private:
    const char *name_;
    bool had_old_;
    std::string old_;
};

/** Fresh per-test cache directory, removed on destruction. */
class TempCacheDir
{
  public:
    TempCacheDir()
        : path_("/tmp/sms_tape_test_" +
                std::to_string(static_cast<long>(::getpid())) + "_" +
                std::to_string(counter_++))
    {
        std::string cmd = "rm -rf '" + path_ + "'";
        [[maybe_unused]] int rc = std::system(cmd.c_str());
    }
    ~TempCacheDir()
    {
        std::string cmd = "rm -rf '" + path_ + "'";
        [[maybe_unused]] int rc = std::system(cmd.c_str());
    }
    const std::string &path() const { return path_; }

  private:
    static int counter_;
    std::string path_;
};

int TempCacheDir::counter_ = 0;

/** Full machine-readable dump — the strictest SimResult equality. */
std::string
resultJson(const SimResult &r)
{
    return toJson(r).dump();
}

std::shared_ptr<Workload>
tinyWorkload(SceneId id)
{
    RenderParams params = RenderParams::forScene(id);
    params.width = 24;
    params.height = 18;
    params.max_bounces = 2;
    return prepareWorkload(id, ScaleProfile::Tiny, &params);
}

TEST(TraversalTape, FetchPhaseRoundTrip)
{
    JobTape tape;
    TapeWriter writer(&tape);
    FetchLineList lines = {
        packFetchLine(0 * kLineBytes, TrafficClass::Node),
        packFetchLine(3 * kLineBytes, TrafficClass::Node),
        packFetchLine(4 * kLineBytes, TrafficClass::Primitive),
        packFetchLine(1000 * kLineBytes, TrafficClass::Stack),
    };
    // The packed entry IS the wire layout: line index above the 2-bit
    // traffic class.
    EXPECT_EQ(lines[2], (4u << 2) | 1u);
    EXPECT_EQ(fetchLineAddr(lines[3]), 1000 * kLineBytes);
    EXPECT_EQ(fetchLineClass(lines[3]), TrafficClass::Stack);
    writer.fetchPhase(lines, true, true, 17);
    writer.fetchPhase({}, false, true, 63);
    EXPECT_EQ(tape.steps, 2u);

    TapeCursor cursor(&tape);
    FetchLineList got;
    bool has_internal = false, has_leaf = false;
    uint32_t max_prims = 0;
    cursor.fetchPhase(got, has_internal, has_leaf, max_prims);
    EXPECT_EQ(got, lines);
    EXPECT_TRUE(has_internal);
    EXPECT_TRUE(has_leaf);
    EXPECT_EQ(max_prims, 17u);

    cursor.fetchPhase(got, has_internal, has_leaf, max_prims);
    EXPECT_TRUE(got.empty());
    EXPECT_FALSE(has_internal);
    EXPECT_TRUE(has_leaf);
    EXPECT_EQ(max_prims, 63u);
    EXPECT_TRUE(cursor.atEnd());
}

TEST(TraversalTape, LaneActionRoundTrip)
{
    JobTape tape;
    TapeWriter writer(&tape);

    // Internal visit pushing ChildRef bit patterns whose 2-bit kind
    // lives in the high bits — the kind-swizzle must restore them
    // exactly.
    uint64_t pushes[3] = {
        (1ull << 30) | 5,        // internal node 5
        (2ull << 30) | (77 << 6) | 3, // leaf, offset 77, count 3
        (1ull << 30) | 0x3fffffff,    // max internal index
    };
    writer.internalVisit(6, pushes, 3);
    writer.leafVisit(9, true);
    writer.leafVisit(2, false);

    TapeCursor cursor(&tape);
    TapeCursor::LaneAction a = cursor.laneAction();
    EXPECT_FALSE(a.is_leaf);
    EXPECT_EQ(a.tests, 6u);
    EXPECT_EQ(a.pushes, 3u);
    for (uint32_t i = 0; i < 3; ++i)
        EXPECT_EQ(cursor.pushValue(), pushes[i]);

    a = cursor.laneAction();
    EXPECT_TRUE(a.is_leaf);
    EXPECT_TRUE(a.abandoned);
    EXPECT_EQ(a.tests, 9u);

    a = cursor.laneAction();
    EXPECT_TRUE(a.is_leaf);
    EXPECT_FALSE(a.abandoned);
    EXPECT_EQ(a.tests, 2u);
    EXPECT_TRUE(cursor.atEnd());
}

TEST(TraversalTape, RecordThenReplayIsCounterIdentical)
{
    auto w = tinyWorkload(SceneId::REF);

    TraversalTape tape;
    SimOptions record;
    record.record_tape = &tape;
    GpuConfig record_config = makeGpuConfig(StackConfig::baseline(8));
    SimResult recorded = runWorkload(*w, record_config, record);

    EXPECT_EQ(tape.jobs.size(), w->render.jobs.size());
    EXPECT_EQ(tape.fingerprint,
              workloadFingerprint(w->render.jobs, w->bvh));
    EXPECT_GT(tape.totalBytes(), 0u);

    // The recording run itself must not perturb the timing result.
    EXPECT_EQ(resultJson(recorded),
              resultJson(runWorkload(*w, record_config)));

    // A tape recorded under RB_8 replays counter-identically under
    // every other stack configuration.
    const StackConfig configs[] = {
        StackConfig::baseline(8),  StackConfig::baseline(2),
        StackConfig::withSh(8, 8), StackConfig::sms(),
        StackConfig::rbFull(),
    };
    for (const StackConfig &stack : configs) {
        GpuConfig config = makeGpuConfig(stack);
        SimOptions replay;
        replay.replay_tape = &tape;
        SimResult executed = runWorkload(*w, config);
        SimResult replayed = runWorkload(*w, config, replay);
        EXPECT_EQ(resultJson(executed), resultJson(replayed))
            << "replay diverged under " << stack.name();
    }
}

TEST(TraversalTape, ReplayMatchesExecutionAcrossRandomConfigs)
{
    // Property: for randomized (scene, recording config, replay config,
    // L1 size) combinations, execution-driven and tape-replayed timing
    // runs produce byte-identical SimResults.
    std::mt19937 rng(20250806);
    const SceneId scenes[] = {SceneId::REF, SceneId::WKND};
    const uint32_t rbs[] = {2, 4, 8};
    const uint32_t shs[] = {0, 4, 8};

    auto random_config = [&]() {
        uint32_t rb = rbs[rng() % 3];
        uint32_t sh = shs[rng() % 3];
        if (sh == 0)
            return rng() % 4 == 0 ? StackConfig::rbFull()
                                  : StackConfig::baseline(rb);
        bool sk = rng() % 2 == 0;
        bool ra = rng() % 2 == 0;
        return StackConfig::withSh(rb, sh, sk, ra);
    };

    for (SceneId id : scenes) {
        auto w = tinyWorkload(id);

        TraversalTape tape;
        SimOptions record;
        record.record_tape = &tape;
        runWorkload(*w, makeGpuConfig(random_config()), record);

        for (int trial = 0; trial < 4; ++trial) {
            StackConfig stack = random_config();
            uint64_t l1 = rng() % 2 == 0 ? 0 : 16 * 1024;
            GpuConfig config = makeGpuConfig(stack, l1);
            SimOptions replay;
            replay.replay_tape = &tape;
            SimResult executed = runWorkload(*w, config);
            SimResult replayed = runWorkload(*w, config, replay);
            EXPECT_EQ(resultJson(executed), resultJson(replayed))
                << sceneName(id) << " trial " << trial << " under "
                << stack.name();
        }
    }
}

TEST(TraversalTape, SweepGridsIdenticalAcrossModesAndThreads)
{
    std::vector<std::shared_ptr<Workload>> workloads = {
        tinyWorkload(SceneId::REF), tinyWorkload(SceneId::WKND)};
    std::vector<StackConfig> configs = {
        StackConfig::baseline(8), StackConfig::withSh(8, 8),
        StackConfig::sms()};

    auto grid_json = [&](const char *mode, unsigned threads) {
        ScopedEnv env("SMS_TRAVERSAL_TAPE", mode);
        benchutil::SweepResult sweep =
            benchutil::runSweep(workloads, configs, {}, threads);
        std::string all;
        for (const auto &row : sweep.results)
            for (const SimResult &r : row)
                all += resultJson(r) + "\n";
        return all;
    };

    resetTraversalTapeStats();
    std::string off = grid_json("off", 1);
    EXPECT_EQ(traversalTapeStats().jobs_recorded, 0u);

    std::string mem1 = grid_json("mem", 1);
    TraversalTapeStats stats = traversalTapeStats();
    EXPECT_GT(stats.jobs_recorded, 0u);
    EXPECT_GT(stats.jobs_replayed, 0u);
    EXPECT_GT(stats.bytes, 0u);
    EXPECT_EQ(stats.failures, 0u);

    std::string mem3 = grid_json("mem", 3);

    EXPECT_EQ(off, mem1);
    EXPECT_EQ(off, mem3);
}

TEST(TraversalTape, DiskTapePersistsAndReplaysAcrossRuns)
{
    TempCacheDir dir;
    ScopedEnv cache_env("SMS_WORKLOAD_CACHE", dir.path().c_str());
    ScopedEnv tape_env("SMS_TRAVERSAL_TAPE", "disk");

    std::vector<std::shared_ptr<Workload>> workloads = {
        tinyWorkload(SceneId::REF)};
    std::vector<StackConfig> configs = {StackConfig::baseline(8),
                                        StackConfig::sms()};

    resetTraversalTapeStats();
    benchutil::SweepResult cold =
        benchutil::runSweep(workloads, configs, {}, 1);
    TraversalTapeStats after_cold = traversalTapeStats();
    EXPECT_GT(after_cold.jobs_recorded, 0u);
    EXPECT_EQ(after_cold.disk_loads, 0u);
    EXPECT_EQ(after_cold.disk_stores, 1u);

    std::string tape_path =
        traversalTapePath(dir.path(), workloads[0]->id,
                          workloads[0]->profile, workloads[0]->params);
    struct stat st{};
    ASSERT_EQ(::stat(tape_path.c_str(), &st), 0)
        << "tape not written to " << tape_path;

    // Second sweep: every cell (including the first) replays from disk.
    resetTraversalTapeStats();
    benchutil::SweepResult warm =
        benchutil::runSweep(workloads, configs, {}, 1);
    TraversalTapeStats after_warm = traversalTapeStats();
    EXPECT_EQ(after_warm.jobs_recorded, 0u);
    EXPECT_EQ(after_warm.disk_loads, 1u);
    EXPECT_GT(after_warm.jobs_replayed, 0u);

    for (size_t c = 0; c < configs.size(); ++c)
        EXPECT_EQ(resultJson(cold.results[0][c]),
                  resultJson(warm.results[0][c]));
}

TEST(TraversalTape, CorruptDiskTapeIsReRecordedNotTrusted)
{
    TempCacheDir dir;
    ScopedEnv cache_env("SMS_WORKLOAD_CACHE", dir.path().c_str());
    ScopedEnv tape_env("SMS_TRAVERSAL_TAPE", "disk");

    std::vector<std::shared_ptr<Workload>> workloads = {
        tinyWorkload(SceneId::REF)};
    std::vector<StackConfig> configs = {StackConfig::baseline(8),
                                        StackConfig::sms()};

    benchutil::SweepResult cold =
        benchutil::runSweep(workloads, configs, {}, 1);
    std::string tape_path =
        traversalTapePath(dir.path(), workloads[0]->id,
                          workloads[0]->profile, workloads[0]->params);

    // Flip one byte in the middle of the tape.
    std::FILE *f = std::fopen(tape_path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    ASSERT_GT(size, 32);
    std::fseek(f, size / 2, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, size / 2, SEEK_SET);
    std::fputc(c ^ 0xff, f);
    std::fclose(f);

    resetTraversalTapeStats();
    benchutil::SweepResult rebuilt =
        benchutil::runSweep(workloads, configs, {}, 1);
    TraversalTapeStats stats = traversalTapeStats();
    EXPECT_EQ(stats.failures, 1u);
    EXPECT_GT(stats.jobs_recorded, 0u); // re-recorded from scratch
    EXPECT_EQ(stats.disk_stores, 1u);   // tape rewritten

    for (size_t c2 = 0; c2 < configs.size(); ++c2)
        EXPECT_EQ(resultJson(cold.results[0][c2]),
                  resultJson(rebuilt.results[0][c2]));

    // The rewritten tape validates again.
    resetTraversalTapeStats();
    benchutil::runSweep(workloads, configs, {}, 1);
    EXPECT_EQ(traversalTapeStats().disk_loads, 1u);
    EXPECT_EQ(traversalTapeStats().failures, 0u);
}

TEST(TraversalTape, MismatchedTapeFailsFingerprintCheck)
{
    TempCacheDir dir;
    auto ref = tinyWorkload(SceneId::REF);
    auto wknd = tinyWorkload(SceneId::WKND);

    TraversalTape tape;
    SimOptions record;
    record.record_tape = &tape;
    runWorkload(*ref, makeGpuConfig(StackConfig::baseline(8)), record);
    ASSERT_TRUE(saveTraversalTape(dir.path(), *ref, tape));

    // A tape saved for REF must not validate against WKND even if the
    // file is copied onto WKND's key.
    std::string ref_path = traversalTapePath(
        dir.path(), ref->id, ref->profile, ref->params);
    std::string wknd_path = traversalTapePath(
        dir.path(), wknd->id, wknd->profile, wknd->params);
    std::string cmd = "cp '" + ref_path + "' '" + wknd_path + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);

    resetTraversalTapeStats();
    TraversalTape loaded;
    EXPECT_FALSE(loadTraversalTape(dir.path(), *wknd, loaded));
    EXPECT_EQ(traversalTapeStats().failures, 1u);

    // The genuine key still loads.
    EXPECT_TRUE(loadTraversalTape(dir.path(), *ref, loaded));
    EXPECT_EQ(loaded.fingerprint, tape.fingerprint);
    EXPECT_EQ(loaded.jobs.size(), tape.jobs.size());
    for (size_t j = 0; j < tape.jobs.size(); ++j) {
        EXPECT_EQ(loaded.jobs[j].bytes, tape.jobs[j].bytes);
        EXPECT_EQ(loaded.jobs[j].steps, tape.jobs[j].steps);
    }
}

} // namespace
} // namespace sms
