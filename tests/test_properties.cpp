/**
 * @file
 * Randomized property tests: conservation laws and structural
 * invariants of the hierarchical stack that must hold at every moment
 * of any execution, swept over seeds and configurations.
 */

#include <gtest/gtest.h>

#include "src/core/reference_stack.hpp"
#include "src/core/warp_stack.hpp"
#include "src/util/rng.hpp"

namespace sms {
namespace {

constexpr Addr kSharedBase = 0x0;
constexpr Addr kLocalBase = 0x100000000ull;

struct PropertyCase
{
    StackConfig config;
    uint64_t seed;
    const char *label;
};

class StackPropertyTest : public ::testing::TestWithParam<PropertyCase>
{
};

/** Count transactions of a kind in a list. */
uint32_t
count(const StackTxnList &txns, StackTxnKind kind)
{
    uint32_t n = 0;
    for (const StackTxn &t : txns)
        n += t.kind == kind ? 1 : 0;
    return n;
}

TEST_P(StackPropertyTest, ConservationAndBoundsAtEveryStep)
{
    const PropertyCase &tc = GetParam();
    const StackConfig &cfg = tc.config;
    WarpStackModel model(cfg, kSharedBase, kLocalBase);
    std::array<ReferenceStack, kWarpSize> oracle;

    // Half the warp finishes up front so reallocation (when enabled)
    // actually has lenders.
    for (uint32_t lane = 24; lane < kWarpSize; ++lane)
        model.finishLane(lane);

    Pcg32 rng(tc.seed);
    uint64_t value = 1;
    uint64_t depth_observed = 0;

    class CountingObserver : public DepthObserver
    {
      public:
        void
        onStackAccess(uint32_t, uint32_t) override
        {
            ++count;
        }
        uint64_t count = 0;
    } observer;
    model.setDepthObserver(&observer);

    for (int step = 0; step < 15000; ++step) {
        uint32_t lane = rng.nextBounded(24);
        StackTxnList txns;
        if (oracle[lane].empty() || rng.nextFloat() < 0.55f) {
            model.push(lane, value, txns);
            oracle[lane].push(value++);
        } else {
            // peek must equal the value pop returns.
            uint64_t top = model.peek(lane);
            uint64_t got;
            ASSERT_TRUE(model.pop(lane, got, txns));
            ASSERT_EQ(top, got);
            ASSERT_EQ(got, oracle[lane].pop());
        }
        ++depth_observed;

        // --- per-step invariants -----------------------------------
        const WarpStackStats &s = model.stats();
        // Transactions against each level balance with what is
        // resident there.
        uint64_t resident_global = 0;
        uint64_t resident_sh = 0;
        for (uint32_t l = 0; l < 24; ++l) {
            resident_global += model.globalDepth(l);
            resident_sh += model.shDepth(l);
        }
        ASSERT_EQ(s.global_stores, s.global_loads + resident_global);
        ASSERT_EQ(s.sh_stores, s.sh_loads + resident_sh);

        // Structural bounds.
        ASSERT_LE(model.borrowedCount(lane), cfg.max_borrowed);
        if (cfg.hasShStack()) {
            ASSERT_LE(model.shDepth(lane),
                      (1 + model.borrowedCount(lane)) * cfg.sh_entries);
        } else {
            ASSERT_EQ(model.shDepth(lane), 0u);
        }
        ASSERT_EQ(model.logicalDepth(lane), oracle[lane].depth());

        // Shared addresses always land inside the warp's stack file.
        for (const StackTxn &t : txns) {
            if (t.kind == StackTxnKind::SharedLoad ||
                t.kind == StackTxnKind::SharedStore) {
                ASSERT_GE(t.addr, kSharedBase);
                ASSERT_LT(t.addr, kSharedBase +
                                      kWarpSize * cfg.sh_entries *
                                          kStackEntryBytes);
            } else {
                ASSERT_GE(t.addr, kLocalBase);
            }
        }
    }

    // The depth observer saw exactly one event per push/pop.
    EXPECT_EQ(observer.count, model.stats().pushes + model.stats().pops);
    EXPECT_EQ(observer.count, depth_observed);
}

TEST_P(StackPropertyTest, TxnKindsMatchConfiguration)
{
    const PropertyCase &tc = GetParam();
    WarpStackModel model(tc.config, kSharedBase, kLocalBase);
    Pcg32 rng(tc.seed ^ 0xabcdef);
    ReferenceStack oracle;
    StackTxnList all;
    uint64_t v = 1;
    for (int i = 0; i < 4000; ++i) {
        StackTxnList txns;
        if (oracle.empty() || rng.nextFloat() < 0.56f) {
            model.push(9, v, txns);
            oracle.push(v++);
        } else {
            uint64_t got;
            model.pop(9, got, txns);
            ASSERT_EQ(got, oracle.pop());
        }
        all.insert(all.end(), txns.begin(), txns.end());
    }
    uint32_t shared = count(all, StackTxnKind::SharedLoad) +
                      count(all, StackTxnKind::SharedStore);
    if (!tc.config.hasShStack()) {
        EXPECT_EQ(shared, 0u) << "no SH stack, no shared traffic";
    }
    if (tc.config.rb_unbounded) {
        EXPECT_TRUE(all.empty()) << "RB_FULL never touches memory";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, StackPropertyTest,
    ::testing::Values(
        PropertyCase{StackConfig::baseline(8), 101, "rb8_a"},
        PropertyCase{StackConfig::baseline(8), 202, "rb8_b"},
        PropertyCase{StackConfig::baseline(3), 303, "rb3"},
        PropertyCase{StackConfig::rbFull(), 404, "full"},
        PropertyCase{StackConfig::withSh(8, 8), 505, "sh8_a"},
        PropertyCase{StackConfig::withSh(8, 8), 606, "sh8_b"},
        PropertyCase{StackConfig::withSh(4, 4, true, false), 707,
                     "sh4sk"},
        PropertyCase{StackConfig::sms(), 808, "sms_a"},
        PropertyCase{StackConfig::sms(), 909, "sms_b"},
        PropertyCase{StackConfig::sms(2, 8), 1010, "sms28"},
        PropertyCase{StackConfig::sms(8, 16), 1111, "sms816"},
        PropertyCase{StackConfig::sms(8, 4), 1212, "sms84"}),
    [](const auto &info) { return std::string(info.param.label); });

TEST(ReferenceStack, LifoSemantics)
{
    ReferenceStack stack;
    EXPECT_TRUE(stack.empty());
    stack.push(1);
    stack.push(2);
    EXPECT_EQ(stack.depth(), 2u);
    EXPECT_EQ(stack.pop(), 2u);
    EXPECT_EQ(stack.pop(), 1u);
    EXPECT_TRUE(stack.empty());
}

TEST(ReferenceStack, PopEmptyDies)
{
    ReferenceStack stack;
    EXPECT_DEATH(stack.pop(), "pop from empty reference stack");
}

} // namespace
} // namespace sms
