/**
 * @file
 * Tests for the SMS hierarchical traversal stack (the paper's core
 * contribution). The headline property: for ANY push/pop sequence and
 * ANY configuration, pops return exactly what an unbounded reference
 * stack returns, while the emitted memory transactions follow the
 * paper's §IV/§VI protocols.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/reference_stack.hpp"
#include "src/core/warp_stack.hpp"
#include "src/util/rng.hpp"

namespace sms {
namespace {

constexpr Addr kSharedBase = 0;
constexpr Addr kLocalBase = 0x100000000ull;

uint32_t
countKind(const StackTxnList &txns, StackTxnKind kind)
{
    uint32_t n = 0;
    for (const StackTxn &t : txns)
        n += t.kind == kind ? 1 : 0;
    return n;
}

// ---------------------------------------------------------------------
// Oracle equivalence (the central invariant)
// ---------------------------------------------------------------------

struct OracleCase
{
    StackConfig config;
    uint64_t seed;
    const char *label;
};

class StackOracleTest : public ::testing::TestWithParam<OracleCase>
{
};

TEST_P(StackOracleTest, RandomChurnMatchesReference)
{
    const OracleCase &tc = GetParam();
    WarpStackModel model(tc.config, kSharedBase, kLocalBase);
    std::array<ReferenceStack, kWarpSize> oracle;
    Pcg32 rng(tc.seed);
    uint64_t next_value = 1;

    for (int step = 0; step < 20000; ++step) {
        uint32_t lane = rng.nextBounded(kWarpSize);
        StackTxnList txns;
        // Bias toward pushes so stacks grow deep enough to exercise
        // every spill level, with bursts of pops mixed in.
        bool do_push =
            oracle[lane].empty() || rng.nextFloat() < 0.54f;
        if (do_push) {
            model.push(lane, next_value, txns);
            oracle[lane].push(next_value);
            ++next_value;
        } else {
            uint64_t got = 0;
            ASSERT_TRUE(model.pop(lane, got, txns));
            uint64_t want = oracle[lane].pop();
            ASSERT_EQ(got, want)
                << tc.label << " step " << step << " lane " << lane;
        }
        ASSERT_EQ(model.logicalDepth(lane), oracle[lane].depth());
        ASSERT_EQ(model.laneEmpty(lane), oracle[lane].empty());
    }

    // Drain everything; order must still match.
    for (uint32_t lane = 0; lane < kWarpSize; ++lane) {
        StackTxnList txns;
        uint64_t got;
        while (model.pop(lane, got, txns))
            ASSERT_EQ(got, oracle[lane].pop()) << "drain lane " << lane;
        ASSERT_TRUE(oracle[lane].empty());
    }
}

TEST_P(StackOracleTest, DeepSpikeThenFullDrain)
{
    // One lane pushes far past every capacity boundary, then drains.
    const OracleCase &tc = GetParam();
    WarpStackModel model(tc.config, kSharedBase, kLocalBase);
    StackTxnList txns;
    constexpr uint32_t kDepth = 150;
    for (uint64_t v = 1; v <= kDepth; ++v)
        model.push(0, v, txns);
    EXPECT_EQ(model.logicalDepth(0), kDepth);
    for (uint64_t v = kDepth; v >= 1; --v) {
        uint64_t got;
        ASSERT_TRUE(model.pop(0, got, txns));
        ASSERT_EQ(got, v);
    }
    EXPECT_TRUE(model.laneEmpty(0));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, StackOracleTest,
    ::testing::Values(
        OracleCase{StackConfig::baseline(8), 1, "rb8"},
        OracleCase{StackConfig::baseline(2), 2, "rb2"},
        OracleCase{StackConfig::baseline(1), 3, "rb1"},
        OracleCase{StackConfig::rbFull(), 4, "full"},
        OracleCase{StackConfig::withSh(8, 8), 5, "sh8"},
        OracleCase{StackConfig::withSh(8, 4), 6, "sh4"},
        OracleCase{StackConfig::withSh(8, 16), 7, "sh16"},
        OracleCase{StackConfig::withSh(2, 8), 8, "rb2sh8"},
        OracleCase{StackConfig::withSh(8, 8, true, false), 9, "sk"},
        OracleCase{StackConfig::withSh(8, 8, false, true), 10, "ra"},
        OracleCase{StackConfig::sms(), 11, "sms"},
        OracleCase{StackConfig::sms(2, 4), 12, "sms24"},
        OracleCase{StackConfig::sms(4, 16), 13, "sms416"}),
    [](const auto &info) { return std::string(info.param.label); });

// With reallocation, idle lanes lend their stacks; re-run the churn
// with half the warp finished so borrowing actually happens.
TEST(StackOracle, ChurnWithFinishedLanesAndBorrowing)
{
    StackConfig config = StackConfig::sms();
    WarpStackModel model(config, kSharedBase, kLocalBase);
    // Lanes 16..31 never traverse: mark finished immediately.
    for (uint32_t lane = 16; lane < 32; ++lane)
        model.finishLane(lane);

    std::array<ReferenceStack, 16> oracle;
    Pcg32 rng(777);
    uint64_t next_value = 1;
    for (int step = 0; step < 30000; ++step) {
        uint32_t lane = rng.nextBounded(16);
        StackTxnList txns;
        if (oracle[lane].empty() || rng.nextFloat() < 0.55f) {
            model.push(lane, next_value, txns);
            oracle[lane].push(next_value++);
        } else {
            uint64_t got;
            ASSERT_TRUE(model.pop(lane, got, txns));
            ASSERT_EQ(got, oracle[lane].pop()) << "step " << step;
        }
    }
    EXPECT_GT(model.stats().borrows, 0u);
    for (uint32_t lane = 0; lane < 16; ++lane) {
        StackTxnList txns;
        uint64_t got;
        while (model.pop(lane, got, txns))
            ASSERT_EQ(got, oracle[lane].pop());
    }
}

// Lanes that finish mid-run lend their stacks to the remaining lanes.
TEST(StackOracle, StaggeredFinishersLendStacks)
{
    StackConfig config = StackConfig::sms();
    WarpStackModel model(config, kSharedBase, kLocalBase);
    Pcg32 rng(4242);
    StackTxnList txns;

    // Every lane grows a small stack, then lanes finish one by one
    // while lane 0 keeps digging deeper.
    std::array<ReferenceStack, kWarpSize> oracle;
    uint64_t v = 1;
    for (uint32_t lane = 0; lane < kWarpSize; ++lane) {
        for (int i = 0; i < 6; ++i) {
            model.push(lane, v, txns);
            oracle[lane].push(v++);
        }
    }
    for (uint32_t lane = 1; lane < kWarpSize; ++lane) {
        uint64_t got;
        while (model.pop(lane, got, txns))
            ASSERT_EQ(got, oracle[lane].pop());
        model.finishLane(lane);
        // Lane 0 digs deeper after each finisher.
        for (int i = 0; i < 12; ++i) {
            model.push(0, v, txns);
            oracle[0].push(v++);
        }
    }
    EXPECT_GT(model.borrowedCount(0), 0u);
    EXPECT_LE(model.borrowedCount(0), config.max_borrowed);
    uint64_t got;
    while (model.pop(0, got, txns))
        ASSERT_EQ(got, oracle[0].pop());
    EXPECT_TRUE(oracle[0].empty());
}

// ---------------------------------------------------------------------
// Transaction protocol (§II-C baseline, §IV/§VI SMS)
// ---------------------------------------------------------------------

TEST(StackTxns, BaselineSpillsToGlobalOnOverflow)
{
    WarpStackModel model(StackConfig::baseline(8), kSharedBase,
                         kLocalBase);
    StackTxnList txns;
    for (uint64_t v = 1; v <= 8; ++v)
        model.push(0, v, txns);
    EXPECT_TRUE(txns.empty()) << "no spill until the RB overflows";

    model.push(0, 9, txns);
    ASSERT_EQ(txns.size(), 1u);
    EXPECT_EQ(txns[0].kind, StackTxnKind::GlobalStore);
    EXPECT_EQ(model.globalDepth(0), 1u);
}

TEST(StackTxns, BaselinePopReloadsMostRecentSpill)
{
    WarpStackModel model(StackConfig::baseline(8), kSharedBase,
                         kLocalBase);
    StackTxnList txns;
    for (uint64_t v = 1; v <= 10; ++v)
        model.push(0, v, txns);
    txns.clear();
    uint64_t got;
    ASSERT_TRUE(model.pop(0, got, txns));
    EXPECT_EQ(got, 10u);
    ASSERT_EQ(countKind(txns, StackTxnKind::GlobalLoad), 1u);
    EXPECT_EQ(model.globalDepth(0), 1u);
}

TEST(StackTxns, ShAbsorbsRbOverflow)
{
    WarpStackModel model(StackConfig::withSh(8, 8), kSharedBase,
                         kLocalBase);
    StackTxnList txns;
    for (uint64_t v = 1; v <= 9; ++v)
        model.push(0, v, txns);
    // One spill, into shared memory, not global.
    EXPECT_EQ(countKind(txns, StackTxnKind::SharedStore), 1u);
    EXPECT_EQ(countKind(txns, StackTxnKind::GlobalStore), 0u);
    EXPECT_EQ(model.shDepth(0), 1u);
    EXPECT_EQ(model.globalDepth(0), 0u);
}

TEST(StackTxns, ShOverflowSingleMoveSequence)
{
    // §VI-A push with both stacks full: shared load + global store +
    // shared store.
    WarpStackModel model(StackConfig::withSh(8, 8), kSharedBase,
                         kLocalBase);
    StackTxnList txns;
    for (uint64_t v = 1; v <= 16; ++v)
        model.push(0, v, txns);
    EXPECT_EQ(model.shDepth(0), 8u);
    txns.clear();
    model.push(0, 17, txns);
    ASSERT_EQ(txns.size(), 3u);
    EXPECT_EQ(txns[0].kind, StackTxnKind::SharedLoad);
    EXPECT_EQ(txns[1].kind, StackTxnKind::GlobalStore);
    EXPECT_EQ(txns[2].kind, StackTxnKind::SharedStore);
    EXPECT_EQ(model.globalDepth(0), 1u);
}

TEST(StackTxns, PopRefillsShThenGlobal)
{
    // §VI-A pop with spills in both levels: SH top -> RB, then global
    // top -> SH bottom (shared load, then global load + shared store).
    WarpStackModel model(StackConfig::withSh(8, 8), kSharedBase,
                         kLocalBase);
    StackTxnList txns;
    for (uint64_t v = 1; v <= 17; ++v)
        model.push(0, v, txns);
    txns.clear();
    uint64_t got;
    ASSERT_TRUE(model.pop(0, got, txns));
    EXPECT_EQ(got, 17u);
    EXPECT_EQ(countKind(txns, StackTxnKind::SharedLoad), 1u);
    EXPECT_EQ(countKind(txns, StackTxnKind::GlobalLoad), 1u);
    EXPECT_EQ(countKind(txns, StackTxnKind::SharedStore), 1u);
    EXPECT_EQ(model.globalDepth(0), 0u);
    EXPECT_EQ(model.shDepth(0), 8u);
}

TEST(StackTxns, RbAlwaysHoldsTopWhenNonEmpty)
{
    // The eager refill keeps the logical top on-chip: peek never needs
    // memory.
    WarpStackModel model(StackConfig::withSh(4, 4), kSharedBase,
                         kLocalBase);
    StackTxnList txns;
    Pcg32 rng(5);
    ReferenceStack oracle;
    uint64_t v = 1;
    for (int i = 0; i < 3000; ++i) {
        if (oracle.empty() || rng.nextFloat() < 0.53f) {
            model.push(3, v, txns);
            oracle.push(v++);
        } else {
            EXPECT_EQ(model.peek(3), oracle.pop());
            uint64_t got;
            model.pop(3, got, txns);
        }
    }
}

TEST(StackTxns, SharedAddressesStayInOwnRegionWithoutRealloc)
{
    StackConfig config = StackConfig::withSh(8, 8);
    WarpStackModel model(config, kSharedBase, kLocalBase);
    StackTxnList txns;
    for (uint64_t v = 1; v <= 40; ++v)
        model.push(5, v, txns);
    uint64_t got;
    for (int i = 0; i < 40; ++i)
        model.pop(5, got, txns);
    Addr region_lo = 5 * 8 * kStackEntryBytes;
    Addr region_hi = region_lo + 8 * kStackEntryBytes;
    for (const StackTxn &t : txns) {
        if (t.kind == StackTxnKind::SharedLoad ||
            t.kind == StackTxnKind::SharedStore) {
            EXPECT_GE(t.addr, region_lo);
            EXPECT_LT(t.addr, region_hi);
        }
    }
}

TEST(StackTxns, GlobalAddressesInterleaveByLane)
{
    WarpStackModel model(StackConfig::baseline(2), kSharedBase,
                         kLocalBase);
    StackTxnList txns0, txns7;
    for (uint64_t v = 1; v <= 3; ++v)
        model.push(0, v, txns0);
    for (uint64_t v = 1; v <= 3; ++v)
        model.push(7, v, txns7);
    ASSERT_EQ(txns0.size(), 1u);
    ASSERT_EQ(txns7.size(), 1u);
    // Same spill slot, lanes 0 and 7: addresses differ by 7 entries.
    EXPECT_EQ(txns7[0].addr - txns0[0].addr, 7u * kStackEntryBytes);
    EXPECT_GE(txns0[0].addr, kLocalBase);
}

TEST(StackTxns, SkewChangesFirstSpillSlot)
{
    StackConfig plain = StackConfig::withSh(8, 8, false, false);
    StackConfig skewed = StackConfig::withSh(8, 8, true, false);
    WarpStackModel a(plain, kSharedBase, kLocalBase);
    WarpStackModel b(skewed, kSharedBase, kLocalBase);
    StackTxnList ta, tb;
    for (uint64_t v = 1; v <= 9; ++v) {
        a.push(6, v, ta);
        b.push(6, v, tb);
    }
    ASSERT_EQ(ta.size(), 1u);
    ASSERT_EQ(tb.size(), 1u);
    // Lane 6, SH_8: skew base entry = (6/2) % 8 = 3.
    EXPECT_EQ(a.sharedSlotAddr(6, 0), ta[0].addr);
    EXPECT_EQ(b.sharedSlotAddr(6, 3), tb[0].addr);
}

// ---------------------------------------------------------------------
// Dynamic intra-warp reallocation (§V-B, §VI-B)
// ---------------------------------------------------------------------

TEST(Realloc, BorrowOnlyFromFinishedLanes)
{
    StackConfig config = StackConfig::sms();
    WarpStackModel model(config, kSharedBase, kLocalBase);
    StackTxnList txns;
    // No lane has finished: overflowing lane 0 must fall back to a
    // single move (no borrow possible).
    for (uint64_t v = 1; v <= 17; ++v)
        model.push(0, v, txns);
    EXPECT_EQ(model.borrowedCount(0), 0u);
    EXPECT_EQ(model.stats().borrows, 0u);
    EXPECT_EQ(model.globalDepth(0), 1u);
}

TEST(Realloc, BorrowsUpToLimitThenFlushes)
{
    StackConfig config = StackConfig::sms();
    WarpStackModel model(config, kSharedBase, kLocalBase);
    for (uint32_t lane = 1; lane < 32; ++lane)
        model.finishLane(lane);

    StackTxnList txns;
    // Fill RB (8) + own SH (8) + 4 borrowed SH stacks (32): 48 entries
    // on-chip — the paper's §VI-B capacity figure.
    for (uint64_t v = 1; v <= 48; ++v)
        model.push(0, v, txns);
    EXPECT_EQ(model.borrowedCount(0), 4u);
    EXPECT_EQ(model.globalDepth(0), 0u);
    EXPECT_EQ(model.stats().flushes, 0u);

    // The 49th entry cannot borrow (limit 4): the bottom stack is
    // flushed to global memory (8 entries).
    model.push(0, 49, txns);
    EXPECT_EQ(model.stats().flushes, 1u);
    EXPECT_EQ(model.globalDepth(0), 8u);

    // Everything still pops in order.
    for (uint64_t v = 49; v >= 1; --v) {
        uint64_t got;
        ASSERT_TRUE(model.pop(0, got, txns));
        ASSERT_EQ(got, v);
    }
}

TEST(Realloc, BorrowedStackReleasedWhenDrained)
{
    StackConfig config = StackConfig::sms();
    WarpStackModel model(config, kSharedBase, kLocalBase);
    for (uint32_t lane = 1; lane < 32; ++lane)
        model.finishLane(lane);

    StackTxnList txns;
    for (uint64_t v = 1; v <= 24; ++v) // RB 8 + own 8 + 1 borrowed 8
        model.push(0, v, txns);
    EXPECT_EQ(model.borrowedCount(0), 1u);

    uint64_t got;
    for (int i = 0; i < 9; ++i)
        model.pop(0, got, txns);
    // The borrowed segment drained (8 refills + 1) and was released.
    EXPECT_EQ(model.borrowedCount(0), 0u);
}

TEST(Realloc, ReleasedStackBorrowableByOthers)
{
    StackConfig config = StackConfig::sms();
    WarpStackModel model(config, kSharedBase, kLocalBase);
    for (uint32_t lane = 2; lane < 32; ++lane)
        model.finishLane(lane);

    StackTxnList txns;
    for (uint64_t v = 1; v <= 24; ++v)
        model.push(0, v, txns);
    EXPECT_EQ(model.borrowedCount(0), 1u);
    uint64_t got;
    while (model.pop(0, got, txns))
        ;
    model.finishLane(0);

    // Lane 1 can now borrow from the released pool (including lane 0's
    // own stack).
    for (uint64_t v = 1; v <= 48; ++v)
        model.push(1, v, txns);
    EXPECT_EQ(model.borrowedCount(1), 4u);
    EXPECT_EQ(model.globalDepth(1), 0u);
}

TEST(Realloc, FlushBudgetBoundsConsecutiveFlushes)
{
    StackConfig config = StackConfig::sms();
    WarpStackModel model(config, kSharedBase, kLocalBase);
    // Exactly one finished lane: chain is own + 1 borrowed = 16 SH
    // entries; §VI-B: 3 flushes per stack simulate further capacity.
    model.finishLane(1);
    for (uint32_t lane = 2; lane < 32; ++lane) {
        StackTxnList tmp;
        model.push(lane, 1, tmp); // keep the others busy (not idle)
    }

    StackTxnList txns;
    uint64_t pushed = 0;
    for (uint64_t v = 1; v <= 200; ++v) {
        model.push(0, v, txns);
        ++pushed;
    }
    // Flush counters cap at max_flushes per segment between drains;
    // pushing past the paper's 72-entry envelope requires forced
    // flushes, which the stats expose separately.
    EXPECT_GT(model.stats().flushes, 0u);
    EXPECT_GT(model.stats().forced_flushes, 0u);
    for (uint64_t v = pushed; v >= 1; --v) {
        uint64_t got;
        ASSERT_TRUE(model.pop(0, got, txns));
        ASSERT_EQ(got, v);
    }
}

TEST(Realloc, AbandonReleasesEverything)
{
    StackConfig config = StackConfig::sms();
    WarpStackModel model(config, kSharedBase, kLocalBase);
    for (uint32_t lane = 1; lane < 32; ++lane)
        model.finishLane(lane);
    StackTxnList txns;
    for (uint64_t v = 1; v <= 40; ++v)
        model.push(0, v, txns);
    EXPECT_GT(model.borrowedCount(0), 0u);
    model.abandonLane(0);
    EXPECT_TRUE(model.laneEmpty(0));
    EXPECT_TRUE(model.laneFinished(0));
    EXPECT_EQ(model.borrowedCount(0), 0u);

    // All 32 segments are idle again: a hypothetical borrower could
    // take four of them. (Verified via a fresh lane's behaviour —
    // every lane is finished now, so nothing more to check beyond
    // stats coherence.)
    EXPECT_EQ(model.shDepth(0), 0u);
}

TEST(Stats, BaselineSpillsAndRefillsSplitToGlobal)
{
    // Without an SH stack every RB spill/refill crosses to global
    // memory, and the per-level split must say exactly that.
    WarpStackModel model(StackConfig::baseline(8), kSharedBase,
                         kLocalBase);
    StackTxnList txns;
    for (uint64_t v = 1; v <= 12; ++v)
        model.push(0, v, txns);
    uint64_t got;
    while (model.pop(0, got, txns))
        ;
    const WarpStackStats &s = model.stats();
    EXPECT_GT(s.rb_spills, 0u);
    EXPECT_EQ(s.rb_spills_to_global, s.rb_spills);
    EXPECT_EQ(s.rb_spills_to_sh, 0u);
    EXPECT_EQ(s.rb_refills_from_global, s.rb_refills);
    EXPECT_EQ(s.rb_refills_from_sh, 0u);
}

TEST(Stats, ShAbsorbsSpillsAndRefillsInSplitCounters)
{
    // SH_8 absorbs a 12-deep stack entirely: the split counters must
    // attribute every spill/refill to the RB<->SH edge.
    WarpStackModel model(StackConfig::withSh(8, 8), kSharedBase,
                         kLocalBase);
    StackTxnList txns;
    for (uint64_t v = 1; v <= 12; ++v)
        model.push(0, v, txns);
    uint64_t got;
    while (model.pop(0, got, txns))
        ;
    const WarpStackStats &s = model.stats();
    EXPECT_GT(s.rb_spills, 0u);
    EXPECT_EQ(s.rb_spills_to_sh, s.rb_spills);
    EXPECT_EQ(s.rb_spills_to_global, 0u);
    EXPECT_EQ(s.rb_refills_from_sh, s.rb_refills);
    EXPECT_EQ(s.rb_refills_from_global, 0u);
}

TEST(Stats, SpillSplitSumsUnderRandomChurn)
{
    WarpStackModel model(StackConfig::sms(2, 4), kSharedBase,
                         kLocalBase);
    for (uint32_t lane = 16; lane < 32; ++lane)
        model.finishLane(lane);
    Pcg32 rng(31337);
    std::array<ReferenceStack, 16> oracle;
    uint64_t v = 1;
    StackTxnList txns;
    for (int i = 0; i < 20000; ++i) {
        uint32_t lane = rng.nextBounded(16);
        if (oracle[lane].empty() || rng.nextFloat() < 0.56f) {
            model.push(lane, v, txns);
            oracle[lane].push(v++);
        } else {
            uint64_t got;
            model.pop(lane, got, txns);
            ASSERT_EQ(got, oracle[lane].pop());
        }
    }
    const WarpStackStats &s = model.stats();
    EXPECT_EQ(s.rb_spills_to_sh + s.rb_spills_to_global, s.rb_spills);
    EXPECT_EQ(s.rb_refills_from_sh + s.rb_refills_from_global,
              s.rb_refills);
}

TEST(Realloc, BorrowChainHistogramRecordsChainLengths)
{
    StackConfig config = StackConfig::sms();
    WarpStackModel model(config, kSharedBase, kLocalBase);
    for (uint32_t lane = 1; lane < 32; ++lane)
        model.finishLane(lane);
    StackTxnList txns;
    // 48 entries: RB 8 + own SH 8 + four borrowed segments of 8.
    for (uint64_t v = 1; v <= 48; ++v)
        model.push(0, v, txns);
    const WarpStackStats &s = model.stats();
    EXPECT_EQ(s.borrows, 4u);
    uint64_t total = 0;
    for (uint32_t i = 0; i < kBorrowChainBuckets; ++i)
        total += s.borrow_chain_hist[i];
    EXPECT_EQ(total, s.borrows);
    // Each borrow is recorded at the chain length it produced:
    // own+1 .. own+4 segments.
    EXPECT_EQ(s.borrow_chain_hist[2], 1u);
    EXPECT_EQ(s.borrow_chain_hist[3], 1u);
    EXPECT_EQ(s.borrow_chain_hist[4], 1u);
    EXPECT_EQ(s.borrow_chain_hist[5], 1u);
}

TEST(Realloc, StatsStayCoherent)
{
    StackConfig config = StackConfig::sms();
    WarpStackModel model(config, kSharedBase, kLocalBase);
    for (uint32_t lane = 8; lane < 32; ++lane)
        model.finishLane(lane);
    Pcg32 rng(9001);
    std::array<ReferenceStack, 8> oracle;
    uint64_t v = 1;
    StackTxnList txns;
    for (int i = 0; i < 20000; ++i) {
        uint32_t lane = rng.nextBounded(8);
        if (oracle[lane].empty() || rng.nextFloat() < 0.56f) {
            model.push(lane, v, txns);
            oracle[lane].push(v++);
        } else {
            uint64_t got;
            model.pop(lane, got, txns);
            ASSERT_EQ(got, oracle[lane].pop());
        }
    }
    const WarpStackStats &s = model.stats();
    EXPECT_EQ(s.pushes, v - 1);
    EXPECT_EQ(s.global_loads + model.globalDepth(0) +
                  model.globalDepth(1) + model.globalDepth(2) +
                  model.globalDepth(3) + model.globalDepth(4) +
                  model.globalDepth(5) + model.globalDepth(6) +
                  model.globalDepth(7),
              s.global_stores);
    EXPECT_GE(s.rb_spills, s.rb_refills);
    EXPECT_LE(s.max_logical_depth, v);
}

// ---------------------------------------------------------------------
// Depth observation
// ---------------------------------------------------------------------

class RecordingObserver : public DepthObserver
{
  public:
    void
    onStackAccess(uint32_t lane, uint32_t depth) override
    {
        events.emplace_back(lane, depth);
    }
    std::vector<std::pair<uint32_t, uint32_t>> events;
};

TEST(DepthObserver, SeesEveryPushAndPop)
{
    WarpStackModel model(StackConfig::baseline(8), kSharedBase,
                         kLocalBase);
    RecordingObserver obs;
    model.setDepthObserver(&obs);
    StackTxnList txns;
    model.push(2, 10, txns);
    model.push(2, 11, txns);
    uint64_t got;
    model.pop(2, got, txns);
    ASSERT_EQ(obs.events.size(), 3u);
    // Push records depth after the push; pop records the occupied
    // depth it touches.
    EXPECT_EQ(obs.events[0], std::make_pair(2u, 1u));
    EXPECT_EQ(obs.events[1], std::make_pair(2u, 2u));
    EXPECT_EQ(obs.events[2], std::make_pair(2u, 2u));
}

TEST(Errors, PopFromEmptyReturnsFalse)
{
    WarpStackModel model(StackConfig::sms(), kSharedBase, kLocalBase);
    StackTxnList txns;
    uint64_t got;
    EXPECT_FALSE(model.pop(0, got, txns));
    EXPECT_TRUE(txns.empty());
}

TEST(Errors, FinishRequiresEmptyStack)
{
    WarpStackModel model(StackConfig::baseline(8), kSharedBase,
                         kLocalBase);
    StackTxnList txns;
    model.push(0, 1, txns);
    EXPECT_DEATH(model.finishLane(0), "finishLane with non-empty stack");
}

} // namespace
} // namespace sms
