/**
 * @file
 * Tests for sharded sweep execution: the shard-spec parser, the
 * exactly-once round-robin partition for ragged shard counts, and the
 * merge that must reassemble shard-worker records into a record
 * bit-identical to a single-process run (zero-epsilon compare,
 * including the re-checked conservation invariant on the merged
 * cycle-accounting aggregate).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/serve/sweep_shard.hpp"
#include "src/stats/report.hpp"

namespace sms {
namespace {

/** RAII environment-variable override. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        had_old_ = old != nullptr;
        if (had_old_)
            old_ = old;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_old_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

  private:
    const char *name_;
    bool had_old_;
    std::string old_;
};

/** Restores the process to "not sharded" when a test scope ends. */
class ScopedShardReset
{
  public:
    ~ScopedShardReset() { setSweepShardSpec(SweepShardSpec{}); }
};

TEST(ParseSweepShardSpec, Valid)
{
    SweepShardSpec spec;
    std::string error;
    ASSERT_TRUE(parseSweepShardSpec("1/1", spec, error)) << error;
    EXPECT_EQ(spec.index, 1u);
    EXPECT_EQ(spec.count, 1u);
    ASSERT_TRUE(parseSweepShardSpec("3/7", spec, error)) << error;
    EXPECT_EQ(spec.index, 3u);
    EXPECT_EQ(spec.count, 7u);
    ASSERT_TRUE(parseSweepShardSpec("10/10", spec, error)) << error;
    EXPECT_EQ(spec.index, 10u);
    EXPECT_EQ(spec.count, 10u);
}

TEST(ParseSweepShardSpec, Invalid)
{
    SweepShardSpec spec;
    std::string error;
    for (const char *bad :
         {"", "1", "/", "1/", "/2", "0/2", "3/2", "0/0", "a/b", "1/2x",
          "x1/2", "1 / 2", "-1/2", "1/-2", "1//2", "1/2/3"}) {
        error.clear();
        EXPECT_FALSE(parseSweepShardSpec(bad, spec, error))
            << "accepted \"" << bad << "\"";
        EXPECT_FALSE(error.empty()) << bad;
    }
}

TEST(SweepShardSpec, InactiveOwnsEverything)
{
    SweepShardSpec spec; // count = 0
    EXPECT_FALSE(spec.active());
    for (uint64_t g = 0; g < 100; ++g)
        EXPECT_TRUE(spec.owns(g));
}

TEST(SweepShardSpec, RaggedPartitionIsExactlyOnce)
{
    // Every cell of the flattened grid must be owned by exactly one
    // shard for any N — including N that does not divide the cell
    // count and N larger than the grid.
    for (uint64_t cells : {1u, 5u, 10u, 16u}) {
        for (uint32_t n : {1u, 2u, 3u, 4u, 7u, 10u, 33u}) {
            for (uint64_t g = 0; g < cells; ++g) {
                unsigned owners = 0;
                for (uint32_t i = 1; i <= n; ++i) {
                    SweepShardSpec spec{i, n};
                    ASSERT_TRUE(spec.active());
                    if (spec.owns(g))
                        ++owners;
                }
                EXPECT_EQ(owners, 1u)
                    << "cell " << g << " of " << cells << " with " << n
                    << " shards";
            }
        }
    }
}

TEST(SweepShardSpec, BalancedWithinOne)
{
    // Round-robin keeps shard loads within one cell of each other.
    const uint64_t cells = 17;
    const uint32_t n = 5;
    std::vector<uint64_t> load(n, 0);
    for (uint64_t g = 0; g < cells; ++g)
        for (uint32_t i = 1; i <= n; ++i)
            if ((SweepShardSpec{i, n}).owns(g))
                ++load[i - 1];
    uint64_t lo = load[0], hi = load[0];
    for (uint64_t l : load) {
        lo = std::min(lo, l);
        hi = std::max(hi, l);
    }
    EXPECT_LE(hi - lo, 1u);
}

/**
 * Run the 2-scene x 3-config grid under @p spec and report it through
 * a JsonReporter into a temp file; returns the written record.
 */
JsonValue
runGridAs(const SweepShardSpec &spec, const std::string &path)
{
    using benchutil::JsonReporter;
    using benchutil::runSweep;
    std::remove(path.c_str());
    setSweepShardSpec(spec);

    std::string json_arg = "--json=" + path;
    std::vector<char> arg1(json_arg.begin(), json_arg.end());
    arg1.push_back('\0');
    char arg0[] = "bench";
    char *argv[] = {arg0, arg1.data(), nullptr};
    int argc = 2;
    JsonReporter reporter("figShardTest", argc, argv);
    EXPECT_TRUE(reporter.enabled());

    std::vector<std::shared_ptr<Workload>> workloads = {
        prepareWorkload(SceneId::REF, ScaleProfile::Tiny),
        prepareWorkload(SceneId::WKND, ScaleProfile::Tiny),
    };
    std::vector<StackConfig> configs = {StackConfig::baseline(8),
                                        StackConfig::sms(),
                                        StackConfig::withSh(8, 8)};
    reporter.addSweep(runSweep(workloads, configs, {}, 2));
    reporter.finish();

    std::vector<JsonValue> records;
    std::string error;
    EXPECT_TRUE(readJsonLines(path, records, error)) << error;
    EXPECT_EQ(records.size(), 1u);
    std::remove(path.c_str());
    return records.empty() ? JsonValue() : std::move(records.back());
}

TEST(MergeShardRecords, TwoShardMergeIsBitIdenticalToSingleProcess)
{
    ScopedEnv no_wkld("SMS_WORKLOAD_CACHE", nullptr);
    ScopedEnv no_res("SMS_RESULT_CACHE", nullptr);
    ScopedEnv no_json("SMS_JSON", nullptr);
    ScopedShardReset reset;
    std::string dir = testing::TempDir();

    JsonValue whole =
        runGridAs(SweepShardSpec{}, dir + "sms_shard_whole.jsonl");
    JsonValue shard1 = runGridAs(SweepShardSpec{1, 2},
                                 dir + "sms_shard_1of2.jsonl");
    JsonValue shard2 = runGridAs(SweepShardSpec{2, 2},
                                 dir + "sms_shard_2of2.jsonl");

    // Worker records carry the shard block and leave the cross-cell
    // derived values null/absent.
    ASSERT_NE(shard1.find("shard"), nullptr);
    ASSERT_NE(shard2.find("shard"), nullptr);
    EXPECT_EQ(shard1.find("summary"), nullptr);
    EXPECT_EQ(whole.find("shard"), nullptr);

    JsonValue merged;
    std::string error;
    ASSERT_TRUE(mergeShardRecords({shard1, shard2}, merged, error))
        << error;
    EXPECT_EQ(merged.find("shard"), nullptr);
    ASSERT_NE(merged.find("merge"), nullptr);
    EXPECT_EQ(merged.find("merge")->numberOr("shards", 0.0), 2.0);

    // Zero-epsilon compare against the single-process record: every
    // cell counter, every recomputed normalized column, both summary
    // geomeans, and the per-cell cycle-accounting leaves must be
    // bit-identical.
    CompareOptions options;
    options.ipc_eps = 0.0;
    options.traffic_eps = 0.0;
    options.check_accounting = true;
    options.accounting_eps = 0.0;
    std::vector<CompareIssue> issues;
    ASSERT_EQ(compareBenchRecords(whole, merged, options, issues, error),
              CompareStatus::Ok)
        << error;
    EXPECT_TRUE(issues.empty())
        << issues.size() << " issues, first: " << issues[0].where << " "
        << issues[0].metric;

    // The summary block itself (geomeans recomputed by the merge) is
    // textually identical to the single-process serialization.
    ASSERT_NE(merged.find("summary"), nullptr);
    EXPECT_EQ(merged.find("summary")->dump(),
              whole.find("summary")->dump());

    // The merged aggregate re-checked conservation and covers the full
    // grid.
    const JsonValue *aggregate = merged.find("aggregate");
    ASSERT_NE(aggregate, nullptr);
    EXPECT_EQ(aggregate->numberOr("cells", 0.0), 6.0);
    ASSERT_NE(aggregate->find("depth_hist"), nullptr);
    const JsonValue *accounting = aggregate->find("cycle_accounting");
    ASSERT_NE(accounting, nullptr);
    EXPECT_GT(accounting->numberOr("warp_active_cycles", 0.0), 0.0);
}

TEST(MergeShardRecords, RejectsStructurallyBrokenShardSets)
{
    ScopedEnv no_wkld("SMS_WORKLOAD_CACHE", nullptr);
    ScopedEnv no_res("SMS_RESULT_CACHE", nullptr);
    ScopedEnv no_json("SMS_JSON", nullptr);
    ScopedShardReset reset;
    std::string dir = testing::TempDir();

    JsonValue whole =
        runGridAs(SweepShardSpec{}, dir + "sms_shard_whole2.jsonl");
    JsonValue shard1 = runGridAs(SweepShardSpec{1, 2},
                                 dir + "sms_shard_e1.jsonl");
    JsonValue shard2 = runGridAs(SweepShardSpec{2, 2},
                                 dir + "sms_shard_e2.jsonl");

    JsonValue merged;
    std::string error;

    // Missing shard: only 1 of 2 present.
    error.clear();
    EXPECT_FALSE(mergeShardRecords({shard1}, merged, error));
    EXPECT_FALSE(error.empty());

    // Duplicate shard index.
    error.clear();
    EXPECT_FALSE(mergeShardRecords({shard1, shard1}, merged, error));
    EXPECT_FALSE(error.empty());

    // An unsharded record cannot participate in a merge.
    error.clear();
    EXPECT_FALSE(mergeShardRecords({whole, shard2}, merged, error));
    EXPECT_FALSE(error.empty());

    // Mixed figures.
    JsonValue renamed = shard2;
    renamed["figure"] = JsonValue("figOther");
    error.clear();
    EXPECT_FALSE(mergeShardRecords({shard1, renamed}, merged, error));
    EXPECT_FALSE(error.empty());

    // Incomplete grid: a half-grid worker relabeled as a full run of
    // one shard is missing every cell the other worker owned.
    JsonValue lone = shard1;
    lone["shard"]["count"] = JsonValue(1.0);
    error.clear();
    EXPECT_FALSE(mergeShardRecords({lone}, merged, error));
    EXPECT_FALSE(error.empty());

    // Empty input.
    error.clear();
    EXPECT_FALSE(mergeShardRecords({}, merged, error));
    EXPECT_FALSE(error.empty());
}

TEST(CompareBenchRecords, ShardWorkerVsFullRunIsSchemaMismatch)
{
    ScopedEnv no_wkld("SMS_WORKLOAD_CACHE", nullptr);
    ScopedEnv no_res("SMS_RESULT_CACHE", nullptr);
    ScopedEnv no_json("SMS_JSON", nullptr);
    ScopedShardReset reset;
    std::string dir = testing::TempDir();

    JsonValue whole =
        runGridAs(SweepShardSpec{}, dir + "sms_shard_cmp_w.jsonl");
    JsonValue shard1 = runGridAs(SweepShardSpec{1, 2},
                                 dir + "sms_shard_cmp_1.jsonl");

    CompareOptions options;
    std::vector<CompareIssue> issues;
    std::string error;
    EXPECT_EQ(compareBenchRecords(whole, shard1, options, issues, error),
              CompareStatus::SchemaMismatch);
    EXPECT_EQ(compareBenchRecords(shard1, whole, options, issues, error),
              CompareStatus::SchemaMismatch);
    // Shard-vs-shard of the same half-grid stays comparable.
    EXPECT_EQ(compareBenchRecords(shard1, shard1, options, issues,
                                  error),
              CompareStatus::Ok)
        << error;
}

} // namespace
} // namespace sms
