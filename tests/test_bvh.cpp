/**
 * @file
 * Structural and behavioural tests of the BVH substrate: binary SAH
 * builder invariants, wide collapse, ChildRef encoding, and traversal
 * correctness against the brute-force oracle.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/bvh/binary_bvh.hpp"
#include "src/bvh/traverse.hpp"
#include "src/bvh/wide_bvh.hpp"
#include "src/scene/registry.hpp"
#include "src/util/rng.hpp"

namespace sms {
namespace {

Scene
randomTriangleSoup(uint32_t count, uint64_t seed)
{
    Scene scene;
    uint16_t mat = scene.addMaterial({});
    Pcg32 rng(seed);
    for (uint32_t i = 0; i < count; ++i) {
        Vec3 c{rng.nextRange(-10, 10), rng.nextRange(-10, 10),
               rng.nextRange(-10, 10)};
        auto jitter = [&]() {
            return Vec3{rng.nextRange(-0.5f, 0.5f),
                        rng.nextRange(-0.5f, 0.5f),
                        rng.nextRange(-0.5f, 0.5f)};
        };
        scene.addTriangle(
            Triangle(c + jitter(), c + jitter(), c + jitter()), mat);
    }
    // A few spheres exercise the unified primitive id space.
    for (uint32_t i = 0; i < count / 10 + 1; ++i) {
        scene.addSphere(Sphere({rng.nextRange(-10, 10),
                                rng.nextRange(-10, 10),
                                rng.nextRange(-10, 10)},
                               rng.nextRange(0.2f, 1.0f)),
                        mat);
    }
    return scene;
}

Ray
randomRay(Pcg32 &rng)
{
    Vec3 dir;
    do {
        dir = Vec3{rng.nextRange(-1, 1), rng.nextRange(-1, 1),
                   rng.nextRange(-1, 1)};
    } while (lengthSquared(dir) < 1e-4f);
    return Ray({rng.nextRange(-15, 15), rng.nextRange(-15, 15),
                rng.nextRange(-15, 15)},
               normalize(dir), 1e-4f);
}

// ---------------------------------------------------------------------
// ChildRef encoding
// ---------------------------------------------------------------------

TEST(ChildRef, DefaultInvalid)
{
    ChildRef ref;
    EXPECT_FALSE(ref.valid());
    EXPECT_FALSE(ref.isInternal());
    EXPECT_FALSE(ref.isLeaf());
}

TEST(ChildRef, InternalRoundTrip)
{
    ChildRef ref = ChildRef::makeInternal(123456);
    EXPECT_TRUE(ref.valid());
    EXPECT_TRUE(ref.isInternal());
    EXPECT_FALSE(ref.isLeaf());
    EXPECT_EQ(ref.nodeIndex(), 123456u);
    EXPECT_EQ(ChildRef::fromStackValue(ref.stackValue()), ref);
}

TEST(ChildRef, LeafRoundTrip)
{
    ChildRef ref = ChildRef::makeLeaf(99999, 37);
    EXPECT_TRUE(ref.isLeaf());
    EXPECT_EQ(ref.primOffset(), 99999u);
    EXPECT_EQ(ref.primCount(), 37u);
    EXPECT_EQ(ChildRef::fromStackValue(ref.stackValue()), ref);
}

// ---------------------------------------------------------------------
// Binary builder invariants
// ---------------------------------------------------------------------

class BinaryBvhTest : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(BinaryBvhTest, EveryPrimitiveReferencedExactlyOnce)
{
    Scene scene = randomTriangleSoup(GetParam(), GetParam() * 31 + 7);
    BinaryBvh bvh = BinaryBvh::build(scene);
    ASSERT_FALSE(bvh.empty());

    std::multiset<uint32_t> referenced(bvh.primIndices().begin(),
                                       bvh.primIndices().end());
    EXPECT_EQ(referenced.size(), scene.primitiveCount());
    for (uint32_t p = 0; p < scene.primitiveCount(); ++p)
        EXPECT_EQ(referenced.count(p), 1u) << "primitive " << p;
}

TEST_P(BinaryBvhTest, ChildBoundsNestInParents)
{
    Scene scene = randomTriangleSoup(GetParam(), GetParam() * 17 + 3);
    BinaryBvh bvh = BinaryBvh::build(scene);
    const auto &nodes = bvh.nodes();
    for (const BinaryNode &node : nodes) {
        if (node.isLeaf()) {
            for (uint16_t i = 0; i < node.prim_count; ++i) {
                uint32_t prim =
                    bvh.primIndices()[node.prim_offset + i];
                EXPECT_TRUE(
                    node.bounds.contains(scene.primitiveBounds(prim)));
            }
        } else {
            EXPECT_TRUE(node.bounds.contains(nodes[node.left].bounds));
            EXPECT_TRUE(node.bounds.contains(nodes[node.right].bounds));
        }
    }
}

TEST_P(BinaryBvhTest, LeafSizesRespectLimit)
{
    BvhBuildParams params;
    Scene scene = randomTriangleSoup(GetParam(), GetParam() + 1);
    BinaryBvh bvh = BinaryBvh::build(scene, params);
    for (const BinaryNode &node : bvh.nodes()) {
        if (node.isLeaf()) {
            // SAH early termination may keep up to 8 primitives.
            EXPECT_LE(node.prim_count, 8);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BinaryBvhTest,
                         ::testing::Values(1u, 2u, 7u, 33u, 200u, 1500u));

TEST(BinaryBvh, EmptySceneGivesEmptyBvh)
{
    Scene scene;
    BinaryBvh bvh = BinaryBvh::build(scene);
    EXPECT_TRUE(bvh.empty());
}

TEST(BinaryBvh, CoincidentCentroidsStillSplit)
{
    // All triangles identical: centroid binning degenerates and the
    // builder must fall back to median splits without infinite
    // recursion.
    Scene scene;
    uint16_t mat = scene.addMaterial({});
    for (int i = 0; i < 64; ++i)
        scene.addTriangle(Triangle({0, 0, 0}, {1, 0, 0}, {0, 1, 0}), mat);
    BinaryBvh bvh = BinaryBvh::build(scene);
    EXPECT_EQ(bvh.primIndices().size(), 64u);
}

TEST(BinaryBvh, SahCostPositiveAndDepthSane)
{
    Scene scene = randomTriangleSoup(500, 99);
    BinaryBvh bvh = BinaryBvh::build(scene);
    EXPECT_GT(bvh.sahCost(), 0.0);
    EXPECT_GE(bvh.depth(), 5u);
    EXPECT_LE(bvh.depth(), 64u);
}

// ---------------------------------------------------------------------
// Wide collapse invariants
// ---------------------------------------------------------------------

class WideWidthTest : public ::testing::TestWithParam<int>
{
};

TEST_P(WideWidthTest, CollapseRespectsWidthAndKeepsPrims)
{
    BvhBuildParams params;
    params.wide_width = GetParam();
    Scene scene = randomTriangleSoup(600, 1234);
    WideBvh wide = WideBvh::build(scene, params);
    ASSERT_FALSE(wide.empty());

    std::multiset<uint32_t> referenced;
    uint64_t leaf_prims = 0;
    for (const WideNode &node : wide.nodes()) {
        EXPECT_GE(node.child_count, 2);
        EXPECT_LE(node.child_count, GetParam());
        for (uint8_t i = 0; i < node.child_count; ++i) {
            ASSERT_TRUE(node.children[i].valid());
            if (node.children[i].isLeaf()) {
                leaf_prims += node.children[i].primCount();
                for (uint32_t p = 0; p < node.children[i].primCount();
                     ++p) {
                    referenced.insert(
                        wide.primIndices()[node.children[i].primOffset() +
                                           p]);
                }
            }
        }
    }
    EXPECT_EQ(leaf_prims, scene.primitiveCount());
    for (uint32_t p = 0; p < scene.primitiveCount(); ++p)
        EXPECT_EQ(referenced.count(p), 1u);
}

TEST_P(WideWidthTest, TraversalMatchesBruteForce)
{
    BvhBuildParams params;
    params.wide_width = GetParam();
    Scene scene = randomTriangleSoup(400, 555);
    WideBvh wide = WideBvh::build(scene, params);

    Pcg32 rng(42);
    for (int i = 0; i < 200; ++i) {
        Ray ray = randomRay(rng);
        HitRecord ours = traverseClosest(scene, wide, ray);
        HitRecord oracle = scene.intersectBruteForce(ray);
        ASSERT_EQ(ours.valid(), oracle.valid()) << "ray " << i;
        if (ours.valid()) {
            EXPECT_NEAR(ours.t, oracle.t, 1e-3f);
            EXPECT_EQ(ours.primitive, oracle.primitive);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, WideWidthTest,
                         ::testing::Values(2, 3, 4, 6));

TEST(WideBvh, ChildBoundsNestAndDepthConsistent)
{
    Scene scene = makeScene(SceneId::BUNNY, ScaleProfile::Tiny);
    WideBvh wide = WideBvh::build(scene);
    const auto &nodes = wide.nodes();
    for (const WideNode &node : nodes) {
        for (uint8_t i = 0; i < node.child_count; ++i) {
            if (node.children[i].isInternal()) {
                const WideNode &child =
                    nodes[node.children[i].nodeIndex()];
                for (uint8_t j = 0; j < child.child_count; ++j) {
                    EXPECT_TRUE(node.child_bounds[i].contains(
                        child.child_bounds[j]));
                }
            }
        }
    }
    WideBvhStats stats = wide.computeStats(scene);
    EXPECT_EQ(stats.max_depth, wide.depthFrom(wide.rootRef()));
    EXPECT_GT(stats.avg_children, 2.0);
    EXPECT_LE(stats.avg_children, 6.0);
    EXPECT_GT(stats.footprint_bytes,
              scene.primitiveDataBytes());
}

TEST(WideBvh, AddressMapIsDisjointAndStrided)
{
    Scene scene = randomTriangleSoup(50, 8);
    WideBvh wide = WideBvh::build(scene);
    EXPECT_EQ(wide.nodeAddress(1) - wide.nodeAddress(0),
              WideBvh::kNodeBytes);
    // Triangle and sphere regions never overlap the node region.
    EXPECT_GE(wide.primitiveAddress(scene, 0), WideBvh::kTriBase);
    uint32_t sphere_id = scene.triangleCount();
    EXPECT_GE(wide.primitiveAddress(scene, sphere_id),
              WideBvh::kSphereBase);
    EXPECT_EQ(wide.primitiveFetchBytes(scene, 0), WideBvh::kTriBytes);
    EXPECT_EQ(wide.primitiveFetchBytes(scene, sphere_id),
              WideBvh::kSphereBytes);
}

// ---------------------------------------------------------------------
// Traversal semantics
// ---------------------------------------------------------------------

TEST(Traverse, ChildrenSortedNearestFirst)
{
    Scene scene = randomTriangleSoup(300, 77);
    WideBvh wide = WideBvh::build(scene);
    Pcg32 rng(3);
    for (int i = 0; i < 50; ++i) {
        Ray ray = randomRay(rng);
        for (const WideNode &node : wide.nodes()) {
            ChildHits hits = intersectNodeChildren(node, ray);
            for (int c = 1; c < hits.count; ++c)
                EXPECT_LE(hits.t[c - 1], hits.t[c]);
            EXPECT_EQ(hits.tests, node.child_count);
        }
        if (i >= 2)
            break; // a few rays over every node is plenty
    }
}

TEST(Traverse, AnyHitConsistentWithClosest)
{
    Scene scene = randomTriangleSoup(300, 31);
    WideBvh wide = WideBvh::build(scene);
    Pcg32 rng(13);
    for (int i = 0; i < 300; ++i) {
        Ray ray = randomRay(rng);
        bool any = traverseAnyHit(scene, wide, ray);
        bool closest = traverseClosest(scene, wide, ray).valid();
        EXPECT_EQ(any, closest);
    }
}

TEST(Traverse, CountersAreConsistent)
{
    Scene scene = randomTriangleSoup(300, 19);
    WideBvh wide = WideBvh::build(scene);
    Pcg32 rng(1);
    TraversalCounters ctr;
    Ray ray = randomRay(rng);
    traverseClosest(scene, wide, ray, &ctr);
    // Every visit tests at least two children; pushes can't exceed
    // box hits; pops never exceed pushes.
    EXPECT_GE(ctr.box_tests, 2 * ctr.nodes_visited);
    EXPECT_LE(ctr.stack_pops, ctr.stack_pushes);
    if (ctr.leaf_visits > 0)
        EXPECT_GT(ctr.prim_tests, 0u);
}

TEST(Traverse, RespectsTmaxSegment)
{
    Scene scene;
    uint16_t mat = scene.addMaterial({});
    scene.addTriangle(Triangle({-1, -1, 5}, {1, -1, 5}, {0, 1, 5}), mat);
    WideBvh wide = WideBvh::build(scene);
    Ray short_ray({0, 0, 0}, {0, 0, 1}, 1e-4f, 3.0f);
    EXPECT_FALSE(traverseClosest(scene, wide, short_ray).valid());
    Ray long_ray({0, 0, 0}, {0, 0, 1}, 1e-4f, 8.0f);
    EXPECT_TRUE(traverseClosest(scene, wide, long_ray).valid());
}

TEST(Traverse, EmptyBvhMisses)
{
    Scene scene;
    WideBvh wide = WideBvh::build(scene);
    Ray ray({0, 0, 0}, {0, 0, 1});
    EXPECT_FALSE(traverseClosest(scene, wide, ray).valid());
    EXPECT_FALSE(traverseAnyHit(scene, wide, ray));
}

TEST(Traverse, SceneSuiteSpotCheckAgainstBruteForce)
{
    // End-to-end traversal correctness on real (Tiny) generated scenes.
    for (SceneId id : {SceneId::SHIP, SceneId::WKND, SceneId::BATH}) {
        Scene scene = makeScene(id, ScaleProfile::Tiny);
        WideBvh wide = WideBvh::build(scene);
        Pcg32 rng(static_cast<uint64_t>(id) + 100);
        Aabb bounds = scene.bounds();
        Vec3 c = bounds.centroid();
        float r = length(bounds.extent());
        for (int i = 0; i < 60; ++i) {
            Vec3 origin = c + Vec3{rng.nextRange(-r, r),
                                   rng.nextRange(-r, r),
                                   rng.nextRange(-r, r)};
            Vec3 target = c + Vec3{rng.nextRange(-r / 4, r / 4),
                                   rng.nextRange(-r / 4, r / 4),
                                   rng.nextRange(-r / 4, r / 4)};
            if (lengthSquared(target - origin) < 1e-6f)
                continue;
            Ray ray(origin, normalize(target - origin), 1e-3f);
            HitRecord ours = traverseClosest(scene, wide, ray);
            HitRecord oracle = scene.intersectBruteForce(ray);
            ASSERT_EQ(ours.valid(), oracle.valid())
                << sceneName(id) << " ray " << i;
            if (ours.valid())
                EXPECT_NEAR(ours.t, oracle.t, 1e-2f);
        }
    }
}

} // namespace
} // namespace sms
