/**
 * @file
 * Tests for StackConfig: naming, presets, the skewed base-entry formula
 * of §VI-B and the hardware-overhead arithmetic of §VI-C.
 */

#include <gtest/gtest.h>

#include "src/core/stack_config.hpp"

namespace sms {
namespace {

TEST(StackConfig, PresetBaseline)
{
    StackConfig c = StackConfig::baseline(8);
    EXPECT_EQ(c.rb_entries, 8u);
    EXPECT_FALSE(c.rb_unbounded);
    EXPECT_FALSE(c.hasShStack());
    EXPECT_EQ(c.name(), "RB_8");
}

TEST(StackConfig, PresetFull)
{
    StackConfig c = StackConfig::rbFull();
    EXPECT_TRUE(c.rb_unbounded);
    EXPECT_EQ(c.name(), "RB_FULL");
}

TEST(StackConfig, PresetSms)
{
    StackConfig c = StackConfig::sms();
    EXPECT_EQ(c.rb_entries, 8u);
    EXPECT_EQ(c.sh_entries, 8u);
    EXPECT_TRUE(c.skewed_bank_access);
    EXPECT_TRUE(c.intra_warp_realloc);
    EXPECT_EQ(c.name(), "RB_8+SH_8+SK+RA");
}

TEST(StackConfig, NameVariants)
{
    EXPECT_EQ(StackConfig::withSh(4, 16).name(), "RB_4+SH_16");
    EXPECT_EQ(StackConfig::withSh(8, 8, true, false).name(),
              "RB_8+SH_8+SK");
    EXPECT_EQ(StackConfig::baseline(32).name(), "RB_32");
}

TEST(StackConfig, SharedMemoryFootprint)
{
    // §IV-B: an 8-entry SH stack per thread needs 8 KB per SM
    // (8 B x 8 entries x 32 threads x 4 warps).
    StackConfig c = StackConfig::withSh(8, 8);
    EXPECT_EQ(c.sharedBytesPerWarp(), 32u * 8u * 8u);
    EXPECT_EQ(c.sharedBytesPerSm(4), 8u * 1024u);
    EXPECT_EQ(StackConfig::withSh(8, 4).sharedBytesPerSm(4), 4096u);
    EXPECT_EQ(StackConfig::withSh(8, 16).sharedBytesPerSm(4),
              16u * 1024u);
    EXPECT_EQ(StackConfig::baseline().sharedBytesPerSm(4), 0u);
}

TEST(StackConfig, OverheadArithmeticMatchesPaper)
{
    // §VI-C with SH_8: Top/Bottom = 3 bits each, Overflow 1 bit.
    StackConfig sh = StackConfig::withSh(8, 8);
    EXPECT_EQ(sh.overheadBitsPerThread(), 2u * 3u + 1u);

    // The paper quotes the Top+Bottom storage alone as 96 bytes
    // (2 fields x 3 bits x 32 threads x 4 warps).
    EXPECT_EQ(2u * 3u * 32u * 4u / 8u, 96u);

    // With reallocation: +Idle(1) +NextTID(5) +Priority(2) +Flush(2)
    // = 17 bits per thread; the paper's 11-bit figure counts only the
    // management fields (Overflow..Flush), 11 x 32 x 4 / 8 = 176 B.
    StackConfig sms = StackConfig::sms();
    EXPECT_EQ(sms.overheadBitsPerThread(), 6u + 1u + 1u + 5u + 2u + 2u);
    uint32_t mgmt_bits = sms.overheadBitsPerThread() - 6u;
    EXPECT_EQ(mgmt_bits, 11u);
    EXPECT_EQ(mgmt_bits * 32u * 4u / 8u, 176u);

    // Grand total per SM: 96 + 176 = 272 bytes (§VI-C).
    EXPECT_EQ(sms.overheadBytesPerSm(4), 272u);

    // No SH stack -> no overhead.
    EXPECT_EQ(StackConfig::baseline().overheadBytesPerSm(4), 0u);
}

TEST(StackConfig, OverheadScalesWithEntryCount)
{
    // SH_16 needs 4-bit Top/Bottom fields.
    StackConfig c = StackConfig::withSh(8, 16);
    EXPECT_EQ(c.overheadBitsPerThread(), 2u * 4u + 1u);
    // SH_4 needs 2-bit fields.
    EXPECT_EQ(StackConfig::withSh(8, 4).overheadBitsPerThread(),
              2u * 2u + 1u);
}

TEST(SkewFormula, MatchesFig9ForSh8)
{
    // N = 8 -> k = 2: threads 0,1 -> entry 0; 2,3 -> entry 1; ...;
    // 16,17 -> entry 0 again.
    EXPECT_EQ(skewBaseEntry(0, 8), 0u);
    EXPECT_EQ(skewBaseEntry(1, 8), 0u);
    EXPECT_EQ(skewBaseEntry(2, 8), 1u);
    EXPECT_EQ(skewBaseEntry(3, 8), 1u);
    EXPECT_EQ(skewBaseEntry(15, 8), 7u);
    EXPECT_EQ(skewBaseEntry(16, 8), 0u);
    EXPECT_EQ(skewBaseEntry(17, 8), 0u);
    EXPECT_EQ(skewBaseEntry(18, 8), 1u);
    EXPECT_EQ(skewBaseEntry(31, 8), 7u);
}

TEST(SkewFormula, Sh4AndSh16)
{
    // N = 4 -> k = 4: groups of four threads share a base entry.
    EXPECT_EQ(skewBaseEntry(0, 4), 0u);
    EXPECT_EQ(skewBaseEntry(3, 4), 0u);
    EXPECT_EQ(skewBaseEntry(4, 4), 1u);
    EXPECT_EQ(skewBaseEntry(15, 4), 3u);
    EXPECT_EQ(skewBaseEntry(16, 4), 0u);

    // N = 16 -> k = 1: every thread gets its own base entry mod 16.
    EXPECT_EQ(skewBaseEntry(0, 16), 0u);
    EXPECT_EQ(skewBaseEntry(5, 16), 5u);
    EXPECT_EQ(skewBaseEntry(17, 16), 1u);
}

TEST(SkewFormula, LargeStacksGuardDivisor)
{
    // N = 32 would make k = 32/(2N) = 0; the guard clamps k to 1.
    for (uint32_t tid = 0; tid < kWarpSize; ++tid)
        EXPECT_EQ(skewBaseEntry(tid, 32), tid % 32);
}

TEST(SkewFormula, AlwaysInRange)
{
    for (uint32_t n : {2u, 4u, 8u, 16u, 32u})
        for (uint32_t tid = 0; tid < kWarpSize; ++tid)
            EXPECT_LT(skewBaseEntry(tid, n), n);
}

} // namespace
} // namespace sms
