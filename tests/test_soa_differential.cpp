/**
 * @file
 * Differential suites pinning the SoA rewrite to its frozen AoS
 * ancestors.
 *
 *  - WarpStackModel vs RefWarpStackModel (tests/reference_warp_stack.hpp,
 *    the pre-SoA model kept verbatim): identical operation streams must
 *    produce identical per-operation transaction lists, identical
 *    popped/peeked values, and byte-identical WarpStackStats — through
 *    both the StackTxnList and the pooled StackTxnArena entry points.
 *  - RbRing vs std::deque<uint64_t>: randomized push/pop churn at both
 *    ends, biased to keep the ring wrapped when it grows so grow()'s
 *    rebase of a wrapped ring is actually exercised.
 *  - StackTxnArena: pool/link mechanics in isolation.
 */

#include <cstring>
#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/warp_stack.hpp"
#include "src/util/rng.hpp"
#include "tests/reference_warp_stack.hpp"

namespace sms {
namespace {

constexpr Addr kSharedBase = 0x1000;
constexpr Addr kLocalBase = 0x100000000ull;

bool
sameTxn(const StackTxn &a, const StackTxn &b)
{
    return a.kind == b.kind && a.addr == b.addr && a.bytes == b.bytes &&
           a.origin == b.origin;
}

::testing::AssertionResult
sameTxnList(const StackTxnList &got, const StackTxnList &want)
{
    if (got.size() != want.size())
        return ::testing::AssertionFailure()
               << "txn count " << got.size() << " != " << want.size();
    for (size_t i = 0; i < got.size(); ++i) {
        if (!sameTxn(got[i], want[i]))
            return ::testing::AssertionFailure()
                   << "txn " << i << " differs (kind "
                   << static_cast<int>(got[i].kind) << " vs "
                   << static_cast<int>(want[i].kind) << ", addr 0x"
                   << std::hex << got[i].addr << " vs 0x" << want[i].addr
                   << ")";
    }
    return ::testing::AssertionSuccess();
}

/** WarpStackStats must match field for field (memcmp: all-integer POD). */
::testing::AssertionResult
sameStats(const WarpStackStats &got, const WarpStackStats &want)
{
    if (std::memcmp(&got, &want, sizeof(WarpStackStats)) == 0)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "stats diverged (pushes " << got.pushes << "/" << want.pushes
           << ", pops " << got.pops << "/" << want.pops << ", sh_stores "
           << got.sh_stores << "/" << want.sh_stores << ", sh_loads "
           << got.sh_loads << "/" << want.sh_loads << ", global_stores "
           << got.global_stores << "/" << want.global_stores
           << ", borrows " << got.borrows << "/" << want.borrows
           << ", flushes " << got.flushes << "/" << want.flushes << ")";
}

struct DiffCase
{
    StackConfig config;
    uint64_t seed;
    const char *label;
};

std::vector<DiffCase>
diffCases()
{
    std::vector<DiffCase> cases;
    StackConfig rb8;
    rb8.rb_entries = 8;
    cases.push_back({rb8, 1, "rb8"});

    StackConfig rb2;
    rb2.rb_entries = 2;
    cases.push_back({rb2, 2, "rb2_deep_spill"});

    StackConfig sh;
    sh.rb_entries = 4;
    sh.sh_entries = 8;
    cases.push_back({sh, 3, "rb4_sh8"});

    StackConfig sk = sh;
    sk.skewed_bank_access = true;
    cases.push_back({sk, 4, "rb4_sh8_skew"});

    StackConfig ra = sk;
    ra.intra_warp_realloc = true;
    ra.max_borrowed = 4;
    ra.max_flushes = 3;
    cases.push_back({ra, 5, "rb4_sh8_skew_ra"});

    // Tiny segments + tiny flush budget: forced flushes and long borrow
    // chains become reachable within a few hundred operations.
    StackConfig tiny;
    tiny.rb_entries = 2;
    tiny.sh_entries = 2;
    tiny.intra_warp_realloc = true;
    tiny.max_borrowed = 8;
    tiny.max_flushes = 1;
    cases.push_back({tiny, 6, "tiny_forced_flush"});

    StackConfig unbounded;
    unbounded.rb_entries = 8;
    unbounded.rb_unbounded = true;
    cases.push_back({unbounded, 7, "rb_unbounded"});
    return cases;
}

class SoaDifferentialTest : public ::testing::TestWithParam<DiffCase>
{
};

/**
 * Random churn through both models in lockstep, comparing every
 * observable after every operation. Lanes 20..27 finish early so
 * borrowing has lenders; lanes 28..31 never start (masked off) so
 * finished-at-construction lanes are covered too.
 */
TEST_P(SoaDifferentialTest, RandomChurnMatchesFrozenAosModel)
{
    const DiffCase &tc = GetParam();
    WarpStackModel soa(tc.config, kSharedBase, kLocalBase);
    RefWarpStackModel aos(tc.config, kSharedBase, kLocalBase);

    for (uint32_t lane = 28; lane < kWarpSize; ++lane) {
        soa.finishLane(lane);
        aos.finishLane(lane);
    }

    Pcg32 rng(tc.seed);
    uint64_t value = 1;
    // Drive depth up first so lanes 20..27 can drain and finish early.
    for (uint32_t lane = 20; lane < 28; ++lane) {
        for (uint32_t i = 0; i < 4; ++i) {
            StackTxnList got, want;
            soa.push(lane, value, got);
            aos.push(lane, value, want);
            ASSERT_TRUE(sameTxnList(got, want));
            ++value;
        }
        while (!aos.laneEmpty(lane)) {
            StackTxnList got, want;
            uint64_t gv = 0, wv = 0;
            ASSERT_TRUE(soa.pop(lane, gv, got));
            ASSERT_TRUE(aos.pop(lane, wv, want));
            ASSERT_EQ(gv, wv);
            ASSERT_TRUE(sameTxnList(got, want));
        }
        soa.finishLane(lane);
        aos.finishLane(lane);
    }

    for (uint32_t step = 0; step < 6000; ++step) {
        uint32_t lane = rng.nextU32() % 20;
        bool do_push = (rng.nextU32() & 3) != 0; // push-biased: go deep
        StackTxnList got, want;
        if (do_push && !aos.laneFinished(lane)) {
            soa.push(lane, value, got);
            aos.push(lane, value, want);
            ++value;
        } else if (!aos.laneFinished(lane)) {
            uint64_t gv = 0, wv = 0;
            bool g_ok = soa.pop(lane, gv, got);
            bool w_ok = aos.pop(lane, wv, want);
            ASSERT_EQ(g_ok, w_ok) << tc.label << " step " << step;
            if (g_ok)
                ASSERT_EQ(gv, wv) << tc.label << " step " << step;
        }
        ASSERT_TRUE(sameTxnList(got, want))
            << tc.label << " step " << step;
        ASSERT_EQ(soa.logicalDepth(lane), aos.logicalDepth(lane));
        ASSERT_EQ(soa.shDepth(lane), aos.shDepth(lane));
        ASSERT_EQ(soa.globalDepth(lane), aos.globalDepth(lane));
        ASSERT_EQ(soa.borrowedCount(lane), aos.borrowedCount(lane));
        if (!aos.laneEmpty(lane) && !aos.laneFinished(lane))
            ASSERT_EQ(soa.peek(lane), aos.peek(lane));
    }

    // Drain everything and compare the final statistics bytes.
    for (uint32_t lane = 0; lane < 20; ++lane) {
        while (!aos.laneEmpty(lane)) {
            StackTxnList got, want;
            uint64_t gv = 0, wv = 0;
            ASSERT_TRUE(soa.pop(lane, gv, got));
            ASSERT_TRUE(aos.pop(lane, wv, want));
            ASSERT_EQ(gv, wv);
            ASSERT_TRUE(sameTxnList(got, want));
        }
        soa.finishLane(lane);
        aos.finishLane(lane);
    }
    EXPECT_TRUE(sameStats(soa.stats(), aos.stats()));
}

/**
 * The arena entry points must emit exactly the transactions of the
 * StackTxnList entry points: the reference here is the production
 * model itself driven through its list API, so any sink-specific
 * divergence in the shared template shows up directly.
 */
TEST_P(SoaDifferentialTest, ArenaSinkMatchesListSink)
{
    const DiffCase &tc = GetParam();
    WarpStackModel via_list(tc.config, kSharedBase, kLocalBase);
    WarpStackModel via_arena(tc.config, kSharedBase, kLocalBase);
    StackTxnArena arena;

    Pcg32 rng(tc.seed ^ 0xa5a5a5a5ull);
    uint64_t value = 1;
    for (uint32_t step = 0; step < 4000; ++step) {
        uint32_t lane = rng.nextU32() % kWarpSize;
        bool do_push = (rng.nextU32() & 3) != 0;
        StackTxnList list_txns;
        arena.clear();
        if (do_push) {
            via_list.push(lane, value, list_txns);
            via_arena.push(lane, value, arena);
            ++value;
        } else {
            uint64_t lv = 0, av = 0;
            bool l_ok = via_list.pop(lane, lv, list_txns);
            bool a_ok = via_arena.pop(lane, av, arena);
            ASSERT_EQ(l_ok, a_ok) << tc.label << " step " << step;
            if (l_ok)
                ASSERT_EQ(lv, av);
        }
        ASSERT_EQ(arena.laneCount(lane), list_txns.size());
        ASSERT_TRUE(sameTxnList(arena.laneTxns(lane), list_txns))
            << tc.label << " step " << step;
        // No stray transactions on other lanes.
        for (uint32_t other = 0; other < kWarpSize; ++other)
            if (other != lane)
                ASSERT_EQ(arena.laneCount(other), 0u);
    }
    EXPECT_TRUE(sameStats(via_arena.stats(), via_list.stats()));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SoaDifferentialTest, ::testing::ValuesIn(diffCases()),
    [](const ::testing::TestParamInfo<DiffCase> &info) {
        return info.param.label;
    });

// ---------------------------------------------------------------------
// RbRing vs std::deque
// ---------------------------------------------------------------------

/**
 * Randomized differential against std::deque. The operation mix keeps
 * pushing through the inline capacity so grow() runs several times, and
 * front-pops rotate start_ around the ring first so the copy-out in
 * grow() starts from a wrapped ring (the rebase bug class: grow() must
 * relinearize [start_, start_+count_) into [0, count_)).
 */
TEST(RbRingDifferential, RandomChurnMatchesDeque)
{
    for (uint64_t seed : {11ull, 22ull, 33ull, 44ull}) {
        RbRing ring;
        std::deque<uint64_t> oracle;
        Pcg32 rng(seed);
        uint64_t value = 1;
        for (uint32_t step = 0; step < 20000; ++step) {
            uint32_t op = rng.nextU32() % 10;
            if (op < 4) { // push_back
                ring.push_back(value);
                oracle.push_back(value);
                ++value;
            } else if (op < 6) { // push_front
                ring.push_front(value);
                oracle.push_front(value);
                ++value;
            } else if (op < 8) { // pop_front: rotates start_
                if (!oracle.empty()) {
                    ASSERT_EQ(ring.front(), oracle.front());
                    ring.pop_front();
                    oracle.pop_front();
                }
            } else { // pop_back
                if (!oracle.empty()) {
                    ASSERT_EQ(ring.back(), oracle.back());
                    ring.pop_back();
                    oracle.pop_back();
                }
            }
            ASSERT_EQ(ring.size(), oracle.size());
            ASSERT_EQ(ring.empty(), oracle.empty());
            if (!oracle.empty()) {
                ASSERT_EQ(ring.front(), oracle.front());
                ASSERT_EQ(ring.back(), oracle.back());
            }
        }
        // Full drain: every surviving element in order.
        while (!oracle.empty()) {
            ASSERT_EQ(ring.front(), oracle.front());
            ring.pop_front();
            oracle.pop_front();
        }
        ASSERT_TRUE(ring.empty());
    }
}

/** Deterministic worst case: grow() from a maximally wrapped ring. */
TEST(RbRingDifferential, GrowFromWrappedRingKeepsOrder)
{
    RbRing ring;
    std::deque<uint64_t> oracle;
    // Rotate start_ to the last inline slot: fill, then drain 7.
    for (uint64_t v = 0; v < 8; ++v)
        ring.push_back(v);
    for (int i = 0; i < 7; ++i)
        ring.pop_front();
    oracle.push_back(7);
    // Next 7 pushes wrap around the inline array; the 8th forces grow()
    // while start_ = 7 (every element physically before its logical
    // predecessor).
    for (uint64_t v = 100; v < 120; ++v) {
        ring.push_back(v);
        oracle.push_back(v);
    }
    ASSERT_EQ(ring.size(), oracle.size());
    while (!oracle.empty()) {
        ASSERT_EQ(ring.front(), oracle.front());
        ASSERT_EQ(ring.back(), oracle.back());
        ring.pop_front();
        oracle.pop_front();
    }
}

// ---------------------------------------------------------------------
// StackTxnArena mechanics
// ---------------------------------------------------------------------

TEST(StackTxnArena, AppendLinksPerLaneListsInOrder)
{
    StackTxnArena arena;
    StackTxn a{StackTxnKind::SharedStore, 0x10, 8, StackTxnOrigin::Spill};
    StackTxn b{StackTxnKind::GlobalStore, 0x20, 8,
               StackTxnOrigin::BorrowChain};
    StackTxn c{StackTxnKind::GlobalLoad, 0x30, 8, StackTxnOrigin::Refill};

    arena.append(3, a);
    arena.append(7, b);
    arena.append(3, c);

    EXPECT_EQ(arena.totalCount(), 3u);
    EXPECT_EQ(arena.laneCount(3), 2u);
    EXPECT_EQ(arena.laneCount(7), 1u);
    EXPECT_EQ(arena.laneCount(0), 0u);

    StackTxnList lane3 = arena.laneTxns(3);
    ASSERT_EQ(lane3.size(), 2u);
    EXPECT_TRUE(sameTxn(lane3[0], a));
    EXPECT_TRUE(sameTxn(lane3[1], c));

    // Walk the raw links too: interleaved appends must not cross lists.
    uint32_t cursor = arena.laneHead(7);
    ASSERT_NE(cursor, StackTxnArena::kNil);
    EXPECT_TRUE(sameTxn(arena.node(cursor).txn, b));
    EXPECT_EQ(arena.node(cursor).next, StackTxnArena::kNil);
}

TEST(StackTxnArena, ClearIsLogicalNotDestructive)
{
    StackTxnArena arena;
    StackTxn t{StackTxnKind::SharedLoad, 0x40, 8, StackTxnOrigin::Refill};
    for (uint32_t lane = 0; lane < kWarpSize; ++lane)
        for (int i = 0; i < 3; ++i)
            arena.append(lane, t);
    EXPECT_EQ(arena.totalCount(), 3u * kWarpSize);

    arena.clear();
    for (uint32_t lane = 0; lane < kWarpSize; ++lane) {
        EXPECT_EQ(arena.laneCount(lane), 0u);
        EXPECT_EQ(arena.laneHead(lane), StackTxnArena::kNil);
        EXPECT_TRUE(arena.laneTxns(lane).empty());
    }

    // Reuse after clear: fresh lists, no leftovers from the old links.
    arena.append(5, t);
    EXPECT_EQ(arena.laneCount(5), 1u);
    ASSERT_EQ(arena.laneTxns(5).size(), 1u);
    EXPECT_TRUE(sameTxn(arena.laneTxns(5)[0], t));
}

TEST(StackTxnArena, LaneSinkAdapterAppendsToItsLane)
{
    StackTxnArena arena;
    LaneTxnSink sink{&arena, 9};
    StackTxn t{StackTxnKind::GlobalStore, 0x50, 8, StackTxnOrigin::Spill};
    sink.push_back(t);
    sink.push_back(t);
    EXPECT_EQ(arena.laneCount(9), 2u);
    EXPECT_EQ(arena.totalCount(), 2u);
}

} // namespace
} // namespace sms
