/**
 * @file
 * Tests for the bench harness utilities: degenerate-cell handling in
 * the normalized-IPC geomean (a zero-IPC config must not abort the
 * sweep), the off-chip normalization direction fix, strict SMS_FULL
 * parsing, and the JsonReporter flag/path plumbing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.hpp"

namespace sms {
namespace benchutil {
namespace {

/** RAII environment-variable override. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        had_old_ = old != nullptr;
        if (had_old_)
            old_ = old;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_old_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

  private:
    const char *name_;
    bool had_old_;
    std::string old_;
};

/** Synthetic 2-scene sweep; cell IPC = instructions / 1000 cycles. */
SweepResult
makeSweep(const std::vector<std::vector<uint64_t>> &instructions,
          const std::vector<std::vector<uint64_t>> &offchip)
{
    SweepResult sweep;
    size_t num_configs = instructions[0].size();
    sweep.configs.push_back(StackConfig::baseline(8));
    for (size_t c = 1; c < num_configs; ++c)
        sweep.configs.push_back(StackConfig::sms());
    sweep.l1_overrides.assign(num_configs, 0);
    for (size_t s = 0; s < instructions.size(); ++s) {
        sweep.scene_names.push_back("S" + std::to_string(s));
        std::vector<SimResult> row(num_configs);
        for (size_t c = 0; c < num_configs; ++c) {
            row[c].cycles = 1000;
            row[c].instructions = instructions[s][c];
            row[c].offchip_accesses = offchip[s][c];
        }
        sweep.results.push_back(std::move(row));
    }
    return sweep;
}

TEST(NormIpc, DegenerateCellIsNanNotFatal)
{
    // Scene 1's config 1 produced zero instructions (a degenerate run).
    SweepResult sweep = makeSweep({{800, 900}, {800, 0}},
                                  {{100, 90}, {100, 90}});
    EXPECT_TRUE(std::isfinite(normIpc(sweep, 0, 1)));
    EXPECT_TRUE(std::isnan(normIpc(sweep, 1, 1)));
}

TEST(NormIpc, DegenerateBaselineIsNanNotFatal)
{
    SweepResult sweep =
        makeSweep({{0, 900}}, {{100, 90}});
    EXPECT_TRUE(std::isnan(normIpc(sweep, 0, 1)));
}

TEST(MeanNormIpc, SkipsDegenerateCellsAndStaysFinite)
{
    // The satellite fix: previously the NaN/zero ratio reached the
    // geomean's positivity assertion and aborted the whole bench.
    SweepResult sweep = makeSweep({{800, 880}, {800, 0}},
                                  {{100, 90}, {100, 90}});
    double mean = meanNormIpc(sweep, 1);
    EXPECT_TRUE(std::isfinite(mean));
    EXPECT_NEAR(mean, 1.1, 1e-9); // only scene 0 contributes
}

TEST(MeanNormIpc, AllDegenerateIsNan)
{
    SweepResult sweep = makeSweep({{800, 0}, {800, 0}},
                                  {{100, 90}, {100, 90}});
    EXPECT_TRUE(std::isnan(meanNormIpc(sweep, 1)));
}

TEST(NormOffchip, ZeroBaselineReportsRegressionDirection)
{
    // The asymmetric-clamp fix: baseline 0, measured 50 used to report
    // 1.0 ("no change"); it must now report a value > 1 (a regression).
    SweepResult sweep = makeSweep({{800, 800}}, {{0, 50}});
    EXPECT_GT(normOffchip(sweep, 0, 1), 1.0);
}

TEST(NormOffchip, BothZeroIsNoChange)
{
    SweepResult sweep = makeSweep({{800, 800}}, {{0, 0}});
    EXPECT_DOUBLE_EQ(normOffchip(sweep, 0, 1), 1.0);
}

TEST(NormOffchip, ZeroMeasuredIsFlooredNotZero)
{
    // A config that eliminates off-chip traffic entirely must not zero
    // the downstream geomean.
    SweepResult sweep = makeSweep({{800, 800}}, {{100, 0}});
    double r = normOffchip(sweep, 0, 1);
    EXPECT_GT(r, 0.0);
    EXPECT_LE(r, 1.0e-6);
}

TEST(MeanNormOffchip, MixedCellsFinite)
{
    SweepResult sweep = makeSweep({{800, 800}, {800, 800}},
                                  {{0, 50}, {100, 90}});
    EXPECT_TRUE(std::isfinite(meanNormOffchip(sweep, 1)));
}

TEST(ProfileFromEnv, StrictParse)
{
    {
        ScopedEnv env("SMS_FULL", nullptr);
        EXPECT_EQ(profileFromEnv(), ScaleProfile::Small);
    }
    {
        ScopedEnv env("SMS_FULL", "");
        EXPECT_EQ(profileFromEnv(), ScaleProfile::Small);
    }
    {
        ScopedEnv env("SMS_FULL", "0");
        EXPECT_EQ(profileFromEnv(), ScaleProfile::Small);
    }
    {
        ScopedEnv env("SMS_FULL", "1");
        EXPECT_EQ(profileFromEnv(), ScaleProfile::Large);
    }
    {
        // The old prefix match accepted any string starting with '1'.
        ScopedEnv env("SMS_FULL", "1x");
        EXPECT_EQ(profileFromEnv(), ScaleProfile::Small);
    }
    {
        ScopedEnv env("SMS_FULL", "yes");
        EXPECT_EQ(profileFromEnv(), ScaleProfile::Small);
    }
}

TEST(JsonReporter, DisabledWithoutFlagOrEnv)
{
    ScopedEnv env("SMS_JSON", nullptr);
    char arg0[] = "bench";
    char *argv[] = {arg0, nullptr};
    int argc = 1;
    JsonReporter reporter("figX", argc, argv);
    EXPECT_FALSE(reporter.enabled());
    reporter.finish(); // no-op, must not crash
}

TEST(JsonReporter, ConsumesJsonFlagFromArgv)
{
    ScopedEnv env("SMS_JSON", nullptr);
    char arg0[] = "bench";
    char arg1[] = "--json=/tmp/out.json";
    char arg2[] = "--benchmark_filter=NONE";
    char *argv[] = {arg0, arg1, arg2, nullptr};
    int argc = 3;
    JsonReporter reporter("figX", argc, argv);
    EXPECT_TRUE(reporter.enabled());
    EXPECT_EQ(reporter.path(), "/tmp/out.json");
    // The flag is stripped so benchmark::Initialize never sees it.
    ASSERT_EQ(argc, 2);
    EXPECT_STREQ(argv[1], "--benchmark_filter=NONE");
}

TEST(JsonReporter, BareFlagResolvesToFigureDefault)
{
    ScopedEnv env("SMS_JSON", nullptr);
    char arg0[] = "bench";
    char arg1[] = "--json";
    char *argv[] = {arg0, arg1, nullptr};
    int argc = 2;
    JsonReporter reporter("fig13", argc, argv);
    EXPECT_TRUE(reporter.enabled());
    EXPECT_EQ(reporter.path(), "BENCH_fig13.json");
    EXPECT_EQ(argc, 1);
}

TEST(JsonReporter, EnvDirectoryResolvesToDefaultName)
{
    std::string dir = testing::TempDir();
    ScopedEnv env("SMS_JSON", dir.c_str());
    char arg0[] = "bench";
    char *argv[] = {arg0, nullptr};
    int argc = 1;
    JsonReporter reporter("fig5", argc, argv);
    ASSERT_TRUE(reporter.enabled());
    if (dir.back() != '/')
        dir += '/';
    EXPECT_EQ(reporter.path(), dir + "BENCH_fig5.json");
}

TEST(JsonReporter, EndToEndSweepRecord)
{
    std::string path = testing::TempDir() + "sms_bench_util_test.jsonl";
    std::remove(path.c_str());
    ScopedEnv env("SMS_JSON", path.c_str());

    char arg0[] = "bench";
    char *argv[] = {arg0, nullptr};
    int argc = 1;
    JsonReporter reporter("figX", argc, argv);
    ASSERT_TRUE(reporter.enabled());

    // Includes a degenerate zero-IPC cell: the record must still be
    // written, with NaN cells serialized as null.
    SweepResult sweep = makeSweep({{800, 880}, {800, 0}},
                                  {{100, 90}, {100, 90}});
    reporter.addSweep(sweep);
    reporter.finish();

    std::vector<JsonValue> records;
    std::string error;
    ASSERT_TRUE(readJsonLines(path, records, error)) << error;
    ASSERT_EQ(records.size(), 1u);
    const JsonValue &rec = records[0];
    EXPECT_EQ(rec.stringOr("schema", ""), "sms-bench-1");
    EXPECT_EQ(rec.stringOr("figure", ""), "figX");
    const JsonValue *results = rec.find("results");
    ASSERT_NE(results, nullptr);
    EXPECT_EQ(results->size(), 4u); // 2 scenes x 2 configs
    // The degenerate cell (scene 1, config 1) has a null norm_ipc.
    EXPECT_TRUE(results->at(3).find("norm_ipc")->isNull());
    const JsonValue *summary = rec.find("summary");
    ASSERT_NE(summary, nullptr);
    ASSERT_EQ(summary->size(), 2u);
    EXPECT_NEAR(summary->at(1).numberOr("mean_norm_ipc", 0.0), 1.1,
                1e-9);
    EXPECT_GE(rec.numberOr("wall_seconds", -1.0), 0.0);

    // Run-level throughput block: present, finite, self-consistent.
    const JsonValue *throughput = rec.find("throughput");
    ASSERT_NE(throughput, nullptr);
    for (const char *field :
         {"prepare_wall_seconds", "sweep_wall_seconds", "cells",
          "sim_cycles_total", "sim_cycles_per_sec"}) {
        ASSERT_NE(throughput->find(field), nullptr) << field;
        EXPECT_TRUE(std::isfinite(throughput->numberOr(field, NAN)))
            << field;
    }
    EXPECT_EQ(throughput->numberOr("cells", -1.0), 4.0);
    const JsonValue *cache = throughput->find("workload_cache");
    ASSERT_NE(cache, nullptr);
    ASSERT_NE(cache->find("hits"), nullptr);
    ASSERT_NE(cache->find("misses"), nullptr);

    std::remove(path.c_str());
}

TEST(RunSweep, ThreadCountDoesNotChangeCounters)
{
    // Determinism satellite: a sweep is counter-identical (full JSON
    // record of every cell) no matter how the grid is scheduled across
    // worker threads or chunks.
    ScopedEnv env("SMS_WORKLOAD_CACHE", nullptr);
    std::vector<std::shared_ptr<Workload>> workloads = {
        prepareWorkload(SceneId::REF, ScaleProfile::Tiny),
        prepareWorkload(SceneId::WKND, ScaleProfile::Tiny),
    };
    std::vector<StackConfig> configs = {StackConfig::baseline(8),
                                        StackConfig::sms()};

    SweepResult serial = runSweep(workloads, configs, {}, 1);
    SweepResult threaded = runSweep(workloads, configs, {}, 4);
    ASSERT_EQ(serial.results.size(), threaded.results.size());
    for (size_t s = 0; s < serial.results.size(); ++s) {
        ASSERT_EQ(serial.results[s].size(), threaded.results[s].size());
        for (size_t c = 0; c < serial.results[s].size(); ++c)
            EXPECT_EQ(toJson(serial.results[s][c]).dump(),
                      toJson(threaded.results[s][c]).dump())
                << "scene " << serial.sceneLabel(s) << " config " << c;
    }
}

} // namespace
} // namespace benchutil
} // namespace sms
