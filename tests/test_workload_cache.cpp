/**
 * @file
 * Tests for the workload snapshot cache: bit-exact round-trips (the
 * timing simulation over a reloaded workload must be counter-identical
 * to one over a freshly prepared workload), corruption tolerance, and
 * the hit/miss/store accounting surfaced in the bench throughput
 * records.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <dirent.h>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "src/sim/gpu_sim.hpp"
#include "src/stats/report.hpp"
#include "src/trace/render.hpp"
#include "src/sim/traversal_tape.hpp"
#include "src/trace/workload_cache.hpp"

namespace sms {
namespace {

/** RAII environment-variable override. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        had_old_ = old != nullptr;
        if (had_old_)
            old_ = old;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_old_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

  private:
    const char *name_;
    bool had_old_;
    std::string old_;
};

/** Fresh per-test cache directory, removed on destruction. */
class TempCacheDir
{
  public:
    TempCacheDir()
        : path_("/tmp/sms_wkld_cache_test_" +
                std::to_string(static_cast<long>(::getpid())) + "_" +
                std::to_string(counter_++))
    {
        std::string cmd = "rm -rf '" + path_ + "'";
        [[maybe_unused]] int rc = std::system(cmd.c_str());
    }
    ~TempCacheDir()
    {
        std::string cmd = "rm -rf '" + path_ + "'";
        [[maybe_unused]] int rc = std::system(cmd.c_str());
    }
    const std::string &path() const { return path_; }

  private:
    static int counter_;
    std::string path_;
};

int TempCacheDir::counter_ = 0;

std::string
simResultJson(const Workload &workload)
{
    SimResult result =
        runWorkload(workload, makeGpuConfig(StackConfig::sms()));
    return toJson(result).dump();
}

TEST(WorkloadCache, DisabledWithoutEnv)
{
    ScopedEnv env("SMS_WORKLOAD_CACHE", nullptr);
    resetWorkloadCacheStats();
    auto w = prepareWorkload(SceneId::REF, ScaleProfile::Tiny);
    ASSERT_NE(w, nullptr);
    WorkloadCacheStats stats = workloadCacheStats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_EQ(stats.stores, 0u);
}

TEST(WorkloadCache, ColdRunStoresWarmRunHits)
{
    TempCacheDir dir;
    ScopedEnv env("SMS_WORKLOAD_CACHE", dir.path().c_str());
    resetWorkloadCacheStats();

    auto cold = prepareWorkload(SceneId::BUNNY, ScaleProfile::Tiny);
    WorkloadCacheStats after_cold = workloadCacheStats();
    EXPECT_EQ(after_cold.misses, 1u);
    EXPECT_EQ(after_cold.stores, 1u);
    EXPECT_EQ(after_cold.hits, 0u);

    auto warm = prepareWorkload(SceneId::BUNNY, ScaleProfile::Tiny);
    WorkloadCacheStats after_warm = workloadCacheStats();
    EXPECT_EQ(after_warm.hits, 1u);
    EXPECT_EQ(after_warm.misses, 1u);
    EXPECT_EQ(after_warm.failures, 0u);

    // The snapshot round-trip is bit-exact: same image, same job
    // stream, and a counter-identical timing simulation (full JSON
    // record compare).
    EXPECT_EQ(cold->render.film.contentHash(),
              warm->render.film.contentHash());
    EXPECT_EQ(cold->render.jobs.size(), warm->render.jobs.size());
    EXPECT_EQ(cold->render.rays, warm->render.rays);
    EXPECT_EQ(simResultJson(*cold), simResultJson(*warm));
}

TEST(WorkloadCache, DistinctKeysPerProfileAndParams)
{
    TempCacheDir dir;
    RenderParams a = RenderParams::forScene(SceneId::REF);
    RenderParams b = a;
    b.spp = a.spp + 1;
    std::string path_a = workloadSnapshotPath(dir.path(), SceneId::REF,
                                             ScaleProfile::Tiny, a);
    std::string path_b = workloadSnapshotPath(dir.path(), SceneId::REF,
                                             ScaleProfile::Tiny, b);
    std::string path_c = workloadSnapshotPath(dir.path(), SceneId::REF,
                                             ScaleProfile::Small, a);
    std::string path_d = workloadSnapshotPath(dir.path(), SceneId::WKND,
                                             ScaleProfile::Tiny, a);
    EXPECT_NE(path_a, path_b);
    EXPECT_NE(path_a, path_c);
    EXPECT_NE(path_a, path_d);
}

TEST(WorkloadCache, CorruptSnapshotIsRebuiltNotTrusted)
{
    TempCacheDir dir;
    ScopedEnv env("SMS_WORKLOAD_CACHE", dir.path().c_str());
    resetWorkloadCacheStats();

    auto cold = prepareWorkload(SceneId::REF, ScaleProfile::Tiny);
    std::string path = workloadSnapshotPath(
        dir.path(), SceneId::REF, ScaleProfile::Tiny,
        RenderParams::forScene(SceneId::REF));

    // Flip one byte in the middle of the snapshot.
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    ASSERT_GT(size, 64);
    std::fseek(f, size / 2, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, size / 2, SEEK_SET);
    std::fputc(c ^ 0xff, f);
    std::fclose(f);

    auto rebuilt = prepareWorkload(SceneId::REF, ScaleProfile::Tiny);
    WorkloadCacheStats stats = workloadCacheStats();
    EXPECT_EQ(stats.failures, 1u);
    EXPECT_EQ(stats.stores, 2u); // snapshot rewritten after rebuild
    EXPECT_EQ(simResultJson(*cold), simResultJson(*rebuilt));

    // The rewritten snapshot validates again.
    auto warm = prepareWorkload(SceneId::REF, ScaleProfile::Tiny);
    EXPECT_EQ(workloadCacheStats().hits, 1u);
    EXPECT_EQ(simResultJson(*cold), simResultJson(*warm));
}

TEST(WorkloadCache, TruncatedSnapshotIsRejected)
{
    TempCacheDir dir;
    ScopedEnv env("SMS_WORKLOAD_CACHE", dir.path().c_str());
    resetWorkloadCacheStats();

    prepareWorkload(SceneId::REF, ScaleProfile::Tiny);
    std::string path = workloadSnapshotPath(
        dir.path(), SceneId::REF, ScaleProfile::Tiny,
        RenderParams::forScene(SceneId::REF));
    struct stat st{};
    ASSERT_EQ(::stat(path.c_str(), &st), 0);
    ASSERT_EQ(::truncate(path.c_str(), st.st_size / 3), 0);

    auto rebuilt = prepareWorkload(SceneId::REF, ScaleProfile::Tiny);
    ASSERT_NE(rebuilt, nullptr);
    EXPECT_EQ(workloadCacheStats().failures, 1u);
    EXPECT_EQ(workloadCacheStats().hits, 0u);
}

TEST(WorkloadCache, ConcurrentWritersNeverCorruptOrLeakTemps)
{
    // Multi-process/multi-thread safety stress: several writers race
    // saving the same snapshot and tape keys while readers load them
    // concurrently. Writes go through writeFileAtomic (unique temp +
    // rename), so a reader must only ever see a complete, validating
    // entry — zero failures — and no temp files may be left behind.
    TempCacheDir dir;
    ScopedEnv env("SMS_WORKLOAD_CACHE", nullptr); // explicit-dir API
    resetWorkloadCacheStats();

    auto workload = prepareWorkload(SceneId::REF, ScaleProfile::Tiny);
    ASSERT_NE(workload, nullptr);
    TraversalTape tape;
    SimOptions record;
    record.record_tape = &tape;
    runWorkload(*workload, makeGpuConfig(StackConfig::sms()), record);

    RenderParams params = RenderParams::forScene(SceneId::REF);
    constexpr int kWriters = 4;
    constexpr int kIters = 6;
    std::vector<std::thread> threads;
    threads.reserve(kWriters);
    for (int t = 0; t < kWriters; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                EXPECT_TRUE(saveWorkloadSnapshot(
                    dir.path(), *workload, ScaleProfile::Tiny, params));
                EXPECT_TRUE(
                    saveTraversalTape(dir.path(), *workload, tape));
                // A concurrent reader sees a complete entry or (before
                // the first rename lands) none — never a partial one.
                auto loaded = loadWorkloadSnapshot(
                    dir.path(), SceneId::REF, ScaleProfile::Tiny,
                    params);
                if (loaded)
                    EXPECT_EQ(loaded->render.film.contentHash(),
                              workload->render.film.contentHash());
                TraversalTape replay;
                loadTraversalTape(dir.path(), *workload, replay);
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    // No reader ever saw a torn entry.
    EXPECT_EQ(workloadCacheStats().failures, 0u);

    // Final state validates and no atomic-write temporaries leaked.
    auto final_load = loadWorkloadSnapshot(dir.path(), SceneId::REF,
                                           ScaleProfile::Tiny, params);
    ASSERT_NE(final_load, nullptr);
    EXPECT_EQ(final_load->render.film.contentHash(),
              workload->render.film.contentHash());
    TraversalTape final_tape;
    EXPECT_TRUE(loadTraversalTape(dir.path(), *workload, final_tape));

    DIR *d = ::opendir(dir.path().c_str());
    ASSERT_NE(d, nullptr);
    while (struct dirent *ent = ::readdir(d)) {
        std::string name = ent->d_name;
        EXPECT_EQ(name.find(".tmp."), std::string::npos)
            << "leaked temp file: " << name;
    }
    ::closedir(d);
}

} // namespace
} // namespace sms
