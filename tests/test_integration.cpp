/**
 * @file
 * Cross-module integration tests: whole-pipeline runs over generated
 * scenes under the paper's configuration matrix, checking the global
 * invariants that the evaluation (and the paper's argument) rest on.
 */

#include <gtest/gtest.h>

#include "src/trace/render.hpp"

namespace sms {
namespace {

struct ScenePoint
{
    SceneId id;
    const char *label;
};

class PipelineTest : public ::testing::TestWithParam<ScenePoint>
{
  protected:
    std::shared_ptr<Workload>
    makeWorkloadForParam()
    {
        RenderParams params;
        params.width = 20;
        params.height = 20;
        params.spp = 1;
        params.max_bounces = 2;
        return prepareWorkload(GetParam().id, ScaleProfile::Tiny,
                               &params);
    }
};

TEST_P(PipelineTest, AllConfigurationsAgreeWithOracle)
{
    auto workload = makeWorkloadForParam();
    const StackConfig configs[] = {
        StackConfig::baseline(8), StackConfig::baseline(2),
        StackConfig::rbFull(),    StackConfig::withSh(8, 8),
        StackConfig::sms(),       StackConfig::sms(4, 16),
    };
    uint64_t instructions = 0;
    for (const StackConfig &config : configs) {
        SimResult r = runWorkload(*workload, makeGpuConfig(config));
        EXPECT_EQ(r.mismatches, 0u) << config.name();
        if (instructions == 0)
            instructions = r.instructions;
        // Functional behaviour (and thus the rendered image) is
        // configuration-independent by construction; the instruction
        // stream must be too.
        EXPECT_EQ(r.instructions, instructions) << config.name();
    }
}

TEST_P(PipelineTest, HierarchyOrderingHolds)
{
    // FULL >= SMS >= SH-only >= baseline in IPC (allowing a small
    // tolerance for timing noise on tiny workloads).
    auto workload = makeWorkloadForParam();
    double base =
        runWorkload(*workload, makeGpuConfig(StackConfig::baseline(8)))
            .ipc();
    double sh =
        runWorkload(*workload, makeGpuConfig(StackConfig::withSh(8, 8)))
            .ipc();
    double full =
        runWorkload(*workload, makeGpuConfig(StackConfig::rbFull()))
            .ipc();
    EXPECT_GE(sh, base * 0.97) << "SH stack should not hurt much";
    EXPECT_GE(full, base * 0.99) << "RB_FULL is the upper bound";
    EXPECT_GE(full, sh * 0.97);
}

TEST_P(PipelineTest, OffchipStackTrafficEliminatedBySufficientSh)
{
    auto workload = makeWorkloadForParam();
    SimResult base =
        runWorkload(*workload, makeGpuConfig(StackConfig::baseline(8)));
    SimResult big_sh = runWorkload(
        *workload, makeGpuConfig(StackConfig::withSh(8, 16)));
    // Stack-class DRAM traffic must shrink (usually to zero) once the
    // SH stack covers the depth profile.
    EXPECT_LE(big_sh.dram.by_class[(int)TrafficClass::Stack],
              base.dram.by_class[(int)TrafficClass::Stack]);
    EXPECT_LE(big_sh.stack.global_stores, base.stack.global_stores);
}

INSTANTIATE_TEST_SUITE_P(
    Scenes, PipelineTest,
    ::testing::Values(ScenePoint{SceneId::SHIP, "SHIP"},
                      ScenePoint{SceneId::BUNNY, "BUNNY"},
                      ScenePoint{SceneId::CHSNT, "CHSNT"},
                      ScenePoint{SceneId::WKND, "WKND"}),
    [](const auto &info) { return std::string(info.param.label); });

TEST(Integration, SweepAcrossRbSizesIsMonotonicInSpills)
{
    RenderParams params;
    params.width = 20;
    params.height = 20;
    auto workload =
        prepareWorkload(SceneId::SHIP, ScaleProfile::Tiny, &params);
    uint64_t previous_spills = UINT64_MAX;
    for (uint32_t rb : {2u, 4u, 8u, 16u, 32u}) {
        SimResult r = runWorkload(*workload,
                                  makeGpuConfig(StackConfig::baseline(rb)));
        EXPECT_LE(r.stack.rb_spills, previous_spills) << "RB_" << rb;
        previous_spills = r.stack.rb_spills;
    }
}

TEST(Integration, SmsRecoversSmallRbPerformance)
{
    // Fig. 15's qualitative claim: RB_2+SMS beats plain RB_2 and the
    // SMS configs dramatically cut its off-chip traffic.
    RenderParams params;
    params.width = 20;
    params.height = 20;
    auto workload =
        prepareWorkload(SceneId::SHIP, ScaleProfile::Tiny, &params);
    SimResult rb2 =
        runWorkload(*workload, makeGpuConfig(StackConfig::baseline(2)));
    SimResult rb2_sms =
        runWorkload(*workload, makeGpuConfig(StackConfig::sms(2, 8)));
    EXPECT_GT(rb2_sms.ipc(), rb2.ipc());
    EXPECT_LT(rb2_sms.offchip_accesses, rb2.offchip_accesses);
}

TEST(Integration, StackDepthHistogramMatchesReferenceCounters)
{
    // The simulator's depth histogram must count exactly one sample
    // per push/pop the stack model performed.
    RenderParams params;
    params.width = 16;
    params.height = 16;
    auto workload =
        prepareWorkload(SceneId::BUNNY, ScaleProfile::Tiny, &params);
    SimResult r =
        runWorkload(*workload, makeGpuConfig(StackConfig::baseline(8)));
    EXPECT_EQ(r.depth_hist.total(), r.stack.pushes + r.stack.pops);
}

TEST(Integration, SharedMemoryNeverUsedWithoutShStack)
{
    RenderParams params;
    params.width = 16;
    params.height = 16;
    auto workload =
        prepareWorkload(SceneId::CHSNT, ScaleProfile::Tiny, &params);
    for (uint32_t rb : {2u, 8u}) {
        SimResult r = runWorkload(*workload,
                                  makeGpuConfig(StackConfig::baseline(rb)));
        EXPECT_EQ(r.shared_mem.accesses, 0u);
        EXPECT_EQ(r.shared_mem.conflict_cycles, 0u);
    }
}

TEST(Integration, WorkloadPreparationIsDeterministic)
{
    auto a = prepareWorkload(SceneId::REF, ScaleProfile::Tiny);
    auto b = prepareWorkload(SceneId::REF, ScaleProfile::Tiny);
    EXPECT_EQ(a->render.film.contentHash(), b->render.film.contentHash());
    EXPECT_EQ(a->render.jobs.size(), b->render.jobs.size());
    EXPECT_EQ(a->bvh.nodes().size(), b->bvh.nodes().size());
}

} // namespace
} // namespace sms
