/**
 * @file
 * Tests for Histogram merge and reconstruction: merging the histograms
 * of a split sample stream must equal the histogram of the whole
 * stream (the property the sharded sweep merge relies on), merges must
 * be order-invariant, fromBuckets() must round-trip the serialized
 * bucket counts exactly, and mismatched bucket counts must be refused.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/stats/histogram.hpp"

namespace sms {
namespace {

/** Deterministic pseudo-random sample stream (LCG; no libc rand). */
class SampleStream
{
  public:
    explicit SampleStream(uint64_t seed) : state_(seed) {}

    uint32_t
    next(uint32_t bound)
    {
        state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<uint32_t>((state_ >> 33) % bound);
    }

  private:
    uint64_t state_;
};

void
expectIdentical(const Histogram &a, const Histogram &b)
{
    ASSERT_EQ(a.bucketCount(), b.bucketCount());
    EXPECT_EQ(a.total(), b.total());
    EXPECT_EQ(a.maxSeen(), b.maxSeen());
    EXPECT_DOUBLE_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.median(), b.median());
    EXPECT_EQ(a.p50(), b.p50());
    EXPECT_EQ(a.p90(), b.p90());
    EXPECT_EQ(a.p99(), b.p99());
    for (uint32_t v = 0; v < a.bucketCount(); ++v)
        EXPECT_EQ(a.bucket(v), b.bucket(v)) << "bucket " << v;
}

TEST(HistogramMerge, MergeOfSplitsEqualsWhole)
{
    // Split one sample stream round-robin across three histograms; the
    // merge of the splits must match the whole on every bucket and
    // every derived statistic. This is exactly how shard workers split
    // the depth samples of a sweep.
    Histogram whole(63);
    Histogram splits[3] = {Histogram(63), Histogram(63), Histogram(63)};
    SampleStream stream(0x5eed);
    for (int i = 0; i < 10000; ++i) {
        // Mostly in range, some saturating beyond the last bucket.
        uint32_t v = stream.next(80);
        whole.add(v);
        splits[i % 3].add(v);
    }

    Histogram merged(63);
    for (const Histogram &part : splits)
        merged.merge(part);
    expectIdentical(merged, whole);
}

TEST(HistogramMerge, OrderInvariant)
{
    Histogram parts[3] = {Histogram(31), Histogram(31), Histogram(31)};
    SampleStream stream(7);
    for (int i = 0; i < 3000; ++i)
        parts[i % 3].add(stream.next(40));

    Histogram forward(31);
    forward.merge(parts[0]);
    forward.merge(parts[1]);
    forward.merge(parts[2]);
    Histogram backward(31);
    backward.merge(parts[2]);
    backward.merge(parts[1]);
    backward.merge(parts[0]);
    expectIdentical(forward, backward);
}

TEST(HistogramMerge, EmptyMergeIsIdentity)
{
    Histogram h(15);
    SampleStream stream(42);
    for (int i = 0; i < 100; ++i)
        h.add(stream.next(16));
    Histogram before(15);
    before.merge(h);
    h.merge(Histogram(15));
    expectIdentical(h, before);
}

TEST(HistogramMerge, PercentilesStableAcrossSplitCounts)
{
    // The same stream split 2-way and 5-way must merge to the same
    // percentiles (the merge result cannot depend on shard count).
    SampleStream stream(99);
    std::vector<uint32_t> samples;
    for (int i = 0; i < 5000; ++i)
        samples.push_back(stream.next(64));

    auto mergeSplit = [&](size_t ways) {
        std::vector<Histogram> parts(ways, Histogram(63));
        for (size_t i = 0; i < samples.size(); ++i)
            parts[i % ways].add(samples[i]);
        Histogram merged(63);
        for (const Histogram &part : parts)
            merged.merge(part);
        return merged;
    };
    expectIdentical(mergeSplit(2), mergeSplit(5));
}

TEST(HistogramFromBuckets, RoundTripIsExact)
{
    Histogram h(63);
    SampleStream stream(0xabcd);
    for (int i = 0; i < 4000; ++i)
        h.add(stream.next(70));

    std::vector<uint64_t> counts;
    for (uint32_t v = 0; v < h.bucketCount(); ++v)
        counts.push_back(h.bucket(v));
    Histogram rebuilt = Histogram::fromBuckets(counts, h.bucketCount());
    expectIdentical(rebuilt, h);
}

TEST(HistogramFromBuckets, ShortCountsAreZeroPadded)
{
    // JSONL blocks trim trailing zero buckets; reconstruction must
    // restore the full bucket count.
    Histogram h(63);
    h.add(1);
    h.add(1);
    h.add(5);
    std::vector<uint64_t> trimmed = {0, 2, 0, 0, 0, 1};
    Histogram rebuilt = Histogram::fromBuckets(trimmed, 64);
    expectIdentical(rebuilt, h);
}

TEST(HistogramFromBuckets, EmptyCountsGiveEmptyHistogram)
{
    Histogram rebuilt = Histogram::fromBuckets({}, 8);
    EXPECT_EQ(rebuilt.total(), 0u);
    EXPECT_EQ(rebuilt.bucketCount(), 8u);
    EXPECT_DOUBLE_EQ(rebuilt.mean(), 0.0);
    EXPECT_EQ(rebuilt.p99(), 0u);
}

TEST(HistogramMergeDeathTest, BucketCountMismatchIsRefused)
{
    Histogram a(63);
    Histogram b(31);
    EXPECT_DEATH(a.merge(b),
                 "merging histograms with different bucket counts");
}

TEST(HistogramFromBucketsDeathTest, OverflowingCountsAreRefused)
{
    std::vector<uint64_t> counts(10, 1);
    EXPECT_DEATH(Histogram::fromBuckets(counts, 4), "fromBuckets");
}

} // namespace
} // namespace sms
