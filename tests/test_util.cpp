/**
 * @file
 * Unit tests for src/util and src/stats: formatting, RNG determinism,
 * histograms, summary statistics and the table printer.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include "src/stats/histogram.hpp"
#include "src/stats/report.hpp"
#include "src/stats/table.hpp"
#include "src/util/check.hpp"
#include "src/util/parallel.hpp"
#include "src/util/rng.hpp"

namespace sms {
namespace {

TEST(Strprintf, FormatsLikePrintf)
{
    EXPECT_EQ(strprintf("abc"), "abc");
    EXPECT_EQ(strprintf("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(strprintf("%.2f", 3.14159), "3.14");
    EXPECT_EQ(strprintf(""), "");
}

TEST(Strprintf, LongStringsDoNotTruncate)
{
    std::string big(10000, 'a');
    std::string out = strprintf("%s!", big.c_str());
    EXPECT_EQ(out.size(), big.size() + 1);
    EXPECT_EQ(out.back(), '!');
}

TEST(Pcg32, DeterministicStream)
{
    Pcg32 a(123, 7);
    Pcg32 b(123, 7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.nextU32(), b.nextU32());
}

TEST(Pcg32, DifferentSeedsDiffer)
{
    Pcg32 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.nextU32() == b.nextU32() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Pcg32, FloatRange)
{
    Pcg32 rng(99);
    for (int i = 0; i < 10000; ++i) {
        float f = rng.nextFloat();
        EXPECT_GE(f, 0.0f);
        EXPECT_LT(f, 1.0f);
    }
}

TEST(Pcg32, RangeRespectsBounds)
{
    Pcg32 rng(5);
    for (int i = 0; i < 10000; ++i) {
        float f = rng.nextRange(-3.0f, 7.0f);
        EXPECT_GE(f, -3.0f);
        EXPECT_LT(f, 7.0f);
    }
}

TEST(Pcg32, BoundedIsUnbiasedEnough)
{
    Pcg32 rng(31337);
    constexpr uint32_t kBound = 7;
    uint64_t counts[kBound] = {};
    constexpr int kSamples = 70000;
    for (int i = 0; i < kSamples; ++i) {
        uint32_t v = rng.nextBounded(kBound);
        ASSERT_LT(v, kBound);
        ++counts[v];
    }
    for (uint64_t c : counts) {
        EXPECT_GT(c, kSamples / kBound * 0.9);
        EXPECT_LT(c, kSamples / kBound * 1.1);
    }
}

TEST(Pcg32, BoundedEdgeCases)
{
    Pcg32 rng(1);
    EXPECT_EQ(rng.nextBounded(0), 0u);
    EXPECT_EQ(rng.nextBounded(1), 0u);
}

TEST(Splitmix64, AvalanchesNearbyKeys)
{
    std::set<uint64_t> outputs;
    for (uint64_t i = 0; i < 1000; ++i)
        outputs.insert(splitmix64(i));
    EXPECT_EQ(outputs.size(), 1000u);
}

TEST(Histogram, BasicCounting)
{
    Histogram h(15);
    h.add(0);
    h.add(3);
    h.add(3);
    h.add(15);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.maxSeen(), 15u);
    EXPECT_DOUBLE_EQ(h.mean(), (0 + 3 + 3 + 15) / 4.0);
}

TEST(Histogram, SaturatesAtLastBucket)
{
    Histogram h(7);
    h.add(100);
    EXPECT_EQ(h.bucket(7), 1u);
    // The sample is clamped *before* any statistic is credited, so
    // maxSeen reports the saturated bucket, not the raw value.
    EXPECT_EQ(h.maxSeen(), 7u);
    EXPECT_EQ(h.percentile(100.0), 7u);
    EXPECT_DOUBLE_EQ(h.mean(), 7.0);
}

TEST(Histogram, SaturatedMeanAgreesWithPercentiles)
{
    // Regression: out-of-range samples used to credit their raw value
    // into the sum while the bucket counts clamped, so mean() could
    // exceed the largest value percentile() can ever return. Every
    // statistic must describe the same clamped distribution.
    Histogram h(7);
    for (uint32_t v : {3u, 50u, 100u, 1000u})
        h.add(v);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.bucket(7), 3u);
    EXPECT_EQ(h.maxSeen(), 7u);
    // Clamped samples are 3, 7, 7, 7.
    EXPECT_DOUBLE_EQ(h.mean(), 6.0);
    EXPECT_EQ(h.median(), 7u);
    EXPECT_EQ(h.p50(), 7u);
    EXPECT_EQ(h.p99(), 7u);
    EXPECT_LE(h.mean(), static_cast<double>(h.percentile(100.0)));
}

TEST(Histogram, Median)
{
    Histogram h(31);
    for (uint32_t v : {1u, 2u, 2u, 3u, 9u})
        h.add(v);
    EXPECT_EQ(h.median(), 2u);
    Histogram empty(31);
    EXPECT_EQ(empty.median(), 0u);
}

TEST(Histogram, PercentilesMatchNearestRankReference)
{
    // Nearest-rank definition: the smallest value whose cumulative
    // count reaches ceil(p/100 * n), computed here from the sorted
    // sample list directly.
    std::vector<uint32_t> samples = {1, 2, 2, 3, 5, 8, 8, 9, 13, 40};
    Histogram h(63);
    for (uint32_t v : samples)
        h.add(v);
    auto reference = [&](double p) {
        size_t rank = static_cast<size_t>(
            std::ceil(p / 100.0 * static_cast<double>(samples.size())));
        if (rank < 1)
            rank = 1;
        return samples[rank - 1]; // samples are sorted
    };
    for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0})
        EXPECT_EQ(h.percentile(p), reference(p)) << "p" << p;
    EXPECT_EQ(h.p50(), reference(50.0));
    EXPECT_EQ(h.p90(), reference(90.0));
    EXPECT_EQ(h.p99(), reference(99.0));
}

TEST(Histogram, PercentileEdgeCases)
{
    Histogram empty(15);
    EXPECT_EQ(empty.percentile(50.0), 0u);

    Histogram one(15);
    one.add(7);
    for (double p : {0.0, 1.0, 50.0, 100.0, 250.0})
        EXPECT_EQ(one.percentile(p), 7u) << "p" << p;

    // Even sample count: percentile(50) is the upper median while
    // median() keeps returning the lower median.
    Histogram even(15);
    for (uint32_t v : {1u, 2u, 3u, 4u})
        even.add(v);
    EXPECT_EQ(even.median(), 2u);
    EXPECT_EQ(even.percentile(50.0), 2u); // ceil(0.5*4)=2nd sample
    EXPECT_EQ(even.percentile(75.0), 3u);
    EXPECT_EQ(even.percentile(76.0), 4u);

    // Saturating bucket: samples beyond the range still rank.
    Histogram sat(7);
    sat.add(3);
    sat.add(100);
    EXPECT_EQ(sat.percentile(99.0), 7u); // clamped into last bucket
}

TEST(Histogram, PercentilesSurviveJsonEmission)
{
    Histogram h(31);
    for (uint32_t v : {1u, 2u, 2u, 3u, 9u})
        h.add(v);
    JsonValue j = toJson(h);
    EXPECT_EQ(j.numberOr("p50", 0), static_cast<double>(h.p50()));
    EXPECT_EQ(j.numberOr("p90", 0), static_cast<double>(h.p90()));
    EXPECT_EQ(j.numberOr("p99", 0), static_cast<double>(h.p99()));
    EXPECT_EQ(j.numberOr("median", 0), static_cast<double>(h.median()));
}

TEST(Histogram, RangeQueries)
{
    Histogram h(31);
    for (uint32_t v = 0; v < 20; ++v)
        h.add(v);
    EXPECT_EQ(h.countInRange(9, 16), 8u);
    EXPECT_DOUBLE_EQ(h.fractionInRange(0, 8), 9.0 / 20.0);
    EXPECT_EQ(h.countInRange(100, 200), 0u);
}

TEST(Histogram, MergeAccumulates)
{
    Histogram a(15), b(15);
    a.add(2);
    b.add(2);
    b.add(14);
    a.merge(b);
    EXPECT_EQ(a.total(), 3u);
    EXPECT_EQ(a.bucket(2), 2u);
    EXPECT_EQ(a.maxSeen(), 14u);
}

TEST(RunningStat, TracksMinMeanMax)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    s.add(2.0);
    s.add(-1.0);
    s.add(5.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.min(), -1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(Geomean, MatchesClosedForm)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(geomean({1.0, 2.0, 4.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Table, RendersAlignedColumns)
{
    Table t;
    t.setHeader({"a", "bbbb"});
    t.addRow({"xx", "y"});
    std::string out = t.render();
    EXPECT_NE(out.find("a   bbbb"), std::string::npos);
    EXPECT_NE(out.find("xx  y"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::pct(0.231), "+23.1%");
    EXPECT_EQ(Table::pct(-0.05), "-5.0%");
}

TEST(ParallelFor, VisitsEveryIndexOnce)
{
    for (unsigned threads : {1u, 2u, 7u}) {
        for (size_t chunk : {size_t(1), size_t(3), size_t(100)}) {
            std::vector<std::atomic<int>> visits(57);
            parallelFor(
                visits.size(), [&](size_t i) { ++visits[i]; }, threads,
                chunk);
            for (const auto &v : visits)
                EXPECT_EQ(v.load(), 1) << "threads=" << threads
                                       << " chunk=" << chunk;
        }
    }
}

TEST(ParallelFor, ZeroIterationsIsANoop)
{
    bool called = false;
    parallelFor(0, [&](size_t) { called = true; }, 4);
    EXPECT_FALSE(called);
}

TEST(ParallelFor, WorkerExceptionRethrownOnCaller)
{
    // Pre-fix behaviour was std::terminate; now the first exception
    // must surface on the calling thread after all workers joined.
    for (unsigned threads : {1u, 4u}) {
        EXPECT_THROW(
            parallelFor(
                100,
                [&](size_t i) {
                    if (i == 13)
                        throw std::runtime_error("boom");
                },
                threads),
            std::runtime_error);
    }
}

TEST(ParallelFor, ExceptionAbandonsRemainingIterations)
{
    std::atomic<size_t> executed{0};
    try {
        parallelFor(
            100000,
            [&](size_t) {
                ++executed;
                throw std::runtime_error("first");
            },
            4);
        FAIL() << "expected rethrow";
    } catch (const std::runtime_error &) {
    }
    // Workers drain out after the failure; far fewer than all
    // iterations may run (each live worker can finish at most its
    // current chunk).
    EXPECT_LT(executed.load(), 100000u);
}

TEST(ParallelFor, ChunkedResultsMatchUnchunked)
{
    std::vector<uint64_t> a(1000), b(1000);
    parallelFor(a.size(), [&](size_t i) { a[i] = i * i; }, 4, 1);
    parallelFor(b.size(), [&](size_t i) { b[i] = i * i; }, 4, 64);
    EXPECT_EQ(a, b);
}

TEST(ParallelFor, ThrowMidChunkRethrownAndIndexValid)
{
    // A throw from the middle of a claimed chunk must surface on the
    // caller like any other worker throw, and the thrower's chunk must
    // stop at the throwing index (no later iteration of that chunk may
    // run). Stress across chunk sizes and repeated rounds to shake out
    // racy variants of the drain-out path.
    for (size_t chunk : {size_t(2), size_t(16), size_t(64)}) {
        for (int round = 0; round < 8; ++round) {
            constexpr size_t kN = 4096;
            std::vector<std::atomic<int>> visits(kN);
            const size_t bad = 1000 + static_cast<size_t>(round) * 17;
            try {
                parallelFor(
                    kN,
                    [&](size_t i) {
                        ++visits[i];
                        if (i == bad)
                            throw std::runtime_error("mid-chunk");
                    },
                    4, chunk);
                FAIL() << "expected rethrow (chunk=" << chunk << ")";
            } catch (const std::runtime_error &e) {
                EXPECT_STREQ(e.what(), "mid-chunk");
            }
            // The throwing index ran exactly once; indices after it in
            // the same chunk were abandoned.
            EXPECT_EQ(visits[bad].load(), 1);
            size_t chunk_end = (bad / chunk + 1) * chunk;
            for (size_t i = bad + 1; i < chunk_end && i < kN; ++i)
                EXPECT_EQ(visits[i].load(), 0)
                    << "index " << i << " ran after its chunk threw";
            // Nothing ever runs twice, even while workers drain out.
            for (size_t i = 0; i < kN; ++i)
                EXPECT_LE(visits[i].load(), 1);
        }
    }
}

TEST(ParallelFor, ThreadsClampedToChunksStillThrows)
{
    // More threads than chunks (the pre-fix clamp bug territory): the
    // clamp must leave at least one worker and exceptions still
    // propagate. n=60, chunk=100 -> a single chunk, serial path.
    std::atomic<int> ran{0};
    EXPECT_THROW(
        parallelFor(
            60,
            [&](size_t i) {
                ++ran;
                if (i == 30)
                    throw std::logic_error("single-chunk");
            },
            16, 100),
        std::logic_error);
    EXPECT_EQ(ran.load(), 31);
}

} // namespace
} // namespace sms
