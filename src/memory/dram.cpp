/**
 * @file
 * Out-of-line anchor for the Dram translation unit.
 */

#include "src/memory/dram.hpp"

namespace sms {

// Dram is header-only today; this file anchors the library target.

} // namespace sms
