/**
 * @file
 * Global-memory hierarchy implementation.
 */

#include "src/memory/memory_system.hpp"

#include "src/stats/timeline.hpp"
#include "src/util/check.hpp"

namespace sms {

MemorySystem::MemorySystem(const MemoryHierarchyConfig &config,
                           uint32_t num_sms)
    : config_(config)
{
    SMS_ASSERT(num_sms > 0, "need at least one SM");
    SMS_ASSERT(config.l1_ports > 0 && config.l2_ports > 0,
               "port widths must be positive");
    l1s_.reserve(num_sms);
    for (uint32_t i = 0; i < num_sms; ++i)
        l1s_.push_back(std::make_unique<Cache>(config.l1));
    l1_port_free_.resize(num_sms, 0);
    l1_slot_credit_.resize(num_sms, 0);
    l2_ = std::make_unique<Cache>(config.l2);
    dram_ = std::make_unique<Dram>(config.dram);
}

Cycle
MemorySystem::l2PortGrant(Cycle at)
{
    Cycle start = at > l2_port_free_ ? at : l2_port_free_;
    l2_port_free_ = start + 1;
    if (l2_slot_credit_ + 1 < config_.l2_ports) {
        ++l2_slot_credit_;
        l2_port_free_ = start;
    } else {
        l2_slot_credit_ = 0;
    }
    return start;
}

Cycle
MemorySystem::accessLine(uint32_t sm, Addr line_addr, bool write,
                         TrafficClass cls, Cycle now,
                         MemAccessBreakdown *breakdown)
{
    SMS_ASSERT(sm < l1s_.size(), "SM index %u out of range", sm);
    SMS_ASSERT(line_addr % kLineBytes == 0, "unaligned line address");
    if (breakdown)
        *breakdown = MemAccessBreakdown{};

    // L1 port arbitration: a multi-ported pipeline modeled as a
    // running slot counter (start cycle never runs ahead of the
    // backlog the port can absorb).
    Cycle start = now > l1_port_free_[sm] ? now : l1_port_free_[sm];
    l1_port_free_[sm] = start + 1;
    // Multi-port: allow l1_ports lookups per cycle by crediting back.
    if (l1_slot_credit_[sm] + 1 < config_.l1_ports) {
        ++l1_slot_credit_[sm];
        l1_port_free_[sm] = start;
    } else {
        l1_slot_credit_[sm] = 0;
    }

    Cache::Result l1r = l1s_[sm]->access(line_addr, write, cls);
    if (l1r.hit) {
        if (l1r.evicted_dirty) {
            // Cannot happen on a hit, but keep the invariant visible.
            panic("dirty eviction reported on an L1 hit");
        }
        if (write) {
            // Write-through: the store also updates the L2 (bandwidth
            // only; stores never gate progress).
            Cycle wt_start = l2PortGrant(start);
            Cache::Result wt = l2_->access(line_addr, true, cls);
            if (wt.evicted_dirty)
                dram_->access(wt_start, true, cls);
        }
        if (breakdown) {
            breakdown->port_wait = start - now;
            breakdown->hit_base = config_.l1_latency;
        }
        return start + config_.l1_latency;
    }

    // L1 writeback of the evicted dirty line: consumes L2 (and possibly
    // DRAM) bandwidth but does not delay the demand request.
    if (l1r.evicted_dirty) {
        Cycle wb_start = l2PortGrant(start);
        Cache::Result wb = l2_->access(l1r.evicted_line, true, cls);
        if (!wb.hit)
            dram_->access(wb_start, true, cls);
        if (wb.evicted_dirty)
            dram_->access(wb_start, true, cls);
    }

    // Demand request goes to the L2.
    Cycle l2_start = l2PortGrant(start);
    Cache::Result l2r = l2_->access(line_addr, write, cls);
    if (l2r.evicted_dirty)
        dram_->access(l2_start, true, cls);
    if (l2r.hit) {
        if (timelineOn(TimelineCategory::Cache))
            timelineSpan(TimelineCategory::Cache, "l1_miss", start,
                         config_.l2_latency,
                         static_cast<uint64_t>(cls), "class");
        if (breakdown) {
            breakdown->port_wait = start - now;
            breakdown->hit_base = config_.l1_latency;
            breakdown->l1_miss_extra =
                config_.l2_latency - config_.l1_latency;
        }
        return start + config_.l2_latency;
    }

    // L2 miss: fetch the line from DRAM. A store that misses still
    // fetches (write-allocate).
    Cycle dram_queue = 0;
    Cycle data_ready = dram_->access(l2_start, false, cls, &dram_queue);
    Cycle done = data_ready + (config_.l2_latency - config_.l1_latency);
    if (timelineOn(TimelineCategory::Cache))
        timelineSpan(TimelineCategory::Cache, "l2_miss", start,
                     done - start, static_cast<uint64_t>(cls), "class");
    if (breakdown) {
        breakdown->port_wait = (start - now) + (l2_start - start);
        breakdown->l1_miss_extra =
            config_.l2_latency - config_.l1_latency;
        breakdown->dram_queue = dram_queue;
        breakdown->l2_miss_serve = done - now - breakdown->total();
    }
    return done;
}

Cycle
MemorySystem::accessRange(uint32_t sm, Addr addr, uint64_t bytes,
                          bool write, TrafficClass cls, Cycle now)
{
    uint32_t lines = linesCovering(addr, bytes);
    Cycle done = now;
    Addr line = lineAlign(addr);
    for (uint32_t i = 0; i < lines; ++i) {
        Cycle c = accessLine(sm, line + i * (Addr)kLineBytes, write, cls,
                             now);
        if (c > done)
            done = c;
    }
    return done;
}

} // namespace sms
