/**
 * @file
 * Banked shared-memory timing model.
 *
 * Shared memory is split into kBanks banks of kBankWordBytes words
 * (32 x 4 B, as on NVIDIA SMs). A warp-level access completes in one
 * pass when every lane touches a different bank; lanes touching
 * different words of the same bank serialize, adding one cycle per
 * extra word — the delay the paper's skewed bank access (Fig. 14)
 * attacks.
 */

#ifndef SMS_MEMORY_SHARED_MEMORY_HPP
#define SMS_MEMORY_SHARED_MEMORY_HPP

#include <cstdint>
#include <vector>

#include "src/memory/request.hpp"

namespace sms {

/** Number of shared-memory banks per SM. */
constexpr uint32_t kSharedBanks = 32;
/** Bank word width in bytes. */
constexpr uint32_t kBankWordBytes = 4;

/** Bank index of a shared-memory byte address. */
constexpr uint32_t
sharedBankOf(Addr addr)
{
    return static_cast<uint32_t>((addr / kBankWordBytes) % kSharedBanks);
}

/** Shared-memory access statistics. */
struct SharedMemStats
{
    uint64_t accesses = 0;        ///< warp-level accesses
    uint64_t lane_requests = 0;   ///< per-lane requests
    uint64_t conflict_cycles = 0; ///< extra cycles from bank conflicts
    uint64_t conflict_passes = 0; ///< total serialization passes issued
    uint64_t conflicted_accesses = 0; ///< accesses needing > 1 pass
    uint32_t max_passes = 0;      ///< worst single-access serialization

    double
    avgConflictDelay() const
    {
        return accesses ? static_cast<double>(conflict_cycles) / accesses
                        : 0.0;
    }
};

/** One lane's contribution to a warp-level shared-memory access. */
struct SharedLaneRequest
{
    uint32_t lane;
    Addr addr;   ///< byte address of the 8 B stack entry
    uint32_t bytes = 8;
};

/**
 * Exact timing split of one warp-level shared access, for cycle
 * accounting: completion - issue == pipeline_wait + (passes - 1) +
 * base latency (zero for an empty access).
 */
struct SharedAccessInfo
{
    Cycle pipeline_wait = 0; ///< cycles the pipeline was still busy
    uint32_t passes = 0;     ///< serialization passes (1 = conflict-free)
};

/**
 * Shared-memory timing model for one SM.
 */
class SharedMemory
{
  public:
    /** @param base_latency pipeline latency of a conflict-free access */
    explicit SharedMemory(Cycle base_latency = 20)
        : base_latency_(base_latency)
    {}

    /**
     * Compute the serialization cost of one warp-level access.
     *
     * @return number of passes required (>= 1 for a non-empty access);
     *         passes - 1 is the conflict delay
     */
    static uint32_t
    conflictPasses(const std::vector<SharedLaneRequest> &lanes);

    /**
     * Issue a warp-level access at @p now.
     *
     * @param info when non-null, receives the exact timing split
     * @return completion cycle of the whole access
     */
    Cycle access(Cycle now, const std::vector<SharedLaneRequest> &lanes,
                 SharedAccessInfo *info = nullptr);

    const SharedMemStats &stats() const { return stats_; }

  private:
    Cycle base_latency_;
    Cycle next_free_ = 0;
    SharedMemStats stats_;
};

} // namespace sms

#endif // SMS_MEMORY_SHARED_MEMORY_HPP
