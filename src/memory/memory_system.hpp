/**
 * @file
 * Glue for the global-memory path: per-SM L1D caches in front of a
 * shared L2 and a bandwidth-limited DRAM (Table I hierarchy).
 */

#ifndef SMS_MEMORY_MEMORY_SYSTEM_HPP
#define SMS_MEMORY_MEMORY_SYSTEM_HPP

#include <memory>
#include <vector>

#include "src/memory/cache.hpp"
#include "src/memory/dram.hpp"
#include "src/memory/request.hpp"

namespace sms {

/** Parameters of the full global-memory hierarchy. */
struct MemoryHierarchyConfig
{
    CacheConfig l1{64 * 1024, 0, kLineBytes}; ///< fully associative
    Cycle l1_latency = 20;
    /**
     * Line lookups the SM's L1 can start per cycle (the RT unit's
     * fetcher is wide: a warp's node fetch issues many sectors).
     */
    uint32_t l1_ports = 4;

    CacheConfig l2{3 * 1024 * 1024, 16, kLineBytes};
    Cycle l2_latency = 160; ///< total latency of an L1-miss/L2-hit
    /** Line services the shared L2 can start per cycle. */
    uint32_t l2_ports = 4;

    DramConfig dram;
};

/**
 * Exact decomposition of one accessLine() completion time, for cycle
 * accounting: the fields sum to (data-ready cycle - issue cycle) with
 * zero epsilon on every service path.
 *
 *  - L1 hit:            port_wait + hit_base (= l1_latency)
 *  - L1 miss / L2 hit:  port_wait + hit_base + l1_miss_extra
 *                       (= l2_latency - l1_latency)
 *  - L2 miss:           port_wait (L1 + L2 port grants) + l1_miss_extra
 *                       + dram_queue + l2_miss_serve (= access_latency);
 *                       this path carries no hit_base — the model's
 *                       completion time doesn't include one.
 *
 * Writeback / eviction traffic consumes bandwidth but never delays the
 * request itself, so it does not appear here (its cost surfaces as
 * later requests' port/queue waits).
 */
struct MemAccessBreakdown
{
    Cycle port_wait = 0;     ///< L1 (and L2) port arbitration waits
    Cycle hit_base = 0;      ///< baseline L1 hit latency
    Cycle l1_miss_extra = 0; ///< beyond-L1 latency of a miss
    Cycle dram_queue = 0;    ///< DRAM service-slot queueing
    Cycle l2_miss_serve = 0; ///< DRAM access latency

    Cycle
    total() const
    {
        return port_wait + hit_base + l1_miss_extra + dram_queue +
               l2_miss_serve;
    }
};

/**
 * The global-memory path for all SMs.
 *
 * accessLine()/accessRange() return the completion cycle of a request
 * issued at a given cycle, updating cache state in issue order — the
 * caller (the simulator's event loop) is responsible for calling in
 * non-decreasing time order.
 */
class MemorySystem
{
  public:
    MemorySystem(const MemoryHierarchyConfig &config, uint32_t num_sms);

    /**
     * Access one line from SM @p sm. @return data-ready cycle.
     * @param breakdown when non-null, receives the exact latency split
     *        of this access (see MemAccessBreakdown).
     */
    Cycle accessLine(uint32_t sm, Addr line_addr, bool write,
                     TrafficClass cls, Cycle now,
                     MemAccessBreakdown *breakdown = nullptr);

    /**
     * Access an arbitrary byte range (split into line requests issued
     * back-to-back on the SM's L1 port). @return last completion cycle.
     */
    Cycle accessRange(uint32_t sm, Addr addr, uint64_t bytes, bool write,
                      TrafficClass cls, Cycle now);

    const Cache &l1(uint32_t sm) const { return *l1s_[sm]; }
    const Cache &l2() const { return *l2_; }
    const Dram &dram() const { return *dram_; }

    /** Total off-chip (DRAM) accesses, the paper's Fig. 15b metric. */
    uint64_t offchipAccesses() const { return dram_->stats().accesses(); }

  private:
    /** Grant an L2 port slot at or after @p at. */
    Cycle l2PortGrant(Cycle at);

    MemoryHierarchyConfig config_;
    std::vector<std::unique_ptr<Cache>> l1s_;
    std::vector<Cycle> l1_port_free_;
    std::vector<uint32_t> l1_slot_credit_;
    std::unique_ptr<Cache> l2_;
    Cycle l2_port_free_ = 0;
    uint32_t l2_slot_credit_ = 0;
    std::unique_ptr<Dram> dram_;
};

} // namespace sms

#endif // SMS_MEMORY_MEMORY_SYSTEM_HPP
