/**
 * @file
 * Common memory-model types: simulated addresses, cycles, traffic
 * classes and line geometry.
 */

#ifndef SMS_MEMORY_REQUEST_HPP
#define SMS_MEMORY_REQUEST_HPP

#include <cstdint>

namespace sms {

/** Simulated byte address. */
using Addr = uint64_t;

/** Simulated clock cycle. */
using Cycle = uint64_t;

/** Cache line size used throughout the hierarchy. */
constexpr uint32_t kLineBytes = 128;

/** Align an address down to its cache line. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~static_cast<Addr>(kLineBytes - 1);
}

/** Number of lines touched by [addr, addr + bytes). */
constexpr uint32_t
linesCovering(Addr addr, uint64_t bytes)
{
    if (bytes == 0)
        return 0;
    Addr first = lineAlign(addr);
    Addr last = lineAlign(addr + bytes - 1);
    return static_cast<uint32_t>((last - first) / kLineBytes) + 1;
}

/**
 * Why a request exists — lets the statistics separate scene-geometry
 * traffic from traversal-stack spill traffic, the paper's key split.
 */
enum class TrafficClass : uint8_t
{
    Node,      ///< BVH node fetch
    Primitive, ///< leaf primitive fetch
    Stack,     ///< traversal-stack spill/reload
    Predictor, ///< ray-path predictor table probe/update
};

/** Number of TrafficClass values. */
constexpr int kTrafficClassCount = 4;

/** Aggregate counters for one level of the hierarchy. */
struct LevelStats
{
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t load_misses = 0;
    uint64_t store_misses = 0;
    uint64_t writebacks = 0;

    uint64_t accesses() const { return loads + stores; }
    uint64_t misses() const { return load_misses + store_misses; }

    double
    missRate() const
    {
        uint64_t a = accesses();
        return a ? static_cast<double>(misses()) / a : 0.0;
    }
};

} // namespace sms

#endif // SMS_MEMORY_REQUEST_HPP
