/**
 * @file
 * Shared-memory bank-conflict model implementation.
 */

#include "src/memory/shared_memory.hpp"

#include <algorithm>
#include <array>

#include "src/stats/timeline.hpp"
#include "src/util/check.hpp"

namespace sms {

uint32_t
SharedMemory::conflictPasses(const std::vector<SharedLaneRequest> &lanes)
{
    if (lanes.empty())
        return 0;

    // Count distinct words per bank. An 8 B stack entry spans two
    // adjacent 4 B words (two banks). Lanes accessing the *same* word
    // broadcast and cost nothing extra; different words in the same
    // bank serialize.
    std::array<std::vector<Addr>, kSharedBanks> words;
    for (const SharedLaneRequest &req : lanes) {
        SMS_ASSERT(req.bytes % kBankWordBytes == 0,
                   "shared request must be word-aligned in size");
        for (uint32_t off = 0; off < req.bytes; off += kBankWordBytes) {
            Addr word = (req.addr + off) / kBankWordBytes;
            uint32_t bank = static_cast<uint32_t>(word % kSharedBanks);
            words[bank].push_back(word);
        }
    }

    uint32_t passes = 1;
    for (auto &bank_words : words) {
        std::sort(bank_words.begin(), bank_words.end());
        auto end = std::unique(bank_words.begin(), bank_words.end());
        uint32_t distinct =
            static_cast<uint32_t>(end - bank_words.begin());
        passes = std::max(passes, distinct);
    }
    return passes;
}

Cycle
SharedMemory::access(Cycle now, const std::vector<SharedLaneRequest> &lanes,
                     SharedAccessInfo *info)
{
    if (info)
        *info = SharedAccessInfo{};
    if (lanes.empty())
        return now;

    uint32_t passes = conflictPasses(lanes);
    ++stats_.accesses;
    stats_.lane_requests += lanes.size();
    stats_.conflict_cycles += passes - 1;
    stats_.conflict_passes += passes;
    if (passes > 1)
        ++stats_.conflicted_accesses;
    if (passes > stats_.max_passes)
        stats_.max_passes = passes;

    Cycle start = now > next_free_ ? now : next_free_;
    if (info) {
        info->pipeline_wait = start - now;
        info->passes = passes;
    }
    // The access occupies the shared-memory pipeline for one cycle per
    // pass; data returns after the base latency on top of the last pass.
    next_free_ = start + passes;
    if (passes > 1 && timelineOn(TimelineCategory::Shmem))
        timelineSpan(TimelineCategory::Shmem, "bank_conflict", start,
                     passes - 1, passes, "passes");
    return start + passes - 1 + base_latency_;
}

} // namespace sms
