/**
 * @file
 * Cache tag-model implementation.
 */

#include "src/memory/cache.hpp"

#include "src/util/check.hpp"

namespace sms {

namespace {

bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(const CacheConfig &config) : config_(config)
{
    SMS_ASSERT(config.line_bytes > 0 && isPowerOfTwo(config.line_bytes),
               "line size must be a power of two");
    uint64_t total_lines = config.size_bytes / config.line_bytes;
    SMS_ASSERT(total_lines > 0, "cache smaller than one line");

    if (config.ways == 0 || config.ways >= total_lines) {
        // Fully associative: one set holding every line.
        num_sets_ = 1;
        num_ways_ = static_cast<uint32_t>(total_lines);
    } else {
        SMS_ASSERT(total_lines % config.ways == 0,
                   "lines (%llu) not divisible by ways (%u)",
                   static_cast<unsigned long long>(total_lines),
                   config.ways);
        num_ways_ = config.ways;
        // Modulo indexing supports non-power-of-two set counts (the
        // 3 MB / 16-way L2 of Table I has 1536 sets).
        num_sets_ = static_cast<uint32_t>(total_lines / config.ways);
    }
    lines_.resize(static_cast<size_t>(num_sets_) * num_ways_);
}

uint32_t
Cache::setIndex(Addr line_addr) const
{
    return static_cast<uint32_t>((line_addr / config_.line_bytes) %
                                 num_sets_);
}

Cache::Result
Cache::access(Addr line_addr, bool write, TrafficClass cls)
{
    SMS_ASSERT(line_addr % config_.line_bytes == 0,
               "unaligned cache access 0x%llx",
               static_cast<unsigned long long>(line_addr));
    Result result;
    if (write)
        ++stats_.stores;
    else
        ++stats_.loads;

    Line *set = &lines_[static_cast<size_t>(setIndex(line_addr)) *
                        num_ways_];
    ++lru_clock_;

    // Hit path.
    for (uint32_t w = 0; w < num_ways_; ++w) {
        Line &line = set[w];
        if (line.valid && line.tag == line_addr) {
            line.lru = lru_clock_;
            line.dirty = line.dirty || write;
            result.hit = true;
            return result;
        }
    }

    if (write)
        ++stats_.store_misses;
    else
        ++stats_.load_misses;
    ++class_misses_[static_cast<int>(cls)];

    // No-write-allocate caches write around on store misses.
    if (write && !config_.allocate_on_store)
        return result;

    Line *victim = &set[0];
    for (uint32_t w = 0; w < num_ways_; ++w) {
        Line &line = set[w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lru < victim->lru)
            victim = &line;
    }
    if (victim->valid && victim->dirty) {
        result.evicted_dirty = true;
        result.evicted_line = victim->tag;
        ++stats_.writebacks;
    }
    victim->valid = true;
    victim->tag = line_addr;
    victim->dirty = write;
    victim->lru = lru_clock_;
    return result;
}

bool
Cache::probe(Addr line_addr) const
{
    const Line *set = &lines_[static_cast<size_t>(setIndex(line_addr)) *
                              num_ways_];
    for (uint32_t w = 0; w < num_ways_; ++w)
        if (set[w].valid && set[w].tag == line_addr)
            return true;
    return false;
}

void
Cache::reset()
{
    for (Line &line : lines_)
        line = Line();
}

} // namespace sms
