/**
 * @file
 * Cache tag-model implementation.
 *
 * Replacement state is an intrusive doubly-linked recency list per set
 * plus a fill counter; see the header for the equivalence argument
 * against the timestamp formulation of true LRU.
 */

#include "src/memory/cache.hpp"

#include "src/util/check.hpp"

namespace sms {

namespace {

bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(const CacheConfig &config) : config_(config)
{
    SMS_ASSERT(config.line_bytes > 0 && isPowerOfTwo(config.line_bytes),
               "line size must be a power of two");
    uint64_t total_lines = config.size_bytes / config.line_bytes;
    SMS_ASSERT(total_lines > 0, "cache smaller than one line");

    if (config.ways == 0 || config.ways >= total_lines) {
        // Fully associative: one set holding every line.
        num_sets_ = 1;
        num_ways_ = static_cast<uint32_t>(total_lines);
    } else {
        SMS_ASSERT(total_lines % config.ways == 0,
                   "lines (%llu) not divisible by ways (%u)",
                   static_cast<unsigned long long>(total_lines),
                   config.ways);
        num_ways_ = config.ways;
        // Modulo indexing supports non-power-of-two set counts (the
        // 3 MB / 16-way L2 of Table I has 1536 sets).
        num_sets_ = static_cast<uint32_t>(total_lines / config.ways);
    }
    lines_.resize(static_cast<size_t>(num_sets_) * num_ways_);
    sets_.resize(num_sets_);
    use_tag_index_ = num_sets_ == 1;
    if (use_tag_index_)
        tag_index_.reserve(num_ways_ * 2);
}

uint32_t
Cache::setIndex(Addr line_addr) const
{
    return static_cast<uint32_t>((line_addr / config_.line_bytes) %
                                 num_sets_);
}

uint32_t
Cache::findLine(uint32_t set, Addr line_addr) const
{
    if (use_tag_index_) {
        auto it = tag_index_.find(line_addr);
        return it == tag_index_.end() ? kNoWay : it->second;
    }
    uint32_t base = set * num_ways_;
    uint32_t filled = sets_[set].valid_ways;
    for (uint32_t w = 0; w < filled; ++w) {
        const Line &line = lines_[base + w];
        if (line.valid && line.tag == line_addr)
            return base + w;
    }
    return kNoWay;
}

void
Cache::unlink(SetState &set, uint32_t line_index)
{
    Line &line = lines_[line_index];
    if (line.more_recent != kNoWay)
        lines_[line.more_recent].less_recent = line.less_recent;
    else
        set.mru = line.less_recent;
    if (line.less_recent != kNoWay)
        lines_[line.less_recent].more_recent = line.more_recent;
    else
        set.lru = line.more_recent;
    line.more_recent = kNoWay;
    line.less_recent = kNoWay;
}

void
Cache::touchFront(SetState &set, uint32_t line_index)
{
    if (set.mru == line_index)
        return;
    // A line that is linked but not the head always has a more-recent
    // neighbour; a freshly-filled line (both pointers kNoWay) must not
    // be unlinked or it would clobber the list head.
    if (lines_[line_index].more_recent != kNoWay)
        unlink(set, line_index);
    Line &line = lines_[line_index];
    line.less_recent = set.mru;
    if (set.mru != kNoWay)
        lines_[set.mru].more_recent = line_index;
    set.mru = line_index;
    if (set.lru == kNoWay)
        set.lru = line_index;
}

Cache::Result
Cache::access(Addr line_addr, bool write, TrafficClass cls)
{
    SMS_ASSERT(line_addr % config_.line_bytes == 0,
               "unaligned cache access 0x%llx",
               static_cast<unsigned long long>(line_addr));
    Result result;
    if (write)
        ++stats_.stores;
    else
        ++stats_.loads;

    uint32_t set_idx = setIndex(line_addr);
    SetState &set = sets_[set_idx];

    // Hit path.
    uint32_t found = findLine(set_idx, line_addr);
    if (found != kNoWay) {
        Line &line = lines_[found];
        touchFront(set, found);
        line.dirty = line.dirty || write;
        result.hit = true;
        return result;
    }

    if (write)
        ++stats_.store_misses;
    else
        ++stats_.load_misses;
    ++class_misses_[static_cast<int>(cls)];

    // No-write-allocate caches write around on store misses.
    if (write && !config_.allocate_on_store)
        return result;

    uint32_t victim_index;
    if (set.valid_ways < num_ways_) {
        // Invalid ways are consumed in ascending way order (matching
        // the "first invalid way" rule of the timestamp scan).
        victim_index = set_idx * num_ways_ + set.valid_ways;
        ++set.valid_ways;
    } else {
        victim_index = set.lru;
        SMS_ASSERT(victim_index != kNoWay, "full set with empty LRU list");
        Line &victim = lines_[victim_index];
        if (victim.dirty) {
            result.evicted_dirty = true;
            result.evicted_line = victim.tag;
            ++stats_.writebacks;
        }
        if (use_tag_index_)
            tag_index_.erase(victim.tag);
    }
    Line &line = lines_[victim_index];
    line.valid = true;
    line.tag = line_addr;
    line.dirty = write;
    touchFront(set, victim_index);
    if (use_tag_index_)
        tag_index_[line_addr] = victim_index;
    return result;
}

bool
Cache::probe(Addr line_addr) const
{
    return findLine(setIndex(line_addr), line_addr) != kNoWay;
}

void
Cache::reset()
{
    for (Line &line : lines_)
        line = Line();
    for (SetState &set : sets_)
        set = SetState();
    tag_index_.clear();
}

} // namespace sms
