/**
 * @file
 * Cache tag-model implementation.
 *
 * Replacement state is an intrusive doubly-linked recency list per set
 * plus a fill counter; see the header for the equivalence argument
 * against the timestamp formulation of true LRU.
 *
 * Lookup is the simulator's single hottest function (one call per
 * modeled line access), so the fully-associative path uses a flat
 * linear-probe hash table with backward-shift deletion instead of
 * std::unordered_map, and set indexing is shift/mask whenever the
 * geometry allows. Neither changes any replacement decision: the hash
 * table is a pure tag->way accelerator and the recency lists remain
 * the only replacement state.
 */

#include "src/memory/cache.hpp"

#include "src/util/check.hpp"

namespace sms {

namespace {

/** Both recency links of a line set to kNoWay (0xffffffff each). */
constexpr uint64_t kNoLinks = ~uint64_t{0};

bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

uint32_t
log2OfPowerOfTwo(uint64_t v)
{
    uint32_t shift = 0;
    while ((uint64_t{1} << shift) < v)
        ++shift;
    return shift;
}

uint32_t
nextPowerOfTwo(uint32_t v)
{
    uint32_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

Cache::Cache(const CacheConfig &config) : config_(config)
{
    SMS_ASSERT(config.line_bytes > 0 && isPowerOfTwo(config.line_bytes),
               "line size must be a power of two");
    uint64_t total_lines = config.size_bytes / config.line_bytes;
    SMS_ASSERT(total_lines > 0, "cache smaller than one line");

    if (config.ways == 0 || config.ways >= total_lines) {
        // Fully associative: one set holding every line.
        num_sets_ = 1;
        num_ways_ = static_cast<uint32_t>(total_lines);
    } else {
        SMS_ASSERT(total_lines % config.ways == 0,
                   "lines (%llu) not divisible by ways (%u)",
                   static_cast<unsigned long long>(total_lines),
                   config.ways);
        num_ways_ = config.ways;
        // Modulo indexing supports non-power-of-two set counts (the
        // 3 MB / 16-way L2 of Table I has 1536 sets).
        num_sets_ = static_cast<uint32_t>(total_lines / config.ways);
    }
    line_shift_ = log2OfPowerOfTwo(config.line_bytes);
    sets_pow2_ = isPowerOfTwo(num_sets_);
    set_mask_ = sets_pow2_ ? num_sets_ - 1 : 0;

    size_t total = static_cast<size_t>(num_sets_) * num_ways_;
    tags_.assign(total, kEmptyTag);
    links_.assign(total, kNoLinks);
    dirty_.assign((total + 63) / 64, 0);
    sets_.resize(num_sets_);
    use_tag_index_ = num_sets_ == 1;
    if (use_tag_index_) {
        // 4x ways keeps the load factor under 1/4: probe runs on the
        // hit path stay near one slot and the backward-shift walks on
        // eviction stay short, for 12 B per way of extra table.
        uint32_t capacity = nextPowerOfTwo(num_ways_ * 4);
        tag_keys_.assign(capacity, kEmptyTag);
        tag_vals_.assign(capacity, 0);
        tag_mask_ = capacity - 1;
    }
}

uint32_t
Cache::setIndex(Addr line_addr) const
{
    uint64_t line_index = line_addr >> line_shift_;
    if (sets_pow2_)
        return static_cast<uint32_t>(line_index) & set_mask_;
    return static_cast<uint32_t>(line_index % num_sets_);
}

uint64_t
Cache::hashTag(Addr line_addr)
{
    // splitmix64 finalizer over the line address: cheap, and strong
    // enough that power-of-two-strided address streams (line-aligned
    // buffers) don't cluster in the power-of-two-sized table.
    uint64_t x = line_addr;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

uint32_t
Cache::tagSlotOf(Addr line_addr) const
{
    uint32_t slot = static_cast<uint32_t>(hashTag(line_addr)) & tag_mask_;
    while (tag_keys_[slot] != line_addr && tag_keys_[slot] != kEmptyTag)
        slot = (slot + 1) & tag_mask_;
    return slot;
}

void
Cache::tagInsert(Addr line_addr, uint32_t line_index)
{
    uint32_t slot = tagSlotOf(line_addr);
    tag_keys_[slot] = line_addr;
    tag_vals_[slot] = line_index;
}

void
Cache::tagErase(Addr line_addr)
{
    uint32_t slot = tagSlotOf(line_addr);
    if (tag_keys_[slot] == kEmptyTag)
        return;
    // Backward-shift deletion: walk the probe run after the freed slot
    // and pull back any entry whose home position precedes the hole, so
    // later lookups never hit a spurious empty slot mid-run.
    uint32_t hole = slot;
    tag_keys_[hole] = kEmptyTag;
    uint32_t cur = (slot + 1) & tag_mask_;
    while (tag_keys_[cur] != kEmptyTag) {
        uint32_t home =
            static_cast<uint32_t>(hashTag(tag_keys_[cur])) & tag_mask_;
        // Move cur into the hole iff the hole lies within cur's probe
        // path, i.e. the cyclic distance home->cur covers home->hole.
        if (((cur - home) & tag_mask_) >= ((cur - hole) & tag_mask_)) {
            tag_keys_[hole] = tag_keys_[cur];
            tag_vals_[hole] = tag_vals_[cur];
            tag_keys_[cur] = kEmptyTag;
            hole = cur;
        }
        cur = (cur + 1) & tag_mask_;
    }
}

uint32_t
Cache::findLine(uint32_t set, Addr line_addr) const
{
    if (use_tag_index_) {
        uint32_t slot = tagSlotOf(line_addr);
        return tag_keys_[slot] == kEmptyTag ? kNoWay : tag_vals_[slot];
    }
    // Ways fill in ascending order and are never invalidated outside
    // reset(), so every way below valid_ways holds a live tag: the scan
    // covers at most two host cache lines of the flat tag array.
    uint32_t base = set * num_ways_;
    uint32_t filled = sets_[set].valid_ways;
    for (uint32_t w = 0; w < filled; ++w) {
        if (tags_[base + w] == line_addr)
            return base + w;
    }
    return kNoWay;
}

// Recency links are packed (more_recent << 32) | less_recent.

void
Cache::unlink(SetState &set, uint32_t line_index)
{
    uint64_t links = links_[line_index];
    uint32_t more = static_cast<uint32_t>(links >> 32);
    uint32_t less = static_cast<uint32_t>(links);
    if (more != kNoWay)
        links_[more] = (links_[more] & 0xffffffff00000000ull) | less;
    else
        set.mru = less;
    if (less != kNoWay)
        links_[less] = (links_[less] & 0xffffffffull) |
                       (static_cast<uint64_t>(more) << 32);
    else
        set.lru = more;
    links_[line_index] = kNoLinks;
}

void
Cache::touchFront(SetState &set, uint32_t line_index)
{
    if (set.mru == line_index)
        return;
    // A line that is linked but not the head always has a more-recent
    // neighbour; a freshly-filled line (both links kNoWay) must not
    // be unlinked or it would clobber the list head.
    if (static_cast<uint32_t>(links_[line_index] >> 32) != kNoWay)
        unlink(set, line_index);
    links_[line_index] = (static_cast<uint64_t>(kNoWay) << 32) | set.mru;
    if (set.mru != kNoWay)
        links_[set.mru] = (links_[set.mru] & 0xffffffffull) |
                          (static_cast<uint64_t>(line_index) << 32);
    set.mru = line_index;
    if (set.lru == kNoWay)
        set.lru = line_index;
}

Cache::Result
Cache::access(Addr line_addr, bool write, TrafficClass cls)
{
    SMS_ASSERT((line_addr & (config_.line_bytes - 1)) == 0,
               "unaligned cache access 0x%llx",
               static_cast<unsigned long long>(line_addr));
    Result result;
    if (write)
        ++stats_.stores;
    else
        ++stats_.loads;

    uint32_t set_idx = setIndex(line_addr);
    SetState &set = sets_[set_idx];

    // Hit path.
    uint32_t found = findLine(set_idx, line_addr);
    if (found != kNoWay) {
        touchFront(set, found);
        if (write)
            setDirty(found, true);
        result.hit = true;
        return result;
    }

    if (write)
        ++stats_.store_misses;
    else
        ++stats_.load_misses;
    ++class_misses_[static_cast<int>(cls)];

    // No-write-allocate caches write around on store misses.
    if (write && !config_.allocate_on_store)
        return result;

    uint32_t victim_index;
    if (set.valid_ways < num_ways_) {
        // Invalid ways are consumed in ascending way order (matching
        // the "first invalid way" rule of the timestamp scan).
        victim_index = set_idx * num_ways_ + set.valid_ways;
        ++set.valid_ways;
    } else {
        victim_index = set.lru;
        SMS_ASSERT(victim_index != kNoWay, "full set with empty LRU list");
        if (isDirty(victim_index)) {
            result.evicted_dirty = true;
            result.evicted_line = tags_[victim_index];
            ++stats_.writebacks;
        }
        if (use_tag_index_)
            tagErase(tags_[victim_index]);
    }
    tags_[victim_index] = line_addr;
    setDirty(victim_index, write);
    touchFront(set, victim_index);
    if (use_tag_index_)
        tagInsert(line_addr, victim_index);
    return result;
}

bool
Cache::probe(Addr line_addr) const
{
    return findLine(setIndex(line_addr), line_addr) != kNoWay;
}

void
Cache::reset()
{
    for (SetState &set : sets_)
        set = SetState();
    tags_.assign(tags_.size(), kEmptyTag);
    links_.assign(links_.size(), kNoLinks);
    dirty_.assign(dirty_.size(), 0);
    if (use_tag_index_)
        tag_keys_.assign(tag_keys_.size(), kEmptyTag);
}

} // namespace sms
