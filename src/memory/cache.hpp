/**
 * @file
 * Set-associative write-back cache tag model with true-LRU replacement.
 *
 * Covers both caches of Table I: the L1D (fully associative — modeled
 * as a single set whose way count equals the line count) and the L2
 * (16-way). Only tags are modeled; data never matters for timing.
 *
 * True-LRU is maintained as an intrusive per-set recency list (head =
 * MRU, tail = LRU) instead of timestamps, so hits, fills and victim
 * selection are O(1) per set rather than an O(ways) scan — decisive
 * for the fully-associative L1D, where "ways" is the whole cache (512
 * lines at Table I's 64 KB / 128 B). The fully-associative path
 * additionally keeps a hashed tag->way index so lookups skip the way
 * scan entirely. Replacement decisions are bit-identical to the
 * timestamp formulation: invalid ways fill in ascending way order and
 * the victim is always the least-recently-touched valid way.
 */

#ifndef SMS_MEMORY_CACHE_HPP
#define SMS_MEMORY_CACHE_HPP

#include <cstdint>
#include <vector>

#include "src/memory/request.hpp"

namespace sms {

/** Geometry and policy parameters of one cache. */
struct CacheConfig
{
    uint64_t size_bytes = 64 * 1024;
    /** 0 selects fully associative (ways = lines). */
    uint32_t ways = 0;
    uint32_t line_bytes = kLineBytes;
    /**
     * Allocate a line on a store miss. GPU L1Ds are write-through /
     * no-write-allocate (stores that miss write around the cache);
     * the L2 is write-back / write-allocate.
     */
    bool allocate_on_store = true;
};

/**
 * Tag-only cache with per-set true-LRU ordering.
 *
 * access() combines lookup and fill: on a miss the line is allocated
 * immediately (the caller adds next-level latency to the request's
 * completion time) and the evicted line, if dirty, is reported so the
 * caller can issue a writeback.
 */
class Cache
{
  public:
    /** Outcome of one line access. */
    struct Result
    {
        bool hit = false;
        bool evicted_dirty = false;
        Addr evicted_line = 0;
    };

    explicit Cache(const CacheConfig &config);

    /**
     * Access one line.
     *
     * @param line_addr line-aligned address
     * @param write     true for stores (marks the line dirty)
     * @param cls       traffic class for statistics
     */
    Result access(Addr line_addr, bool write, TrafficClass cls);

    /** True when the line is currently resident (no state change). */
    bool probe(Addr line_addr) const;

    /** Drop all lines (statistics are kept). */
    void reset();

    const LevelStats &stats() const { return stats_; }

    /** Per-traffic-class miss counts. */
    uint64_t
    missesByClass(TrafficClass cls) const
    {
        return class_misses_[static_cast<int>(cls)];
    }

    uint32_t numSets() const { return num_sets_; }
    uint32_t numWays() const { return num_ways_; }

  private:
    /** Sentinel way index terminating a set's recency list. */
    static constexpr uint32_t kNoWay = 0xffffffffu;

    /** Recency bookkeeping of one set. */
    struct SetState
    {
        uint32_t mru = kNoWay;     ///< head of the recency list
        uint32_t lru = kNoWay;     ///< tail of the recency list
        uint32_t valid_ways = 0;   ///< ways filled so far (fill order)
    };

    uint32_t setIndex(Addr line_addr) const;

    /** Find the resident way of @p line_addr, or kNoWay. */
    uint32_t findLine(uint32_t set, Addr line_addr) const;

    /** Unlink @p line_index from its set's recency list. */
    void unlink(SetState &set, uint32_t line_index);

    /** Make @p line_index the MRU of its set. */
    void touchFront(SetState &set, uint32_t line_index);

    bool
    isDirty(uint32_t line_index) const
    {
        return (dirty_[line_index >> 6] >> (line_index & 63)) & 1;
    }
    void
    setDirty(uint32_t line_index, bool dirty)
    {
        uint64_t bit = uint64_t{1} << (line_index & 63);
        if (dirty)
            dirty_[line_index >> 6] |= bit;
        else
            dirty_[line_index >> 6] &= ~bit;
    }

    // Open-addressed tag->way table (fully-associative path). The
    // simulator performs one lookup per modeled memory access, so the
    // table is a flat linear-probe array rather than unordered_map:
    // no per-node allocation, one hash, at most a short probe run.
    // Capacity is fixed at construction (>= 4x ways, power of two), so
    // the load factor never exceeds 1/4 and probes stay short.
    static uint64_t hashTag(Addr line_addr);
    uint32_t tagSlotOf(Addr line_addr) const;
    void tagInsert(Addr line_addr, uint32_t line_index);
    void tagErase(Addr line_addr);

    CacheConfig config_;
    uint32_t num_sets_ = 1;
    uint32_t num_ways_ = 1;
    /** log2(line_bytes): line index = addr >> line_shift_. */
    uint32_t line_shift_ = 0;
    /** num_sets_ - 1 when num_sets_ is a power of two, else 0 (the
     *  fully-associative single set takes this path with mask 0; only
     *  non-power-of-two geometries like the 192-set L2 pay a modulo). */
    uint32_t set_mask_ = 0;
    bool sets_pow2_ = true;
    // Per-line state is struct-of-arrays, sized for host-cache
    // residency on the hot path: the 16-way L2's tag scan covers one
    // array cache line, a recency update touches three 8-byte link
    // pairs instead of three padded structs, and dirtiness is one bit.
    // Validity is implicit: ways fill in ascending order and are never
    // invalidated outside reset(), so way w of a set is live iff
    // w < valid_ways.
    /** Line tags, num_sets_ x num_ways_ row-major. */
    std::vector<Addr> tags_;
    /** Recency links, (more_recent << 32) | less_recent per line. */
    std::vector<uint64_t> links_;
    /** Dirty bits, one per line. */
    std::vector<uint64_t> dirty_;
    std::vector<SetState> sets_;
    /** Linear-probe table: slot -> line tag (kEmptyTag when free). */
    std::vector<Addr> tag_keys_;
    /** Parallel slot -> global line index. */
    std::vector<uint32_t> tag_vals_;
    uint32_t tag_mask_ = 0; ///< tag_keys_.size() - 1
    bool use_tag_index_ = false;
    LevelStats stats_;
    uint64_t class_misses_[kTrafficClassCount] = {0, 0, 0};

    /** Free-slot sentinel: never a line-aligned address. */
    static constexpr Addr kEmptyTag = ~Addr{0};
};

} // namespace sms

#endif // SMS_MEMORY_CACHE_HPP
