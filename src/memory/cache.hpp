/**
 * @file
 * Set-associative write-back cache tag model with true-LRU replacement.
 *
 * Covers both caches of Table I: the L1D (fully associative — modeled
 * as a single set whose way count equals the line count) and the L2
 * (16-way). Only tags are modeled; data never matters for timing.
 */

#ifndef SMS_MEMORY_CACHE_HPP
#define SMS_MEMORY_CACHE_HPP

#include <cstdint>
#include <vector>

#include "src/memory/request.hpp"

namespace sms {

/** Geometry and policy parameters of one cache. */
struct CacheConfig
{
    uint64_t size_bytes = 64 * 1024;
    /** 0 selects fully associative (ways = lines). */
    uint32_t ways = 0;
    uint32_t line_bytes = kLineBytes;
    /**
     * Allocate a line on a store miss. GPU L1Ds are write-through /
     * no-write-allocate (stores that miss write around the cache);
     * the L2 is write-back / write-allocate.
     */
    bool allocate_on_store = true;
};

/**
 * Tag-only cache with per-set true-LRU ordering.
 *
 * access() combines lookup and fill: on a miss the line is allocated
 * immediately (the caller adds next-level latency to the request's
 * completion time) and the evicted line, if dirty, is reported so the
 * caller can issue a writeback.
 */
class Cache
{
  public:
    /** Outcome of one line access. */
    struct Result
    {
        bool hit = false;
        bool evicted_dirty = false;
        Addr evicted_line = 0;
    };

    explicit Cache(const CacheConfig &config);

    /**
     * Access one line.
     *
     * @param line_addr line-aligned address
     * @param write     true for stores (marks the line dirty)
     * @param cls       traffic class for statistics
     */
    Result access(Addr line_addr, bool write, TrafficClass cls);

    /** True when the line is currently resident (no state change). */
    bool probe(Addr line_addr) const;

    /** Drop all lines (statistics are kept). */
    void reset();

    const LevelStats &stats() const { return stats_; }

    /** Per-traffic-class miss counts. */
    uint64_t
    missesByClass(TrafficClass cls) const
    {
        return class_misses_[static_cast<int>(cls)];
    }

    uint32_t numSets() const { return num_sets_; }
    uint32_t numWays() const { return num_ways_; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        uint64_t lru = 0; ///< larger = more recently used
    };

    uint32_t setIndex(Addr line_addr) const;

    CacheConfig config_;
    uint32_t num_sets_ = 1;
    uint32_t num_ways_ = 1;
    std::vector<Line> lines_; ///< num_sets_ x num_ways_, row-major
    uint64_t lru_clock_ = 0;
    LevelStats stats_;
    uint64_t class_misses_[kTrafficClassCount] = {0, 0, 0};
};

} // namespace sms

#endif // SMS_MEMORY_CACHE_HPP
