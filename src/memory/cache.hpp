/**
 * @file
 * Set-associative write-back cache tag model with true-LRU replacement.
 *
 * Covers both caches of Table I: the L1D (fully associative — modeled
 * as a single set whose way count equals the line count) and the L2
 * (16-way). Only tags are modeled; data never matters for timing.
 *
 * True-LRU is maintained as an intrusive per-set recency list (head =
 * MRU, tail = LRU) instead of timestamps, so hits, fills and victim
 * selection are O(1) per set rather than an O(ways) scan — decisive
 * for the fully-associative L1D, where "ways" is the whole cache (512
 * lines at Table I's 64 KB / 128 B). The fully-associative path
 * additionally keeps a hashed tag->way index so lookups skip the way
 * scan entirely. Replacement decisions are bit-identical to the
 * timestamp formulation: invalid ways fill in ascending way order and
 * the victim is always the least-recently-touched valid way.
 */

#ifndef SMS_MEMORY_CACHE_HPP
#define SMS_MEMORY_CACHE_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/memory/request.hpp"

namespace sms {

/** Geometry and policy parameters of one cache. */
struct CacheConfig
{
    uint64_t size_bytes = 64 * 1024;
    /** 0 selects fully associative (ways = lines). */
    uint32_t ways = 0;
    uint32_t line_bytes = kLineBytes;
    /**
     * Allocate a line on a store miss. GPU L1Ds are write-through /
     * no-write-allocate (stores that miss write around the cache);
     * the L2 is write-back / write-allocate.
     */
    bool allocate_on_store = true;
};

/**
 * Tag-only cache with per-set true-LRU ordering.
 *
 * access() combines lookup and fill: on a miss the line is allocated
 * immediately (the caller adds next-level latency to the request's
 * completion time) and the evicted line, if dirty, is reported so the
 * caller can issue a writeback.
 */
class Cache
{
  public:
    /** Outcome of one line access. */
    struct Result
    {
        bool hit = false;
        bool evicted_dirty = false;
        Addr evicted_line = 0;
    };

    explicit Cache(const CacheConfig &config);

    /**
     * Access one line.
     *
     * @param line_addr line-aligned address
     * @param write     true for stores (marks the line dirty)
     * @param cls       traffic class for statistics
     */
    Result access(Addr line_addr, bool write, TrafficClass cls);

    /** True when the line is currently resident (no state change). */
    bool probe(Addr line_addr) const;

    /** Drop all lines (statistics are kept). */
    void reset();

    const LevelStats &stats() const { return stats_; }

    /** Per-traffic-class miss counts. */
    uint64_t
    missesByClass(TrafficClass cls) const
    {
        return class_misses_[static_cast<int>(cls)];
    }

    uint32_t numSets() const { return num_sets_; }
    uint32_t numWays() const { return num_ways_; }

  private:
    /** Sentinel way index terminating a set's recency list. */
    static constexpr uint32_t kNoWay = 0xffffffffu;

    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        /** Intrusive per-set recency list (indices are global line
         *  indices; kNoWay terminates). */
        uint32_t more_recent = kNoWay;
        uint32_t less_recent = kNoWay;
    };

    /** Recency bookkeeping of one set. */
    struct SetState
    {
        uint32_t mru = kNoWay;     ///< head of the recency list
        uint32_t lru = kNoWay;     ///< tail of the recency list
        uint32_t valid_ways = 0;   ///< ways filled so far (fill order)
    };

    uint32_t setIndex(Addr line_addr) const;

    /** Find the resident way of @p line_addr, or kNoWay. */
    uint32_t findLine(uint32_t set, Addr line_addr) const;

    /** Unlink @p line_index from its set's recency list. */
    void unlink(SetState &set, uint32_t line_index);

    /** Make @p line_index the MRU of its set. */
    void touchFront(SetState &set, uint32_t line_index);

    CacheConfig config_;
    uint32_t num_sets_ = 1;
    uint32_t num_ways_ = 1;
    std::vector<Line> lines_; ///< num_sets_ x num_ways_, row-major
    std::vector<SetState> sets_;
    /**
     * tag -> global line index, maintained only for the
     * fully-associative geometry (num_sets_ == 1), where the way scan
     * would otherwise walk the entire cache.
     */
    std::unordered_map<Addr, uint32_t> tag_index_;
    bool use_tag_index_ = false;
    LevelStats stats_;
    uint64_t class_misses_[kTrafficClassCount] = {0, 0, 0};
};

} // namespace sms

#endif // SMS_MEMORY_CACHE_HPP
