/**
 * @file
 * Off-chip DRAM model: fixed access latency plus a bandwidth-limited
 * service queue shared by all SMs.
 *
 * The queue is what makes stack-spill traffic expensive in the same way
 * the paper measures: per-thread spill addresses do not coalesce, so a
 * burst of spills occupies many service slots and delays geometry
 * fetches behind it.
 */

#ifndef SMS_MEMORY_DRAM_HPP
#define SMS_MEMORY_DRAM_HPP

#include "src/memory/request.hpp"
#include "src/stats/timeline.hpp"

namespace sms {

/** DRAM timing and bandwidth parameters. */
struct DramConfig
{
    /** Latency from service start to data return. */
    Cycle access_latency = 250;
    /** Minimum cycles between consecutive line services (bandwidth). */
    Cycle service_interval = 4;
};

/** Per-class off-chip access counters. */
struct DramStats
{
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t by_class[kTrafficClassCount] = {};
    /** Total cycles requests waited for a service slot. */
    uint64_t queue_wait_cycles = 0;
    /** Cycles the service queue was occupied (bandwidth consumed). */
    uint64_t busy_cycles = 0;
    /** Largest single-request wait for a service slot. */
    uint64_t max_queue_wait = 0;

    uint64_t accesses() const { return loads + stores; }

    /** Mean service-slot wait per access (queue pressure). */
    double
    avgQueueWait() const
    {
        uint64_t a = accesses();
        return a ? static_cast<double>(queue_wait_cycles) / a : 0.0;
    }
};

/**
 * Bandwidth-limited DRAM. One request = one cache line.
 */
class Dram
{
  public:
    explicit Dram(const DramConfig &config) : config_(config) {}

    /**
     * Issue a line request at cycle @p now.
     *
     * @param queue_wait when non-null, receives the cycles this
     *        request waited for a service slot (cycle accounting's
     *        stall.mem.dram_queue split of the completion time)
     * @return the cycle the data is available (loads) or committed
     *         (stores)
     */
    Cycle
    access(Cycle now, bool write, TrafficClass cls,
           Cycle *queue_wait = nullptr)
    {
        Cycle start = now > next_free_ ? now : next_free_;
        if (queue_wait)
            *queue_wait = start - now;
        if (timelineOn(TimelineCategory::Dram)) {
            timelineCounter(TimelineCategory::Dram, "dram_backlog", now,
                            start - now);
            if (start > now)
                timelineSpan(TimelineCategory::Dram, "dram_wait", now,
                             start - now);
        }
        stats_.queue_wait_cycles += start - now;
        if (start - now > stats_.max_queue_wait)
            stats_.max_queue_wait = start - now;
        stats_.busy_cycles += config_.service_interval;
        next_free_ = start + config_.service_interval;
        if (write)
            ++stats_.stores;
        else
            ++stats_.loads;
        ++stats_.by_class[static_cast<int>(cls)];
        return start + config_.access_latency;
    }

    const DramStats &stats() const { return stats_; }

  private:
    DramConfig config_;
    Cycle next_free_ = 0;
    DramStats stats_;
};

} // namespace sms

#endif // SMS_MEMORY_DRAM_HPP
