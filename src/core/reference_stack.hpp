/**
 * @file
 * Unbounded reference traversal stack — the functional oracle.
 *
 * Every hardware stack configuration must pop exactly the sequence this
 * stack pops for the same push/pop trace (DESIGN.md invariant 1). It is
 * also what RB_FULL behaves like functionally.
 */

#ifndef SMS_CORE_REFERENCE_STACK_HPP
#define SMS_CORE_REFERENCE_STACK_HPP

#include <cstdint>
#include <vector>

#include "src/util/check.hpp"

namespace sms {

/** Plain unbounded LIFO of 8-byte stack entries. */
class ReferenceStack
{
  public:
    void push(uint64_t value) { values_.push_back(value); }

    uint64_t
    pop()
    {
        SMS_ASSERT(!values_.empty(), "pop from empty reference stack");
        uint64_t v = values_.back();
        values_.pop_back();
        return v;
    }

    bool empty() const { return values_.empty(); }
    uint32_t depth() const { return static_cast<uint32_t>(values_.size()); }

  private:
    std::vector<uint64_t> values_;
};

} // namespace sms

#endif // SMS_CORE_REFERENCE_STACK_HPP
