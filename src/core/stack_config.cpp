/**
 * @file
 * StackConfig helpers: naming, skew formula, overhead arithmetic.
 */

#include "src/core/stack_config.hpp"

#include "src/util/check.hpp"

namespace sms {

namespace {

/** ceil(log2(v)) for v >= 1. */
uint32_t
ceilLog2(uint32_t v)
{
    uint32_t bits = 0;
    uint32_t capacity = 1;
    while (capacity < v) {
        capacity <<= 1;
        ++bits;
    }
    return bits;
}

} // namespace

uint32_t
StackConfig::overheadBitsPerThread() const
{
    if (!hasShStack())
        return 0;
    // Top and Bottom index fields: log2(sh_entries) bits each.
    uint32_t bits = 2 * ceilLog2(sh_entries);
    // Overflow flag.
    bits += 1;
    if (intra_warp_realloc) {
        // Idle (1) + Next TID (5) + Priority (2) + Flush (2).
        bits += 1 + 5 + 2 + 2;
    }
    return bits;
}

uint64_t
StackConfig::overheadBytesPerSm(uint32_t warps) const
{
    uint64_t bits = static_cast<uint64_t>(overheadBitsPerThread()) *
                    kWarpSize * warps;
    return (bits + 7) / 8;
}

std::string
StackConfig::name() const
{
    if (rb_unbounded)
        return "RB_FULL";
    std::string out = strprintf("RB_%u", rb_entries);
    if (hasShStack()) {
        out += strprintf("+SH_%u", sh_entries);
        if (skewed_bank_access)
            out += "+SK";
        if (intra_warp_realloc)
            out += "+RA";
    }
    return out;
}

uint32_t
skewBaseEntry(uint32_t tid, uint32_t sh_entries)
{
    SMS_ASSERT(sh_entries > 0, "skew base needs a non-empty SH stack");
    uint32_t k = kWarpSize / (sh_entries * 2);
    if (k == 0)
        k = 1;
    return (tid / k) % sh_entries;
}

} // namespace sms
