/**
 * @file
 * Traversal-stack configuration: the knobs the paper sweeps (RB size,
 * SH size, skewed bank access, intra-warp reallocation) plus the
 * hardware-overhead arithmetic of §VI-C.
 */

#ifndef SMS_CORE_STACK_CONFIG_HPP
#define SMS_CORE_STACK_CONFIG_HPP

#include <cstdint>
#include <string>

namespace sms {

/** Threads per warp, fixed at 32 throughout the paper. */
constexpr uint32_t kWarpSize = 32;

/** Bytes of one traversal-stack entry (a node address). */
constexpr uint32_t kStackEntryBytes = 8;

/**
 * Configuration of the per-thread traversal stack hierarchy.
 *
 * rb_entries is the primary ray-buffer stack (paper RB_N);
 * sh_entries > 0 enables the secondary shared-memory stack (SH_M);
 * skewed_bank_access and intra_warp_realloc enable the two SMS
 * optimizations (+SK, +RA).
 */
struct StackConfig
{
    uint32_t rb_entries = 8;
    /** RB_FULL: unbounded on-chip stack, never spills. */
    bool rb_unbounded = false;

    /** SH stack entries per thread; 0 disables the SH stack. */
    uint32_t sh_entries = 0;
    bool skewed_bank_access = false;
    bool intra_warp_realloc = false;

    /** Maximum concurrently borrowed SH stacks per thread (§VI-B). */
    uint32_t max_borrowed = 4;
    /** Maximum consecutive flushes per allocated SH stack (§VI-B). */
    uint32_t max_flushes = 3;

    /** The paper's baseline: 8-entry RB stack, nothing else. */
    static StackConfig
    baseline(uint32_t rb = 8)
    {
        StackConfig c;
        c.rb_entries = rb;
        return c;
    }

    /** RB_FULL: impractical full on-chip per-ray stack. */
    static StackConfig
    rbFull()
    {
        StackConfig c;
        c.rb_unbounded = true;
        return c;
    }

    /** RB_N + SH_M with optional optimizations. */
    static StackConfig
    withSh(uint32_t rb, uint32_t sh, bool skew = false, bool realloc = false)
    {
        StackConfig c;
        c.rb_entries = rb;
        c.sh_entries = sh;
        c.skewed_bank_access = skew;
        c.intra_warp_realloc = realloc;
        return c;
    }

    /** The full SMS design: RB_8 + SH_8 + SK + RA. */
    static StackConfig
    sms(uint32_t rb = 8, uint32_t sh = 8)
    {
        return withSh(rb, sh, true, true);
    }

    bool hasShStack() const { return sh_entries > 0; }

    /** Shared-memory bytes reserved per warp (32 threads). */
    uint64_t
    sharedBytesPerWarp() const
    {
        return static_cast<uint64_t>(kWarpSize) * sh_entries *
               kStackEntryBytes;
    }

    /** Shared-memory bytes reserved per SM for @p warps RT-unit warps. */
    uint64_t
    sharedBytesPerSm(uint32_t warps = 4) const
    {
        return sharedBytesPerWarp() * warps;
    }

    /**
     * Extra ray-buffer storage bits per thread for SH bookkeeping
     * (Top, Bottom, Overflow; plus Next TID, Idle, Priority, Flush when
     * reallocation is enabled) — §VI-C.
     */
    uint32_t overheadBitsPerThread() const;

    /** Total bookkeeping overhead bytes per SM (32 threads x 4 warps). */
    uint64_t overheadBytesPerSm(uint32_t warps = 4) const;

    /** Human-readable name, e.g. "RB_8+SH_8+SK+RA" or "RB_FULL". */
    std::string name() const;
};

/**
 * Skewed base-entry formula from §VI-B:
 *   base = (tid / k) mod N, with k = 32 / (N * 2).
 * For N >= 16 the divisor k collapses to 1 (every thread's stack spans
 * all banks), which the max() guard encodes.
 */
uint32_t skewBaseEntry(uint32_t tid, uint32_t sh_entries);

} // namespace sms

#endif // SMS_CORE_STACK_CONFIG_HPP
