/**
 * @file
 * Memory transactions emitted by the stack manager.
 *
 * A push or pop on the hierarchical stack produces an ordered per-lane
 * list of transactions (spills, reloads, flush bursts). The timing
 * simulator groups same-position transactions across the warp's lanes
 * into warp-level shared/global accesses, mirroring how the RT unit's
 * memory scheduler collects requests (§IV-A), and honours the paper's
 * rule that a thread's transactions issue sequentially (§VI-A).
 */

#ifndef SMS_CORE_STACK_TXN_HPP
#define SMS_CORE_STACK_TXN_HPP

#include <cstdint>
#include <vector>

#include "src/memory/request.hpp"

namespace sms {

/** Kind of stack-manager memory transaction. */
enum class StackTxnKind : uint8_t
{
    SharedLoad,  ///< SH stack -> RB stack (or SH -> global staging)
    SharedStore, ///< RB stack -> SH stack (or global -> SH staging)
    GlobalLoad,  ///< off-chip local memory -> on-chip
    GlobalStore, ///< on-chip -> off-chip local memory
};

/** One stack-manager transaction for one lane. */
struct StackTxn
{
    StackTxnKind kind;
    Addr addr;
    uint32_t bytes = 8;
};

/** Ordered transaction list of one lane for one stack operation. */
using StackTxnList = std::vector<StackTxn>;

/** Counters over all stack-manager activity of one warp. */
struct WarpStackStats
{
    uint64_t pushes = 0;
    uint64_t pops = 0;
    uint64_t rb_spills = 0;       ///< RB overflow spills (to SH or global)
    uint64_t rb_refills = 0;      ///< reloads into the RB bottom
    uint64_t sh_stores = 0;       ///< shared-memory stores
    uint64_t sh_loads = 0;        ///< shared-memory loads
    uint64_t global_stores = 0;   ///< off-chip spill stores
    uint64_t global_loads = 0;    ///< off-chip spill reloads
    uint64_t borrows = 0;         ///< SH stacks borrowed (RA)
    uint64_t flushes = 0;         ///< bottom-stack flushes (RA)
    uint64_t forced_flushes = 0;  ///< flushes past the paper's budget
    uint64_t flushed_entries = 0; ///< entries moved by flushes
    uint64_t single_moves = 0;    ///< SH-bottom -> global single moves
    uint32_t max_logical_depth = 0;

    void
    merge(const WarpStackStats &o)
    {
        pushes += o.pushes;
        pops += o.pops;
        rb_spills += o.rb_spills;
        rb_refills += o.rb_refills;
        sh_stores += o.sh_stores;
        sh_loads += o.sh_loads;
        global_stores += o.global_stores;
        global_loads += o.global_loads;
        borrows += o.borrows;
        flushes += o.flushes;
        forced_flushes += o.forced_flushes;
        flushed_entries += o.flushed_entries;
        single_moves += o.single_moves;
        if (o.max_logical_depth > max_logical_depth)
            max_logical_depth = o.max_logical_depth;
    }
};

} // namespace sms

#endif // SMS_CORE_STACK_TXN_HPP
