/**
 * @file
 * Memory transactions emitted by the stack manager.
 *
 * A push or pop on the hierarchical stack produces an ordered per-lane
 * list of transactions (spills, reloads, flush bursts). The timing
 * simulator groups same-position transactions across the warp's lanes
 * into warp-level shared/global accesses, mirroring how the RT unit's
 * memory scheduler collects requests (§IV-A), and honours the paper's
 * rule that a thread's transactions issue sequentially (§VI-A).
 */

#ifndef SMS_CORE_STACK_TXN_HPP
#define SMS_CORE_STACK_TXN_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "src/core/stack_config.hpp"
#include "src/memory/request.hpp"
#include "src/util/check.hpp"

namespace sms {

/** Kind of stack-manager memory transaction. */
enum class StackTxnKind : uint8_t
{
    SharedLoad,  ///< SH stack -> RB stack (or SH -> global staging)
    SharedStore, ///< RB stack -> SH stack (or global -> SH staging)
    GlobalLoad,  ///< off-chip local memory -> on-chip
    GlobalStore, ///< on-chip -> off-chip local memory
};

/**
 * Why the stack manager issued a transaction. Cycle accounting folds
 * each chain round into one stall.stack.* leaf by the highest-priority
 * origin present in the round (ForcedFlush > BorrowChain > Spill >
 * Refill), so a flush burst is charged to the flush even when spill
 * stores ride in the same round.
 */
enum class StackTxnOrigin : uint8_t
{
    Refill,      ///< eager pop refill (SH->RB, global->SH staging)
    Spill,       ///< RB overflow spill (incl. single-entry SH moves)
    BorrowChain, ///< budgeted bottom-segment flush (§VI-B)
    ForcedFlush, ///< flush past the paper's consecutive-flush budget
};

/** One stack-manager transaction for one lane. */
struct StackTxn
{
    StackTxnKind kind;
    Addr addr;
    uint32_t bytes = 8;
    StackTxnOrigin origin = StackTxnOrigin::Spill;
};

/** Ordered transaction list of one lane for one stack operation. */
using StackTxnList = std::vector<StackTxn>;

/**
 * Pooled per-warp transaction lists: one flat node pool with inline
 * next-links, and a (head, tail) pair per lane.
 *
 * The timing simulator collects every lane's transactions for one
 * pipeline step, then walks them round by round. With one
 * std::vector<StackTxn> per lane that is 32 clear()s and up to 32
 * grow-reallocations per step on the sweep's hottest path; the arena
 * replaces all of it with one bump-allocated pool (clear() is O(1)
 * counters-only) while keeping each lane's list ordered through the
 * inline links. Same idiom as tree-sitter's stack.c pool: nodes are
 * reused by index, never freed individually, and links are indices so
 * the pool can reallocate without fixups.
 */
class StackTxnArena
{
  public:
    /** Link terminator / "no node" sentinel. */
    static constexpr uint32_t kNil = 0xffffffffu;

    struct Node
    {
        StackTxn txn;
        uint32_t next = kNil; ///< next node of the same lane's list
    };

    StackTxnArena()
    {
        head_.fill(kNil);
        tail_.fill(kNil);
        count_.fill(0);
    }

    /** Drop every lane's list. O(lanes); node storage is retained. */
    void
    clear()
    {
        pool_.clear();
        head_.fill(kNil);
        tail_.fill(kNil);
        count_.fill(0);
    }

    /** Append @p txn to @p lane's list. */
    void
    append(uint32_t lane, const StackTxn &txn)
    {
        SMS_DEBUG_ASSERT(lane < kWarpSize, "lane %u out of range", lane);
        uint32_t node = static_cast<uint32_t>(pool_.size());
        pool_.push_back({txn, kNil});
        if (tail_[lane] == kNil)
            head_[lane] = node;
        else
            pool_[tail_[lane]].next = node;
        tail_[lane] = node;
        ++count_[lane];
    }

    uint32_t laneCount(uint32_t lane) const { return count_[lane]; }
    uint32_t laneHead(uint32_t lane) const { return head_[lane]; }
    const Node &node(uint32_t index) const { return pool_[index]; }

    /** Total transactions across all lanes. */
    uint32_t totalCount() const { return static_cast<uint32_t>(pool_.size()); }

    /** Materialize one lane's list (tests / differential checks). */
    StackTxnList
    laneTxns(uint32_t lane) const
    {
        StackTxnList out;
        out.reserve(count_[lane]);
        for (uint32_t n = head_[lane]; n != kNil; n = pool_[n].next)
            out.push_back(pool_[n].txn);
        return out;
    }

  private:
    std::vector<Node> pool_;
    std::array<uint32_t, kWarpSize> head_;
    std::array<uint32_t, kWarpSize> tail_;
    std::array<uint32_t, kWarpSize> count_;
};

/**
 * push_back-compatible adapter appending one lane's transactions into a
 * StackTxnArena; lets the stack model emit into either a plain
 * StackTxnList or the arena through one code path.
 */
struct LaneTxnSink
{
    StackTxnArena *arena;
    uint32_t lane;

    void push_back(const StackTxn &txn) { arena->append(lane, txn); }
};

/**
 * Buckets of the borrow-chain length histogram: a lane's SH chain holds
 * its dedicated segment plus up to 32 borrowed ones (one per warp lane).
 */
constexpr uint32_t kBorrowChainBuckets = 34;

/** Counters over all stack-manager activity of one warp. */
struct WarpStackStats
{
    uint64_t pushes = 0;
    uint64_t pops = 0;
    uint64_t rb_spills = 0;       ///< RB overflow spills (to SH or global)
    uint64_t rb_spills_to_sh = 0; ///< ... of which landed in the SH stack
    uint64_t rb_spills_to_global = 0; ///< ... of which went off-chip
    uint64_t rb_refills = 0;      ///< reloads into the RB bottom
    uint64_t rb_refills_from_sh = 0; ///< ... served by the SH stack
    uint64_t rb_refills_from_global = 0; ///< ... served off-chip
    uint64_t sh_stores = 0;       ///< shared-memory stores
    uint64_t sh_loads = 0;        ///< shared-memory loads
    uint64_t global_stores = 0;   ///< off-chip spill stores
    uint64_t global_loads = 0;    ///< off-chip spill reloads
    uint64_t borrows = 0;         ///< SH stacks borrowed (RA)
    uint64_t flushes = 0;         ///< bottom-stack flushes (RA)
    uint64_t forced_flushes = 0;  ///< flushes past the paper's budget
    uint64_t flushed_entries = 0; ///< entries moved by flushes
    uint64_t single_moves = 0;    ///< SH-bottom -> global single moves
    uint32_t max_logical_depth = 0;
    /**
     * Chain length (dedicated + borrowed segments) reached after each
     * successful borrow; bucket i counts chains of i segments, the last
     * bucket saturates.
     */
    uint64_t borrow_chain_hist[kBorrowChainBuckets] = {};

    void
    merge(const WarpStackStats &o)
    {
        pushes += o.pushes;
        pops += o.pops;
        rb_spills += o.rb_spills;
        rb_spills_to_sh += o.rb_spills_to_sh;
        rb_spills_to_global += o.rb_spills_to_global;
        rb_refills += o.rb_refills;
        rb_refills_from_sh += o.rb_refills_from_sh;
        rb_refills_from_global += o.rb_refills_from_global;
        sh_stores += o.sh_stores;
        sh_loads += o.sh_loads;
        global_stores += o.global_stores;
        global_loads += o.global_loads;
        borrows += o.borrows;
        flushes += o.flushes;
        forced_flushes += o.forced_flushes;
        flushed_entries += o.flushed_entries;
        single_moves += o.single_moves;
        if (o.max_logical_depth > max_logical_depth)
            max_logical_depth = o.max_logical_depth;
        for (uint32_t i = 0; i < kBorrowChainBuckets; ++i)
            borrow_chain_hist[i] += o.borrow_chain_hist[i];
    }
};

} // namespace sms

#endif // SMS_CORE_STACK_TXN_HPP
