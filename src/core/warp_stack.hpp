/**
 * @file
 * The SMS hierarchical traversal stack for one warp — the paper's core
 * contribution (§IV-§VI).
 *
 * Each of the 32 lanes owns:
 *  - a primary RB stack (rb_entries newest values, on-chip ray buffer),
 *  - optionally a chain of SH-stack segments in shared memory
 *    (its dedicated segment plus, with reallocation, segments borrowed
 *    from early-finished lanes), holding the middle of the stack,
 *  - an unbounded per-thread spill region in global memory holding the
 *    oldest values.
 *
 * Pushes that overflow the RB spill its oldest value downward; pops
 * eagerly refill upward (SH top -> RB bottom, then global top -> SH
 * bottom), exactly following Fig. 7 and §VI-A. Every operation returns
 * the per-lane transaction list the stack manager would issue, and the
 * model is value-exact: pops always return what an unbounded stack
 * would return.
 */

#ifndef SMS_CORE_WARP_STACK_HPP
#define SMS_CORE_WARP_STACK_HPP

#include <cstdint>
#include <vector>

#include "src/core/stack_config.hpp"
#include "src/core/stack_txn.hpp"
#include "src/memory/request.hpp"
#include "src/util/check.hpp"

namespace sms {

/**
 * Growable circular buffer holding one lane's RB stack. Supports the
 * deque subset the stack model needs (push/pop at both ends) without
 * std::deque's segmented-map allocation per instance — WarpStackModel
 * is constructed once per trace-ray warp, so construction cost is on
 * the simulator's hot path.
 */
class RbRing
{
  public:
    bool empty() const { return count_ == 0; }
    uint32_t size() const { return count_; }

    uint64_t back() const { return at((start_ + count_ - 1) & mask_); }
    uint64_t front() const { return at(start_); }

    void
    push_back(uint64_t value)
    {
        if (count_ > mask_)
            grow();
        at((start_ + count_) & mask_) = value;
        ++count_;
    }

    void pop_back() { --count_; }

    void
    push_front(uint64_t value)
    {
        if (count_ > mask_)
            grow();
        start_ = (start_ + mask_) & mask_;
        at(start_) = value;
        ++count_;
    }

    void
    pop_front()
    {
        start_ = (start_ + 1) & mask_;
        --count_;
    }

    void
    clear()
    {
        start_ = 0;
        count_ = 0;
    }

  private:
    void grow();

    /** Storage: the inline array until the first grow(), heap after. */
    uint64_t &at(uint32_t i) { return heap_.empty() ? inline_[i] : heap_[i]; }
    uint64_t at(uint32_t i) const
    {
        return heap_.empty() ? inline_[i] : heap_[i];
    }

    static constexpr uint32_t kInlineCapacity = 8; ///< power of two
    uint64_t inline_[kInlineCapacity];
    std::vector<uint64_t> heap_;
    uint32_t start_ = 0;
    uint32_t count_ = 0;
    uint32_t mask_ = kInlineCapacity - 1;
};

/** Observer invoked with the logical stack depth at every push/pop. */
class DepthObserver
{
  public:
    virtual ~DepthObserver() = default;
    /** @param lane lane id; @param depth logical depth after the op */
    virtual void onStackAccess(uint32_t lane, uint32_t depth) = 0;
};

/**
 * Hierarchical traversal stacks of all 32 lanes of one warp.
 *
 * Instances are created per trace-ray warp instruction: a warp leaves
 * the RT unit only when all its lanes finished (§V-B), so SH segments
 * can never stay borrowed across warps.
 */
class WarpStackModel
{
  public:
    /**
     * @param config      stack configuration
     * @param shared_base simulated shared-memory base of this warp
     *                    slot's SH stack file
     * @param local_base  simulated global-memory base of this warp's
     *                    per-thread spill regions
     */
    WarpStackModel(const StackConfig &config, Addr shared_base,
                   Addr local_base);

    /** Push @p value on @p lane's stack; transactions appended. */
    void push(uint32_t lane, uint64_t value, StackTxnList &txns);

    /**
     * Pop @p lane's stack top.
     * @return false when the stack is empty (traversal is over)
     */
    bool pop(uint32_t lane, uint64_t &value, StackTxnList &txns);

    /**
     * Read @p lane's stack top without popping — the RT unit reads the
     * top entry to obtain the next fetch address (§II-B) before the
     * operation completes and the actual pop happens. No transactions:
     * the top always resides in the on-chip RB stack.
     */
    uint64_t
    peek(uint32_t lane) const
    {
        SMS_ASSERT(!lanes_[lane].rb.empty(), "peek on empty stack");
        return lanes_[lane].rb.back();
    }

    /** True when @p lane's logical stack holds no values. */
    bool laneEmpty(uint32_t lane) const { return lanes_[lane].depth == 0; }

    /**
     * Logical stack depth of @p lane (across all three levels). O(1):
     * the depth counter is maintained on push/pop — internal migrations
     * between RB/SH/global never change the logical total.
     */
    uint32_t logicalDepth(uint32_t lane) const { return lanes_[lane].depth; }

    /**
     * Mark @p lane's traversal complete; with reallocation enabled its
     * dedicated SH segment becomes borrowable by other lanes.
     */
    void finishLane(uint32_t lane);

    /**
     * Terminate @p lane's traversal with entries still on the stack
     * (any-hit early-out). Hardware just resets the stack pointers, so
     * no memory transactions are generated; the lane then counts as
     * finished exactly like finishLane().
     */
    void abandonLane(uint32_t lane);

    bool laneFinished(uint32_t lane) const { return lanes_[lane].finished; }

    /** Install a depth observer (may be nullptr). */
    void setDepthObserver(DepthObserver *observer) { observer_ = observer; }

    const WarpStackStats &stats() const { return stats_; }
    const StackConfig &config() const { return config_; }

    /** Number of segments currently borrowed by @p lane (tests). */
    uint32_t borrowedCount(uint32_t lane) const;

    /** Entries currently resident in @p lane's SH chain (tests). */
    uint32_t shDepth(uint32_t lane) const;

    /** Entries currently spilled to global memory for @p lane (tests). */
    uint32_t
    globalDepth(uint32_t lane) const
    {
        return static_cast<uint32_t>(lanes_[lane].global.size());
    }

    /** Shared-memory address of segment-local entry slot (tests). */
    Addr sharedSlotAddr(uint32_t owner_lane, uint32_t slot) const;

  private:
    /** One per-lane SH segment (a circular queue in shared memory).
     *  Slot storage lives in the model-wide sh_slots_ array (indexed by
     *  owner lane) so constructing a warp costs one allocation, not 32. */
    struct Segment
    {
        uint32_t top = 0;
        uint32_t bottom = 0;
        uint32_t count = 0;
        uint32_t base = 0;     ///< skewed initial slot
        uint32_t flushes = 0;  ///< consecutive-flush counter
        uint32_t owner = 0;    ///< owning lane (fixed)
        int32_t borrower = -1; ///< borrowing lane, -1 when not borrowed
        bool available = false; ///< idle: owner finished, not borrowed

        bool empty() const { return count == 0; }
    };

    struct LaneState
    {
        RbRing rb;                        ///< front = oldest, back = top
        std::vector<uint32_t> chain;      ///< segment ids, front = bottom
        std::vector<uint64_t> global;     ///< back = newest spill
        uint32_t depth = 0;               ///< rb + SH chain + global
        uint32_t sh_count = 0;            ///< entries across the SH chain
        uint32_t global_high_water = 0;   ///< slots ever used (addressing)
        bool finished = false;
    };

    void spillFromRb(uint32_t lane, StackTxnList &txns);
    void shPushTop(uint32_t lane, uint64_t value, StackTxnList &txns);
    uint64_t shPopTop(uint32_t lane, StackTxnList &txns);
    void shPushBottom(uint32_t lane, uint64_t value, StackTxnList &txns);
    bool shBottomHasSpace(uint32_t lane) const;
    bool tryBorrow(uint32_t lane);
    bool tryFlushBottom(uint32_t lane, StackTxnList &txns,
                        bool ignore_budget = false);
    void singleMoveToGlobal(uint32_t lane, StackTxnList &txns);
    void pushGlobal(uint32_t lane, uint64_t value, StackTxnList &txns,
                    StackTxnOrigin origin = StackTxnOrigin::Spill);
    uint64_t popGlobal(uint32_t lane, StackTxnList &txns);
    void releaseIfEmptyBorrowed(uint32_t lane);
    void observe(uint32_t lane);

    /** Flip a segment's availability, maintaining available_count_. */
    void setAvailable(Segment &seg, bool available);

    bool segFull(const Segment &seg) const
    {
        return seg.count == config_.sh_entries;
    }

    /** Slot @p idx of the segment owned by lane @p owner. */
    uint64_t &shSlot(uint32_t owner, uint32_t idx)
    {
        return sh_slots_[owner * config_.sh_entries + idx];
    }

    Addr globalSlotAddr(uint32_t lane, uint32_t slot) const;

    StackConfig config_;
    Addr shared_base_;
    Addr local_base_;
    std::vector<Segment> segments_; ///< kWarpSize segments (may be empty)
    std::vector<uint64_t> sh_slots_; ///< kWarpSize * sh_entries values
    std::vector<LaneState> lanes_;
    /** Segments currently marked available — lets tryBorrow() skip its
     *  all-lane scan in the common case where no lane has finished. */
    uint32_t available_count_ = 0;
    WarpStackStats stats_;
    DepthObserver *observer_ = nullptr;
};

} // namespace sms

#endif // SMS_CORE_WARP_STACK_HPP
