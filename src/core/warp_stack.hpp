/**
 * @file
 * The SMS hierarchical traversal stack for one warp — the paper's core
 * contribution (§IV-§VI).
 *
 * Each of the 32 lanes owns:
 *  - a primary RB stack (rb_entries newest values, on-chip ray buffer),
 *  - optionally a chain of SH-stack segments in shared memory
 *    (its dedicated segment plus, with reallocation, segments borrowed
 *    from early-finished lanes), holding the middle of the stack,
 *  - an unbounded per-thread spill region in global memory holding the
 *    oldest values.
 *
 * Pushes that overflow the RB spill its oldest value downward; pops
 * eagerly refill upward (SH top -> RB bottom, then global top -> SH
 * bottom), exactly following Fig. 7 and §VI-A. Every operation returns
 * the per-lane transaction list the stack manager would issue, and the
 * model is value-exact: pops always return what an unbounded stack
 * would return.
 *
 * Layout: per-lane state is struct-of-arrays. All 32 RB rings live in
 * one flat slot pool (power-of-two stride per lane) with parallel
 * start/count arrays; depth, SH occupancy and the finished flags are
 * flat arrays/bitmask; segment chains are rows of one fixed 2-D index
 * array. A warp model is a handful of contiguous allocations reused
 * across jobs via reset(), instead of 32 lanes x several containers.
 */

#ifndef SMS_CORE_WARP_STACK_HPP
#define SMS_CORE_WARP_STACK_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "src/core/stack_config.hpp"
#include "src/core/stack_txn.hpp"
#include "src/memory/request.hpp"
#include "src/stats/histogram.hpp"
#include "src/util/check.hpp"

namespace sms {

/**
 * Growable circular buffer holding one lane's stack values: push/pop at
 * both ends without std::deque's segmented-map allocation per instance.
 *
 * This is the single-ring reference form of the RB level: the pooled
 * struct-of-arrays rings inside WarpStackModel use exactly this index
 * arithmetic (wrap mask, front at start_, back at start_ + count_ - 1),
 * and the randomized differential tests pit this class against
 * std::deque to pin the shared semantics — including grow()'s rebase of
 * a wrapped ring onto a doubled power-of-two span.
 */
class RbRing
{
  public:
    bool empty() const { return count_ == 0; }
    uint32_t size() const { return count_; }

    uint64_t back() const { return at((start_ + count_ - 1) & mask_); }
    uint64_t front() const { return at(start_); }

    void
    push_back(uint64_t value)
    {
        if (count_ > mask_)
            grow();
        at((start_ + count_) & mask_) = value;
        ++count_;
    }

    void
    pop_back()
    {
        SMS_DEBUG_ASSERT(count_ > 0, "pop_back on empty ring");
        --count_;
    }

    void
    push_front(uint64_t value)
    {
        if (count_ > mask_)
            grow();
        start_ = (start_ + mask_) & mask_;
        at(start_) = value;
        ++count_;
    }

    void
    pop_front()
    {
        SMS_DEBUG_ASSERT(count_ > 0, "pop_front on empty ring");
        start_ = (start_ + 1) & mask_;
        --count_;
    }

    void
    clear()
    {
        start_ = 0;
        count_ = 0;
    }

  private:
    void grow();

    /** Storage: the inline array until the first grow(), heap after. */
    uint64_t &at(uint32_t i) { return heap_.empty() ? inline_[i] : heap_[i]; }
    uint64_t at(uint32_t i) const
    {
        return heap_.empty() ? inline_[i] : heap_[i];
    }

    static constexpr uint32_t kInlineCapacity = 8; ///< power of two
    uint64_t inline_[kInlineCapacity];
    std::vector<uint64_t> heap_;
    uint32_t start_ = 0;
    uint32_t count_ = 0;
    uint32_t mask_ = kInlineCapacity - 1;
};

/** Observer invoked with the logical stack depth at every push/pop. */
class DepthObserver
{
  public:
    virtual ~DepthObserver() = default;
    /** @param lane lane id; @param depth logical depth after the op */
    virtual void onStackAccess(uint32_t lane, uint32_t depth) = 0;
};

/**
 * Hierarchical traversal stacks of all 32 lanes of one warp.
 *
 * Instances are created per trace-ray warp instruction: a warp leaves
 * the RT unit only when all its lanes finished (§V-B), so SH segments
 * can never stay borrowed across warps. The timing simulator recycles
 * one instance across jobs via reset() rather than reconstructing.
 *
 * Every mutating operation has two forms: one emitting into a plain
 * StackTxnList (tests, standalone use) and one appending to the
 * caller's lane list inside a StackTxnArena (the timing hot path).
 * Both run the identical template implementation.
 */
class WarpStackModel
{
  public:
    /**
     * @param config      stack configuration
     * @param shared_base simulated shared-memory base of this warp
     *                    slot's SH stack file
     * @param local_base  simulated global-memory base of this warp's
     *                    per-thread spill regions
     */
    WarpStackModel(const StackConfig &config, Addr shared_base,
                   Addr local_base);

    /**
     * Return the model to its just-constructed state (same config) for
     * a new warp job at new base addresses. Statistics reset; all
     * storage is retained, so no allocations occur.
     */
    void reset(Addr shared_base, Addr local_base);

    /** Push @p value on @p lane's stack; transactions appended. */
    void push(uint32_t lane, uint64_t value, StackTxnList &txns);
    /** Arena form: transactions append to @p lane's list in @p arena. */
    void push(uint32_t lane, uint64_t value, StackTxnArena &arena);

    /**
     * Pop @p lane's stack top.
     * @return false when the stack is empty (traversal is over)
     */
    bool pop(uint32_t lane, uint64_t &value, StackTxnList &txns);
    /** Arena form: transactions append to @p lane's list in @p arena. */
    bool pop(uint32_t lane, uint64_t &value, StackTxnArena &arena);

    /**
     * Read @p lane's stack top without popping — the RT unit reads the
     * top entry to obtain the next fetch address (§II-B) before the
     * operation completes and the actual pop happens. No transactions:
     * the top always resides in the on-chip RB stack.
     */
    uint64_t
    peek(uint32_t lane) const
    {
        SMS_ASSERT(rb_count_[lane] > 0, "peek on empty stack");
        return rbBack(lane);
    }

    /** True when @p lane's logical stack holds no values. */
    bool laneEmpty(uint32_t lane) const { return depth_[lane] == 0; }

    /**
     * Logical stack depth of @p lane (across all three levels). O(1):
     * the depth counter is maintained on push/pop — internal migrations
     * between RB/SH/global never change the logical total.
     */
    uint32_t logicalDepth(uint32_t lane) const { return depth_[lane]; }

    /**
     * Mark @p lane's traversal complete; with reallocation enabled its
     * dedicated SH segment becomes borrowable by other lanes.
     */
    void finishLane(uint32_t lane);

    /**
     * Terminate @p lane's traversal with entries still on the stack
     * (any-hit early-out). Hardware just resets the stack pointers, so
     * no memory transactions are generated; the lane then counts as
     * finished exactly like finishLane().
     */
    void abandonLane(uint32_t lane);

    bool
    laneFinished(uint32_t lane) const
    {
        return (finished_mask_ & (1u << lane)) != 0;
    }

    /** Install a depth observer (may be nullptr). */
    void setDepthObserver(DepthObserver *observer) { observer_ = observer; }

    /**
     * Feed every access's logical depth straight into @p hist (may be
     * nullptr). The direct pointer replaces a virtual observer call on
     * the hot path; an observer is only needed for traced warps.
     */
    void setDepthHistogram(Histogram *hist) { depth_hist_ = hist; }

    const WarpStackStats &stats() const { return stats_; }
    const StackConfig &config() const { return config_; }

    /** Number of segments currently borrowed by @p lane (tests). */
    uint32_t borrowedCount(uint32_t lane) const;

    /** Entries currently resident in @p lane's SH chain (tests). */
    uint32_t shDepth(uint32_t lane) const;

    /** Entries currently spilled to global memory for @p lane (tests). */
    uint32_t
    globalDepth(uint32_t lane) const
    {
        return static_cast<uint32_t>(global_[lane].size());
    }

    /** Shared-memory address of segment-local entry slot (tests). */
    Addr sharedSlotAddr(uint32_t owner_lane, uint32_t slot) const;

  private:
    /** One per-lane SH segment (a circular queue in shared memory).
     *  Slot storage lives in the model-wide sh_slots_ array (indexed by
     *  owner lane) so constructing a warp costs one allocation, not 32. */
    struct Segment
    {
        uint32_t top = 0;
        uint32_t bottom = 0;
        uint32_t count = 0;
        uint32_t base = 0;     ///< skewed initial slot
        uint32_t flushes = 0;  ///< consecutive-flush counter
        uint32_t owner = 0;    ///< owning lane (fixed)
        int32_t borrower = -1; ///< borrowing lane, -1 when not borrowed
        bool available = false; ///< idle: owner finished, not borrowed

        bool empty() const { return count == 0; }
    };

    // --- pooled RB rings (SoA) ------------------------------------------
    // Lane i's ring occupies rb_slots_[i * rb_stride_ ... + rb_stride_)
    // as a circular buffer: front (oldest) at rb_start_, back (top) at
    // rb_start_ + rb_count_ - 1, indices wrapped by rb_mask_. The
    // arithmetic mirrors class RbRing above; rb_unbounded configs grow
    // the whole pool (every lane's stride doubles, rings rebase to 0).

    uint64_t &
    rbSlot(uint32_t lane, uint32_t i)
    {
        return rb_slots_[lane * rb_stride_ + (i & rb_mask_)];
    }
    uint64_t
    rbSlot(uint32_t lane, uint32_t i) const
    {
        return rb_slots_[lane * rb_stride_ + (i & rb_mask_)];
    }

    uint64_t
    rbBack(uint32_t lane) const
    {
        return rbSlot(lane, rb_start_[lane] + rb_count_[lane] - 1);
    }
    uint64_t rbFront(uint32_t lane) const
    {
        return rbSlot(lane, rb_start_[lane]);
    }

    void
    rbPushBack(uint32_t lane, uint64_t value)
    {
        if (rb_count_[lane] > rb_mask_)
            growRbPool();
        rbSlot(lane, rb_start_[lane] + rb_count_[lane]) = value;
        ++rb_count_[lane];
    }

    void
    rbPopBack(uint32_t lane)
    {
        SMS_DEBUG_ASSERT(rb_count_[lane] > 0, "pop_back on empty ring");
        --rb_count_[lane];
    }

    void
    rbPushFront(uint32_t lane, uint64_t value)
    {
        if (rb_count_[lane] > rb_mask_)
            growRbPool();
        rb_start_[lane] = (rb_start_[lane] + rb_mask_) & rb_mask_;
        rbSlot(lane, rb_start_[lane]) = value;
        ++rb_count_[lane];
    }

    void
    rbPopFront(uint32_t lane)
    {
        SMS_DEBUG_ASSERT(rb_count_[lane] > 0, "pop_front on empty ring");
        rb_start_[lane] = (rb_start_[lane] + 1) & rb_mask_;
        --rb_count_[lane];
    }

    /** Double the pool stride; every ring rebases to start 0. */
    void growRbPool();

    // --- segment chains -------------------------------------------------
    // Row lane of chain_ holds that lane's segment ids, bottom first.
    // A chain is at most the dedicated segment plus kWarpSize borrowed
    // ones, so rows are fixed-size and the whole table is one array.

    static constexpr uint32_t kChainRow = kWarpSize + 1;

    uint32_t
    chainAt(uint32_t lane, uint32_t idx) const
    {
        return chain_[lane * kChainRow + idx];
    }
    uint32_t chainLen(uint32_t lane) const { return chain_len_[lane]; }
    uint32_t chainFront(uint32_t lane) const { return chainAt(lane, 0); }
    uint32_t
    chainBack(uint32_t lane) const
    {
        return chainAt(lane, chain_len_[lane] - 1);
    }

    void
    chainPushBack(uint32_t lane, uint32_t seg_id)
    {
        SMS_DEBUG_ASSERT(chain_len_[lane] < kChainRow, "chain overflow");
        chain_[lane * kChainRow + chain_len_[lane]++] = seg_id;
    }

    void chainPopBack(uint32_t lane) { --chain_len_[lane]; }

    /** Rotate left by one: the bottom segment becomes the top. */
    void
    chainPromoteBottom(uint32_t lane)
    {
        uint32_t *row = &chain_[lane * kChainRow];
        uint32_t bottom = row[0];
        for (uint32_t i = 1; i < chain_len_[lane]; ++i)
            row[i - 1] = row[i];
        row[chain_len_[lane] - 1] = bottom;
    }

    // --- operation implementation (shared by list and arena forms) ------

    template <class Sink>
    void pushT(uint32_t lane, uint64_t value, Sink &txns);
    template <class Sink>
    bool popT(uint32_t lane, uint64_t &value, Sink &txns);
    template <class Sink> void spillFromRb(uint32_t lane, Sink &txns);
    template <class Sink>
    void shPushTop(uint32_t lane, uint64_t value, Sink &txns);
    template <class Sink> uint64_t shPopTop(uint32_t lane, Sink &txns);
    template <class Sink>
    void shPushBottom(uint32_t lane, uint64_t value, Sink &txns);
    bool shBottomHasSpace(uint32_t lane) const;
    bool tryBorrow(uint32_t lane);
    template <class Sink>
    bool tryFlushBottom(uint32_t lane, Sink &txns,
                        bool ignore_budget = false);
    template <class Sink> void singleMoveToGlobal(uint32_t lane, Sink &txns);
    template <class Sink>
    void pushGlobal(uint32_t lane, uint64_t value, Sink &txns,
                    StackTxnOrigin origin = StackTxnOrigin::Spill);
    template <class Sink> uint64_t popGlobal(uint32_t lane, Sink &txns);
    void releaseIfEmptyBorrowed(uint32_t lane);

    void
    observe(uint32_t lane)
    {
        if (depth_hist_)
            depth_hist_->add(depth_[lane]);
        if (observer_)
            observer_->onStackAccess(lane, depth_[lane]);
    }

    /** Flip a segment's availability, maintaining available_count_. */
    void setAvailable(Segment &seg, bool available);

    bool segFull(const Segment &seg) const
    {
        return seg.count == config_.sh_entries;
    }

    /** Slot @p idx of the segment owned by lane @p owner. */
    uint64_t &shSlot(uint32_t owner, uint32_t idx)
    {
        return sh_slots_[owner * config_.sh_entries + idx];
    }

    Addr globalSlotAddr(uint32_t lane, uint32_t slot) const;

    StackConfig config_;
    Addr shared_base_;
    Addr local_base_;
    bool has_sh_ = false; ///< cached config_.hasShStack()

    /** RB slot pool: kWarpSize rings of rb_stride_ slots each. */
    std::vector<uint64_t> rb_slots_;
    uint32_t rb_stride_ = 0; ///< power of two
    uint32_t rb_mask_ = 0;   ///< rb_stride_ - 1
    std::array<uint32_t, kWarpSize> rb_start_;
    std::array<uint32_t, kWarpSize> rb_count_;

    std::array<uint32_t, kWarpSize> depth_;    ///< rb + SH chain + global
    std::array<uint32_t, kWarpSize> sh_count_; ///< entries across SH chain
    /** Spill slots ever used per lane (addressing high-water). */
    std::array<uint32_t, kWarpSize> global_high_water_;
    uint32_t finished_mask_ = 0; ///< bit i: lane i finished

    /** Per-lane global spill values, back = newest. */
    std::array<std::vector<uint64_t>, kWarpSize> global_;

    std::array<uint32_t, kWarpSize * kChainRow> chain_;
    std::array<uint32_t, kWarpSize> chain_len_;

    std::array<Segment, kWarpSize> segments_; ///< valid when has_sh_
    std::vector<uint64_t> sh_slots_; ///< kWarpSize * sh_entries values
    /** Segments currently marked available — lets tryBorrow() skip its
     *  all-lane scan in the common case where no lane has finished. */
    uint32_t available_count_ = 0;
    WarpStackStats stats_;
    DepthObserver *observer_ = nullptr;
    /** Direct depth-histogram sink (devirtualized hot path). */
    Histogram *depth_hist_ = nullptr;
    /** Timeline-enabled flags snapshotted at reset(): the per-op
     *  timelineOn() atomic loads dominate otherwise. The mask is fixed
     *  for a whole run (configured before models are built), so a
     *  per-reset snapshot observes every legitimate change. */
    bool tl_stack_ops_ = false;
    bool tl_stack_ = false;
};

} // namespace sms

#endif // SMS_CORE_WARP_STACK_HPP
