/**
 * @file
 * Hierarchical traversal-stack implementation (see warp_stack.hpp).
 *
 * The push/pop machinery is templated over the transaction sink (plain
 * StackTxnList or a LaneTxnSink into the pooled StackTxnArena); the
 * public non-template entry points below instantiate both forms in this
 * translation unit.
 */

#include "src/core/warp_stack.hpp"

#include <algorithm>

#include "src/stats/timeline.hpp"
#include "src/util/check.hpp"

namespace sms {

void
RbRing::grow()
{
    std::vector<uint64_t> wider((mask_ + 1) * 2);
    for (uint32_t i = 0; i < count_; ++i)
        wider[i] = at((start_ + i) & mask_);
    heap_ = std::move(wider);
    start_ = 0;
    mask_ = static_cast<uint32_t>(heap_.size()) - 1;
}

namespace {

uint32_t
roundUpPowerOfTwo(uint32_t v)
{
    uint32_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

WarpStackModel::WarpStackModel(const StackConfig &config, Addr shared_base,
                               Addr local_base)
    : config_(config), shared_base_(shared_base), local_base_(local_base)
{
    SMS_ASSERT(config.rb_entries >= 1 || config.rb_unbounded,
               "RB stack needs at least one entry");
    has_sh_ = config_.hasShStack();
    // Bounded rings never exceed rb_entries (push spills first);
    // unbounded rings start small and grow the pool on demand.
    rb_stride_ = config_.rb_unbounded
                     ? 8
                     : roundUpPowerOfTwo(std::max(config_.rb_entries, 1u));
    rb_mask_ = rb_stride_ - 1;
    rb_slots_.resize(static_cast<size_t>(kWarpSize) * rb_stride_);
    if (has_sh_)
        sh_slots_.assign(static_cast<size_t>(kWarpSize) * config_.sh_entries,
                         0);
    reset(shared_base, local_base);
}

void
WarpStackModel::reset(Addr shared_base, Addr local_base)
{
    shared_base_ = shared_base;
    local_base_ = local_base;
    tl_stack_ops_ = timelineOn(TimelineCategory::StackOps);
    tl_stack_ = timelineOn(TimelineCategory::Stack);
    rb_start_.fill(0);
    rb_count_.fill(0);
    depth_.fill(0);
    sh_count_.fill(0);
    global_high_water_.fill(0);
    finished_mask_ = 0;
    for (std::vector<uint64_t> &g : global_)
        g.clear();
    chain_len_.fill(0);
    available_count_ = 0;
    stats_ = WarpStackStats{};
    if (has_sh_) {
        for (uint32_t lane = 0; lane < kWarpSize; ++lane) {
            Segment &seg = segments_[lane];
            seg = Segment{};
            seg.owner = lane;
            seg.base = config_.skewed_bank_access
                           ? skewBaseEntry(lane, config_.sh_entries)
                           : 0;
            seg.top = seg.base;
            seg.bottom = seg.base;
            // Each lane's chain starts with its dedicated segment.
            chainPushBack(lane, lane);
        }
    }
}

void
WarpStackModel::growRbPool()
{
    uint32_t new_stride = rb_stride_ * 2;
    std::vector<uint64_t> wider(static_cast<size_t>(kWarpSize) *
                                new_stride);
    for (uint32_t lane = 0; lane < kWarpSize; ++lane) {
        for (uint32_t i = 0; i < rb_count_[lane]; ++i)
            wider[static_cast<size_t>(lane) * new_stride + i] =
                rbSlot(lane, rb_start_[lane] + i);
        rb_start_[lane] = 0;
    }
    rb_slots_ = std::move(wider);
    rb_stride_ = new_stride;
    rb_mask_ = new_stride - 1;
}

Addr
WarpStackModel::sharedSlotAddr(uint32_t owner_lane, uint32_t slot) const
{
    return shared_base_ +
           (static_cast<Addr>(owner_lane) * config_.sh_entries + slot) *
               kStackEntryBytes;
}

Addr
WarpStackModel::globalSlotAddr(uint32_t lane, uint32_t slot) const
{
    // Interleaved per-thread local memory: consecutive spill slots of
    // one thread are kWarpSize entries apart, so lanes spilling the
    // same slot index coalesce while divergent depths do not (§II-C).
    return local_base_ +
           (static_cast<Addr>(slot) * kWarpSize + lane) * kStackEntryBytes;
}

uint32_t
WarpStackModel::shDepth(uint32_t lane) const
{
    uint32_t total = 0;
    for (uint32_t i = 0; i < chain_len_[lane]; ++i)
        total += segments_[chainAt(lane, i)].count;
    return total;
}

uint32_t
WarpStackModel::borrowedCount(uint32_t lane) const
{
    uint32_t n = 0;
    for (uint32_t i = 0; i < chain_len_[lane]; ++i)
        if (segments_[chainAt(lane, i)].owner != lane)
            ++n;
    return n;
}

template <class Sink>
void
WarpStackModel::pushT(uint32_t lane, uint64_t value, Sink &txns)
{
    SMS_ASSERT(lane < kWarpSize, "lane %u out of range", lane);
    SMS_ASSERT(!laneFinished(lane), "push on finished lane %u", lane);

    if (!config_.rb_unbounded && rb_count_[lane] == config_.rb_entries)
        spillFromRb(lane, txns);

    rbPushBack(lane, value);
    uint32_t depth = ++depth_[lane];
    ++stats_.pushes;
    if (tl_stack_ops_)
        timelineInstantNow(TimelineCategory::StackOps, "push", depth,
                           "depth");
    if (depth > stats_.max_logical_depth)
        stats_.max_logical_depth = depth;
    observe(lane);
}

template <class Sink>
void
WarpStackModel::spillFromRb(uint32_t lane, Sink &txns)
{
    uint64_t oldest = rbFront(lane);
    rbPopFront(lane);
    ++stats_.rb_spills;
    if (has_sh_) {
        ++stats_.rb_spills_to_sh;
        if (tl_stack_)
            timelineInstantNow(TimelineCategory::Stack, "spill_rb_to_sh",
                               lane, "lane");
        shPushTop(lane, oldest, txns);
    } else {
        ++stats_.rb_spills_to_global;
        if (tl_stack_)
            timelineInstantNow(TimelineCategory::Stack,
                               "spill_rb_to_global", lane, "lane");
        pushGlobal(lane, oldest, txns);
    }
}

template <class Sink>
void
WarpStackModel::shPushTop(uint32_t lane, uint64_t value, Sink &txns)
{
    SMS_ASSERT(chain_len_[lane] > 0, "lane %u has no SH segment", lane);

    Segment *top = &segments_[chainBack(lane)];
    if (segFull(*top)) {
        bool resolved = false;
        if (config_.intra_warp_realloc) {
            if (borrowedCount(lane) < config_.max_borrowed &&
                tryBorrow(lane)) {
                resolved = true;
            } else if (chain_len_[lane] > 1 &&
                       tryFlushBottom(lane, txns)) {
                // Flushing exists because *linked* stacks are not
                // contiguous (§VI-B); with a single dedicated segment
                // the plain single-entry move below applies.
                resolved = true;
            } else if (chain_len_[lane] > 1) {
                // The paper sizes the flush budget so this never
                // happens on its workloads (§VI-B: 72 entries suffice).
                // Beyond that envelope, correctness requires flushing
                // anyway; the forced flush is counted separately.
                bool flushed = tryFlushBottom(lane, txns, true);
                SMS_ASSERT(flushed, "forced flush failed");
                ++stats_.forced_flushes;
                if (tl_stack_)
                    timelineInstantNow(TimelineCategory::Stack,
                                       "forced_flush", lane, "lane");
                resolved = true;
            }
        }
        if (!resolved) {
            // Single-entry move: oldest SH value migrates off-chip
            // (shared load + global store), freeing one slot (§VI-A).
            singleMoveToGlobal(lane, txns);
        }
        top = &segments_[chainBack(lane)];
        SMS_ASSERT(!segFull(*top), "SH top still full after overflow fix");
    }

    // Circular push at the segment top.
    if (top->empty()) {
        top->top = top->base;
        top->bottom = top->base;
    } else {
        top->top = (top->top + 1) % config_.sh_entries;
    }
    shSlot(top->owner, top->top) = value;
    ++top->count;
    ++sh_count_[lane];
    txns.push_back({StackTxnKind::SharedStore,
                    sharedSlotAddr(top->owner, top->top),
                    kStackEntryBytes, StackTxnOrigin::Spill});
    ++stats_.sh_stores;
}

template <class Sink>
uint64_t
WarpStackModel::shPopTop(uint32_t lane, Sink &txns)
{
    // Find the topmost non-empty segment (empty own segments may sit in
    // the chain after flush promotions; they hold nothing).
    int idx = static_cast<int>(chain_len_[lane]) - 1;
    while (idx >= 0 && segments_[chainAt(lane, idx)].empty())
        --idx;
    SMS_ASSERT(idx >= 0, "shPopTop on empty SH chain (lane %u)", lane);

    Segment &seg = segments_[chainAt(lane, static_cast<uint32_t>(idx))];
    uint64_t value = shSlot(seg.owner, seg.top);
    txns.push_back({StackTxnKind::SharedLoad,
                    sharedSlotAddr(seg.owner, seg.top), kStackEntryBytes,
                    StackTxnOrigin::Refill});
    ++stats_.sh_loads;
    --seg.count;
    --sh_count_[lane];
    if (seg.empty()) {
        seg.top = seg.base;
        seg.bottom = seg.base;
        seg.flushes = 0; // drained: consecutive-flush budget resets
    } else {
        seg.top = (seg.top + config_.sh_entries - 1) % config_.sh_entries;
    }

    releaseIfEmptyBorrowed(lane);
    return value;
}

void
WarpStackModel::setAvailable(Segment &seg, bool available)
{
    if (seg.available == available)
        return;
    seg.available = available;
    if (available)
        ++available_count_;
    else
        --available_count_;
}

void
WarpStackModel::releaseIfEmptyBorrowed(uint32_t lane)
{
    // Release empty borrowed segments from the top of the chain; the
    // paper releases the top stack the moment it empties (§V-B).
    while (chain_len_[lane] > 0) {
        Segment &seg = segments_[chainBack(lane)];
        if (seg.owner == lane || !seg.empty())
            break;
        seg.borrower = -1;
        seg.flushes = 0;
        setAvailable(seg, laneFinished(seg.owner));
        chainPopBack(lane);
    }
}

template <class Sink>
void
WarpStackModel::shPushBottom(uint32_t lane, uint64_t value, Sink &txns)
{
    Segment &seg = segments_[chainFront(lane)];
    SMS_ASSERT(!segFull(seg), "shPushBottom on full bottom segment");
    if (seg.empty()) {
        seg.top = seg.base;
        seg.bottom = seg.base;
    } else {
        seg.bottom =
            (seg.bottom + config_.sh_entries - 1) % config_.sh_entries;
    }
    shSlot(seg.owner, seg.bottom) = value;
    ++seg.count;
    ++sh_count_[lane];
    txns.push_back({StackTxnKind::SharedStore,
                    sharedSlotAddr(seg.owner, seg.bottom),
                    kStackEntryBytes, StackTxnOrigin::Refill});
    ++stats_.sh_stores;
}

bool
WarpStackModel::shBottomHasSpace(uint32_t lane) const
{
    if (chain_len_[lane] == 0)
        return false;
    return !segFull(segments_[chainFront(lane)]);
}

bool
WarpStackModel::tryBorrow(uint32_t lane)
{
    // Common case: no lane finished yet, nothing borrowable — skip the
    // scan entirely.
    if (available_count_ == 0)
        return false;
    // Deterministic policy: borrow the available segment with the
    // lowest owner lane id.
    for (uint32_t owner = 0; owner < kWarpSize; ++owner) {
        Segment &seg = segments_[owner];
        if (!seg.available)
            continue;
        SMS_ASSERT(seg.empty(), "available segment %u not empty", owner);
        setAvailable(seg, false);
        seg.borrower = static_cast<int32_t>(lane);
        seg.flushes = 0;
        seg.top = seg.base;
        seg.bottom = seg.base;
        chainPushBack(lane, owner);
        ++stats_.borrows;
        if (tl_stack_)
            timelineInstantNow(TimelineCategory::Stack, "borrow",
                               chain_len_[lane], "chain_len");
        uint32_t len = chain_len_[lane];
        if (len >= kBorrowChainBuckets)
            len = kBorrowChainBuckets - 1;
        ++stats_.borrow_chain_hist[len];
        return true;
    }
    return false;
}

template <class Sink>
bool
WarpStackModel::tryFlushBottom(uint32_t lane, Sink &txns,
                               bool ignore_budget)
{
    uint32_t bottom_id = chainFront(lane);
    Segment &seg = segments_[bottom_id];

    if (seg.empty()) {
        // Nothing to flush: promoting the empty bottom segment to the
        // top provides capacity for free (possible when the dedicated
        // segment drained while borrowed segments still hold entries).
        if (chain_len_[lane] == 1)
            return false; // it is already the top and it is full-checked
        chainPromoteBottom(lane);
        return true;
    }

    if (seg.flushes >= config_.max_flushes && !ignore_budget)
        return false;

    // Flush the entire bottom segment to global memory, oldest first,
    // then promote the emptied segment to the top of the chain (§VI-B).
    StackTxnOrigin origin = ignore_budget ? StackTxnOrigin::ForcedFlush
                                          : StackTxnOrigin::BorrowChain;
    uint32_t flushed = seg.count;
    while (!seg.empty()) {
        uint64_t value = shSlot(seg.owner, seg.bottom);
        txns.push_back({StackTxnKind::SharedLoad,
                        sharedSlotAddr(seg.owner, seg.bottom),
                        kStackEntryBytes, origin});
        ++stats_.sh_loads;
        --seg.count;
        if (!seg.empty()) {
            seg.bottom = (seg.bottom + 1) % config_.sh_entries;
        }
        pushGlobal(lane, value, txns, origin);
    }
    seg.top = seg.base;
    seg.bottom = seg.base;
    sh_count_[lane] -= flushed;
    ++seg.flushes;
    ++stats_.flushes;
    stats_.flushed_entries += flushed;
    if (tl_stack_)
        timelineInstantNow(TimelineCategory::Stack, "flush", flushed,
                           "entries");

    if (chain_len_[lane] > 1)
        chainPromoteBottom(lane);
    return true;
}

template <class Sink>
void
WarpStackModel::singleMoveToGlobal(uint32_t lane, Sink &txns)
{
    // Oldest SH entry lives at the bottom of the bottom-most non-empty
    // segment.
    uint32_t idx = 0;
    while (idx < chain_len_[lane] && segments_[chainAt(lane, idx)].empty())
        ++idx;
    SMS_ASSERT(idx < chain_len_[lane],
               "single move with empty SH chain (lane %u)", lane);
    Segment &seg = segments_[chainAt(lane, idx)];

    uint64_t value = shSlot(seg.owner, seg.bottom);
    txns.push_back({StackTxnKind::SharedLoad,
                    sharedSlotAddr(seg.owner, seg.bottom),
                    kStackEntryBytes, StackTxnOrigin::Spill});
    ++stats_.sh_loads;
    --seg.count;
    --sh_count_[lane];
    if (seg.empty()) {
        seg.top = seg.base;
        seg.bottom = seg.base;
        seg.flushes = 0;
    } else {
        seg.bottom = (seg.bottom + 1) % config_.sh_entries;
    }
    pushGlobal(lane, value, txns);
    ++stats_.single_moves;
    if (tl_stack_)
        timelineInstantNow(TimelineCategory::Stack, "single_move", lane,
                           "lane");
}

template <class Sink>
void
WarpStackModel::pushGlobal(uint32_t lane, uint64_t value, Sink &txns,
                           StackTxnOrigin origin)
{
    std::vector<uint64_t> &g = global_[lane];
    g.push_back(value);
    uint32_t slot = static_cast<uint32_t>(g.size()) - 1;
    if (slot + 1 > global_high_water_[lane])
        global_high_water_[lane] = slot + 1;
    txns.push_back({StackTxnKind::GlobalStore, globalSlotAddr(lane, slot),
                    kStackEntryBytes, origin});
    ++stats_.global_stores;
}

template <class Sink>
uint64_t
WarpStackModel::popGlobal(uint32_t lane, Sink &txns)
{
    std::vector<uint64_t> &g = global_[lane];
    SMS_ASSERT(!g.empty(), "popGlobal on empty spill region");
    uint32_t slot = static_cast<uint32_t>(g.size()) - 1;
    uint64_t value = g.back();
    g.pop_back();
    txns.push_back({StackTxnKind::GlobalLoad, globalSlotAddr(lane, slot),
                    kStackEntryBytes, StackTxnOrigin::Refill});
    ++stats_.global_loads;
    return value;
}

template <class Sink>
bool
WarpStackModel::popT(uint32_t lane, uint64_t &value, Sink &txns)
{
    SMS_ASSERT(lane < kWarpSize, "lane %u out of range", lane);
    if (depth_[lane] == 0)
        return false;

    observe(lane); // record the occupied depth this pop touches
    SMS_ASSERT(rb_count_[lane] > 0, "logical depth > 0 but RB empty");
    value = rbBack(lane);
    rbPopBack(lane);
    uint32_t depth = --depth_[lane];
    ++stats_.pops;
    if (tl_stack_ops_)
        timelineInstantNow(TimelineCategory::StackOps, "pop", depth,
                           "depth");

    // Eager refill (Fig. 7 steps 2/5/6). sh_count > 0 implies an SH
    // stack exists, so no separate hasShStack() check is needed.
    if (sh_count_[lane] > 0) {
        uint64_t from_sh = shPopTop(lane, txns);
        rbPushFront(lane, from_sh);
        ++stats_.rb_refills;
        ++stats_.rb_refills_from_sh;
        if (tl_stack_)
            timelineInstantNow(TimelineCategory::Stack, "refill_from_sh",
                               lane, "lane");
        if (!global_[lane].empty() && shBottomHasSpace(lane)) {
            uint64_t from_global = popGlobal(lane, txns);
            shPushBottom(lane, from_global, txns);
        }
    } else if (!global_[lane].empty()) {
        uint64_t from_global = popGlobal(lane, txns);
        rbPushFront(lane, from_global);
        ++stats_.rb_refills;
        ++stats_.rb_refills_from_global;
        if (tl_stack_)
            timelineInstantNow(TimelineCategory::Stack,
                               "refill_from_global", lane, "lane");
    }
    return true;
}

void
WarpStackModel::abandonLane(uint32_t lane)
{
    rb_start_[lane] = 0;
    rb_count_[lane] = 0;
    global_[lane].clear();
    depth_[lane] = 0;
    sh_count_[lane] = 0;
    if (has_sh_) {
        for (uint32_t i = 0; i < chain_len_[lane]; ++i) {
            Segment &seg = segments_[chainAt(lane, i)];
            seg.count = 0;
            seg.top = seg.base;
            seg.bottom = seg.base;
        }
    }
    finishLane(lane);
}

void
WarpStackModel::finishLane(uint32_t lane)
{
    SMS_ASSERT(laneEmpty(lane), "finishLane with non-empty stack");
    finished_mask_ |= 1u << lane;
    if (!has_sh_)
        return;

    // Release any leftover borrowed segments (all empty by now); only
    // the dedicated segment stays in the chain. Flush promotions can
    // leave the dedicated segment anywhere in the chain, so filter by
    // ownership rather than position.
    uint32_t kept = 0;
    uint32_t *row = &chain_[lane * kChainRow];
    for (uint32_t i = 0; i < chain_len_[lane]; ++i) {
        Segment &seg = segments_[row[i]];
        SMS_ASSERT(seg.empty(), "releasing non-empty segment");
        if (seg.owner == lane) {
            row[kept++] = row[i];
            continue;
        }
        seg.borrower = -1;
        seg.flushes = 0;
        setAvailable(seg, laneFinished(seg.owner));
    }
    SMS_ASSERT(kept == 1, "lane %u lost its dedicated segment", lane);
    chain_len_[lane] = kept;

    // The dedicated segment becomes borrowable if nobody borrowed it
    // already while we were running (impossible) — mark it idle.
    Segment &own = segments_[lane];
    if (own.borrower < 0) {
        setAvailable(own, config_.intra_warp_realloc);
        own.flushes = 0;
    }
}

// ---------------------------------------------------------------------
// Public entry points: instantiate the template machinery for the plain
// list sink (tests, standalone use) and the arena sink (timing path).
// ---------------------------------------------------------------------

void
WarpStackModel::push(uint32_t lane, uint64_t value, StackTxnList &txns)
{
    pushT(lane, value, txns);
}

void
WarpStackModel::push(uint32_t lane, uint64_t value, StackTxnArena &arena)
{
    LaneTxnSink sink{&arena, lane};
    pushT(lane, value, sink);
}

bool
WarpStackModel::pop(uint32_t lane, uint64_t &value, StackTxnList &txns)
{
    return popT(lane, value, txns);
}

bool
WarpStackModel::pop(uint32_t lane, uint64_t &value, StackTxnArena &arena)
{
    LaneTxnSink sink{&arena, lane};
    return popT(lane, value, sink);
}

} // namespace sms
