/**
 * @file
 * Hierarchical traversal-stack implementation (see warp_stack.hpp).
 */

#include "src/core/warp_stack.hpp"

#include <algorithm>

#include "src/stats/timeline.hpp"
#include "src/util/check.hpp"

namespace sms {

void
RbRing::grow()
{
    std::vector<uint64_t> wider((mask_ + 1) * 2);
    for (uint32_t i = 0; i < count_; ++i)
        wider[i] = at((start_ + i) & mask_);
    heap_ = std::move(wider);
    start_ = 0;
    mask_ = static_cast<uint32_t>(heap_.size()) - 1;
}

WarpStackModel::WarpStackModel(const StackConfig &config, Addr shared_base,
                               Addr local_base)
    : config_(config), shared_base_(shared_base), local_base_(local_base)
{
    SMS_ASSERT(config.rb_entries >= 1 || config.rb_unbounded,
               "RB stack needs at least one entry");
    lanes_.resize(kWarpSize);
    if (config_.hasShStack()) {
        segments_.resize(kWarpSize);
        sh_slots_.assign(static_cast<size_t>(kWarpSize) * config_.sh_entries,
                         0);
        for (uint32_t lane = 0; lane < kWarpSize; ++lane) {
            Segment &seg = segments_[lane];
            seg.owner = lane;
            seg.base = config_.skewed_bank_access
                           ? skewBaseEntry(lane, config_.sh_entries)
                           : 0;
            seg.top = seg.base;
            seg.bottom = seg.base;
            // Each lane's chain starts with its dedicated segment.
            lanes_[lane].chain.push_back(lane);
        }
    }
}

Addr
WarpStackModel::sharedSlotAddr(uint32_t owner_lane, uint32_t slot) const
{
    return shared_base_ +
           (static_cast<Addr>(owner_lane) * config_.sh_entries + slot) *
               kStackEntryBytes;
}

Addr
WarpStackModel::globalSlotAddr(uint32_t lane, uint32_t slot) const
{
    // Interleaved per-thread local memory: consecutive spill slots of
    // one thread are kWarpSize entries apart, so lanes spilling the
    // same slot index coalesce while divergent depths do not (§II-C).
    return local_base_ +
           (static_cast<Addr>(slot) * kWarpSize + lane) * kStackEntryBytes;
}

uint32_t
WarpStackModel::shDepth(uint32_t lane) const
{
    uint32_t total = 0;
    for (uint32_t seg_id : lanes_[lane].chain)
        total += segments_[seg_id].count;
    return total;
}

uint32_t
WarpStackModel::borrowedCount(uint32_t lane) const
{
    uint32_t n = 0;
    for (uint32_t seg_id : lanes_[lane].chain)
        if (segments_[seg_id].owner != lane)
            ++n;
    return n;
}

void
WarpStackModel::observe(uint32_t lane)
{
    if (observer_)
        observer_->onStackAccess(lane, logicalDepth(lane));
}

void
WarpStackModel::push(uint32_t lane, uint64_t value, StackTxnList &txns)
{
    SMS_ASSERT(lane < kWarpSize, "lane %u out of range", lane);
    LaneState &ls = lanes_[lane];
    SMS_ASSERT(!ls.finished, "push on finished lane %u", lane);

    if (!config_.rb_unbounded && ls.rb.size() == config_.rb_entries)
        spillFromRb(lane, txns);

    ls.rb.push_back(value);
    ++ls.depth;
    ++stats_.pushes;
    if (timelineOn(TimelineCategory::StackOps))
        timelineInstantNow(TimelineCategory::StackOps, "push", ls.depth,
                           "depth");
    if (ls.depth > stats_.max_logical_depth)
        stats_.max_logical_depth = ls.depth;
    observe(lane);
}

void
WarpStackModel::spillFromRb(uint32_t lane, StackTxnList &txns)
{
    LaneState &ls = lanes_[lane];
    uint64_t oldest = ls.rb.front();
    ls.rb.pop_front();
    ++stats_.rb_spills;
    if (config_.hasShStack()) {
        ++stats_.rb_spills_to_sh;
        if (timelineOn(TimelineCategory::Stack))
            timelineInstantNow(TimelineCategory::Stack, "spill_rb_to_sh",
                               lane, "lane");
        shPushTop(lane, oldest, txns);
    } else {
        ++stats_.rb_spills_to_global;
        if (timelineOn(TimelineCategory::Stack))
            timelineInstantNow(TimelineCategory::Stack,
                               "spill_rb_to_global", lane, "lane");
        pushGlobal(lane, oldest, txns);
    }
}

void
WarpStackModel::shPushTop(uint32_t lane, uint64_t value, StackTxnList &txns)
{
    LaneState &ls = lanes_[lane];
    SMS_ASSERT(!ls.chain.empty(), "lane %u has no SH segment", lane);

    Segment *top = &segments_[ls.chain.back()];
    if (segFull(*top)) {
        bool resolved = false;
        if (config_.intra_warp_realloc) {
            if (borrowedCount(lane) < config_.max_borrowed &&
                tryBorrow(lane)) {
                resolved = true;
            } else if (ls.chain.size() > 1 &&
                       tryFlushBottom(lane, txns)) {
                // Flushing exists because *linked* stacks are not
                // contiguous (§VI-B); with a single dedicated segment
                // the plain single-entry move below applies.
                resolved = true;
            } else if (ls.chain.size() > 1) {
                // The paper sizes the flush budget so this never
                // happens on its workloads (§VI-B: 72 entries suffice).
                // Beyond that envelope, correctness requires flushing
                // anyway; the forced flush is counted separately.
                bool flushed = tryFlushBottom(lane, txns, true);
                SMS_ASSERT(flushed, "forced flush failed");
                ++stats_.forced_flushes;
                if (timelineOn(TimelineCategory::Stack))
                    timelineInstantNow(TimelineCategory::Stack,
                                       "forced_flush", lane, "lane");
                resolved = true;
            }
        }
        if (!resolved) {
            // Single-entry move: oldest SH value migrates off-chip
            // (shared load + global store), freeing one slot (§VI-A).
            singleMoveToGlobal(lane, txns);
        }
        top = &segments_[ls.chain.back()];
        SMS_ASSERT(!segFull(*top), "SH top still full after overflow fix");
    }

    // Circular push at the segment top.
    if (top->empty()) {
        top->top = top->base;
        top->bottom = top->base;
    } else {
        top->top = (top->top + 1) % config_.sh_entries;
    }
    shSlot(top->owner, top->top) = value;
    ++top->count;
    ++ls.sh_count;
    txns.push_back({StackTxnKind::SharedStore,
                    sharedSlotAddr(top->owner, top->top),
                    kStackEntryBytes, StackTxnOrigin::Spill});
    ++stats_.sh_stores;
}

uint64_t
WarpStackModel::shPopTop(uint32_t lane, StackTxnList &txns)
{
    LaneState &ls = lanes_[lane];
    // Find the topmost non-empty segment (empty own segments may sit in
    // the chain after flush promotions; they hold nothing).
    int idx = static_cast<int>(ls.chain.size()) - 1;
    while (idx >= 0 && segments_[ls.chain[idx]].empty())
        --idx;
    SMS_ASSERT(idx >= 0, "shPopTop on empty SH chain (lane %u)", lane);

    Segment &seg = segments_[ls.chain[idx]];
    uint64_t value = shSlot(seg.owner, seg.top);
    txns.push_back({StackTxnKind::SharedLoad,
                    sharedSlotAddr(seg.owner, seg.top), kStackEntryBytes,
                    StackTxnOrigin::Refill});
    ++stats_.sh_loads;
    --seg.count;
    --ls.sh_count;
    if (seg.empty()) {
        seg.top = seg.base;
        seg.bottom = seg.base;
        seg.flushes = 0; // drained: consecutive-flush budget resets
    } else {
        seg.top = (seg.top + config_.sh_entries - 1) % config_.sh_entries;
    }

    releaseIfEmptyBorrowed(lane);
    return value;
}

void
WarpStackModel::setAvailable(Segment &seg, bool available)
{
    if (seg.available == available)
        return;
    seg.available = available;
    if (available)
        ++available_count_;
    else
        --available_count_;
}

void
WarpStackModel::releaseIfEmptyBorrowed(uint32_t lane)
{
    LaneState &ls = lanes_[lane];
    // Release empty borrowed segments from the top of the chain; the
    // paper releases the top stack the moment it empties (§V-B).
    while (!ls.chain.empty()) {
        Segment &seg = segments_[ls.chain.back()];
        if (seg.owner == lane || !seg.empty())
            break;
        seg.borrower = -1;
        seg.flushes = 0;
        setAvailable(seg, lanes_[seg.owner].finished);
        ls.chain.pop_back();
    }
}

void
WarpStackModel::shPushBottom(uint32_t lane, uint64_t value,
                             StackTxnList &txns)
{
    LaneState &ls = lanes_[lane];
    Segment &seg = segments_[ls.chain.front()];
    SMS_ASSERT(!segFull(seg), "shPushBottom on full bottom segment");
    if (seg.empty()) {
        seg.top = seg.base;
        seg.bottom = seg.base;
    } else {
        seg.bottom =
            (seg.bottom + config_.sh_entries - 1) % config_.sh_entries;
    }
    shSlot(seg.owner, seg.bottom) = value;
    ++seg.count;
    ++ls.sh_count;
    txns.push_back({StackTxnKind::SharedStore,
                    sharedSlotAddr(seg.owner, seg.bottom),
                    kStackEntryBytes, StackTxnOrigin::Refill});
    ++stats_.sh_stores;
}

bool
WarpStackModel::shBottomHasSpace(uint32_t lane) const
{
    const LaneState &ls = lanes_[lane];
    if (ls.chain.empty())
        return false;
    return !segFull(segments_[ls.chain.front()]);
}

bool
WarpStackModel::tryBorrow(uint32_t lane)
{
    // Common case: no lane finished yet, nothing borrowable — skip the
    // scan entirely.
    if (available_count_ == 0)
        return false;
    // Deterministic policy: borrow the available segment with the
    // lowest owner lane id.
    for (uint32_t owner = 0; owner < kWarpSize; ++owner) {
        Segment &seg = segments_[owner];
        if (!seg.available)
            continue;
        SMS_ASSERT(seg.empty(), "available segment %u not empty", owner);
        setAvailable(seg, false);
        seg.borrower = static_cast<int32_t>(lane);
        seg.flushes = 0;
        seg.top = seg.base;
        seg.bottom = seg.base;
        lanes_[lane].chain.push_back(owner);
        ++stats_.borrows;
        if (timelineOn(TimelineCategory::Stack))
            timelineInstantNow(TimelineCategory::Stack, "borrow",
                               lanes_[lane].chain.size(), "chain_len");
        uint32_t len = static_cast<uint32_t>(lanes_[lane].chain.size());
        if (len >= kBorrowChainBuckets)
            len = kBorrowChainBuckets - 1;
        ++stats_.borrow_chain_hist[len];
        return true;
    }
    return false;
}

bool
WarpStackModel::tryFlushBottom(uint32_t lane, StackTxnList &txns,
                               bool ignore_budget)
{
    LaneState &ls = lanes_[lane];
    uint32_t bottom_id = ls.chain.front();
    Segment &seg = segments_[bottom_id];

    if (seg.empty()) {
        // Nothing to flush: promoting the empty bottom segment to the
        // top provides capacity for free (possible when the dedicated
        // segment drained while borrowed segments still hold entries).
        if (ls.chain.size() == 1)
            return false; // it is already the top and it is full-checked
        ls.chain.erase(ls.chain.begin());
        ls.chain.push_back(bottom_id);
        return true;
    }

    if (seg.flushes >= config_.max_flushes && !ignore_budget)
        return false;

    // Flush the entire bottom segment to global memory, oldest first,
    // then promote the emptied segment to the top of the chain (§VI-B).
    StackTxnOrigin origin = ignore_budget ? StackTxnOrigin::ForcedFlush
                                          : StackTxnOrigin::BorrowChain;
    uint32_t flushed = seg.count;
    while (!seg.empty()) {
        uint64_t value = shSlot(seg.owner, seg.bottom);
        txns.push_back({StackTxnKind::SharedLoad,
                        sharedSlotAddr(seg.owner, seg.bottom),
                        kStackEntryBytes, origin});
        ++stats_.sh_loads;
        --seg.count;
        if (!seg.empty()) {
            seg.bottom = (seg.bottom + 1) % config_.sh_entries;
        }
        pushGlobal(lane, value, txns, origin);
    }
    seg.top = seg.base;
    seg.bottom = seg.base;
    ls.sh_count -= flushed;
    ++seg.flushes;
    ++stats_.flushes;
    stats_.flushed_entries += flushed;
    if (timelineOn(TimelineCategory::Stack))
        timelineInstantNow(TimelineCategory::Stack, "flush", flushed,
                           "entries");

    if (ls.chain.size() > 1) {
        ls.chain.erase(ls.chain.begin());
        ls.chain.push_back(bottom_id);
    }
    return true;
}

void
WarpStackModel::singleMoveToGlobal(uint32_t lane, StackTxnList &txns)
{
    LaneState &ls = lanes_[lane];
    // Oldest SH entry lives at the bottom of the bottom-most non-empty
    // segment.
    size_t idx = 0;
    while (idx < ls.chain.size() && segments_[ls.chain[idx]].empty())
        ++idx;
    SMS_ASSERT(idx < ls.chain.size(),
               "single move with empty SH chain (lane %u)", lane);
    Segment &seg = segments_[ls.chain[idx]];

    uint64_t value = shSlot(seg.owner, seg.bottom);
    txns.push_back({StackTxnKind::SharedLoad,
                    sharedSlotAddr(seg.owner, seg.bottom),
                    kStackEntryBytes, StackTxnOrigin::Spill});
    ++stats_.sh_loads;
    --seg.count;
    --ls.sh_count;
    if (seg.empty()) {
        seg.top = seg.base;
        seg.bottom = seg.base;
        seg.flushes = 0;
    } else {
        seg.bottom = (seg.bottom + 1) % config_.sh_entries;
    }
    pushGlobal(lane, value, txns);
    ++stats_.single_moves;
    if (timelineOn(TimelineCategory::Stack))
        timelineInstantNow(TimelineCategory::Stack, "single_move", lane,
                           "lane");
}

void
WarpStackModel::pushGlobal(uint32_t lane, uint64_t value,
                           StackTxnList &txns, StackTxnOrigin origin)
{
    LaneState &ls = lanes_[lane];
    ls.global.push_back(value);
    uint32_t slot = static_cast<uint32_t>(ls.global.size()) - 1;
    if (slot + 1 > ls.global_high_water)
        ls.global_high_water = slot + 1;
    txns.push_back({StackTxnKind::GlobalStore, globalSlotAddr(lane, slot),
                    kStackEntryBytes, origin});
    ++stats_.global_stores;
}

uint64_t
WarpStackModel::popGlobal(uint32_t lane, StackTxnList &txns)
{
    LaneState &ls = lanes_[lane];
    SMS_ASSERT(!ls.global.empty(), "popGlobal on empty spill region");
    uint32_t slot = static_cast<uint32_t>(ls.global.size()) - 1;
    uint64_t value = ls.global.back();
    ls.global.pop_back();
    txns.push_back({StackTxnKind::GlobalLoad, globalSlotAddr(lane, slot),
                    kStackEntryBytes, StackTxnOrigin::Refill});
    ++stats_.global_loads;
    return value;
}

bool
WarpStackModel::pop(uint32_t lane, uint64_t &value, StackTxnList &txns)
{
    SMS_ASSERT(lane < kWarpSize, "lane %u out of range", lane);
    LaneState &ls = lanes_[lane];
    if (laneEmpty(lane))
        return false;

    observe(lane); // record the occupied depth this pop touches
    SMS_ASSERT(!ls.rb.empty(), "logical depth > 0 but RB empty");
    value = ls.rb.back();
    ls.rb.pop_back();
    --ls.depth;
    ++stats_.pops;
    if (timelineOn(TimelineCategory::StackOps))
        timelineInstantNow(TimelineCategory::StackOps, "pop", ls.depth,
                           "depth");

    // Eager refill (Fig. 7 steps 2/5/6). sh_count > 0 implies an SH
    // stack exists, so no separate hasShStack() check is needed.
    if (ls.sh_count > 0) {
        uint64_t from_sh = shPopTop(lane, txns);
        ls.rb.push_front(from_sh);
        ++stats_.rb_refills;
        ++stats_.rb_refills_from_sh;
        if (timelineOn(TimelineCategory::Stack))
            timelineInstantNow(TimelineCategory::Stack, "refill_from_sh",
                               lane, "lane");
        if (!ls.global.empty() && shBottomHasSpace(lane)) {
            uint64_t from_global = popGlobal(lane, txns);
            shPushBottom(lane, from_global, txns);
        }
    } else if (!ls.global.empty()) {
        uint64_t from_global = popGlobal(lane, txns);
        ls.rb.push_front(from_global);
        ++stats_.rb_refills;
        ++stats_.rb_refills_from_global;
        if (timelineOn(TimelineCategory::Stack))
            timelineInstantNow(TimelineCategory::Stack,
                               "refill_from_global", lane, "lane");
    }
    return true;
}

void
WarpStackModel::abandonLane(uint32_t lane)
{
    LaneState &ls = lanes_[lane];
    ls.rb.clear();
    ls.global.clear();
    ls.depth = 0;
    ls.sh_count = 0;
    if (config_.hasShStack()) {
        for (uint32_t seg_id : ls.chain) {
            Segment &seg = segments_[seg_id];
            seg.count = 0;
            seg.top = seg.base;
            seg.bottom = seg.base;
        }
    }
    finishLane(lane);
}

void
WarpStackModel::finishLane(uint32_t lane)
{
    LaneState &ls = lanes_[lane];
    SMS_ASSERT(laneEmpty(lane), "finishLane with non-empty stack");
    ls.finished = true;
    if (!config_.hasShStack())
        return;

    // Release any leftover borrowed segments (all empty by now); only
    // the dedicated segment stays in the chain. Flush promotions can
    // leave the dedicated segment anywhere in the chain, so filter by
    // ownership rather than position.
    std::vector<uint32_t> kept;
    for (uint32_t seg_id : ls.chain) {
        Segment &seg = segments_[seg_id];
        SMS_ASSERT(seg.empty(), "releasing non-empty segment");
        if (seg.owner == lane) {
            kept.push_back(seg_id);
            continue;
        }
        seg.borrower = -1;
        seg.flushes = 0;
        setAvailable(seg, lanes_[seg.owner].finished);
    }
    SMS_ASSERT(kept.size() == 1, "lane %u lost its dedicated segment",
               lane);
    ls.chain = std::move(kept);

    // The dedicated segment becomes borrowable if nobody borrowed it
    // already while we were running (impossible) — mark it idle.
    Segment &own = segments_[lane];
    if (own.borrower < 0) {
        setAvailable(own, config_.intra_warp_realloc);
        own.flushes = 0;
    }
}

} // namespace sms
