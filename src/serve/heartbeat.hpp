/**
 * @file
 * Per-shard heartbeat files for live sweep observability.
 *
 * Each shard worker (and a plain single-process run, as shard 1/1)
 * periodically writes one small JSON document — schema
 * "sms-heartbeat-1" — into the heartbeat directory: shard identity,
 * pid, cells done/owned, the last metrics-counter snapshot, and wall
 * time. Writes go through writeFileAtomic() (write-temp + rename), so
 * a reader never observes a half-written file; a torn or foreign file
 * fails validation and is skipped, never trusted.
 *
 * Consumers:
 *  - the fork/exec shard coordinator (src/serve/sweep_shard.cpp)
 *    polls the directory to report per-shard progress and flag
 *    stalled workers instead of waiting silently on waitpid;
 *  - tools/sweep_top renders live progress bars from the same files
 *    (and post-mortem state after the run, since nothing deletes
 *    them);
 *  - tools/sweep_merge and the coordinator fold the final heartbeats
 *    into the merged record's throughput block.
 *
 * Enabled by SMS_HEARTBEAT_DIR (created on first write) or
 * programmatically via heartbeatConfigure(). The writer rides the
 * metrics sampler (src/stats/metrics.hpp): configuring a heartbeat
 * turns the metrics gate on and registers a sample hook, so heartbeat
 * counters are exactly the sms-metrics-1 counters.
 */

#ifndef SMS_SERVE_HEARTBEAT_HPP
#define SMS_SERVE_HEARTBEAT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "src/stats/report.hpp"

namespace sms {

/** Schema identifier of one heartbeat file. */
inline constexpr const char *kHeartbeatSchema = "sms-heartbeat-1";

/** One heartbeat document. */
struct HeartbeatInfo
{
    uint32_t shard_index = 1; ///< 1-based (1/1 for unsharded runs)
    uint32_t shard_count = 1;
    long pid = 0;
    uint64_t seq = 0;         ///< metrics sample sequence
    double wall_seconds = 0;  ///< since the heartbeat was configured
    uint64_t cells_owned = 0; ///< sweep cells this shard owns
    uint64_t cells_done = 0;  ///< cells finished (simulated or cached)
    bool done = false;        ///< worker finished its record
    /** Flat metrics-counter snapshot (name -> value). */
    JsonValue counters = JsonValue::object();

    /** Fraction of owned cells finished, in [0, 1]. */
    double
    progress() const
    {
        return cells_owned
                   ? static_cast<double>(cells_done) / cells_owned
                   : (done ? 1.0 : 0.0);
    }
};

/** A heartbeat read back from disk, with its file freshness. */
struct HeartbeatView
{
    HeartbeatInfo info;
    std::string path;
    double age_seconds = 0; ///< now - file mtime at read time
};

/** Heartbeat file path of one shard: `<dir>/shard-<index>.hb`. */
std::string heartbeatPath(const std::string &dir, uint32_t index);

/**
 * Start heartbeating into @p dir as shard index/count. Creates the
 * directory, enables the metrics gate, starts the metrics sampler if
 * needed, and registers the per-sample writer. Idempotent; a second
 * call with a different identity updates it.
 */
void heartbeatConfigure(const std::string &dir, uint32_t shard_index,
                        uint32_t shard_count);

/**
 * Read SMS_HEARTBEAT_DIR and configure heartbeating under the current
 * sweep shard identity (sweepShardSpec(); 1/1 when unsharded).
 * Idempotent: only the first call acts. Does nothing when the
 * variable is unset.
 */
void heartbeatInitFromEnv();

/** Is a heartbeat writer configured? */
bool heartbeatActive();

/** The configured heartbeat directory ("" when inactive). */
std::string heartbeatDir();

/** Heartbeat files written by this process so far. */
uint64_t heartbeatWriteCount();

/**
 * Record sweep progress for the next heartbeats (also mirrored as the
 * metrics counters sweep.cells_owned / sweep.cells_done).
 */
void heartbeatNoteCellsOwned(uint64_t owned);
void heartbeatNoteCellDone();

/**
 * Mark this worker finished and synchronously write a final heartbeat
 * (done = true, final counters). Safe to call when inactive (no-op).
 */
void heartbeatFinish();

/**
 * Serialize @p info and atomically write it to its path under @p dir.
 * Creates the directory. @return false with @p error set on I/O
 * failure.
 */
bool writeHeartbeat(const std::string &dir, const HeartbeatInfo &info,
                    std::string &error);

/**
 * Parse one heartbeat file. A missing, torn (half-written JSON), or
 * foreign file fails validation — @return false with @p error set —
 * and must be skipped by directory scans, never trusted.
 */
bool readHeartbeat(const std::string &path, HeartbeatInfo &info,
                   std::string &error);

/**
 * Scan @p dir for `shard-*.hb` files, skipping atomic-write
 * temporaries and any file that fails validation (@p skipped counts
 * them). Results are sorted by shard index. @return false with
 * @p error only when the directory itself cannot be read.
 */
bool readHeartbeatDir(const std::string &dir,
                      std::vector<HeartbeatView> &out, size_t &skipped,
                      std::string &error);

/**
 * Fold the final heartbeats of @p dir into a JSON summary for the
 * merged record's throughput block: per-shard rows (index, pid, cells
 * owned/done, done flag, wall seconds) plus a `complete` flag — true
 * when every shard 1..count is present, done, and finished all owned
 * cells. Returns a Null value when the directory holds no readable
 * heartbeats.
 */
JsonValue heartbeatSummaryJson(const std::string &dir);

} // namespace sms

#endif // SMS_SERVE_HEARTBEAT_HPP
