/**
 * @file
 * Result-cache implementation: binary SimResult (de)serialization and
 * the keyed entry files (see result_cache.hpp for the contract).
 */

#include "src/serve/result_cache.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/stats/metrics.hpp"
#include "src/trace/cache_io.hpp"
#include "src/util/check.hpp"

namespace sms {

namespace {

constexpr char kMagic[8] = {'S', 'M', 'S', 'R', 'S', 'L', 'T', '1'};

std::atomic<uint64_t> g_hits{0};
std::atomic<uint64_t> g_misses{0};
std::atomic<uint64_t> g_stores{0};
std::atomic<uint64_t> g_failures{0};

// Pull-collector: publish the existing cache counters into metrics
// snapshots without touching the lookup/store hot paths.
const bool g_metrics_collector_registered = [] {
    metricsAddCollector(
        [](const std::function<void(const char *, uint64_t)> &sink) {
            sink("result_cache.hits",
                 g_hits.load(std::memory_order_relaxed));
            sink("result_cache.misses",
                 g_misses.load(std::memory_order_relaxed));
            sink("result_cache.stores",
                 g_stores.load(std::memory_order_relaxed));
            sink("result_cache.failures",
                 g_failures.load(std::memory_order_relaxed));
        });
    return true;
}();

/**
 * Hash of the structural constants that shape the serialized counters;
 * folded into gpuConfigDigest() so entries from builds with different
 * counter shapes never validate.
 */
uint64_t
resultSchemaHash()
{
    uint32_t words[] = {
        kResultCacheVersion,
        kWarpSize,
        static_cast<uint32_t>(kTrafficClassCount),
        static_cast<uint32_t>(kCycleLeafCount),
        kBorrowChainBuckets,
    };
    return fnv1a(words, sizeof words);
}

void
writeCycleAccount(CacheWriter &w, const CycleAccount &a)
{
    for (int i = 0; i < kCycleLeafCount; ++i)
        w.u64(a.leaves[i]);
    w.u64(a.warp_active_cycles);
    w.u64(a.slot_cycles);
}

void
readCycleAccount(CacheReader &r, CycleAccount &a)
{
    for (int i = 0; i < kCycleLeafCount; ++i)
        a.leaves[i] = r.u64();
    a.warp_active_cycles = r.u64();
    a.slot_cycles = r.u64();
}

void
writeSimResult(CacheWriter &w, const SimResult &res)
{
    w.u64(res.cycles);
    w.u64(res.instructions);

    w.u64(res.ops.steps);
    w.u64(res.ops.node_visits);
    w.u64(res.ops.leaf_visits);
    w.u64(res.ops.box_tests);
    w.u64(res.ops.prim_tests);
    w.u64(res.ops.instructions);
    w.u64(res.ops.fetch_cycles);
    w.u64(res.ops.op_cycles);
    w.u64(res.ops.stack_cycles);

    const WarpStackStats &s = res.stack;
    w.u64(s.pushes);
    w.u64(s.pops);
    w.u64(s.rb_spills);
    w.u64(s.rb_spills_to_sh);
    w.u64(s.rb_spills_to_global);
    w.u64(s.rb_refills);
    w.u64(s.rb_refills_from_sh);
    w.u64(s.rb_refills_from_global);
    w.u64(s.sh_stores);
    w.u64(s.sh_loads);
    w.u64(s.global_stores);
    w.u64(s.global_loads);
    w.u64(s.borrows);
    w.u64(s.flushes);
    w.u64(s.forced_flushes);
    w.u64(s.flushed_entries);
    w.u64(s.single_moves);
    w.u32(s.max_logical_depth);
    for (uint32_t i = 0; i < kBorrowChainBuckets; ++i)
        w.u64(s.borrow_chain_hist[i]);

    w.u64(res.shared_mem.accesses);
    w.u64(res.shared_mem.lane_requests);
    w.u64(res.shared_mem.conflict_cycles);
    w.u64(res.shared_mem.conflict_passes);
    w.u64(res.shared_mem.conflicted_accesses);
    w.u32(res.shared_mem.max_passes);

    for (const LevelStats *lvl : {&res.l1, &res.l2}) {
        w.u64(lvl->loads);
        w.u64(lvl->stores);
        w.u64(lvl->load_misses);
        w.u64(lvl->store_misses);
        w.u64(lvl->writebacks);
    }

    w.u64(res.dram.loads);
    w.u64(res.dram.stores);
    for (int i = 0; i < kTrafficClassCount; ++i)
        w.u64(res.dram.by_class[i]);
    w.u64(res.dram.queue_wait_cycles);
    w.u64(res.dram.busy_cycles);
    w.u64(res.dram.max_queue_wait);

    for (int i = 0; i < kTrafficClassCount; ++i)
        w.u64(res.l1_class_misses[i]);
    for (int i = 0; i < kTrafficClassCount; ++i)
        w.u64(res.l2_class_misses[i]);
    w.u64(res.offchip_accesses);

    writeCycleAccount(w, res.accounting);
    w.u64(res.sm_accounting.size());
    for (const CycleAccount &a : res.sm_accounting)
        writeCycleAccount(w, a);

    w.u64(res.depth_hist.bucketCount());
    for (size_t i = 0; i < res.depth_hist.bucketCount(); ++i)
        w.u64(res.depth_hist.bucket(static_cast<uint32_t>(i)));

    w.u64(res.depth_trace.size());
    for (const DepthTraceRecord &t : res.depth_trace) {
        w.u32(t.warp_id);
        w.u32(t.access_index);
        w.u32(t.lane);
        w.u32(t.depth);
    }

    w.u32(res.jobs);
    w.u32(res.warps);
    w.u64(res.rays);
    w.u32(res.mismatches);
}

bool
readSimResult(CacheReader &r, SimResult &res)
{
    res.cycles = r.u64();
    res.instructions = r.u64();

    res.ops.steps = r.u64();
    res.ops.node_visits = r.u64();
    res.ops.leaf_visits = r.u64();
    res.ops.box_tests = r.u64();
    res.ops.prim_tests = r.u64();
    res.ops.instructions = r.u64();
    res.ops.fetch_cycles = r.u64();
    res.ops.op_cycles = r.u64();
    res.ops.stack_cycles = r.u64();

    WarpStackStats &s = res.stack;
    s.pushes = r.u64();
    s.pops = r.u64();
    s.rb_spills = r.u64();
    s.rb_spills_to_sh = r.u64();
    s.rb_spills_to_global = r.u64();
    s.rb_refills = r.u64();
    s.rb_refills_from_sh = r.u64();
    s.rb_refills_from_global = r.u64();
    s.sh_stores = r.u64();
    s.sh_loads = r.u64();
    s.global_stores = r.u64();
    s.global_loads = r.u64();
    s.borrows = r.u64();
    s.flushes = r.u64();
    s.forced_flushes = r.u64();
    s.flushed_entries = r.u64();
    s.single_moves = r.u64();
    s.max_logical_depth = r.u32();
    for (uint32_t i = 0; i < kBorrowChainBuckets; ++i)
        s.borrow_chain_hist[i] = r.u64();

    res.shared_mem.accesses = r.u64();
    res.shared_mem.lane_requests = r.u64();
    res.shared_mem.conflict_cycles = r.u64();
    res.shared_mem.conflict_passes = r.u64();
    res.shared_mem.conflicted_accesses = r.u64();
    res.shared_mem.max_passes = r.u32();

    for (LevelStats *lvl : {&res.l1, &res.l2}) {
        lvl->loads = r.u64();
        lvl->stores = r.u64();
        lvl->load_misses = r.u64();
        lvl->store_misses = r.u64();
        lvl->writebacks = r.u64();
    }

    res.dram.loads = r.u64();
    res.dram.stores = r.u64();
    for (int i = 0; i < kTrafficClassCount; ++i)
        res.dram.by_class[i] = r.u64();
    res.dram.queue_wait_cycles = r.u64();
    res.dram.busy_cycles = r.u64();
    res.dram.max_queue_wait = r.u64();

    for (int i = 0; i < kTrafficClassCount; ++i)
        res.l1_class_misses[i] = r.u64();
    for (int i = 0; i < kTrafficClassCount; ++i)
        res.l2_class_misses[i] = r.u64();
    res.offchip_accesses = r.u64();

    readCycleAccount(r, res.accounting);
    uint64_t sm_count = r.u64();
    if (!r.ok() || sm_count > 4096)
        return false;
    res.sm_accounting.resize(sm_count);
    for (CycleAccount &a : res.sm_accounting)
        readCycleAccount(r, a);

    uint64_t buckets = r.u64();
    if (!r.ok() || buckets < 1 || buckets > (1u << 20))
        return false;
    std::vector<uint64_t> counts(buckets);
    for (uint64_t i = 0; i < buckets; ++i)
        counts[i] = r.u64();
    if (!r.ok())
        return false;
    res.depth_hist = Histogram::fromBuckets(counts, buckets);

    uint64_t traces = r.u64();
    if (!r.ok() || traces > (1ull << 32))
        return false;
    res.depth_trace.resize(traces);
    for (DepthTraceRecord &t : res.depth_trace) {
        t.warp_id = r.u32();
        t.access_index = r.u32();
        t.lane = r.u32();
        t.depth = r.u32();
    }

    res.jobs = r.u32();
    res.warps = r.u32();
    res.rays = r.u64();
    res.mismatches = r.u32();
    return r.ok();
}

} // namespace

ResultCacheStats
resultCacheStats()
{
    ResultCacheStats s;
    s.hits = g_hits.load();
    s.misses = g_misses.load();
    s.stores = g_stores.load();
    s.failures = g_failures.load();
    return s;
}

void
resetResultCacheStats()
{
    g_hits = 0;
    g_misses = 0;
    g_stores = 0;
    g_failures = 0;
}

std::string
resultCacheDir()
{
    const char *dir = std::getenv("SMS_RESULT_CACHE");
    return dir && *dir ? dir : "";
}

uint64_t
gpuConfigDigest(const GpuConfig &config)
{
    CacheWriter w;
    w.u32(config.num_sms);
    w.u32(config.max_warps_per_rt);
    w.u64(config.unified_bytes);
    w.u64(config.l1_override_bytes);

    for (const CacheConfig *c : {&config.mem.l1, &config.mem.l2}) {
        w.u64(c->size_bytes);
        w.u32(c->ways);
        w.u32(c->line_bytes);
        w.u8(c->allocate_on_store ? 1 : 0);
    }
    w.u64(config.mem.l1_latency);
    w.u32(config.mem.l1_ports);
    w.u64(config.mem.l2_latency);
    w.u32(config.mem.l2_ports);
    w.u64(config.mem.dram.access_latency);
    w.u64(config.mem.dram.service_interval);
    w.u64(config.shared_latency);

    w.u32(config.stack.rb_entries);
    w.u8(config.stack.rb_unbounded ? 1 : 0);
    w.u32(config.stack.sh_entries);
    w.u8(config.stack.skewed_bank_access ? 1 : 0);
    w.u8(config.stack.intra_warp_realloc ? 1 : 0);
    w.u32(config.stack.max_borrowed);
    w.u32(config.stack.max_flushes);

    w.u64(config.timing.box_op);
    w.u64(config.timing.leaf_op_base);
    w.u64(config.timing.leaf_op_per_prim);
    w.u64(config.timing.stack_round);
    w.u64(config.timing.node_decode_op);
    w.u64(config.timing.shading_latency);
    w.u32(config.shading_instructions);
    w.u32(config.shadow_instructions);

    // Traversal-variant axes: node layout and ray scheduling change the
    // functional traversal, so two configs differing only here must map
    // to distinct cells.
    w.u8(static_cast<uint8_t>(config.node_layout.kind));
    w.u32(config.node_layout.isQuantized()
              ? config.node_layout.bits_per_plane
              : 0);
    w.u8(static_cast<uint8_t>(config.ray_order.kind));
    w.u8(static_cast<uint8_t>(config.traversal_arch.kind));
    if (config.traversal_arch.kind == TraversalArchKind::Predicted) {
        w.u32(config.traversal_arch.predictor_entries_log2);
        w.u32(config.traversal_arch.predictor_origin_bits);
        w.u32(config.traversal_arch.predictor_dir_bits);
    }

    return fnv1a(w.buffer().data(), w.buffer().size(),
                 resultSchemaHash());
}

std::string
resultCachePath(const std::string &dir, SceneId id, ScaleProfile profile,
                uint64_t fingerprint, uint64_t digest)
{
    char key[34];
    std::snprintf(key, sizeof key, "%016llx-%016llx",
                  static_cast<unsigned long long>(fingerprint),
                  static_cast<unsigned long long>(digest));
    std::string path = dir;
    if (!path.empty() && path.back() != '/')
        path += '/';
    path += std::string(sceneName(id)) + "-" + profileTag(profile) + "-" +
            key + ".res";
    return path;
}

bool
loadCachedResult(const std::string &dir, SceneId id, ScaleProfile profile,
                 uint64_t fingerprint, uint64_t digest, SimResult &result,
                 double &sim_wall_seconds)
{
    std::string path =
        resultCachePath(dir, id, profile, fingerprint, digest);
    std::string data;
    if (!readFile(path, data)) {
        ++g_misses;
        return false; // quiet miss: never simulated here
    }
    auto invalid = [&](const char *why) {
        warn("result-cache entry %s: %s; re-simulating", path.c_str(),
             why);
        ++g_failures;
        ++g_misses;
        return false;
    };

    std::string body;
    if (!openCacheEnvelope(kMagic, data, body))
        return invalid("bad magic or checksum");

    CacheReader r(body);
    if (r.u32() != kResultCacheVersion)
        return invalid("version mismatch");
    if (r.u64() != resultSchemaHash())
        return invalid("result schema mismatch");
    if (r.u8() != static_cast<uint8_t>(id) ||
        r.u8() != static_cast<uint8_t>(profile))
        return invalid("key mismatch");
    if (r.u64() != fingerprint)
        return invalid("workload fingerprint mismatch");
    if (r.u64() != digest)
        return invalid("config digest mismatch");
    double wall = r.f64();

    SimResult loaded;
    if (!readSimResult(r, loaded))
        return invalid("corrupt result section");
    if (!r.ok() || r.offset() != body.size())
        return invalid("trailing bytes");

    result = std::move(loaded);
    sim_wall_seconds = wall;
    ++g_hits;
    return true;
}

bool
storeCachedResult(const std::string &dir, SceneId id, ScaleProfile profile,
                  uint64_t fingerprint, uint64_t digest,
                  const SimResult &result, double sim_wall_seconds)
{
    if (!ensureDir(dir)) {
        warn("SMS_RESULT_CACHE=%s is not a creatable directory; "
             "entry not written",
             dir.c_str());
        return false;
    }
    CacheWriter w;
    w.u32(kResultCacheVersion);
    w.u64(resultSchemaHash());
    w.u8(static_cast<uint8_t>(id));
    w.u8(static_cast<uint8_t>(profile));
    w.u64(fingerprint);
    w.u64(digest);
    w.f64(sim_wall_seconds);
    writeSimResult(w, result);

    std::string data = sealCacheEnvelope(kMagic, w.buffer());
    std::string path =
        resultCachePath(dir, id, profile, fingerprint, digest);
    if (!writeFileAtomic(path, data)) {
        warn("result-cache entry %s not written: %s", path.c_str(),
             std::strerror(errno));
        return false;
    }
    ++g_stores;
    return true;
}

} // namespace sms
