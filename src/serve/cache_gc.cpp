/**
 * @file
 * LRU-by-mtime cache eviction (see cache_gc.hpp for the policy).
 */

#include "src/serve/cache_gc.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <sys/stat.h>

#include "src/util/check.hpp"

namespace sms {

namespace {

struct GcEntry
{
    std::string path;
    uint64_t bytes = 0;
    int64_t mtime = 0;
};

/** Cache entries plus orphaned atomic-write temporaries. */
bool
eligibleName(const std::string &name)
{
    for (const char *suffix : {".wkld", ".tape", ".res"}) {
        size_t n = std::strlen(suffix);
        if (name.size() >= n &&
            name.compare(name.size() - n, n, suffix) == 0)
            return true;
    }
    return name.find(".tmp.") != std::string::npos;
}

} // namespace

bool
runCacheGc(const std::string &dir, const CacheGcOptions &options,
           CacheGcResult &out, std::string &error)
{
    out = CacheGcResult{};
    DIR *d = ::opendir(dir.c_str());
    if (!d) {
        error = strprintf("opendir %s: %s", dir.c_str(),
                          std::strerror(errno));
        return false;
    }
    std::vector<GcEntry> entries;
    while (struct dirent *ent = ::readdir(d)) {
        std::string name = ent->d_name;
        if (!eligibleName(name))
            continue;
        GcEntry e;
        e.path = dir + "/" + name;
        struct stat st;
        if (::stat(e.path.c_str(), &st) != 0 || !S_ISREG(st.st_mode))
            continue; // vanished underneath us, or not a plain file
        e.bytes = static_cast<uint64_t>(st.st_size);
        e.mtime = static_cast<int64_t>(st.st_mtime);
        out.scanned_files += 1;
        out.scanned_bytes += e.bytes;
        entries.push_back(std::move(e));
    }
    ::closedir(d);

    // Oldest first; path breaks mtime ties so the order is stable. The
    // sorted listing is reported even when nothing needs evicting
    // (cache_gc --verbose shows it).
    std::sort(entries.begin(), entries.end(),
              [](const GcEntry &a, const GcEntry &b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.path < b.path;
              });
    out.entries.reserve(entries.size());
    for (const GcEntry &e : entries)
        out.entries.push_back({e.path, e.bytes, e.mtime, false});

    if (out.scanned_bytes <= options.max_bytes)
        return true;

    uint64_t remaining = out.scanned_bytes;
    for (CacheGcEntry &e : out.entries) {
        if (remaining <= options.max_bytes)
            break;
        if (!options.dry_run && std::remove(e.path.c_str()) != 0) {
            error = strprintf("remove %s: %s", e.path.c_str(),
                              std::strerror(errno));
            return false;
        }
        remaining -= e.bytes;
        e.evicted = true;
        out.evicted_files += 1;
        out.evicted_bytes += e.bytes;
        out.evicted.push_back(e.path);
    }
    return true;
}

} // namespace sms
