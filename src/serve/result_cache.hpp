/**
 * @file
 * Content-addressed result cache for sweep cells.
 *
 * The simulator is deterministic and tape-replayed: a sweep cell's
 * SimResult is a pure function of (prepared workload, GPU
 * configuration). The result cache exploits that by persisting each
 * finished cell keyed by
 *
 *   (workload fingerprint, ScaleProfile,
 *    full stack/GPU config digest, result schema version)
 *
 * so any later run — same process, another shard worker, another
 * machine with the same build schema — that asks for the same cell
 * deserializes the finished counters in microseconds instead of
 * re-simulating. A fully warm sweep performs zero simulateJobs()
 * calls; the bench throughput block proves it via simulate_calls and
 * the hit/miss counters reported here.
 *
 * Enabled by pointing SMS_RESULT_CACHE at a directory (created on
 * first store). Entries are self-validating, mirroring the
 * .wkld/SMSTAPE1 semantics: "SMSRSLT1" magic, versioned little-endian
 * body carrying an echo of the full key, and a trailing FNV-1a
 * checksum. Any validation failure — wrong magic, version, schema
 * hash, key echo, truncation, checksum — warns, counts a failure, and
 * is treated as a miss so the caller re-simulates and rewrites the
 * entry. Writes go through writeFileAtomic(), so racing shard workers
 * never interleave bytes; every writer of a key produces identical
 * content, making the race benign.
 */

#ifndef SMS_SERVE_RESULT_CACHE_HPP
#define SMS_SERVE_RESULT_CACHE_HPP

#include <cstdint>
#include <string>

#include "src/scene/registry.hpp"
#include "src/sim/gpu_config.hpp"
#include "src/sim/gpu_sim.hpp"

namespace sms {

/**
 * Entry format version. Bump on ANY change to the serialized SimResult
 * layout or the key derivation; older entries then fail validation and
 * are re-simulated.
 */
constexpr uint32_t kResultCacheVersion = 1;

/** Counters over all result-cache activity of this process. */
struct ResultCacheStats
{
    uint64_t hits = 0;     ///< cells served from a cached entry
    uint64_t misses = 0;   ///< lookups that had to simulate
    uint64_t stores = 0;   ///< entries written
    uint64_t failures = 0; ///< invalid/unreadable entries discarded
};

/** Snapshot of this process's result-cache counters (thread-safe). */
ResultCacheStats resultCacheStats();

/** Reset the result-cache counters (tests). */
void resetResultCacheStats();

/**
 * Result-cache directory from SMS_RESULT_CACHE, or "" when the cache
 * is disabled.
 */
std::string resultCacheDir();

/**
 * Digest of everything on the configuration side of a cell's identity:
 * every GpuConfig field (stack configuration, memory hierarchy, RT-unit
 * timings, shading costs) plus the structural constants that shape the
 * serialized counters. Two configs with equal digests time identically.
 */
uint64_t gpuConfigDigest(const GpuConfig &config);

/**
 * Entry path for a cell key:
 * `<scene>-<profile>-<fingerprint16>-<digest16>.res`.
 */
std::string resultCachePath(const std::string &dir, SceneId id,
                            ScaleProfile profile, uint64_t fingerprint,
                            uint64_t digest);

/**
 * Load the cached SimResult for the key into @p result (and the
 * recording run's simulation wall seconds into @p sim_wall_seconds).
 * A missing entry is a quiet miss; an invalid one warns, counts a
 * failure, and is a miss so the caller re-simulates and rewrites it.
 */
bool loadCachedResult(const std::string &dir, SceneId id,
                      ScaleProfile profile, uint64_t fingerprint,
                      uint64_t digest, SimResult &result,
                      double &sim_wall_seconds);

/**
 * Persist @p result under the key. @return false (with a warning) on
 * I/O failure — the run proceeds uncached.
 */
bool storeCachedResult(const std::string &dir, SceneId id,
                      ScaleProfile profile, uint64_t fingerprint,
                      uint64_t digest, const SimResult &result,
                      double sim_wall_seconds);

} // namespace sms

#endif // SMS_SERVE_RESULT_CACHE_HPP
