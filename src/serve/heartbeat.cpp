/**
 * @file
 * Heartbeat writer/reader (see heartbeat.hpp for the contract).
 */

#include "src/serve/heartbeat.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <mutex>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include "src/serve/sweep_shard.hpp"
#include "src/stats/metrics.hpp"
#include "src/trace/cache_io.hpp"
#include "src/util/check.hpp"

namespace sms {

namespace {

using Clock = std::chrono::steady_clock;

struct HeartbeatState
{
    std::mutex mutex;
    bool configured = false;
    bool env_checked = false;
    bool hook_registered = false;
    std::string dir;
    uint32_t index = 1;
    uint32_t count = 1;
    Clock::time_point epoch = Clock::now();
    std::atomic<bool> done{false};
    std::atomic<uint64_t> writes{0};
};

HeartbeatState &
state()
{
    static HeartbeatState *s = new HeartbeatState; // outlives atexit
    return *s;
}

/** Seconds-resolution "now" matching stat() mtimes. */
double
wallNow()
{
    struct timespec ts;
    ::clock_gettime(CLOCK_REALTIME, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

/** Build the heartbeat document from one metrics snapshot. */
void
writeFromSnapshot(const MetricsSnapshot &snap)
{
    HeartbeatState &s = state();
    HeartbeatInfo info;
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        if (!s.configured)
            return;
        info.shard_index = s.index;
        info.shard_count = s.count;
        info.wall_seconds = std::chrono::duration<double>(
                                Clock::now() - s.epoch)
                                .count();
    }
    info.pid = snap.pid;
    info.seq = snap.seq;
    info.done = s.done.load(std::memory_order_relaxed);
    info.cells_owned = snap.counterOr("sweep.cells_owned", 0);
    info.cells_done = snap.counterOr("sweep.cells_done", 0);
    for (const auto &c : snap.counters)
        info.counters[c.first] = c.second;
    std::string error;
    if (!writeHeartbeat(heartbeatDir(), info, error))
        warn("heartbeat not written: %s", error.c_str());
    else
        s.writes.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

std::string
heartbeatPath(const std::string &dir, uint32_t index)
{
    return dir + "/shard-" + std::to_string(index) + ".hb";
}

void
heartbeatConfigure(const std::string &dir, uint32_t shard_index,
                   uint32_t shard_count)
{
    HeartbeatState &s = state();
    bool register_hook = false;
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        if (!s.configured)
            s.epoch = Clock::now();
        s.configured = true;
        s.dir = dir;
        s.index = shard_index < 1 ? 1 : shard_index;
        s.count = shard_count < 1 ? 1 : shard_count;
        if (!s.hook_registered) {
            s.hook_registered = true;
            register_hook = true;
        }
    }
    if (register_hook)
        metricsAddSampleHook(writeFromSnapshot);
    metricsEnsureSampler(); // turns the metrics gate on
}

void
heartbeatInitFromEnv()
{
    HeartbeatState &s = state();
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        if (s.env_checked)
            return;
        s.env_checked = true;
    }
    const char *dir = std::getenv("SMS_HEARTBEAT_DIR");
    if (!dir || !*dir)
        return;
    SweepShardSpec shard = sweepShardSpec();
    uint32_t index = shard.active() ? shard.index : 1;
    uint32_t count = shard.active() ? shard.count : 1;
    heartbeatConfigure(dir, index, count);
}

bool
heartbeatActive()
{
    HeartbeatState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.configured;
}

std::string
heartbeatDir()
{
    HeartbeatState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.configured ? s.dir : std::string();
}

uint64_t
heartbeatWriteCount()
{
    return state().writes.load(std::memory_order_relaxed);
}

void
heartbeatNoteCellsOwned(uint64_t owned)
{
    static MetricCounter &counter = metricCounter("sweep.cells_owned");
    counter.add(owned);
}

void
heartbeatNoteCellDone()
{
    static MetricCounter &counter = metricCounter("sweep.cells_done");
    counter.add(1);
}

void
heartbeatFinish()
{
    HeartbeatState &s = state();
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        if (!s.configured)
            return;
    }
    s.done.store(true, std::memory_order_relaxed);
    metricsFlushNow(); // the sample hook writes the final heartbeat
}

bool
writeHeartbeat(const std::string &dir, const HeartbeatInfo &info,
               std::string &error)
{
    if (!ensureDir(dir)) {
        error = strprintf("mkdir %s: %s", dir.c_str(),
                          std::strerror(errno));
        return false;
    }
    JsonValue doc = JsonValue::object();
    doc["schema"] = kHeartbeatSchema;
    JsonValue shard = JsonValue::object();
    shard["index"] = info.shard_index;
    shard["count"] = info.shard_count;
    doc["shard"] = std::move(shard);
    doc["pid"] = static_cast<long long>(info.pid);
    doc["seq"] = info.seq;
    doc["wall_seconds"] = info.wall_seconds;
    doc["cells_owned"] = info.cells_owned;
    doc["cells_done"] = info.cells_done;
    doc["done"] = info.done;
    doc["counters"] = info.counters;
    std::string path = heartbeatPath(dir, info.shard_index);
    if (!writeFileAtomic(path, doc.dump() + "\n")) {
        error = strprintf("write %s failed", path.c_str());
        return false;
    }
    return true;
}

bool
readHeartbeat(const std::string &path, HeartbeatInfo &info,
              std::string &error)
{
    std::string text;
    if (!readFile(path, text)) {
        error = strprintf("%s: unreadable", path.c_str());
        return false;
    }
    JsonValue doc;
    if (!JsonValue::parse(text, doc, error)) {
        error = strprintf("%s: torn or invalid JSON (%s)", path.c_str(),
                          error.c_str());
        return false;
    }
    if (doc.stringOr("schema", "") != kHeartbeatSchema) {
        error = strprintf("%s: schema is not %s", path.c_str(),
                          kHeartbeatSchema);
        return false;
    }
    const JsonValue *shard = doc.find("shard");
    if (!shard || !shard->isObject()) {
        error = strprintf("%s: no shard block", path.c_str());
        return false;
    }
    info = HeartbeatInfo{};
    info.shard_index =
        static_cast<uint32_t>(shard->numberOr("index", 0));
    info.shard_count =
        static_cast<uint32_t>(shard->numberOr("count", 0));
    if (info.shard_index < 1 || info.shard_count < 1 ||
        info.shard_index > info.shard_count) {
        error = strprintf("%s: shard identity %u/%u out of range",
                          path.c_str(), info.shard_index,
                          info.shard_count);
        return false;
    }
    info.pid = static_cast<long>(doc.numberOr("pid", 0));
    info.seq = static_cast<uint64_t>(doc.numberOr("seq", 0));
    info.wall_seconds = doc.numberOr("wall_seconds", 0.0);
    info.cells_owned =
        static_cast<uint64_t>(doc.numberOr("cells_owned", 0));
    info.cells_done =
        static_cast<uint64_t>(doc.numberOr("cells_done", 0));
    const JsonValue *done = doc.find("done");
    info.done = done && done->isBool() && done->asBool();
    const JsonValue *counters = doc.find("counters");
    if (counters && counters->isObject())
        info.counters = *counters;
    return true;
}

bool
readHeartbeatDir(const std::string &dir,
                 std::vector<HeartbeatView> &out, size_t &skipped,
                 std::string &error)
{
    out.clear();
    skipped = 0;
    DIR *d = ::opendir(dir.c_str());
    if (!d) {
        error = strprintf("opendir %s: %s", dir.c_str(),
                          std::strerror(errno));
        return false;
    }
    double now = wallNow();
    while (struct dirent *ent = ::readdir(d)) {
        std::string name = ent->d_name;
        // Only finished heartbeat files: atomic-write temporaries
        // (*.tmp.<pid>.<serial>) are in-flight writes, not state.
        if (name.compare(0, 6, "shard-") != 0 ||
            name.size() < 9 ||
            name.compare(name.size() - 3, 3, ".hb") != 0 ||
            name.find(".tmp.") != std::string::npos)
            continue;
        HeartbeatView view;
        view.path = dir + "/" + name;
        std::string read_error;
        if (!readHeartbeat(view.path, view.info, read_error)) {
            ++skipped; // torn/foreign file: skip, never trust
            continue;
        }
        struct stat st;
        if (::stat(view.path.c_str(), &st) == 0) {
            double mtime =
                static_cast<double>(st.st_mtim.tv_sec) +
                static_cast<double>(st.st_mtim.tv_nsec) * 1e-9;
            view.age_seconds = now > mtime ? now - mtime : 0.0;
        }
        out.push_back(std::move(view));
    }
    ::closedir(d);
    std::sort(out.begin(), out.end(),
              [](const HeartbeatView &a, const HeartbeatView &b) {
                  return a.info.shard_index < b.info.shard_index;
              });
    return true;
}

JsonValue
heartbeatSummaryJson(const std::string &dir)
{
    std::vector<HeartbeatView> views;
    size_t skipped = 0;
    std::string error;
    if (!readHeartbeatDir(dir, views, skipped, error) || views.empty())
        return JsonValue();
    JsonValue summary = JsonValue::object();
    summary["dir"] = dir;
    uint32_t count = 0;
    for (const HeartbeatView &v : views)
        count = std::max(count, v.info.shard_count);
    std::vector<bool> complete(count, false);
    JsonValue shards = JsonValue::array();
    for (const HeartbeatView &v : views) {
        const HeartbeatInfo &info = v.info;
        JsonValue row = JsonValue::object();
        row["index"] = info.shard_index;
        row["count"] = info.shard_count;
        row["pid"] = static_cast<long long>(info.pid);
        row["cells_owned"] = info.cells_owned;
        row["cells_done"] = info.cells_done;
        row["done"] = info.done;
        row["wall_seconds"] = info.wall_seconds;
        row["seq"] = info.seq;
        shards.push(std::move(row));
        if (info.shard_index >= 1 && info.shard_index <= count &&
            info.done && info.cells_done >= info.cells_owned)
            complete[info.shard_index - 1] = true;
    }
    summary["shards"] = std::move(shards);
    bool all = true;
    for (bool c : complete)
        all = all && c;
    summary["complete"] = all;
    if (skipped > 0)
        summary["skipped_files"] = skipped;
    return summary;
}

} // namespace sms
