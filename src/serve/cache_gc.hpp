/**
 * @file
 * Size-capped garbage collection for the on-disk caches.
 *
 * The workload (.wkld), traversal-tape (.tape), and result (.res)
 * caches are append-only: nothing in the simulator ever deletes an
 * entry, so a long-lived cache directory grows without bound. The GC
 * reclaims space with an LRU-by-mtime policy: eligible files are
 * sorted oldest-first (path as the tie-break so the order is
 * deterministic when mtimes collide) and evicted until the directory
 * fits the byte budget. Orphaned atomic-write temporaries
 * (*.tmp.<pid>.<serial>, left behind only by a crashed writer) are
 * eligible too. Files with other names are never touched.
 */

#ifndef SMS_SERVE_CACHE_GC_HPP
#define SMS_SERVE_CACHE_GC_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace sms {

/** Knobs of one GC pass. */
struct CacheGcOptions
{
    /** Byte budget the eligible files must fit after the pass. */
    uint64_t max_bytes = 0;
    /** Report evictions without deleting anything. */
    bool dry_run = false;
};

/** One eligible cache file, as seen by the GC scan. */
struct CacheGcEntry
{
    std::string path;
    uint64_t bytes = 0;
    int64_t mtime = 0;    ///< seconds since the epoch
    bool evicted = false; ///< evicted (or would-be, dry run) this pass
};

/** Outcome of one GC pass. */
struct CacheGcResult
{
    uint64_t scanned_files = 0; ///< eligible files found
    uint64_t scanned_bytes = 0; ///< their total size
    uint64_t evicted_files = 0; ///< files evicted (or would-be, dry run)
    uint64_t evicted_bytes = 0; ///< bytes reclaimed (ditto)
    /** Evicted paths, oldest first (the eviction order). */
    std::vector<std::string> evicted;
    /** Every eligible entry, oldest first, evicted or not. */
    std::vector<CacheGcEntry> entries;
};

/**
 * Run one GC pass over the cache directory @p dir (non-recursive; the
 * cache layouts are flat). @return false with @p error set when the
 * directory cannot be read or an eviction unlink fails; a dry run
 * never fails on unlink.
 */
bool runCacheGc(const std::string &dir, const CacheGcOptions &options,
                CacheGcResult &out, std::string &error);

} // namespace sms

#endif // SMS_SERVE_CACHE_GC_HPP
