/**
 * @file
 * Shard partitioning, record merge, and the fork/exec coordinator
 * (see sweep_shard.hpp for the partition and bit-identity contract).
 */

#include "src/serve/sweep_shard.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <limits>
#include <map>
#include <sys/wait.h>
#include <unistd.h>

#include "src/serve/heartbeat.hpp"
#include "src/stats/cycle_accounting.hpp"
#include "src/stats/histogram.hpp"
#include "src/trace/cache_io.hpp"
#include "src/util/check.hpp"

extern char **environ;

namespace sms {

namespace {

SweepShardSpec g_override;
bool g_override_set = false;

/** Max over shards of a numeric field (wall clocks run concurrently). */
double
maxField(const std::vector<const JsonValue *> &blocks,
         const std::string &field)
{
    double v = 0.0;
    for (const JsonValue *b : blocks)
        if (b)
            v = std::max(v, b->numberOr(field, 0.0));
    return v;
}

/** Sum over shards of a numeric field (counters). */
double
sumField(const std::vector<const JsonValue *> &blocks,
         const std::string &field)
{
    double v = 0.0;
    for (const JsonValue *b : blocks)
        if (b)
            v += b->numberOr(field, 0.0);
    return v;
}

/** OR over shards of a boolean field. */
bool
orField(const std::vector<const JsonValue *> &blocks,
        const std::string &field)
{
    for (const JsonValue *b : blocks)
        if (b) {
            const JsonValue *f = b->find(field);
            if (f && f->isBool() && f->asBool())
                return true;
        }
    return false;
}

/** The named sub-blocks of each shard's throughput block. */
std::vector<const JsonValue *>
subBlocks(const std::vector<const JsonValue *> &blocks,
          const std::string &name)
{
    std::vector<const JsonValue *> subs;
    for (const JsonValue *b : blocks)
        subs.push_back(b ? b->find(name) : nullptr);
    return subs;
}

/** Merge the workers' throughput blocks (see sweep_shard.hpp). */
JsonValue
mergeThroughput(const std::vector<const JsonValue *> &blocks)
{
    JsonValue tp = JsonValue::object();
    tp["prepare_wall_seconds"] = maxField(blocks, "prepare_wall_seconds");
    double sweep_wall = maxField(blocks, "sweep_wall_seconds");
    tp["sweep_wall_seconds"] = sweep_wall;
    tp["cells"] = sumField(blocks, "cells");
    double cycles = sumField(blocks, "sim_cycles_total");
    tp["sim_cycles_total"] = cycles;
    tp["sim_cycles_per_sec"] = sweep_wall > 0.0 ? cycles / sweep_wall
                                                : 0.0;
    tp["simulate_calls"] = sumField(blocks, "simulate_calls");

    for (const char *cache : {"workload_cache", "result_cache"}) {
        auto subs = subBlocks(blocks, cache);
        JsonValue c = JsonValue::object();
        c["enabled"] = orField(subs, "enabled");
        for (const char *f : {"hits", "misses", "stores", "failures"})
            c[f] = sumField(subs, f);
        tp[cache] = std::move(c);
    }

    auto tapes = subBlocks(blocks, "traversal_tape");
    JsonValue tape = JsonValue::object();
    std::string mode;
    for (const JsonValue *t : tapes)
        if (t && mode.empty())
            mode = t->stringOr("mode", "");
    tape["mode"] = mode;
    for (const char *f : {"jobs_recorded", "jobs_replayed", "bytes",
                          "disk_loads", "disk_stores", "failures"})
        tape[f] = sumField(tapes, f);
    tp["traversal_tape"] = std::move(tape);

    auto tls = subBlocks(blocks, "timeline");
    JsonValue tl = JsonValue::object();
    tl["enabled"] = orField(tls, "enabled");
    std::string path, cats;
    for (const JsonValue *t : tls)
        if (t && path.empty()) {
            path = t->stringOr("path", "");
            cats = t->stringOr("categories", "");
        }
    tl["path"] = path;
    tl["categories"] = cats;
    tl["events_recorded"] = sumField(tls, "events_recorded");
    tl["events_dropped"] = sumField(tls, "events_dropped");
    tp["timeline"] = std::move(tl);

    // The metrics block exists only in telemetry-enabled records; fold
    // it only when some shard carried one, so telemetry-off merges stay
    // byte-identical to pre-telemetry records.
    auto mets = subBlocks(blocks, "metrics");
    bool any_metrics = false;
    for (const JsonValue *m : mets)
        any_metrics = any_metrics || m != nullptr;
    if (any_metrics) {
        JsonValue mv = JsonValue::object();
        mv["enabled"] = orField(mets, "enabled");
        std::string mpath, hb_dir;
        double interval = 0.0;
        for (const JsonValue *m : mets)
            if (m) {
                if (mpath.empty())
                    mpath = m->stringOr("path", "");
                if (hb_dir.empty())
                    hb_dir = m->stringOr("heartbeat_dir", "");
                if (interval == 0.0)
                    interval = m->numberOr("interval_ms", 0.0);
            }
        mv["path"] = mpath;
        mv["interval_ms"] = interval;
        mv["samples"] = sumField(mets, "samples");
        mv["heartbeat_dir"] = hb_dir;
        mv["heartbeat_writes"] = sumField(mets, "heartbeat_writes");
        tp["metrics"] = std::move(mv);
    }
    return tp;
}

} // namespace

bool
parseSweepShardSpec(const std::string &spec, SweepShardSpec &out,
                    std::string &error)
{
    // Validated by hand: sscanf's %lu silently accepts a sign ("1/-2"
    // wraps to a huge count) and unsigned long may be wider than the
    // uint32_t fields (a silent narrowing truncation).
    size_t slash = spec.find('/');
    bool ok = slash != std::string::npos && slash > 0 &&
              slash + 1 < spec.size();
    if (ok)
        for (size_t k = 0; k < spec.size(); ++k)
            if (k != slash &&
                !std::isdigit(static_cast<unsigned char>(spec[k])))
                ok = false;
    unsigned long long i = 0, n = 0;
    if (ok) {
        errno = 0;
        i = std::strtoull(spec.c_str(), nullptr, 10);
        n = std::strtoull(spec.c_str() + slash + 1, nullptr, 10);
        ok = errno == 0 && i >= 1 && n >= 1 && i <= n &&
             n <= std::numeric_limits<uint32_t>::max();
    }
    if (!ok) {
        error = strprintf("'%s' is not a valid shard spec (want i/N "
                          "with 1 <= i <= N)",
                          spec.c_str());
        return false;
    }
    out.index = static_cast<uint32_t>(i);
    out.count = static_cast<uint32_t>(n);
    return true;
}

SweepShardSpec
sweepShardSpec()
{
    if (g_override_set)
        return g_override;
    const char *env = std::getenv("SMS_SWEEP_SHARDS");
    if (!env || !*env)
        return {};
    SweepShardSpec spec;
    std::string error;
    if (!parseSweepShardSpec(env, spec, error))
        fatal("SMS_SWEEP_SHARDS=%s: %s", env, error.c_str());
    return spec;
}

void
setSweepShardSpec(const SweepShardSpec &spec)
{
    g_override = spec;
    g_override_set = true;
}

bool
mergeShardRecords(const std::vector<JsonValue> &shards, JsonValue &merged,
                  std::string &error)
{
    if (shards.empty()) {
        error = "no shard records to merge";
        return false;
    }

    // ---- Validate the manifests and order the shards by index. ----
    uint32_t count = 0;
    std::vector<const JsonValue *> by_index;
    for (const JsonValue &rec : shards) {
        if (rec.stringOr("schema", "") != "sms-bench-1") {
            error = "record schema is not sms-bench-1";
            return false;
        }
        const JsonValue *shard = rec.find("shard");
        if (!shard || !shard->isObject()) {
            error = "record carries no shard block (not produced by a "
                    "shard worker)";
            return false;
        }
        uint32_t n = static_cast<uint32_t>(shard->numberOr("count", 0));
        uint32_t i = static_cast<uint32_t>(shard->numberOr("index", 0));
        if (count == 0) {
            if (n < 1) {
                error = "shard block has count < 1";
                return false;
            }
            count = n;
            by_index.assign(count, nullptr);
        }
        if (n != count) {
            error = strprintf("shard counts disagree (%u vs %u)", n,
                              count);
            return false;
        }
        if (i < 1 || i > count) {
            error = strprintf("shard index %u out of range 1..%u", i,
                              count);
            return false;
        }
        if (by_index[i - 1]) {
            error = strprintf("duplicate shard index %u", i);
            return false;
        }
        by_index[i - 1] = &rec;
        if (rec.stringOr("figure", "") !=
                shards[0].stringOr("figure", "") ||
            rec.stringOr("profile", "") !=
                shards[0].stringOr("profile", "")) {
            error = "shard records mix figures or profiles";
            return false;
        }
    }
    if (shards.size() != count) {
        error = strprintf("have %zu of %u shard records", shards.size(),
                          count);
        return false;
    }

    const JsonValue &first = *by_index[0];
    const JsonValue &fshard = *first.find("shard");
    const JsonValue *scenes = fshard.find("scenes");
    const JsonValue *bases = fshard.find("bases");
    if (!scenes || !scenes->isArray() || !bases || !bases->isObject()) {
        error = "shard block lacks scenes/bases";
        return false;
    }
    for (const JsonValue *rec : by_index) {
        const JsonValue *shard = rec->find("shard");
        const JsonValue *s = shard->find("scenes");
        const JsonValue *b = shard->find("bases");
        if (!s || s->dump() != scenes->dump() || !b ||
            b->dump() != bases->dump()) {
            error = "shard records disagree on scenes or baseline "
                    "columns";
            return false;
        }
    }
    std::vector<std::string> scene_names;
    for (const JsonValue &s : scenes->elements())
        scene_names.push_back(s.asString());

    merged = JsonValue::object();
    merged["schema"] = "sms-bench-1";
    merged["figure"] = first.stringOr("figure", "");
    merged["git"] = first.stringOr("git", "");
    merged["timestamp"] = first.stringOr("timestamp", "");
    merged["profile"] = first.stringOr("profile", "");
    JsonValue minfo = JsonValue::object();
    minfo["shards"] = count;
    merged["merge"] = std::move(minfo);

    // Run-level aggregates over every merged cell.
    CycleAccount agg_account;
    std::vector<uint64_t> agg_hist;
    uint64_t agg_cells = 0;
    auto accumulate = [&](const JsonValue &cell) -> bool {
        const JsonValue *counters = cell.find("counters");
        if (!counters)
            return true; // addResult-style minimal cell
        ++agg_cells;
        const JsonValue *hist = counters->find("depth_hist");
        const JsonValue *counts = hist ? hist->find("counts") : nullptr;
        if (counts && counts->isArray()) {
            if (counts->size() > agg_hist.size())
                agg_hist.resize(counts->size(), 0);
            for (size_t i = 0; i < counts->size(); ++i)
                agg_hist[i] += counts->at(i).asU64();
        }
        const JsonValue *acct = counters->find("cycle_accounting");
        if (!acct)
            return true;
        agg_account.warp_active_cycles +=
            static_cast<uint64_t>(acct->numberOr("warp_active_cycles", 0));
        agg_account.slot_cycles +=
            static_cast<uint64_t>(acct->numberOr("slot_cycles", 0));
        const JsonValue *leaves = acct->find("leaves");
        if (!leaves || !leaves->isObject()) {
            error = "cell cycle_accounting lacks leaves";
            return false;
        }
        for (const auto &m : leaves->members()) {
            int idx = cycleLeafFromName(m.first);
            if (idx < 0) {
                error = strprintf("unknown accounting leaf '%s'",
                                  m.first.c_str());
                return false;
            }
            agg_account.leaves[idx] += m.second.asU64();
        }
        return true;
    };

    // ---- Union, re-order and re-derive each results array. ----
    for (const auto &base_member : bases->members()) {
        const std::string &key = base_member.first;
        size_t base = static_cast<size_t>(base_member.second.asNumber());

        // (scene, config_index) -> cell, duplicates rejected.
        std::map<std::string, std::map<uint64_t, const JsonValue *>>
            by_scene;
        std::map<uint64_t, const JsonValue *> config_rep;
        for (const JsonValue *rec : by_index) {
            const JsonValue *arr = rec->find(key);
            if (!arr || !arr->isArray()) {
                error = strprintf("shard record lacks results array "
                                  "'%s'",
                                  key.c_str());
                return false;
            }
            for (const JsonValue &cell : arr->elements()) {
                std::string scene = cell.stringOr("scene", "");
                uint64_t ci = static_cast<uint64_t>(
                    cell.numberOr("config_index", 0));
                if (!by_scene[scene].emplace(ci, &cell).second) {
                    error = strprintf(
                        "cell %s#%llu of '%s' assigned to more than "
                        "one shard",
                        scene.c_str(),
                        static_cast<unsigned long long>(ci),
                        key.c_str());
                    return false;
                }
                config_rep.emplace(ci, &cell);
            }
        }
        size_t num_configs = config_rep.size();
        for (const auto &cfg : config_rep)
            if (cfg.first >= num_configs) {
                error = strprintf("non-contiguous config_index %llu in "
                                  "'%s'",
                                  static_cast<unsigned long long>(
                                      cfg.first),
                                  key.c_str());
                return false;
            }
        for (const auto &sc : by_scene) {
            bool known = false;
            for (const std::string &sn : scene_names)
                known = known || sn == sc.first;
            if (!known) {
                error = strprintf("cell scene '%s' not in the shard "
                                  "scene list",
                                  sc.first.c_str());
                return false;
            }
        }
        if (num_configs > 0 && base >= num_configs) {
            error = strprintf("baseline column %zu out of range in '%s'",
                              base, key.c_str());
            return false;
        }

        // Per-config norm columns in scene order, for the summary.
        std::vector<std::vector<double>> norm_ipc(num_configs);
        std::vector<std::vector<double>> norm_off(num_configs);

        JsonValue out = JsonValue::array();
        for (const std::string &sn : scene_names) {
            auto it = by_scene.find(sn);
            if (it == by_scene.end()) {
                if (num_configs == 0)
                    continue;
                error = strprintf("scene %s missing from '%s'",
                                  sn.c_str(), key.c_str());
                return false;
            }
            if (it->second.size() != num_configs) {
                error = strprintf("scene %s has %zu of %zu cells in "
                                  "'%s'",
                                  sn.c_str(), it->second.size(),
                                  num_configs, key.c_str());
                return false;
            }
            double b_ipc = it->second.at(base)->numberOr("ipc", 0.0);
            double b_off = it->second.at(base)->numberOr(
                "offchip_accesses", 0.0);
            for (uint64_t ci = 0; ci < num_configs; ++ci) {
                JsonValue cell = *it->second.at(ci);
                double v_ipc = cell.numberOr("ipc", 0.0);
                double v_off = cell.numberOr("offchip_accesses", 0.0);
                // Exactly normIpc()/normOffchip() of bench_util.hpp:
                // same doubles (JSON round-trips are exact), same
                // operations — bit-identical to the single-process run.
                double ni = b_ipc > 0.0 && v_ipc > 0.0
                                ? v_ipc / b_ipc
                                : std::numeric_limits<
                                      double>::quiet_NaN();
                double ratio;
                if (b_off > 0.0)
                    ratio = v_off / b_off;
                else if (v_off > 0.0)
                    ratio = v_off;
                else
                    ratio = 1.0;
                double no = ratio > 1.0e-6 ? ratio : 1.0e-6;
                cell["norm_ipc"] =
                    std::isfinite(ni) ? JsonValue(ni) : JsonValue();
                cell["norm_offchip"] = no;
                norm_ipc[ci].push_back(ni);
                norm_off[ci].push_back(no);
                if (!accumulate(cell))
                    return false;
                out.push(std::move(cell));
            }
        }
        merged[key] = std::move(out);

        if (key == "results" && num_configs > 0) {
            merged["baseline"] =
                config_rep.at(base)->stringOr("config", "");
            JsonValue summary = JsonValue::array();
            for (uint64_t ci = 0; ci < num_configs; ++ci) {
                JsonValue row = JsonValue::object();
                const JsonValue *rep = config_rep.at(ci);
                row["config"] = rep->stringOr("config", "");
                row["config_index"] = ci;
                row["l1_override"] = rep->numberOr("l1_override", 0);
                // meanNormIpc(): geomean over the finite, positive
                // per-scene norms, NaN (-> null) when none survive.
                std::vector<double> vals;
                for (double v : norm_ipc[ci])
                    if (std::isfinite(v) && v > 0.0)
                        vals.push_back(v);
                row["mean_norm_ipc"] =
                    vals.empty()
                        ? JsonValue()
                        : JsonValue(geomean(vals));
                row["mean_norm_offchip"] =
                    norm_off[ci].empty()
                        ? JsonValue()
                        : JsonValue(geomean(norm_off[ci]));
                summary.push(std::move(row));
            }
            merged["summary"] = std::move(summary);
        }
    }

    // ---- Run-level aggregate, conservation re-checked. ----
    JsonValue agg = JsonValue::object();
    agg["cells"] = agg_cells;
    Histogram hist = Histogram::fromBuckets(
        agg_hist, agg_hist.empty() ? 1 : agg_hist.size());
    agg["depth_hist"] = toJson(hist);
    JsonValue acct = toJson(agg_account);
    acct["conserved"] = agg_account.conserved();
    agg["cycle_accounting"] = std::move(acct);
    merged["aggregate"] = std::move(agg);
    if (!agg_account.conserved()) {
        error = strprintf(
            "merged cycle accounting violates conservation: leaf sum "
            "%llu != warp_active_cycles %llu",
            static_cast<unsigned long long>(agg_account.activeSum()),
            static_cast<unsigned long long>(
                agg_account.warp_active_cycles));
        return false;
    }

    double wall = 0.0;
    std::vector<const JsonValue *> throughputs;
    for (const JsonValue *rec : by_index) {
        wall = std::max(wall, rec->numberOr("wall_seconds", 0.0));
        throughputs.push_back(rec->find("throughput"));
    }
    merged["wall_seconds"] = wall;
    merged["throughput"] = mergeThroughput(throughputs);
    return true;
}

namespace {

/** Human-readable decode of a waitpid() status. */
std::string
describeExitStatus(int status)
{
    if (WIFEXITED(status)) {
        int code = WEXITSTATUS(status);
        if (code == 127)
            return "exited with status 127 (exec of the worker binary "
                   "likely failed)";
        return strprintf("exited with status %d", code);
    }
    if (WIFSIGNALED(status))
        return strprintf("was killed by signal %d (%s)",
                         WTERMSIG(status),
                         strsignal(WTERMSIG(status)));
    return strprintf("ended with unrecognized wait status 0x%x",
                     status);
}

/** The sampler period the workers will use (mirrors metrics.cpp). */
uint32_t
metricsIntervalMsFromEnv()
{
    const char *env = std::getenv("SMS_METRICS_INTERVAL_MS");
    if (env && *env) {
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (end && !*end && v >= 1 && v <= 3600000)
            return static_cast<uint32_t>(v);
    }
    return 250;
}

/** Delete leftover `shard-*.hb` files of a previous coordinator run. */
void
clearHeartbeatDir(const std::string &dir)
{
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return;
    std::vector<std::string> victims;
    while (struct dirent *e = ::readdir(d)) {
        std::string name = e->d_name;
        if (name.rfind("shard-", 0) == 0 &&
            name.size() > 3 &&
            name.compare(name.size() - 3, 3, ".hb") == 0)
            victims.push_back(dir + "/" + name);
    }
    ::closedir(d);
    for (const std::string &v : victims)
        std::remove(v.c_str());
}

/**
 * One status line over the current heartbeats: a ten-cell progress bar
 * plus done/owned counts per shard, and a STALLED marker when a
 * heartbeat has not been refreshed for @p stall_after seconds.
 */
std::string
heartbeatProgressLine(const std::vector<HeartbeatView> &views,
                      double stall_after)
{
    std::string line = "shards:";
    for (const HeartbeatView &v : views) {
        double p = v.info.progress();
        int fill = static_cast<int>(p * 10.0 + 0.5);
        fill = fill < 0 ? 0 : fill > 10 ? 10 : fill;
        line += strprintf(
            " %u:[%.*s%.*s] %llu/%llu", v.info.shard_index, fill,
            "##########", 10 - fill, "..........",
            static_cast<unsigned long long>(v.info.cells_done),
            static_cast<unsigned long long>(v.info.cells_owned));
        if (v.info.done)
            line += " done";
        else if (v.age_seconds > stall_after)
            line += " STALLED";
    }
    return line;
}

} // namespace

void
runShardCoordinator(uint32_t workers, const std::string &json_path,
                    int argc, char **argv)
{
    if (workers < 1)
        fatal("--shard-workers=%u: need at least one worker", workers);
    if (sweepShardSpec().active())
        fatal("--shard-workers cannot be combined with a shard "
              "identity (--shards / SMS_SWEEP_SHARDS)");

    char exe[4096];
    ssize_t n = ::readlink("/proc/self/exe", exe, sizeof exe - 1);
    std::string exe_path =
        n > 0 ? std::string(exe, static_cast<size_t>(n))
              : std::string(argv[0]);

    // Heartbeat watching: honor an explicit SMS_HEARTBEAT_DIR; when
    // only SMS_METRICS asked for telemetry, default the heartbeats next
    // to the merged record so sweep_top has something to watch. With
    // neither set, telemetry stays completely off.
    const char *hb_env = std::getenv("SMS_HEARTBEAT_DIR");
    const char *metrics_env = std::getenv("SMS_METRICS");
    std::string hb_dir;
    if (hb_env && *hb_env)
        hb_dir = hb_env;
    else if (metrics_env && *metrics_env)
        hb_dir = json_path + ".hb";
    if (!hb_dir.empty()) {
        if (ensureDir(hb_dir))
            clearHeartbeatDir(hb_dir);
        else
            warn("heartbeat directory %s not created; live shard "
                 "progress will be unavailable",
                 hb_dir.c_str());
    }

    std::vector<std::string> worker_paths;
    std::vector<pid_t> pids;
    for (uint32_t i = 1; i <= workers; ++i) {
        std::string wpath =
            json_path + ".shard" + std::to_string(i);
        std::remove(wpath.c_str());
        std::string shard_flag = "--shards=" + std::to_string(i) + "/" +
                                 std::to_string(workers);
        std::string json_flag = "--json=" + wpath;

        // Per-worker environment, prepared before fork (building it in
        // the child would malloc between fork and exec): the shared
        // heartbeat directory, and a per-shard metrics path so the
        // workers' series do not interleave in one file (a
        // sms-metrics-1 stream is single-pid by contract).
        std::vector<std::string> env_strings;
        for (char **e = environ; *e; ++e) {
            if (!hb_dir.empty() &&
                std::strncmp(*e, "SMS_HEARTBEAT_DIR=", 18) == 0)
                continue;
            if (metrics_env &&
                std::strncmp(*e, "SMS_METRICS=", 12) == 0)
                continue;
            env_strings.push_back(*e);
        }
        if (!hb_dir.empty())
            env_strings.push_back("SMS_HEARTBEAT_DIR=" + hb_dir);
        if (metrics_env && *metrics_env) {
            std::string mpath =
                std::string(metrics_env) + ".shard" + std::to_string(i);
            std::remove(mpath.c_str());
            env_strings.push_back("SMS_METRICS=" + mpath);
        }
        std::vector<char *> child_env;
        for (std::string &s : env_strings)
            child_env.push_back(const_cast<char *>(s.c_str()));
        child_env.push_back(nullptr);

        pid_t pid = ::fork();
        if (pid < 0)
            fatal("fork: %s", std::strerror(errno));
        if (pid == 0) {
            std::vector<char *> child_argv;
            child_argv.push_back(const_cast<char *>(exe_path.c_str()));
            for (int a = 1; a < argc; ++a)
                child_argv.push_back(argv[a]);
            child_argv.push_back(const_cast<char *>(shard_flag.c_str()));
            child_argv.push_back(const_cast<char *>(json_flag.c_str()));
            child_argv.push_back(nullptr);
            ::execve(exe_path.c_str(), child_argv.data(),
                     child_env.data());
            std::fprintf(stderr, "execve %s: %s\n", exe_path.c_str(),
                         std::strerror(errno));
            ::_exit(127);
        }
        pids.push_back(pid);
        worker_paths.push_back(std::move(wpath));
    }

    // Reap with WNOHANG instead of blocking: between polls the
    // coordinator reads the heartbeat directory to report per-shard
    // progress and flag workers that stopped heartbeating.
    const double stall_after =
        std::max(5.0, 10.0 * metricsIntervalMsFromEnv() / 1000.0);
    std::vector<bool> reaped(workers, false);
    std::vector<bool> stall_warned(workers, false);
    uint32_t live = workers;
    bool any_failed = false;
    uint32_t fail_index = 0;
    pid_t fail_pid = 0;
    int fail_status = 0;
    std::string last_line;
    auto last_scan = std::chrono::steady_clock::now() -
                     std::chrono::hours(1);
    while (live > 0) {
        for (uint32_t i = 0; i < workers && !any_failed; ++i) {
            if (reaped[i])
                continue;
            int status = 0;
            pid_t r = ::waitpid(pids[i], &status, WNOHANG);
            if (r < 0)
                fatal("waitpid shard %u: %s", i + 1,
                      std::strerror(errno));
            if (r == 0)
                continue;
            reaped[i] = true;
            --live;
            if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
                any_failed = true;
                fail_index = i + 1;
                fail_pid = pids[i];
                fail_status = status;
            }
        }
        if (any_failed || live == 0)
            break;

        auto now = std::chrono::steady_clock::now();
        if (!hb_dir.empty() &&
            now - last_scan >= std::chrono::seconds(1)) {
            last_scan = now;
            std::vector<HeartbeatView> views;
            size_t skipped = 0;
            std::string herr;
            if (readHeartbeatDir(hb_dir, views, skipped, herr)) {
                std::string line =
                    heartbeatProgressLine(views, stall_after);
                if (line != last_line) {
                    std::printf("%s\n", line.c_str());
                    std::fflush(stdout);
                    last_line = line;
                }
                for (const HeartbeatView &v : views) {
                    uint32_t idx = v.info.shard_index;
                    if (idx < 1 || idx > workers)
                        continue;
                    bool stalled = !v.info.done &&
                                   !reaped[idx - 1] &&
                                   v.age_seconds > stall_after;
                    if (stalled && !stall_warned[idx - 1])
                        warn("shard worker %u/%u (pid %ld) has not "
                             "heartbeat for %.0f s; it may be stalled",
                             idx, workers, v.info.pid,
                             v.age_seconds);
                    stall_warned[idx - 1] = stalled;
                }
            }
        }
        ::usleep(100000);
    }

    if (any_failed) {
        // Name the casualty precisely, then take the survivors down —
        // their partial records can never merge without the failed
        // shard's cells.
        for (uint32_t i = 0; i < workers; ++i)
            if (!reaped[i])
                ::kill(pids[i], SIGTERM);
        for (uint32_t i = 0; i < workers; ++i)
            if (!reaped[i]) {
                int status = 0;
                ::waitpid(pids[i], &status, 0);
                reaped[i] = true;
            }
        fatal("shard worker %u/%u (pid %ld) %s; the remaining workers "
              "were terminated",
              fail_index, workers, static_cast<long>(fail_pid),
              describeExitStatus(fail_status).c_str());
    }

    std::vector<JsonValue> records;
    for (const std::string &wpath : worker_paths) {
        std::vector<JsonValue> lines;
        std::string err;
        if (!readJsonLines(wpath, lines, err) || lines.empty())
            fatal("shard record %s unreadable: %s", wpath.c_str(),
                  err.empty() ? "no records" : err.c_str());
        records.push_back(std::move(lines.back()));
    }

    JsonValue merged;
    std::string err;
    if (!mergeShardRecords(records, merged, err))
        fatal("shard merge failed: %s", err.c_str());
    // Fold the workers' final heartbeats into the merged throughput
    // block (absent when telemetry was off, keeping the record
    // byte-identical to pre-telemetry merges).
    if (!hb_dir.empty()) {
        JsonValue hb = heartbeatSummaryJson(hb_dir);
        if (!hb.isNull())
            merged["throughput"]["heartbeats"] = std::move(hb);
    }
    if (!appendJsonLine(json_path, merged, err))
        fatal("merged record not written: %s", err.c_str());
    for (const std::string &wpath : worker_paths)
        std::remove(wpath.c_str());
    std::printf("\nmerged %u shard records into %s\n", workers,
                json_path.c_str());
    std::exit(0);
}

} // namespace sms
