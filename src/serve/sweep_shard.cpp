/**
 * @file
 * Shard partitioning, record merge, and the fork/exec coordinator
 * (see sweep_shard.hpp for the partition and bit-identity contract).
 */

#include "src/serve/sweep_shard.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <sys/wait.h>
#include <unistd.h>

#include "src/stats/cycle_accounting.hpp"
#include "src/stats/histogram.hpp"
#include "src/util/check.hpp"

namespace sms {

namespace {

SweepShardSpec g_override;
bool g_override_set = false;

/** Max over shards of a numeric field (wall clocks run concurrently). */
double
maxField(const std::vector<const JsonValue *> &blocks,
         const std::string &field)
{
    double v = 0.0;
    for (const JsonValue *b : blocks)
        if (b)
            v = std::max(v, b->numberOr(field, 0.0));
    return v;
}

/** Sum over shards of a numeric field (counters). */
double
sumField(const std::vector<const JsonValue *> &blocks,
         const std::string &field)
{
    double v = 0.0;
    for (const JsonValue *b : blocks)
        if (b)
            v += b->numberOr(field, 0.0);
    return v;
}

/** OR over shards of a boolean field. */
bool
orField(const std::vector<const JsonValue *> &blocks,
        const std::string &field)
{
    for (const JsonValue *b : blocks)
        if (b) {
            const JsonValue *f = b->find(field);
            if (f && f->isBool() && f->asBool())
                return true;
        }
    return false;
}

/** The named sub-blocks of each shard's throughput block. */
std::vector<const JsonValue *>
subBlocks(const std::vector<const JsonValue *> &blocks,
          const std::string &name)
{
    std::vector<const JsonValue *> subs;
    for (const JsonValue *b : blocks)
        subs.push_back(b ? b->find(name) : nullptr);
    return subs;
}

/** Merge the workers' throughput blocks (see sweep_shard.hpp). */
JsonValue
mergeThroughput(const std::vector<const JsonValue *> &blocks)
{
    JsonValue tp = JsonValue::object();
    tp["prepare_wall_seconds"] = maxField(blocks, "prepare_wall_seconds");
    double sweep_wall = maxField(blocks, "sweep_wall_seconds");
    tp["sweep_wall_seconds"] = sweep_wall;
    tp["cells"] = sumField(blocks, "cells");
    double cycles = sumField(blocks, "sim_cycles_total");
    tp["sim_cycles_total"] = cycles;
    tp["sim_cycles_per_sec"] = sweep_wall > 0.0 ? cycles / sweep_wall
                                                : 0.0;
    tp["simulate_calls"] = sumField(blocks, "simulate_calls");

    for (const char *cache : {"workload_cache", "result_cache"}) {
        auto subs = subBlocks(blocks, cache);
        JsonValue c = JsonValue::object();
        c["enabled"] = orField(subs, "enabled");
        for (const char *f : {"hits", "misses", "stores", "failures"})
            c[f] = sumField(subs, f);
        tp[cache] = std::move(c);
    }

    auto tapes = subBlocks(blocks, "traversal_tape");
    JsonValue tape = JsonValue::object();
    std::string mode;
    for (const JsonValue *t : tapes)
        if (t && mode.empty())
            mode = t->stringOr("mode", "");
    tape["mode"] = mode;
    for (const char *f : {"jobs_recorded", "jobs_replayed", "bytes",
                          "disk_loads", "disk_stores", "failures"})
        tape[f] = sumField(tapes, f);
    tp["traversal_tape"] = std::move(tape);

    auto tls = subBlocks(blocks, "timeline");
    JsonValue tl = JsonValue::object();
    tl["enabled"] = orField(tls, "enabled");
    std::string path, cats;
    for (const JsonValue *t : tls)
        if (t && path.empty()) {
            path = t->stringOr("path", "");
            cats = t->stringOr("categories", "");
        }
    tl["path"] = path;
    tl["categories"] = cats;
    tl["events_recorded"] = sumField(tls, "events_recorded");
    tl["events_dropped"] = sumField(tls, "events_dropped");
    tp["timeline"] = std::move(tl);
    return tp;
}

} // namespace

bool
parseSweepShardSpec(const std::string &spec, SweepShardSpec &out,
                    std::string &error)
{
    // Validated by hand: sscanf's %lu silently accepts a sign ("1/-2"
    // wraps to a huge count) and unsigned long may be wider than the
    // uint32_t fields (a silent narrowing truncation).
    size_t slash = spec.find('/');
    bool ok = slash != std::string::npos && slash > 0 &&
              slash + 1 < spec.size();
    if (ok)
        for (size_t k = 0; k < spec.size(); ++k)
            if (k != slash &&
                !std::isdigit(static_cast<unsigned char>(spec[k])))
                ok = false;
    unsigned long long i = 0, n = 0;
    if (ok) {
        errno = 0;
        i = std::strtoull(spec.c_str(), nullptr, 10);
        n = std::strtoull(spec.c_str() + slash + 1, nullptr, 10);
        ok = errno == 0 && i >= 1 && n >= 1 && i <= n &&
             n <= std::numeric_limits<uint32_t>::max();
    }
    if (!ok) {
        error = strprintf("'%s' is not a valid shard spec (want i/N "
                          "with 1 <= i <= N)",
                          spec.c_str());
        return false;
    }
    out.index = static_cast<uint32_t>(i);
    out.count = static_cast<uint32_t>(n);
    return true;
}

SweepShardSpec
sweepShardSpec()
{
    if (g_override_set)
        return g_override;
    const char *env = std::getenv("SMS_SWEEP_SHARDS");
    if (!env || !*env)
        return {};
    SweepShardSpec spec;
    std::string error;
    if (!parseSweepShardSpec(env, spec, error))
        fatal("SMS_SWEEP_SHARDS=%s: %s", env, error.c_str());
    return spec;
}

void
setSweepShardSpec(const SweepShardSpec &spec)
{
    g_override = spec;
    g_override_set = true;
}

bool
mergeShardRecords(const std::vector<JsonValue> &shards, JsonValue &merged,
                  std::string &error)
{
    if (shards.empty()) {
        error = "no shard records to merge";
        return false;
    }

    // ---- Validate the manifests and order the shards by index. ----
    uint32_t count = 0;
    std::vector<const JsonValue *> by_index;
    for (const JsonValue &rec : shards) {
        if (rec.stringOr("schema", "") != "sms-bench-1") {
            error = "record schema is not sms-bench-1";
            return false;
        }
        const JsonValue *shard = rec.find("shard");
        if (!shard || !shard->isObject()) {
            error = "record carries no shard block (not produced by a "
                    "shard worker)";
            return false;
        }
        uint32_t n = static_cast<uint32_t>(shard->numberOr("count", 0));
        uint32_t i = static_cast<uint32_t>(shard->numberOr("index", 0));
        if (count == 0) {
            if (n < 1) {
                error = "shard block has count < 1";
                return false;
            }
            count = n;
            by_index.assign(count, nullptr);
        }
        if (n != count) {
            error = strprintf("shard counts disagree (%u vs %u)", n,
                              count);
            return false;
        }
        if (i < 1 || i > count) {
            error = strprintf("shard index %u out of range 1..%u", i,
                              count);
            return false;
        }
        if (by_index[i - 1]) {
            error = strprintf("duplicate shard index %u", i);
            return false;
        }
        by_index[i - 1] = &rec;
        if (rec.stringOr("figure", "") !=
                shards[0].stringOr("figure", "") ||
            rec.stringOr("profile", "") !=
                shards[0].stringOr("profile", "")) {
            error = "shard records mix figures or profiles";
            return false;
        }
    }
    if (shards.size() != count) {
        error = strprintf("have %zu of %u shard records", shards.size(),
                          count);
        return false;
    }

    const JsonValue &first = *by_index[0];
    const JsonValue &fshard = *first.find("shard");
    const JsonValue *scenes = fshard.find("scenes");
    const JsonValue *bases = fshard.find("bases");
    if (!scenes || !scenes->isArray() || !bases || !bases->isObject()) {
        error = "shard block lacks scenes/bases";
        return false;
    }
    for (const JsonValue *rec : by_index) {
        const JsonValue *shard = rec->find("shard");
        const JsonValue *s = shard->find("scenes");
        const JsonValue *b = shard->find("bases");
        if (!s || s->dump() != scenes->dump() || !b ||
            b->dump() != bases->dump()) {
            error = "shard records disagree on scenes or baseline "
                    "columns";
            return false;
        }
    }
    std::vector<std::string> scene_names;
    for (const JsonValue &s : scenes->elements())
        scene_names.push_back(s.asString());

    merged = JsonValue::object();
    merged["schema"] = "sms-bench-1";
    merged["figure"] = first.stringOr("figure", "");
    merged["git"] = first.stringOr("git", "");
    merged["timestamp"] = first.stringOr("timestamp", "");
    merged["profile"] = first.stringOr("profile", "");
    JsonValue minfo = JsonValue::object();
    minfo["shards"] = count;
    merged["merge"] = std::move(minfo);

    // Run-level aggregates over every merged cell.
    CycleAccount agg_account;
    std::vector<uint64_t> agg_hist;
    uint64_t agg_cells = 0;
    auto accumulate = [&](const JsonValue &cell) -> bool {
        const JsonValue *counters = cell.find("counters");
        if (!counters)
            return true; // addResult-style minimal cell
        ++agg_cells;
        const JsonValue *hist = counters->find("depth_hist");
        const JsonValue *counts = hist ? hist->find("counts") : nullptr;
        if (counts && counts->isArray()) {
            if (counts->size() > agg_hist.size())
                agg_hist.resize(counts->size(), 0);
            for (size_t i = 0; i < counts->size(); ++i)
                agg_hist[i] += counts->at(i).asU64();
        }
        const JsonValue *acct = counters->find("cycle_accounting");
        if (!acct)
            return true;
        agg_account.warp_active_cycles +=
            static_cast<uint64_t>(acct->numberOr("warp_active_cycles", 0));
        agg_account.slot_cycles +=
            static_cast<uint64_t>(acct->numberOr("slot_cycles", 0));
        const JsonValue *leaves = acct->find("leaves");
        if (!leaves || !leaves->isObject()) {
            error = "cell cycle_accounting lacks leaves";
            return false;
        }
        for (const auto &m : leaves->members()) {
            int idx = cycleLeafFromName(m.first);
            if (idx < 0) {
                error = strprintf("unknown accounting leaf '%s'",
                                  m.first.c_str());
                return false;
            }
            agg_account.leaves[idx] += m.second.asU64();
        }
        return true;
    };

    // ---- Union, re-order and re-derive each results array. ----
    for (const auto &base_member : bases->members()) {
        const std::string &key = base_member.first;
        size_t base = static_cast<size_t>(base_member.second.asNumber());

        // (scene, config_index) -> cell, duplicates rejected.
        std::map<std::string, std::map<uint64_t, const JsonValue *>>
            by_scene;
        std::map<uint64_t, const JsonValue *> config_rep;
        for (const JsonValue *rec : by_index) {
            const JsonValue *arr = rec->find(key);
            if (!arr || !arr->isArray()) {
                error = strprintf("shard record lacks results array "
                                  "'%s'",
                                  key.c_str());
                return false;
            }
            for (const JsonValue &cell : arr->elements()) {
                std::string scene = cell.stringOr("scene", "");
                uint64_t ci = static_cast<uint64_t>(
                    cell.numberOr("config_index", 0));
                if (!by_scene[scene].emplace(ci, &cell).second) {
                    error = strprintf(
                        "cell %s#%llu of '%s' assigned to more than "
                        "one shard",
                        scene.c_str(),
                        static_cast<unsigned long long>(ci),
                        key.c_str());
                    return false;
                }
                config_rep.emplace(ci, &cell);
            }
        }
        size_t num_configs = config_rep.size();
        for (const auto &cfg : config_rep)
            if (cfg.first >= num_configs) {
                error = strprintf("non-contiguous config_index %llu in "
                                  "'%s'",
                                  static_cast<unsigned long long>(
                                      cfg.first),
                                  key.c_str());
                return false;
            }
        for (const auto &sc : by_scene) {
            bool known = false;
            for (const std::string &sn : scene_names)
                known = known || sn == sc.first;
            if (!known) {
                error = strprintf("cell scene '%s' not in the shard "
                                  "scene list",
                                  sc.first.c_str());
                return false;
            }
        }
        if (num_configs > 0 && base >= num_configs) {
            error = strprintf("baseline column %zu out of range in '%s'",
                              base, key.c_str());
            return false;
        }

        // Per-config norm columns in scene order, for the summary.
        std::vector<std::vector<double>> norm_ipc(num_configs);
        std::vector<std::vector<double>> norm_off(num_configs);

        JsonValue out = JsonValue::array();
        for (const std::string &sn : scene_names) {
            auto it = by_scene.find(sn);
            if (it == by_scene.end()) {
                if (num_configs == 0)
                    continue;
                error = strprintf("scene %s missing from '%s'",
                                  sn.c_str(), key.c_str());
                return false;
            }
            if (it->second.size() != num_configs) {
                error = strprintf("scene %s has %zu of %zu cells in "
                                  "'%s'",
                                  sn.c_str(), it->second.size(),
                                  num_configs, key.c_str());
                return false;
            }
            double b_ipc = it->second.at(base)->numberOr("ipc", 0.0);
            double b_off = it->second.at(base)->numberOr(
                "offchip_accesses", 0.0);
            for (uint64_t ci = 0; ci < num_configs; ++ci) {
                JsonValue cell = *it->second.at(ci);
                double v_ipc = cell.numberOr("ipc", 0.0);
                double v_off = cell.numberOr("offchip_accesses", 0.0);
                // Exactly normIpc()/normOffchip() of bench_util.hpp:
                // same doubles (JSON round-trips are exact), same
                // operations — bit-identical to the single-process run.
                double ni = b_ipc > 0.0 && v_ipc > 0.0
                                ? v_ipc / b_ipc
                                : std::numeric_limits<
                                      double>::quiet_NaN();
                double ratio;
                if (b_off > 0.0)
                    ratio = v_off / b_off;
                else if (v_off > 0.0)
                    ratio = v_off;
                else
                    ratio = 1.0;
                double no = ratio > 1.0e-6 ? ratio : 1.0e-6;
                cell["norm_ipc"] =
                    std::isfinite(ni) ? JsonValue(ni) : JsonValue();
                cell["norm_offchip"] = no;
                norm_ipc[ci].push_back(ni);
                norm_off[ci].push_back(no);
                if (!accumulate(cell))
                    return false;
                out.push(std::move(cell));
            }
        }
        merged[key] = std::move(out);

        if (key == "results" && num_configs > 0) {
            merged["baseline"] =
                config_rep.at(base)->stringOr("config", "");
            JsonValue summary = JsonValue::array();
            for (uint64_t ci = 0; ci < num_configs; ++ci) {
                JsonValue row = JsonValue::object();
                const JsonValue *rep = config_rep.at(ci);
                row["config"] = rep->stringOr("config", "");
                row["config_index"] = ci;
                row["l1_override"] = rep->numberOr("l1_override", 0);
                // meanNormIpc(): geomean over the finite, positive
                // per-scene norms, NaN (-> null) when none survive.
                std::vector<double> vals;
                for (double v : norm_ipc[ci])
                    if (std::isfinite(v) && v > 0.0)
                        vals.push_back(v);
                row["mean_norm_ipc"] =
                    vals.empty()
                        ? JsonValue()
                        : JsonValue(geomean(vals));
                row["mean_norm_offchip"] =
                    norm_off[ci].empty()
                        ? JsonValue()
                        : JsonValue(geomean(norm_off[ci]));
                summary.push(std::move(row));
            }
            merged["summary"] = std::move(summary);
        }
    }

    // ---- Run-level aggregate, conservation re-checked. ----
    JsonValue agg = JsonValue::object();
    agg["cells"] = agg_cells;
    Histogram hist = Histogram::fromBuckets(
        agg_hist, agg_hist.empty() ? 1 : agg_hist.size());
    agg["depth_hist"] = toJson(hist);
    JsonValue acct = toJson(agg_account);
    acct["conserved"] = agg_account.conserved();
    agg["cycle_accounting"] = std::move(acct);
    merged["aggregate"] = std::move(agg);
    if (!agg_account.conserved()) {
        error = strprintf(
            "merged cycle accounting violates conservation: leaf sum "
            "%llu != warp_active_cycles %llu",
            static_cast<unsigned long long>(agg_account.activeSum()),
            static_cast<unsigned long long>(
                agg_account.warp_active_cycles));
        return false;
    }

    double wall = 0.0;
    std::vector<const JsonValue *> throughputs;
    for (const JsonValue *rec : by_index) {
        wall = std::max(wall, rec->numberOr("wall_seconds", 0.0));
        throughputs.push_back(rec->find("throughput"));
    }
    merged["wall_seconds"] = wall;
    merged["throughput"] = mergeThroughput(throughputs);
    return true;
}

void
runShardCoordinator(uint32_t workers, const std::string &json_path,
                    int argc, char **argv)
{
    if (workers < 1)
        fatal("--shard-workers=%u: need at least one worker", workers);
    if (sweepShardSpec().active())
        fatal("--shard-workers cannot be combined with a shard "
              "identity (--shards / SMS_SWEEP_SHARDS)");

    char exe[4096];
    ssize_t n = ::readlink("/proc/self/exe", exe, sizeof exe - 1);
    std::string exe_path =
        n > 0 ? std::string(exe, static_cast<size_t>(n))
              : std::string(argv[0]);

    std::vector<std::string> worker_paths;
    std::vector<pid_t> pids;
    for (uint32_t i = 1; i <= workers; ++i) {
        std::string wpath =
            json_path + ".shard" + std::to_string(i);
        std::remove(wpath.c_str());
        std::string shard_flag = "--shards=" + std::to_string(i) + "/" +
                                 std::to_string(workers);
        std::string json_flag = "--json=" + wpath;
        pid_t pid = ::fork();
        if (pid < 0)
            fatal("fork: %s", std::strerror(errno));
        if (pid == 0) {
            std::vector<char *> child_argv;
            child_argv.push_back(const_cast<char *>(exe_path.c_str()));
            for (int a = 1; a < argc; ++a)
                child_argv.push_back(argv[a]);
            child_argv.push_back(const_cast<char *>(shard_flag.c_str()));
            child_argv.push_back(const_cast<char *>(json_flag.c_str()));
            child_argv.push_back(nullptr);
            ::execv(exe_path.c_str(), child_argv.data());
            std::fprintf(stderr, "execv %s: %s\n", exe_path.c_str(),
                         std::strerror(errno));
            ::_exit(127);
        }
        pids.push_back(pid);
        worker_paths.push_back(std::move(wpath));
    }

    for (uint32_t i = 0; i < workers; ++i) {
        int status = 0;
        if (::waitpid(pids[i], &status, 0) < 0)
            fatal("waitpid shard %u: %s", i + 1,
                  std::strerror(errno));
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
            fatal("shard worker %u/%u (pid %ld) failed with status %d",
                  i + 1, workers, static_cast<long>(pids[i]), status);
    }

    std::vector<JsonValue> records;
    for (const std::string &wpath : worker_paths) {
        std::vector<JsonValue> lines;
        std::string err;
        if (!readJsonLines(wpath, lines, err) || lines.empty())
            fatal("shard record %s unreadable: %s", wpath.c_str(),
                  err.empty() ? "no records" : err.c_str());
        records.push_back(std::move(lines.back()));
    }

    JsonValue merged;
    std::string err;
    if (!mergeShardRecords(records, merged, err))
        fatal("shard merge failed: %s", err.c_str());
    if (!appendJsonLine(json_path, merged, err))
        fatal("merged record not written: %s", err.c_str());
    for (const std::string &wpath : worker_paths)
        std::remove(wpath.c_str());
    std::printf("\nmerged %u shard records into %s\n", workers,
                json_path.c_str());
    std::exit(0);
}

} // namespace sms
