/**
 * @file
 * Sharded sweep execution: deterministic partitioning of the
 * (scene x config) cell grid across worker processes, and the merge
 * that reassembles the workers' partial sms-bench-1 records into one
 * record bit-identical to a single-process run.
 *
 * Partitioning is round-robin over the flattened cell index
 * g = scene * num_configs + config: shard i of N (1-based) owns every
 * cell with g % N == i-1, so every cell is owned by exactly one shard
 * for any N — including ragged N that does not divide the cell count,
 * and N larger than the grid (the excess shards own nothing and emit
 * empty results arrays).
 *
 * A worker is selected by SMS_SWEEP_SHARDS=i/N or the --shards=i/N
 * bench flag (the flag wins). Workers emit the same per-cell fields as
 * a single-process run but leave the cross-cell derived values —
 * norm_ipc, norm_offchip, baseline, summary — null/absent, and attach
 * a "shard" block (index, count, the ordered scene list, the baseline
 * column of each results key) carrying exactly what the merge needs to
 * recompute them. The merge recomputes the normalized columns and the
 * summary geomeans from the per-cell ipc/offchip_accesses numbers; the
 * JSON serializer prints doubles with shortest-round-trip precision,
 * so the recomputed values are bit-identical to the single-process
 * ones (same doubles, same operations, same order).
 *
 * The coordinator (--shard-workers=N) forks N worker processes of the
 * same binary, waits for them, merges their records, and appends the
 * merged record to the requested JSONL path.
 */

#ifndef SMS_SERVE_SWEEP_SHARD_HPP
#define SMS_SERVE_SWEEP_SHARD_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "src/stats/report.hpp"

namespace sms {

/** One worker's identity in a sharded sweep. */
struct SweepShardSpec
{
    uint32_t index = 0; ///< 1-based shard index
    uint32_t count = 0; ///< total shards; 0 = not sharded

    /** True when this process runs as a shard worker. */
    bool active() const { return count >= 1; }

    /** Does this shard own flattened cell @p g? (true when unsharded) */
    bool
    owns(uint64_t g) const
    {
        return !active() || g % count == index - 1;
    }
};

/**
 * Parse "i/N" (1 <= i <= N). @return false with @p error set on
 * malformed input.
 */
bool parseSweepShardSpec(const std::string &spec, SweepShardSpec &out,
                         std::string &error);

/**
 * The process's shard identity: the setSweepShardSpec() override when
 * one was installed (the --shards flag, tests), else SMS_SWEEP_SHARDS
 * (malformed values are fatal — a typo must not silently run the full
 * grid in every worker), else inactive.
 */
SweepShardSpec sweepShardSpec();

/** Install a shard identity override (flag parsing, tests). */
void setSweepShardSpec(const SweepShardSpec &spec);

/**
 * Merge the (last) records of N shard workers into one record
 * equivalent to a single-process run: cells unioned and re-ordered,
 * norm_ipc/norm_offchip and the summary geomeans recomputed, the
 * run-level "aggregate" block (merged depth histogram + merged
 * cycle-accounting tree) rebuilt from the per-cell counters with the
 * conservation invariant re-checked on the merged totals, and the
 * throughput blocks combined (counters summed, wall-clock maxed — the
 * workers run concurrently).
 *
 * Every shard 1..N must be present exactly once, every cell exactly
 * once, and the grid must be complete. @return false with @p error on
 * any violation (including a conservation failure on the merged
 * accounting).
 */
bool mergeShardRecords(const std::vector<JsonValue> &shards,
                       JsonValue &merged, std::string &error);

/**
 * Coordinator: fork @p workers copies of this binary (argv must
 * already be stripped of --json/--shards/--shard-workers), each with
 * --shards=i/N --json=<json_path>.shard<i>, wait for all of them,
 * merge their records, and append the merged record to @p json_path.
 * Fatal on any worker failure; exits the process on success.
 */
[[noreturn]] void runShardCoordinator(uint32_t workers,
                                      const std::string &json_path,
                                      int argc, char **argv);

} // namespace sms

#endif // SMS_SERVE_SWEEP_SHARD_HPP
