/**
 * @file
 * Shared mesh-building helpers used by the procedural scene generators.
 *
 * Each helper appends triangles (or spheres) to a Scene with a given
 * material. All helpers are deterministic; any randomness comes from an
 * explicitly passed Pcg32.
 */

#ifndef SMS_SCENE_BUILDERS_HPP
#define SMS_SCENE_BUILDERS_HPP

#include <cstdint>
#include <functional>

#include "src/scene/scene.hpp"
#include "src/util/rng.hpp"

namespace sms {
namespace builders {

/** Append the two triangles of a quad (a, b, c, d counter-clockwise). */
void addQuad(Scene &scene, const Vec3 &a, const Vec3 &b, const Vec3 &c,
             const Vec3 &d, uint16_t material);

/** Append the 12 triangles of an axis-aligned box. */
void addBox(Scene &scene, const Aabb &box, uint16_t material);

/**
 * Append a heightfield terrain over [x0,x1]x[z0,z1] with res x res quads.
 * @param height function (x, z) -> y
 */
void addTerrain(Scene &scene, float x0, float z0, float x1, float z1,
                int res, const std::function<float(float, float)> &height,
                uint16_t material);

/**
 * Append a triangulated sphere by icosahedron subdivision.
 * Triangle count is 20 * 4^subdiv.
 */
void addIcosphere(Scene &scene, const Vec3 &center, float radius,
                  int subdiv, uint16_t material);

/**
 * Append a bumpy "organic" blob: icosphere with deterministic radial
 * noise. Stand-in for dense scanned meshes (BUNNY, FOX, ROBOT).
 */
void addBlob(Scene &scene, const Vec3 &center, float radius, int subdiv,
             float noise_amp, uint64_t seed, uint16_t material);

/** Append an open prism/cylinder with @p sides side quads plus caps. */
void addCylinder(Scene &scene, const Vec3 &base_center, float radius,
                 float height, int sides, uint16_t material);

/** Append a cone (triangle fan) with @p sides side triangles. */
void addCone(Scene &scene, const Vec3 &base_center, float radius,
             float height, int sides, uint16_t material);

/**
 * Append a long thin two-triangle ribbon from @p a to @p b with the given
 * (small) width. Produces the long-thin-primitive leaves that make the
 * SHIP scene leaf-heavy in the paper.
 */
void addRibbon(Scene &scene, const Vec3 &a, const Vec3 &b, float width,
               uint16_t material);

/** Append a stylized tree (cone canopy layers + cylinder trunk). */
void addTree(Scene &scene, const Vec3 &root, float height, float canopy,
             int detail, uint16_t material_trunk, uint16_t material_leaf);

/**
 * Scatter small random tetrahedra inside a box — clutter geometry for
 * PARTY/CRNVL-style scenes.
 */
void addClutter(Scene &scene, const Aabb &region, int count, float size,
                Pcg32 &rng, uint16_t material);

} // namespace builders
} // namespace sms

#endif // SMS_SCENE_BUILDERS_HPP
