/**
 * @file
 * Scene container implementation.
 */

#include "src/scene/scene.hpp"

#include "src/util/check.hpp"

namespace sms {

namespace {

/** Bytes of one triangle record in simulated memory (3 x vec3 + pad). */
constexpr uint64_t kTriangleBytes = 48;
/** Bytes of one sphere record in simulated memory (center + radius + pad). */
constexpr uint64_t kSphereBytes = 32;

} // namespace

uint16_t
Scene::addMaterial(const Material &m)
{
    SMS_ASSERT(materials_.size() < 0xffff, "too many materials");
    materials_.push_back(m);
    return static_cast<uint16_t>(materials_.size() - 1);
}

void
Scene::addTriangle(const Triangle &t, uint16_t material)
{
    SMS_ASSERT(material < materials_.size(), "material %u out of range",
               material);
    triangles_.push_back(t);
    triangle_materials_.push_back(material);
}

void
Scene::addSphere(const Sphere &s, uint16_t material)
{
    SMS_ASSERT(material < materials_.size(), "material %u out of range",
               material);
    spheres_.push_back(s);
    sphere_materials_.push_back(material);
}

Aabb
Scene::primitiveBounds(uint32_t id) const
{
    if (id < triangleCount())
        return triangles_[id].bounds();
    return spheres_[id - triangleCount()].bounds();
}

Vec3
Scene::primitiveCentroid(uint32_t id) const
{
    if (id < triangleCount())
        return triangles_[id].centroid();
    return spheres_[id - triangleCount()].center;
}

const Material &
Scene::primitiveMaterial(uint32_t id) const
{
    if (id < triangleCount())
        return materials_[triangle_materials_[id]];
    return materials_[sphere_materials_[id - triangleCount()]];
}

bool
Scene::intersectPrimitive(uint32_t id, Ray &ray, HitRecord &hit) const
{
    if (id < triangleCount()) {
        const Triangle &tri = triangles_[id];
        float t, u, v;
        if (!tri.intersect(ray, t, u, v))
            return false;
        ray.tMax = t;
        hit.t = t;
        hit.primitive = id;
        hit.kind = PrimitiveKind::Triangle;
        hit.u = u;
        hit.v = v;
        Vec3 n = normalize(tri.geometricNormal());
        // Face the normal toward the incoming ray.
        hit.normal = dot(n, ray.dir) < 0.0f ? n : -n;
        return true;
    }
    const Sphere &sph = spheres_[id - triangleCount()];
    float t;
    if (!sph.intersect(ray, t))
        return false;
    ray.tMax = t;
    hit.t = t;
    hit.primitive = id;
    hit.kind = PrimitiveKind::Sphere;
    hit.u = 0.0f;
    hit.v = 0.0f;
    Vec3 n = sph.normalAt(ray.at(t));
    hit.normal = dot(n, ray.dir) < 0.0f ? n : -n;
    return true;
}

Aabb
Scene::bounds() const
{
    Aabb box;
    for (uint32_t i = 0; i < primitiveCount(); ++i)
        box.extend(primitiveBounds(i));
    return box;
}

HitRecord
Scene::intersectBruteForce(const Ray &ray) const
{
    Ray work = ray;
    HitRecord hit;
    for (uint32_t i = 0; i < primitiveCount(); ++i)
        intersectPrimitive(i, work, hit);
    return hit;
}

uint64_t
Scene::primitiveDataBytes() const
{
    return kTriangleBytes * triangleCount() + kSphereBytes * sphereCount();
}

} // namespace sms
