/**
 * @file
 * Internal declarations of the per-scene generator functions.
 * Users should go through makeScene() in registry.hpp.
 */

#ifndef SMS_SCENE_GENERATORS_HPP
#define SMS_SCENE_GENERATORS_HPP

#include "src/scene/registry.hpp"
#include "src/scene/scene.hpp"

namespace sms {
namespace generators {

/**
 * Resolution/count multiplier for a scale profile.
 * Linear dimension scaling; terrain-style generators square it.
 */
float profileScale(ScaleProfile profile);

Scene makeWknd(ScaleProfile profile);
Scene makeSprng(ScaleProfile profile);
Scene makeFox(ScaleProfile profile);
Scene makeLands(ScaleProfile profile);
Scene makeCrnvl(ScaleProfile profile);
Scene makeSpnza(ScaleProfile profile);
Scene makeBath(ScaleProfile profile);
Scene makeRobot(ScaleProfile profile);
Scene makeCar(ScaleProfile profile);
Scene makeParty(ScaleProfile profile);
Scene makeFrst(ScaleProfile profile);
Scene makeBunny(ScaleProfile profile);
Scene makeShip(ScaleProfile profile);
Scene makeRef(ScaleProfile profile);
Scene makeChsnt(ScaleProfile profile);
Scene makePark(ScaleProfile profile);

} // namespace generators
} // namespace sms

#endif // SMS_SCENE_GENERATORS_HPP
