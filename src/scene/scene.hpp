/**
 * @file
 * Scene container: primitives, materials, camera and light.
 *
 * Scenes are generated procedurally (see registry.hpp) as deterministic
 * stand-ins for the LumiBench suite used by the paper. A scene exposes a
 * unified primitive index space: ids [0, triangleCount) are triangles,
 * ids [triangleCount, primitiveCount) are spheres. The BVH builder and
 * traversal code only ever deal in these unified ids.
 */

#ifndef SMS_SCENE_SCENE_HPP
#define SMS_SCENE_SCENE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "src/geometry/aabb.hpp"
#include "src/geometry/ray.hpp"
#include "src/geometry/sphere.hpp"
#include "src/geometry/triangle.hpp"
#include "src/geometry/vec3.hpp"

namespace sms {

/** Simple surface description for the path tracer's shading model. */
struct Material
{
    Vec3 albedo{0.8f, 0.8f, 0.8f};
    Vec3 emission{0.0f, 0.0f, 0.0f};
    /** 0 = pure diffuse, 1 = pure mirror. */
    float reflectivity = 0.0f;
};

/** Pinhole camera description. */
struct CameraDesc
{
    Vec3 position{0.0f, 1.0f, 5.0f};
    Vec3 lookAt{0.0f, 0.0f, 0.0f};
    Vec3 up{0.0f, 1.0f, 0.0f};
    float verticalFovDeg = 45.0f;
};

/** Single point light used for shadow rays. */
struct LightDesc
{
    Vec3 position{0.0f, 10.0f, 0.0f};
    Vec3 intensity{60.0f, 60.0f, 60.0f};
};

/**
 * A renderable scene. Primitive id p resolves to triangles[p] when
 * p < triangleCount(), otherwise to spheres[p - triangleCount()].
 */
class Scene
{
  public:
    std::string name;
    CameraDesc camera;
    LightDesc light;

    uint32_t triangleCount() const { return (uint32_t)triangles_.size(); }
    uint32_t sphereCount() const { return (uint32_t)spheres_.size(); }

    uint32_t
    primitiveCount() const
    {
        return triangleCount() + sphereCount();
    }

    const std::vector<Triangle> &triangles() const { return triangles_; }
    const std::vector<Sphere> &spheres() const { return spheres_; }
    const std::vector<Material> &materials() const { return materials_; }

    /** Register a material, returning its id. */
    uint16_t addMaterial(const Material &m);

    /** Append a triangle with the given material id. */
    void addTriangle(const Triangle &t, uint16_t material);

    /** Append a sphere with the given material id. */
    void addSphere(const Sphere &s, uint16_t material);

    /** Kind of the unified primitive id. */
    PrimitiveKind
    primitiveKind(uint32_t id) const
    {
        return id < triangleCount() ? PrimitiveKind::Triangle
                                    : PrimitiveKind::Sphere;
    }

    /** Bounding box of the unified primitive id. */
    Aabb primitiveBounds(uint32_t id) const;

    /** Centroid of the unified primitive id. */
    Vec3 primitiveCentroid(uint32_t id) const;

    /** Material of the unified primitive id. */
    const Material &primitiveMaterial(uint32_t id) const;

    /** Material id of the unified primitive id. */
    uint16_t
    primitiveMaterialId(uint32_t id) const
    {
        return id < triangleCount()
                   ? triangle_materials_[id]
                   : sphere_materials_[id - triangleCount()];
    }

    /**
     * Intersect one primitive, updating @p hit and shrinking @p ray.tMax
     * on success.
     *
     * @return true when the primitive is hit within the ray segment
     */
    bool intersectPrimitive(uint32_t id, Ray &ray, HitRecord &hit) const;

    /** Bounding box of all primitives. */
    Aabb bounds() const;

    /**
     * Closest hit by brute force over all primitives. O(n) — reference
     * oracle for BVH traversal tests, never used by the simulator.
     */
    HitRecord intersectBruteForce(const Ray &ray) const;

    /** Total bytes of primitive data as laid out in simulated memory. */
    uint64_t primitiveDataBytes() const;

  private:
    std::vector<Triangle> triangles_;
    std::vector<Sphere> spheres_;
    std::vector<uint16_t> triangle_materials_;
    std::vector<uint16_t> sphere_materials_;
    std::vector<Material> materials_;
};

} // namespace sms

#endif // SMS_SCENE_SCENE_HPP
