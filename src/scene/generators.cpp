/**
 * @file
 * The 16 procedural LumiBench stand-in scenes.
 *
 * Each generator is deterministic (fixed PCG seeds) and scaled by the
 * ScaleProfile. Geometry is chosen to match the *traversal character* of
 * the corresponding LumiBench scene: dense meshes for ROBOT/CAR,
 * overlapping foliage for CHSNT/FRST/PARK, long thin primitives for
 * SHIP, shallow well-separated geometry for REF/BATH, spheres only for
 * WKND. See DESIGN.md §2 for the substitution rationale.
 */

#include "src/scene/generators.hpp"

#include <cmath>

#include "src/scene/builders.hpp"
#include "src/util/check.hpp"
#include "src/util/rng.hpp"

namespace sms {
namespace generators {

using namespace builders;

namespace {

constexpr float kPi = 3.14159265358979323846f;

/** Rolling-hill height function used by several outdoor scenes. */
float
hills(float x, float z, float amp, float freq)
{
    return amp * (std::sin(x * freq) * std::cos(z * freq * 0.8f) +
                  0.5f * std::sin(x * freq * 2.3f + 1.7f) *
                      std::sin(z * freq * 1.9f + 0.3f));
}

/** Standard white/grey material set; returns (ground, object) ids. */
struct BasicMaterials
{
    uint16_t ground;
    uint16_t object;
    uint16_t accent;
};

BasicMaterials
addBasicMaterials(Scene &scene)
{
    BasicMaterials m;
    m.ground = scene.addMaterial({{0.45f, 0.5f, 0.4f}, {0, 0, 0}, 0.0f});
    m.object = scene.addMaterial({{0.7f, 0.6f, 0.5f}, {0, 0, 0}, 0.0f});
    m.accent = scene.addMaterial({{0.8f, 0.3f, 0.25f}, {0, 0, 0}, 0.0f});
    return m;
}

void
defaultLight(Scene &scene, const Vec3 &pos)
{
    scene.light.position = pos;
    scene.light.intensity = {160.0f, 150.0f, 140.0f};
}

} // namespace

float
profileScale(ScaleProfile profile)
{
    switch (profile) {
      case ScaleProfile::Tiny:
        return 0.3f;
      case ScaleProfile::Small:
        return 1.0f;
      case ScaleProfile::Large:
        return 2.0f;
    }
    panic("unknown scale profile");
}

Scene
makeWknd(ScaleProfile profile)
{
    Scene scene;
    scene.name = "WKND";
    float s = profileScale(profile);
    Pcg32 rng(0x57444e44, 1);

    uint16_t ground =
        scene.addMaterial({{0.5f, 0.5f, 0.5f}, {0, 0, 0}, 0.0f});
    uint16_t diffuse =
        scene.addMaterial({{0.6f, 0.4f, 0.35f}, {0, 0, 0}, 0.0f});
    uint16_t metal =
        scene.addMaterial({{0.8f, 0.8f, 0.9f}, {0, 0, 0}, 0.85f});

    // Huge ground sphere, as in "Ray Tracing in One Weekend".
    scene.addSphere(Sphere({0, -1000, 0}, 1000.0f), ground);

    int grid = std::max(3, static_cast<int>(30 * s));
    for (int a = -grid; a < grid; ++a) {
        for (int b = -grid; b < grid; ++b) {
            Vec3 center{a + 0.9f * rng.nextFloat(), 0.2f,
                        b + 0.9f * rng.nextFloat()};
            if (length(center - Vec3{4, 0.2f, 0}) < 0.9f)
                continue;
            uint16_t mat = rng.nextFloat() < 0.75f ? diffuse : metal;
            float radius = rng.nextRange(0.16f, 0.34f);
            scene.addSphere(Sphere({center.x, radius, center.z}, radius),
                            mat);
            // Occasional floating sphere: overlapping bounds along
            // camera rays deepen traversal past the flat-grid minimum.
            if (rng.nextFloat() < 0.22f) {
                scene.addSphere(
                    Sphere({center.x + rng.nextRange(-0.3f, 0.3f),
                            rng.nextRange(0.8f, 2.2f),
                            center.z + rng.nextRange(-0.3f, 0.3f)},
                           rng.nextRange(0.15f, 0.3f)),
                    mat);
            }
        }
    }
    scene.addSphere(Sphere({0, 1, 0}, 1.0f), metal);
    scene.addSphere(Sphere({-4, 1, 0}, 1.0f), diffuse);
    scene.addSphere(Sphere({4, 1, 0}, 1.0f), metal);

    scene.camera = {{13, 2, 3}, {0, 0.5f, 0}, {0, 1, 0}, 25.0f};
    defaultLight(scene, {8, 14, 6});
    return scene;
}

Scene
makeSprng(ScaleProfile profile)
{
    Scene scene;
    scene.name = "SPRNG";
    float s = profileScale(profile);
    Pcg32 rng(0x5350524e, 2);
    BasicMaterials m = addBasicMaterials(scene);
    uint16_t grass =
        scene.addMaterial({{0.3f, 0.65f, 0.3f}, {0, 0, 0}, 0.0f});

    int res = std::max(6, static_cast<int>(110 * s));
    addTerrain(scene, -20, -20, 20, 20, res,
               [](float x, float z) { return hills(x, z, 0.7f, 0.25f); },
               m.ground);

    // Grass blades: thin upright ribbons scattered over the meadow.
    int blades = static_cast<int>(140000 * s * s);
    for (int i = 0; i < blades; ++i) {
        float x = rng.nextRange(-18, 18);
        float z = rng.nextRange(-18, 18);
        float y = hills(x, z, 0.7f, 0.25f);
        float h = rng.nextRange(0.35f, 0.85f);
        Vec3 sway{rng.nextRange(-0.1f, 0.1f), h, rng.nextRange(-0.1f, 0.1f)};
        addRibbon(scene, {x, y, z}, Vec3{x, y, z} + sway, 0.07f, grass);
    }

    // A few boulders.
    int rocks = std::max(2, static_cast<int>(14 * s));
    for (int i = 0; i < rocks; ++i) {
        float x = rng.nextRange(-12, 12);
        float z = rng.nextRange(-12, 12);
        float y = hills(x, z, 0.7f, 0.25f);
        addBlob(scene, {x, y + 0.4f, z}, rng.nextRange(0.4f, 0.9f), 2, 0.3f,
                0x1234 + i, m.object);
    }

    scene.camera = {{0, 4.5f, 19}, {0, 0.6f, 0}, {0, 1, 0}, 42.0f};
    defaultLight(scene, {6, 18, 8});
    return scene;
}

Scene
makeFox(ScaleProfile profile)
{
    Scene scene;
    scene.name = "FOX";
    float s = profileScale(profile);
    BasicMaterials m = addBasicMaterials(scene);
    uint16_t fur =
        scene.addMaterial({{0.85f, 0.45f, 0.2f}, {0, 0, 0}, 0.0f});

    addQuad(scene, {-10, 0, -10}, {10, 0, -10}, {10, 0, 10}, {-10, 0, 10},
            m.ground);

    int body_subdiv = profile == ScaleProfile::Tiny ? 2 : 6;
    // Body: stretched blob.
    addBlob(scene, {0, 1.0f, 0}, 1.1f, body_subdiv, 0.22f, 0xf0f0, fur);
    // Head.
    addBlob(scene, {1.3f, 1.7f, 0}, 0.55f, body_subdiv - 1, 0.25f, 0xf0f1,
            fur);
    // Snout + ears as cones.
    addCone(scene, {1.8f, 1.6f, 0}, 0.2f, 0.5f, 8, fur);
    addCone(scene, {1.2f, 2.1f, -0.2f}, 0.15f, 0.4f, 6, fur);
    addCone(scene, {1.2f, 2.1f, 0.2f}, 0.15f, 0.4f, 6, fur);
    // Legs.
    int sides = std::max(5, static_cast<int>(8 * s));
    addCylinder(scene, {-0.6f, 0, -0.4f}, 0.15f, 1.0f, sides, fur);
    addCylinder(scene, {-0.6f, 0, 0.4f}, 0.15f, 1.0f, sides, fur);
    addCylinder(scene, {0.6f, 0, -0.4f}, 0.15f, 1.0f, sides, fur);
    addCylinder(scene, {0.6f, 0, 0.4f}, 0.15f, 1.0f, sides, fur);
    // Tail.
    addBlob(scene, {-1.6f, 1.2f, 0}, 0.45f, body_subdiv - 1, 0.3f, 0xf0f2,
            fur);

    scene.camera = {{4.5f, 2.5f, 5.5f}, {0.3f, 1.1f, 0}, {0, 1, 0}, 38.0f};
    defaultLight(scene, {4, 9, 5});
    return scene;
}

Scene
makeLands(ScaleProfile profile)
{
    Scene scene;
    scene.name = "LANDS";
    float s = profileScale(profile);
    BasicMaterials m = addBasicMaterials(scene);

    int res = std::max(10, static_cast<int>(420 * s));
    addTerrain(scene, -40, -40, 40, 40, res,
               [](float x, float z) {
                   return hills(x, z, 3.2f, 0.12f) +
                          hills(x * 0.31f, z * 0.29f, 5.0f, 0.07f);
               },
               m.ground);

    // Scattered rocky outcrops.
    Pcg32 rng(0x4c414e44, 4);
    int rocks = std::max(2, static_cast<int>(200 * s));
    for (int i = 0; i < rocks; ++i) {
        float x = rng.nextRange(-30, 30);
        float z = rng.nextRange(-30, 30);
        float y = hills(x, z, 3.2f, 0.12f) +
                  hills(x * 0.31f, z * 0.29f, 5.0f, 0.07f);
        addBlob(scene, {x, y + 0.8f, z}, rng.nextRange(1.2f, 3.2f), 2,
                0.45f, 0xaa00 + i, m.object);
    }

    scene.camera = {{0, 14, 38}, {0, 1, 0}, {0, 1, 0}, 48.0f};
    defaultLight(scene, {15, 30, 20});
    return scene;
}

Scene
makeCrnvl(ScaleProfile profile)
{
    Scene scene;
    scene.name = "CRNVL";
    float s = profileScale(profile);
    Pcg32 rng(0x43524e56, 5);
    BasicMaterials m = addBasicMaterials(scene);
    uint16_t bright =
        scene.addMaterial({{0.9f, 0.75f, 0.2f}, {0, 0, 0}, 0.1f});

    addQuad(scene, {-25, 0, -25}, {25, 0, -25}, {25, 0, 25}, {-25, 0, 25},
            m.ground);

    // Ferris wheel: ring of cabins (boxes) + spokes (ribbons).
    int cabins = std::max(6, static_cast<int>(20 * s));
    Vec3 hub{0, 7.5f, -8};
    for (int i = 0; i < cabins; ++i) {
        float a = 2.0f * kPi * i / cabins;
        Vec3 c = hub + Vec3{std::cos(a) * 6.0f, std::sin(a) * 6.0f, 0};
        addBox(scene, Aabb(c - Vec3(0.5f), c + Vec3(0.5f)), bright);
        addRibbon(scene, hub, c, 0.12f, m.object);
    }
    addCylinder(scene, {hub.x - 1.0f, 0, hub.z}, 0.3f, 7.5f, 8, m.object);
    addCylinder(scene, {hub.x + 1.0f, 0, hub.z}, 0.3f, 7.5f, 8, m.object);

    // Carousel.
    addCylinder(scene, {9, 0, 2}, 3.0f, 0.4f, 16, bright);
    addCone(scene, {9, 3.0f, 2}, 3.4f, 1.6f, 16, m.accent);
    int horses = std::max(4, static_cast<int>(12 * s));
    for (int i = 0; i < horses; ++i) {
        float a = 2.0f * kPi * i / horses;
        Vec3 c{9 + std::cos(a) * 2.2f, 1.3f, 2 + std::sin(a) * 2.2f};
        addBlob(scene, c, 0.45f, 2, 0.3f, 0xca0 + i, bright);
        addCylinder(scene, {c.x, 0.4f, c.z}, 0.06f, 2.6f, 5, m.object);
    }

    // Stalls.
    int stalls = std::max(3, static_cast<int>(14 * s));
    for (int i = 0; i < stalls; ++i) {
        float x = rng.nextRange(-20, 20);
        float z = rng.nextRange(4, 20);
        addBox(scene, Aabb({x, 0, z}, {x + 2.5f, 2.2f, z + 2.0f}), m.accent);
        addCone(scene, {x + 1.25f, 2.2f, z + 1.0f}, 2.0f, 1.0f, 4, bright);
    }

    // Ground clutter (litter, props).
    int clutter = static_cast<int>(45000 * s * s);
    addClutter(scene, Aabb({-22, 0.05f, -22}, {22, 1.6f, 22}), clutter,
               0.28f, rng, bright);

    scene.camera = {{0, 6, 24}, {0, 3, -2}, {0, 1, 0}, 46.0f};
    defaultLight(scene, {0, 22, 10});
    return scene;
}

Scene
makeSpnza(ScaleProfile profile)
{
    Scene scene;
    scene.name = "SPNZA";
    float s = profileScale(profile);
    BasicMaterials m = addBasicMaterials(scene);
    uint16_t stone =
        scene.addMaterial({{0.75f, 0.7f, 0.6f}, {0, 0, 0}, 0.0f});
    uint16_t fabric =
        scene.addMaterial({{0.6f, 0.2f, 0.2f}, {0, 0, 0}, 0.0f});

    // Atrium shell: floor, end walls, side galleries.
    addQuad(scene, {-18, 0, -8}, {18, 0, -8}, {18, 0, 8}, {-18, 0, 8},
            m.ground);
    addQuad(scene, {-18, 0, -8}, {-18, 0, 8}, {-18, 12, 8}, {-18, 12, -8},
            stone);
    addQuad(scene, {18, 0, 8}, {18, 0, -8}, {18, 12, -8}, {18, 12, 8},
            stone);

    // Two-level colonnades along both sides.
    int columns = std::max(4, static_cast<int>(15 * s));
    int sides = std::max(6, static_cast<int>(10 * s));
    for (int level = 0; level < 2; ++level) {
        float y = level * 5.0f;
        for (int i = 0; i < columns; ++i) {
            float x = -15.0f + 30.0f * i / (columns - 1);
            addCylinder(scene, {x, y, -6.5f}, 0.45f, 4.2f, sides, stone);
            addCylinder(scene, {x, y, 6.5f}, 0.45f, 4.2f, sides, stone);
            // Capitals.
            addBox(scene,
                   Aabb({x - 0.7f, y + 4.2f, -7.2f},
                        {x + 0.7f, y + 5.0f, -5.8f}),
                   stone);
            addBox(scene,
                   Aabb({x - 0.7f, y + 4.2f, 5.8f},
                        {x + 0.7f, y + 5.0f, 7.2f}),
                   stone);
        }
        // Gallery floors.
        addQuad(scene, {-18, y + 5.0f, -8}, {18, y + 5.0f, -8},
                {18, y + 5.0f, -5.5f}, {-18, y + 5.0f, -5.5f}, stone);
        addQuad(scene, {-18, y + 5.0f, 5.5f}, {18, y + 5.0f, 5.5f},
                {18, y + 5.0f, 8}, {-18, y + 5.0f, 8}, stone);
    }

    // Hanging curtains (the famous sponza drapes) as ribbon strips.
    Pcg32 rng(0x53504e5a, 6);
    int curtains = std::max(3, static_cast<int>(12 * s));
    for (int i = 0; i < curtains; ++i) {
        float x = -13.0f + 26.0f * i / std::max(1, curtains - 1);
        float zside = (i & 1) ? -5.8f : 5.8f;
        for (int strip = 0; strip < 6; ++strip) {
            float xo = x + 0.22f * strip;
            addRibbon(scene, {xo, 9.5f, zside},
                      {xo + rng.nextRange(-0.15f, 0.15f), 5.2f,
                       zside + rng.nextRange(-0.3f, 0.3f)},
                      0.2f, fabric);
        }
    }

    // Floor props.
    int props = static_cast<int>(28000 * s * s);
    addClutter(scene, Aabb({-14, 0.05f, -4.5f}, {14, 1.6f, 4.5f}), props,
               0.3f, rng, m.accent);

    scene.camera = {{-14, 3.5f, 0}, {10, 4, 0}, {0, 1, 0}, 52.0f};
    defaultLight(scene, {0, 11, 0});
    return scene;
}

Scene
makeBath(ScaleProfile profile)
{
    Scene scene;
    scene.name = "BATH";
    float s = profileScale(profile);
    BasicMaterials m = addBasicMaterials(scene);
    uint16_t tile =
        scene.addMaterial({{0.85f, 0.9f, 0.92f}, {0, 0, 0}, 0.25f});
    uint16_t mirror =
        scene.addMaterial({{0.9f, 0.9f, 0.9f}, {0, 0, 0}, 0.9f});
    uint16_t ceramic =
        scene.addMaterial({{0.95f, 0.95f, 0.95f}, {0, 0, 0}, 0.15f});

    // Tiled room interior: lightly tessellated floor and walls so the
    // BVH is shallow and traversals are short (the paper notes BATH
    // rarely needs more than the 8-entry primary stack).
    int res = std::max(4, static_cast<int>(34 * s));
    auto flat = [](float, float) { return 0.0f; };
    addTerrain(scene, -4, -4, 4, 4, res, flat, tile);
    // Back wall (rotate terrain pattern by hand with quads).
    for (int i = 0; i < res; ++i) {
        float x0 = -4 + 8.0f * i / res;
        float x1 = -4 + 8.0f * (i + 1) / res;
        addQuad(scene, {x0, 0, -4}, {x1, 0, -4}, {x1, 3.2f, -4},
                {x0, 3.2f, -4}, tile);
        addQuad(scene, {-4, 0, x1}, {-4, 0, x0}, {-4, 3.2f, x0},
                {-4, 3.2f, x1}, tile);
    }

    // Bathtub: hollow box approximation.
    addBox(scene, Aabb({-2.8f, 0, -3.4f}, {-0.4f, 0.9f, -1.8f}), ceramic);
    // Sink pedestal + bowl.
    addCylinder(scene, {2.4f, 0, -3.0f}, 0.25f, 0.9f, 10, ceramic);
    addCylinder(scene, {2.4f, 0.9f, -3.0f}, 0.55f, 0.25f, 12, ceramic);
    // Mirror above the sink.
    addQuad(scene, {1.6f, 1.6f, -3.95f}, {3.2f, 1.6f, -3.95f},
            {3.2f, 2.8f, -3.95f}, {1.6f, 2.8f, -3.95f}, mirror);
    // A few toiletries.
    Pcg32 rng(0x42415448, 7);
    for (int i = 0; i < std::max(6, (int)(26 * s)); ++i) {
        float x = rng.nextRange(1.8f, 3.0f);
        float z = rng.nextRange(-3.3f, -2.7f);
        addCylinder(scene, {x, 1.15f, z}, 0.05f, rng.nextRange(0.1f, 0.3f),
                    6, m.accent);
    }

    scene.camera = {{2.8f, 1.8f, 3.2f}, {-0.5f, 1.0f, -2.5f}, {0, 1, 0},
                    50.0f};
    defaultLight(scene, {0, 3.0f, 0});
    return scene;
}

Scene
makeRobot(ScaleProfile profile)
{
    Scene scene;
    scene.name = "ROBOT";
    BasicMaterials m = addBasicMaterials(scene);
    uint16_t metal =
        scene.addMaterial({{0.6f, 0.62f, 0.68f}, {0, 0, 0}, 0.35f});

    addQuad(scene, {-8, 0, -8}, {8, 0, -8}, {8, 0, 8}, {-8, 0, 8},
            m.ground);

    // Densest mesh in the suite: high-subdivision blobs for torso,
    // head and limbs.
    int big = profile == ScaleProfile::Tiny ? 2 : 6;
    int small = profile == ScaleProfile::Tiny ? 1 : 4;
    addBlob(scene, {0, 2.4f, 0}, 1.3f, big, 0.18f, 0xb00, metal);
    addBlob(scene, {0, 4.3f, 0}, 0.7f, small + 1, 0.15f, 0xb01, metal);
    // Arms and legs: chains of blobs.
    for (int side = -1; side <= 1; side += 2) {
        addBlob(scene, {side * 1.6f, 3.0f, 0}, 0.45f, small, 0.2f,
                0xb10 + side, metal);
        addBlob(scene, {side * 1.9f, 2.0f, 0.2f}, 0.4f, small, 0.2f,
                0xb20 + side, metal);
        addBlob(scene, {side * 0.7f, 1.0f, 0}, 0.5f, small, 0.2f,
                0xb30 + side, metal);
        addBlob(scene, {side * 0.7f, 0.25f, 0.3f}, 0.35f, small, 0.2f,
                0xb40 + side, metal);
    }
    // Armor plates: small blobs overlapping the torso surface.
    Pcg32 rng(0x524f4254, 11);
    int plates = profile == ScaleProfile::Tiny ? 4 : 90;
    for (int i = 0; i < plates; ++i) {
        float a = rng.nextRange(0.0f, 6.2831853f);
        float y = rng.nextRange(1.4f, 3.4f);
        addBlob(scene,
                {std::cos(a) * 1.25f, y, std::sin(a) * 1.25f},
                rng.nextRange(0.15f, 0.35f), 2, 0.2f, 0xab00 + i, metal);
    }
    // Antennae.
    addCylinder(scene, {-0.2f, 4.9f, 0}, 0.03f, 0.8f, 5, m.accent);
    addCylinder(scene, {0.2f, 4.9f, 0}, 0.03f, 0.8f, 5, m.accent);

    scene.camera = {{4.5f, 3.2f, 5.5f}, {0, 2.4f, 0}, {0, 1, 0}, 42.0f};
    defaultLight(scene, {4, 9, 4});
    return scene;
}

Scene
makeCar(ScaleProfile profile)
{
    Scene scene;
    scene.name = "CAR";
    BasicMaterials m = addBasicMaterials(scene);
    uint16_t paint =
        scene.addMaterial({{0.7f, 0.12f, 0.1f}, {0, 0, 0}, 0.5f});
    uint16_t rubber =
        scene.addMaterial({{0.1f, 0.1f, 0.1f}, {0, 0, 0}, 0.0f});

    addQuad(scene, {-10, 0, -10}, {10, 0, -10}, {10, 0, 10}, {-10, 0, 10},
            m.ground);

    int body_subdiv = profile == ScaleProfile::Tiny ? 2 : 6;
    // Body shell: big displaced blob flattened by construction of two
    // overlapping blobs (hood + cabin).
    addBlob(scene, {0, 0.9f, 0}, 1.6f, body_subdiv, 0.12f, 0xca1, paint);
    addBlob(scene, {-0.4f, 1.5f, 0}, 1.0f, body_subdiv - 1, 0.1f, 0xca2,
            paint);
    // Accessories: mirrors, lights, spoiler — small blobs overlapping
    // the shell, deepening traversal around the body.
    Pcg32 rng(0x43415230, 8);
    int bits = profile == ScaleProfile::Tiny ? 4 : 60;
    for (int i = 0; i < bits; ++i) {
        float a = rng.nextRange(0.0f, 6.2831853f);
        Vec3 c{std::cos(a) * rng.nextRange(1.2f, 1.7f),
               rng.nextRange(0.5f, 1.6f),
               std::sin(a) * rng.nextRange(0.7f, 1.1f)};
        addBlob(scene, c, rng.nextRange(0.12f, 0.3f), 2, 0.25f,
                0xcc00 + i, paint);
    }
    // Wheels.
    int sides = profile == ScaleProfile::Tiny ? 8 : 20;
    for (int sx = -1; sx <= 1; sx += 2) {
        for (int sz = -1; sz <= 1; sz += 2) {
            Vec3 c{sx * 1.2f, 0.0f, sz * 0.95f};
            addCylinder(scene, c, 0.42f, 0.3f, sides, rubber);
        }
    }

    scene.camera = {{4.2f, 2.2f, 4.8f}, {0, 0.9f, 0}, {0, 1, 0}, 40.0f};
    defaultLight(scene, {5, 8, 5});
    return scene;
}

Scene
makeParty(ScaleProfile profile)
{
    Scene scene;
    scene.name = "PARTY";
    float s = profileScale(profile);
    Pcg32 rng(0x50415254, 9);
    BasicMaterials m = addBasicMaterials(scene);
    uint16_t confetti =
        scene.addMaterial({{0.9f, 0.4f, 0.6f}, {0, 0, 0}, 0.0f});
    uint16_t balloon =
        scene.addMaterial({{0.4f, 0.5f, 0.9f}, {0, 0, 0}, 0.2f});

    // Room shell.
    addQuad(scene, {-10, 0, -10}, {10, 0, -10}, {10, 0, 10}, {-10, 0, 10},
            m.ground);
    addQuad(scene, {-10, 0, -10}, {-10, 0, 10}, {-10, 6, 10}, {-10, 6, -10},
            m.object);
    addQuad(scene, {10, 0, 10}, {10, 0, -10}, {10, 6, -10}, {10, 6, 10},
            m.object);
    addQuad(scene, {-10, 0, -10}, {10, 0, -10}, {10, 6, -10}, {-10, 6, -10},
            m.object);
    addQuad(scene, {-10, 6, -10}, {10, 6, -10}, {10, 6, 10}, {-10, 6, 10},
            m.object);

    // Tables with props.
    int tables = std::max(2, static_cast<int>(8 * s));
    for (int i = 0; i < tables; ++i) {
        float x = rng.nextRange(-7, 7);
        float z = rng.nextRange(-7, 7);
        addBox(scene, Aabb({x, 0.9f, z}, {x + 2.2f, 1.05f, z + 1.2f}),
               m.object);
        for (int leg = 0; leg < 4; ++leg) {
            float lx = x + (leg & 1 ? 2.0f : 0.2f);
            float lz = z + (leg & 2 ? 1.0f : 0.2f);
            addCylinder(scene, {lx, 0, lz}, 0.06f, 0.9f, 5, m.object);
        }
        addClutter(scene,
                   Aabb({x, 1.05f, z}, {x + 2.2f, 1.5f, z + 1.2f}),
                   static_cast<int>(30 * s), 0.1f, rng, confetti);
    }

    // Balloons near the ceiling.
    int balloons = std::max(4, static_cast<int>(40 * s));
    for (int i = 0; i < balloons; ++i) {
        Vec3 c{rng.nextRange(-8, 8), rng.nextRange(4.2f, 5.6f),
               rng.nextRange(-8, 8)};
        addIcosphere(scene, c, rng.nextRange(0.25f, 0.45f), 2, balloon);
        addRibbon(scene, c, c - Vec3{0.1f, rng.nextRange(1.0f, 2.2f), 0.1f},
                  0.02f, confetti);
    }

    // Confetti cloud: the heavy clutter that drives PARTY's divergent
    // stack depths (Fig. 10 uses this scene).
    int bits = static_cast<int>(90000 * s * s);
    addClutter(scene, Aabb({-9, 0.1f, -9}, {9, 5.8f, 9}), bits, 0.13f, rng,
               confetti);

    scene.camera = {{0, 3.0f, 9.2f}, {0, 1.6f, 0}, {0, 1, 0}, 55.0f};
    defaultLight(scene, {0, 5.6f, 0});
    return scene;
}

Scene
makeFrst(ScaleProfile profile)
{
    Scene scene;
    scene.name = "FRST";
    float s = profileScale(profile);
    Pcg32 rng(0x46525354, 10);
    BasicMaterials m = addBasicMaterials(scene);
    uint16_t trunk =
        scene.addMaterial({{0.4f, 0.28f, 0.18f}, {0, 0, 0}, 0.0f});
    uint16_t leaf =
        scene.addMaterial({{0.18f, 0.45f, 0.2f}, {0, 0, 0}, 0.0f});

    int res = std::max(8, static_cast<int>(44 * s));
    auto ground_h = [](float x, float z) {
        return hills(x, z, 1.2f, 0.15f);
    };
    addTerrain(scene, -25, -25, 25, 25, res, ground_h, m.ground);

    int trees = std::max(8, static_cast<int>(4200 * s * s));
    int detail = profile == ScaleProfile::Tiny ? 4 : 6;
    for (int i = 0; i < trees; ++i) {
        float x = rng.nextRange(-23, 23);
        float z = rng.nextRange(-23, 23);
        float h = rng.nextRange(2.2f, 4.5f);
        addTree(scene, {x, ground_h(x, z), z}, h, h * 0.38f, detail, trunk,
                leaf);
    }

    // Undergrowth.
    int shrubs = static_cast<int>(26000 * s * s);
    addClutter(scene, Aabb({-23, 0.0f, -23}, {23, 1.6f, 23}), shrubs,
               0.32f, rng, leaf);

    scene.camera = {{0, 3.4f, 23}, {0, 2.0f, 0}, {0, 1, 0}, 50.0f};
    defaultLight(scene, {10, 24, 12});
    return scene;
}

Scene
makeBunny(ScaleProfile profile)
{
    Scene scene;
    scene.name = "BUNNY";
    BasicMaterials m = addBasicMaterials(scene);
    uint16_t fur =
        scene.addMaterial({{0.82f, 0.78f, 0.72f}, {0, 0, 0}, 0.0f});

    addQuad(scene, {-6, 0, -6}, {6, 0, -6}, {6, 0, 6}, {-6, 0, 6},
            m.ground);

    int subdiv = profile == ScaleProfile::Tiny ? 2 : 5;
    addBlob(scene, {0, 1.0f, 0}, 1.0f, subdiv, 0.2f, 0xb0b0, fur);
    addBlob(scene, {0.5f, 2.0f, 0}, 0.5f, subdiv - 1, 0.22f, 0xb0b1, fur);
    // Ears.
    addCone(scene, {0.45f, 2.4f, -0.18f}, 0.14f, 0.8f, 7, fur);
    addCone(scene, {0.45f, 2.4f, 0.18f}, 0.14f, 0.8f, 7, fur);
    // A smaller companion and sparse grass around the base.
    addBlob(scene, {-1.8f, 0.6f, 0.9f}, 0.6f, subdiv - 1, 0.2f, 0xb0b2,
            fur);
    Pcg32 rng(0x42554e59, 16);
    int tufts = profile == ScaleProfile::Tiny ? 40 : 5200;
    for (int i = 0; i < tufts; ++i) {
        float x = rng.nextRange(-5, 5);
        float z = rng.nextRange(-5, 5);
        addRibbon(scene, {x, 0, z},
                  {x + rng.nextRange(-0.1f, 0.1f),
                   rng.nextRange(0.2f, 0.5f),
                   z + rng.nextRange(-0.1f, 0.1f)},
                  0.05f, m.ground);
    }

    scene.camera = {{3.2f, 2.0f, 3.6f}, {0, 1.2f, 0}, {0, 1, 0}, 40.0f};
    defaultLight(scene, {3, 7, 4});
    return scene;
}

Scene
makeShip(ScaleProfile profile)
{
    Scene scene;
    scene.name = "SHIP";
    float s = profileScale(profile);
    Pcg32 rng(0x53484950, 12);
    BasicMaterials m = addBasicMaterials(scene);
    uint16_t wood =
        scene.addMaterial({{0.45f, 0.3f, 0.2f}, {0, 0, 0}, 0.0f});
    uint16_t sail =
        scene.addMaterial({{0.9f, 0.88f, 0.8f}, {0, 0, 0}, 0.0f});
    uint16_t sea =
        scene.addMaterial({{0.1f, 0.25f, 0.4f}, {0, 0, 0}, 0.4f});

    // Sea surface.
    addQuad(scene, {-30, 0, -30}, {30, 0, -30}, {30, 0, 30}, {-30, 0, 30},
            sea);

    // Hull: coarse boxes (the paper's SHIP has only 6.3K triangles).
    addBox(scene, Aabb({-6, 0.2f, -1.6f}, {6, 2.0f, 1.6f}), wood);
    addBox(scene, Aabb({-7, 1.2f, -1.0f}, {-6, 2.4f, 1.0f}), wood);
    addBox(scene, Aabb({6, 1.2f, -1.0f}, {7.5f, 2.6f, 1.0f}), wood);

    // Masts.
    addCylinder(scene, {-3, 2.0f, 0}, 0.12f, 9.0f, 7, wood);
    addCylinder(scene, {0.5f, 2.0f, 0}, 0.14f, 10.5f, 7, wood);
    addCylinder(scene, {4, 2.0f, 0}, 0.12f, 8.0f, 7, wood);

    // Yards + sails.
    auto add_sail = [&](const Vec3 &mast_top, float w, float h) {
        addRibbon(scene, mast_top - Vec3{w, 0, 0}, mast_top + Vec3{w, 0, 0},
                  0.1f, wood);
        addQuad(scene, mast_top + Vec3{-w, -h, 0.05f},
                mast_top + Vec3{w, -h, 0.05f},
                mast_top + Vec3{w * 0.9f, -0.2f, 0.05f},
                mast_top + Vec3{-w * 0.9f, -0.2f, 0.05f}, sail);
    };
    add_sail({-3, 10.2f, 0}, 2.4f, 3.4f);
    add_sail({-3, 7.0f, 0}, 2.8f, 2.6f);
    add_sail({0.5f, 11.6f, 0}, 2.8f, 3.8f);
    add_sail({0.5f, 8.0f, 0}, 3.2f, 3.0f);
    add_sail({4, 9.2f, 0}, 2.2f, 3.0f);

    // Rigging: the long thin diagonal primitives that give SHIP its
    // high leaf-to-node access ratio in the paper.
    int lines = std::max(20, static_cast<int>(900 * s));
    Vec3 mast_tips[3] = {{-3, 11.0f, 0}, {0.5f, 12.5f, 0}, {4, 10.0f, 0}};
    for (int i = 0; i < lines; ++i) {
        const Vec3 &tip = mast_tips[rng.nextBounded(3)];
        Vec3 deck{rng.nextRange(-6.5f, 7.0f), 2.0f,
                  rng.nextRange(-1.6f, 1.6f)};
        addRibbon(scene, tip, deck, 0.025f, wood);
        // Ratlines between neighbouring shrouds.
        if ((i & 3) == 0) {
            Vec3 mid = lerp(tip, deck, rng.nextRange(0.3f, 0.7f));
            addRibbon(scene, mid, mid + Vec3{0.8f, -0.2f, 0.3f}, 0.02f,
                      wood);
        }
    }

    scene.camera = {{14, 6, 14}, {0, 4.5f, 0}, {0, 1, 0}, 44.0f};
    defaultLight(scene, {12, 20, 8});
    return scene;
}

Scene
makeRef(ScaleProfile profile)
{
    Scene scene;
    scene.name = "REF";
    float s = profileScale(profile);
    BasicMaterials m = addBasicMaterials(scene);
    uint16_t mirror =
        scene.addMaterial({{0.92f, 0.92f, 0.92f}, {0, 0, 0}, 0.95f});
    uint16_t glossy =
        scene.addMaterial({{0.3f, 0.5f, 0.75f}, {0, 0, 0}, 0.6f});

    // Tessellated floor + back mirror wall; geometry is well separated,
    // keeping traversals short as the paper observes for REF.
    int res = std::max(5, static_cast<int>(40 * s));
    auto flat = [](float, float) { return 0.0f; };
    addTerrain(scene, -8, -8, 8, 8, res, flat, m.ground);
    for (int i = 0; i < res; ++i) {
        float x0 = -8 + 16.0f * i / res;
        float x1 = -8 + 16.0f * (i + 1) / res;
        addQuad(scene, {x0, 0, -8}, {x1, 0, -8}, {x1, 6, -8}, {x0, 6, -8},
                mirror);
    }

    // Reflective spheres and pedestals.
    Pcg32 rng(0x52454600, 13);
    int pieces = std::max(3, static_cast<int>(12 * s));
    for (int i = 0; i < pieces; ++i) {
        float x = -6.0f + 12.0f * i / std::max(1, pieces - 1);
        float z = (i & 1) ? -3.0f : -0.5f;
        addBox(scene, Aabb({x - 0.5f, 0, z - 0.5f}, {x + 0.5f, 1.0f, z + 0.5f}),
               m.object);
        scene.addSphere(Sphere({x, 1.6f, z}, 0.6f),
                        (i & 1) ? mirror : glossy);
    }

    scene.camera = {{0, 2.6f, 7.5f}, {0, 1.4f, -2}, {0, 1, 0}, 48.0f};
    defaultLight(scene, {0, 7, 3});
    return scene;
}

Scene
makeChsnt(ScaleProfile profile)
{
    Scene scene;
    scene.name = "CHSNT";
    float s = profileScale(profile);
    Pcg32 rng(0x4348534e, 14);
    BasicMaterials m = addBasicMaterials(scene);
    uint16_t bark =
        scene.addMaterial({{0.35f, 0.25f, 0.16f}, {0, 0, 0}, 0.0f});
    uint16_t leaf =
        scene.addMaterial({{0.22f, 0.5f, 0.18f}, {0, 0, 0}, 0.0f});

    int res = std::max(6, static_cast<int>(16 * s));
    addTerrain(scene, -14, -14, 14, 14, res,
               [](float x, float z) { return hills(x, z, 0.3f, 0.3f); },
               m.ground);

    // Massive trunk + primary branches.
    addCylinder(scene, {0, 0, 0}, 0.8f, 5.0f, 12, bark);
    int branches = std::max(4, static_cast<int>(16 * s));
    for (int i = 0; i < branches; ++i) {
        float a = 2.0f * kPi * i / branches;
        Vec3 base{0, rng.nextRange(3.4f, 4.8f), 0};
        Vec3 tip = base + Vec3{std::cos(a) * rng.nextRange(2.5f, 4.5f),
                               rng.nextRange(1.0f, 2.5f),
                               std::sin(a) * rng.nextRange(2.5f, 4.5f)};
        addRibbon(scene, base, tip, 0.25f, bark);
    }

    // Dense, heavily overlapping foliage shell: thousands of leaf
    // tetrahedra packed into a canopy sphere. The overlap forces many
    // child pushes per node — CHSNT is one of the paper's three
    // long-running "complex" scenes.
    int leaves = static_cast<int>(260000 * s * s);
    Vec3 canopy_c{0, 6.5f, 0};
    for (int i = 0; i < leaves; ++i) {
        // Rejection-sample inside the canopy sphere.
        Vec3 p;
        do {
            p = Vec3{rng.nextRange(-1, 1), rng.nextRange(-1, 1),
                     rng.nextRange(-1, 1)};
        } while (lengthSquared(p) > 1.0f);
        Vec3 c = canopy_c + p * 4.2f;
        Vec3 v0 = c + Vec3{rng.nextRange(-0.3f, 0.3f),
                           rng.nextRange(-0.3f, 0.3f),
                           rng.nextRange(-0.3f, 0.3f)};
        Vec3 v1 = c + Vec3{rng.nextRange(-0.3f, 0.3f),
                           rng.nextRange(-0.3f, 0.3f),
                           rng.nextRange(-0.3f, 0.3f)};
        scene.addTriangle(Triangle(c, v0, v1), leaf);
    }

    scene.camera = {{9, 4.5f, 11}, {0, 5.0f, 0}, {0, 1, 0}, 46.0f};
    defaultLight(scene, {8, 16, 8});
    return scene;
}

Scene
makePark(ScaleProfile profile)
{
    Scene scene;
    scene.name = "PARK";
    float s = profileScale(profile);
    Pcg32 rng(0x5041524b, 15);
    BasicMaterials m = addBasicMaterials(scene);
    uint16_t trunk =
        scene.addMaterial({{0.4f, 0.28f, 0.18f}, {0, 0, 0}, 0.0f});
    uint16_t leaf =
        scene.addMaterial({{0.2f, 0.48f, 0.22f}, {0, 0, 0}, 0.0f});
    uint16_t water =
        scene.addMaterial({{0.15f, 0.3f, 0.45f}, {0, 0, 0}, 0.5f});

    int res = std::max(8, static_cast<int>(56 * s));
    auto ground_h = [](float x, float z) {
        return hills(x, z, 0.9f, 0.13f);
    };
    addTerrain(scene, -28, -28, 28, 28, res, ground_h, m.ground);

    // Pond.
    addQuad(scene, {-6, 0.25f, 4}, {6, 0.25f, 4}, {6, 0.25f, 14},
            {-6, 0.25f, 14}, water);

    // Pavilion.
    for (int i = 0; i < 6; ++i) {
        float a = 2.0f * kPi * i / 6;
        addCylinder(scene, {std::cos(a) * 3.0f + 10, ground_h(10, -8),
                            std::sin(a) * 3.0f - 8},
                    0.2f, 3.0f, 8, m.object);
    }
    addCone(scene, {10, ground_h(10, -8) + 3.0f, -8}, 3.8f, 1.8f, 12,
            m.accent);

    // Trees, denser toward the edges.
    int trees = std::max(6, static_cast<int>(6000 * s * s));
    int detail = profile == ScaleProfile::Tiny ? 4 : 6;
    for (int i = 0; i < trees; ++i) {
        float x = rng.nextRange(-26, 26);
        float z = rng.nextRange(-26, 26);
        if (std::fabs(x) < 7 && z > 2 && z < 15)
            continue; // keep the pond clear
        float h = rng.nextRange(2.5f, 5.0f);
        addTree(scene, {x, ground_h(x, z), z}, h, h * 0.4f, detail, trunk,
                leaf);
    }

    // Benches and litter.
    int props = static_cast<int>(50000 * s * s);
    addClutter(scene, Aabb({-24, 0.1f, -24}, {24, 1.6f, 24}), props, 0.26f,
               rng, m.accent);

    scene.camera = {{0, 4.0f, 26}, {2, 1.5f, 0}, {0, 1, 0}, 50.0f};
    defaultLight(scene, {12, 26, 14});
    return scene;
}

} // namespace generators
} // namespace sms
