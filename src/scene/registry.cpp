/**
 * @file
 * Scene registry implementation: id <-> name mapping, paper Table II
 * data, and the makeScene() dispatcher.
 */

#include "src/scene/registry.hpp"

#include "src/scene/generators.hpp"
#include "src/util/check.hpp"

namespace sms {

namespace {

const std::array<SceneId, kSceneCount> kAllScenes = {
    SceneId::WKND,  SceneId::SPRNG, SceneId::FOX,   SceneId::LANDS,
    SceneId::CRNVL, SceneId::SPNZA, SceneId::BATH,  SceneId::ROBOT,
    SceneId::CAR,   SceneId::PARTY, SceneId::FRST,  SceneId::BUNNY,
    SceneId::SHIP,  SceneId::REF,   SceneId::CHSNT, SceneId::PARK,
};

// Table II of the paper (triangle counts in millions, BVH size in MB).
const PaperSceneInfo kPaperInfo[kSceneCount] = {
    {"WKND", 0.0, 0.2},      {"SPRNG", 1.9, 178.0},
    {"FOX", 1.6, 648.5},     {"LANDS", 3.3, 303.5},
    {"CRNVL", 0.4496, 60.7}, {"SPNZA", 0.2623, 22.8},
    {"BATH", 0.4236, 112.8}, {"ROBOT", 20.6, 1869.0},
    {"CAR", 12.7, 1328.2},   {"PARTY", 1.7, 156.1},
    {"FRST", 4.2, 380.5},    {"BUNNY", 0.1441, 13.2},
    {"SHIP", 0.0063, 0.5},   {"REF", 0.4489, 40.4},
    {"CHSNT", 0.3132, 28.3}, {"PARK", 6.0, 542.5},
};

} // namespace

const std::array<SceneId, kSceneCount> &
allScenes()
{
    return kAllScenes;
}

const char *
sceneName(SceneId id)
{
    return kPaperInfo[static_cast<int>(id)].name;
}

SceneId
sceneFromName(const std::string &name)
{
    for (SceneId id : kAllScenes)
        if (name == sceneName(id))
            return id;
    fatal("unknown scene name '%s'", name.c_str());
}

const PaperSceneInfo &
paperSceneInfo(SceneId id)
{
    return kPaperInfo[static_cast<int>(id)];
}

Scene
makeScene(SceneId id, ScaleProfile profile)
{
    using namespace generators;
    switch (id) {
      case SceneId::WKND:
        return makeWknd(profile);
      case SceneId::SPRNG:
        return makeSprng(profile);
      case SceneId::FOX:
        return makeFox(profile);
      case SceneId::LANDS:
        return makeLands(profile);
      case SceneId::CRNVL:
        return makeCrnvl(profile);
      case SceneId::SPNZA:
        return makeSpnza(profile);
      case SceneId::BATH:
        return makeBath(profile);
      case SceneId::ROBOT:
        return makeRobot(profile);
      case SceneId::CAR:
        return makeCar(profile);
      case SceneId::PARTY:
        return makeParty(profile);
      case SceneId::FRST:
        return makeFrst(profile);
      case SceneId::BUNNY:
        return makeBunny(profile);
      case SceneId::SHIP:
        return makeShip(profile);
      case SceneId::REF:
        return makeRef(profile);
      case SceneId::CHSNT:
        return makeChsnt(profile);
      case SceneId::PARK:
        return makePark(profile);
    }
    panic("unknown scene id %d", static_cast<int>(id));
}

} // namespace sms
