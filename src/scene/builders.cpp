/**
 * @file
 * Mesh-building helper implementations.
 */

#include "src/scene/builders.hpp"

#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include "src/util/check.hpp"

namespace sms {
namespace builders {

namespace {

constexpr float kPi = 3.14159265358979323846f;

/** Icosahedron vertices/faces used as subdivision seed. */
struct IcoMesh
{
    std::vector<Vec3> verts;
    std::vector<std::array<uint32_t, 3>> faces;
};

IcoMesh
makeIcosahedron()
{
    const float t = (1.0f + std::sqrt(5.0f)) / 2.0f;
    IcoMesh m;
    m.verts = {
        {-1, t, 0}, {1, t, 0}, {-1, -t, 0}, {1, -t, 0},
        {0, -1, t}, {0, 1, t}, {0, -1, -t}, {0, 1, -t},
        {t, 0, -1}, {t, 0, 1}, {-t, 0, -1}, {-t, 0, 1},
    };
    for (auto &v : m.verts)
        v = normalize(v);
    m.faces = {
        {0, 11, 5}, {0, 5, 1}, {0, 1, 7}, {0, 7, 10}, {0, 10, 11},
        {1, 5, 9}, {5, 11, 4}, {11, 10, 2}, {10, 7, 6}, {7, 1, 8},
        {3, 9, 4}, {3, 4, 2}, {3, 2, 6}, {3, 6, 8}, {3, 8, 9},
        {4, 9, 5}, {2, 4, 11}, {6, 2, 10}, {8, 6, 7}, {9, 8, 1},
    };
    return m;
}

/** Subdivide each face into four, projecting new vertices to the sphere. */
void
subdivide(IcoMesh &m)
{
    std::map<std::pair<uint32_t, uint32_t>, uint32_t> midpoint;
    auto mid = [&](uint32_t a, uint32_t b) {
        auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
        auto it = midpoint.find(key);
        if (it != midpoint.end())
            return it->second;
        Vec3 p = normalize((m.verts[a] + m.verts[b]) * 0.5f);
        m.verts.push_back(p);
        uint32_t idx = static_cast<uint32_t>(m.verts.size() - 1);
        midpoint.emplace(key, idx);
        return idx;
    };

    std::vector<std::array<uint32_t, 3>> next;
    next.reserve(m.faces.size() * 4);
    for (const auto &f : m.faces) {
        uint32_t ab = mid(f[0], f[1]);
        uint32_t bc = mid(f[1], f[2]);
        uint32_t ca = mid(f[2], f[0]);
        next.push_back({f[0], ab, ca});
        next.push_back({f[1], bc, ab});
        next.push_back({f[2], ca, bc});
        next.push_back({ab, bc, ca});
    }
    m.faces = std::move(next);
}

/** Deterministic smooth-ish value noise on the unit sphere. */
float
sphereNoise(const Vec3 &p, uint64_t seed)
{
    // Three octaves of hashed lattice noise along the unit direction.
    float amp = 1.0f;
    float freq = 2.0f;
    float total = 0.0f;
    for (int octave = 0; octave < 3; ++octave) {
        int ix = static_cast<int>(std::floor((p.x + 2.0f) * freq));
        int iy = static_cast<int>(std::floor((p.y + 2.0f) * freq));
        int iz = static_cast<int>(std::floor((p.z + 2.0f) * freq));
        uint64_t h = splitmix64(seed ^ (uint64_t)(ix * 73856093) ^
                                (uint64_t)(iy * 19349663) ^
                                (uint64_t)(iz * 83492791) ^
                                (uint64_t)octave << 32);
        total += amp * (static_cast<float>(h & 0xffff) / 65535.0f - 0.5f);
        amp *= 0.5f;
        freq *= 2.0f;
    }
    return total;
}

} // namespace

void
addQuad(Scene &scene, const Vec3 &a, const Vec3 &b, const Vec3 &c,
        const Vec3 &d, uint16_t material)
{
    scene.addTriangle(Triangle(a, b, c), material);
    scene.addTriangle(Triangle(a, c, d), material);
}

void
addBox(Scene &scene, const Aabb &box, uint16_t material)
{
    const Vec3 &l = box.lo;
    const Vec3 &h = box.hi;
    Vec3 p000{l.x, l.y, l.z}, p001{l.x, l.y, h.z};
    Vec3 p010{l.x, h.y, l.z}, p011{l.x, h.y, h.z};
    Vec3 p100{h.x, l.y, l.z}, p101{h.x, l.y, h.z};
    Vec3 p110{h.x, h.y, l.z}, p111{h.x, h.y, h.z};
    addQuad(scene, p000, p100, p110, p010, material); // -z
    addQuad(scene, p101, p001, p011, p111, material); // +z
    addQuad(scene, p001, p000, p010, p011, material); // -x
    addQuad(scene, p100, p101, p111, p110, material); // +x
    addQuad(scene, p001, p101, p100, p000, material); // -y
    addQuad(scene, p010, p110, p111, p011, material); // +y
}

void
addTerrain(Scene &scene, float x0, float z0, float x1, float z1, int res,
           const std::function<float(float, float)> &height,
           uint16_t material)
{
    SMS_ASSERT(res >= 1, "terrain resolution must be >= 1");
    auto at = [&](int i, int j) {
        float x = x0 + (x1 - x0) * static_cast<float>(i) / res;
        float z = z0 + (z1 - z0) * static_cast<float>(j) / res;
        return Vec3{x, height(x, z), z};
    };
    for (int i = 0; i < res; ++i) {
        for (int j = 0; j < res; ++j) {
            Vec3 a = at(i, j), b = at(i + 1, j);
            Vec3 c = at(i + 1, j + 1), d = at(i, j + 1);
            // Alternate the diagonal for a more irregular tessellation.
            if ((i + j) & 1) {
                scene.addTriangle(Triangle(a, b, c), material);
                scene.addTriangle(Triangle(a, c, d), material);
            } else {
                scene.addTriangle(Triangle(a, b, d), material);
                scene.addTriangle(Triangle(b, c, d), material);
            }
        }
    }
}

void
addIcosphere(Scene &scene, const Vec3 &center, float radius, int subdiv,
             uint16_t material)
{
    IcoMesh m = makeIcosahedron();
    for (int i = 0; i < subdiv; ++i)
        subdivide(m);
    for (const auto &f : m.faces) {
        scene.addTriangle(Triangle(center + m.verts[f[0]] * radius,
                                   center + m.verts[f[1]] * radius,
                                   center + m.verts[f[2]] * radius),
                          material);
    }
}

void
addBlob(Scene &scene, const Vec3 &center, float radius, int subdiv,
        float noise_amp, uint64_t seed, uint16_t material)
{
    IcoMesh m = makeIcosahedron();
    for (int i = 0; i < subdiv; ++i)
        subdivide(m);
    std::vector<Vec3> displaced(m.verts.size());
    for (size_t i = 0; i < m.verts.size(); ++i) {
        float r = radius * (1.0f + noise_amp * sphereNoise(m.verts[i], seed));
        displaced[i] = center + m.verts[i] * r;
    }
    for (const auto &f : m.faces) {
        scene.addTriangle(
            Triangle(displaced[f[0]], displaced[f[1]], displaced[f[2]]),
            material);
    }
}

void
addCylinder(Scene &scene, const Vec3 &base_center, float radius,
            float height, int sides, uint16_t material)
{
    SMS_ASSERT(sides >= 3, "cylinder needs >= 3 sides");
    Vec3 top_center = base_center + Vec3{0, height, 0};
    for (int i = 0; i < sides; ++i) {
        float a0 = 2.0f * kPi * i / sides;
        float a1 = 2.0f * kPi * (i + 1) / sides;
        Vec3 r0{std::cos(a0) * radius, 0, std::sin(a0) * radius};
        Vec3 r1{std::cos(a1) * radius, 0, std::sin(a1) * radius};
        Vec3 b0 = base_center + r0, b1 = base_center + r1;
        Vec3 t0 = top_center + r0, t1 = top_center + r1;
        addQuad(scene, b0, b1, t1, t0, material);
        scene.addTriangle(Triangle(base_center, b1, b0), material);
        scene.addTriangle(Triangle(top_center, t0, t1), material);
    }
}

void
addCone(Scene &scene, const Vec3 &base_center, float radius, float height,
        int sides, uint16_t material)
{
    SMS_ASSERT(sides >= 3, "cone needs >= 3 sides");
    Vec3 apex = base_center + Vec3{0, height, 0};
    for (int i = 0; i < sides; ++i) {
        float a0 = 2.0f * kPi * i / sides;
        float a1 = 2.0f * kPi * (i + 1) / sides;
        Vec3 b0 = base_center +
                  Vec3{std::cos(a0) * radius, 0, std::sin(a0) * radius};
        Vec3 b1 = base_center +
                  Vec3{std::cos(a1) * radius, 0, std::sin(a1) * radius};
        scene.addTriangle(Triangle(b0, b1, apex), material);
        scene.addTriangle(Triangle(base_center, b1, b0), material);
    }
}

void
addRibbon(Scene &scene, const Vec3 &a, const Vec3 &b, float width,
          uint16_t material)
{
    Vec3 axis = b - a;
    // Pick any direction not parallel to the axis to build the width.
    Vec3 helper = std::fabs(axis.y) < 0.9f * length(axis)
                      ? Vec3{0, 1, 0}
                      : Vec3{1, 0, 0};
    Vec3 side = normalize(cross(axis, helper)) * (width * 0.5f);
    addQuad(scene, a - side, b - side, b + side, a + side, material);
}

void
addTree(Scene &scene, const Vec3 &root, float height, float canopy,
        int detail, uint16_t material_trunk, uint16_t material_leaf)
{
    float trunk_h = height * 0.35f;
    addCylinder(scene, root, canopy * 0.12f, trunk_h, detail,
                material_trunk);
    // Three stacked canopy cones.
    for (int layer = 0; layer < 3; ++layer) {
        float frac = static_cast<float>(layer) / 3.0f;
        Vec3 base = root + Vec3{0, trunk_h + frac * (height - trunk_h), 0};
        float r = canopy * (1.0f - 0.25f * layer);
        float h = (height - trunk_h) * 0.55f;
        addCone(scene, base, r, h, detail + 2, material_leaf);
    }
}

void
addClutter(Scene &scene, const Aabb &region, int count, float size,
           Pcg32 &rng, uint16_t material)
{
    Vec3 ext = region.extent();
    for (int i = 0; i < count; ++i) {
        Vec3 p = region.lo + Vec3{rng.nextFloat() * ext.x,
                                  rng.nextFloat() * ext.y,
                                  rng.nextFloat() * ext.z};
        // Random tetrahedron around p.
        Vec3 v[4];
        for (auto &vv : v) {
            vv = p + Vec3{rng.nextRange(-size, size),
                          rng.nextRange(-size, size),
                          rng.nextRange(-size, size)};
        }
        scene.addTriangle(Triangle(v[0], v[1], v[2]), material);
        scene.addTriangle(Triangle(v[0], v[1], v[3]), material);
        scene.addTriangle(Triangle(v[0], v[2], v[3]), material);
        scene.addTriangle(Triangle(v[1], v[2], v[3]), material);
    }
}

} // namespace builders
} // namespace sms
