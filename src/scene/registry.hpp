/**
 * @file
 * Scene registry: the 16 LumiBench stand-in scenes by id.
 *
 * The paper evaluates the LumiBench suite (Table II). We cannot ship
 * those assets, so each scene here is a deterministic procedural
 * generator matched in *structural character* (see DESIGN.md §2) and
 * scaled down so cycle-level simulation of all 16 scenes completes in
 * seconds rather than days.
 */

#ifndef SMS_SCENE_REGISTRY_HPP
#define SMS_SCENE_REGISTRY_HPP

#include <array>
#include <cstdint>
#include <string>

#include "src/scene/scene.hpp"

namespace sms {

/** LumiBench scene identifiers, in the paper's Table II order. */
enum class SceneId : uint8_t
{
    WKND,   ///< "One Weekend": procedural spheres only (0 triangles)
    SPRNG,  ///< spring meadow: terrain + grass blades
    FOX,    ///< organic scanned-mesh animal + ground
    LANDS,  ///< large open terrain
    CRNVL,  ///< carnival: rides, stalls, clutter
    SPNZA,  ///< sponza-style architectural atrium
    BATH,   ///< small reflective bathroom interior
    ROBOT,  ///< densest mesh in the suite
    CAR,    ///< dense vehicle mesh + ground plane
    PARTY,  ///< interior with heavy small-object clutter
    FRST,   ///< instanced forest over terrain
    BUNNY,  ///< single medium scanned mesh
    SHIP,   ///< few long, thin primitives (leaf-heavy traversal)
    REF,    ///< mirror box with spheres (reflection test)
    CHSNT,  ///< single large chestnut tree, dense foliage
    PARK,   ///< mixed park: terrain + trees + structures
};

/** Number of scenes in the suite. */
constexpr int kSceneCount = 16;

/** All scene ids in Table II order. */
const std::array<SceneId, kSceneCount> &allScenes();

/** Scene name as printed by the paper ("WKND", "PARTY", ...). */
const char *sceneName(SceneId id);

/** Parse a scene name; fatal() on unknown names. */
SceneId sceneFromName(const std::string &name);

/**
 * Geometry scale profile.
 *
 * Tiny is for unit tests (hundreds of primitives), Small is the default
 * evaluation scale (thousands to tens of thousands), Large stresses the
 * builders (use SMS_FULL=1 in the benches).
 */
enum class ScaleProfile : uint8_t { Tiny, Small, Large };

/** Paper-reported statistics for a scene (Table II). */
struct PaperSceneInfo
{
    const char *name;
    double triangles_millions; ///< paper triangle count, in millions
    double bvh_mb;             ///< paper BVH footprint, MB
};

/** Paper Table II row for a scene. */
const PaperSceneInfo &paperSceneInfo(SceneId id);

/** Build a scene deterministically. */
Scene makeScene(SceneId id, ScaleProfile profile = ScaleProfile::Small);

} // namespace sms

#endif // SMS_SCENE_REGISTRY_HPP
