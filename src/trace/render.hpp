/**
 * @file
 * High-level driver: prepare a scene workload once (scene, BVH, warp
 * jobs, reference image), then run it under many GPU configurations —
 * the shape of every experiment in the paper's evaluation.
 */

#ifndef SMS_TRACE_RENDER_HPP
#define SMS_TRACE_RENDER_HPP

#include <memory>
#include <string>

#include "src/bvh/wide_bvh.hpp"
#include "src/scene/registry.hpp"
#include "src/sim/gpu_sim.hpp"
#include "src/trace/path_tracer.hpp"

namespace sms {

/** A fully prepared, configuration-independent workload. */
struct Workload
{
    SceneId id;
    ScaleProfile profile;
    Scene scene;
    WideBvh bvh;
    RenderParams params;
    RenderOutput render;

    Workload(SceneId id_, ScaleProfile profile_, Scene scene_,
             WideBvh bvh_, RenderParams params_, RenderOutput render_)
        : id(id_), profile(profile_), scene(std::move(scene_)),
          bvh(std::move(bvh_)), params(params_),
          render(std::move(render_))
    {}
};

/**
 * Build the scene, its BVH6, and the warp-job stream.
 *
 * @param id      scene to build
 * @param profile geometry scale
 * @param params  render parameters; defaults to RenderParams::forScene
 */
std::shared_ptr<Workload>
prepareWorkload(SceneId id, ScaleProfile profile = ScaleProfile::Small,
                const RenderParams *params = nullptr);

/** GPU config with the given stack setup (Table I otherwise). */
GpuConfig makeGpuConfig(const StackConfig &stack,
                        uint64_t l1_override_bytes = 0);

/**
 * Display name of a configuration: the stack name, plus the traversal
 * variant tag when non-default ("RB_8", "SMS+q8+mort", ...). Default
 * variants reduce to the bare stack name, keeping existing record keys
 * byte-identical.
 */
std::string configDisplayName(const GpuConfig &config);

/** Simulate a prepared workload under one configuration. */
SimResult runWorkload(const Workload &workload, const GpuConfig &config,
                      const SimOptions &options = {});

} // namespace sms

#endif // SMS_TRACE_RENDER_HPP
