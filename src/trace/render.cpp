/**
 * @file
 * High-level render driver implementation.
 */

#include "src/trace/render.hpp"

#include "src/stats/timeline.hpp"
#include "src/trace/workload_cache.hpp"
#include "src/util/check.hpp"

namespace sms {

std::shared_ptr<Workload>
prepareWorkload(SceneId id, ScaleProfile profile,
                const RenderParams *params)
{
    RenderParams rp = params ? *params : RenderParams::forScene(id);

    // Preparation is deterministic and configuration-independent, so a
    // validated snapshot (SMS_WORKLOAD_CACHE) substitutes bit-exactly.
    std::string cache_dir = workloadCacheDir();
    if (!cache_dir.empty()) {
        if (auto cached =
                loadWorkloadSnapshot(cache_dir, id, profile, rp))
            return cached;
    }

    Scene scene = makeScene(id, profile);
    WideBvh bvh = WideBvh::build(scene);
    RenderOutput render = renderAndBuildJobs(scene, bvh, rp);
    auto workload = std::make_shared<Workload>(
        id, profile, std::move(scene), std::move(bvh), rp,
        std::move(render));
    if (!cache_dir.empty())
        saveWorkloadSnapshot(cache_dir, *workload, profile, rp);
    return workload;
}

GpuConfig
makeGpuConfig(const StackConfig &stack, uint64_t l1_override_bytes)
{
    GpuConfig config = GpuConfig::tableI();
    config.stack = stack;
    config.l1_override_bytes = l1_override_bytes;
    return config;
}

SimResult
runWorkload(const Workload &workload, const GpuConfig &config,
            const SimOptions &options)
{
    SimResult result;
    if (timelineAnyOn() && options.timeline_label.empty()) {
        // Default trace-process label: "scene config (cycles)".
        SimOptions labeled = options;
        labeled.timeline_label = std::string(sceneName(workload.id)) +
                                 " " + config.stack.name() + " (cycles)";
        result = simulateJobs(workload.scene, workload.bvh,
                              workload.render.jobs, config, labeled);
    } else {
        result = simulateJobs(workload.scene, workload.bvh,
                              workload.render.jobs, config, options);
    }
    SMS_ASSERT(result.mismatches == 0,
               "timing simulation diverged from the functional oracle "
               "(%u lanes) on scene %s under %s",
               result.mismatches, sceneName(workload.id),
               config.stack.name().c_str());
    return result;
}

} // namespace sms
