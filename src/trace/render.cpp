/**
 * @file
 * High-level render driver implementation.
 */

#include "src/trace/render.hpp"

#include "src/bvh/node_layout.hpp"
#include "src/sim/ray_reorder.hpp"
#include "src/stats/timeline.hpp"
#include "src/trace/workload_cache.hpp"
#include "src/util/check.hpp"

namespace sms {

std::shared_ptr<Workload>
prepareWorkload(SceneId id, ScaleProfile profile,
                const RenderParams *params)
{
    RenderParams rp = params ? *params : RenderParams::forScene(id);

    // Preparation is deterministic and configuration-independent, so a
    // validated snapshot (SMS_WORKLOAD_CACHE) substitutes bit-exactly.
    std::string cache_dir = workloadCacheDir();
    if (!cache_dir.empty()) {
        if (auto cached =
                loadWorkloadSnapshot(cache_dir, id, profile, rp))
            return cached;
    }

    Scene scene = makeScene(id, profile);
    WideBvh bvh = WideBvh::build(scene);
    RenderOutput render = renderAndBuildJobs(scene, bvh, rp);
    auto workload = std::make_shared<Workload>(
        id, profile, std::move(scene), std::move(bvh), rp,
        std::move(render));
    if (!cache_dir.empty())
        saveWorkloadSnapshot(cache_dir, *workload, profile, rp);
    return workload;
}

GpuConfig
makeGpuConfig(const StackConfig &stack, uint64_t l1_override_bytes)
{
    GpuConfig config = GpuConfig::tableI();
    config.stack = stack;
    config.l1_override_bytes = l1_override_bytes;
    return config;
}

std::string
configDisplayName(const GpuConfig &config)
{
    std::string name = config.stack.name();
    std::string tag = config.variant().tag();
    if (!tag.empty())
        name += "+" + tag;
    return name;
}

SimResult
runWorkload(const Workload &workload, const GpuConfig &config,
            const SimOptions &options)
{
    // The traversal variant reshapes the simulator inputs: reordering
    // repacks the job stream, quantization swaps the intersected boxes.
    // Both are deterministic pure functions of the prepared workload,
    // so tapes and cached results key on them via the variant digest.
    const WarpJobList *jobs = &workload.render.jobs;
    WarpJobList reordered;
    if (config.ray_order.active()) {
        reordered =
            reorderJobs(workload.render.jobs, workload.bvh,
                        config.ray_order);
        jobs = &reordered;
    }
    SimOptions opts = options;
    QuantizedBvh qbvh;
    if (config.node_layout.isQuantized() && !options.replay_tape) {
        // Replay never touches geometry, so the decode pass is skipped
        // there; record/execute cells intersect the decoded boxes.
        qbvh.build(workload.bvh, config.node_layout);
        opts.quantized_bvh = &qbvh;
    }
    if (timelineAnyOn() && opts.timeline_label.empty()) {
        // Default trace-process label: "scene config (cycles)".
        opts.timeline_label = std::string(sceneName(workload.id)) + " " +
                              configDisplayName(config) + " (cycles)";
    }
    SimResult result =
        simulateJobs(workload.scene, workload.bvh, *jobs, config, opts);
    SMS_ASSERT(result.mismatches == 0,
               "timing simulation diverged from the functional oracle "
               "(%u lanes) on scene %s under %s",
               result.mismatches, sceneName(workload.id),
               configDisplayName(config).c_str());
    return result;
}

} // namespace sms
