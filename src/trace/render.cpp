/**
 * @file
 * High-level render driver implementation.
 */

#include "src/trace/render.hpp"

#include "src/util/check.hpp"

namespace sms {

std::shared_ptr<Workload>
prepareWorkload(SceneId id, ScaleProfile profile,
                const RenderParams *params)
{
    Scene scene = makeScene(id, profile);
    WideBvh bvh = WideBvh::build(scene);
    RenderParams rp = params ? *params : RenderParams::forScene(id);
    RenderOutput render = renderAndBuildJobs(scene, bvh, rp);
    return std::make_shared<Workload>(id, std::move(scene), std::move(bvh),
                                      rp, std::move(render));
}

GpuConfig
makeGpuConfig(const StackConfig &stack, uint64_t l1_override_bytes)
{
    GpuConfig config = GpuConfig::tableI();
    config.stack = stack;
    config.l1_override_bytes = l1_override_bytes;
    return config;
}

SimResult
runWorkload(const Workload &workload, const GpuConfig &config,
            const SimOptions &options)
{
    SimResult result = simulateJobs(workload.scene, workload.bvh,
                                    workload.render.jobs, config, options);
    SMS_ASSERT(result.mismatches == 0,
               "timing simulation diverged from the functional oracle "
               "(%u lanes) on scene %s under %s",
               result.mismatches, sceneName(workload.id),
               config.stack.name().c_str());
    return result;
}

} // namespace sms
