/**
 * @file
 * Accumulation film and PPM output.
 */

#ifndef SMS_TRACE_FILM_HPP
#define SMS_TRACE_FILM_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "src/geometry/vec3.hpp"

namespace sms {

/** Linear-RGB accumulation buffer. */
class Film
{
  public:
    Film(uint32_t width, uint32_t height)
        : width_(width), height_(height),
          pixels_(static_cast<size_t>(width) * height)
    {}

    uint32_t width() const { return width_; }
    uint32_t height() const { return height_; }

    /** Accumulate radiance into a pixel (call once per sample). */
    void
    add(uint32_t x, uint32_t y, const Vec3 &radiance)
    {
        pixels_[static_cast<size_t>(y) * width_ + x] += radiance;
    }

    const Vec3 &
    at(uint32_t x, uint32_t y) const
    {
        return pixels_[static_cast<size_t>(y) * width_ + x];
    }

    /** Divide every pixel by the sample count. */
    void normalize(uint32_t samples);

    /**
     * Deterministic content hash (FNV over the float bit patterns);
     * used by the image-invariance tests.
     */
    uint64_t contentHash() const;

    /** Write a gamma-2 8-bit PPM. @return false on I/O failure. */
    bool writePpm(const std::string &path) const;

  private:
    uint32_t width_;
    uint32_t height_;
    std::vector<Vec3> pixels_;
};

} // namespace sms

#endif // SMS_TRACE_FILM_HPP
