/**
 * @file
 * Shared cache-file plumbing (see cache_io.hpp for the envelope and
 * atomicity contract).
 */

#include "src/trace/cache_io.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <sys/stat.h>
#include <unistd.h>

namespace sms {

uint64_t
fnv1a(const void *data, size_t n, uint64_t h)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
sealCacheEnvelope(const char magic[8], const std::string &body)
{
    std::string data(magic, 8);
    data += body;
    uint64_t sum = fnv1a(data.data(), data.size());
    data.append(reinterpret_cast<const char *>(&sum), 8);
    return data;
}

bool
openCacheEnvelope(const char magic[8], const std::string &data,
                  std::string &body)
{
    if (data.size() < 16 || std::memcmp(data.data(), magic, 8) != 0)
        return false;
    uint64_t stored_sum;
    std::memcpy(&stored_sum, data.data() + data.size() - 8, 8);
    if (fnv1a(data.data(), data.size() - 8) != stored_sum)
        return false;
    body = data.substr(8, data.size() - 16);
    return true;
}

bool
writeFileAtomic(const std::string &path, const std::string &data)
{
    // The pid alone is not unique enough: two threads of one process
    // saving the same cache path would share a temp file and interleave
    // their writes. A process-wide counter disambiguates threads; the
    // pid disambiguates processes.
    static std::atomic<uint64_t> g_tmp_serial{0};
    uint64_t serial = g_tmp_serial.fetch_add(1, std::memory_order_relaxed);
    std::string tmp = path + ".tmp." +
                      std::to_string(static_cast<long>(::getpid())) + "." +
                      std::to_string(serial);
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return false;
    bool ok = data.empty() ||
              std::fwrite(data.data(), 1, data.size(), f) == data.size();
    ok = std::fclose(f) == 0 && ok;
    if (ok)
        ok = std::rename(tmp.c_str(), path.c_str()) == 0;
    if (!ok)
        std::remove(tmp.c_str());
    return ok;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    if (size < 0) {
        std::fclose(f);
        return false;
    }
    std::fseek(f, 0, SEEK_SET);
    out.resize(static_cast<size_t>(size));
    bool ok = size == 0 || std::fread(out.data(), 1, out.size(), f) ==
                               out.size();
    std::fclose(f);
    return ok;
}

bool
ensureDir(const std::string &dir)
{
    struct stat st{};
    if (::stat(dir.c_str(), &st) == 0)
        return S_ISDIR(st.st_mode);
    // Create parents one component at a time (mkdir -p).
    for (size_t pos = 1; pos <= dir.size(); ++pos) {
        if (pos != dir.size() && dir[pos] != '/')
            continue;
        std::string prefix = dir.substr(0, pos);
        if (::mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST)
            return false;
    }
    return true;
}

const char *
profileTag(ScaleProfile profile)
{
    switch (profile) {
    case ScaleProfile::Tiny: return "tiny";
    case ScaleProfile::Small: return "small";
    case ScaleProfile::Large: return "large";
    }
    return "unknown";
}

} // namespace sms
