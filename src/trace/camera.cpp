/**
 * @file
 * Pinhole camera implementation.
 */

#include "src/trace/camera.hpp"

#include <cmath>

namespace sms {

Camera::Camera(const CameraDesc &desc, uint32_t width, uint32_t height)
    : width_(width), height_(height)
{
    constexpr float kPi = 3.14159265358979323846f;
    float aspect = static_cast<float>(width) / static_cast<float>(height);
    float theta = desc.verticalFovDeg * kPi / 180.0f;
    float half_h = std::tan(theta / 2.0f);
    float half_w = aspect * half_h;

    origin_ = desc.position;
    Vec3 w = normalize(desc.position - desc.lookAt);
    Vec3 u = normalize(cross(desc.up, w));
    Vec3 v = cross(w, u);

    lower_left_ = origin_ - u * half_w - v * half_h - w;
    horizontal_ = u * (2.0f * half_w);
    vertical_ = v * (2.0f * half_h);
}

Ray
Camera::generateRay(uint32_t px, uint32_t py, float jx, float jy) const
{
    float s = (static_cast<float>(px) + jx) / static_cast<float>(width_);
    float t = (static_cast<float>(py) + jy) / static_cast<float>(height_);
    Vec3 target = lower_left_ + horizontal_ * s + vertical_ * t;
    return Ray(origin_, normalize(target - origin_), 1.0e-3f);
}

} // namespace sms
