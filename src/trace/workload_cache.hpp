/**
 * @file
 * On-disk snapshot cache for prepared workloads.
 *
 * Preparing a Workload — procedural scene generation, BVH6 build, and
 * the functional oracle render that emits the warp-job stream — is
 * configuration-independent and fully deterministic, yet every one of
 * the 11 bench binaries redoes it from scratch for every scene. The
 * snapshot cache serializes the finished Workload to a versioned binary
 * file keyed by (scene, geometry profile, render params, build schema)
 * so subsequent runs — in the same binary or any other — deserialize in
 * milliseconds instead of re-tracing.
 *
 * Enabled by pointing SMS_WORKLOAD_CACHE at a directory (created on
 * first store). Any validation failure — wrong magic, version, schema
 * hash, params, truncation, checksum — is a silent miss: the workload
 * is rebuilt and the snapshot rewritten. Files are written to a
 * temporary name and rename()d into place so concurrent processes never
 * observe a partial snapshot.
 *
 * The schema hash covers the serialization format plus the structural
 * constants baked into job generation; bump kWorkloadSnapshotVersion
 * whenever the Workload contents or the generators change meaning
 * without changing shape.
 */

#ifndef SMS_TRACE_WORKLOAD_CACHE_HPP
#define SMS_TRACE_WORKLOAD_CACHE_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "src/sim/traversal_tape.hpp"
#include "src/trace/render.hpp"

namespace sms {

/**
 * Serialization format version. Bump on ANY change to the snapshot
 * layout or to the deterministic content of prepared workloads (scene
 * generators, BVH builder, path tracer, warp-job emission).
 */
constexpr uint32_t kWorkloadSnapshotVersion = 1;

/** Counters over all snapshot-cache activity of this process. */
struct WorkloadCacheStats
{
    uint64_t hits = 0;     ///< workloads served from a snapshot
    uint64_t misses = 0;   ///< lookups that had to rebuild
    uint64_t stores = 0;   ///< snapshots written
    uint64_t failures = 0; ///< invalid/unreadable snapshots discarded
};

/** Snapshot of this process's cache counters (thread-safe). */
WorkloadCacheStats workloadCacheStats();

/** Reset the cache counters (tests). */
void resetWorkloadCacheStats();

/**
 * Snapshot-cache directory from SMS_WORKLOAD_CACHE, or "" when the
 * cache is disabled.
 */
std::string workloadCacheDir();

/** Snapshot file path for a cache key (diagnostics/tests). */
std::string workloadSnapshotPath(const std::string &dir, SceneId id,
                                 ScaleProfile profile,
                                 const RenderParams &params);

/**
 * Load a snapshot for the key, or nullptr on miss. Records a hit or a
 * miss (plus a failure when a snapshot existed but did not validate).
 */
std::shared_ptr<Workload> loadWorkloadSnapshot(const std::string &dir,
                                               SceneId id,
                                               ScaleProfile profile,
                                               const RenderParams &params);

/**
 * Serialize @p workload under the key. @return false (with a warning)
 * on I/O failure — the run proceeds uncached.
 */
bool saveWorkloadSnapshot(const std::string &dir,
                          const Workload &workload, ScaleProfile profile,
                          const RenderParams &params);

/**
 * Traversal-tape file path for a cache key (diagnostics/tests). Tapes
 * live alongside the .wkld snapshots under the same key because the
 * tape is a pure function of the prepared workload. The default
 * (exact-layout, unordered) traversal variant keeps the historical
 * `<key>.tape` name; non-default variants append `-v<digest16>` since
 * their tapes record a different functional traversal.
 */
std::string traversalTapePath(const std::string &dir, SceneId id,
                              ScaleProfile profile,
                              const RenderParams &params);
std::string traversalTapePath(const std::string &dir, SceneId id,
                              ScaleProfile profile,
                              const RenderParams &params,
                              const TraversalVariant &variant);

/**
 * Load a persisted traversal tape for @p workload into @p out.
 *
 * A missing file is a quiet miss; an invalid file (bad magic, version,
 * checksum, truncation) or one whose fingerprint does not match the
 * workload's job stream counts a tape failure and is treated as a miss
 * so the caller re-records (and rewrites) the tape. The variant-aware
 * overload validates against the variant's job stream (reordered when
 * it reorders) xor the variant digest; the plain overload assumes the
 * default variant.
 */
bool loadTraversalTape(const std::string &dir, const Workload &workload,
                       TraversalTape &out);
bool loadTraversalTape(const std::string &dir, const Workload &workload,
                       const TraversalVariant &variant,
                       TraversalTape &out);

/**
 * Persist @p tape for @p workload alongside its .wkld snapshot.
 * @return false (with a warning) on I/O failure.
 */
bool saveTraversalTape(const std::string &dir, const Workload &workload,
                       const TraversalTape &tape);
bool saveTraversalTape(const std::string &dir, const Workload &workload,
                       const TraversalVariant &variant,
                       const TraversalTape &tape);

} // namespace sms

#endif // SMS_TRACE_WORKLOAD_CACHE_HPP
