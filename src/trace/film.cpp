/**
 * @file
 * Film implementation.
 */

#include "src/trace/film.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace sms {

void
Film::normalize(uint32_t samples)
{
    if (samples == 0)
        return;
    float inv = 1.0f / static_cast<float>(samples);
    for (Vec3 &p : pixels_)
        p *= inv;
}

uint64_t
Film::contentHash() const
{
    uint64_t h = 1469598103934665603ull; // FNV-1a offset basis
    auto mix = [&h](float f) {
        uint32_t bits;
        std::memcpy(&bits, &f, sizeof(bits));
        for (int i = 0; i < 4; ++i) {
            h ^= (bits >> (8 * i)) & 0xffu;
            h *= 1099511628211ull;
        }
    };
    for (const Vec3 &p : pixels_) {
        mix(p.x);
        mix(p.y);
        mix(p.z);
    }
    return h;
}

bool
Film::writePpm(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    std::fprintf(f, "P6\n%u %u\n255\n", width_, height_);
    auto to_byte = [](float v) {
        float g = std::sqrt(std::clamp(v, 0.0f, 1.0f)); // gamma 2
        return static_cast<unsigned char>(g * 255.0f + 0.5f);
    };
    // PPM rows run top to bottom; the film's y axis points up.
    for (uint32_t y = height_; y-- > 0;) {
        for (uint32_t x = 0; x < width_; ++x) {
            const Vec3 &p = at(x, y);
            unsigned char rgb[3] = {to_byte(p.x), to_byte(p.y),
                                    to_byte(p.z)};
            std::fwrite(rgb, 1, 3, f);
        }
    }
    std::fclose(f);
    return true;
}

} // namespace sms
