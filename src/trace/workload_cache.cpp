/**
 * @file
 * Workload snapshot cache implementation.
 *
 * Format: "SMSWKLD1" magic, little-endian fixed-width fields appended
 * by the Writer below, then an FNV-1a checksum of everything before it.
 * Floats are serialized as their IEEE-754 bit patterns, so a reload is
 * bit-exact — the timing simulation over a snapshot is
 * counter-identical to one over a freshly prepared workload.
 */

#include "src/trace/workload_cache.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

#include "src/util/check.hpp"

namespace sms {

namespace {

constexpr char kMagic[8] = {'S', 'M', 'S', 'W', 'K', 'L', 'D', '1'};
constexpr char kTapeMagic[8] = {'S', 'M', 'S', 'T', 'A', 'P', 'E', '1'};

std::atomic<uint64_t> g_hits{0};
std::atomic<uint64_t> g_misses{0};
std::atomic<uint64_t> g_stores{0};
std::atomic<uint64_t> g_failures{0};

uint64_t
fnv1a(const void *data, size_t n, uint64_t h = 0xcbf29ce484222325ull)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Append-only little-endian serializer. */
class Writer
{
  public:
    void
    u8(uint8_t v)
    {
        out_.push_back(static_cast<char>(v));
    }

    void
    u16(uint16_t v)
    {
        raw(&v, sizeof v);
    }

    void
    u32(uint32_t v)
    {
        raw(&v, sizeof v);
    }

    void
    u64(uint64_t v)
    {
        raw(&v, sizeof v);
    }

    void
    i32(int32_t v)
    {
        raw(&v, sizeof v);
    }

    void
    f32(float v)
    {
        uint32_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u32(bits);
    }

    void
    vec3(const Vec3 &v)
    {
        f32(v.x);
        f32(v.y);
        f32(v.z);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        out_.append(s);
    }

    const std::string &buffer() const { return out_; }

  private:
    void
    raw(const void *p, size_t n)
    {
        out_.append(static_cast<const char *>(p), n);
    }

    std::string out_;
};

/** Bounds-checked reader; any overrun flags failure and returns zeros. */
class Reader
{
  public:
    explicit Reader(const std::string &data) : data_(data) {}

    bool ok() const { return ok_; }
    size_t offset() const { return off_; }

    uint8_t
    u8()
    {
        uint8_t v = 0;
        raw(&v, sizeof v);
        return v;
    }

    uint16_t
    u16()
    {
        uint16_t v = 0;
        raw(&v, sizeof v);
        return v;
    }

    uint32_t
    u32()
    {
        uint32_t v = 0;
        raw(&v, sizeof v);
        return v;
    }

    uint64_t
    u64()
    {
        uint64_t v = 0;
        raw(&v, sizeof v);
        return v;
    }

    int32_t
    i32()
    {
        int32_t v = 0;
        raw(&v, sizeof v);
        return v;
    }

    float
    f32()
    {
        uint32_t bits = u32();
        float v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    Vec3
    vec3()
    {
        Vec3 v;
        v.x = f32();
        v.y = f32();
        v.z = f32();
        return v;
    }

    std::string
    str()
    {
        uint64_t n = u64();
        if (!ok_ || n > data_.size() - off_) {
            ok_ = false;
            return {};
        }
        std::string s = data_.substr(off_, n);
        off_ += n;
        return s;
    }

  private:
    void
    raw(void *p, size_t n)
    {
        if (!ok_ || n > data_.size() - off_) {
            ok_ = false;
            return;
        }
        std::memcpy(p, data_.data() + off_, n);
        off_ += n;
    }

    const std::string &data_;
    size_t off_ = 0;
    bool ok_ = true;
};

/**
 * Hash of everything that determines snapshot content besides the key:
 * format version and the structural constants baked into generation.
 */
uint64_t
buildSchemaHash()
{
    uint32_t words[] = {
        kWorkloadSnapshotVersion,
        kWarpSize,
        static_cast<uint32_t>(kWideBvhWidth),
        static_cast<uint32_t>(WideBvh::kNodeBytes),
        static_cast<uint32_t>(WideBvh::kTriBytes),
        static_cast<uint32_t>(WideBvh::kSphereBytes),
    };
    return fnv1a(words, sizeof words);
}

void
writeParams(Writer &w, const RenderParams &p)
{
    w.u32(p.width);
    w.u32(p.height);
    w.u32(p.spp);
    w.u32(p.max_bounces);
    w.u8(p.shadow_rays ? 1 : 0);
    w.u64(p.seed);
}

bool
readAndCheckParams(Reader &r, const RenderParams &expect)
{
    RenderParams p;
    p.width = r.u32();
    p.height = r.u32();
    p.spp = r.u32();
    p.max_bounces = r.u32();
    p.shadow_rays = r.u8() != 0;
    p.seed = r.u64();
    return r.ok() && p.width == expect.width &&
           p.height == expect.height && p.spp == expect.spp &&
           p.max_bounces == expect.max_bounces &&
           p.shadow_rays == expect.shadow_rays && p.seed == expect.seed;
}

void
writeRay(Writer &w, const Ray &ray)
{
    w.vec3(ray.origin);
    w.vec3(ray.dir);
    w.vec3(ray.invDir);
    w.f32(ray.tMin);
    w.f32(ray.tMax);
}

Ray
readRay(Reader &r)
{
    // Bypass the caching constructor: invDir is restored bit-exactly
    // rather than recomputed.
    Ray ray;
    ray.origin = r.vec3();
    ray.dir = r.vec3();
    ray.invDir = r.vec3();
    ray.tMin = r.f32();
    ray.tMax = r.f32();
    return ray;
}

void
writeScene(Writer &w, const Scene &scene)
{
    w.str(scene.name);
    w.vec3(scene.camera.position);
    w.vec3(scene.camera.lookAt);
    w.vec3(scene.camera.up);
    w.f32(scene.camera.verticalFovDeg);
    w.vec3(scene.light.position);
    w.vec3(scene.light.intensity);

    w.u64(scene.materials().size());
    for (const Material &m : scene.materials()) {
        w.vec3(m.albedo);
        w.vec3(m.emission);
        w.f32(m.reflectivity);
    }
    w.u64(scene.triangleCount());
    for (uint32_t t = 0; t < scene.triangleCount(); ++t) {
        const Triangle &tri = scene.triangles()[t];
        w.vec3(tri.v0);
        w.vec3(tri.v1);
        w.vec3(tri.v2);
        w.u16(scene.primitiveMaterialId(t));
    }
    w.u64(scene.sphereCount());
    for (uint32_t s = 0; s < scene.sphereCount(); ++s) {
        const Sphere &sph = scene.spheres()[s];
        w.vec3(sph.center);
        w.f32(sph.radius);
        w.u16(scene.primitiveMaterialId(scene.triangleCount() + s));
    }
}

bool
readScene(Reader &r, Scene &scene)
{
    scene.name = r.str();
    scene.camera.position = r.vec3();
    scene.camera.lookAt = r.vec3();
    scene.camera.up = r.vec3();
    scene.camera.verticalFovDeg = r.f32();
    scene.light.position = r.vec3();
    scene.light.intensity = r.vec3();

    uint64_t materials = r.u64();
    if (!r.ok() || materials > 0xffff)
        return false;
    for (uint64_t i = 0; i < materials; ++i) {
        Material m;
        m.albedo = r.vec3();
        m.emission = r.vec3();
        m.reflectivity = r.f32();
        scene.addMaterial(m);
    }
    uint64_t triangles = r.u64();
    for (uint64_t i = 0; r.ok() && i < triangles; ++i) {
        Triangle tri;
        tri.v0 = r.vec3();
        tri.v1 = r.vec3();
        tri.v2 = r.vec3();
        uint16_t mat = r.u16();
        if (!r.ok() || mat >= materials)
            return false;
        scene.addTriangle(tri, mat);
    }
    uint64_t spheres = r.u64();
    for (uint64_t i = 0; r.ok() && i < spheres; ++i) {
        Sphere sph;
        sph.center = r.vec3();
        sph.radius = r.f32();
        uint16_t mat = r.u16();
        if (!r.ok() || mat >= materials)
            return false;
        scene.addSphere(sph, mat);
    }
    return r.ok();
}

void
writeBvh(Writer &w, const WideBvh &bvh)
{
    w.u32(bvh.rootRef().bits());
    w.u64(bvh.nodes().size());
    for (const WideNode &node : bvh.nodes()) {
        for (int c = 0; c < kWideBvhWidth; ++c) {
            w.vec3(node.child_bounds[c].lo);
            w.vec3(node.child_bounds[c].hi);
            w.u32(node.children[c].bits());
        }
        w.u8(node.child_count);
    }
    w.u64(bvh.primIndices().size());
    for (uint32_t idx : bvh.primIndices())
        w.u32(idx);
}

bool
readBvh(Reader &r, WideBvh &bvh)
{
    ChildRef root = ChildRef::fromBits(r.u32());
    uint64_t node_count = r.u64();
    if (!r.ok())
        return false;
    std::vector<WideNode> nodes;
    nodes.reserve(node_count);
    for (uint64_t i = 0; r.ok() && i < node_count; ++i) {
        WideNode node;
        for (int c = 0; c < kWideBvhWidth; ++c) {
            node.child_bounds[c].lo = r.vec3();
            node.child_bounds[c].hi = r.vec3();
            node.children[c] = ChildRef::fromBits(r.u32());
        }
        node.child_count = r.u8();
        nodes.push_back(node);
    }
    uint64_t index_count = r.u64();
    if (!r.ok())
        return false;
    std::vector<uint32_t> indices;
    indices.reserve(index_count);
    for (uint64_t i = 0; r.ok() && i < index_count; ++i)
        indices.push_back(r.u32());
    if (!r.ok())
        return false;
    bvh = WideBvh::fromParts(kWideBvhWidth, std::move(nodes),
                             std::move(indices), root);
    return true;
}

void
writeJobs(Writer &w, const WarpJobList &jobs)
{
    w.u64(jobs.size());
    for (const WarpJob &job : jobs) {
        w.u32(job.job_id);
        w.u32(job.warp_id);
        w.u32(job.segment);
        w.i32(job.parent);
        w.u8(job.any_hit ? 1 : 0);
        for (uint32_t i = 0; i < kWarpSize; ++i) {
            w.u8(job.active[i] ? 1 : 0);
            if (!job.active[i])
                continue;
            writeRay(w, job.rays[i]);
            w.f32(job.expected_t[i]);
            w.u32(job.expected_prim[i]);
            w.u8(job.expected_hit[i] ? 1 : 0);
        }
    }
}

bool
readJobs(Reader &r, WarpJobList &jobs)
{
    uint64_t count = r.u64();
    if (!r.ok())
        return false;
    jobs.reserve(count);
    for (uint64_t j = 0; r.ok() && j < count; ++j) {
        WarpJob job;
        job.job_id = r.u32();
        job.warp_id = r.u32();
        job.segment = r.u32();
        job.parent = r.i32();
        job.any_hit = r.u8() != 0;
        for (uint32_t i = 0; i < kWarpSize; ++i) {
            job.active[i] = r.u8() != 0;
            if (!job.active[i])
                continue;
            job.rays[i] = readRay(r);
            job.expected_t[i] = r.f32();
            job.expected_prim[i] = r.u32();
            job.expected_hit[i] = r.u8() != 0;
        }
        jobs.push_back(std::move(job));
    }
    return r.ok();
}

void
writeRender(Writer &w, const RenderOutput &render)
{
    w.u32(render.film.width());
    w.u32(render.film.height());
    for (uint32_t y = 0; y < render.film.height(); ++y)
        for (uint32_t x = 0; x < render.film.width(); ++x)
            w.vec3(render.film.at(x, y));
    w.u64(render.rays);
    writeJobs(w, render.jobs);
}

bool
readRender(Reader &r, std::unique_ptr<RenderOutput> &out)
{
    uint32_t width = r.u32();
    uint32_t height = r.u32();
    if (!r.ok() || width == 0 || height == 0 ||
        static_cast<uint64_t>(width) * height > (1u << 26))
        return false;
    out = std::make_unique<RenderOutput>(width, height);
    for (uint32_t y = 0; y < height; ++y)
        for (uint32_t x = 0; x < width; ++x)
            out->film.add(x, y, r.vec3()); // fresh film: add == assign
    out->rays = r.u64();
    return readJobs(r, out->jobs) && r.ok();
}

const char *
profileTag(ScaleProfile profile)
{
    switch (profile) {
    case ScaleProfile::Tiny: return "tiny";
    case ScaleProfile::Small: return "small";
    case ScaleProfile::Large: return "large";
    }
    return "unknown";
}

/** Hash identifying the render params + build schema in the filename. */
uint64_t
keyHash(const RenderParams &params)
{
    Writer w;
    writeParams(w, params);
    return fnv1a(w.buffer().data(), w.buffer().size(),
                 buildSchemaHash());
}

bool
writeFileAtomic(const std::string &path, const std::string &data)
{
    std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return false;
    bool ok = data.empty() ||
              std::fwrite(data.data(), 1, data.size(), f) == data.size();
    ok = std::fclose(f) == 0 && ok;
    if (ok)
        ok = std::rename(tmp.c_str(), path.c_str()) == 0;
    if (!ok)
        std::remove(tmp.c_str());
    return ok;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    if (size < 0) {
        std::fclose(f);
        return false;
    }
    std::fseek(f, 0, SEEK_SET);
    out.resize(static_cast<size_t>(size));
    bool ok = size == 0 || std::fread(out.data(), 1, out.size(), f) ==
                               out.size();
    std::fclose(f);
    return ok;
}

bool
ensureDir(const std::string &dir)
{
    struct stat st{};
    if (::stat(dir.c_str(), &st) == 0)
        return S_ISDIR(st.st_mode);
    // Create parents one component at a time (mkdir -p).
    for (size_t pos = 1; pos <= dir.size(); ++pos) {
        if (pos != dir.size() && dir[pos] != '/')
            continue;
        std::string prefix = dir.substr(0, pos);
        if (::mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST)
            return false;
    }
    return true;
}

} // namespace

WorkloadCacheStats
workloadCacheStats()
{
    WorkloadCacheStats s;
    s.hits = g_hits.load();
    s.misses = g_misses.load();
    s.stores = g_stores.load();
    s.failures = g_failures.load();
    return s;
}

void
resetWorkloadCacheStats()
{
    g_hits = 0;
    g_misses = 0;
    g_stores = 0;
    g_failures = 0;
}

std::string
workloadCacheDir()
{
    const char *dir = std::getenv("SMS_WORKLOAD_CACHE");
    return dir && *dir ? dir : "";
}

std::string
workloadSnapshotPath(const std::string &dir, SceneId id,
                     ScaleProfile profile, const RenderParams &params)
{
    char hash[17];
    std::snprintf(hash, sizeof hash, "%016llx",
                  static_cast<unsigned long long>(keyHash(params)));
    std::string path = dir;
    if (!path.empty() && path.back() != '/')
        path += '/';
    path += std::string(sceneName(id)) + "-" + profileTag(profile) + "-" +
            hash + ".wkld";
    return path;
}

std::shared_ptr<Workload>
loadWorkloadSnapshot(const std::string &dir, SceneId id,
                     ScaleProfile profile, const RenderParams &params)
{
    std::string path = workloadSnapshotPath(dir, id, profile, params);
    std::string data;
    if (!readFile(path, data)) {
        ++g_misses;
        return nullptr;
    }
    auto invalid = [&](const char *why) -> std::shared_ptr<Workload> {
        warn("workload snapshot %s: %s; rebuilding", path.c_str(), why);
        ++g_failures;
        ++g_misses;
        return nullptr;
    };

    if (data.size() < sizeof kMagic + 8 ||
        std::memcmp(data.data(), kMagic, sizeof kMagic) != 0)
        return invalid("bad magic");
    uint64_t stored_sum;
    std::memcpy(&stored_sum, data.data() + data.size() - 8, 8);
    if (fnv1a(data.data(), data.size() - 8) != stored_sum)
        return invalid("checksum mismatch");

    std::string body = data.substr(sizeof kMagic,
                                   data.size() - sizeof kMagic - 8);
    Reader r(body);
    if (r.u32() != kWorkloadSnapshotVersion)
        return invalid("version mismatch");
    if (r.u64() != buildSchemaHash())
        return invalid("build schema mismatch");
    if (r.u8() != static_cast<uint8_t>(id) ||
        r.u8() != static_cast<uint8_t>(profile))
        return invalid("key mismatch");
    if (!readAndCheckParams(r, params))
        return invalid("render params mismatch");

    Scene scene;
    if (!readScene(r, scene))
        return invalid("corrupt scene section");
    WideBvh bvh;
    if (!readBvh(r, bvh))
        return invalid("corrupt bvh section");
    std::unique_ptr<RenderOutput> render;
    if (!readRender(r, render))
        return invalid("corrupt render section");
    if (r.offset() != body.size())
        return invalid("trailing bytes");

    ++g_hits;
    return std::make_shared<Workload>(id, profile, std::move(scene),
                                      std::move(bvh), params,
                                      std::move(*render));
}

bool
saveWorkloadSnapshot(const std::string &dir, const Workload &workload,
                     ScaleProfile profile, const RenderParams &params)
{
    if (!ensureDir(dir)) {
        warn("SMS_WORKLOAD_CACHE=%s is not a creatable directory; "
             "snapshot not written",
             dir.c_str());
        return false;
    }
    Writer w;
    w.u32(kWorkloadSnapshotVersion);
    w.u64(buildSchemaHash());
    w.u8(static_cast<uint8_t>(workload.id));
    w.u8(static_cast<uint8_t>(profile));
    writeParams(w, params);
    writeScene(w, workload.scene);
    writeBvh(w, workload.bvh);
    writeRender(w, workload.render);

    std::string data(kMagic, sizeof kMagic);
    data += w.buffer();
    uint64_t sum = fnv1a(data.data(), data.size());
    data.append(reinterpret_cast<const char *>(&sum), 8);

    std::string path = workloadSnapshotPath(dir, workload.id, profile,
                                            params);
    if (!writeFileAtomic(path, data)) {
        warn("workload snapshot %s not written: %s", path.c_str(),
             std::strerror(errno));
        return false;
    }
    ++g_stores;
    return true;
}

std::string
traversalTapePath(const std::string &dir, SceneId id,
                  ScaleProfile profile, const RenderParams &params)
{
    std::string path = workloadSnapshotPath(dir, id, profile, params);
    // <scene>-<profile>-<hash>.wkld -> .tape
    path.replace(path.size() - 5, 5, ".tape");
    return path;
}

bool
loadTraversalTape(const std::string &dir, const Workload &workload,
                  TraversalTape &out)
{
    std::string path = traversalTapePath(dir, workload.id,
                                         workload.profile,
                                         workload.params);
    std::string data;
    if (!readFile(path, data))
        return false; // quiet miss: never recorded here
    auto invalid = [&](const char *why) {
        warn("traversal tape %s: %s; re-recording", path.c_str(), why);
        noteTapeFailure();
        return false;
    };

    if (data.size() < sizeof kTapeMagic + 8 ||
        std::memcmp(data.data(), kTapeMagic, sizeof kTapeMagic) != 0)
        return invalid("bad magic");
    uint64_t stored_sum;
    std::memcpy(&stored_sum, data.data() + data.size() - 8, 8);
    if (fnv1a(data.data(), data.size() - 8) != stored_sum)
        return invalid("checksum mismatch");

    std::string body = data.substr(sizeof kTapeMagic,
                                   data.size() - sizeof kTapeMagic - 8);
    Reader r(body);
    if (r.u32() != kTraversalTapeVersion)
        return invalid("version mismatch");
    uint64_t fingerprint = r.u64();
    if (fingerprint !=
        workloadFingerprint(workload.render.jobs, workload.bvh))
        return invalid("workload fingerprint mismatch");
    uint64_t job_count = r.u64();
    if (!r.ok() || job_count != workload.render.jobs.size())
        return invalid("job count mismatch");

    TraversalTape tape;
    tape.fingerprint = fingerprint;
    tape.jobs.resize(job_count);
    for (uint64_t j = 0; r.ok() && j < job_count; ++j) {
        JobTape &job = tape.jobs[j];
        job.steps = r.u32();
        job.mismatches = r.u32();
        std::string raw = r.str(); // bounds-checked via r.ok()
        job.bytes.assign(raw.begin(), raw.end());
    }
    if (!r.ok() || r.offset() != body.size())
        return invalid("trailing bytes");

    out = std::move(tape);
    noteTapeDiskLoad();
    return true;
}

bool
saveTraversalTape(const std::string &dir, const Workload &workload,
                  const TraversalTape &tape)
{
    if (!ensureDir(dir)) {
        warn("SMS_WORKLOAD_CACHE=%s is not a creatable directory; "
             "traversal tape not written",
             dir.c_str());
        return false;
    }
    Writer w;
    w.u32(kTraversalTapeVersion);
    w.u64(tape.fingerprint);
    w.u64(tape.jobs.size());
    for (const JobTape &job : tape.jobs) {
        w.u32(job.steps);
        w.u32(job.mismatches);
        w.str(std::string(job.bytes.begin(), job.bytes.end()));
    }

    std::string data(kTapeMagic, sizeof kTapeMagic);
    data += w.buffer();
    uint64_t sum = fnv1a(data.data(), data.size());
    data.append(reinterpret_cast<const char *>(&sum), 8);

    std::string path = traversalTapePath(dir, workload.id,
                                         workload.profile,
                                         workload.params);
    if (!writeFileAtomic(path, data)) {
        warn("traversal tape %s not written: %s", path.c_str(),
             std::strerror(errno));
        return false;
    }
    noteTapeDiskStore();
    return true;
}

} // namespace sms
