/**
 * @file
 * Workload snapshot cache implementation.
 *
 * Format: "SMSWKLD1" magic, little-endian fixed-width fields appended
 * by the shared CacheWriter (cache_io.hpp), then an FNV-1a checksum of
 * everything before it. Floats are serialized as their IEEE-754 bit
 * patterns, so a reload is bit-exact — the timing simulation over a
 * snapshot is counter-identical to one over a freshly prepared
 * workload.
 */

#include "src/trace/workload_cache.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/sim/ray_reorder.hpp"
#include "src/stats/metrics.hpp"
#include "src/trace/cache_io.hpp"
#include "src/util/check.hpp"

namespace sms {

namespace {

constexpr char kMagic[8] = {'S', 'M', 'S', 'W', 'K', 'L', 'D', '1'};
constexpr char kTapeMagic[8] = {'S', 'M', 'S', 'T', 'A', 'P', 'E', '1'};

std::atomic<uint64_t> g_hits{0};
std::atomic<uint64_t> g_misses{0};
std::atomic<uint64_t> g_stores{0};
std::atomic<uint64_t> g_failures{0};

// Pull-collector: publish the existing cache counters into metrics
// snapshots without touching the lookup/store hot paths.
const bool g_metrics_collector_registered = [] {
    metricsAddCollector(
        [](const std::function<void(const char *, uint64_t)> &sink) {
            sink("workload_cache.hits",
                 g_hits.load(std::memory_order_relaxed));
            sink("workload_cache.misses",
                 g_misses.load(std::memory_order_relaxed));
            sink("workload_cache.stores",
                 g_stores.load(std::memory_order_relaxed));
            sink("workload_cache.failures",
                 g_failures.load(std::memory_order_relaxed));
        });
    return true;
}();

/**
 * Hash of everything that determines snapshot content besides the key:
 * format version and the structural constants baked into generation.
 */
uint64_t
buildSchemaHash()
{
    uint32_t words[] = {
        kWorkloadSnapshotVersion,
        kWarpSize,
        static_cast<uint32_t>(kWideBvhWidth),
        static_cast<uint32_t>(WideBvh::kNodeBytes),
        static_cast<uint32_t>(WideBvh::kTriBytes),
        static_cast<uint32_t>(WideBvh::kSphereBytes),
    };
    return fnv1a(words, sizeof words);
}

void
writeParams(CacheWriter &w, const RenderParams &p)
{
    w.u32(p.width);
    w.u32(p.height);
    w.u32(p.spp);
    w.u32(p.max_bounces);
    w.u8(p.shadow_rays ? 1 : 0);
    w.u64(p.seed);
}

bool
readAndCheckParams(CacheReader &r, const RenderParams &expect)
{
    RenderParams p;
    p.width = r.u32();
    p.height = r.u32();
    p.spp = r.u32();
    p.max_bounces = r.u32();
    p.shadow_rays = r.u8() != 0;
    p.seed = r.u64();
    return r.ok() && p.width == expect.width &&
           p.height == expect.height && p.spp == expect.spp &&
           p.max_bounces == expect.max_bounces &&
           p.shadow_rays == expect.shadow_rays && p.seed == expect.seed;
}

void
writeRay(CacheWriter &w, const Ray &ray)
{
    w.vec3(ray.origin);
    w.vec3(ray.dir);
    w.vec3(ray.invDir);
    w.f32(ray.tMin);
    w.f32(ray.tMax);
}

Ray
readRay(CacheReader &r)
{
    // Bypass the caching constructor: invDir is restored bit-exactly
    // rather than recomputed.
    Ray ray;
    ray.origin = r.vec3();
    ray.dir = r.vec3();
    ray.invDir = r.vec3();
    ray.tMin = r.f32();
    ray.tMax = r.f32();
    return ray;
}

void
writeScene(CacheWriter &w, const Scene &scene)
{
    w.str(scene.name);
    w.vec3(scene.camera.position);
    w.vec3(scene.camera.lookAt);
    w.vec3(scene.camera.up);
    w.f32(scene.camera.verticalFovDeg);
    w.vec3(scene.light.position);
    w.vec3(scene.light.intensity);

    w.u64(scene.materials().size());
    for (const Material &m : scene.materials()) {
        w.vec3(m.albedo);
        w.vec3(m.emission);
        w.f32(m.reflectivity);
    }
    w.u64(scene.triangleCount());
    for (uint32_t t = 0; t < scene.triangleCount(); ++t) {
        const Triangle &tri = scene.triangles()[t];
        w.vec3(tri.v0);
        w.vec3(tri.v1);
        w.vec3(tri.v2);
        w.u16(scene.primitiveMaterialId(t));
    }
    w.u64(scene.sphereCount());
    for (uint32_t s = 0; s < scene.sphereCount(); ++s) {
        const Sphere &sph = scene.spheres()[s];
        w.vec3(sph.center);
        w.f32(sph.radius);
        w.u16(scene.primitiveMaterialId(scene.triangleCount() + s));
    }
}

bool
readScene(CacheReader &r, Scene &scene)
{
    scene.name = r.str();
    scene.camera.position = r.vec3();
    scene.camera.lookAt = r.vec3();
    scene.camera.up = r.vec3();
    scene.camera.verticalFovDeg = r.f32();
    scene.light.position = r.vec3();
    scene.light.intensity = r.vec3();

    uint64_t materials = r.u64();
    if (!r.ok() || materials > 0xffff)
        return false;
    for (uint64_t i = 0; i < materials; ++i) {
        Material m;
        m.albedo = r.vec3();
        m.emission = r.vec3();
        m.reflectivity = r.f32();
        scene.addMaterial(m);
    }
    uint64_t triangles = r.u64();
    for (uint64_t i = 0; r.ok() && i < triangles; ++i) {
        Triangle tri;
        tri.v0 = r.vec3();
        tri.v1 = r.vec3();
        tri.v2 = r.vec3();
        uint16_t mat = r.u16();
        if (!r.ok() || mat >= materials)
            return false;
        scene.addTriangle(tri, mat);
    }
    uint64_t spheres = r.u64();
    for (uint64_t i = 0; r.ok() && i < spheres; ++i) {
        Sphere sph;
        sph.center = r.vec3();
        sph.radius = r.f32();
        uint16_t mat = r.u16();
        if (!r.ok() || mat >= materials)
            return false;
        scene.addSphere(sph, mat);
    }
    return r.ok();
}

void
writeBvh(CacheWriter &w, const WideBvh &bvh)
{
    w.u32(bvh.rootRef().bits());
    w.u64(bvh.nodes().size());
    for (const WideNode &node : bvh.nodes()) {
        for (int c = 0; c < kWideBvhWidth; ++c) {
            w.vec3(node.child_bounds[c].lo);
            w.vec3(node.child_bounds[c].hi);
            w.u32(node.children[c].bits());
        }
        w.u8(node.child_count);
    }
    w.u64(bvh.primIndices().size());
    for (uint32_t idx : bvh.primIndices())
        w.u32(idx);
}

bool
readBvh(CacheReader &r, WideBvh &bvh)
{
    ChildRef root = ChildRef::fromBits(r.u32());
    uint64_t node_count = r.u64();
    if (!r.ok())
        return false;
    std::vector<WideNode> nodes;
    nodes.reserve(node_count);
    for (uint64_t i = 0; r.ok() && i < node_count; ++i) {
        WideNode node;
        for (int c = 0; c < kWideBvhWidth; ++c) {
            node.child_bounds[c].lo = r.vec3();
            node.child_bounds[c].hi = r.vec3();
            node.children[c] = ChildRef::fromBits(r.u32());
        }
        node.child_count = r.u8();
        nodes.push_back(node);
    }
    uint64_t index_count = r.u64();
    if (!r.ok())
        return false;
    std::vector<uint32_t> indices;
    indices.reserve(index_count);
    for (uint64_t i = 0; r.ok() && i < index_count; ++i)
        indices.push_back(r.u32());
    if (!r.ok())
        return false;
    bvh = WideBvh::fromParts(kWideBvhWidth, std::move(nodes),
                             std::move(indices), root);
    return true;
}

void
writeJobs(CacheWriter &w, const WarpJobList &jobs)
{
    w.u64(jobs.size());
    for (const WarpJob &job : jobs) {
        w.u32(job.job_id);
        w.u32(job.warp_id);
        w.u32(job.segment);
        w.i32(job.parent);
        w.u8(job.any_hit ? 1 : 0);
        for (uint32_t i = 0; i < kWarpSize; ++i) {
            w.u8(job.active[i] ? 1 : 0);
            if (!job.active[i])
                continue;
            writeRay(w, job.rays[i]);
            w.f32(job.expected_t[i]);
            w.u32(job.expected_prim[i]);
            w.u8(job.expected_hit[i] ? 1 : 0);
        }
    }
}

bool
readJobs(CacheReader &r, WarpJobList &jobs)
{
    uint64_t count = r.u64();
    if (!r.ok())
        return false;
    jobs.reserve(count);
    for (uint64_t j = 0; r.ok() && j < count; ++j) {
        WarpJob job;
        job.job_id = r.u32();
        job.warp_id = r.u32();
        job.segment = r.u32();
        job.parent = r.i32();
        job.any_hit = r.u8() != 0;
        for (uint32_t i = 0; i < kWarpSize; ++i) {
            job.active[i] = r.u8() != 0;
            if (!job.active[i])
                continue;
            job.rays[i] = readRay(r);
            job.expected_t[i] = r.f32();
            job.expected_prim[i] = r.u32();
            job.expected_hit[i] = r.u8() != 0;
        }
        jobs.push_back(std::move(job));
    }
    return r.ok();
}

void
writeRender(CacheWriter &w, const RenderOutput &render)
{
    w.u32(render.film.width());
    w.u32(render.film.height());
    for (uint32_t y = 0; y < render.film.height(); ++y)
        for (uint32_t x = 0; x < render.film.width(); ++x)
            w.vec3(render.film.at(x, y));
    w.u64(render.rays);
    writeJobs(w, render.jobs);
}

bool
readRender(CacheReader &r, std::unique_ptr<RenderOutput> &out)
{
    uint32_t width = r.u32();
    uint32_t height = r.u32();
    if (!r.ok() || width == 0 || height == 0 ||
        static_cast<uint64_t>(width) * height > (1u << 26))
        return false;
    out = std::make_unique<RenderOutput>(width, height);
    for (uint32_t y = 0; y < height; ++y)
        for (uint32_t x = 0; x < width; ++x)
            out->film.add(x, y, r.vec3()); // fresh film: add == assign
    out->rays = r.u64();
    return readJobs(r, out->jobs) && r.ok();
}

/** Hash identifying the render params + build schema in the filename. */
uint64_t
keyHash(const RenderParams &params)
{
    CacheWriter w;
    writeParams(w, params);
    return fnv1a(w.buffer().data(), w.buffer().size(),
                 buildSchemaHash());
}

} // namespace

WorkloadCacheStats
workloadCacheStats()
{
    WorkloadCacheStats s;
    s.hits = g_hits.load();
    s.misses = g_misses.load();
    s.stores = g_stores.load();
    s.failures = g_failures.load();
    return s;
}

void
resetWorkloadCacheStats()
{
    g_hits = 0;
    g_misses = 0;
    g_stores = 0;
    g_failures = 0;
}

std::string
workloadCacheDir()
{
    const char *dir = std::getenv("SMS_WORKLOAD_CACHE");
    return dir && *dir ? dir : "";
}

std::string
workloadSnapshotPath(const std::string &dir, SceneId id,
                     ScaleProfile profile, const RenderParams &params)
{
    char hash[17];
    std::snprintf(hash, sizeof hash, "%016llx",
                  static_cast<unsigned long long>(keyHash(params)));
    std::string path = dir;
    if (!path.empty() && path.back() != '/')
        path += '/';
    path += std::string(sceneName(id)) + "-" + profileTag(profile) + "-" +
            hash + ".wkld";
    return path;
}

std::shared_ptr<Workload>
loadWorkloadSnapshot(const std::string &dir, SceneId id,
                     ScaleProfile profile, const RenderParams &params)
{
    std::string path = workloadSnapshotPath(dir, id, profile, params);
    std::string data;
    if (!readFile(path, data)) {
        ++g_misses;
        return nullptr;
    }
    auto invalid = [&](const char *why) -> std::shared_ptr<Workload> {
        warn("workload snapshot %s: %s; rebuilding", path.c_str(), why);
        ++g_failures;
        ++g_misses;
        return nullptr;
    };

    std::string body;
    if (!openCacheEnvelope(kMagic, data, body))
        return invalid("bad magic or checksum");

    CacheReader r(body);
    if (r.u32() != kWorkloadSnapshotVersion)
        return invalid("version mismatch");
    if (r.u64() != buildSchemaHash())
        return invalid("build schema mismatch");
    if (r.u8() != static_cast<uint8_t>(id) ||
        r.u8() != static_cast<uint8_t>(profile))
        return invalid("key mismatch");
    if (!readAndCheckParams(r, params))
        return invalid("render params mismatch");

    Scene scene;
    if (!readScene(r, scene))
        return invalid("corrupt scene section");
    WideBvh bvh;
    if (!readBvh(r, bvh))
        return invalid("corrupt bvh section");
    std::unique_ptr<RenderOutput> render;
    if (!readRender(r, render))
        return invalid("corrupt render section");
    if (r.offset() != body.size())
        return invalid("trailing bytes");

    ++g_hits;
    return std::make_shared<Workload>(id, profile, std::move(scene),
                                      std::move(bvh), params,
                                      std::move(*render));
}

bool
saveWorkloadSnapshot(const std::string &dir, const Workload &workload,
                     ScaleProfile profile, const RenderParams &params)
{
    if (!ensureDir(dir)) {
        warn("SMS_WORKLOAD_CACHE=%s is not a creatable directory; "
             "snapshot not written",
             dir.c_str());
        return false;
    }
    CacheWriter w;
    w.u32(kWorkloadSnapshotVersion);
    w.u64(buildSchemaHash());
    w.u8(static_cast<uint8_t>(workload.id));
    w.u8(static_cast<uint8_t>(profile));
    writeParams(w, params);
    writeScene(w, workload.scene);
    writeBvh(w, workload.bvh);
    writeRender(w, workload.render);

    std::string data = sealCacheEnvelope(kMagic, w.buffer());
    std::string path = workloadSnapshotPath(dir, workload.id, profile,
                                            params);
    if (!writeFileAtomic(path, data)) {
        warn("workload snapshot %s not written: %s", path.c_str(),
             std::strerror(errno));
        return false;
    }
    ++g_stores;
    return true;
}

std::string
traversalTapePath(const std::string &dir, SceneId id,
                  ScaleProfile profile, const RenderParams &params)
{
    return traversalTapePath(dir, id, profile, params,
                             TraversalVariant{});
}

std::string
traversalTapePath(const std::string &dir, SceneId id,
                  ScaleProfile profile, const RenderParams &params,
                  const TraversalVariant &variant)
{
    std::string path = workloadSnapshotPath(dir, id, profile, params);
    // <scene>-<profile>-<hash>.wkld -> [-v<digest16>].tape. Default
    // variants keep the historical suffix-only name, so existing tape
    // files stay valid.
    path.resize(path.size() - 5);
    uint64_t digest = variant.digest();
    if (digest != 0) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "-v%016llx",
                      static_cast<unsigned long long>(digest));
        path += buf;
    }
    path += ".tape";
    return path;
}

namespace {

/**
 * The fingerprint a tape recorded under @p variant must carry: the
 * fingerprint of the job stream AS SIMULATED (reordered when the
 * variant reorders) xor the variant digest. Reduces to the plain
 * workload fingerprint for the default variant.
 */
uint64_t
expectedTapeIdentity(const Workload &workload,
                     const TraversalVariant &variant, size_t &job_count)
{
    uint64_t base;
    if (variant.order.active()) {
        WarpJobList reordered = reorderJobs(workload.render.jobs,
                                            workload.bvh, variant.order);
        job_count = reordered.size();
        base = workloadFingerprint(reordered, workload.bvh);
    } else {
        job_count = workload.render.jobs.size();
        base = workloadFingerprint(workload.render.jobs, workload.bvh);
    }
    return base ^ variant.digest();
}

} // namespace

bool
loadTraversalTape(const std::string &dir, const Workload &workload,
                  TraversalTape &out)
{
    return loadTraversalTape(dir, workload, TraversalVariant{}, out);
}

bool
loadTraversalTape(const std::string &dir, const Workload &workload,
                  const TraversalVariant &variant, TraversalTape &out)
{
    std::string path = traversalTapePath(dir, workload.id,
                                         workload.profile,
                                         workload.params, variant);
    std::string data;
    if (!readFile(path, data))
        return false; // quiet miss: never recorded here
    auto invalid = [&](const char *why) {
        warn("traversal tape %s: %s; re-recording", path.c_str(), why);
        noteTapeFailure();
        return false;
    };

    std::string body;
    if (!openCacheEnvelope(kTapeMagic, data, body))
        return invalid("bad magic or checksum");

    CacheReader r(body);
    if (r.u32() != kTraversalTapeVersion)
        return invalid("version mismatch");
    uint64_t fingerprint = r.u64();
    size_t expected_jobs = 0;
    if (fingerprint != expectedTapeIdentity(workload, variant,
                                            expected_jobs))
        return invalid("workload fingerprint mismatch");
    uint64_t job_count = r.u64();
    // Reordering repacks rays 32-to-a-warp, so the expected count is
    // the reordered stream's, not the generation-order one's.
    if (!r.ok() || job_count != expected_jobs)
        return invalid("job count mismatch");

    TraversalTape tape;
    tape.fingerprint = fingerprint;
    tape.jobs.resize(job_count);
    for (uint64_t j = 0; r.ok() && j < job_count; ++j) {
        JobTape &job = tape.jobs[j];
        job.steps = r.u32();
        job.mismatches = r.u32();
        std::string raw = r.str(); // bounds-checked via r.ok()
        job.bytes.assign(raw.begin(), raw.end());
    }
    if (!r.ok() || r.offset() != body.size())
        return invalid("trailing bytes");

    out = std::move(tape);
    noteTapeDiskLoad();
    return true;
}

bool
saveTraversalTape(const std::string &dir, const Workload &workload,
                  const TraversalTape &tape)
{
    return saveTraversalTape(dir, workload, TraversalVariant{}, tape);
}

bool
saveTraversalTape(const std::string &dir, const Workload &workload,
                  const TraversalVariant &variant,
                  const TraversalTape &tape)
{
    if (!ensureDir(dir)) {
        warn("SMS_WORKLOAD_CACHE=%s is not a creatable directory; "
             "traversal tape not written",
             dir.c_str());
        return false;
    }
    CacheWriter w;
    w.u32(kTraversalTapeVersion);
    w.u64(tape.fingerprint);
    w.u64(tape.jobs.size());
    for (const JobTape &job : tape.jobs) {
        w.u32(job.steps);
        w.u32(job.mismatches);
        w.str(std::string(job.bytes.begin(), job.bytes.end()));
    }

    std::string data = sealCacheEnvelope(kTapeMagic, w.buffer());
    std::string path = traversalTapePath(dir, workload.id,
                                         workload.profile,
                                         workload.params, variant);
    if (!writeFileAtomic(path, data)) {
        warn("traversal tape %s not written: %s", path.c_str(),
             std::strerror(errno));
        return false;
    }
    noteTapeDiskStore();
    return true;
}

} // namespace sms
