/**
 * @file
 * Path tracer / warp-job generator implementation.
 */

#include "src/trace/path_tracer.hpp"

#include <algorithm>
#include <cmath>

#include "src/bvh/traverse.hpp"
#include "src/trace/camera.hpp"
#include "src/util/check.hpp"
#include "src/util/rng.hpp"

namespace sms {

namespace {

constexpr float kPi = 3.14159265358979323846f;

/** Simple sky gradient for rays escaping the scene. */
Vec3
skyColor(const Vec3 &dir)
{
    float t = 0.5f * (dir.y + 1.0f);
    return lerp(Vec3{0.9f, 0.9f, 0.95f}, Vec3{0.45f, 0.6f, 0.9f}, t) *
           0.8f;
}

/** Cosine-weighted hemisphere sample around unit normal n. */
Vec3
cosineSample(const Vec3 &n, Pcg32 &rng)
{
    float r1 = rng.nextFloat();
    float r2 = rng.nextFloat();
    float phi = 2.0f * kPi * r1;
    float sqrt_r2 = std::sqrt(r2);
    // Build an orthonormal basis around n.
    Vec3 helper = std::fabs(n.x) > 0.9f ? Vec3{0, 1, 0} : Vec3{1, 0, 0};
    Vec3 u = normalize(cross(helper, n));
    Vec3 v = cross(n, u);
    Vec3 dir = u * (std::cos(phi) * sqrt_r2) +
               v * (std::sin(phi) * sqrt_r2) +
               n * std::sqrt(std::max(0.0f, 1.0f - r2));
    return normalize(dir);
}

/** Per-path mutable state while generating a warp's job chain. */
struct PathState
{
    Ray ray;
    Vec3 throughput{1.0f, 1.0f, 1.0f};
    Vec3 radiance{0.0f, 0.0f, 0.0f};
    uint32_t pixel_x = 0;
    uint32_t pixel_y = 0;
    Pcg32 rng;
    bool alive = false;
};

} // namespace

RenderParams
RenderParams::forScene(SceneId id)
{
    RenderParams params;
    if (id == SceneId::CHSNT || id == SceneId::ROBOT ||
        id == SceneId::PARK) {
        // §VII-A: the three long-running scenes render at reduced scale.
        params.width = 32;
        params.height = 32;
        params.spp = 1;
    }
    return params;
}

RenderOutput
renderAndBuildJobs(const Scene &scene, const WideBvh &bvh,
                   const RenderParams &params)
{
    SMS_ASSERT(params.width > 0 && params.height > 0 && params.spp > 0,
               "degenerate render params");
    RenderOutput out(params.width, params.height);
    Camera camera(scene.camera, params.width, params.height);

    uint64_t total_paths = static_cast<uint64_t>(params.width) *
                           params.height * params.spp;
    uint32_t warp_count =
        static_cast<uint32_t>((total_paths + kWarpSize - 1) / kWarpSize);

    for (uint32_t warp = 0; warp < warp_count; ++warp) {
        std::array<PathState, kWarpSize> paths;

        // Initialize the warp's 32 paths (row-major pixel order with
        // spp-major sampling, like a launch grid).
        for (uint32_t lane = 0; lane < kWarpSize; ++lane) {
            uint64_t path_index =
                static_cast<uint64_t>(warp) * kWarpSize + lane;
            if (path_index >= total_paths)
                continue;
            uint64_t pixel_index = path_index / params.spp;
            uint32_t sample = static_cast<uint32_t>(
                path_index % params.spp);
            PathState &p = paths[lane];
            p.pixel_x = static_cast<uint32_t>(pixel_index % params.width);
            p.pixel_y = static_cast<uint32_t>(pixel_index / params.width);
            p.rng = Pcg32(splitmix64(params.seed ^ (pixel_index << 8)),
                          sample + 1);
            float jx = params.spp > 1 ? p.rng.nextFloat() : 0.5f;
            float jy = params.spp > 1 ? p.rng.nextFloat() : 0.5f;
            p.ray = camera.generateRay(p.pixel_x, p.pixel_y, jx, jy);
            p.alive = true;
        }

        int32_t prev_job = -1;
        for (uint32_t segment = 0; segment <= params.max_bounces;
             ++segment) {
            // ---- Closest-hit trace call -------------------------------
            WarpJob closest;
            closest.job_id = static_cast<uint32_t>(out.jobs.size());
            closest.warp_id = warp;
            closest.segment = segment;
            closest.parent = prev_job;
            closest.any_hit = false;

            std::array<HitRecord, kWarpSize> hits;
            uint32_t active = 0;
            for (uint32_t lane = 0; lane < kWarpSize; ++lane) {
                PathState &p = paths[lane];
                if (!p.alive)
                    continue;
                closest.active[lane] = true;
                closest.rays[lane] = p.ray;
                hits[lane] = traverseClosest(scene, bvh, p.ray);
                closest.expected_hit[lane] = hits[lane].valid();
                closest.expected_t[lane] = hits[lane].t;
                closest.expected_prim[lane] = hits[lane].primitive;
                ++active;
                ++out.rays;
            }
            if (active == 0)
                break;
            out.jobs.push_back(closest);
            prev_job = static_cast<int32_t>(closest.job_id);

            // ---- Shading + shadow-ray trace call ----------------------
            WarpJob shadow;
            shadow.job_id = static_cast<uint32_t>(out.jobs.size());
            shadow.warp_id = warp;
            shadow.segment = segment;
            shadow.parent = prev_job;
            shadow.any_hit = true;
            uint32_t shadow_lanes = 0;

            for (uint32_t lane = 0; lane < kWarpSize; ++lane) {
                PathState &p = paths[lane];
                if (!p.alive)
                    continue;
                const HitRecord &hit = hits[lane];
                if (!hit.valid()) {
                    p.radiance += p.throughput * skyColor(p.ray.dir);
                    p.alive = false;
                    continue;
                }

                const Material &mat =
                    scene.primitiveMaterial(hit.primitive);
                p.radiance += p.throughput * mat.emission;

                Vec3 hit_point = p.ray.at(hit.t);
                if (params.shadow_rays) {
                    Vec3 to_light = scene.light.position - hit_point;
                    float dist = length(to_light);
                    if (dist > 1.0e-4f) {
                        Vec3 ldir = to_light / dist;
                        float cos_l = dot(hit.normal, ldir);
                        if (cos_l > 0.0f) {
                            Ray sray(hit_point, ldir, 1.0e-3f,
                                     dist - 1.0e-3f);
                            bool occluded =
                                traverseAnyHit(scene, bvh, sray);
                            shadow.active[lane] = true;
                            shadow.rays[lane] = sray;
                            shadow.expected_hit[lane] = occluded;
                            ++shadow_lanes;
                            ++out.rays;
                            if (!occluded) {
                                float atten = 1.0f / (dist * dist);
                                p.radiance +=
                                    p.throughput * mat.albedo *
                                    (cos_l * atten / kPi) *
                                    scene.light.intensity;
                            }
                        }
                    }
                }

                // Next bounce.
                if (segment == params.max_bounces) {
                    p.alive = false;
                    continue;
                }
                Vec3 next_dir;
                if (p.rng.nextFloat() < mat.reflectivity) {
                    next_dir = normalize(reflect(p.ray.dir, hit.normal));
                } else {
                    next_dir = cosineSample(hit.normal, p.rng);
                }
                p.throughput = p.throughput * mat.albedo;
                // Russian-roulette-free cutoff on tiny throughput.
                float max_c = std::max(
                    {p.throughput.x, p.throughput.y, p.throughput.z});
                if (max_c < 0.01f) {
                    p.alive = false;
                    continue;
                }
                p.ray = Ray(hit_point, next_dir, 1.0e-3f);
            }

            if (shadow_lanes > 0) {
                out.jobs.push_back(shadow);
                prev_job = static_cast<int32_t>(shadow.job_id);
            }
        }

        // Resolve the warp's paths into the film.
        for (uint32_t lane = 0; lane < kWarpSize; ++lane) {
            uint64_t path_index =
                static_cast<uint64_t>(warp) * kWarpSize + lane;
            if (path_index >= total_paths)
                continue;
            const PathState &p = paths[lane];
            out.film.add(p.pixel_x, p.pixel_y, p.radiance);
        }
    }

    out.film.normalize(params.spp);
    return out;
}

} // namespace sms
