/**
 * @file
 * Shared on-disk cache plumbing: the little-endian Writer/Reader pair,
 * the FNV-1a checksum, and the atomic-rename file helpers used by every
 * cache file format in the repository (.wkld workload snapshots,
 * SMSTAPE1 traversal tapes, SMSRSLT1 result-cache entries).
 *
 * All formats follow the same envelope: an 8-byte ASCII magic, a body
 * of fixed-width little-endian fields appended by Writer, and a
 * trailing FNV-1a checksum of everything before it. Floats serialize as
 * IEEE-754 bit patterns, so reloads are bit-exact.
 *
 * Files are written via writeFileAtomic(): the payload lands in a
 * uniquely named temporary file in the target directory and is
 * rename()d into place, so concurrent writers — racing worker
 * *processes* of a sharded sweep as well as racing *threads* of one
 * process — never interleave bytes and readers never observe a partial
 * file. Whichever writer renames last wins with an intact file; for
 * cache entries every writer produces identical bytes, so the race is
 * benign by construction.
 */

#ifndef SMS_TRACE_CACHE_IO_HPP
#define SMS_TRACE_CACHE_IO_HPP

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/geometry/vec3.hpp"
#include "src/scene/registry.hpp"

namespace sms {

/** FNV-1a over @p n bytes, chainable via the @p h seed. */
uint64_t fnv1a(const void *data, size_t n,
               uint64_t h = 0xcbf29ce484222325ull);

/** Append-only little-endian serializer. */
class CacheWriter
{
  public:
    void
    u8(uint8_t v)
    {
        out_.push_back(static_cast<char>(v));
    }

    void
    u16(uint16_t v)
    {
        raw(&v, sizeof v);
    }

    void
    u32(uint32_t v)
    {
        raw(&v, sizeof v);
    }

    void
    u64(uint64_t v)
    {
        raw(&v, sizeof v);
    }

    void
    i32(int32_t v)
    {
        raw(&v, sizeof v);
    }

    void
    f32(float v)
    {
        uint32_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u32(bits);
    }

    /** double as its IEEE-754 bit pattern (bit-exact reload). */
    void
    f64(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void
    vec3(const Vec3 &v)
    {
        f32(v.x);
        f32(v.y);
        f32(v.z);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        out_.append(s);
    }

    const std::string &buffer() const { return out_; }

  private:
    void
    raw(const void *p, size_t n)
    {
        out_.append(static_cast<const char *>(p), n);
    }

    std::string out_;
};

/** Bounds-checked reader; any overrun flags failure and returns zeros. */
class CacheReader
{
  public:
    explicit CacheReader(const std::string &data) : data_(data) {}

    bool ok() const { return ok_; }
    size_t offset() const { return off_; }

    uint8_t
    u8()
    {
        uint8_t v = 0;
        raw(&v, sizeof v);
        return v;
    }

    uint16_t
    u16()
    {
        uint16_t v = 0;
        raw(&v, sizeof v);
        return v;
    }

    uint32_t
    u32()
    {
        uint32_t v = 0;
        raw(&v, sizeof v);
        return v;
    }

    uint64_t
    u64()
    {
        uint64_t v = 0;
        raw(&v, sizeof v);
        return v;
    }

    int32_t
    i32()
    {
        int32_t v = 0;
        raw(&v, sizeof v);
        return v;
    }

    float
    f32()
    {
        uint32_t bits = u32();
        float v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    double
    f64()
    {
        uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    Vec3
    vec3()
    {
        Vec3 v;
        v.x = f32();
        v.y = f32();
        v.z = f32();
        return v;
    }

    std::string
    str()
    {
        uint64_t n = u64();
        if (!ok_ || n > data_.size() - off_) {
            ok_ = false;
            return {};
        }
        std::string s = data_.substr(off_, n);
        off_ += n;
        return s;
    }

  private:
    void
    raw(void *p, size_t n)
    {
        if (!ok_ || n > data_.size() - off_) {
            ok_ = false;
            return;
        }
        std::memcpy(p, data_.data() + off_, n);
        off_ += n;
    }

    const std::string &data_;
    size_t off_ = 0;
    bool ok_ = true;
};

/**
 * Wrap a serialized body in the standard cache envelope:
 * @p magic (8 bytes) + body + FNV-1a checksum of everything before it.
 */
std::string sealCacheEnvelope(const char magic[8],
                              const std::string &body);

/**
 * Validate the envelope of @p data against @p magic and the trailing
 * checksum; on success @p body receives the payload between them.
 */
bool openCacheEnvelope(const char magic[8], const std::string &data,
                       std::string &body);

/**
 * Write @p data to @p path through a uniquely named temp file in the
 * same directory plus an atomic rename. The temp suffix combines the
 * pid with a per-process counter, so two racing threads of one process
 * (which share a pid) get distinct temp files too — the historical
 * pid-only suffix let them interleave writes to the same temp path.
 */
bool writeFileAtomic(const std::string &path, const std::string &data);

/** Slurp @p path into @p out. @return false when unreadable. */
bool readFile(const std::string &path, std::string &out);

/** mkdir -p. @return false when a component exists as a non-dir. */
bool ensureDir(const std::string &dir);

/** Lowercase filename tag of a scale profile ("tiny"/"small"/"large"). */
const char *profileTag(ScaleProfile profile);

} // namespace sms

#endif // SMS_TRACE_CACHE_IO_HPP
