/**
 * @file
 * Pinhole camera generating primary rays from pixel coordinates.
 */

#ifndef SMS_TRACE_CAMERA_HPP
#define SMS_TRACE_CAMERA_HPP

#include <cstdint>

#include "src/geometry/ray.hpp"
#include "src/scene/scene.hpp"

namespace sms {

/** Pinhole camera with a precomputed screen basis. */
class Camera
{
  public:
    /**
     * @param desc   scene camera description
     * @param width  image width in pixels
     * @param height image height in pixels
     */
    Camera(const CameraDesc &desc, uint32_t width, uint32_t height);

    /**
     * Primary ray through pixel (px, py) with sub-pixel jitter
     * (jx, jy) in [0, 1).
     */
    Ray generateRay(uint32_t px, uint32_t py, float jx, float jy) const;

    uint32_t width() const { return width_; }
    uint32_t height() const { return height_; }

  private:
    uint32_t width_;
    uint32_t height_;
    Vec3 origin_;
    Vec3 lower_left_;
    Vec3 horizontal_;
    Vec3 vertical_;
};

} // namespace sms

#endif // SMS_TRACE_CAMERA_HPP
