/**
 * @file
 * Functional path tracer and warp-job generator.
 *
 * Renders the scene with the same megakernel structure the paper's
 * workloads use (LumiBench PT shader): per pixel sample, a chain of
 * trace calls — closest hit, then a shadow ray, then the next bounce —
 * executed warp-synchronously by groups of 32 paths. Each trace call
 * becomes one WarpJob for the timing simulator, with the functional
 * results embedded as the oracle.
 */

#ifndef SMS_TRACE_PATH_TRACER_HPP
#define SMS_TRACE_PATH_TRACER_HPP

#include <cstdint>

#include "src/bvh/wide_bvh.hpp"
#include "src/scene/registry.hpp"
#include "src/scene/scene.hpp"
#include "src/sim/warp_job.hpp"
#include "src/trace/film.hpp"

namespace sms {

/** Rendering workload parameters. */
struct RenderParams
{
    uint32_t width = 64;
    uint32_t height = 64;
    uint32_t spp = 1;
    /** Bounce segments after the primary (paper path tracing depth). */
    uint32_t max_bounces = 2;
    /** Trace a shadow ray at each closest hit. */
    bool shadow_rays = true;
    uint64_t seed = 0;

    /**
     * Per-scene evaluation workload mirroring §VII-A: most scenes use
     * the base resolution; the three long-running scenes (CHSNT, ROBOT,
     * PARK) use a quarter-size image with 1 spp.
     */
    static RenderParams forScene(SceneId id);
};

/** Result of functional rendering: image plus simulator workload. */
struct RenderOutput
{
    Film film;
    WarpJobList jobs;
    uint64_t rays = 0;

    explicit RenderOutput(uint32_t w, uint32_t h) : film(w, h) {}
};

/**
 * Render @p scene functionally and emit the warp-job stream.
 * Deterministic for fixed params.
 */
RenderOutput renderAndBuildJobs(const Scene &scene, const WideBvh &bvh,
                                const RenderParams &params);

} // namespace sms

#endif // SMS_TRACE_PATH_TRACER_HPP
