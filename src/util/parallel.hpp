/**
 * @file
 * Minimal deterministic work-sharing helper for the benchmark drivers.
 *
 * Simulations are independent (each owns its memory models), so benches
 * fan scene x configuration grids across threads. Results are stored by
 * index, keeping output ordering deterministic regardless of thread
 * interleaving.
 */

#ifndef SMS_UTIL_PARALLEL_HPP
#define SMS_UTIL_PARALLEL_HPP

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace sms {

/**
 * Run fn(i) for i in [0, n) across up to @p threads workers.
 * Blocks until all iterations finish. fn must be thread-safe.
 */
inline void
parallelFor(size_t n, const std::function<void(size_t)> &fn,
            unsigned threads = 0)
{
    if (n == 0)
        return;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 4;
    }
    if (threads > n)
        threads = static_cast<unsigned>(n);
    if (threads <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&]() {
            for (;;) {
                size_t i = next.fetch_add(1);
                if (i >= n)
                    return;
                fn(i);
            }
        });
    }
    for (std::thread &w : workers)
        w.join();
}

} // namespace sms

#endif // SMS_UTIL_PARALLEL_HPP
