/**
 * @file
 * Minimal deterministic work-sharing helper for the benchmark drivers.
 *
 * Simulations are independent (each owns its memory models), so benches
 * fan scene x configuration grids across threads. Results are stored by
 * index, keeping output ordering deterministic regardless of thread
 * interleaving.
 *
 * Exceptions thrown by @p fn on a worker thread are captured (first one
 * wins), remaining iterations are abandoned, and the exception is
 * rethrown on the calling thread after all workers joined — a worker
 * throw is a regular error, not std::terminate.
 */

#ifndef SMS_UTIL_PARALLEL_HPP
#define SMS_UTIL_PARALLEL_HPP

#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

namespace sms {

/**
 * Default worker count for parallelFor's threads==0 mode: SMS_THREADS
 * when set to a positive integer, otherwise hardware_concurrency()
 * (with a fallback of 4 when even that is unknown). Parsed once per
 * process; a malformed value warns and falls through to the hardware
 * default rather than silently serializing.
 */
inline unsigned
defaultThreadCount()
{
    static const unsigned count = [] {
        const char *env = std::getenv("SMS_THREADS");
        if (env && *env) {
            char *end = nullptr;
            unsigned long n = std::strtoul(env, &end, 10);
            if (end && !*end && n >= 1 && n <= 65536)
                return static_cast<unsigned>(n);
            std::fprintf(stderr,
                         "sms: SMS_THREADS='%s' is not a thread count "
                         "in 1..65536; using the hardware default\n",
                         env);
        }
        unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 4u : hw;
    }();
    return count;
}

/**
 * Optional occupancy instrumentation. The metrics layer (which sits
 * above this header in the link order, so it cannot be called
 * directly from here) installs begin/end hooks that publish the
 * worker count and iteration total of each parallelFor region as
 * gauges/counters. Null by default: one relaxed load per region is
 * the entire cost when telemetry is off.
 */
using ParallelForHook = void (*)(unsigned threads, size_t n);

namespace detail {
inline std::atomic<ParallelForHook> g_parallel_begin{nullptr};
inline std::atomic<ParallelForHook> g_parallel_end{nullptr};
} // namespace detail

/** Install (or clear, with nullptrs) the region hooks. */
inline void
setParallelForHooks(ParallelForHook begin, ParallelForHook end)
{
    detail::g_parallel_begin.store(begin, std::memory_order_relaxed);
    detail::g_parallel_end.store(end, std::memory_order_relaxed);
}

namespace detail {
/** Runs the begin hook now and the end hook at scope exit. */
struct ParallelRegionScope
{
    unsigned threads;
    size_t n;
    ParallelRegionScope(unsigned threads_, size_t n_)
        : threads(threads_), n(n_)
    {
        if (ParallelForHook hook =
                g_parallel_begin.load(std::memory_order_relaxed))
            hook(threads, n);
    }
    ~ParallelRegionScope()
    {
        if (ParallelForHook hook =
                g_parallel_end.load(std::memory_order_relaxed))
            hook(threads, n);
    }
};
} // namespace detail

/**
 * Run fn(i) for i in [0, n) across up to @p threads workers.
 * Blocks until all iterations finish. fn must be thread-safe.
 *
 * @param chunk iterations claimed per atomic grab. 1 (the default)
 *              balances best; larger chunks cut contention when
 *              iterations are tiny and uniform. The iteration->index
 *              mapping (and thus every result slot) is identical for
 *              any chunk size — only the thread assignment changes.
 */
inline void
parallelFor(size_t n, const std::function<void(size_t)> &fn,
            unsigned threads = 0, size_t chunk = 1)
{
    if (n == 0)
        return;
    if (chunk == 0)
        chunk = 1;
    if (threads == 0)
        threads = defaultThreadCount();
    // One worker per *chunk*, not per iteration: with chunk > 1 a
    // thread claims `chunk` iterations per grab, so spawning more
    // workers than chunks just creates threads that grab nothing (and
    // the old per-iteration clamp never accounted for chunking at all).
    size_t chunks = (n + chunk - 1) / chunk;
    if (threads > chunks)
        threads = static_cast<unsigned>(chunks);
    detail::ParallelRegionScope region(threads, n);
    if (threads <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::atomic<bool> error_claimed{false};

    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&]() {
            for (;;) {
                if (failed.load(std::memory_order_relaxed))
                    return;
                size_t base = next.fetch_add(chunk);
                if (base >= n)
                    return;
                size_t end = base + chunk < n ? base + chunk : n;
                for (size_t i = base; i < end; ++i) {
                    try {
                        fn(i);
                    } catch (...) {
                        // First thrower records; everyone drains out.
                        if (!error_claimed.exchange(true))
                            first_error = std::current_exception();
                        failed.store(true, std::memory_order_relaxed);
                        return;
                    }
                }
            }
        });
    }
    for (std::thread &w : workers)
        w.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace sms

#endif // SMS_UTIL_PARALLEL_HPP
