/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic() is for internal invariant violations (simulator bugs); fatal()
 * is for user-facing configuration errors that make continuing pointless.
 * SMS_ASSERT is a release-mode-checked invariant used throughout the
 * timing and stack models, where silent corruption would invalidate
 * every downstream statistic.
 */

#ifndef SMS_UTIL_CHECK_HPP
#define SMS_UTIL_CHECK_HPP

#include <cstdarg>
#include <string>

namespace sms {

/** Print a formatted message describing a simulator bug and abort(). */
[[noreturn]] void panic(const char *fmt, ...);

/** Print a formatted message describing a user error and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...);

/** Print a formatted one-shot warning to stderr. */
void warn(const char *fmt, ...);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...);

/** va_list flavour of strprintf(). */
std::string vstrprintf(const char *fmt, va_list args);

} // namespace sms

/**
 * Invariant check that stays on in release builds. The timing model is a
 * measurement instrument; failing loudly beats producing wrong statistics.
 */
#define SMS_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::sms::panic("assertion '%s' failed at %s:%d: %s", #cond,       \
                         __FILE__, __LINE__,                                \
                         ::sms::strprintf("" __VA_ARGS__).c_str());         \
        }                                                                   \
    } while (0)

/**
 * Debug-only invariant check for the innermost hot loops (ring-buffer
 * index arithmetic, per-lane pool links), where even a predictable
 * branch is measurable. Compiled out under NDEBUG; everything that is
 * not on a per-entry hot path should use SMS_ASSERT instead.
 */
#ifdef NDEBUG
#define SMS_DEBUG_ASSERT(cond, ...)                                         \
    do {                                                                    \
    } while (0)
#else
#define SMS_DEBUG_ASSERT(cond, ...) SMS_ASSERT(cond, __VA_ARGS__)
#endif

#endif // SMS_UTIL_CHECK_HPP
