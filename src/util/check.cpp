/**
 * @file
 * Implementation of the error-reporting helpers.
 */

#include "src/util/check.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace sms {

std::string
vstrprintf(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string out = vstrprintf(fmt, args);
    va_end(args);
    return out;
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

} // namespace sms
