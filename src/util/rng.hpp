/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic decision in the project (scene generation, path-tracing
 * bounce directions, property-test inputs) flows through Pcg32 so that
 * scenes, images and simulation statistics are bit-reproducible across
 * runs and platforms. Timestamp- or hardware-seeded randomness is banned.
 */

#ifndef SMS_UTIL_RNG_HPP
#define SMS_UTIL_RNG_HPP

#include <cstdint>

namespace sms {

/**
 * PCG32 generator (O'Neill, pcg-random.org; XSH-RR variant).
 *
 * Small, fast, statistically solid, and — unlike std::mt19937 with
 * std::uniform_real_distribution — guaranteed to produce identical
 * streams on every standard library implementation.
 */
class Pcg32
{
  public:
    /** Seed with an initial state and stream-selector sequence. */
    explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL,
                   uint64_t seq = 0xda3e39cb94b95bdbULL)
    {
        state_ = 0u;
        inc_ = (seq << 1u) | 1u;
        nextU32();
        state_ += seed;
        nextU32();
    }

    /** Next uniformly distributed 32-bit value. */
    uint32_t
    nextU32()
    {
        uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        uint32_t xorshifted =
            static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
        uint32_t rot = static_cast<uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
    }

    /** Uniform value in [0, bound) without modulo bias. */
    uint32_t
    nextBounded(uint32_t bound)
    {
        if (bound <= 1)
            return 0;
        uint32_t threshold = (-bound) % bound;
        for (;;) {
            uint32_t r = nextU32();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform float in [0, 1). */
    float
    nextFloat()
    {
        // 24 mantissa-ish bits; exact on every platform.
        return static_cast<float>(nextU32() >> 8) * (1.0f / 16777216.0f);
    }

    /** Uniform float in [lo, hi). */
    float
    nextRange(float lo, float hi)
    {
        return lo + (hi - lo) * nextFloat();
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(nextU32() >> 5) * (1.0 / 134217728.0);
    }

  private:
    uint64_t state_;
    uint64_t inc_;
};

/**
 * SplitMix64 hash step; used to derive independent child seeds
 * (e.g., one RNG stream per pixel or per scene object cluster).
 */
inline uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace sms

#endif // SMS_UTIL_RNG_HPP
