/**
 * @file
 * Histogram and summary-statistic implementations.
 */

#include "src/stats/histogram.hpp"

#include <cmath>

#include "src/util/check.hpp"

namespace sms {

void
Histogram::merge(const Histogram &other)
{
    SMS_ASSERT(counts_.size() == other.counts_.size(),
               "merging histograms with different bucket counts");
    for (size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
    sum_ += other.sum_;
    if (other.max_seen_ > max_seen_)
        max_seen_ = other.max_seen_;
}

Histogram
Histogram::fromBuckets(const std::vector<uint64_t> &counts,
                       size_t bucket_count)
{
    SMS_ASSERT(bucket_count >= 1 && counts.size() <= bucket_count,
               "fromBuckets: %zu counts exceed %zu buckets",
               counts.size(), bucket_count);
    Histogram h(static_cast<uint32_t>(bucket_count - 1));
    for (size_t i = 0; i < counts.size(); ++i) {
        h.counts_[i] = counts[i];
        h.total_ += counts[i];
        h.sum_ += counts[i] * static_cast<uint64_t>(i);
        if (counts[i] && i > h.max_seen_)
            h.max_seen_ = static_cast<uint32_t>(i);
    }
    return h;
}

uint32_t
Histogram::median() const
{
    if (total_ == 0)
        return 0;
    uint64_t half = (total_ + 1) / 2;
    uint64_t running = 0;
    for (size_t i = 0; i < counts_.size(); ++i) {
        running += counts_[i];
        if (running >= half)
            return static_cast<uint32_t>(i);
    }
    return static_cast<uint32_t>(counts_.size() - 1);
}

uint32_t
Histogram::percentile(double p) const
{
    if (total_ == 0)
        return 0;
    if (p > 100.0)
        p = 100.0;
    // Nearest-rank: the value at (1-based) rank ceil(p/100 * total) of
    // the sorted sample list; ranks below 1 clamp to the first sample.
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(total_)));
    if (rank < 1)
        rank = 1;
    uint64_t running = 0;
    for (size_t i = 0; i < counts_.size(); ++i) {
        running += counts_[i];
        if (running >= rank)
            return static_cast<uint32_t>(i);
    }
    return static_cast<uint32_t>(counts_.size() - 1);
}

uint64_t
Histogram::countInRange(uint32_t lo, uint32_t hi) const
{
    uint64_t count = 0;
    size_t last = counts_.size() - 1;
    size_t begin = lo < counts_.size() ? lo : last;
    size_t end = hi < counts_.size() ? hi : last;
    for (size_t i = begin; i <= end; ++i)
        count += counts_[i];
    return count;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        SMS_ASSERT(v > 0.0, "geomean requires positive values, got %f", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace sms
