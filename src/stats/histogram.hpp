/**
 * @file
 * Integer-bucket histogram and running summary statistics.
 *
 * Used for the stack-depth distributions of Fig. 4 / Fig. 5 and for the
 * assorted latency statistics reported by the timing model.
 */

#ifndef SMS_STATS_HISTOGRAM_HPP
#define SMS_STATS_HISTOGRAM_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sms {

/**
 * Histogram over non-negative integer samples with unit-width buckets.
 * Samples beyond the configured maximum land in a saturating last bucket.
 */
class Histogram
{
  public:
    /** @param max_value largest distinguishable sample (inclusive) */
    explicit Histogram(uint32_t max_value = 63)
        : counts_(static_cast<size_t>(max_value) + 1, 0)
    {}

    /**
     * Record one sample. Saturating samples are clamped to the last
     * bucket *before* any statistic is credited: the bucket counts,
     * sum_ (and therefore mean()), max_seen_ and the percentiles all
     * describe the same clamped distribution, so mean() can never
     * exceed the largest value percentile()/median() can return. The
     * JSONL depth_hist block inherits these semantics (docs/FORMATS.md).
     */
    void
    add(uint32_t value)
    {
        uint32_t clamped = value < counts_.size()
                               ? value
                               : static_cast<uint32_t>(counts_.size() - 1);
        ++counts_[clamped];
        total_ += 1;
        sum_ += clamped;
        if (clamped > max_seen_)
            max_seen_ = clamped;
    }

    /** Merge another histogram of the same bucket count into this one. */
    void merge(const Histogram &other);

    /**
     * Rebuild a histogram from per-bucket counts (deserialization:
     * result-cache entries, merged-manifest JSONL blocks). The derived
     * statistics — total, sum, maxSeen and thus mean/percentiles — are
     * recomputed from the buckets, which is exact because add() clamps
     * samples before crediting any statistic. @p counts shorter than
     * @p bucket_count is zero-padded (JSONL trims trailing zeros).
     */
    static Histogram fromBuckets(const std::vector<uint64_t> &counts,
                                 size_t bucket_count);

    uint64_t total() const { return total_; }
    uint32_t maxSeen() const { return max_seen_; }

    /** Arithmetic mean of all samples (0 when empty). */
    double
    mean() const
    {
        return total_ ? static_cast<double>(sum_) / total_ : 0.0;
    }

    /** Median sample (lower median; 0 when empty). */
    uint32_t median() const;

    /**
     * Nearest-rank percentile: the smallest sample value whose
     * cumulative count reaches ceil(p/100 * total). @p p is clamped to
     * (0, 100]; 0 when the histogram is empty. percentile(50) is the
     * upper median (median() stays the lower median for backwards
     * compatibility).
     */
    uint32_t percentile(double p) const;

    uint32_t p50() const { return percentile(50.0); }
    uint32_t p90() const { return percentile(90.0); }
    uint32_t p99() const { return percentile(99.0); }

    /** Count of samples in [lo, hi] (clamped to bucket range). */
    uint64_t countInRange(uint32_t lo, uint32_t hi) const;

    /** Fraction of samples in [lo, hi] (0 when empty). */
    double
    fractionInRange(uint32_t lo, uint32_t hi) const
    {
        return total_ ? static_cast<double>(countInRange(lo, hi)) / total_
                      : 0.0;
    }

    uint64_t
    bucket(uint32_t value) const
    {
        return value < counts_.size() ? counts_[value] : 0;
    }

    size_t bucketCount() const { return counts_.size(); }

  private:
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
    uint64_t sum_ = 0;
    uint32_t max_seen_ = 0;
};

/** Running mean/min/max tracker for real-valued samples. */
class RunningStat
{
  public:
    void
    add(double v)
    {
        ++n_;
        sum_ += v;
        if (n_ == 1 || v < min_)
            min_ = v;
        if (n_ == 1 || v > max_)
            max_ = v;
    }

    uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? sum_ / n_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

  private:
    uint64_t n_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Geometric mean of a vector of positive values (0 when empty). */
double geomean(const std::vector<double> &values);

} // namespace sms

#endif // SMS_STATS_HISTOGRAM_HPP
