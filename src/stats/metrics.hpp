/**
 * @file
 * Live metrics: a process-wide registry of monotonic counters, gauges
 * and fixed-bucket histograms, sampled by a background thread into a
 * schema-versioned JSONL time series ("sms-metrics-1").
 *
 * Every other observability artifact in the repository (the
 * sms-bench-1 record, the timeline trace, the cycle accounting) is
 * post-hoc: it exists only after the run finished. This layer is the
 * live counterpart — the same counters the bench record reports at
 * the end, observable mid-run, so a minutes-long sharded sweep is no
 * longer a black box between fork and merge.
 *
 * Cost model mirrors the timeline tracer: every emission site is
 * guarded by metricsOn(), a relaxed atomic load. With telemetry off
 * (SMS_METRICS and SMS_HEARTBEAT_DIR both unset) that load is the
 * entire cost and no counter is ever written, so the simulator's hot
 * loops and the golden bench records are untouched.
 *
 * Two publication styles share the registry:
 *  - push: instrumented sites hold a `static MetricCounter &` from
 *    metricCounter(name) and add() deltas as work retires (runSweep
 *    cell progress, simulateJobs cycles/rays);
 *  - pull: layers that already keep their own counters (result /
 *    workload / tape caches, simulateJobs call count) register a
 *    collector that copies those values into each snapshot, so the
 *    hot paths of those layers stay completely untouched.
 *
 * The sampler thread wakes every SMS_METRICS_INTERVAL_MS, takes a
 * snapshot, appends one JSONL line to SMS_METRICS (when set) and runs
 * the registered sample hooks (the per-shard heartbeat writer in
 * src/serve/heartbeat.cpp is one). Snapshots are also taken
 * synchronously by metricsFlushNow() for final-state flushes.
 */

#ifndef SMS_STATS_METRICS_HPP
#define SMS_STATS_METRICS_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace sms {

class JsonValue;

/** Schema identifier of one metrics JSONL line. */
inline constexpr const char *kMetricsSchema = "sms-metrics-1";

namespace detail {
/** Global telemetry gate; nonzero while metrics are being collected. */
extern std::atomic<uint32_t> g_metrics_on;
} // namespace detail

/**
 * Is telemetry enabled? The per-site guard: a relaxed load. All
 * registry mutators are internally gated on this, so instrumented
 * sites may call add()/set() unconditionally; checking metricsOn()
 * first only saves the argument setup.
 */
inline bool
metricsOn()
{
    return detail::g_metrics_on.load(std::memory_order_relaxed) != 0;
}

/** Monotonic counter. Lock-free; relaxed increments. */
class MetricCounter
{
  public:
    /** Add @p delta; no-op while telemetry is off. */
    void
    add(uint64_t delta = 1)
    {
        if (metricsOn())
            value_.fetch_add(delta, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Instantaneous value (queue depth, active workers). Lock-free. */
class MetricGauge
{
  public:
    /** Set the current value; no-op while telemetry is off. */
    void
    set(int64_t v)
    {
        if (metricsOn())
            value_.store(v, std::memory_order_relaxed);
    }

    /** Add @p delta (negative to decrement); gated like set(). */
    void
    add(int64_t delta)
    {
        if (metricsOn())
            value_.fetch_add(delta, std::memory_order_relaxed);
    }

    /** Raise the value to at least @p v (high-watermark gauges). */
    void
    max(int64_t v)
    {
        if (!metricsOn())
            return;
        int64_t cur = value_.load(std::memory_order_relaxed);
        while (v > cur && !value_.compare_exchange_weak(
                              cur, v, std::memory_order_relaxed))
            ;
    }

    int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<int64_t> value_{0};
};

/**
 * Fixed-bucket histogram. Bucket i counts observations with
 * value <= bounds[i] (the first bound that fits); one implicit
 * overflow bucket counts everything above the last bound, so
 * counts().size() == bounds().size() + 1.
 */
class MetricHistogram
{
  public:
    explicit MetricHistogram(std::vector<double> bounds);

    /** Count @p v into its bucket; no-op while telemetry is off. */
    void observe(double v);

    const std::vector<double> &bounds() const { return bounds_; }

    /** Snapshot of the per-bucket counts (bounds + overflow). */
    std::vector<uint64_t> counts() const;

  private:
    std::vector<double> bounds_;
    std::vector<std::atomic<uint64_t>> counts_;
};

/**
 * Registry lookup/registration. The first call with a name creates
 * the metric; later calls return the same object, whose address is
 * stable for the process lifetime — instrumented sites cache it in a
 * `static` reference so the name lookup happens once per site.
 */
MetricCounter &metricCounter(const std::string &name);
MetricGauge &metricGauge(const std::string &name);
/**
 * Histogram registration. @p bounds must be non-empty and strictly
 * increasing; a re-registration with different bounds is fatal (two
 * sites disagreeing on the buckets of one name is a bug).
 */
MetricHistogram &metricHistogram(const std::string &name,
                                 const std::vector<double> &bounds);

/** One point-in-time view of the whole registry. */
struct MetricsSnapshot
{
    uint64_t seq = 0;    ///< strictly increasing per process
    double wall_ms = 0;  ///< since the sampler was configured
    long pid = 0;
    /** Counter values, sorted by name. */
    std::vector<std::pair<std::string, uint64_t>> counters;
    /** Gauge values, sorted by name. */
    std::vector<std::pair<std::string, int64_t>> gauges;
    struct Hist
    {
        std::string name;
        std::vector<double> bounds;
        std::vector<uint64_t> counts; ///< bounds.size() + 1 buckets
    };
    /** Histograms, sorted by name. */
    std::vector<Hist> histograms;

    /** Counter value by name, or @p fallback when absent. */
    uint64_t counterOr(const std::string &name, uint64_t fallback) const;
};

/**
 * A pull-style publisher: called at every snapshot to copy values a
 * layer already counts (cache hit/miss totals, call counts) into the
 * snapshot via the sink. Registration is one-shot and permanent;
 * collectors run only while telemetry is on.
 */
using MetricsCollector =
    std::function<void(const std::function<void(const char *, uint64_t)>
                           &sink)>;
void metricsAddCollector(MetricsCollector collector);

/**
 * A sample hook: called by the sampler (and metricsFlushNow) with each
 * finished snapshot. The heartbeat writer registers one.
 */
using MetricsSampleHook = std::function<void(const MetricsSnapshot &)>;
void metricsAddSampleHook(MetricsSampleHook hook);

/** Sampler configuration (programmatic alternative to SMS_METRICS). */
struct MetricsConfig
{
    /** JSONL export path; empty samples without writing a series. */
    std::string path;
    /** Sampler period in milliseconds. */
    uint32_t interval_ms = 250;
};

/**
 * Enable telemetry and start the sampler thread. Idempotent for an
 * identical config; a different path/interval restarts the sampler.
 */
void metricsConfigure(const MetricsConfig &config);

/**
 * Read SMS_METRICS / SMS_METRICS_INTERVAL_MS and configure the
 * sampler accordingly. Idempotent: only the first call acts. Does
 * nothing when SMS_METRICS is unset (the heartbeat layer calls
 * metricsEnsureSampler() instead when only SMS_HEARTBEAT_DIR is set).
 */
void metricsInitFromEnv();

/**
 * Start the sampler without an export path if it is not already
 * running (heartbeat-only telemetry). Uses the SMS_METRICS_INTERVAL_MS
 * period.
 */
void metricsEnsureSampler();

/** Is a sampler configured (telemetry gate on)? */
bool metricsActive();

/** The configured sampler state, for the bench throughput block. */
struct MetricsStats
{
    bool enabled = false;
    std::string path;
    uint32_t interval_ms = 0;
    uint64_t samples = 0; ///< snapshots taken (sampler + forced)
};
MetricsStats metricsStats();

/**
 * Take one snapshot immediately: append a JSONL line (when a path is
 * configured) and run the sample hooks. Used for the final flush so
 * the last line / heartbeat reflects the finished run.
 */
void metricsFlushNow();

/**
 * Stop the sampler, run one final flush, and turn the gate off.
 * Registered counters keep their values (the registry is never
 * destroyed); a later metricsConfigure() resumes from them.
 */
void metricsShutdown();

/** Current snapshot without sampler involvement (tests, tools). */
MetricsSnapshot metricsSnapshot();

/** JSON form of one snapshot (one sms-metrics-1 JSONL line). */
JsonValue toJson(const MetricsSnapshot &snapshot);

/**
 * Validate a parsed sms-metrics-1 series: every line carries the
 * schema, seq is strictly increasing, wall_ms is non-decreasing, and
 * every counter is monotonic non-decreasing line-over-line. Lines
 * from different pids form independent series and must not be mixed
 * in one file. @return false with @p error set on the first
 * violation.
 */
bool validateMetricsSeries(const std::vector<JsonValue> &lines,
                           std::string &error);

} // namespace sms

#endif // SMS_STATS_METRICS_HPP
