/**
 * @file
 * Cycle-level timeline tracer with Chrome Trace Format export.
 *
 * The simulator's end-of-run counters say how many spills or DRAM
 * stalls happened; this layer says *when*. Any instrumented site can
 * emit duration ("X"), instant ("i") or counter ("C") events onto
 * per-process/per-thread tracks, and the exporter writes a JSON
 * document that Perfetto or chrome://tracing loads directly.
 *
 * Two clock domains share one trace:
 *  - wall-clock microseconds for the bench harness (prepare/sweep
 *    spans), on their own pids;
 *  - simulated cycles for everything inside a simulateJobs() run,
 *    exported as-if-microseconds (1 cycle == 1 us tick). Each sweep
 *    cell gets its own pid so the domains never share a track.
 *
 * Cost model: every emission site is guarded by timelineOn(), a
 * relaxed atomic load plus a bit test. With tracing off that is the
 * entire cost. Compiling with -DSMS_TIMELINE_DISABLED turns the
 * guard into `constexpr false` so the instrumentation is dead code.
 *
 * Recording is wait-free per thread: each emitting thread owns a
 * private ring shard (registered once under a mutex), so concurrent
 * emission never contends. When a shard's ring fills, the oldest
 * events in that shard are overwritten and counted as dropped.
 * Export must not race live emission; call it after workers joined
 * (the bench harness exports from JsonReporter::finish and atexit).
 *
 * Enable via SMS_TIMELINE=<path>[:categories] (see docs/ENV_VARS.md)
 * or programmatically with timelineConfigure().
 */

#ifndef SMS_STATS_TIMELINE_HPP
#define SMS_STATS_TIMELINE_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace sms {

class JsonValue;

/** Event categories, usable as a bitmask for filtering. */
enum class TimelineCategory : uint32_t
{
    Sweep = 1u << 0,    ///< bench harness wall-clock spans
    Sim = 1u << 1,      ///< TraversalSim step phases (fetch/op/stack)
    Stack = 1u << 2,    ///< warp-stack spill/refill/borrow/flush
    StackOps = 1u << 3, ///< raw push/pop stream (hot; off by default)
    Cache = 1u << 4,    ///< L1/L2 miss lifetimes
    Dram = 1u << 5,     ///< DRAM queue backlog sampling
    Shmem = 1u << 6,    ///< shared-memory bank-conflict passes
};

/** Number of defined categories. */
constexpr int kTimelineCategoryCount = 7;

/**
 * Default category mask: everything except StackOps, whose raw
 * push/pop stream dwarfs all other events on real scenes.
 */
constexpr uint32_t kTimelineDefaultCategories =
    (static_cast<uint32_t>(TimelineCategory::Sweep) |
     static_cast<uint32_t>(TimelineCategory::Sim) |
     static_cast<uint32_t>(TimelineCategory::Stack) |
     static_cast<uint32_t>(TimelineCategory::Cache) |
     static_cast<uint32_t>(TimelineCategory::Dram) |
     static_cast<uint32_t>(TimelineCategory::Shmem));

/** Mask with every category set, including StackOps. */
constexpr uint32_t kTimelineAllCategories =
    kTimelineDefaultCategories |
    static_cast<uint32_t>(TimelineCategory::StackOps);

/** Lower-case name of one category ("sweep", "sim", ...). */
const char *timelineCategoryName(TimelineCategory cat);

/**
 * Parse a comma-separated category list ("stack,cache,dram", "all",
 * "default") into a bitmask. Returns false and sets @p error on an
 * unknown name. An empty spec yields the default mask.
 */
bool timelineParseCategories(const std::string &spec, uint32_t &mask,
                             std::string &error);

/** Render @p mask as a comma-separated category list. */
std::string timelineCategoryList(uint32_t mask);

#ifndef SMS_TIMELINE_DISABLED
namespace detail {
/** Enabled-category mask; zero when tracing is off. */
extern std::atomic<uint32_t> g_timeline_mask;
} // namespace detail
#endif

/**
 * Is tracing enabled for @p cat? This is the per-site guard: a
 * relaxed load and a bit test, or constexpr false when compiled out.
 */
inline bool
timelineOn(TimelineCategory cat)
{
#ifdef SMS_TIMELINE_DISABLED
    (void)cat;
    return false;
#else
    return (detail::g_timeline_mask.load(std::memory_order_relaxed) &
            static_cast<uint32_t>(cat)) != 0;
#endif
}

/** Is tracing enabled for any category at all? */
inline bool
timelineAnyOn()
{
#ifdef SMS_TIMELINE_DISABLED
    return false;
#else
    return detail::g_timeline_mask.load(std::memory_order_relaxed) != 0;
#endif
}

/**
 * Per-thread emission context. Layers that sit far from the event
 * loop (warp stack, caches) read pid/tid/now from here instead of
 * threading them through every call. simulateJobs() owns the fields
 * while a simulation runs on the thread.
 */
struct TimelineContext
{
    uint32_t pid = 0;  ///< trace process (one per sweep cell / harness)
    uint32_t tid = 0;  ///< trace thread (one per SM warp slot)
    uint64_t now = 0;  ///< current simulated cycle
};

/** The calling thread's emission context. */
TimelineContext &timelineContext();

/** Tracer configuration (programmatic alternative to SMS_TIMELINE). */
struct TimelineConfig
{
    /** Export path; empty records in memory without auto-export. */
    std::string path;
    /** Enabled-category bitmask. */
    uint32_t categories = kTimelineDefaultCategories;
    /** Ring capacity per emitting thread, in events. */
    size_t ring_capacity = 1u << 20;
};

/** Recording statistics, for the bench throughput block and tests. */
struct TimelineStats
{
    bool enabled = false;
    uint32_t categories = 0;
    std::string path;
    uint64_t events_recorded = 0; ///< total emissions accepted
    uint64_t events_dropped = 0;  ///< overwritten by ring wrap
    uint64_t events_kept = 0;     ///< still resident, will export
};

/**
 * Enable tracing with @p config, discarding any prior recording.
 * Registers an atexit hook so a configured path is exported even if
 * the process never calls timelineExport().
 */
void timelineConfigure(const TimelineConfig &config);

/**
 * Read SMS_TIMELINE / SMS_TIMELINE_EVENTS and configure the tracer
 * accordingly. Idempotent: only the first call acts, so every entry
 * point (bench harness, tools) may call it unconditionally. Does
 * nothing when SMS_TIMELINE is unset.
 */
void timelineInitFromEnv();

/** Disable tracing and discard all recorded events and names. */
void timelineShutdown();

/** Current recording statistics. */
TimelineStats timelineStats();

/**
 * Allocate a fresh trace process id and name its track. Used once
 * per simulateJobs() run and per bench harness phase.
 */
uint32_t timelineNewProcess(const std::string &name);

/** Name a thread track within @p pid. Idempotent; last name wins. */
void timelineNameThread(uint32_t pid, uint32_t tid,
                        const std::string &name);

/** Microseconds since the tracer was configured (wall domain). */
uint64_t timelineWallMicros();

/*
 * Emission API. All calls are no-ops unless the category is enabled;
 * callers should still guard with timelineOn() to skip argument
 * setup. @p name must be a string literal (stored by pointer).
 */

/** Duration event [ts, ts+dur) on the calling context's track. */
void timelineSpan(TimelineCategory cat, const char *name, uint64_t ts,
                  uint64_t dur, uint64_t value = 0,
                  const char *value_name = nullptr);

/** Duration event on an explicit (pid, tid) track. */
void timelineSpanAt(TimelineCategory cat, const char *name,
                    uint32_t pid, uint32_t tid, uint64_t ts,
                    uint64_t dur, uint64_t value = 0,
                    const char *value_name = nullptr);

/** Instant event at the context's current cycle. */
void timelineInstantNow(TimelineCategory cat, const char *name,
                        uint64_t value = 0,
                        const char *value_name = nullptr);

/** Counter sample at @p ts on the calling context's track. */
void timelineCounter(TimelineCategory cat, const char *name,
                     uint64_t ts, uint64_t value);

/**
 * Export everything recorded so far to @p path as Chrome Trace
 * Format JSON. Safe to call only while no thread is emitting.
 */
bool timelineExportTo(const std::string &path, std::string &error);

/**
 * Export to the configured path (no-op without one). Idempotent: the
 * first call exports; later calls (including the atexit hook) return
 * true without rewriting the file.
 */
bool timelineExport(std::string &error);

/** Per-category totals folded from a trace document. */
struct TraceCategorySummary
{
    std::string category;
    uint64_t span_events = 0;
    uint64_t span_time = 0; ///< summed dur, in trace ticks
    uint64_t instant_events = 0;
    uint64_t counter_events = 0;
    uint64_t counter_max = 0;
};

/** Per-(category, event-name) totals folded from a trace document. */
struct TraceNameSummary
{
    std::string category;
    std::string name;
    uint64_t span_events = 0;
    uint64_t span_time = 0; ///< summed dur, in trace ticks
    uint64_t instant_events = 0;
    uint64_t counter_events = 0;
};

/**
 * Full fold of one Chrome-trace document: per-category and
 * per-(category, name) totals plus the recorder's header counters, so
 * callers can tell a complete trace from one the ring buffer clipped
 * (events_dropped > 0 means doc_events under-counts what actually
 * happened and any derived total is a lower bound).
 */
struct TraceSummary
{
    std::vector<TraceCategorySummary> categories; ///< sorted by name
    std::vector<TraceNameSummary> names; ///< sorted by (category, name)
    uint64_t doc_events = 0;      ///< X/i/C events present in the file
    uint64_t events_recorded = 0; ///< accepted at record time (header)
    uint64_t events_dropped = 0;  ///< overwritten by ring wrap (header)
};

/**
 * Fold a parsed Chrome-trace document (as produced by
 * timelineExportTo). Shared by tools/trace_summarize and the tests.
 */
bool summarizeTrace(const JsonValue &doc, TraceSummary &out,
                    std::string &error);

/** Compatibility wrapper: per-category totals only. */
bool summarizeTraceDocument(const JsonValue &doc,
                            std::vector<TraceCategorySummary> &out,
                            std::string &error);

} // namespace sms

#endif // SMS_STATS_TIMELINE_HPP
