/**
 * @file
 * JSON serializer/parser, statistics views and record comparison.
 */

#include "src/stats/report.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>

#include "src/core/stack_config.hpp"
#include "src/sim/gpu_sim.hpp"
#include "src/stats/cycle_accounting.hpp"
#include "src/stats/histogram.hpp"
#include "src/util/check.hpp"

#ifndef SMS_GIT_DESCRIBE
#define SMS_GIT_DESCRIBE "unknown"
#endif

namespace sms {

// ---------------------------------------------------------------------
// JsonValue
// ---------------------------------------------------------------------

void
JsonValue::push(JsonValue v)
{
    SMS_ASSERT(kind_ == Kind::Array || kind_ == Kind::Null,
               "push on non-array JSON value");
    kind_ = Kind::Array;
    arr_.push_back(std::move(v));
}

size_t
JsonValue::size() const
{
    if (kind_ == Kind::Array)
        return arr_.size();
    if (kind_ == Kind::Object)
        return obj_.size();
    return 0;
}

const JsonValue &
JsonValue::at(size_t i) const
{
    SMS_ASSERT(kind_ == Kind::Array && i < arr_.size(),
               "JSON array index %zu out of range", i);
    return arr_[i];
}

JsonValue &
JsonValue::operator[](const std::string &key)
{
    SMS_ASSERT(kind_ == Kind::Object || kind_ == Kind::Null,
               "operator[] on non-object JSON value");
    kind_ = Kind::Object;
    for (auto &member : obj_)
        if (member.first == key)
            return member.second;
    obj_.emplace_back(key, JsonValue());
    return obj_.back().second;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &member : obj_)
        if (member.first == key)
            return &member.second;
    return nullptr;
}

double
JsonValue::numberOr(const std::string &key, double fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isNumber() ? v->asNumber() : fallback;
}

std::string
JsonValue::stringOr(const std::string &key,
                    const std::string &fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isString() ? v->asString() : fallback;
}

namespace {

void
escapeInto(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    out += '"';
}

void
numberInto(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += "null"; // JSON has no NaN/Inf
        return;
    }
    // Counters are integers; print them without a fraction so records
    // diff cleanly.
    constexpr double kMaxExact = 9007199254740992.0; // 2^53
    if (v == std::floor(v) && std::fabs(v) < kMaxExact) {
        out += strprintf("%lld", static_cast<long long>(v));
        return;
    }
    std::string text = strprintf("%.17g", v);
    // Trim to the shortest representation that round-trips.
    for (int prec = 1; prec < 17; ++prec) {
        std::string shorter = strprintf("%.*g", prec, v);
        if (std::strtod(shorter.c_str(), nullptr) == v) {
            text = shorter;
            break;
        }
    }
    out += text;
}

} // namespace

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    std::string pad, pad_in;
    if (indent > 0) {
        pad.assign(static_cast<size_t>(indent) * depth, ' ');
        pad_in.assign(static_cast<size_t>(indent) * (depth + 1), ' ');
    }
    const char *nl = indent > 0 ? "\n" : "";
    const char *sp = indent > 0 ? "" : "";

    switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Number: numberInto(out, num_); break;
    case Kind::String: escapeInto(out, str_); break;
    case Kind::Array:
        if (arr_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                out += ',';
            out += nl;
            out += pad_in;
            arr_[i].dumpTo(out, indent, depth + 1);
        }
        out += nl;
        out += pad;
        out += ']';
        break;
    case Kind::Object:
        if (obj_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (size_t i = 0; i < obj_.size(); ++i) {
            if (i)
                out += ',';
            out += nl;
            out += pad_in;
            escapeInto(out, obj_[i].first);
            out += ':';
            out += sp;
            if (indent > 0)
                out += ' ';
            obj_[i].second.dumpTo(out, indent, depth + 1);
        }
        out += nl;
        out += pad;
        out += '}';
        break;
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

// ---------------------------------------------------------------------
// Parser (recursive descent)
// ---------------------------------------------------------------------

namespace {

struct Parser
{
    const char *p;
    const char *end;
    std::string error;

    bool
    fail(const std::string &msg)
    {
        if (error.empty())
            error = msg;
        return false;
    }

    void
    skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            ++p;
    }

    bool
    literal(const char *text)
    {
        size_t n = std::strlen(text);
        if (static_cast<size_t>(end - p) < n ||
            std::strncmp(p, text, n) != 0)
            return fail(strprintf("expected '%s'", text));
        p += n;
        return true;
    }

    void
    appendUtf8(std::string &s, uint32_t cp)
    {
        if (cp < 0x80) {
            s += static_cast<char>(cp);
        } else if (cp < 0x800) {
            s += static_cast<char>(0xC0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            s += static_cast<char>(0xE0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            s += static_cast<char>(0xF0 | (cp >> 18));
            s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool
    hex4(uint32_t &out)
    {
        if (end - p < 4)
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            char c = *p++;
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<uint32_t>(c - 'A' + 10);
            else
                return fail("bad hex digit in \\u escape");
        }
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (p >= end || *p != '"')
            return fail("expected string");
        ++p;
        out.clear();
        while (p < end && *p != '"') {
            char c = *p++;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (p >= end)
                return fail("truncated escape");
            char e = *p++;
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'u': {
                uint32_t cp;
                if (!hex4(cp))
                    return false;
                if (cp >= 0xD800 && cp <= 0xDBFF && end - p >= 6 &&
                    p[0] == '\\' && p[1] == 'u') {
                    p += 2;
                    uint32_t lo;
                    if (!hex4(lo))
                        return false;
                    cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                }
                appendUtf8(out, cp);
                break;
            }
            default: return fail("unknown escape");
            }
        }
        if (p >= end)
            return fail("unterminated string");
        ++p; // closing quote
        return true;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > 128)
            return fail("nesting too deep");
        skipWs();
        if (p >= end)
            return fail("unexpected end of input");
        switch (*p) {
        case 'n':
            out = JsonValue();
            return literal("null");
        case 't':
            out = JsonValue(true);
            return literal("true");
        case 'f':
            out = JsonValue(false);
            return literal("false");
        case '"': {
            std::string s;
            if (!parseString(s))
                return false;
            out = JsonValue(std::move(s));
            return true;
        }
        case '[': {
            ++p;
            out = JsonValue::array();
            skipWs();
            if (p < end && *p == ']') {
                ++p;
                return true;
            }
            while (true) {
                JsonValue elem;
                if (!parseValue(elem, depth + 1))
                    return false;
                out.push(std::move(elem));
                skipWs();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == ']') {
                    ++p;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        case '{': {
            ++p;
            out = JsonValue::object();
            skipWs();
            if (p < end && *p == '}') {
                ++p;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (p >= end || *p != ':')
                    return fail("expected ':'");
                ++p;
                JsonValue member;
                if (!parseValue(member, depth + 1))
                    return false;
                out[key] = std::move(member);
                skipWs();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == '}') {
                    ++p;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        default: {
            char *num_end = nullptr;
            double v = std::strtod(p, &num_end);
            if (num_end == p || num_end > end)
                return fail("invalid token");
            p = num_end;
            out = JsonValue(v);
            return true;
        }
        }
    }
};

} // namespace

bool
JsonValue::parse(const std::string &text, JsonValue &out,
                 std::string &error)
{
    Parser parser{text.data(), text.data() + text.size(), {}};
    if (!parser.parseValue(out, 0)) {
        size_t off = static_cast<size_t>(parser.p - text.data());
        error = strprintf("JSON parse error at offset %zu: %s", off,
                          parser.error.c_str());
        return false;
    }
    parser.skipWs();
    if (parser.p != parser.end) {
        error = strprintf("trailing characters at offset %zu",
                          static_cast<size_t>(parser.p - text.data()));
        return false;
    }
    error.clear();
    return true;
}

// ---------------------------------------------------------------------
// Statistics views
// ---------------------------------------------------------------------

namespace {

/** Histogram bucket counts trimmed at the largest seen sample. */
JsonValue
bucketArray(const Histogram &h)
{
    JsonValue counts = JsonValue::array();
    size_t last = std::min<size_t>(h.maxSeen() + 1, h.bucketCount());
    if (h.total() == 0)
        last = 0;
    for (size_t i = 0; i < last; ++i)
        counts.push(h.bucket(static_cast<uint32_t>(i)));
    return counts;
}

} // namespace

JsonValue
toJson(const Histogram &h)
{
    JsonValue v = JsonValue::object();
    v["total"] = h.total();
    v["mean"] = h.mean();
    v["median"] = h.median();
    v["p50"] = h.p50();
    v["p90"] = h.p90();
    v["p99"] = h.p99();
    v["max_seen"] = h.maxSeen();
    v["counts"] = bucketArray(h);
    return v;
}

JsonValue
toJson(const LevelStats &s)
{
    JsonValue v = JsonValue::object();
    v["loads"] = s.loads;
    v["stores"] = s.stores;
    v["load_misses"] = s.load_misses;
    v["store_misses"] = s.store_misses;
    v["writebacks"] = s.writebacks;
    v["hits"] = s.accesses() - s.misses();
    v["miss_rate"] = s.missRate();
    return v;
}

JsonValue
toJson(const DramStats &s)
{
    JsonValue v = JsonValue::object();
    v["loads"] = s.loads;
    v["stores"] = s.stores;
    JsonValue by_class = JsonValue::object();
    by_class["node"] = s.by_class[0];
    by_class["primitive"] = s.by_class[1];
    by_class["stack"] = s.by_class[2];
    // Only the predictor architecture generates class-3 traffic; keep
    // default-architecture records byte-identical to older files.
    if (s.by_class[3] != 0)
        by_class["predictor"] = s.by_class[3];
    v["by_class"] = by_class;
    v["queue_wait_cycles"] = s.queue_wait_cycles;
    v["busy_cycles"] = s.busy_cycles;
    v["max_queue_wait"] = s.max_queue_wait;
    v["avg_queue_wait"] = s.avgQueueWait();
    return v;
}

JsonValue
toJson(const SharedMemStats &s)
{
    JsonValue v = JsonValue::object();
    v["accesses"] = s.accesses;
    v["lane_requests"] = s.lane_requests;
    v["conflict_cycles"] = s.conflict_cycles;
    v["conflict_passes"] = s.conflict_passes;
    v["conflicted_accesses"] = s.conflicted_accesses;
    v["max_passes"] = s.max_passes;
    v["avg_conflict_delay"] = s.avgConflictDelay();
    return v;
}

JsonValue
toJson(const WarpStackStats &s)
{
    JsonValue v = JsonValue::object();
    v["pushes"] = s.pushes;
    v["pops"] = s.pops;
    v["rb_spills"] = s.rb_spills;
    v["rb_spills_to_sh"] = s.rb_spills_to_sh;
    v["rb_spills_to_global"] = s.rb_spills_to_global;
    v["rb_refills"] = s.rb_refills;
    v["rb_refills_from_sh"] = s.rb_refills_from_sh;
    v["rb_refills_from_global"] = s.rb_refills_from_global;
    v["sh_stores"] = s.sh_stores;
    v["sh_loads"] = s.sh_loads;
    v["global_stores"] = s.global_stores;
    v["global_loads"] = s.global_loads;
    v["borrows"] = s.borrows;
    v["flushes"] = s.flushes;
    v["forced_flushes"] = s.forced_flushes;
    v["flushed_entries"] = s.flushed_entries;
    v["single_moves"] = s.single_moves;
    v["max_logical_depth"] = s.max_logical_depth;
    // Trim the borrow-chain histogram at its last non-zero bucket.
    uint32_t last = 0;
    for (uint32_t i = 0; i < kBorrowChainBuckets; ++i)
        if (s.borrow_chain_hist[i])
            last = i + 1;
    JsonValue hist = JsonValue::array();
    for (uint32_t i = 0; i < last; ++i)
        hist.push(s.borrow_chain_hist[i]);
    v["borrow_chain_hist"] = hist;
    return v;
}

JsonValue
toJson(const JobCounters &s)
{
    JsonValue v = JsonValue::object();
    v["steps"] = s.steps;
    v["node_visits"] = s.node_visits;
    v["leaf_visits"] = s.leaf_visits;
    v["box_tests"] = s.box_tests;
    v["prim_tests"] = s.prim_tests;
    v["instructions"] = s.instructions;
    v["fetch_cycles"] = s.fetch_cycles;
    v["op_cycles"] = s.op_cycles;
    v["stack_cycles"] = s.stack_cycles;
    return v;
}

JsonValue
toJson(const StackConfig &c)
{
    JsonValue v = JsonValue::object();
    v["rb_entries"] = c.rb_entries;
    v["rb_unbounded"] = c.rb_unbounded;
    v["sh_entries"] = c.sh_entries;
    v["skewed_bank_access"] = c.skewed_bank_access;
    v["intra_warp_realloc"] = c.intra_warp_realloc;
    v["max_borrowed"] = c.max_borrowed;
    v["max_flushes"] = c.max_flushes;
    return v;
}

JsonValue
toJson(const SimResult &r)
{
    JsonValue v = JsonValue::object();
    v["cycles"] = r.cycles;
    v["instructions"] = r.instructions;
    v["ipc"] = r.ipc();
    v["jobs"] = r.jobs;
    v["warps"] = r.warps;
    v["rays"] = r.rays;
    v["mismatches"] = r.mismatches;
    v["offchip_accesses"] = r.offchip_accesses;
    v["dram_occupancy"] = r.dramOccupancy();
    v["ops"] = toJson(r.ops);
    v["stack"] = toJson(r.stack);
    v["shared_mem"] = toJson(r.shared_mem);
    JsonValue l1 = toJson(r.l1);
    JsonValue l1_cls = JsonValue::object();
    l1_cls["node"] = r.l1_class_misses[0];
    l1_cls["primitive"] = r.l1_class_misses[1];
    l1_cls["stack"] = r.l1_class_misses[2];
    if (r.l1_class_misses[3] != 0)
        l1_cls["predictor"] = r.l1_class_misses[3];
    l1["class_misses"] = l1_cls;
    v["l1"] = l1;
    JsonValue l2 = toJson(r.l2);
    JsonValue l2_cls = JsonValue::object();
    l2_cls["node"] = r.l2_class_misses[0];
    l2_cls["primitive"] = r.l2_class_misses[1];
    l2_cls["stack"] = r.l2_class_misses[2];
    if (r.l2_class_misses[3] != 0)
        l2_cls["predictor"] = r.l2_class_misses[3];
    l2["class_misses"] = l2_cls;
    v["l2"] = l2;
    v["dram"] = toJson(r.dram);
    v["depth_hist"] = toJson(r.depth_hist);
    JsonValue acct = toJson(r.accounting);
    JsonValue per_sm = JsonValue::array();
    for (const CycleAccount &sm : r.sm_accounting)
        per_sm.push(toJson(sm));
    acct["per_sm"] = per_sm;
    v["cycle_accounting"] = acct;
    return v;
}

// ---------------------------------------------------------------------
// Manifest and record files
// ---------------------------------------------------------------------

std::string
gitDescribe()
{
    return SMS_GIT_DESCRIBE;
}

std::string
isoTimestampUtc()
{
    std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
    gmtime_r(&now, &tm_utc);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
    return buf;
}

JsonValue
makeRunManifest(const std::string &figure, const std::string &profile)
{
    JsonValue v = JsonValue::object();
    v["schema"] = "sms-bench-1";
    v["figure"] = figure;
    v["git"] = gitDescribe();
    v["timestamp"] = isoTimestampUtc();
    v["profile"] = profile;
    return v;
}

bool
appendJsonLine(const std::string &path, const JsonValue &record,
               std::string &error)
{
    std::FILE *f = std::fopen(path.c_str(), "a");
    if (!f) {
        error = strprintf("cannot open '%s' for append", path.c_str());
        return false;
    }
    std::string line = record.dump(0);
    line += '\n';
    size_t written = std::fwrite(line.data(), 1, line.size(), f);
    std::fclose(f);
    if (written != line.size()) {
        error = strprintf("short write to '%s'", path.c_str());
        return false;
    }
    error.clear();
    return true;
}

bool
readJsonLines(const std::string &path, std::vector<JsonValue> &out,
              std::string &error)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f) {
        error = strprintf("cannot open '%s'", path.c_str());
        return false;
    }
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    out.clear();
    size_t pos = 0;
    int line_no = 0;
    while (pos < text.size()) {
        size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            nl = text.size();
        ++line_no;
        std::string line = text.substr(pos, nl - pos);
        pos = nl + 1;
        bool blank = true;
        for (char c : line)
            if (!std::isspace(static_cast<unsigned char>(c)))
                blank = false;
        if (blank)
            continue;
        JsonValue record;
        std::string parse_error;
        if (!JsonValue::parse(line, record, parse_error)) {
            error = strprintf("%s:%d: %s", path.c_str(), line_no,
                              parse_error.c_str());
            return false;
        }
        out.push_back(std::move(record));
    }
    if (out.empty()) {
        error = strprintf("'%s' holds no records", path.c_str());
        return false;
    }
    error.clear();
    return true;
}

// ---------------------------------------------------------------------
// Record comparison (the bench_compare gate)
// ---------------------------------------------------------------------

namespace {

double
relDelta(double a, double b)
{
    double mag = std::max(std::fabs(a), std::fabs(b));
    return mag > 0.0 ? std::fabs(a - b) / mag : 0.0;
}

/** True when array elements look like sweep cells. */
bool
isCellArray(const JsonValue &v)
{
    return v.isArray() && v.size() > 0 && v.at(0).isObject() &&
           v.at(0).find("scene") && v.at(0).find("config");
}

std::string
cellKey(const std::string &results_key, const JsonValue &cell)
{
    return strprintf("%s/%s#%d:%s@%lld", results_key.c_str(),
                     cell.stringOr("scene", "?").c_str(),
                     static_cast<int>(cell.numberOr("config_index", -1)),
                     cell.stringOr("config", "?").c_str(),
                     static_cast<long long>(
                         cell.numberOr("l1_override", 0)));
}

void
collectCells(const JsonValue &record,
             std::map<std::string, const JsonValue *> &cells)
{
    for (const auto &member : record.members()) {
        if (!isCellArray(member.second))
            continue;
        for (const JsonValue &cell : member.second.elements())
            cells[cellKey(member.first, cell)] = &cell;
    }
}

void
compareMetric(const std::string &where, const char *metric,
              const JsonValue &a, const JsonValue &b, double eps,
              std::vector<CompareIssue> &issues)
{
    const JsonValue *va = a.find(metric);
    const JsonValue *vb = b.find(metric);
    if (!va || !vb || !va->isNumber() || !vb->isNumber())
        return; // metric absent (older record) — nothing to gate
    double rel = relDelta(va->asNumber(), vb->asNumber());
    if (rel > eps)
        issues.push_back(
            {where, metric, va->asNumber(), vb->asNumber(), rel});
}

/**
 * Two records can pair cells under identical scene/config keys and
 * still disagree on the traversal-variant axes behind those keys —
 * e.g. one file's column was recorded as a stackless run and the
 * other's as a predictor run. Every numeric delta downstream would
 * then be diagnosed against the wrong baseline, so each diverging
 * axis is reported as its own issue naming the two human-readable
 * values ("sl" vs "pred") rather than leaving the reader to decode
 * variant digests. Axes absent from both cells (the default variant
 * suppresses them) compare equal.
 */
void
compareVariantAxes(const std::string &where, const JsonValue &cell_a,
                   const JsonValue &cell_b,
                   std::vector<CompareIssue> &issues)
{
    for (const char *axis :
         {"architecture", "node_layout", "ray_order"}) {
        std::string va = cell_a.stringOr(axis, "");
        std::string vb = cell_b.stringOr(axis, "");
        if (va == vb)
            continue;
        CompareIssue issue;
        issue.where = where;
        issue.metric = strprintf("variant:%s '%s' vs '%s'", axis,
                                 va.empty() ? "default" : va.c_str(),
                                 vb.empty() ? "default" : vb.c_str());
        issues.push_back(std::move(issue));
    }
}

/**
 * Compare the per-class traffic counters of a cell pair: the
 * counters.{l1,l2}.class_misses objects (Node/Primitive/Stack splits).
 * Every diverging class yields its own issue with the signed delta
 * b - a — a layout change typically moves one class down and another
 * up, and reporting only the first diverging class hides the shape of
 * the shift. Classes absent from either record (older files) are
 * skipped like any absent metric.
 */
void
compareClassTraffic(const std::string &where, const JsonValue &cell_a,
                    const JsonValue &cell_b, double eps,
                    std::vector<CompareIssue> &issues)
{
    for (const char *level : {"l1", "l2"}) {
        auto classes_of =
            [&](const JsonValue &cell) -> const JsonValue * {
            const JsonValue *counters = cell.find("counters");
            const JsonValue *lvl =
                counters ? counters->find(level) : nullptr;
            const JsonValue *cls =
                lvl ? lvl->find("class_misses") : nullptr;
            return cls && cls->isObject() ? cls : nullptr;
        };
        const JsonValue *cls_a = classes_of(cell_a);
        const JsonValue *cls_b = classes_of(cell_b);
        if (!cls_a || !cls_b)
            continue;
        for (const auto &[name, va] : cls_a->members()) {
            const JsonValue *vb = cls_b->find(name);
            if (!vb || !va.isNumber() || !vb->isNumber())
                continue;
            double da = va.asNumber();
            double db = vb->asNumber();
            double rel = relDelta(da, db);
            if (rel > eps) {
                CompareIssue issue{where,
                                   std::string(level) +
                                       "_class_misses:" + name,
                                   da, db, rel};
                issue.signed_delta = db - da;
                issues.push_back(std::move(issue));
            }
        }
    }
}

/**
 * Re-check one cycle_accounting tree's conservation invariant at zero
 * epsilon: non-idle leaves sum to warp_active_cycles, and when a slot
 * budget is present every leaf sums to slot_cycles.
 */
void
checkAccountingConservation(const std::string &where, const JsonValue &acct,
                            std::vector<CompareIssue> &issues)
{
    const JsonValue *leaves = acct.find("leaves");
    if (!leaves || !leaves->isObject())
        return;
    double active = 0.0;
    double total = 0.0;
    for (const auto &[name, count] : leaves->members()) {
        if (!count.isNumber())
            continue;
        total += count.asNumber();
        // Future leaves unknown to this binary still participate; only
        // the idle subtree sits outside warp-active time.
        if (name.rfind("idle.", 0) != 0)
            active += count.asNumber();
    }
    double warp_active = acct.numberOr("warp_active_cycles", active);
    if (active != warp_active)
        issues.push_back({where, "accounting-conservation", active,
                          warp_active, relDelta(active, warp_active)});
    double slots = acct.numberOr("slot_cycles", 0.0);
    if (slots > 0.0 && total != slots)
        issues.push_back({where, "accounting-slot-budget", total, slots,
                          relDelta(total, slots)});
}

/**
 * Gate the cycle_accounting blocks of a cell pair: conservation on each
 * record separately (exact), leaf totals against accounting_eps. Cells
 * without the block (older records) are skipped like any absent metric.
 */
void
compareAccounting(const std::string &where, const JsonValue &cell_a,
                  const JsonValue &cell_b, const CompareOptions &options,
                  std::vector<CompareIssue> &issues)
{
    auto block_of = [](const JsonValue &cell) -> const JsonValue * {
        const JsonValue *counters = cell.find("counters");
        return counters ? counters->find("cycle_accounting") : nullptr;
    };
    const JsonValue *acct_a = block_of(cell_a);
    const JsonValue *acct_b = block_of(cell_b);
    if (acct_a)
        checkAccountingConservation(where + " (a)", *acct_a, issues);
    if (acct_b)
        checkAccountingConservation(where + " (b)", *acct_b, issues);
    if (!acct_a || !acct_b)
        return;

    double wa = acct_a->numberOr("warp_active_cycles", 0.0);
    double wb = acct_b->numberOr("warp_active_cycles", 0.0);
    if (relDelta(wa, wb) > options.accounting_eps)
        issues.push_back({where, "accounting:warp_active_cycles", wa, wb,
                          relDelta(wa, wb)});
    const JsonValue *leaves_a = acct_a->find("leaves");
    const JsonValue *leaves_b = acct_b->find("leaves");
    if (!leaves_a || !leaves_b || !leaves_a->isObject() ||
        !leaves_b->isObject())
        return;
    for (const auto &[name, va] : leaves_a->members()) {
        const JsonValue *vb = leaves_b->find(name);
        if (!vb || !va.isNumber() || !vb->isNumber())
            continue;
        double rel = relDelta(va.asNumber(), vb->asNumber());
        if (rel > options.accounting_eps)
            issues.push_back({where, "accounting:" + name, va.asNumber(),
                              vb->asNumber(), rel});
    }
}

} // namespace

CompareStatus
compareBenchRecords(const JsonValue &a, const JsonValue &b,
                    const CompareOptions &options,
                    std::vector<CompareIssue> &issues, std::string &error)
{
    if (!a.isObject() || !b.isObject()) {
        error = "records must be JSON objects";
        return CompareStatus::Error;
    }
    std::string schema_a = a.stringOr("schema", "");
    std::string schema_b = b.stringOr("schema", "");
    if (schema_a != "sms-bench-1" || schema_b != "sms-bench-1") {
        error = strprintf("unsupported schema ('%s' vs '%s')",
                          schema_a.c_str(), schema_b.c_str());
        return CompareStatus::SchemaMismatch;
    }
    if (a.stringOr("figure", "") != b.stringOr("figure", "")) {
        error = strprintf("comparing different figures ('%s' vs '%s')",
                          a.stringOr("figure", "").c_str(),
                          b.stringOr("figure", "").c_str());
        return CompareStatus::SchemaMismatch;
    }
    // A record with a "shard" block is one worker's partial grid:
    // its norms are null and most cells are absent, so comparing it
    // against a full (single-process or merged) record would drown in
    // bogus coverage issues. Both-partial is allowed — that compares
    // the same shard across runs.
    bool shard_a = a.find("shard") != nullptr;
    bool shard_b = b.find("shard") != nullptr;
    if (shard_a != shard_b) {
        error = strprintf("record %s is an unmerged shard-worker "
                          "record (merge with sweep_merge or "
                          "--shard-workers first)",
                          shard_a ? "a" : "b");
        return CompareStatus::SchemaMismatch;
    }

    std::map<std::string, const JsonValue *> cells_a, cells_b;
    collectCells(a, cells_a);
    collectCells(b, cells_b);

    for (const auto &[key, cell_a] : cells_a) {
        auto it = cells_b.find(key);
        if (it == cells_b.end()) {
            if (!options.allow_missing)
                issues.push_back({key, "missing-in-b", 0, 0, 0});
            continue;
        }
        const JsonValue &cell_b = *it->second;
        compareVariantAxes(key, *cell_a, cell_b, issues);
        compareMetric(key, "ipc", *cell_a, cell_b, options.ipc_eps,
                      issues);
        compareMetric(key, "norm_ipc", *cell_a, cell_b, options.ipc_eps,
                      issues);
        compareMetric(key, "offchip_accesses", *cell_a, cell_b,
                      options.traffic_eps, issues);
        compareMetric(key, "norm_offchip", *cell_a, cell_b,
                      options.traffic_eps, issues);
        compareClassTraffic(key, *cell_a, cell_b, options.traffic_eps,
                            issues);
        if (options.check_accounting)
            compareAccounting(key, *cell_a, cell_b, options, issues);
    }
    if (!options.allow_missing) {
        for (const auto &[key, cell_b] : cells_b) {
            (void)cell_b;
            if (!cells_a.count(key))
                issues.push_back({key, "missing-in-a", 0, 0, 0});
        }
    }

    // Summary means (one row per config column).
    const JsonValue *sum_a = a.find("summary");
    const JsonValue *sum_b = b.find("summary");
    if (sum_a && sum_b && sum_a->isArray() && sum_b->isArray()) {
        std::map<std::string, const JsonValue *> rows_b;
        for (const JsonValue &row : sum_b->elements())
            rows_b[cellKey("summary", row)] = &row;
        for (const JsonValue &row : sum_a->elements()) {
            auto it = rows_b.find(cellKey("summary", row));
            if (it == rows_b.end())
                continue;
            compareVariantAxes(cellKey("summary", row), row,
                               *it->second, issues);
            compareMetric(cellKey("summary", row), "mean_norm_ipc", row,
                          *it->second, options.ipc_eps, issues);
            compareMetric(cellKey("summary", row), "mean_norm_offchip",
                          row, *it->second, options.traffic_eps, issues);
        }
    }

    error.clear();
    return CompareStatus::Ok;
}

} // namespace sms
