/**
 * @file
 * Cycle-accounting leaf names, conservation helpers and JSON view.
 */

#include "src/stats/cycle_accounting.hpp"

#include <cstdlib>
#include <cstring>

#include "src/stats/report.hpp"
#include "src/util/check.hpp"

namespace sms {

namespace {

const char *const kLeafNames[kCycleLeafCount] = {
    "issue",
    "intersect",
    "stall.stack.spill",
    "stall.stack.refill",
    "stall.stack.borrow_chain",
    "stall.stack.forced_flush",
    "stall.mem.l1_miss",
    "stall.mem.l2_miss",
    "stall.mem.dram_queue",
    "stall.shmem.bank_conflict",
    "stall.arch.backtrack",
    "stall.arch.predictor",
    "idle.done",
};

/**
 * The stall.arch.* leaves only exist for the non-default traversal
 * architectures; they are emitted conditionally so default-architecture
 * records (including the checked-in goldens) stay byte-identical.
 */
bool
leafEmittedWhenZero(int idx)
{
    return idx != static_cast<int>(CycleLeaf::StallArchBacktrack) &&
           idx != static_cast<int>(CycleLeaf::StallArchPredictor);
}

} // namespace

const char *
cycleLeafName(CycleLeaf leaf)
{
    int idx = static_cast<int>(leaf);
    SMS_ASSERT(idx >= 0 && idx < kCycleLeafCount,
               "cycle leaf %d out of range", idx);
    return kLeafNames[idx];
}

int
cycleLeafFromName(const std::string &name)
{
    for (int i = 0; i < kCycleLeafCount; ++i)
        if (name == kLeafNames[i])
            return i;
    return -1;
}

bool
cycleAccountingChecksEnabled()
{
    static const bool enabled = [] {
        if (const char *env = std::getenv("SMS_ACCOUNTING_CHECK"))
            return std::strcmp(env, "0") != 0;
#ifdef NDEBUG
        return false;
#else
        return true;
#endif
    }();
    return enabled;
}

uint64_t
CycleAccount::activeSum() const
{
    uint64_t sum = 0;
    for (int i = 0; i < kCycleLeafCount; ++i)
        if (!cycleLeafIsIdle(static_cast<CycleLeaf>(i)))
            sum += leaves[i];
    return sum;
}

uint64_t
CycleAccount::totalSum() const
{
    uint64_t sum = 0;
    for (int i = 0; i < kCycleLeafCount; ++i)
        sum += leaves[i];
    return sum;
}

void
CycleAccount::merge(const CycleAccount &o)
{
    for (int i = 0; i < kCycleLeafCount; ++i)
        leaves[i] += o.leaves[i];
    warp_active_cycles += o.warp_active_cycles;
    slot_cycles += o.slot_cycles;
}

JsonValue
toJson(const CycleAccount &account)
{
    JsonValue v = JsonValue::object();
    v["version"] = kCycleAccountingVersion;
    v["warp_active_cycles"] = account.warp_active_cycles;
    v["slot_cycles"] = account.slot_cycles;
    JsonValue leaves = JsonValue::object();
    for (int i = 0; i < kCycleLeafCount; ++i) {
        if (account.leaves[i] == 0 && !leafEmittedWhenZero(i))
            continue;
        leaves[kLeafNames[i]] = account.leaves[i];
    }
    v["leaves"] = leaves;
    return v;
}

} // namespace sms
