/**
 * @file
 * Metrics registry and sampler (see metrics.hpp for the model).
 */

#include "src/stats/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unistd.h>

#include "src/stats/report.hpp"
#include "src/util/check.hpp"
#include "src/util/parallel.hpp"

namespace sms {

namespace detail {
std::atomic<uint32_t> g_metrics_on{0};
} // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

/** Registry + sampler state, all behind one mutex except the metric
 *  cells themselves (which are the lock-free hot path). */
struct MetricsState
{
    std::mutex mutex;
    std::map<std::string, std::unique_ptr<MetricCounter>> counters;
    std::map<std::string, std::unique_ptr<MetricGauge>> gauges;
    std::map<std::string, std::unique_ptr<MetricHistogram>> histograms;
    std::vector<MetricsCollector> collectors;
    std::vector<MetricsSampleHook> hooks;

    // Sampler.
    std::thread sampler;
    std::condition_variable wake;
    std::mutex sampler_mutex;
    bool stop = false;
    MetricsConfig config;
    bool configured = false;
    bool env_checked = false;
    bool atexit_registered = false;
    Clock::time_point epoch = Clock::now();
    uint64_t seq = 0;
    uint64_t samples = 0;

    // Serializes flushes (sampler tick vs metricsFlushNow vs exit).
    std::mutex flush_mutex;
};

MetricsState &
state()
{
    static MetricsState *s = new MetricsState; // never destroyed: the
    return *s; // sampler and atexit hooks may outlive static dtors
}

uint32_t
intervalFromEnv()
{
    const char *env = std::getenv("SMS_METRICS_INTERVAL_MS");
    if (!env || !*env)
        return 250;
    char *end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (!end || *end || v < 1 || v > 3600000) {
        warn("SMS_METRICS_INTERVAL_MS='%s' is not an interval in "
             "1..3600000 ms; using 250",
             env);
        return 250;
    }
    return static_cast<uint32_t>(v);
}

/** Take a snapshot (seq/wall stamped under the registry mutex). */
MetricsSnapshot
takeSnapshot(MetricsState &s)
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(s.mutex);
    snap.seq = ++s.seq;
    ++s.samples;
    snap.wall_ms = std::chrono::duration<double, std::milli>(
                       Clock::now() - s.epoch)
                       .count();
    snap.pid = static_cast<long>(::getpid());
    for (const auto &c : s.counters)
        snap.counters.emplace_back(c.first, c.second->value());
    for (const auto &g : s.gauges)
        snap.gauges.emplace_back(g.first, g.second->value());
    for (const auto &h : s.histograms) {
        MetricsSnapshot::Hist hist;
        hist.name = h.first;
        hist.bounds = h.second->bounds();
        hist.counts = h.second->counts();
        snap.histograms.push_back(std::move(hist));
    }
    for (const MetricsCollector &collector : s.collectors)
        collector([&snap](const char *name, uint64_t value) {
            snap.counters.emplace_back(name, value);
        });
    std::sort(snap.counters.begin(), snap.counters.end());
    return snap;
}

/** One sampler tick / forced flush: write the line, run the hooks. */
void
flushOnce(MetricsState &s)
{
    std::string path;
    std::vector<MetricsSampleHook> hooks;
    {
        std::lock_guard<std::mutex> lock(s.sampler_mutex);
        path = s.config.path;
    }
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        hooks = s.hooks;
    }
    std::lock_guard<std::mutex> flush_lock(s.flush_mutex);
    MetricsSnapshot snap = takeSnapshot(s);
    if (!path.empty()) {
        std::string error;
        if (!appendJsonLine(path, toJson(snap), error))
            warn("metrics sample not written: %s", error.c_str());
    }
    for (const MetricsSampleHook &hook : hooks)
        hook(snap);
}

void
samplerMain()
{
    MetricsState &s = state();
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(s.sampler_mutex);
            s.wake.wait_for(
                lock, std::chrono::milliseconds(s.config.interval_ms),
                [&] { return s.stop; });
            if (s.stop)
                return;
        }
        flushOnce(s);
    }
}

/** parallelFor occupancy hooks (installed on first configure). */
void
parallelBeginHook(unsigned threads, size_t n)
{
    static MetricGauge &active = metricGauge("parallel.workers_active");
    static MetricCounter &regions = metricCounter("parallel.regions");
    static MetricCounter &iters = metricCounter("parallel.iterations");
    active.add(static_cast<int64_t>(threads));
    regions.add(1);
    iters.add(n);
}

void
parallelEndHook(unsigned threads, size_t)
{
    static MetricGauge &active = metricGauge("parallel.workers_active");
    active.add(-static_cast<int64_t>(threads));
}

void
stopSamplerLocked(MetricsState &s, std::unique_lock<std::mutex> &lock)
{
    if (!s.sampler.joinable())
        return;
    s.stop = true;
    s.wake.notify_all();
    lock.unlock();
    s.sampler.join();
    lock.lock();
    s.sampler = std::thread();
    s.stop = false;
}

} // namespace

MetricHistogram::MetricHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1)
{
    SMS_ASSERT(!bounds_.empty(), "histogram needs at least one bound");
    for (size_t i = 1; i < bounds_.size(); ++i)
        SMS_ASSERT(bounds_[i - 1] < bounds_[i],
                   "histogram bounds must be strictly increasing");
    for (auto &c : counts_)
        c.store(0, std::memory_order_relaxed);
}

void
MetricHistogram::observe(double v)
{
    if (!metricsOn())
        return;
    size_t bucket = static_cast<size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), v) -
        bounds_.begin());
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::vector<uint64_t>
MetricHistogram::counts() const
{
    std::vector<uint64_t> out(counts_.size());
    for (size_t i = 0; i < counts_.size(); ++i)
        out[i] = counts_[i].load(std::memory_order_relaxed);
    return out;
}

MetricCounter &
metricCounter(const std::string &name)
{
    MetricsState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    auto &slot = s.counters[name];
    if (!slot)
        slot = std::make_unique<MetricCounter>();
    return *slot;
}

MetricGauge &
metricGauge(const std::string &name)
{
    MetricsState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    auto &slot = s.gauges[name];
    if (!slot)
        slot = std::make_unique<MetricGauge>();
    return *slot;
}

MetricHistogram &
metricHistogram(const std::string &name,
                const std::vector<double> &bounds)
{
    MetricsState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    auto &slot = s.histograms[name];
    if (!slot)
        slot = std::make_unique<MetricHistogram>(bounds);
    else if (slot->bounds() != bounds)
        fatal("metric histogram '%s' re-registered with different "
              "bounds",
              name.c_str());
    return *slot;
}

uint64_t
MetricsSnapshot::counterOr(const std::string &name,
                           uint64_t fallback) const
{
    auto it = std::lower_bound(
        counters.begin(), counters.end(), name,
        [](const auto &entry, const std::string &key) {
            return entry.first < key;
        });
    if (it != counters.end() && it->first == name)
        return it->second;
    return fallback;
}

void
metricsAddCollector(MetricsCollector collector)
{
    MetricsState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.collectors.push_back(std::move(collector));
}

void
metricsAddSampleHook(MetricsSampleHook hook)
{
    MetricsState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.hooks.push_back(std::move(hook));
}

void
metricsConfigure(const MetricsConfig &config)
{
    MetricsState &s = state();
    std::unique_lock<std::mutex> lock(s.sampler_mutex);
    if (s.configured && s.sampler.joinable() &&
        s.config.path == config.path &&
        s.config.interval_ms == config.interval_ms)
        return;
    stopSamplerLocked(s, lock);
    s.config = config;
    if (s.config.interval_ms < 1)
        s.config.interval_ms = 1;
    if (!s.configured)
        s.epoch = Clock::now();
    s.configured = true;
    detail::g_metrics_on.store(1, std::memory_order_relaxed);
    setParallelForHooks(parallelBeginHook, parallelEndHook);
    s.sampler = std::thread(samplerMain);
    if (!s.atexit_registered) {
        s.atexit_registered = true;
        std::atexit([] { metricsShutdown(); });
    }
}

void
metricsInitFromEnv()
{
    MetricsState &s = state();
    {
        std::lock_guard<std::mutex> lock(s.sampler_mutex);
        if (s.env_checked)
            return;
        s.env_checked = true;
    }
    const char *path = std::getenv("SMS_METRICS");
    if (!path || !*path)
        return;
    MetricsConfig config;
    config.path = path;
    config.interval_ms = intervalFromEnv();
    metricsConfigure(config);
}

void
metricsEnsureSampler()
{
    MetricsState &s = state();
    {
        std::lock_guard<std::mutex> lock(s.sampler_mutex);
        if (s.configured && s.sampler.joinable())
            return;
    }
    MetricsConfig config;
    config.interval_ms = intervalFromEnv();
    metricsConfigure(config);
}

bool
metricsActive()
{
    MetricsState &s = state();
    std::lock_guard<std::mutex> lock(s.sampler_mutex);
    return s.configured &&
           detail::g_metrics_on.load(std::memory_order_relaxed) != 0;
}

MetricsStats
metricsStats()
{
    MetricsState &s = state();
    MetricsStats out;
    {
        std::lock_guard<std::mutex> lock(s.sampler_mutex);
        out.enabled = s.configured;
        out.path = s.config.path;
        out.interval_ms = s.config.interval_ms;
    }
    std::lock_guard<std::mutex> lock(s.mutex);
    out.samples = s.samples;
    return out;
}

void
metricsFlushNow()
{
    MetricsState &s = state();
    {
        std::lock_guard<std::mutex> lock(s.sampler_mutex);
        if (!s.configured ||
            detail::g_metrics_on.load(std::memory_order_relaxed) == 0)
            return;
    }
    flushOnce(s);
}

void
metricsShutdown()
{
    MetricsState &s = state();
    std::unique_lock<std::mutex> lock(s.sampler_mutex);
    if (!s.configured)
        return;
    bool was_on =
        detail::g_metrics_on.load(std::memory_order_relaxed) != 0;
    stopSamplerLocked(s, lock);
    s.configured = false;
    lock.unlock();
    if (was_on)
        flushOnce(s); // final sample while the gate is still on
    detail::g_metrics_on.store(0, std::memory_order_relaxed);
}

MetricsSnapshot
metricsSnapshot()
{
    return takeSnapshot(state());
}

JsonValue
toJson(const MetricsSnapshot &snapshot)
{
    JsonValue line = JsonValue::object();
    line["schema"] = kMetricsSchema;
    line["pid"] = static_cast<long long>(snapshot.pid);
    line["seq"] = snapshot.seq;
    line["wall_ms"] = snapshot.wall_ms;
    JsonValue counters = JsonValue::object();
    for (const auto &c : snapshot.counters)
        counters[c.first] = c.second;
    line["counters"] = std::move(counters);
    JsonValue gauges = JsonValue::object();
    for (const auto &g : snapshot.gauges)
        gauges[g.first] = static_cast<long long>(g.second);
    line["gauges"] = std::move(gauges);
    JsonValue hists = JsonValue::object();
    for (const auto &h : snapshot.histograms) {
        JsonValue hist = JsonValue::object();
        JsonValue bounds = JsonValue::array();
        for (double b : h.bounds)
            bounds.push(JsonValue(b));
        hist["bounds"] = std::move(bounds);
        JsonValue counts = JsonValue::array();
        for (uint64_t c : h.counts)
            counts.push(JsonValue(c));
        hist["counts"] = std::move(counts);
        hists[h.name] = std::move(hist);
    }
    line["histograms"] = std::move(hists);
    return line;
}

bool
validateMetricsSeries(const std::vector<JsonValue> &lines,
                      std::string &error)
{
    if (lines.empty()) {
        error = "metrics series is empty";
        return false;
    }
    double pid = -1;
    uint64_t last_seq = 0;
    double last_wall = -1.0;
    std::map<std::string, uint64_t> last_counters;
    for (size_t i = 0; i < lines.size(); ++i) {
        const JsonValue &line = lines[i];
        auto where = [&](const char *what) {
            error = strprintf("line %zu: %s", i + 1, what);
        };
        if (line.stringOr("schema", "") != kMetricsSchema) {
            where("schema is not sms-metrics-1");
            return false;
        }
        double line_pid = line.numberOr("pid", -1);
        if (pid < 0)
            pid = line_pid;
        else if (line_pid != pid) {
            where("mixes samples from different pids (shard workers "
                  "must write distinct series)");
            return false;
        }
        uint64_t seq =
            static_cast<uint64_t>(line.numberOr("seq", 0));
        if (seq <= last_seq && i > 0) {
            where("seq is not strictly increasing");
            return false;
        }
        if (seq == 0) {
            where("seq is missing or zero");
            return false;
        }
        last_seq = seq;
        double wall = line.numberOr("wall_ms", -1.0);
        if (wall < 0 || wall < last_wall) {
            where("wall_ms is missing or decreasing");
            return false;
        }
        last_wall = wall;
        const JsonValue *counters = line.find("counters");
        if (!counters || !counters->isObject()) {
            where("counters object is missing");
            return false;
        }
        for (const auto &m : counters->members()) {
            if (!m.second.isNumber()) {
                where("counter value is not a number");
                return false;
            }
            uint64_t v = m.second.asU64();
            auto it = last_counters.find(m.first);
            if (it != last_counters.end() && v < it->second) {
                error = strprintf("line %zu: counter '%s' went "
                                  "backwards (%llu -> %llu)",
                                  i + 1, m.first.c_str(),
                                  static_cast<unsigned long long>(
                                      it->second),
                                  static_cast<unsigned long long>(v));
                return false;
            }
            last_counters[m.first] = v;
        }
    }
    return true;
}

} // namespace sms
