/**
 * @file
 * Machine-readable results: a dependency-free JSON value type with a
 * serializer and parser, JSON views of every simulator statistics
 * struct, the per-run manifest, JSONL record files, and the record
 * comparison used by the bench_compare regression gate.
 *
 * Every bench binary appends one record per run (schema "sms-bench-1")
 * so the perf trajectory of the sweeps is diffable by CI instead of
 * living only in human-readable tables.
 */

#ifndef SMS_STATS_REPORT_HPP
#define SMS_STATS_REPORT_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sms {

class Histogram;
struct LevelStats;
struct DramStats;
struct SharedMemStats;
struct WarpStackStats;
struct JobCounters;
struct StackConfig;
struct SimResult;

/**
 * A JSON document node. Objects preserve insertion order so emitted
 * records are stable and diffable line-by-line.
 */
class JsonValue
{
  public:
    enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;
    JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
    JsonValue(double v) : kind_(Kind::Number), num_(v) {}
    JsonValue(int v) : kind_(Kind::Number), num_(v) {}
    JsonValue(unsigned v) : kind_(Kind::Number), num_(v) {}
    JsonValue(long v) : kind_(Kind::Number), num_(static_cast<double>(v)) {}
    JsonValue(unsigned long v)
        : kind_(Kind::Number), num_(static_cast<double>(v))
    {}
    JsonValue(long long v)
        : kind_(Kind::Number), num_(static_cast<double>(v))
    {}
    JsonValue(unsigned long long v)
        : kind_(Kind::Number), num_(static_cast<double>(v))
    {}
    JsonValue(const char *s) : kind_(Kind::String), str_(s) {}
    JsonValue(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

    static JsonValue
    array()
    {
        JsonValue v;
        v.kind_ = Kind::Array;
        return v;
    }

    static JsonValue
    object()
    {
        JsonValue v;
        v.kind_ = Kind::Object;
        return v;
    }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { return bool_; }
    double asNumber() const { return num_; }
    uint64_t asU64() const { return static_cast<uint64_t>(num_); }
    const std::string &asString() const { return str_; }

    /** Append to an array (converts a Null node into an array). */
    void push(JsonValue v);

    /** Array/object element count (0 for scalars). */
    size_t size() const;

    /** Array element access (fatal on out-of-range). */
    const JsonValue &at(size_t i) const;

    /**
     * Object member access; inserts a Null member when missing
     * (converts a Null node into an object).
     */
    JsonValue &operator[](const std::string &key);

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Number lookup helper: member value or @p fallback. */
    double numberOr(const std::string &key, double fallback) const;

    /** String lookup helper: member value or @p fallback. */
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;

    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return obj_;
    }

    const std::vector<JsonValue> &elements() const { return arr_; }

    /**
     * Serialize. @p indent 0 renders one compact line (the JSONL form);
     * positive values pretty-print with that many spaces per level.
     * Non-finite numbers render as null (JSON has no NaN/Inf).
     */
    std::string dump(int indent = 0) const;

    /** Parse a JSON document. @return false with @p error set on failure. */
    static bool parse(const std::string &text, JsonValue &out,
                      std::string &error);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> arr_;
    std::vector<std::pair<std::string, JsonValue>> obj_;
};

/** JSON views of the statistics structs (field names match the code). */
JsonValue toJson(const Histogram &h);
JsonValue toJson(const LevelStats &s);
JsonValue toJson(const DramStats &s);
JsonValue toJson(const SharedMemStats &s);
JsonValue toJson(const WarpStackStats &s);
JsonValue toJson(const JobCounters &s);
/** Stack-configuration knobs (the caller adds the display name). */
JsonValue toJson(const StackConfig &c);
/** Full per-run counter dump of one simulated frame. */
JsonValue toJson(const SimResult &r);

/** Compiled-in `git describe` of the build ("unknown" outside git). */
std::string gitDescribe();

/** Current UTC time as ISO-8601 ("2025-08-06T12:34:56Z"). */
std::string isoTimestampUtc();

/**
 * Start a schema "sms-bench-1" record: schema/figure/git/timestamp plus
 * the geometry profile name. The caller fills results and wall time.
 */
JsonValue makeRunManifest(const std::string &figure,
                          const std::string &profile);

/** Append @p record to @p path as one JSONL line (creates the file). */
bool appendJsonLine(const std::string &path, const JsonValue &record,
                    std::string &error);

/** Read every JSONL record of @p path. */
bool readJsonLines(const std::string &path, std::vector<JsonValue> &out,
                   std::string &error);

/** Tolerances of the bench_compare regression gate. */
struct CompareOptions
{
    /** Max relative IPC delta per cell and per summary mean. */
    double ipc_eps = 0.02;
    /** Max relative off-chip / traffic-counter delta per cell. */
    double traffic_eps = 0.05;
    /** Accept cells present in only one record. */
    bool allow_missing = false;
    /**
     * Also gate the per-cell cycle_accounting blocks: conservation is
     * re-checked at zero epsilon on each record separately, and the
     * leaf totals are compared within accounting_eps.
     */
    bool check_accounting = false;
    /** Max relative per-leaf delta when check_accounting is set. */
    double accounting_eps = 0.02;
};

/** One out-of-tolerance delta (or a structural mismatch). */
struct CompareIssue
{
    std::string where;  ///< cell key ("scene#cfg:NAME@l1") or context
    std::string metric; ///< "ipc", "offchip_accesses", "missing", ...
    double a = 0.0;
    double b = 0.0;
    double rel = 0.0; ///< relative delta |a-b|/max(|a|,|b|)
    /**
     * Signed delta b - a, set for the per-class traffic metrics
     * ("l1_class_misses:node", ...) where the direction of the
     * divergence matters for diagnosis.
     */
    double signed_delta = 0.0;
};

/**
 * Outcome of a record comparison, distinguishing "the records cannot be
 * compared" failure modes so callers (bench_compare) can exit-code them
 * apart from value regressions.
 */
enum class CompareStatus
{
    Ok,             ///< compared; tolerance violations are in `issues`
    SchemaMismatch, ///< different schema versions or figures
    Error,          ///< structurally broken records
};

/**
 * Compare two bench records cell-by-cell.
 *
 * Scans every top-level array member whose elements carry "scene" and
 * "config" (the "results*" arrays) plus the "summary" means. @return
 * CompareStatus::Ok when the records were comparable (tolerance
 * violations are appended to @p issues), otherwise the failure kind
 * with @p error set.
 */
CompareStatus compareBenchRecords(const JsonValue &a, const JsonValue &b,
                                  const CompareOptions &options,
                                  std::vector<CompareIssue> &issues,
                                  std::string &error);

} // namespace sms

#endif // SMS_STATS_REPORT_HPP
