/**
 * @file
 * Timeline tracer implementation: per-thread ring shards, track-name
 * registry, Chrome Trace Format exporter, and the per-category fold
 * shared by tools/trace_summarize and the tests.
 */

#include "src/stats/timeline.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "src/stats/report.hpp"

namespace sms {

#ifndef SMS_TIMELINE_DISABLED
namespace detail {
std::atomic<uint32_t> g_timeline_mask{0};
} // namespace detail
#endif

namespace {

/** One recorded event. Names are string literals, stored by pointer. */
struct Event
{
    const char *name = nullptr;
    const char *value_name = nullptr;
    uint64_t ts = 0;
    uint64_t dur = 0;
    uint64_t value = 0;
    uint32_t pid = 0;
    uint32_t tid = 0;
    TimelineCategory cat = TimelineCategory::Sweep;
    char ph = 'X';
};

/**
 * A single-producer ring of events. Exactly one thread writes (its
 * owner); the exporter reads only after emitters have quiesced.
 */
struct Shard
{
    std::vector<Event> ring;
    size_t cap = 0;
    uint64_t count = 0; ///< total events ever written

    void
    write(const Event &e)
    {
        if (ring.size() < cap)
            ring.push_back(e);
        else
            ring[count % cap] = e;
        ++count;
    }

    uint64_t kept() const { return std::min<uint64_t>(count, cap); }
    uint64_t dropped() const { return count - kept(); }
};

/** Tracer global state, all guarded by mu (except the mask). */
struct Tracer
{
    std::mutex mu;
    TimelineConfig config;
    bool enabled = false;
    bool exported = false;
    std::vector<std::unique_ptr<Shard>> shards;
    std::map<uint32_t, std::string> process_names;
    std::map<std::pair<uint32_t, uint32_t>, std::string> thread_names;
    uint32_t next_pid = 1;
    std::atomic<uint64_t> generation{0};
    std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
};

Tracer &
tracer()
{
    static Tracer t;
    return t;
}

/** Thread-local shard cache, invalidated by generation bumps. */
struct LocalShard
{
    Shard *shard = nullptr;
    uint64_t generation = 0;
};

thread_local LocalShard t_local;
thread_local TimelineContext t_context;

Shard *
shardForThisThread()
{
    Tracer &t = tracer();
    uint64_t gen = t.generation.load(std::memory_order_acquire);
    if (t_local.shard && t_local.generation == gen)
        return t_local.shard;
    std::lock_guard<std::mutex> lock(t.mu);
    if (!t.enabled)
        return nullptr;
    auto shard = std::make_unique<Shard>();
    shard->cap = std::max<size_t>(t.config.ring_capacity, 1);
    shard->ring.reserve(std::min<size_t>(shard->cap, 4096));
    t_local.shard = shard.get();
    t_local.generation = t.generation.load(std::memory_order_relaxed);
    t.shards.push_back(std::move(shard));
    return t_local.shard;
}

void
emit(const Event &e)
{
    Shard *shard = shardForThisThread();
    if (shard)
        shard->write(e);
}

void
setMask(uint32_t mask)
{
#ifndef SMS_TIMELINE_DISABLED
    detail::g_timeline_mask.store(mask, std::memory_order_relaxed);
#else
    (void)mask;
#endif
}

/** Export-at-exit so `SMS_TIMELINE=x ./bench` needs no explicit call. */
void
atexitExport()
{
    std::string error;
    if (!timelineExport(error))
        std::fprintf(stderr, "timeline: export failed: %s\n",
                     error.c_str());
}

void
appendEscaped(std::string &out, const std::string &s)
{
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

void
appendU64(std::string &out, uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    out += buf;
}

/** Serialize one event as a Chrome-trace traceEvents element. */
void
appendEventJson(std::string &out, const Event &e)
{
    out += "{\"ph\":\"";
    out += e.ph;
    out += "\",\"name\":\"";
    appendEscaped(out, e.name);
    out += "\",\"cat\":\"";
    out += timelineCategoryName(e.cat);
    out += "\",\"pid\":";
    appendU64(out, e.pid);
    out += ",\"tid\":";
    appendU64(out, e.tid);
    out += ",\"ts\":";
    appendU64(out, e.ts);
    if (e.ph == 'X') {
        out += ",\"dur\":";
        appendU64(out, e.dur);
    }
    if (e.ph == 'i')
        out += ",\"s\":\"t\"";
    if (e.ph == 'C') {
        out += ",\"args\":{\"value\":";
        appendU64(out, e.value);
        out += "}";
    } else if (e.value_name) {
        out += ",\"args\":{\"";
        appendEscaped(out, e.value_name);
        out += "\":";
        appendU64(out, e.value);
        out += "}";
    }
    out += "}";
}

/** Serialize a process_name / thread_name metadata event. */
void
appendMetaJson(std::string &out, const char *kind, uint32_t pid,
               const uint32_t *tid, const std::string &name)
{
    out += "{\"ph\":\"M\",\"name\":\"";
    out += kind;
    out += "\",\"pid\":";
    appendU64(out, pid);
    if (tid) {
        out += ",\"tid\":";
        appendU64(out, *tid);
    }
    out += ",\"args\":{\"name\":\"";
    appendEscaped(out, name);
    out += "\"}}";
}

} // namespace

const char *
timelineCategoryName(TimelineCategory cat)
{
    switch (cat) {
    case TimelineCategory::Sweep: return "sweep";
    case TimelineCategory::Sim: return "sim";
    case TimelineCategory::Stack: return "stack";
    case TimelineCategory::StackOps: return "stackops";
    case TimelineCategory::Cache: return "cache";
    case TimelineCategory::Dram: return "dram";
    case TimelineCategory::Shmem: return "shmem";
    }
    return "?";
}

bool
timelineParseCategories(const std::string &spec, uint32_t &mask,
                        std::string &error)
{
    if (spec.empty()) {
        mask = kTimelineDefaultCategories;
        return true;
    }
    uint32_t out = 0;
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string token = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (token.empty())
            continue;
        if (token == "all") {
            out |= kTimelineAllCategories;
            continue;
        }
        if (token == "default") {
            out |= kTimelineDefaultCategories;
            continue;
        }
        bool found = false;
        for (int i = 0; i < kTimelineCategoryCount; ++i) {
            TimelineCategory cat =
                static_cast<TimelineCategory>(1u << i);
            if (token == timelineCategoryName(cat)) {
                out |= static_cast<uint32_t>(cat);
                found = true;
                break;
            }
        }
        if (!found) {
            error = "unknown timeline category \"" + token +
                    "\" (expected " + timelineCategoryList(
                        kTimelineAllCategories) + ", all, or default)";
            return false;
        }
    }
    mask = out;
    return true;
}

std::string
timelineCategoryList(uint32_t mask)
{
    std::string out;
    for (int i = 0; i < kTimelineCategoryCount; ++i) {
        TimelineCategory cat = static_cast<TimelineCategory>(1u << i);
        if (!(mask & static_cast<uint32_t>(cat)))
            continue;
        if (!out.empty())
            out += ",";
        out += timelineCategoryName(cat);
    }
    return out;
}

TimelineContext &
timelineContext()
{
    return t_context;
}

void
timelineConfigure(const TimelineConfig &config)
{
    Tracer &t = tracer();
    {
        std::lock_guard<std::mutex> lock(t.mu);
        t.config = config;
        t.enabled = true;
        t.exported = false;
        t.shards.clear();
        t.process_names.clear();
        t.thread_names.clear();
        t.process_names[0] = "harness (wall-clock us)";
        t.next_pid = 1;
        t.generation.fetch_add(1, std::memory_order_release);
        t.epoch = std::chrono::steady_clock::now();
        static bool atexit_registered = false;
        if (!atexit_registered) {
            atexit_registered = true;
            std::atexit(atexitExport);
        }
    }
    setMask(config.categories);
}

void
timelineInitFromEnv()
{
    static std::once_flag once;
    std::call_once(once, [] {
        const char *env = std::getenv("SMS_TIMELINE");
        if (!env || !*env)
            return;
        std::string spec(env);
        TimelineConfig config;
        // Split "<path>[:categories]" on the last colon whose suffix
        // parses as a category list, so plain paths with colons work.
        size_t colon = spec.rfind(':');
        config.path = spec;
        if (colon != std::string::npos) {
            std::string error;
            uint32_t mask = 0;
            std::string tail = spec.substr(colon + 1);
            if (!tail.empty() &&
                timelineParseCategories(tail, mask, error)) {
                config.path = spec.substr(0, colon);
                config.categories = mask;
            }
        }
        if (const char *cap = std::getenv("SMS_TIMELINE_EVENTS")) {
            char *end = nullptr;
            unsigned long long v = std::strtoull(cap, &end, 10);
            if (end != cap && *end == '\0' && v > 0)
                config.ring_capacity = static_cast<size_t>(v);
            else
                std::fprintf(stderr,
                             "timeline: ignoring invalid "
                             "SMS_TIMELINE_EVENTS=%s\n",
                             cap);
        }
        timelineConfigure(config);
    });
}

void
timelineShutdown()
{
    setMask(0);
    Tracer &t = tracer();
    std::lock_guard<std::mutex> lock(t.mu);
    t.enabled = false;
    t.exported = true; // suppress the atexit export
    t.config = TimelineConfig{};
    t.config.path.clear();
    t.shards.clear();
    t.process_names.clear();
    t.thread_names.clear();
    t.next_pid = 1;
    t.generation.fetch_add(1, std::memory_order_release);
}

TimelineStats
timelineStats()
{
    Tracer &t = tracer();
    std::lock_guard<std::mutex> lock(t.mu);
    TimelineStats stats;
    stats.enabled = t.enabled;
    stats.categories = t.enabled ? t.config.categories : 0;
    stats.path = t.config.path;
    for (const auto &shard : t.shards) {
        stats.events_recorded += shard->count;
        stats.events_kept += shard->kept();
        stats.events_dropped += shard->dropped();
    }
    return stats;
}

uint32_t
timelineNewProcess(const std::string &name)
{
    Tracer &t = tracer();
    std::lock_guard<std::mutex> lock(t.mu);
    uint32_t pid = t.next_pid++;
    t.process_names[pid] = name;
    return pid;
}

void
timelineNameThread(uint32_t pid, uint32_t tid, const std::string &name)
{
    Tracer &t = tracer();
    std::lock_guard<std::mutex> lock(t.mu);
    t.thread_names[{pid, tid}] = name;
}

uint64_t
timelineWallMicros()
{
    Tracer &t = tracer();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t.epoch)
            .count());
}

void
timelineSpan(TimelineCategory cat, const char *name, uint64_t ts,
             uint64_t dur, uint64_t value, const char *value_name)
{
    if (!timelineOn(cat))
        return;
    Event e;
    e.name = name;
    e.value_name = value_name;
    e.ts = ts;
    e.dur = dur;
    e.value = value;
    e.pid = t_context.pid;
    e.tid = t_context.tid;
    e.cat = cat;
    e.ph = 'X';
    emit(e);
}

void
timelineSpanAt(TimelineCategory cat, const char *name, uint32_t pid,
               uint32_t tid, uint64_t ts, uint64_t dur, uint64_t value,
               const char *value_name)
{
    if (!timelineOn(cat))
        return;
    Event e;
    e.name = name;
    e.value_name = value_name;
    e.ts = ts;
    e.dur = dur;
    e.value = value;
    e.pid = pid;
    e.tid = tid;
    e.cat = cat;
    e.ph = 'X';
    emit(e);
}

void
timelineInstantNow(TimelineCategory cat, const char *name,
                   uint64_t value, const char *value_name)
{
    if (!timelineOn(cat))
        return;
    Event e;
    e.name = name;
    e.value_name = value_name;
    e.ts = t_context.now;
    e.value = value;
    e.pid = t_context.pid;
    e.tid = t_context.tid;
    e.cat = cat;
    e.ph = 'i';
    emit(e);
}

void
timelineCounter(TimelineCategory cat, const char *name, uint64_t ts,
                uint64_t value)
{
    if (!timelineOn(cat))
        return;
    Event e;
    e.name = name;
    e.ts = ts;
    e.value = value;
    e.pid = t_context.pid;
    e.tid = t_context.tid;
    e.cat = cat;
    e.ph = 'C';
    emit(e);
}

bool
timelineExportTo(const std::string &path, std::string &error)
{
    Tracer &t = tracer();
    std::lock_guard<std::mutex> lock(t.mu);

    // Gather each shard's resident window in emission order.
    std::vector<Event> events;
    uint64_t recorded = 0, dropped = 0;
    for (const auto &shard : t.shards) {
        recorded += shard->count;
        dropped += shard->dropped();
    }
    events.reserve(recorded - dropped);
    for (const auto &shard : t.shards) {
        uint64_t kept = shard->kept();
        uint64_t first = shard->count - kept;
        for (uint64_t i = 0; i < kept; ++i)
            events.push_back(
                shard->ring[(first + i) % shard->cap]);
    }
    // Tracks in pid/tid order, chronological within a track, longer
    // span first on ties so nested spans render inside their parent.
    std::stable_sort(events.begin(), events.end(),
                     [](const Event &a, const Event &b) {
                         return std::tie(a.pid, a.tid, a.ts) <
                                    std::tie(b.pid, b.tid, b.ts) ||
                                (a.pid == b.pid && a.tid == b.tid &&
                                 a.ts == b.ts && a.dur > b.dur);
                     });

    std::string out;
    out.reserve(events.size() * 96 + 4096);
    out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{"
           "\"schema\":\"sms-timeline-1\",\"git\":\"";
    appendEscaped(out, gitDescribe());
    out += "\",\"categories\":\"";
    appendEscaped(out, timelineCategoryList(t.config.categories));
    out += "\",\"clock_note\":\"sim tracks tick in simulated cycles "
           "(1 cycle = 1us), harness tracks in wall-clock us\","
           "\"events_recorded\":";
    appendU64(out, recorded);
    out += ",\"events_dropped\":";
    appendU64(out, dropped);
    out += "},\"traceEvents\":[";
    bool first_event = true;
    auto sep = [&] {
        if (!first_event)
            out += ",\n";
        else
            out += "\n";
        first_event = false;
    };
    for (const auto &[pid, name] : t.process_names) {
        sep();
        appendMetaJson(out, "process_name", pid, nullptr, name);
    }
    for (const auto &[key, name] : t.thread_names) {
        sep();
        appendMetaJson(out, "thread_name", key.first, &key.second,
                       name);
    }
    for (const Event &e : events) {
        sep();
        appendEventJson(out, e);
    }
    out += "\n]}\n";

    FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        error = path + ": " + std::strerror(errno);
        return false;
    }
    size_t written = std::fwrite(out.data(), 1, out.size(), f);
    bool ok = written == out.size() && std::fclose(f) == 0;
    if (!ok)
        error = path + ": short write";
    return ok;
}

bool
timelineExport(std::string &error)
{
    Tracer &t = tracer();
    std::string path;
    {
        std::lock_guard<std::mutex> lock(t.mu);
        if (!t.enabled || t.config.path.empty() || t.exported)
            return true;
        t.exported = true;
        path = t.config.path;
    }
    return timelineExportTo(path, error);
}

bool
summarizeTrace(const JsonValue &doc, TraceSummary &out, std::string &error)
{
    out = TraceSummary{};
    const JsonValue *events = doc.find("traceEvents");
    if (!events || !events->isArray()) {
        error = "no traceEvents array (not a Chrome-trace document?)";
        return false;
    }
    if (const JsonValue *other = doc.find("otherData")) {
        out.events_recorded = static_cast<uint64_t>(
            other->numberOr("events_recorded", 0.0));
        out.events_dropped = static_cast<uint64_t>(
            other->numberOr("events_dropped", 0.0));
    }
    std::map<std::string, TraceCategorySummary> by_cat;
    std::map<std::pair<std::string, std::string>, TraceNameSummary>
        by_name;
    for (const JsonValue &e : events->elements()) {
        if (!e.isObject())
            continue;
        std::string ph = e.stringOr("ph", "");
        if (ph != "X" && ph != "i" && ph != "C")
            continue; // metadata and unknown phases
        ++out.doc_events;
        std::string cat = e.stringOr("cat", "?");
        std::string name = e.stringOr("name", "?");
        TraceCategorySummary &s = by_cat[cat];
        s.category = cat;
        TraceNameSummary &n = by_name[{cat, name}];
        n.category = cat;
        n.name = name;
        if (ph == "X") {
            uint64_t dur = static_cast<uint64_t>(e.numberOr("dur", 0.0));
            ++s.span_events;
            s.span_time += dur;
            ++n.span_events;
            n.span_time += dur;
        } else if (ph == "i") {
            ++s.instant_events;
            ++n.instant_events;
        } else {
            ++s.counter_events;
            ++n.counter_events;
            const JsonValue *args = e.find("args");
            uint64_t v = args ? static_cast<uint64_t>(
                                    args->numberOr("value", 0.0))
                              : 0;
            s.counter_max = std::max(s.counter_max, v);
        }
    }
    for (auto &[name, summary] : by_cat)
        out.categories.push_back(std::move(summary));
    for (auto &[key, summary] : by_name)
        out.names.push_back(std::move(summary));
    return true;
}

bool
summarizeTraceDocument(const JsonValue &doc,
                       std::vector<TraceCategorySummary> &out,
                       std::string &error)
{
    TraceSummary summary;
    if (!summarizeTrace(doc, summary, error))
        return false;
    out = std::move(summary.categories);
    return true;
}

} // namespace sms
