/**
 * @file
 * Table printer implementation.
 */

#include "src/stats/table.hpp"

#include <cstdio>

#include "src/util/check.hpp"

namespace sms {

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    SMS_ASSERT(header_.empty() || row.size() == header_.size(),
               "row has %zu cells, header has %zu", row.size(),
               header_.size());
    rows_.push_back(std::move(row));
}

std::string
Table::num(double v, int precision)
{
    return strprintf("%.*f", precision, v);
}

std::string
Table::pct(double fraction, int precision)
{
    return strprintf("%+.*f%%", precision, fraction * 100.0);
}

std::string
Table::render() const
{
    std::vector<size_t> widths;
    auto account = [&](const std::vector<std::string> &row) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (size_t i = 0; i < row.size(); ++i)
            if (row[i].size() > widths[i])
                widths[i] = row[i].size();
    };
    account(header_);
    for (const auto &row : rows_)
        account(row);

    auto emit = [&](const std::vector<std::string> &row, std::string &out) {
        for (size_t i = 0; i < row.size(); ++i) {
            out += row[i];
            if (i + 1 < row.size())
                out += std::string(widths[i] - row[i].size() + 2, ' ');
        }
        out += '\n';
    };

    std::string out;
    if (!header_.empty()) {
        emit(header_, out);
        size_t rule = 0;
        for (size_t i = 0; i < header_.size(); ++i)
            rule += widths[i] + (i + 1 < header_.size() ? 2 : 0);
        out += std::string(rule, '-');
        out += '\n';
    }
    for (const auto &row : rows_)
        emit(row, out);
    return out;
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace sms
