/**
 * @file
 * Fixed-width ASCII table printer used by every benchmark harness to
 * print the paper's tables and figure series.
 */

#ifndef SMS_STATS_TABLE_HPP
#define SMS_STATS_TABLE_HPP

#include <string>
#include <vector>

namespace sms {

/**
 * Simple column-aligned table. Add a header row, then data rows; render()
 * pads every column to its widest cell.
 */
class Table
{
  public:
    /** Set the header row (also defines the column count). */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; must match the header's column count. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Convenience: format a percentage ("+12.3%"). */
    static std::string pct(double fraction, int precision = 1);

    /** Render to a string, one line per row. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace sms

#endif // SMS_STATS_TABLE_HPP
