/**
 * @file
 * Top-down cycle accounting: every simulated warp cycle is attributed
 * to exactly one leaf category of a small fixed hierarchy, and the
 * attribution is *exactly conserved* — per warp job the leaf counts sum
 * to the job's active cycles (completion minus admission), with no
 * epsilon and no "other" bucket.
 *
 * The hierarchy mirrors the stall taxonomy of the paper's §VI
 * evaluation: useful work (issue/intersect), stack-manager chain stalls
 * split by what the chain was doing (spill, refill, borrow-chain
 * flush, forced flush), global-memory stalls on the geometry-fetch
 * path split by where the critical line was served (L1-miss extra,
 * L2-miss service, DRAM queueing), shared-memory bank-conflict
 * serialization, and slot idle time.
 *
 * Leaf semantics (all in simulated cycles):
 *  - "issue": baseline pipeline occupancy a warp pays even when every
 *    access hits — L1 port arbitration + L1 hit latency of the
 *    critical fetch line, plus the per-iteration stack-round issue
 *    cost. Cycle time that is not a stall.
 *  - "intersect": box/triangle intersection operation latency.
 *  - "stall.stack.*": cycles the stack phase waited for the warp's
 *    asynchronous stack manager to drain the previous iteration's
 *    spill/reload chain, attributed to the chain segment actually
 *    overlapping the wait (latency hidden under fetch/intersect is
 *    *not* charged — exactly the overlap is). Global/shared memory
 *    time inside the chain folds into these stack leaves, not into
 *    the stall.mem leaves, so the stack cost of a configuration is
 *    one subtree.
 *  - "stall.mem.*": extra cycles of the critical geometry-fetch line
 *    beyond the L1-hit baseline (fetch phase only).
 *  - "stall.shmem.bank_conflict": extra serialization passes of SH
 *    stack accesses on the chain's critical path.
 *  - "stall.arch.backtrack": stackless architecture only — the
 *    intersection-op latency of steps where at least one lane is
 *    revisiting an interior node via its parent link instead of
 *    popping a stack entry (the stackless traversal's redundant-work
 *    overhead, kept separate from "intersect" useful work).
 *  - "stall.arch.predictor": predicted architecture only — the entire
 *    fetch window of each job's first step, which carries the
 *    predictor-table probe lines alongside the root fetch (the cost of
 *    consulting the predictor before normal traversal starts).
 *  - "idle.done": RT-unit slot cycles with no job in flight (derived
 *    at run scope: slots * frame cycles - sum of active cycles).
 *
 * The conservation invariant is enforced at three levels: per job
 * (always-on assert in the event loop), per run and per SM (leaves sum
 * to warp_active_cycles, idle.done closes the slot budget), and in the
 * record gates (`bench_compare --check-accounting`,
 * `stall_report --check-conservation`) at zero epsilon.
 */

#ifndef SMS_STATS_CYCLE_ACCOUNTING_HPP
#define SMS_STATS_CYCLE_ACCOUNTING_HPP

#include <cstdint>
#include <string>

namespace sms {

class JsonValue;

/** Leaf categories; every simulated warp cycle lands in exactly one. */
enum class CycleLeaf : uint8_t
{
    Issue = 0,             ///< baseline issue/hit-latency occupancy
    Intersect,             ///< intersection-op latency
    StallStackSpill,       ///< manager chain: RB spill traffic
    StallStackRefill,      ///< manager chain: eager refill traffic
    StallStackBorrowChain, ///< manager chain: budgeted bottom flush
    StallStackForcedFlush, ///< manager chain: over-budget flush
    StallMemL1Miss,        ///< fetch critical line: L1-miss extra
    StallMemL2Miss,        ///< fetch critical line: DRAM service
    StallMemDramQueue,     ///< fetch critical line: DRAM queue wait
    StallShmemBankConflict, ///< SH-stack serialization passes
    StallArchBacktrack,    ///< stackless: parent-link revisit op windows
    StallArchPredictor,    ///< predicted: predictor-probe fetch windows
    IdleDone,              ///< RT-unit slot idle (no job in flight)
};

/** Number of leaves. */
constexpr int kCycleLeafCount = 13;

/** Dotted hierarchical name ("stall.stack.spill", ...). */
const char *cycleLeafName(CycleLeaf leaf);

/** Inverse of cycleLeafName(); -1 for unknown names. */
int cycleLeafFromName(const std::string &name);

/** True for leaves outside warp-active time (currently idle.done). */
constexpr bool
cycleLeafIsIdle(CycleLeaf leaf)
{
    return leaf == CycleLeaf::IdleDone;
}

/**
 * Are the redundant exact-decomposition self-checks enabled? Defaults
 * to on in debug builds (!NDEBUG) and off otherwise; the
 * SMS_ACCOUNTING_CHECK environment variable overrides either way
 * ("0" disables, anything else enables). The hard per-job conservation
 * invariant is asserted unconditionally regardless of this knob.
 */
bool cycleAccountingChecksEnabled();

/**
 * One cycle-accounting tree: a flat array of leaf totals plus the
 * activity denominators. Used per warp job (TraversalSim), per SM and
 * per run (SimResult).
 */
struct CycleAccount
{
    uint64_t leaves[kCycleLeafCount] = {};
    /** Sum of (completion - admission) over the covered warp jobs. */
    uint64_t warp_active_cycles = 0;
    /** RT-unit slot-cycle budget (slots * frame cycles); 0 per job. */
    uint64_t slot_cycles = 0;

    void
    add(CycleLeaf leaf, uint64_t cycles)
    {
        leaves[static_cast<int>(leaf)] += cycles;
    }

    uint64_t
    leaf(CycleLeaf l) const
    {
        return leaves[static_cast<int>(l)];
    }

    /** Sum of the non-idle leaves (must equal warp_active_cycles). */
    uint64_t activeSum() const;

    /** Sum of every leaf (must equal slot_cycles when idle is filled). */
    uint64_t totalSum() const;

    /** Zero-epsilon conservation: activeSum() == warp_active_cycles. */
    bool conserved() const { return activeSum() == warp_active_cycles; }

    void merge(const CycleAccount &o);
};

/**
 * JSON view (the `cycle_accounting` block of sms-bench-1 records, see
 * docs/FORMATS.md): version, denominators, a `leaves` object keyed by
 * dotted leaf name, and optionally a `per_sm` array of the same shape.
 */
JsonValue toJson(const CycleAccount &account);

/** Schema version of the cycle_accounting JSON block. */
constexpr int kCycleAccountingVersion = 1;

} // namespace sms

#endif // SMS_STATS_CYCLE_ACCOUNTING_HPP
