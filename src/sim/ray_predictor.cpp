/**
 * @file
 * Ray-path predictor schedule precompute.
 */

#include "src/sim/ray_predictor.hpp"

#include <algorithm>
#include <cstring>

#include "src/util/check.hpp"

namespace sms {

namespace {

/** Sign + exponent + the top @p mantissa_bits of an IEEE float. */
uint32_t
quantizeFloat(float f, uint32_t mantissa_bits)
{
    uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    return bits >> (23u - mantissa_bits);
}

/**
 * Leaf child reference containing each scene primitive, looked up by
 * unified primitive id. 0 (invalid ChildRef) for uncovered ids.
 */
std::vector<uint32_t>
leafOfPrimitive(const WideBvh &bvh)
{
    const auto &prim_indices = bvh.primIndices();
    uint32_t max_id = 0;
    for (uint32_t id : prim_indices)
        max_id = std::max(max_id, id);
    std::vector<uint32_t> leaf_of(prim_indices.empty() ? 0 : max_id + 1, 0);

    auto cover = [&](ChildRef leaf) {
        for (uint32_t i = 0; i < leaf.primCount(); ++i)
            leaf_of[prim_indices[leaf.primOffset() + i]] = leaf.bits();
    };
    if (bvh.rootRef().isLeaf())
        cover(bvh.rootRef());
    for (const WideNode &node : bvh.nodes())
        for (uint8_t c = 0; c < node.child_count; ++c)
            if (node.children[c].isLeaf())
                cover(node.children[c]);
    return leaf_of;
}

} // namespace

uint64_t
rayPredictorHash(const Ray &ray, const TraversalArchConfig &arch)
{
    SMS_ASSERT(arch.predictor_origin_bits <= 23 &&
                   arch.predictor_dir_bits <= 23,
               "predictor mantissa bits out of range");
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint32_t v) {
        h ^= v;
        h *= 0x100000001b3ull;
    };
    for (int axis = 0; axis < 3; ++axis)
        mix(quantizeFloat(ray.origin[axis], arch.predictor_origin_bits));
    for (int axis = 0; axis < 3; ++axis)
        mix(quantizeFloat(ray.dir[axis], arch.predictor_dir_bits));
    h ^= h >> 32;
    return h;
}

PredictorSchedule
buildPredictorSchedule(const WarpJobList &jobs, const WideBvh &bvh,
                       const TraversalArchConfig &arch)
{
    SMS_ASSERT(arch.kind == TraversalArchKind::Predicted,
               "predictor schedule for a non-predicted architecture");
    SMS_ASSERT(arch.predictor_entries_log2 >= 1 &&
                   arch.predictor_entries_log2 <= 24,
               "predictor table size out of range");

    std::vector<uint32_t> leaf_of = leafOfPrimitive(bvh);
    const uint32_t mask = (1u << arch.predictor_entries_log2) - 1;
    // Direct-mapped, no tags: aliasing rays overwrite each other, and a
    // false hit is just a wasted verification leaf visit.
    std::vector<uint32_t> table(static_cast<size_t>(mask) + 1, 0);

    PredictorSchedule schedule;
    schedule.jobs.resize(jobs.size());
    for (size_t j = 0; j < jobs.size(); ++j) {
        const WarpJob &job = jobs[j];
        SMS_ASSERT(job.job_id == j, "job_id %u out of order at %zu",
                   job.job_id, j);
        PredictorJobPlan &plan = schedule.jobs[j];
        std::array<uint32_t, kWarpSize> slot{};
        for (int lane = 0; lane < kWarpSize; ++lane) {
            if (!job.active[lane])
                continue;
            uint32_t idx =
                static_cast<uint32_t>(rayPredictorHash(job.rays[lane], arch)) &
                mask;
            slot[lane] = idx;
            plan.entry[lane] =
                kPredictorBase + static_cast<Addr>(idx) * kPredictorEntryBytes;
            plan.predicted[lane] = table[idx];
        }
        // Train after probing: job j sees only the state left by jobs
        // before it. Shadow batches carry no expected primitive, so
        // only closest-hit jobs train the table.
        if (job.any_hit)
            continue;
        for (int lane = 0; lane < kWarpSize; ++lane) {
            if (!job.active[lane] || !job.expected_hit[lane])
                continue;
            uint32_t prim = job.expected_prim[lane];
            if (prim >= leaf_of.size() || leaf_of[prim] == 0)
                continue;
            table[slot[lane]] = leaf_of[prim];
            plan.write_mask |= 1u << lane;
        }
    }
    return schedule;
}

} // namespace sms
