/**
 * @file
 * Warp-job execution implementation (execute, record and replay modes).
 */

#include "src/sim/traversal_sim.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/stats/timeline.hpp"
#include "src/util/check.hpp"

namespace sms {

TraversalSim::TraversalSim(const Scene &scene, const WideBvh &bvh,
                           const GpuConfig &config, const WarpJob &job,
                           uint32_t sm, Addr shared_base, Addr local_base,
                           MemorySystem &mem, SharedMemory &shared_mem,
                           DepthObserver *observer, JobTape *record,
                           const JobTape *replay, Histogram *depth_hist,
                           const QuantizedBvh *qbvh,
                           const StacklessLinks *links,
                           const PredictorSchedule *predictor)
    : scene_(scene), bvh_(bvh), qbvh_(qbvh), links_(links),
      predictor_(predictor), config_(config), job_(job), sm_(sm), mem_(mem),
      shared_mem_(&shared_mem),
      stack_(config.stack, shared_base, local_base), recorder_(record),
      cursor_(replay)
{
    SMS_ASSERT((links_ != nullptr) ==
                   (config.traversal_arch.kind == TraversalArchKind::Stackless),
               "stackless links must accompany exactly the stackless arch");
    SMS_ASSERT((predictor_ != nullptr) ==
                   (config.traversal_arch.kind == TraversalArchKind::Predicted),
               "predictor schedule must accompany exactly the predicted arch");
    stack_.setDepthHistogram(depth_hist);
    seedJob(observer);
}

void
TraversalSim::reinit(const WarpJob &job, uint32_t sm, Addr shared_base,
                     Addr local_base, SharedMemory &shared_mem,
                     DepthObserver *observer, JobTape *record,
                     const JobTape *replay, Histogram *depth_hist)
{
    job_ = job;
    sm_ = sm;
    shared_mem_ = &shared_mem;
    stack_.reset(shared_base, local_base);
    stack_.setDepthHistogram(depth_hist);
    recorder_ = TapeWriter(record);
    cursor_ = TapeCursor(replay);
    chain_segs_.clear();
    chain_start_ = 0;
    account_ = CycleAccount{};
    counters_ = JobCounters{};
    mismatches_ = 0;
    manager_free_ = 0;
    seedJob(observer);
}

const PredictorJobPlan *
TraversalSim::predictorPlan() const
{
    if (!predictor_)
        return nullptr;
    SMS_ASSERT(job_.job_id < predictor_->jobs.size(),
               "job %u missing from the predictor schedule", job_.job_id);
    return &predictor_->jobs[job_.job_id];
}

void
TraversalSim::seedJob(DepthObserver *observer)
{
    SMS_ASSERT(!(recorder_.enabled() && cursor_.enabled()),
               "a job cannot record and replay the tape at once");
    stack_.setDepthObserver(observer);
    running_mask_ = 0;
    const PredictorJobPlan *plan = predictorPlan();
    for (uint32_t i = 0; i < kWarpSize; ++i) {
        hits_[i] = HitRecord{};
        if (!job_.active[i] || bvh_.empty()) {
            // Masked-off lanes count as finished immediately; with
            // reallocation their SH segments are borrowable from the
            // start.
            stack_.finishLane(i);
            continue;
        }
        rays_[i] = job_.rays[i];
        running_mask_ |= 1u << i;
        if (links_) {
            // Stackless lanes keep no stack at all: the machine state
            // is the current child reference plus the parent chain
            // position it was reached through.
            sl_cur_[i] = bvh_.rootRef().bits();
            sl_parent_[i] = StacklessLinks::kNoParent;
            sl_slot_[i] = 0;
            sl_resume_[i] = kNoResume;
            continue;
        }
        // Seed the traversal stack with the root reference (§II-B: the
        // next fetch address is always read from the stack top).
        StackTxnList seed;
        stack_.push(i, bvh_.rootRef().stackValue(), seed);
        SMS_ASSERT(seed.empty(), "root push cannot spill");
        // A predictor hit lands its leaf on top of the root, so the
        // first iteration visits the predicted leaf; a correct
        // prediction tightens tMax (or abandons an any-hit job) before
        // normal traversal starts, a wrong one just falls through.
        if (plan && ChildRef::fromBits(plan->predicted[i]).isLeaf()) {
            stack_.push(i, ChildRef::fromBits(plan->predicted[i])
                               .stackValue(),
                        seed);
            SMS_ASSERT(seed.empty(), "predicted-leaf push cannot spill");
            ++counters_.instructions;
        }
    }
    // Per-lane instruction charge for the shading work surrounding this
    // trace call (constant across stack configurations).
    uint32_t shade = job_.any_hit ? config_.shadow_instructions
                                  : config_.shading_instructions;
    counters_.instructions +=
        static_cast<uint64_t>(shade) * job_.activeLanes();
    // The oracle comparison ran at record time; its verdict is part of
    // the tape, not re-derived (no hits are computed during replay).
    if (cursor_.enabled())
        mismatches_ = cursor_.tape()->mismatches;
}

void
TraversalSim::finishLane(uint32_t lane_id, bool abandoned)
{
    if (abandoned)
        stack_.abandonLane(lane_id);
    else
        stack_.finishLane(lane_id);
    SMS_ASSERT(running_mask_ & (1u << lane_id), "lane not running");
    running_mask_ &= ~(1u << lane_id);

    if (cursor_.enabled())
        return;
    // Compare against the functional oracle recorded at job generation.
    const HitRecord &hit = hits_[lane_id];
    if (job_.any_hit) {
        if (hit.valid() != job_.expected_hit[lane_id])
            ++mismatches_;
        return;
    }
    if (hit.valid() != job_.expected_hit[lane_id]) {
        ++mismatches_;
        return;
    }
    if (!hit.valid())
        return;
    bool t_matches = std::fabs(hit.t - job_.expected_t[lane_id]) <=
                     1.0e-4f * std::max(1.0f, job_.expected_t[lane_id]);
    // Quantized layouts visit a superset of the exact nodes in a
    // different near-to-far order (inflated boxes shift entry
    // distances), so an equal-t tie between two primitives can resolve
    // to a different id than the exact-layout oracle recorded. The
    // closest distance itself is still exact — leaf tests are — so the
    // oracle check keeps the distance and drops the id under
    // quantization.
    bool prim_matches = config_.node_layout.isQuantized()
                            ? true
                            : hit.primitive == job_.expected_prim[lane_id];
    if (!t_matches || !prim_matches)
        ++mismatches_;
}

void
TraversalSim::collectFetch(bool &has_internal, bool &has_leaf,
                           uint32_t &max_leaf_prims)
{
    FetchLineList &lines = fetch_lines_;
    if (cursor_.enabled()) {
        cursor_.fetchPhase(lines, has_internal, has_leaf, max_leaf_prims);
        return;
    }

    // ------------------------------------------------------------------
    // FETCH: collect the cache lines this iteration needs across all
    // running lanes. Lanes visiting the same node coalesce into the
    // same line requests, as the RT unit's memory scheduler does.
    // ------------------------------------------------------------------
    lines.clear();
    auto add_range = [&](Addr addr, uint64_t bytes, TrafficClass cls) {
        Addr line = lineAlign(addr);
        uint32_t n = linesCovering(addr, bytes);
        for (uint32_t i = 0; i < n; ++i)
            lines.push_back(packFetchLine(
                line + i * static_cast<Addr>(kLineBytes), cls));
    };
    for (uint32_t mask = running_mask_; mask != 0; mask &= mask - 1) {
        uint32_t i = static_cast<uint32_t>(__builtin_ctz(mask));
        // Stackless lanes fetch the node they are visiting (including
        // backtracking revisits — the architecture's extra node
        // traffic); stack lanes read their stack top.
        ChildRef current = links_
                               ? ChildRef::fromBits(sl_cur_[i])
                               : ChildRef::fromStackValue(stack_.peek(i));
        if (current.isInternal()) {
            has_internal = true;
            // The layout sets the fetch footprint: quantized nodes pack
            // tighter, so fewer lines cover a visit (exact layouts
            // reduce to WideBvh's native stride).
            add_range(config_.node_layout.nodeAddress(current.nodeIndex()),
                      config_.node_layout.nodeBytes(), TrafficClass::Node);
        } else {
            has_leaf = true;
            uint32_t offset = current.primOffset();
            uint32_t count = current.primCount();
            if (count > max_leaf_prims)
                max_leaf_prims = count;
            for (uint32_t p = 0; p < count; ++p) {
                uint32_t prim = bvh_.primIndices()[offset + p];
                add_range(bvh_.primitiveAddress(scene_, prim),
                          bvh_.primitiveFetchBytes(scene_, prim),
                          TrafficClass::Primitive);
            }
        }
    }
    // The first iteration of a predicted job carries the per-lane
    // predictor-table probes alongside the root fetch; they ride the
    // recorded fetch lines, so replay reproduces them verbatim.
    if (counters_.steps == 1) {
        if (const PredictorJobPlan *plan = predictorPlan()) {
            for (uint32_t mask = running_mask_; mask != 0; mask &= mask - 1) {
                uint32_t i = static_cast<uint32_t>(__builtin_ctz(mask));
                add_range(plan->entry[i], kPredictorEntryBytes,
                          TrafficClass::Predictor);
            }
        }
    }
    // Packed entries sort exactly like (line, class) pairs.
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());

    if (recorder_.enabled())
        recorder_.fetchPhase(lines, has_internal, has_leaf,
                             max_leaf_prims);
}

Cycle
TraversalSim::stepFetch(Cycle now)
{
    SMS_ASSERT(!done(), "step on completed job");
    ++counters_.steps;

    bool has_internal = false;
    bool has_leaf = false;
    uint32_t max_leaf_prims = 0;
    collectFetch(has_internal, has_leaf, max_leaf_prims);

    // The warp waits for the slowest line; accounting charges the fetch
    // window to the *critical* line's latency split (first line reaching
    // the maximum, matching std::max's keep-first tie behaviour). Every
    // other line's latency is hidden under it and charged nowhere.
    Cycle fetch_done = now;
    MemAccessBreakdown crit{};
    for (uint64_t packed : fetch_lines_) {
        MemAccessBreakdown bd;
        Cycle c = mem_.accessLine(sm_, fetchLineAddr(packed), false,
                                  fetchLineClass(packed), now, &bd);
        if (c > fetch_done) {
            fetch_done = c;
            crit = bd;
        }
    }
    if (fetch_done > now) {
        if (cycleAccountingChecksEnabled())
            SMS_ASSERT(crit.total() == fetch_done - now,
                       "critical-line breakdown does not cover the fetch "
                       "window: %llu of %llu cycles",
                       static_cast<unsigned long long>(crit.total()),
                       static_cast<unsigned long long>(fetch_done - now));
        if (predictor_ && counters_.steps == 1) {
            // The whole first fetch window of a predicted job — root
            // fetch plus the predictor-table probes it carries — is the
            // cost of consulting the predictor. Step index and window
            // are identical in replay, so the split stays mode-
            // invariant.
            account_.add(CycleLeaf::StallArchPredictor, fetch_done - now);
        } else {
            account_.add(CycleLeaf::Issue, crit.port_wait + crit.hit_base);
            account_.add(CycleLeaf::StallMemL1Miss, crit.l1_miss_extra);
            account_.add(CycleLeaf::StallMemDramQueue, crit.dram_queue);
            account_.add(CycleLeaf::StallMemL2Miss, crit.l2_miss_serve);
        }
    }

    // ------------------------------------------------------------------
    // OP: intersection latency — the slowest lane's operation gates the
    // warp (SIMT lockstep). Leaf latency grows with the primitive
    // count, so the warp maximum reduces to the recorded per-kind
    // extremes (identical to the per-lane maximum).
    // ------------------------------------------------------------------
    Cycle op_latency = 0;
    if (has_internal) {
        op_latency = config_.timing.box_op;
        // Quantized layouts dequantize the child planes before the
        // ray-box phase; the charge rides the internal-visit latency so
        // it lands in the intersect leaf in replay mode too (the tape
        // records has_internal, not the latency).
        if (config_.node_layout.isQuantized())
            op_latency += config_.timing.node_decode_op;
    }
    if (has_leaf)
        op_latency = std::max(
            op_latency, config_.timing.leaf_op_base +
                            config_.timing.leaf_op_per_prim *
                                static_cast<Cycle>(max_leaf_prims));
    Cycle op_done = fetch_done + op_latency;
    bool backtracking = false;
    if (links_) {
        // A stackless step where any lane is revisiting an interior
        // node through its parent link repeats box tests the stack
        // machine would not have run; surface that op window as the
        // architecture's backtracking overhead. The resume flags are
        // maintained identically in replay.
        for (uint32_t mask = running_mask_; mask != 0; mask &= mask - 1) {
            uint32_t i = static_cast<uint32_t>(__builtin_ctz(mask));
            if (sl_resume_[i] != kNoResume) {
                backtracking = true;
                break;
            }
        }
    }
    account_.add(backtracking ? CycleLeaf::StallArchBacktrack
                              : CycleLeaf::Intersect,
                 op_latency);
    counters_.fetch_cycles += fetch_done - now;
    counters_.op_cycles += op_latency;
    if (timelineOn(TimelineCategory::Sim)) {
        if (fetch_done > now)
            timelineSpan(TimelineCategory::Sim, "fetch", now,
                         fetch_done - now, fetch_lines_.size(), "lines");
        if (op_latency > 0)
            timelineSpan(TimelineCategory::Sim, "intersect", fetch_done,
                         op_latency);
    }
    return op_done;
}

bool
TraversalSim::laneStepExecute(uint32_t lane_id, uint64_t top_value)
{
    ChildRef current = ChildRef::fromStackValue(top_value);

    if (current.isInternal()) {
        ++counters_.node_visits;
        // Quantized layouts traverse the decoded (conservatively
        // inflated) boxes — exactly what the hardware would compute
        // after dequantization.
        const WideNode &node = qbvh_ ? qbvh_->node(current.nodeIndex())
                                     : bvh_.nodes()[current.nodeIndex()];
        ChildHits hits = intersectNodeChildren(node, rays_[lane_id]);
        counters_.box_tests += hits.tests;
        counters_.instructions += hits.tests;
        uint64_t pushed[kWideBvhWidth];
        uint32_t push_count = 0;
        for (int c = hits.count - 1; c >= 0; --c) {
            uint64_t value = hits.refs[c].stackValue();
            stack_.push(lane_id, value, txn_arena_);
            pushed[push_count++] = value;
            ++counters_.instructions;
        }
        if (recorder_.enabled())
            recorder_.internalVisit(static_cast<uint32_t>(hits.tests),
                                    pushed, push_count);
        return false;
    }

    ++counters_.leaf_visits;
    uint32_t tested = 0;
    bool found =
        intersectLeaf(scene_, bvh_, current, rays_[lane_id],
                      hits_[lane_id], job_.any_hit, tested);
    counters_.prim_tests += tested;
    counters_.instructions += tested;
    // Any-hit early termination: the stack is discarded.
    bool abandoned = found && job_.any_hit;
    if (recorder_.enabled())
        recorder_.leafVisit(tested, abandoned);
    return abandoned;
}

bool
TraversalSim::laneStepReplay(uint32_t lane_id, uint64_t top_value)
{
    TapeCursor::LaneAction action = cursor_.laneAction();
    // Cheap always-on cross-check: the value-exact stack must pop the
    // same kind of reference the recording run visited, whatever the
    // stack configuration. A mismatch means the tape belongs to a
    // different workload (or the stack model lost value-exactness).
    SMS_ASSERT(action.is_leaf ==
                   ChildRef::fromStackValue(top_value).isLeaf(),
               "traversal tape desync on lane %u at step %llu", lane_id,
               static_cast<unsigned long long>(counters_.steps));

    if (!action.is_leaf) {
        ++counters_.node_visits;
        counters_.box_tests += action.tests;
        counters_.instructions += action.tests;
        for (uint32_t p = 0; p < action.pushes; ++p) {
            stack_.push(lane_id, cursor_.pushValue(), txn_arena_);
            ++counters_.instructions;
        }
        return false;
    }

    ++counters_.leaf_visits;
    counters_.prim_tests += action.tests;
    counters_.instructions += action.tests;
    return action.abandoned;
}

void
TraversalSim::stacklessBacktrack(uint32_t lane_id)
{
    uint32_t p = sl_parent_[lane_id];
    sl_resume_[lane_id] = sl_slot_[lane_id];
    sl_cur_[lane_id] = ChildRef::makeInternal(p).bits();
    sl_parent_[lane_id] = links_->parent[p];
    sl_slot_[lane_id] = links_->slot[p];
}

TraversalSim::LaneOutcome
TraversalSim::laneStepStacklessExecute(uint32_t lane_id)
{
    ChildRef current = ChildRef::fromBits(sl_cur_[lane_id]);

    if (current.isInternal()) {
        ++counters_.node_visits;
        const WideNode &node = qbvh_ ? qbvh_->node(current.nodeIndex())
                                     : bvh_.nodes()[current.nodeIndex()];
        SlotHits hits = intersectNodeSlots(node, rays_[lane_id]);
        counters_.box_tests += static_cast<uint64_t>(hits.tests);
        counters_.instructions += static_cast<uint64_t>(hits.tests);
        int resume =
            sl_resume_[lane_id] == kNoResume ? -1 : sl_resume_[lane_id];
        int s = nextStacklessSlot(hits, resume);
        if (s >= 0) {
            uint64_t value = node.children[s].stackValue();
            ++counters_.instructions;
            if (recorder_.enabled())
                recorder_.internalVisit(static_cast<uint32_t>(hits.tests),
                                        &value, 1);
            sl_parent_[lane_id] = current.nodeIndex();
            sl_slot_[lane_id] = static_cast<uint8_t>(s);
            sl_cur_[lane_id] = node.children[s].bits();
            sl_resume_[lane_id] = kNoResume;
            return LaneOutcome::Continue;
        }
        if (recorder_.enabled())
            recorder_.internalVisit(static_cast<uint32_t>(hits.tests),
                                    nullptr, 0);
        if (sl_parent_[lane_id] == StacklessLinks::kNoParent)
            return LaneOutcome::Done;
        stacklessBacktrack(lane_id);
        return LaneOutcome::Continue;
    }

    ++counters_.leaf_visits;
    uint32_t tested = 0;
    bool found = intersectLeaf(scene_, bvh_, current, rays_[lane_id],
                               hits_[lane_id], job_.any_hit, tested);
    counters_.prim_tests += tested;
    counters_.instructions += tested;
    bool abandoned = found && job_.any_hit;
    if (recorder_.enabled())
        recorder_.leafVisit(tested, abandoned);
    if (abandoned)
        return LaneOutcome::Abandoned;
    if (sl_parent_[lane_id] == StacklessLinks::kNoParent)
        return LaneOutcome::Done; // the root itself was the leaf
    stacklessBacktrack(lane_id);
    return LaneOutcome::Continue;
}

TraversalSim::LaneOutcome
TraversalSim::laneStepStacklessReplay(uint32_t lane_id)
{
    TapeCursor::LaneAction action = cursor_.laneAction();
    ChildRef current = ChildRef::fromBits(sl_cur_[lane_id]);
    SMS_ASSERT(action.is_leaf == current.isLeaf(),
               "traversal tape desync on lane %u at step %llu", lane_id,
               static_cast<unsigned long long>(counters_.steps));

    if (!action.is_leaf) {
        ++counters_.node_visits;
        counters_.box_tests += action.tests;
        counters_.instructions += action.tests;
        if (action.pushes == 1) {
            // Descend to the recorded child. The child's slot within
            // the parent is unknown here, but replay never selects a
            // resume slot — only the parent chain and the revisit flag
            // matter, and both are maintained exactly.
            uint64_t value = cursor_.pushValue();
            ++counters_.instructions;
            sl_parent_[lane_id] = current.nodeIndex();
            sl_slot_[lane_id] = 0;
            sl_cur_[lane_id] = ChildRef::fromStackValue(value).bits();
            sl_resume_[lane_id] = kNoResume;
            return LaneOutcome::Continue;
        }
        SMS_ASSERT(action.pushes == 0,
                   "stackless tape action with %u pushes", action.pushes);
        if (sl_parent_[lane_id] == StacklessLinks::kNoParent)
            return LaneOutcome::Done;
        stacklessBacktrack(lane_id);
        return LaneOutcome::Continue;
    }

    ++counters_.leaf_visits;
    counters_.prim_tests += action.tests;
    counters_.instructions += action.tests;
    if (action.abandoned)
        return LaneOutcome::Abandoned;
    if (sl_parent_[lane_id] == StacklessLinks::kNoParent)
        return LaneOutcome::Done;
    stacklessBacktrack(lane_id);
    return LaneOutcome::Continue;
}

Cycle
TraversalSim::stepStack(Cycle now)
{
    // ------------------------------------------------------------------
    // STACK UPDATE: apply the traversal step per lane; the stack
    // manager's transactions execute afterwards in warp rounds. The
    // manager must have drained the previous iteration's chain first.
    // ------------------------------------------------------------------
    Cycle start = now > manager_free_ ? now : manager_free_;
    if (start > now)
        attributeManagerStall(now, start);
    if (timelineAnyOn()) {
        if (start > now)
            timelineSpan(TimelineCategory::Stack, "mgr_stall", now,
                         start - now);
        // Stack-transition instants below stamp at the phase start.
        timelineContext().now = start;
    }
    txn_arena_.clear();
    bool replaying = cursor_.enabled();
    if (links_) {
        // Stackless update: no pops, no pushes, no stack manager — the
        // lane state machine advances in place. The per-lane
        // bookkeeping instruction mirrors the stack machine's pop.
        for (uint32_t mask = running_mask_; mask != 0; mask &= mask - 1) {
            uint32_t i = static_cast<uint32_t>(__builtin_ctz(mask));
            ++counters_.instructions;
            LaneOutcome out = replaying ? laneStepStacklessReplay(i)
                                        : laneStepStacklessExecute(i);
            if (out == LaneOutcome::Abandoned)
                finishLane(i, true);
            else if (out == LaneOutcome::Done)
                finishLane(i, false);
        }
    } else {
        for (uint32_t mask = running_mask_; mask != 0; mask &= mask - 1) {
            uint32_t i = static_cast<uint32_t>(__builtin_ctz(mask));

            // Pop the entry being visited (reloads spilled values), then
            // push the intersected children so the nearest ends on top.
            uint64_t top_value;
            bool popped = stack_.pop(i, top_value, txn_arena_);
            SMS_ASSERT(popped, "running lane with empty stack");
            ++counters_.instructions;

            bool abandoned = replaying ? laneStepReplay(i, top_value)
                                       : laneStepExecute(i, top_value);
            if (abandoned) {
                finishLane(i, true);
                continue;
            }
            if (stack_.laneEmpty(i))
                finishLane(i, false);
        }
    }

    if (running_mask_ == 0) {
        if (recorder_.enabled())
            recorder_.finish(mismatches_);
        // Lanes the schedule trained write their predictor-table entry
        // back when the job completes. Fire-and-forget stores (same
        // policy as global stack spills): bandwidth is charged, nothing
        // gates on completion. The plan is a pure function of the
        // workload, so replay issues the identical writes.
        if (const PredictorJobPlan *plan = predictorPlan()) {
            for (uint32_t mask = plan->write_mask; mask != 0;
                 mask &= mask - 1) {
                uint32_t i = static_cast<uint32_t>(__builtin_ctz(mask));
                mem_.accessRange(sm_, plan->entry[i], kPredictorEntryBytes,
                                 true, TrafficClass::Predictor, start);
            }
        }
        if (replaying) {
            SMS_ASSERT(cursor_.atEnd() &&
                           counters_.steps == cursor_.tape()->steps,
                       "traversal tape not fully consumed: %llu of %u "
                       "steps, %s",
                       static_cast<unsigned long long>(counters_.steps),
                       cursor_.tape()->steps,
                       cursor_.atEnd() ? "at end" : "bytes left");
        }
    }

    // The manager's chain runs in the background; the warp retires the
    // iteration once the manager has accepted the work.
    Cycle chain_done = runStackRounds(start);
    manager_free_ = chain_done;
    counters_.stack_cycles += start - now; // manager-stall visible to warp
    Cycle retire = start + config_.timing.stack_round;
    // The warp's own stack-update round is issue work, not a stall.
    account_.add(CycleLeaf::Issue, config_.timing.stack_round);
    if (timelineOn(TimelineCategory::Sim))
        timelineSpan(TimelineCategory::Sim, "stack", start,
                     config_.timing.stack_round);
    // Manager chain draining past the warp's retirement.
    if (chain_done > retire && timelineOn(TimelineCategory::Stack))
        timelineSpan(TimelineCategory::Stack, "mgr_chain", retire,
                     chain_done - retire);
    return retire;
}

/** Accounting leaf a chain round folds into, by its dominant origin. */
static CycleLeaf
stackLeafOf(StackTxnOrigin origin)
{
    switch (origin) {
      case StackTxnOrigin::Refill:
        return CycleLeaf::StallStackRefill;
      case StackTxnOrigin::Spill:
        return CycleLeaf::StallStackSpill;
      case StackTxnOrigin::BorrowChain:
        return CycleLeaf::StallStackBorrowChain;
      case StackTxnOrigin::ForcedFlush:
        return CycleLeaf::StallStackForcedFlush;
    }
    return CycleLeaf::StallStackSpill;
}

void
TraversalSim::attributeManagerStall(Cycle from, Cycle to)
{
    Cycle attributed = 0;
    Cycle seg_begin = chain_start_;
    for (const ChainSeg &seg : chain_segs_) {
        Cycle b = seg_begin > from ? seg_begin : from;
        Cycle e = seg.end < to ? seg.end : to;
        if (e > b) {
            account_.add(seg.leaf, e - b);
            attributed += e - b;
        }
        seg_begin = seg.end;
    }
    if (cycleAccountingChecksEnabled())
        SMS_ASSERT(attributed == to - from,
                   "manager-stall window [%llu, %llu) not covered by the "
                   "chain segments (%llu cycles attributed)",
                   static_cast<unsigned long long>(from),
                   static_cast<unsigned long long>(to),
                   static_cast<unsigned long long>(attributed));
}

Cycle
TraversalSim::runStackRounds(Cycle start)
{
    chain_segs_.clear();
    chain_start_ = start;
    if (txn_arena_.totalCount() == 0)
        return start;
    // Round r takes each lane's r-th transaction: walk all 32 lists in
    // lock-step through one cursor per lane (the arena's inline links
    // preserve per-lane order; lanes advance in ascending id within a
    // round, as the flat per-lane lists did).
    uint32_t cursor[kWarpSize];
    size_t max_len = 0;
    for (uint32_t lane = 0; lane < kWarpSize; ++lane) {
        cursor[lane] = txn_arena_.laneHead(lane);
        max_len = std::max(max_len,
                           static_cast<size_t>(txn_arena_.laneCount(lane)));
    }

    Cycle t = start;
    Cycle last_store_done = start;
    std::vector<SharedLaneRequest> &shared_loads = shared_loads_;
    std::vector<SharedLaneRequest> &shared_stores = shared_stores_;
    for (size_t round = 0; round < max_len; ++round) {
        shared_loads.clear();
        shared_stores.clear();
        Cycle round_begin = t;
        Cycle load_done = t;
        // StackTxnOrigin's declaration order is the round-folding
        // priority (ForcedFlush > BorrowChain > Spill > Refill).
        int origin = -1;
        for (uint32_t lane = 0; lane < kWarpSize; ++lane) {
            if (cursor[lane] == StackTxnArena::kNil)
                continue;
            const StackTxnArena::Node &node = txn_arena_.node(cursor[lane]);
            cursor[lane] = node.next;
            const StackTxn &txn = node.txn;
            if (static_cast<int>(txn.origin) > origin)
                origin = static_cast<int>(txn.origin);
            switch (txn.kind) {
              case StackTxnKind::SharedLoad:
                shared_loads.push_back({lane, txn.addr, txn.bytes});
                break;
              case StackTxnKind::SharedStore:
                shared_stores.push_back({lane, txn.addr, txn.bytes});
                break;
              case StackTxnKind::GlobalLoad:
                load_done = std::max(
                    load_done, mem_.accessRange(sm_, txn.addr, txn.bytes,
                                                false,
                                                TrafficClass::Stack, t));
                break;
              case StackTxnKind::GlobalStore:
                // Stores are fire-and-forget: they consume bandwidth
                // but do not gate the next transaction (§VI-A only
                // requires *loads* to return before the next request).
                last_store_done = std::max(
                    last_store_done,
                    mem_.accessRange(sm_, txn.addr, txn.bytes, true,
                                     TrafficClass::Stack, t));
                break;
            }
        }
        bool shared_critical = false;
        SharedAccessInfo sh_info;
        if (!shared_loads.empty()) {
            Cycle shared_done =
                shared_mem_->access(t, shared_loads, &sh_info);
            if (shared_done > load_done)
                shared_critical = true;
            load_done = std::max(load_done, shared_done);
        }
        if (!shared_stores.empty()) {
            last_store_done = std::max(
                last_store_done, shared_mem_->access(t, shared_stores));
        }
        // Paper §VI-A: a thread's next transaction issues only after the
        // previous *load* returned; stores stream.
        t = load_done + config_.timing.stack_round;

        // Record this round's attribution segments. The whole round
        // folds into its dominant origin's stall.stack.* leaf, except
        // that when a conflicted shared load gates the round, its
        // serialization passes surface as stall.shmem.bank_conflict.
        CycleLeaf leaf = stackLeafOf(static_cast<StackTxnOrigin>(origin));
        if (shared_critical && sh_info.passes > 1) {
            Cycle conflict_begin = round_begin + sh_info.pipeline_wait;
            Cycle conflict_end = conflict_begin + (sh_info.passes - 1);
            if (conflict_begin > round_begin)
                chain_segs_.push_back({conflict_begin, leaf});
            chain_segs_.push_back(
                {conflict_end, CycleLeaf::StallShmemBankConflict});
            chain_segs_.push_back({t, leaf});
        } else {
            chain_segs_.push_back({t, leaf});
        }
    }
    // Stores drain through write buffers; the step retires when the
    // last load returns. Store bandwidth was still charged above.
    (void)last_store_done;
    return t;
}

} // namespace sms
