/**
 * @file
 * Energy estimation implementation.
 */

#include "src/sim/energy.hpp"

namespace sms {

EnergyBreakdown
estimateEnergy(const SimResult &result, const GpuConfig &config,
               const EnergyModel &model)
{
    EnergyBreakdown e;

    // Every push/pop touches one RB entry; spills/refills touch one
    // more on their way through.
    double rb_events =
        static_cast<double>(result.stack.pushes + result.stack.pops +
                            result.stack.rb_spills +
                            result.stack.rb_refills);
    e.rb_dynamic = rb_events * model.rb_entry_pj;

    // Static cost of the provisioned RB storage: entries x threads x
    // warps x SMs, leaking for the whole frame. RB_FULL is charged for
    // the deepest stack it actually needed (a best case for it).
    double provisioned_entries =
        config.stack.rb_unbounded
            ? static_cast<double>(result.stack.max_logical_depth)
            : static_cast<double>(config.stack.rb_entries);
    double storage = provisioned_entries * kWarpSize *
                     config.max_warps_per_rt * config.num_sms;
    e.rb_static = storage * model.rb_leak_pj_per_entry_kcycle *
                  (static_cast<double>(result.cycles) / 1000.0);

    e.shared = static_cast<double>(result.shared_mem.lane_requests) *
               model.shared_pj;
    e.l1 = static_cast<double>(result.l1.accesses()) * model.l1_pj;
    e.l2 = static_cast<double>(result.l2.accesses()) * model.l2_pj;
    e.dram = static_cast<double>(result.dram.accesses()) * model.dram_pj;
    e.ops = static_cast<double>(result.ops.box_tests +
                                result.ops.prim_tests) *
            model.op_pj;
    return e;
}

} // namespace sms
