/**
 * @file
 * Ray-stream reordering: a wavefront scheduling stage between path
 * segments, as a first-class configuration axis.
 *
 * The job generator emits warp jobs in image order; secondary rays
 * inherit the camera-warp packing, so a warp's 32 rays can diverge into
 * unrelated treelets and every lane fetches different node lines. The
 * reorder stage (Grauer et al., PAPERS.md arXiv 2505.24653; SNIPPETS.md
 * §1 wavefront idioms) regroups each wavefront batch — all pending rays
 * of one (segment, any_hit) generation — by direction octant and origin
 * Morton key before repacking them 32-to-a-warp, so warps traverse the
 * same treelets and the node working set per warp shrinks.
 *
 * Reordered jobs lose their 1:1 parent edge (a repacked warp mixes rays
 * from many parents); instead each batch carries a barrier on the last
 * job of the previous batch, modeling the global wavefront sync a
 * reorder pass implies. Reordering is a pure, deterministic function of
 * the job stream, so tapes and result-cache entries key on the
 * reordered stream via the traversal-variant digest.
 */

#ifndef SMS_SIM_RAY_REORDER_HPP
#define SMS_SIM_RAY_REORDER_HPP

#include <cstdint>
#include <string>

#include "src/bvh/wide_bvh.hpp"
#include "src/sim/warp_job.hpp"

namespace sms {

/** Ray scheduling modes between path segments. */
enum class RayOrderKind : uint8_t
{
    None = 0,         ///< generation order (image-space packing)
    OctantMorton = 1, ///< sort batches by direction octant + origin Morton
};

/** One point on the ray-scheduling axis of a GpuConfig. */
struct RayOrderConfig
{
    RayOrderKind kind = RayOrderKind::None;

    static RayOrderConfig
    none()
    {
        return RayOrderConfig{};
    }

    static RayOrderConfig
    octantMorton()
    {
        RayOrderConfig c;
        c.kind = RayOrderKind::OctantMorton;
        return c;
    }

    bool active() const { return kind != RayOrderKind::None; }

    /** Short tag for record/display keys: "none", "mort". */
    std::string name() const;

    bool operator==(const RayOrderConfig &o) const { return kind == o.kind; }
    bool operator!=(const RayOrderConfig &o) const { return !(*this == o); }
};

/**
 * Sort key for one ray: direction octant (3 sign bits) in the top
 * bits, then a 30-bit Morton code of the origin within @p bounds.
 * Exposed for tests.
 */
uint64_t rayOrderKey(const Ray &ray, const Aabb &bounds);

/**
 * Reorder @p jobs per the scheduling mode. Returns the input unchanged
 * when the mode is None. Otherwise rays are regrouped into wavefront
 * batches by (segment, any_hit) in first-appearance order, sorted
 * within each batch by rayOrderKey (stable on ties), and repacked into
 * fresh 32-lane jobs with sequential ids, no parent edges, and a
 * barrier on the last job of the previous batch. Expected-hit oracle
 * values travel with their rays. Deterministic: equal inputs produce
 * equal outputs.
 */
WarpJobList reorderJobs(const WarpJobList &jobs, const WideBvh &bvh,
                        const RayOrderConfig &order);

} // namespace sms

#endif // SMS_SIM_RAY_REORDER_HPP
