/**
 * @file
 * GPU configuration helpers.
 */

#include "src/sim/gpu_config.hpp"

#include "src/util/check.hpp"

namespace sms {

const char *
TraversalArchConfig::name() const
{
    switch (kind) {
    case TraversalArchKind::Stack:
        return "stack";
    case TraversalArchKind::Stackless:
        return "sl";
    case TraversalArchKind::Predicted:
        return "pred";
    }
    fatal("unknown traversal architecture %d", static_cast<int>(kind));
}

uint64_t
TraversalVariant::digest() const
{
    if (isDefault())
        return 0;
    // Word-mixed hash in the style of workloadFingerprint; seeded with
    // a tag so a variant digest never collides with the 0 sentinel.
    uint64_t h = 0x736d732d76617231ull; // "sms-var1"
    auto mix = [&h](uint32_t v) {
        h ^= v;
        h *= 0x100000001b3ull;
        h ^= h >> 29;
    };
    mix(static_cast<uint32_t>(layout.kind));
    mix(layout.isQuantized() ? layout.bits_per_plane : 0u);
    mix(static_cast<uint32_t>(order.kind));
    mix(static_cast<uint32_t>(arch.kind));
    if (arch.kind == TraversalArchKind::Predicted) {
        mix(arch.predictor_entries_log2);
        mix(arch.predictor_origin_bits);
        mix(arch.predictor_dir_bits);
    }
    return h != 0 ? h : 1;
}

std::string
TraversalVariant::tag() const
{
    if (isDefault())
        return "";
    std::string t;
    if (layout.isQuantized())
        t = layout.name();
    if (order.active()) {
        if (!t.empty())
            t += "+";
        t += order.name();
    }
    if (arch.active()) {
        if (!t.empty())
            t += "+";
        t += arch.name();
    }
    return t;
}

GpuConfig
GpuConfig::tableI()
{
    GpuConfig config;
    config.num_sms = 8;
    config.max_warps_per_rt = 4;
    config.unified_bytes = 64 * 1024;
    // Fully associative, write-through / no-write-allocate (stores
    // that miss write around to the L2).
    config.mem.l1 = {64 * 1024, 0, kLineBytes, false};
    config.mem.l1_latency = 20;
    config.mem.l2 = {384 * 1024, 16, kLineBytes};
    config.mem.l2_latency = 160;
    config.shared_latency = 20;
    config.stack = StackConfig::baseline(8);
    return config;
}

uint64_t
GpuConfig::effectiveL1Bytes() const
{
    if (l1_override_bytes != 0)
        return l1_override_bytes;
    uint64_t carve = sharedStackBytes();
    if (carve >= unified_bytes) {
        // A user-facing configuration error, not a simulator bug.
        fatal("SH stacks (%llu B) do not fit in the %llu B unified "
              "array",
              static_cast<unsigned long long>(carve),
              static_cast<unsigned long long>(unified_bytes));
    }
    return unified_bytes - carve;
}

MemoryHierarchyConfig
GpuConfig::resolvedMemConfig() const
{
    MemoryHierarchyConfig resolved = mem;
    resolved.l1.size_bytes = effectiveL1Bytes();
    return resolved;
}

} // namespace sms
