/**
 * @file
 * GPU configuration helpers.
 */

#include "src/sim/gpu_config.hpp"

#include "src/util/check.hpp"

namespace sms {

GpuConfig
GpuConfig::tableI()
{
    GpuConfig config;
    config.num_sms = 8;
    config.max_warps_per_rt = 4;
    config.unified_bytes = 64 * 1024;
    // Fully associative, write-through / no-write-allocate (stores
    // that miss write around to the L2).
    config.mem.l1 = {64 * 1024, 0, kLineBytes, false};
    config.mem.l1_latency = 20;
    config.mem.l2 = {384 * 1024, 16, kLineBytes};
    config.mem.l2_latency = 160;
    config.shared_latency = 20;
    config.stack = StackConfig::baseline(8);
    return config;
}

uint64_t
GpuConfig::effectiveL1Bytes() const
{
    if (l1_override_bytes != 0)
        return l1_override_bytes;
    uint64_t carve = sharedStackBytes();
    if (carve >= unified_bytes) {
        // A user-facing configuration error, not a simulator bug.
        fatal("SH stacks (%llu B) do not fit in the %llu B unified "
              "array",
              static_cast<unsigned long long>(carve),
              static_cast<unsigned long long>(unified_bytes));
    }
    return unified_bytes - carve;
}

MemoryHierarchyConfig
GpuConfig::resolvedMemConfig() const
{
    MemoryHierarchyConfig resolved = mem;
    resolved.l1.size_bytes = effectiveL1Bytes();
    return resolved;
}

} // namespace sms
