/**
 * @file
 * Global event loop of the GPU timing simulation.
 */

#include "src/sim/gpu_sim.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <queue>
#include <string>

#include "src/bvh/node_layout.hpp"
#include "src/bvh/stackless.hpp"
#include "src/sim/ray_predictor.hpp"
#include "src/sim/traversal_tape.hpp"
#include "src/stats/metrics.hpp"
#include "src/stats/timeline.hpp"
#include "src/util/check.hpp"

namespace sms {

namespace {

/** Base of the simulated per-thread local (spill) address space. */
constexpr Addr kLocalSpillBase = 0x100000000ull;
/** Bytes reserved per warp job for spill slots (256 slots x 32 x 8 B). */
constexpr Addr kLocalSpillStride = 0x10000ull;
/** Number of distinct spill frames before addresses recycle. */
constexpr Addr kLocalSpillFrames = 8192;

/**
 * Depth observer recording the per-access trace of traced warps. The
 * global depth histogram is fed directly by the warp stack (a devirtualized
 * Histogram pointer), so untraced warps — the overwhelming majority —
 * register no observer at all.
 */
class DepthCollector : public DepthObserver
{
  public:
    DepthCollector(SimResult &result, uint32_t warp_id)
        : result_(result), warp_id_(warp_id)
    {}

    /** Rearm for the next job sharing this in-flight slot. */
    void
    reinit(uint32_t warp_id)
    {
        warp_id_ = warp_id;
        access_index_ = 0;
    }

    void
    onStackAccess(uint32_t lane, uint32_t depth) override
    {
        result_.depth_trace.push_back(
            {warp_id_, access_index_++, lane, depth});
    }

  private:
    SimResult &result_;
    uint32_t warp_id_;
    uint32_t access_index_ = 0;
};

/** One RT-unit occupancy slot executing a job. */
struct InFlight
{
    std::unique_ptr<TraversalSim> sim;
    std::unique_ptr<DepthCollector> collector;
    uint32_t job_index = 0;
    uint32_t slot = 0;
    /** Cycle the job entered its slot (cycle-accounting denominator). */
    Cycle admitted = 0;
    /** false: next event runs stepFetch; true: runs stepStack. */
    bool in_stack_phase = false;
};

/** Job bookkeeping. */
struct JobState
{
    Cycle ready = 0;
    bool is_ready = false;
    bool completed = false;
    Cycle completion = 0;
};

} // namespace

namespace {
std::atomic<uint64_t> g_simulate_calls{0};

// Pull-collector: the call counter already exists for tests, so the
// metrics sampler reads it instead of adding a second hot-path add.
const bool g_sim_collector_registered = [] {
    metricsAddCollector(
        [](const std::function<void(const char *, uint64_t)> &sink) {
            sink("sim.simulate_calls",
                 g_simulate_calls.load(std::memory_order_relaxed));
        });
    return true;
}();
} // namespace

uint64_t
simulateJobsCallCount()
{
    return g_simulate_calls.load(std::memory_order_relaxed);
}

void
resetSimulateJobsCallCount()
{
    g_simulate_calls.store(0, std::memory_order_relaxed);
}

SimResult
simulateJobs(const Scene &scene, const WideBvh &bvh,
             const WarpJobList &jobs, const GpuConfig &config,
             const SimOptions &options)
{
    g_simulate_calls.fetch_add(1, std::memory_order_relaxed);
    SimResult result;
    result.jobs = static_cast<uint32_t>(jobs.size());

    TraversalTape *record = options.record_tape;
    const TraversalTape *replay = options.replay_tape;
    SMS_ASSERT(!(record && replay),
               "a run cannot record and replay a tape at once");
    if (record) {
        record->jobs.assign(jobs.size(), JobTape{});
        // Quantized layouts change the functional traversal (superset
        // visits), so the variant digest keys the tape alongside the
        // job stream; the default variant folds in 0.
        record->fingerprint =
            workloadFingerprint(jobs, bvh) ^ config.variant().digest();
    }
    if (replay) {
        SMS_ASSERT(replay->jobs.size() == jobs.size(),
                   "traversal tape holds %zu jobs but the workload has "
                   "%zu",
                   replay->jobs.size(), jobs.size());
    }

    const QuantizedBvh *qbvh = options.quantized_bvh;
    if (config.node_layout.isQuantized() && !replay) {
        SMS_ASSERT(qbvh && qbvh->layout() == config.node_layout,
                   "quantized node layout requires a matching decoded "
                   "QuantizedBvh in SimOptions");
    }
    if (!config.node_layout.isQuantized())
        qbvh = nullptr;

    // Architecture support structures: both are cheap pure functions of
    // (bvh) resp. (jobs, bvh, arch config), so execute and replay
    // rebuild identical copies instead of serializing them anywhere.
    StacklessLinks links;
    PredictorSchedule predictor;
    if (config.traversal_arch.kind == TraversalArchKind::Stackless)
        links = StacklessLinks::build(bvh);
    if (config.traversal_arch.kind == TraversalArchKind::Predicted)
        predictor =
            buildPredictorSchedule(jobs, bvh, config.traversal_arch);
    const StacklessLinks *links_p =
        config.traversal_arch.kind == TraversalArchKind::Stackless ? &links
                                                                   : nullptr;
    const PredictorSchedule *predictor_p =
        config.traversal_arch.kind == TraversalArchKind::Predicted
            ? &predictor
            : nullptr;

    MemorySystem mem(config.resolvedMemConfig(), config.num_sms);
    std::vector<SharedMemory> shared_mems(
        config.num_sms, SharedMemory(config.shared_latency));

    // Timeline: this run is one trace process; each (SM, warp slot)
    // pair is a thread track. Deep layers (stack model, caches, DRAM)
    // read the context this loop maintains.
    const bool tl = timelineAnyOn();
    uint32_t tl_pid = 0;
    if (tl) {
        tl_pid = timelineNewProcess(options.timeline_label.empty()
                                        ? "simulate (cycles)"
                                        : options.timeline_label);
        timelineContext().pid = tl_pid;
    }

    // Flat sorted lookup instead of a node-based std::set: the traced
    // set is tiny and checked once per admitted job.
    std::vector<uint32_t> traced_warps(options.depth_trace_warps);
    std::sort(traced_warps.begin(), traced_warps.end());
    traced_warps.erase(
        std::unique(traced_warps.begin(), traced_warps.end()),
        traced_warps.end());
    auto warp_traced = [&](uint32_t warp_id) {
        return std::binary_search(traced_warps.begin(),
                                  traced_warps.end(), warp_id);
    };

    // Dependency edges: children of each job. Distinct warps are
    // counted with a flat bitmap over warp ids (dense by construction)
    // rather than a std::set insert per job.
    std::vector<std::vector<uint32_t>> children(jobs.size());
    std::vector<JobState> states(jobs.size());
    // Wavefront barriers (reordered streams): distinct barrier values
    // ascending, the jobs gated on each, and how many jobs with id <=
    // the barrier are still incomplete. Job ids are dense (asserted
    // below), so the initial remaining count is barrier + 1.
    std::vector<int32_t> barrier_values;
    std::vector<std::vector<uint32_t>> barrier_jobs;
    std::vector<uint32_t> barrier_remaining;
    std::vector<uint8_t> warp_seen;
    uint32_t traced_jobs = 0;
    for (uint32_t j = 0; j < jobs.size(); ++j) {
        SMS_ASSERT(jobs[j].job_id == j, "jobs must be indexed by job_id");
        if (jobs[j].parent >= 0) {
            SMS_ASSERT(jobs[j].barrier < 0,
                       "a job cannot carry both a parent and a barrier");
            SMS_ASSERT(static_cast<uint32_t>(jobs[j].parent) < j,
                       "parent must precede child");
            children[static_cast<uint32_t>(jobs[j].parent)].push_back(j);
        } else if (jobs[j].barrier >= 0) {
            SMS_ASSERT(static_cast<uint32_t>(jobs[j].barrier) < j,
                       "barrier must precede the gated job");
            auto it = std::lower_bound(barrier_values.begin(),
                                       barrier_values.end(),
                                       jobs[j].barrier);
            size_t k = static_cast<size_t>(it - barrier_values.begin());
            if (it == barrier_values.end() || *it != jobs[j].barrier) {
                barrier_values.insert(it, jobs[j].barrier);
                barrier_jobs.emplace(barrier_jobs.begin() + k);
                barrier_remaining.insert(
                    barrier_remaining.begin() + k,
                    static_cast<uint32_t>(jobs[j].barrier) + 1);
            }
            barrier_jobs[k].push_back(j);
        } else {
            states[j].is_ready = true;
            states[j].ready = 0;
        }
        result.rays += jobs[j].activeLanes();
        uint32_t warp_id = jobs[j].warp_id;
        if (warp_id >= warp_seen.size())
            warp_seen.resize(warp_id + 1, 0);
        if (!warp_seen[warp_id]) {
            warp_seen[warp_id] = 1;
            ++result.warps;
        }
        if (!traced_warps.empty() && warp_traced(warp_id))
            ++traced_jobs;
    }
    // A traced job emits one record per push/pop; pre-size for a deep
    // traversal so the hot observer path rarely reallocates.
    if (traced_jobs > 0)
        result.depth_trace.reserve(static_cast<size_t>(traced_jobs) * 512);

    // Per-SM RT-unit occupancy. The pending queue only ever needs its
    // minimum, so it is a binary min-heap rather than a std::set: no
    // per-insert node allocation, and (ready, job) pairs are unique so
    // the pop order is identical to the ordered-set iteration.
    using PendingEntry = std::pair<Cycle, uint32_t>;
    struct SmState
    {
        std::vector<uint32_t> free_slots;
        /** Ready jobs waiting for a slot, min-heap on (ready, job). */
        std::priority_queue<PendingEntry, std::vector<PendingEntry>,
                            std::greater<>>
            pending;
    };
    std::vector<SmState> sms(config.num_sms);
    for (auto &sm : sms)
        for (uint32_t s = 0; s < config.max_warps_per_rt; ++s)
            sm.free_slots.push_back(config.max_warps_per_rt - 1 - s);

    // Event queue: (cycle, sequence, in-flight index). The sequence
    // breaks ties deterministically.
    using Event = std::tuple<Cycle, uint64_t, uint32_t>;
    std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
    uint64_t seq = 0;

    std::vector<InFlight> inflight;
    std::vector<uint32_t> free_inflight;

    // Local-spill frames recycle every kLocalSpillFrames jobs (job_ids
    // congruent mod 8192 share a frame). Two *concurrently* in-flight
    // jobs on the same frame would silently alias spill traffic, so
    // track per-frame occupancy and assert exclusivity.
    std::vector<uint8_t> spill_frame_busy(kLocalSpillFrames, 0);

    uint64_t shared_bytes_per_warp = config.stack.sharedBytesPerWarp();

    auto admit = [&](uint32_t job_index, uint32_t sm_id, Cycle cycle) {
        SmState &sm = sms[sm_id];
        SMS_ASSERT(!sm.free_slots.empty(), "admit without free slot");
        uint32_t slot = sm.free_slots.back();
        sm.free_slots.pop_back();

        const WarpJob &job = jobs[job_index];
        Addr shared_base = slot * shared_bytes_per_warp;
        Addr spill_frame = job.job_id % kLocalSpillFrames;
        SMS_ASSERT(!spill_frame_busy[spill_frame],
                   "local-spill frame %llu aliased: job %u admitted "
                   "while a job with job_id ≡ %u (mod %llu) is still in "
                   "flight",
                   static_cast<unsigned long long>(spill_frame),
                   job.job_id, job.job_id,
                   static_cast<unsigned long long>(kLocalSpillFrames));
        spill_frame_busy[spill_frame] = 1;
        Addr local_base = kLocalSpillBase + spill_frame * kLocalSpillStride;

        uint32_t idx;
        if (!free_inflight.empty()) {
            idx = free_inflight.back();
            free_inflight.pop_back();
        } else {
            idx = static_cast<uint32_t>(inflight.size());
            inflight.emplace_back();
        }
        InFlight &fl = inflight[idx];
        fl.job_index = job_index;
        fl.slot = slot;
        fl.admitted = cycle;
        fl.in_stack_phase = false;
        if (tl)
            timelineNameThread(
                tl_pid, sm_id * config.max_warps_per_rt + slot,
                "SM" + std::to_string(sm_id) + " slot" +
                    std::to_string(slot));
        // Recycled slots rearm their existing sim/collector in place:
        // the stack model, scratch arenas and tape state all keep their
        // allocations across the thousands of jobs sharing the slot.
        JobTape *rec = record ? &record->jobs[job_index] : nullptr;
        const JobTape *rep = replay ? &replay->jobs[job_index] : nullptr;
        bool traced = warp_traced(job.warp_id);
        if (fl.sim) {
            fl.collector->reinit(job.warp_id);
            fl.sim->reinit(job, sm_id, shared_base, local_base,
                           shared_mems[sm_id],
                           traced ? fl.collector.get() : nullptr, rec, rep,
                           &result.depth_hist);
        } else {
            fl.collector =
                std::make_unique<DepthCollector>(result, job.warp_id);
            fl.sim = std::make_unique<TraversalSim>(
                scene, bvh, config, job, sm_id, shared_base, local_base,
                mem, shared_mems[sm_id],
                traced ? fl.collector.get() : nullptr, rec, rep,
                &result.depth_hist, qbvh, links_p, predictor_p);
        }
        events.emplace(cycle, seq++, idx);
    };

    auto sm_of = [&](uint32_t job_index) {
        return jobs[job_index].warp_id % config.num_sms;
    };

    auto schedule_sm = [&](uint32_t sm_id, Cycle now) {
        SmState &sm = sms[sm_id];
        while (!sm.free_slots.empty() && !sm.pending.empty()) {
            auto [ready, job_index] = sm.pending.top();
            sm.pending.pop();
            admit(job_index, sm_id, std::max(now, ready));
        }
    };

    // Seed: initially-ready jobs enter their SM's pending queue.
    for (uint32_t j = 0; j < jobs.size(); ++j)
        if (states[j].is_ready)
            sms[sm_of(j)].pending.push({states[j].ready, j});
    for (uint32_t s = 0; s < config.num_sms; ++s)
        schedule_sm(s, 0);

    uint32_t completed_jobs = 0;
    while (!events.empty()) {
        auto [cycle, event_seq, idx] = events.top();
        (void)event_seq;
        events.pop();
        InFlight &fl = inflight[idx];
        if (tl) {
            TimelineContext &ctx = timelineContext();
            ctx.tid = sm_of(fl.job_index) * config.max_warps_per_rt +
                      fl.slot;
            ctx.now = cycle;
        }

        // The frame ends at the latest *event* retirement, not merely
        // the latest job completion: a zero-latency completion tie
        // (several events sharing the final cycle, ordered by seq)
        // must not under-report the frame length whichever event the
        // heap happens to pop last.
        if (cycle > result.cycles)
            result.cycles = cycle;

        if (fl.in_stack_phase) {
            Cycle done = fl.sim->stepStack(cycle);
            SMS_ASSERT(done >= cycle, "time went backwards");
            fl.in_stack_phase = false;
            events.emplace(done, seq++, idx);
            continue;
        }
        if (!fl.sim->done()) {
            Cycle op_done = fl.sim->stepFetch(cycle);
            SMS_ASSERT(op_done >= cycle, "time went backwards");
            fl.in_stack_phase = true;
            events.emplace(op_done, seq++, idx);
            continue;
        }

        // Job complete: harvest, free the slot, release dependents.
        uint32_t job_index = fl.job_index;
        uint32_t sm_id = sm_of(job_index);
        states[job_index].completed = true;
        states[job_index].completion = cycle;
        ++completed_jobs;

        result.ops.merge(fl.sim->counters());
        result.stack.merge(fl.sim->stackStats());
        result.instructions += fl.sim->counters().instructions;
        result.mismatches += fl.sim->mismatches();

        // Cycle-accounting conservation, per job, at zero epsilon: the
        // leaf attribution must cover the job's slot residency exactly.
        // Checked unconditionally — a leak here means the timing model
        // and the attribution disagree about where time went.
        {
            CycleAccount acct = fl.sim->account();
            acct.warp_active_cycles = cycle - fl.admitted;
            SMS_ASSERT(acct.conserved(),
                       "cycle-accounting leak on job %u: leaves sum to "
                       "%llu over %llu active cycles",
                       job_index,
                       static_cast<unsigned long long>(acct.activeSum()),
                       static_cast<unsigned long long>(
                           acct.warp_active_cycles));
            if (result.sm_accounting.empty())
                result.sm_accounting.resize(config.num_sms);
            result.sm_accounting[sm_id].merge(acct);
        }

        sms[sm_id].free_slots.push_back(fl.slot);
        spill_frame_busy[jobs[job_index].job_id % kLocalSpillFrames] = 0;
        // The sim and collector stay alive for the next job admitted to
        // this in-flight slot (admit() rearms them via reinit()).
        free_inflight.push_back(idx);

        for (uint32_t child : children[job_index]) {
            JobState &cs = states[child];
            // Shadow batches launch straight from the hit results; the
            // next bounce additionally waits for shading.
            Cycle extra = jobs[child].any_hit
                              ? 0
                              : config.timing.shading_latency;
            cs.ready = cycle + extra;
            cs.is_ready = true;
            sms[sm_of(child)].pending.push({cs.ready, child});
        }
        // Wavefront barriers: this completion retires one pending
        // dependency of every barrier at or beyond this job id. A
        // barrier whose remaining count hits zero releases its whole
        // batch (shadow batches immediately, bounces after shading),
        // mirroring the parent-edge semantics above.
        std::vector<uint32_t> barrier_released;
        if (!barrier_values.empty()) {
            auto it = std::lower_bound(barrier_values.begin(),
                                       barrier_values.end(),
                                       static_cast<int32_t>(job_index));
            for (size_t k = static_cast<size_t>(
                     it - barrier_values.begin());
                 k < barrier_values.size(); ++k) {
                SMS_ASSERT(barrier_remaining[k] > 0,
                           "barrier %d released twice",
                           barrier_values[k]);
                if (--barrier_remaining[k] == 0)
                    for (uint32_t waiter : barrier_jobs[k])
                        barrier_released.push_back(waiter);
            }
        }
        for (uint32_t waiter : barrier_released) {
            JobState &ws = states[waiter];
            Cycle extra = jobs[waiter].any_hit
                              ? 0
                              : config.timing.shading_latency;
            ws.ready = cycle + extra;
            ws.is_ready = true;
            sms[sm_of(waiter)].pending.push({ws.ready, waiter});
        }

        schedule_sm(sm_id, cycle);
        // A child may target a different SM with idle slots.
        for (uint32_t child : children[job_index]) {
            uint32_t child_sm = sm_of(child);
            if (child_sm != sm_id)
                schedule_sm(child_sm, cycle);
        }
        for (uint32_t waiter : barrier_released) {
            uint32_t waiter_sm = sm_of(waiter);
            if (waiter_sm != sm_id)
                schedule_sm(waiter_sm, cycle);
        }
    }

    SMS_ASSERT(completed_jobs == jobs.size(),
               "deadlock: %u of %zu jobs completed", completed_jobs,
               jobs.size());

    // Close each SM's slot budget: cycles its RT-unit slots were not
    // occupied by a job become idle.done, so per SM (and per run)
    // totalSum() == slot_cycles exactly.
    if (result.sm_accounting.empty())
        result.sm_accounting.resize(config.num_sms);
    for (uint32_t s = 0; s < config.num_sms; ++s) {
        CycleAccount &acct = result.sm_accounting[s];
        acct.slot_cycles =
            static_cast<uint64_t>(config.max_warps_per_rt) * result.cycles;
        uint64_t active = acct.activeSum();
        SMS_ASSERT(active <= acct.slot_cycles,
                   "SM %u attributes %llu active cycles into a %llu-cycle "
                   "slot budget",
                   s, static_cast<unsigned long long>(active),
                   static_cast<unsigned long long>(acct.slot_cycles));
        acct.add(CycleLeaf::IdleDone, acct.slot_cycles - active);
        result.accounting.merge(acct);
    }

    // Aggregate memory statistics.
    for (uint32_t s = 0; s < config.num_sms; ++s) {
        const LevelStats &l1 = mem.l1(s).stats();
        result.l1.loads += l1.loads;
        result.l1.stores += l1.stores;
        result.l1.load_misses += l1.load_misses;
        result.l1.store_misses += l1.store_misses;
        result.l1.writebacks += l1.writebacks;

        for (int cls = 0; cls < kTrafficClassCount; ++cls)
            result.l1_class_misses[cls] +=
                mem.l1(s).missesByClass(static_cast<TrafficClass>(cls));

        const SharedMemStats &sh = shared_mems[s].stats();
        result.shared_mem.accesses += sh.accesses;
        result.shared_mem.lane_requests += sh.lane_requests;
        result.shared_mem.conflict_cycles += sh.conflict_cycles;
        result.shared_mem.conflict_passes += sh.conflict_passes;
        result.shared_mem.conflicted_accesses += sh.conflicted_accesses;
        if (sh.max_passes > result.shared_mem.max_passes)
            result.shared_mem.max_passes = sh.max_passes;
    }
    result.l2 = mem.l2().stats();
    for (int cls = 0; cls < kTrafficClassCount; ++cls)
        result.l2_class_misses[cls] =
            mem.l2().missesByClass(static_cast<TrafficClass>(cls));
    result.dram = mem.dram().stats();
    result.offchip_accesses = mem.offchipAccesses();

    if (record)
        noteTapeRecorded(*record);
    if (replay)
        noteTapeReplayed(*replay);

    // Live telemetry: retire this run's headline counters into the
    // metrics registry. Per simulateJobs() call, not per cycle, so the
    // cost is a handful of relaxed adds — and nothing at all when the
    // gate is off.
    if (metricsOn()) {
        static MetricCounter &m_cycles =
            metricCounter("sim.cycles_retired");
        static MetricCounter &m_instr =
            metricCounter("sim.instructions_retired");
        static MetricCounter &m_rays = metricCounter("sim.rays_retired");
        static MetricCounter &m_jobs = metricCounter("sim.jobs_retired");
        static MetricCounter &m_dram_wait =
            metricCounter("sim.dram_queue_wait_cycles");
        static MetricCounter &m_offchip =
            metricCounter("sim.offchip_accesses");
        static MetricGauge &m_dram_depth =
            metricGauge("sim.dram_max_queue_wait");
        m_cycles.add(result.cycles);
        m_instr.add(result.instructions);
        m_rays.add(result.rays);
        m_jobs.add(result.jobs);
        m_dram_wait.add(result.dram.queue_wait_cycles);
        m_offchip.add(result.offchip_accesses);
        m_dram_depth.max(
            static_cast<int64_t>(result.dram.max_queue_wait));
    }

    if (tl) {
        // Stray emissions after this run fall back to the harness pid.
        TimelineContext &ctx = timelineContext();
        ctx.pid = 0;
        ctx.tid = 0;
        ctx.now = 0;
    }
    return result;
}

} // namespace sms
