/**
 * @file
 * Ray-stream reorder stage implementation.
 */

#include "src/sim/ray_reorder.hpp"

#include <algorithm>
#include <utility>

#include "src/util/check.hpp"

namespace sms {

std::string
RayOrderConfig::name() const
{
    switch (kind) {
    case RayOrderKind::None: return "none";
    case RayOrderKind::OctantMorton: return "mort";
    }
    return "?";
}

namespace {

/** Spread the low 10 bits of @p v to every third bit. */
uint32_t
spreadBits10(uint32_t v)
{
    v &= 0x3ffu;
    v = (v | (v << 16)) & 0x030000ffu;
    v = (v | (v << 8)) & 0x0300f00fu;
    v = (v | (v << 4)) & 0x030c30c3u;
    v = (v | (v << 2)) & 0x09249249u;
    return v;
}

uint32_t
quantizeAxis(float v, float lo, float hi)
{
    if (!(hi > lo))
        return 0;
    float t = (v - lo) / (hi - lo);
    if (!(t > 0.0f))
        t = 0.0f;
    if (t > 1.0f)
        t = 1.0f;
    uint32_t q = static_cast<uint32_t>(t * 1023.0f);
    return q > 1023u ? 1023u : q;
}

/** One pending ray lifted out of its generation-order job. */
struct PendingRay
{
    uint64_t key;
    uint32_t source; ///< original (job << 5 | lane), the stable tiebreak
    uint32_t job;
    uint32_t lane;
};

/** Union of the root node's child boxes (the scene bounds proxy). */
Aabb
rootBounds(const WideBvh &bvh, const WarpJobList &jobs)
{
    Aabb bounds;
    if (!bvh.empty() && bvh.rootRef().isInternal()) {
        const WideNode &root = bvh.nodes()[bvh.rootRef().nodeIndex()];
        for (uint8_t c = 0; c < root.child_count; ++c)
            bounds.extend(root.child_bounds[c]);
    }
    if (bounds.empty()) {
        // Single-leaf or empty BVH: fall back to the ray origins so the
        // Morton grid still spans the batch.
        for (const WarpJob &job : jobs)
            for (uint32_t l = 0; l < kWarpSize; ++l)
                if (job.active[l])
                    bounds.extend(job.rays[l].origin);
    }
    return bounds;
}

} // namespace

uint64_t
rayOrderKey(const Ray &ray, const Aabb &bounds)
{
    uint32_t octant = (ray.dir.x < 0.0f ? 4u : 0u) |
                      (ray.dir.y < 0.0f ? 2u : 0u) |
                      (ray.dir.z < 0.0f ? 1u : 0u);
    uint32_t mx = quantizeAxis(ray.origin.x, bounds.lo.x, bounds.hi.x);
    uint32_t my = quantizeAxis(ray.origin.y, bounds.lo.y, bounds.hi.y);
    uint32_t mz = quantizeAxis(ray.origin.z, bounds.lo.z, bounds.hi.z);
    uint64_t morton = (spreadBits10(mx) << 2) | (spreadBits10(my) << 1) |
                      spreadBits10(mz);
    return (static_cast<uint64_t>(octant) << 30) | morton;
}

WarpJobList
reorderJobs(const WarpJobList &jobs, const WideBvh &bvh,
            const RayOrderConfig &order)
{
    if (!order.active())
        return jobs;

    Aabb bounds = rootBounds(bvh, jobs);

    // Wavefront batches: one per (segment, any_hit) generation, in
    // first-appearance order — the order the untransformed stream
    // produced them, which respects every parent dependency.
    std::vector<std::pair<uint32_t, bool>> batch_keys;
    std::vector<std::vector<PendingRay>> batches;
    for (uint32_t j = 0; j < jobs.size(); ++j) {
        const WarpJob &job = jobs[j];
        std::pair<uint32_t, bool> key{job.segment, job.any_hit};
        size_t b = 0;
        for (; b < batch_keys.size(); ++b)
            if (batch_keys[b] == key)
                break;
        if (b == batch_keys.size()) {
            batch_keys.push_back(key);
            batches.emplace_back();
        }
        for (uint32_t l = 0; l < kWarpSize; ++l) {
            if (!job.active[l])
                continue;
            PendingRay p;
            p.key = rayOrderKey(job.rays[l], bounds);
            p.source = (j << 5) | l;
            p.job = j;
            p.lane = l;
            batches[b].push_back(p);
        }
    }

    WarpJobList out;
    int32_t prev_batch_last = -1;
    for (size_t b = 0; b < batches.size(); ++b) {
        std::vector<PendingRay> &rays = batches[b];
        std::sort(rays.begin(), rays.end(),
                  [](const PendingRay &a, const PendingRay &c) {
                      if (a.key != c.key)
                          return a.key < c.key;
                      return a.source < c.source;
                  });
        int32_t batch_first = static_cast<int32_t>(out.size());
        for (size_t i = 0; i < rays.size(); i += kWarpSize) {
            WarpJob job;
            job.job_id = static_cast<uint32_t>(out.size());
            job.warp_id = job.job_id;
            job.segment = batch_keys[b].first;
            job.any_hit = batch_keys[b].second;
            job.parent = -1;
            job.barrier = prev_batch_last;
            uint32_t lanes =
                static_cast<uint32_t>(std::min<size_t>(kWarpSize,
                                                       rays.size() - i));
            for (uint32_t l = 0; l < lanes; ++l) {
                const PendingRay &p = rays[i + l];
                const WarpJob &src = jobs[p.job];
                job.rays[l] = src.rays[p.lane];
                job.active[l] = true;
                job.expected_t[l] = src.expected_t[p.lane];
                job.expected_prim[l] = src.expected_prim[p.lane];
                job.expected_hit[l] = src.expected_hit[p.lane];
            }
            out.push_back(job);
        }
        if (static_cast<int32_t>(out.size()) > batch_first)
            prev_batch_last = static_cast<int32_t>(out.size()) - 1;
    }
    return out;
}

} // namespace sms
