/**
 * @file
 * Warp jobs: one trace-ray warp instruction as presented to the RT
 * unit, plus its dependency edge to the previous segment of the same
 * warp (shading must finish before the next bounce is traced).
 */

#ifndef SMS_SIM_WARP_JOB_HPP
#define SMS_SIM_WARP_JOB_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "src/core/stack_config.hpp"
#include "src/geometry/ray.hpp"

namespace sms {

/** One warp-level trace-ray instruction. */
struct WarpJob
{
    uint32_t job_id = 0;
    /** Persistent warp id: all jobs of a warp run on the same SM. */
    uint32_t warp_id = 0;
    /** Path segment index (0 = camera rays). */
    uint32_t segment = 0;
    /** Job that must complete (plus shading) before this one starts. */
    int32_t parent = -1;
    /**
     * Wavefront barrier: when >= 0, this job is ready only after every
     * job with job_id <= barrier has completed (plus shading for
     * closest-hit jobs). Emitted by the ray-reorder stage, which
     * replaces 1:1 parent edges with per-batch barriers; mutually
     * exclusive with parent.
     */
    int32_t barrier = -1;
    /** Shadow-ray batch: any-hit semantics, no child jobs. */
    bool any_hit = false;

    std::array<Ray, kWarpSize> rays;
    /** Lane participation mask (paths die at different depths). */
    std::array<bool, kWarpSize> active{};

    /**
     * Functional results recorded at job generation; the timing
     * simulator re-derives them through the hardware stack model and
     * verifies equality (DESIGN.md invariant 2).
     */
    std::array<float, kWarpSize> expected_t{};
    std::array<uint32_t, kWarpSize> expected_prim{};
    std::array<bool, kWarpSize> expected_hit{};

    uint32_t
    activeLanes() const
    {
        uint32_t n = 0;
        for (bool a : active)
            n += a ? 1 : 0;
        return n;
    }
};

/** A full frame's worth of warp jobs (dependency-ordered by id). */
using WarpJobList = std::vector<WarpJob>;

} // namespace sms

#endif // SMS_SIM_WARP_JOB_HPP
