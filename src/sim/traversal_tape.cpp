/**
 * @file
 * Traversal tape: mode selection, process-wide counters, and the
 * workload fingerprint validating tape/workload pairing.
 */

#include "src/sim/traversal_tape.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "src/stats/metrics.hpp"

namespace sms {

namespace {

std::atomic<uint64_t> g_jobs_recorded{0};
std::atomic<uint64_t> g_jobs_replayed{0};
std::atomic<uint64_t> g_bytes{0};
std::atomic<uint64_t> g_disk_loads{0};
std::atomic<uint64_t> g_disk_stores{0};
std::atomic<uint64_t> g_failures{0};

// Pull-collector: publish the existing tape counters into metrics
// snapshots without touching the record/replay hot paths.
const bool g_metrics_collector_registered = [] {
    metricsAddCollector(
        [](const std::function<void(const char *, uint64_t)> &sink) {
            sink("tape.jobs_recorded",
                 g_jobs_recorded.load(std::memory_order_relaxed));
            sink("tape.jobs_replayed",
                 g_jobs_replayed.load(std::memory_order_relaxed));
            sink("tape.disk_loads",
                 g_disk_loads.load(std::memory_order_relaxed));
            sink("tape.disk_stores",
                 g_disk_stores.load(std::memory_order_relaxed));
            sink("tape.failures",
                 g_failures.load(std::memory_order_relaxed));
        });
    return true;
}();

uint64_t
hashU32(uint64_t h, uint32_t v)
{
    // One 64-bit mix per word instead of byte-wise FNV: the fingerprint
    // covers every ray of every job, so it is on the warm replay path.
    h ^= v;
    h *= 0x100000001b3ull;
    h ^= h >> 29;
    return h;
}

uint64_t
hashF32(uint64_t h, float f)
{
    uint32_t bits;
    std::memcpy(&bits, &f, sizeof bits);
    return hashU32(h, bits);
}

} // namespace

TapeMode
traversalTapeMode()
{
    // With a workload cache configured (SMS_WORKLOAD_CACHE; probed
    // directly since the cache itself lives a layer above this
    // library), tapes persist next to the scene snapshots by default: a
    // warm sweep replays every cell instead of re-recording column 0 on
    // each run. Without one there is nowhere durable to put the tape,
    // so share it in memory.
    const char *cache = std::getenv("SMS_WORKLOAD_CACHE");
    TapeMode fallback = cache && *cache ? TapeMode::Disk : TapeMode::Mem;
    const char *env = std::getenv("SMS_TRAVERSAL_TAPE");
    if (!env || !*env)
        return fallback;
    if (std::strcmp(env, "mem") == 0)
        return TapeMode::Mem;
    if (std::strcmp(env, "off") == 0)
        return TapeMode::Off;
    if (std::strcmp(env, "disk") == 0)
        return TapeMode::Disk;
    warn("SMS_TRAVERSAL_TAPE='%s' is not a recognized mode (expected "
         "off, mem or disk); using %s",
         env, tapeModeName(fallback));
    return fallback;
}

const char *
tapeModeName(TapeMode mode)
{
    switch (mode) {
    case TapeMode::Off: return "off";
    case TapeMode::Mem: return "mem";
    case TapeMode::Disk: return "disk";
    }
    return "?";
}

TraversalTapeStats
traversalTapeStats()
{
    TraversalTapeStats s;
    s.jobs_recorded = g_jobs_recorded.load();
    s.jobs_replayed = g_jobs_replayed.load();
    s.bytes = g_bytes.load();
    s.disk_loads = g_disk_loads.load();
    s.disk_stores = g_disk_stores.load();
    s.failures = g_failures.load();
    return s;
}

void
resetTraversalTapeStats()
{
    g_jobs_recorded = 0;
    g_jobs_replayed = 0;
    g_bytes = 0;
    g_disk_loads = 0;
    g_disk_stores = 0;
    g_failures = 0;
}

uint64_t
workloadFingerprint(const WarpJobList &jobs, const WideBvh &bvh)
{
    uint64_t h = 0xcbf29ce484222325ull;
    h = hashU32(h, kTraversalTapeVersion);
    h = hashU32(h, kWarpSize);
    h = hashU32(h, bvh.rootRef().bits());
    h = hashU32(h, static_cast<uint32_t>(bvh.nodes().size()));
    h = hashU32(h, static_cast<uint32_t>(bvh.primIndices().size()));
    h = hashU32(h, static_cast<uint32_t>(jobs.size()));
    for (const WarpJob &job : jobs) {
        h = hashU32(h, job.job_id);
        h = hashU32(h, job.warp_id);
        h = hashU32(h, static_cast<uint32_t>(job.parent));
        // Barriers only exist on reordered streams; hashing them behind
        // the guard keeps every legacy (barrier-free) fingerprint — and
        // thus every existing tape and result-cache entry — unchanged.
        if (job.barrier >= 0) {
            h = hashU32(h, 0x9e3779b9u);
            h = hashU32(h, static_cast<uint32_t>(job.barrier));
        }
        h = hashU32(h, job.any_hit ? 1u : 0u);
        uint32_t mask = 0;
        for (uint32_t i = 0; i < kWarpSize; ++i)
            mask |= job.active[i] ? (1u << i) : 0u;
        h = hashU32(h, mask);
        for (uint32_t i = 0; i < kWarpSize; ++i) {
            if (!job.active[i])
                continue;
            const Ray &ray = job.rays[i];
            h = hashF32(h, ray.origin.x);
            h = hashF32(h, ray.origin.y);
            h = hashF32(h, ray.origin.z);
            h = hashF32(h, ray.dir.x);
            h = hashF32(h, ray.dir.y);
            h = hashF32(h, ray.dir.z);
            h = hashF32(h, ray.tMin);
            h = hashF32(h, ray.tMax);
        }
    }
    return h;
}

void
noteTapeRecorded(const TraversalTape &tape)
{
    g_jobs_recorded += tape.jobs.size();
    g_bytes += tape.totalBytes();
}

void
noteTapeReplayed(const TraversalTape &tape)
{
    g_jobs_replayed += tape.jobs.size();
}

void
noteTapeFailure()
{
    ++g_failures;
}

void
noteTapeDiskLoad()
{
    ++g_disk_loads;
}

void
noteTapeDiskStore()
{
    ++g_disk_stores;
}

} // namespace sms
