/**
 * @file
 * Whole-GPU configuration: the Table I baseline parameters plus the
 * stack configuration under test and the RT-unit operation timings.
 */

#ifndef SMS_SIM_GPU_CONFIG_HPP
#define SMS_SIM_GPU_CONFIG_HPP

#include <cstdint>
#include <string>

#include "src/bvh/node_layout.hpp"
#include "src/core/stack_config.hpp"
#include "src/memory/memory_system.hpp"
#include "src/sim/ray_reorder.hpp"

namespace sms {

/** Fixed-function operation latencies inside the RT unit. */
struct RtUnitTiming
{
    /** Ray-box phase latency of one internal-node visit (6-wide test). */
    Cycle box_op = 10;
    /** Base latency of a leaf visit. */
    Cycle leaf_op_base = 10;
    /** Additional latency per primitive tested in a leaf. */
    Cycle leaf_op_per_prim = 5;
    /** Stack-manager bookkeeping latency per transaction round. */
    Cycle stack_round = 2;
    /**
     * Per-internal-visit decode latency of a quantized node layout
     * (dequantizing six child boxes before the ray-box phase). Only
     * charged when the node layout is quantized.
     */
    Cycle node_decode_op = 4;
    /**
     * SIMT-core shading latency between a warp's trace instructions
     * (hit shading + next-bounce setup). Runs outside the RT unit.
     */
    Cycle shading_latency = 200;
};

/** How a warp walks the BVH between its fetch and update phases. */
enum class TraversalArchKind : uint8_t
{
    /** Per-lane short stack with the warp stack manager (the paper). */
    Stack,
    /**
     * No per-lane stack: interior nodes carry parent/slot links in
     * their metadata word and the lane backtracks through them,
     * re-testing child boxes to find the next unvisited subtree.
     */
    Stackless,
    /**
     * Stack-based traversal fronted by a direction/origin-quantized
     * ray-hash table whose hits jump straight to a predicted leaf
     * before normal traversal verifies or falls back.
     */
    Predicted,
};

/**
 * Traversal-architecture axis: which machine executes the traversal
 * loop. Like node layout and ray order this changes WHICH steps happen
 * (stackless revisits interior nodes; prediction front-loads a leaf
 * visit), so it participates in the variant digest.
 */
struct TraversalArchConfig
{
    TraversalArchKind kind = TraversalArchKind::Stack;
    /** log2 of the predictor hash-table entry count (Predicted only). */
    uint32_t predictor_entries_log2 = 12;
    /** High mantissa bits per origin coordinate folded into the hash. */
    uint32_t predictor_origin_bits = 6;
    /** High mantissa bits per direction coordinate folded in. */
    uint32_t predictor_dir_bits = 8;

    static TraversalArchConfig
    stack()
    {
        return {};
    }

    static TraversalArchConfig
    stackless()
    {
        TraversalArchConfig c;
        c.kind = TraversalArchKind::Stackless;
        return c;
    }

    static TraversalArchConfig
    predicted()
    {
        TraversalArchConfig c;
        c.kind = TraversalArchKind::Predicted;
        return c;
    }

    /** True when the architecture differs from the paper's stack one. */
    bool active() const { return kind != TraversalArchKind::Stack; }

    /** Short display name: "stack", "sl" or "pred". */
    const char *name() const;

    bool
    operator==(const TraversalArchConfig &o) const
    {
        if (kind != o.kind)
            return false;
        if (kind != TraversalArchKind::Predicted)
            return true;
        return predictor_entries_log2 == o.predictor_entries_log2 &&
               predictor_origin_bits == o.predictor_origin_bits &&
               predictor_dir_bits == o.predictor_dir_bits;
    }

    bool operator!=(const TraversalArchConfig &o) const { return !(*this == o); }
};

/**
 * The functional-traversal side of a configuration: node layout, ray
 * scheduling and traversal architecture. Unlike the stack/memory axes,
 * these change WHICH traversal steps happen (inflated boxes visit
 * supersets; reordering repacks the job stream; stackless/predicted
 * machines reshape the step stream), so traversal tapes and workload
 * fingerprints are keyed per variant via digest().
 */
struct TraversalVariant
{
    NodeLayoutConfig layout;
    RayOrderConfig order;
    TraversalArchConfig arch;

    /** Exact layout, generation order, stack machine — the baseline. */
    bool
    isDefault() const
    {
        return !layout.isQuantized() && !order.active() && !arch.active();
    }

    /**
     * Key folded into tape/workload fingerprints. Exactly 0 for the
     * default variant so every pre-existing fingerprint, tape file and
     * golden record is unchanged.
     */
    uint64_t digest() const;

    /** Display tag: "" for default, else e.g. "q8", "sl", "q8+pred". */
    std::string tag() const;
};

/**
 * GPU configuration under test.
 *
 * unified_bytes is the L1D/shared-memory array (64 KB in Table I);
 * enabling an SH stack carves its footprint out of the L1D
 * (§IV-B: SH_8 => 8 KB shared + 56 KB L1D). l1_override_bytes forces
 * an explicit L1D size instead (used by the Fig. 6b sweep).
 */
struct GpuConfig
{
    uint32_t num_sms = 8;
    uint32_t max_warps_per_rt = 4;

    uint64_t unified_bytes = 64 * 1024;
    /** When non-zero, bypasses the carve-out and sets the L1D size. */
    uint64_t l1_override_bytes = 0;

    MemoryHierarchyConfig mem;
    Cycle shared_latency = 20;

    StackConfig stack;
    RtUnitTiming timing;

    /** Node encoding the RT unit fetches (exact BVH6 by default). */
    NodeLayoutConfig node_layout;
    /** Ray scheduling between path segments (generation order default). */
    RayOrderConfig ray_order;
    /** Traversal architecture (per-lane short stack by default). */
    TraversalArchConfig traversal_arch;

    /** Per-lane instructions charged for shading per closest-hit job. */
    uint32_t shading_instructions = 32;
    /** Per-lane instructions charged per shadow (any-hit) job. */
    uint32_t shadow_instructions = 8;

    /** The paper's Table I baseline (mobile SoC GPU). */
    static GpuConfig tableI();

    /** Effective L1D bytes after the shared-memory carve-out. */
    uint64_t effectiveL1Bytes() const;

    /** Shared-memory bytes reserved for SH stacks per SM. */
    uint64_t
    sharedStackBytes() const
    {
        return stack.sharedBytesPerSm(max_warps_per_rt);
    }

    /** Finalized memory-hierarchy config (L1 size resolved). */
    MemoryHierarchyConfig resolvedMemConfig() const;

    /** The functional-traversal variant selected by this config. */
    TraversalVariant
    variant() const
    {
        return TraversalVariant{node_layout, ray_order, traversal_arch};
    }
};

} // namespace sms

#endif // SMS_SIM_GPU_CONFIG_HPP
