/**
 * @file
 * Whole-GPU configuration: the Table I baseline parameters plus the
 * stack configuration under test and the RT-unit operation timings.
 */

#ifndef SMS_SIM_GPU_CONFIG_HPP
#define SMS_SIM_GPU_CONFIG_HPP

#include <cstdint>
#include <string>

#include "src/bvh/node_layout.hpp"
#include "src/core/stack_config.hpp"
#include "src/memory/memory_system.hpp"
#include "src/sim/ray_reorder.hpp"

namespace sms {

/** Fixed-function operation latencies inside the RT unit. */
struct RtUnitTiming
{
    /** Ray-box phase latency of one internal-node visit (6-wide test). */
    Cycle box_op = 10;
    /** Base latency of a leaf visit. */
    Cycle leaf_op_base = 10;
    /** Additional latency per primitive tested in a leaf. */
    Cycle leaf_op_per_prim = 5;
    /** Stack-manager bookkeeping latency per transaction round. */
    Cycle stack_round = 2;
    /**
     * Per-internal-visit decode latency of a quantized node layout
     * (dequantizing six child boxes before the ray-box phase). Only
     * charged when the node layout is quantized.
     */
    Cycle node_decode_op = 4;
    /**
     * SIMT-core shading latency between a warp's trace instructions
     * (hit shading + next-bounce setup). Runs outside the RT unit.
     */
    Cycle shading_latency = 200;
};

/**
 * The functional-traversal side of a configuration: node layout plus
 * ray scheduling. Unlike the stack/memory axes, these change WHICH
 * traversal steps happen (inflated boxes visit supersets; reordering
 * repacks the job stream), so traversal tapes and workload fingerprints
 * are keyed per variant via digest().
 */
struct TraversalVariant
{
    NodeLayoutConfig layout;
    RayOrderConfig order;

    /** Exact layout, generation-order scheduling — the paper baseline. */
    bool
    isDefault() const
    {
        return !layout.isQuantized() && !order.active();
    }

    /**
     * Key folded into tape/workload fingerprints. Exactly 0 for the
     * default variant so every pre-existing fingerprint, tape file and
     * golden record is unchanged.
     */
    uint64_t digest() const;

    /** Display tag: "" for default, else e.g. "q8", "mort", "q8+mort". */
    std::string tag() const;
};

/**
 * GPU configuration under test.
 *
 * unified_bytes is the L1D/shared-memory array (64 KB in Table I);
 * enabling an SH stack carves its footprint out of the L1D
 * (§IV-B: SH_8 => 8 KB shared + 56 KB L1D). l1_override_bytes forces
 * an explicit L1D size instead (used by the Fig. 6b sweep).
 */
struct GpuConfig
{
    uint32_t num_sms = 8;
    uint32_t max_warps_per_rt = 4;

    uint64_t unified_bytes = 64 * 1024;
    /** When non-zero, bypasses the carve-out and sets the L1D size. */
    uint64_t l1_override_bytes = 0;

    MemoryHierarchyConfig mem;
    Cycle shared_latency = 20;

    StackConfig stack;
    RtUnitTiming timing;

    /** Node encoding the RT unit fetches (exact BVH6 by default). */
    NodeLayoutConfig node_layout;
    /** Ray scheduling between path segments (generation order default). */
    RayOrderConfig ray_order;

    /** Per-lane instructions charged for shading per closest-hit job. */
    uint32_t shading_instructions = 32;
    /** Per-lane instructions charged per shadow (any-hit) job. */
    uint32_t shadow_instructions = 8;

    /** The paper's Table I baseline (mobile SoC GPU). */
    static GpuConfig tableI();

    /** Effective L1D bytes after the shared-memory carve-out. */
    uint64_t effectiveL1Bytes() const;

    /** Shared-memory bytes reserved for SH stacks per SM. */
    uint64_t
    sharedStackBytes() const
    {
        return stack.sharedBytesPerSm(max_warps_per_rt);
    }

    /** Finalized memory-hierarchy config (L1 size resolved). */
    MemoryHierarchyConfig resolvedMemConfig() const;

    /** The functional-traversal variant selected by this config. */
    TraversalVariant
    variant() const
    {
        return TraversalVariant{node_layout, ray_order};
    }
};

} // namespace sms

#endif // SMS_SIM_GPU_CONFIG_HPP
