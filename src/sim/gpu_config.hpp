/**
 * @file
 * Whole-GPU configuration: the Table I baseline parameters plus the
 * stack configuration under test and the RT-unit operation timings.
 */

#ifndef SMS_SIM_GPU_CONFIG_HPP
#define SMS_SIM_GPU_CONFIG_HPP

#include <cstdint>

#include "src/core/stack_config.hpp"
#include "src/memory/memory_system.hpp"

namespace sms {

/** Fixed-function operation latencies inside the RT unit. */
struct RtUnitTiming
{
    /** Ray-box phase latency of one internal-node visit (6-wide test). */
    Cycle box_op = 10;
    /** Base latency of a leaf visit. */
    Cycle leaf_op_base = 10;
    /** Additional latency per primitive tested in a leaf. */
    Cycle leaf_op_per_prim = 5;
    /** Stack-manager bookkeeping latency per transaction round. */
    Cycle stack_round = 2;
    /**
     * SIMT-core shading latency between a warp's trace instructions
     * (hit shading + next-bounce setup). Runs outside the RT unit.
     */
    Cycle shading_latency = 200;
};

/**
 * GPU configuration under test.
 *
 * unified_bytes is the L1D/shared-memory array (64 KB in Table I);
 * enabling an SH stack carves its footprint out of the L1D
 * (§IV-B: SH_8 => 8 KB shared + 56 KB L1D). l1_override_bytes forces
 * an explicit L1D size instead (used by the Fig. 6b sweep).
 */
struct GpuConfig
{
    uint32_t num_sms = 8;
    uint32_t max_warps_per_rt = 4;

    uint64_t unified_bytes = 64 * 1024;
    /** When non-zero, bypasses the carve-out and sets the L1D size. */
    uint64_t l1_override_bytes = 0;

    MemoryHierarchyConfig mem;
    Cycle shared_latency = 20;

    StackConfig stack;
    RtUnitTiming timing;

    /** Per-lane instructions charged for shading per closest-hit job. */
    uint32_t shading_instructions = 32;
    /** Per-lane instructions charged per shadow (any-hit) job. */
    uint32_t shadow_instructions = 8;

    /** The paper's Table I baseline (mobile SoC GPU). */
    static GpuConfig tableI();

    /** Effective L1D bytes after the shared-memory carve-out. */
    uint64_t effectiveL1Bytes() const;

    /** Shared-memory bytes reserved for SH stacks per SM. */
    uint64_t
    sharedStackBytes() const
    {
        return stack.sharedBytesPerSm(max_warps_per_rt);
    }

    /** Finalized memory-hierarchy config (L1 size resolved). */
    MemoryHierarchyConfig resolvedMemConfig() const;
};

} // namespace sms

#endif // SMS_SIM_GPU_CONFIG_HPP
