/**
 * @file
 * First-order energy estimation over simulation results.
 *
 * The paper motivates SMS with the energy cost of on-chip storage
 * (§III-C, §VII-D: enlarging the RB stack "incurs substantial hardware
 * cost and energy consumption") but does not quantify it. This
 * extension applies AccelWattch/McPAT-style per-event energies to the
 * simulator's counters so the RB-vs-SH-vs-DRAM trade-off can be
 * compared in Joules as well as cycles.
 *
 * Constants are rough 28 nm-class per-access energies; only their
 * relative magnitudes (register file << shared << L1 << L2 << DRAM)
 * matter for the comparisons made here.
 */

#ifndef SMS_SIM_ENERGY_HPP
#define SMS_SIM_ENERGY_HPP

#include "src/sim/gpu_sim.hpp"

namespace sms {

/** Per-event energy constants in picojoules. */
struct EnergyModel
{
    /** One RB-stack entry access (small SRAM/register file). */
    double rb_entry_pj = 2.0;
    /** One 8 B shared-memory access (per lane request). */
    double shared_pj = 11.0;
    /** One L1D line lookup. */
    double l1_pj = 25.0;
    /** One L2 line access. */
    double l2_pj = 80.0;
    /** One DRAM line transfer. */
    double dram_pj = 1300.0;
    /** One ray-box or ray-triangle test in the RT unit. */
    double op_pj = 6.0;
    /**
     * Static leakage of the RB stack storage per thread-entry per
     * kilocycle — what makes over-provisioned RB stacks costly.
     */
    double rb_leak_pj_per_entry_kcycle = 0.4;
};

/** Energy attributed to each subsystem, in picojoules. */
struct EnergyBreakdown
{
    double rb_dynamic = 0.0;
    double rb_static = 0.0;
    double shared = 0.0;
    double l1 = 0.0;
    double l2 = 0.0;
    double dram = 0.0;
    double ops = 0.0;

    double
    total() const
    {
        return rb_dynamic + rb_static + shared + l1 + l2 + dram + ops;
    }
};

/**
 * Estimate frame energy from a simulation result.
 *
 * @param result   the simulated frame
 * @param config   the GPU configuration that produced it (for the RB
 *                 storage provisioned per SM)
 * @param model    per-event energies
 */
EnergyBreakdown estimateEnergy(const SimResult &result,
                               const GpuConfig &config,
                               const EnergyModel &model = {});

} // namespace sms

#endif // SMS_SIM_ENERGY_HPP
