/**
 * @file
 * Top-level GPU timing simulation: distributes warp jobs over SMs,
 * models the 4-deep RT-unit warp buffer per SM, and advances in-flight
 * warps through a deterministic global event loop so the shared L2 and
 * DRAM observe accesses in simulated-time order.
 */

#ifndef SMS_SIM_GPU_SIM_HPP
#define SMS_SIM_GPU_SIM_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "src/bvh/wide_bvh.hpp"
#include "src/core/stack_txn.hpp"
#include "src/memory/memory_system.hpp"
#include "src/memory/shared_memory.hpp"
#include "src/scene/scene.hpp"
#include "src/sim/gpu_config.hpp"
#include "src/sim/traversal_sim.hpp"
#include "src/sim/warp_job.hpp"
#include "src/stats/cycle_accounting.hpp"
#include "src/stats/histogram.hpp"

namespace sms {

class QuantizedBvh;

/** One record of the per-access depth trace (Fig. 10). */
struct DepthTraceRecord
{
    uint32_t warp_id;
    uint32_t access_index; ///< per-warp running access count
    uint32_t lane;
    uint32_t depth;
};

/** Optional simulation instrumentation knobs. */
struct SimOptions
{
    /** Record a (warp, access, lane, depth) trace for these warp ids. */
    std::vector<uint32_t> depth_trace_warps;

    /**
     * When non-null, record every job's functional traversal into this
     * tape while executing (the tape is sized and fingerprinted here).
     */
    TraversalTape *record_tape = nullptr;
    /**
     * When non-null, drive every job from this previously recorded
     * tape instead of running the geometry work. The tape must match
     * the job stream (fingerprint-checked). Mutually exclusive with
     * record_tape.
     */
    const TraversalTape *replay_tape = nullptr;

    /**
     * Timeline track name for this run ("scene config"); one trace
     * process per simulateJobs() call. Empty picks a generic name.
     * Only consulted when the timeline tracer is enabled.
     */
    std::string timeline_label;

    /**
     * Decoded quantized BVH matching config.node_layout. Required when
     * the layout is quantized and geometry executes (i.e. not a pure
     * tape replay): traversal intersects the decoded boxes and fetches
     * the narrow footprint. Must stay alive for the simulateJobs call.
     */
    const QuantizedBvh *quantized_bvh = nullptr;
};

/** Aggregated outcome of one simulated frame. */
struct SimResult
{
    Cycle cycles = 0;
    uint64_t instructions = 0;
    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) / cycles : 0.0;
    }

    JobCounters ops;
    WarpStackStats stack;
    SharedMemStats shared_mem;
    LevelStats l1;
    LevelStats l2;
    DramStats dram;
    /** L1 misses split by traffic class (Node/Primitive/Stack). */
    uint64_t l1_class_misses[kTrafficClassCount] = {};
    /** L2 misses split by traffic class. */
    uint64_t l2_class_misses[kTrafficClassCount] = {};
    uint64_t offchip_accesses = 0; ///< Fig. 15b metric

    /** Fraction of simulated cycles the DRAM service queue was busy. */
    double
    dramOccupancy() const
    {
        return cycles ? static_cast<double>(dram.busy_cycles) / cycles
                      : 0.0;
    }

    /**
     * Run-level cycle accounting: per-leaf totals over all warp jobs,
     * conserved at zero epsilon (activeSum() == warp_active_cycles) and
     * closed against the slot budget (totalSum() == slot_cycles once
     * idle.done is filled). One tree per SM in sm_accounting, each
     * conserved the same way.
     */
    CycleAccount accounting;
    std::vector<CycleAccount> sm_accounting;

    Histogram depth_hist{63}; ///< logical stack depth at each push/pop
    std::vector<DepthTraceRecord> depth_trace;

    uint32_t jobs = 0;
    uint32_t warps = 0;
    uint64_t rays = 0;
    uint32_t mismatches = 0; ///< lanes disagreeing with the oracle
};

/**
 * Simulate a frame's warp jobs on the configured GPU.
 *
 * Deterministic: identical inputs produce identical results.
 */
SimResult simulateJobs(const Scene &scene, const WideBvh &bvh,
                       const WarpJobList &jobs, const GpuConfig &config,
                       const SimOptions &options = {});

/**
 * Process-wide count of simulateJobs() invocations (thread-safe). The
 * result cache's "fully warm sweep performs zero simulations" guarantee
 * is gated on this counter (the bench throughput block reports it as
 * simulate_calls).
 */
uint64_t simulateJobsCallCount();

/** Reset the invocation counter (tests). */
void resetSimulateJobsCallCount();

} // namespace sms

#endif // SMS_SIM_GPU_SIM_HPP
