/**
 * @file
 * Hash-based ray-path predictor: a direction/origin-quantized hash
 * table mapping rays to the leaf that resolved a similar previous ray.
 *
 * On a table hit the warp jumps straight to the predicted leaf before
 * normal traversal starts. A correct prediction tightens ray.tMax (or
 * abandons an any-hit job) immediately; an incorrect one wastes the one
 * leaf visit and falls back to full traversal. Either way the final hit
 * is bit-identical to stack traversal: the early leaf visit only ever
 * tightens tMax to a real hit, the pruned subtrees could not have
 * contributed (see stackless.hpp for the tie argument), and the leaf is
 * revisited in its normal traversal position so the "last accepted
 * primitive wins" order is unchanged.
 *
 * To keep tapes and the result cache sound, training is defined as a
 * pure function of (jobs, bvh, arch config): a precompute pass walks
 * the jobs in job_id order, records each job's predictions from the
 * table state left by the jobs before it, then trains the table with
 * the job's expected hits (the functional results carried by WarpJob).
 * Execute and replay rebuild the identical schedule, so no tape format
 * change is needed; probe reads ride the recorded fetch lines and
 * table updates replay as fire-and-forget stores.
 */

#ifndef SMS_SIM_RAY_PREDICTOR_HPP
#define SMS_SIM_RAY_PREDICTOR_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "src/bvh/wide_bvh.hpp"
#include "src/memory/request.hpp"
#include "src/sim/gpu_config.hpp"
#include "src/sim/warp_job.hpp"

namespace sms {

/** Simulated base address of the predictor hash table. */
constexpr Addr kPredictorBase = 0x60000000ull;
/** Bytes per table entry (tag + leaf reference + replacement state). */
constexpr uint32_t kPredictorEntryBytes = 16;

/**
 * Quantized FNV-1a hash of a ray's origin and direction. Keeps the
 * sign, exponent and the configured number of high mantissa bits of
 * each coordinate, so nearby coherent rays collide on purpose.
 */
uint64_t rayPredictorHash(const Ray &ray, const TraversalArchConfig &arch);

/** One job's predictor plan. */
struct PredictorJobPlan
{
    /** Per lane: predicted leaf ChildRef bits (0 = no prediction). */
    std::array<uint32_t, kWarpSize> predicted{};
    /** Per lane: probed table-entry address (0 for inactive lanes). */
    std::array<Addr, kWarpSize> entry{};
    /** Lanes whose completion writes their table entry back. */
    uint32_t write_mask = 0;
};

/**
 * The full run's predictor behaviour, indexed by job_id. Pure function
 * of (jobs, bvh, arch), so execute and replay agree byte for byte.
 */
struct PredictorSchedule
{
    std::vector<PredictorJobPlan> jobs;

    bool empty() const { return jobs.empty(); }
};

PredictorSchedule buildPredictorSchedule(const WarpJobList &jobs,
                                         const WideBvh &bvh,
                                         const TraversalArchConfig &arch);

} // namespace sms

#endif // SMS_SIM_RAY_PREDICTOR_HPP
