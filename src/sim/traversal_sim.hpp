/**
 * @file
 * Cycle-approximate execution of one warp job inside the RT unit.
 *
 * Each step() mirrors one iteration of the RT-unit pipeline (§II-B):
 * for every active lane the top stack entry is *read* to obtain the
 * fetch address, node/leaf data is fetched through the global-memory
 * path (with per-warp coalescing into cache lines), the intersection
 * operation runs, then the stack manager pops the visited entry and
 * pushes all intersected children (nearest on top) — the pop's reloads
 * and the pushes' spills execute in warp-collected rounds against
 * shared and global memory.
 *
 * The traversal itself is value-exact: lanes visit the same nodes in
 * the same order as the functional reference traverser, and final hits
 * are checked against the expectations recorded in the WarpJob.
 *
 * Three operating modes share the timing path:
 *  - execute: run the geometry work (intersectNodeChildren /
 *    intersectLeaf) as before;
 *  - record: execute + append each step's functional outcome to a
 *    JobTape (see traversal_tape.hpp);
 *  - replay: drive the identical step sequence straight from a tape
 *    recorded under ANY stack configuration, with zero geometry work.
 * All SimResult counters derive from the same per-step inputs in every
 * mode, so record/replay runs are counter-identical to execution.
 */

#ifndef SMS_SIM_TRAVERSAL_SIM_HPP
#define SMS_SIM_TRAVERSAL_SIM_HPP

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/bvh/node_layout.hpp"
#include "src/bvh/stackless.hpp"
#include "src/bvh/traverse.hpp"
#include "src/bvh/wide_bvh.hpp"
#include "src/core/warp_stack.hpp"
#include "src/memory/memory_system.hpp"
#include "src/memory/shared_memory.hpp"
#include "src/sim/gpu_config.hpp"
#include "src/sim/ray_predictor.hpp"
#include "src/sim/traversal_tape.hpp"
#include "src/sim/warp_job.hpp"
#include "src/stats/cycle_accounting.hpp"

namespace sms {

/** Operation counters accumulated by one warp job's traversal. */
struct JobCounters
{
    uint64_t steps = 0;
    uint64_t node_visits = 0;
    uint64_t leaf_visits = 0;
    uint64_t box_tests = 0;
    uint64_t prim_tests = 0;
    uint64_t instructions = 0;
    /** Accumulated per-phase step durations (diagnostics). */
    uint64_t fetch_cycles = 0;
    uint64_t op_cycles = 0;
    uint64_t stack_cycles = 0;

    void
    merge(const JobCounters &o)
    {
        steps += o.steps;
        node_visits += o.node_visits;
        leaf_visits += o.leaf_visits;
        box_tests += o.box_tests;
        prim_tests += o.prim_tests;
        instructions += o.instructions;
        fetch_cycles += o.fetch_cycles;
        op_cycles += o.op_cycles;
        stack_cycles += o.stack_cycles;
    }
};

/**
 * In-flight execution state of one warp job on one RT-unit slot.
 */
class TraversalSim
{
  public:
    /**
     * @param record when non-null, append this job's functional
     *               traversal to the tape while executing
     * @param replay when non-null, skip the geometry work and drive
     *               the timing model from the recorded tape instead
     * @param qbvh   decoded quantized BVH; required when the config's
     *               node layout is quantized and geometry executes
     * @param links  parent/slot links; required when the traversal
     *               architecture is Stackless (execute and replay)
     * @param predictor precomputed predictor schedule; required when
     *               the architecture is Predicted (execute and replay)
     */
    TraversalSim(const Scene &scene, const WideBvh &bvh,
                 const GpuConfig &config, const WarpJob &job, uint32_t sm,
                 Addr shared_base, Addr local_base, MemorySystem &mem,
                 SharedMemory &shared_mem, DepthObserver *observer,
                 JobTape *record = nullptr,
                 const JobTape *replay = nullptr,
                 Histogram *depth_hist = nullptr,
                 const QuantizedBvh *qbvh = nullptr,
                 const StacklessLinks *links = nullptr,
                 const PredictorSchedule *predictor = nullptr);

    /**
     * Rearm this instance for a new warp job (scene, BVH, GPU config
     * and memory system are fixed for the sweep cell). Equivalent to
     * destroying and reconstructing, but reuses every internal
     * allocation — RT-unit slots recycle their TraversalSim across the
     * thousands of jobs of a run instead of reallocating one per job.
     */
    void reinit(const WarpJob &job, uint32_t sm, Addr shared_base,
                Addr local_base, SharedMemory &shared_mem,
                DepthObserver *observer, JobTape *record = nullptr,
                const JobTape *replay = nullptr,
                Histogram *depth_hist = nullptr);

    /** True when every lane finished its traversal. */
    bool done() const { return running_mask_ == 0; }

    /**
     * Phase 1 of one warp-synchronous pipeline iteration: issue the
     * node/leaf fetches at @p now and account the intersection-op
     * latency. @return the cycle the operation results are available
     * (when stepStack() must run).
     */
    Cycle stepFetch(Cycle now);

    /**
     * Phase 2: apply the traversal update and hand the resulting
     * spill/reload transactions to the stack manager. The warp retires
     * the iteration as soon as the manager accepts the work (popped
     * values always come from the on-chip RB stack); the manager's
     * load chain completes in the background and gates the *next*
     * iteration's stack phase. @return the iteration's retire cycle.
     *
     * The two phases are scheduled as separate events so every memory
     * model is touched in non-decreasing simulated-time order.
     */
    Cycle stepStack(Cycle now);

    const JobCounters &counters() const { return counters_; }
    const WarpStackStats &stackStats() const { return stack_.stats(); }

    /**
     * Per-warp cycle attribution. Every cycle between two step events is
     * charged to exactly one leaf as the steps run, so by completion
     * account().activeSum() equals the warp's active cycles (completion
     * minus admission) with zero epsilon — the caller sets
     * warp_active_cycles and checks the invariant.
     */
    const CycleAccount &account() const { return account_; }

    /** Lanes whose final hit disagreed with the functional oracle. */
    uint32_t mismatches() const { return mismatches_; }

    const WarpJob &job() const { return job_; }

  private:
    /** Shared tail of construction and reinit(): seed the lanes. */
    void seedJob(DepthObserver *observer);

    /**
     * Gather this step's fetch lines and intersection-latency inputs
     * from the lanes' stack tops (execute/record) or from the tape
     * (replay).
     */
    void collectFetch(bool &has_internal, bool &has_leaf,
                      uint32_t &max_leaf_prims);

    /**
     * Apply one lane's traversal update after its pop: geometry work
     * in execute/record mode, tape-driven in replay mode. Stack
     * transactions collect into txn_arena_.
     * @return true when the lane terminated early (any-hit found)
     */
    bool laneStepExecute(uint32_t lane_id, uint64_t top_value);
    bool laneStepReplay(uint32_t lane_id, uint64_t top_value);

    /** How a stackless lane step left the lane. */
    enum class LaneOutcome : uint8_t { Continue, Done, Abandoned };

    /**
     * One stackless lane step: visit sl_cur_, then descend to the next
     * unvisited child or backtrack through the parent link. Records /
     * consumes the same tape actions as the stack machine (descend =
     * internalVisit with one push, backtrack = zero pushes).
     */
    LaneOutcome laneStepStacklessExecute(uint32_t lane_id);
    LaneOutcome laneStepStacklessReplay(uint32_t lane_id);

    /** Move a stackless lane back to the parent of its current node. */
    void stacklessBacktrack(uint32_t lane_id);

    /** This job's predictor plan; null unless the arch is Predicted. */
    const PredictorJobPlan *predictorPlan() const;

    void finishLane(uint32_t lane_id, bool abandoned);

    /** Run the manager rounds over txn_arena_'s per-lane lists. */
    Cycle runStackRounds(Cycle start);

    /**
     * Charge the manager-stall window [from, to) to the chain segments
     * recorded by the previous iteration's runStackRounds(). The window
     * is always a sub-range of that chain (the chain alone pushed
     * manager_free_ past @p from), so the walk covers it exactly.
     */
    void attributeManagerStall(Cycle from, Cycle to);

    // Per-step scratch buffers. The step functions run once per
    // traversal iteration of every warp job in a sweep (hundreds of
    // millions of calls); reusing these keeps the hot loops free of
    // heap allocation. The fetch list holds packed
    // (line_index << 2) | class entries — the tape's wire format — and
    // the per-lane transaction lists live in one pooled arena whose
    // clear() is O(1) per lane.
    FetchLineList fetch_lines_;
    StackTxnArena txn_arena_;
    std::vector<SharedLaneRequest> shared_loads_;
    std::vector<SharedLaneRequest> shared_stores_;

    const Scene &scene_;
    const WideBvh &bvh_;
    /** Decoded quantized view; null under the exact layout or replay. */
    const QuantizedBvh *qbvh_;
    /** Parent/slot links; non-null exactly when the arch is Stackless. */
    const StacklessLinks *links_;
    /** Predictor schedule; non-null exactly when the arch is Predicted. */
    const PredictorSchedule *predictor_;
    const GpuConfig &config_;
    WarpJob job_;
    uint32_t sm_;
    MemorySystem &mem_;
    SharedMemory *shared_mem_; ///< per-admission (reinit rebinds)
    WarpStackModel stack_;
    TapeWriter recorder_;
    TapeCursor cursor_;

    /**
     * One attribution segment of the manager's in-flight spill/reload
     * chain: cycles in [previous end, end) belong to @p leaf. Rebuilt by
     * every runStackRounds() call; consumed by attributeManagerStall()
     * when the *next* iteration's stack phase finds the manager busy.
     */
    struct ChainSeg
    {
        Cycle end;
        CycleLeaf leaf;
    };
    std::vector<ChainSeg> chain_segs_;
    Cycle chain_start_ = 0;
    CycleAccount account_;

    // Per-lane job state, struct-of-arrays: rays and hit records in
    // parallel arrays, the running flags folded into one bitmask whose
    // set bits drive the per-lane loops (count-trailing-zeros walk).
    std::array<Ray, kWarpSize> rays_;
    std::array<HitRecord, kWarpSize> hits_;
    uint32_t running_mask_ = 0; ///< bit i: lane i still traversing

    /** sl_resume_ sentinel: the lane is on its first visit of sl_cur_. */
    static constexpr uint8_t kNoResume = 0xff;
    // Stackless lane machine (arch == Stackless only): the child
    // reference being visited, the parent chain position it was reached
    // through, and the slot the lane just returned from (kNoResume on a
    // first visit — a set resume slot marks the step as a backtracking
    // revisit for the stall.arch.backtrack accounting leaf). Replay
    // maintains the same state from tape actions plus parent links; the
    // slot values are only consulted by execute's resume selection.
    std::array<uint32_t, kWarpSize> sl_cur_{};
    std::array<uint32_t, kWarpSize> sl_parent_{};
    std::array<uint8_t, kWarpSize> sl_slot_{};
    std::array<uint8_t, kWarpSize> sl_resume_{};
    JobCounters counters_;
    uint32_t mismatches_ = 0;
    /**
     * The warp's stack manager is busy until this cycle completing the
     * previous iteration's spill/reload chain (Fig. 11 has one manager
     * per RT unit warp; §VI-A issues its requests sequentially). The
     * warp itself proceeds — pops are served from the on-chip RB stack
     * — but the next stack phase must wait for the manager.
     */
    Cycle manager_free_ = 0;
};

} // namespace sms

#endif // SMS_SIM_TRAVERSAL_SIM_HPP
