/**
 * @file
 * Traversal tape: the compact record of one workload's *functional*
 * traversal, replayable under any stack configuration.
 *
 * SMS is a complete hierarchical stack (RB -> SH -> global): pops always
 * return the true next node, so the per-lane visit sequence — which
 * node/leaf each lane fetches, which children it pushes, how many
 * box/primitive tests it performs — is identical across every stack
 * configuration (DESIGN.md "config-invariance"). Only *timing* (spills,
 * bank conflicts, cache/DRAM behaviour) changes. A sweep therefore
 * needs the geometry work exactly once per scene: the first cell
 * records each warp job's per-step outcomes onto a tape, and every
 * other cell replays the tape through the full timing model
 * (WarpStackModel, SharedMemory, MemorySystem) with zero geometry work.
 *
 * Encoding: one append-only byte stream per warp job ("per-warp
 * chunks"), varint-based. Each step stores the coalesced fetch-line
 * list (delta-encoded line indices with the traffic class in the low
 * bits), the intersection-latency inputs, and one action per running
 * lane (box-test count + pushed child references for internal visits;
 * primitive-test count + any-hit termination flag for leaf visits).
 * Child references are stored kind-swizzled so internal nodes encode as
 * their small node index rather than a tag-in-the-high-bits constant.
 *
 * All SimResult counters derive from the same per-step inputs in both
 * modes, so replay is counter-identical by construction; the replayer
 * additionally asserts that every popped stack entry matches the
 * recorded visit kind, catching tape/workload mismatches immediately.
 */

#ifndef SMS_SIM_TRAVERSAL_TAPE_HPP
#define SMS_SIM_TRAVERSAL_TAPE_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/bvh/wide_bvh.hpp"
#include "src/memory/request.hpp"
#include "src/sim/warp_job.hpp"
#include "src/util/check.hpp"

namespace sms {

// ---------------------------------------------------------------------
// Coalesced fetch lines, packed one per uint64_t as
// (line_index << 2) | traffic_class — exactly the tape's wire layout
// (minus delta-encoding), so the fetch scratch list the simulator
// builds each step records and replays with a shift and a mask instead
// of an (Addr, enum) pair per line. Sorting packed values orders by
// (line, class), identical to sorting the pairs, because a line address
// is its index times kLineBytes.
// ---------------------------------------------------------------------

/** One step's coalesced fetch lines (sorted, duplicate-free). */
using FetchLineList = std::vector<uint64_t>;

inline uint64_t
packFetchLine(Addr line_addr, TrafficClass cls)
{
    return ((line_addr / kLineBytes) << 2) | static_cast<uint64_t>(cls);
}

inline Addr
fetchLineAddr(uint64_t packed)
{
    return static_cast<Addr>(packed >> 2) * kLineBytes;
}

inline TrafficClass
fetchLineClass(uint64_t packed)
{
    return static_cast<TrafficClass>(packed & 3);
}

/**
 * Tape format version. Bump on ANY change to the step encoding or to
 * the meaning of recorded fields; versioned on-disk tapes from older
 * builds then fail validation and are silently re-recorded.
 */
constexpr uint32_t kTraversalTapeVersion = 1;

/** SMS_TRAVERSAL_TAPE operating mode. */
enum class TapeMode : uint8_t
{
    Off,  ///< every sweep cell executes the geometry work
    Mem,  ///< record the first cell per scene, replay the rest
    Disk, ///< Mem + persist tapes alongside the .wkld snapshot cache
};

/**
 * Mode from SMS_TRAVERSAL_TAPE=off|mem|disk (default disk when
 * SMS_WORKLOAD_CACHE names a tape-persistence directory, else mem;
 * unknown values warn and fall back to the default).
 */
TapeMode traversalTapeMode();

/** Display name of a tape mode ("off"/"mem"/"disk"). */
const char *tapeModeName(TapeMode mode);

/** Counters over all tape activity of this process (thread-safe). */
struct TraversalTapeStats
{
    uint64_t jobs_recorded = 0; ///< warp jobs written to a tape
    uint64_t jobs_replayed = 0; ///< warp jobs driven from a tape
    uint64_t bytes = 0;         ///< total recorded tape bytes
    uint64_t disk_loads = 0;    ///< tapes loaded from disk
    uint64_t disk_stores = 0;   ///< tapes persisted to disk
    uint64_t failures = 0;      ///< invalid/unreadable tapes discarded
};

/** Snapshot of this process's tape counters. */
TraversalTapeStats traversalTapeStats();

/** Reset the tape counters (tests). */
void resetTraversalTapeStats();

/** Recorded functional traversal of one warp job. */
struct JobTape
{
    std::vector<uint8_t> bytes;
    uint32_t steps = 0;      ///< pipeline iterations recorded
    uint32_t mismatches = 0; ///< oracle mismatches seen while recording
};

/** One workload's tape: per-job chunks plus the identity fingerprint. */
struct TraversalTape
{
    /** workloadFingerprint() of the recorded job stream. */
    uint64_t fingerprint = 0;
    std::vector<JobTape> jobs;

    uint64_t
    totalBytes() const
    {
        uint64_t n = 0;
        for (const JobTape &j : jobs)
            n += j.bytes.size();
        return n;
    }
};

/**
 * Identity hash of the functional traversal inputs: the warp-job stream
 * (ids, masks, ray bits) and the BVH shape. Two workloads with equal
 * fingerprints produce equal traversal sequences, so a tape recorded on
 * one replays soundly on the other; used to validate on-disk tapes.
 */
uint64_t workloadFingerprint(const WarpJobList &jobs, const WideBvh &bvh);

// ---------------------------------------------------------------------
// Varint primitives (LEB128). Inline: both sides sit on the sweep's
// hottest loop.
// ---------------------------------------------------------------------

inline void
tapePutVarint(std::vector<uint8_t> &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

/** Writes the step records of one JobTape. */
class TapeWriter
{
  public:
    explicit TapeWriter(JobTape *tape) : tape_(tape) {}

    bool enabled() const { return tape_ != nullptr; }

    /**
     * Record one step's fetch phase: the coalesced (line, class) list
     * (sorted, duplicate-free — exactly what the memory scheduler
     * issues) and the intersection-latency inputs.
     */
    void
    fetchPhase(const FetchLineList &lines, bool has_internal,
               bool has_leaf, uint32_t max_leaf_prims)
    {
        ++tape_->steps;
        std::vector<uint8_t> &out = tape_->bytes;
        tapePutVarint(out, lines.size());
        uint64_t prev = 0;
        for (uint64_t packed : lines) {
            uint64_t idx = packed >> 2;
            tapePutVarint(out, ((idx - prev) << 2) | (packed & 3));
            prev = idx;
        }
        tapePutVarint(out, (static_cast<uint64_t>(max_leaf_prims) << 2) |
                               (has_leaf ? 2u : 0u) |
                               (has_internal ? 1u : 0u));
    }

    /** Record an internal-node visit of one lane. */
    void
    internalVisit(uint32_t tests, const uint64_t *push_values,
                  uint32_t push_count)
    {
        std::vector<uint8_t> &out = tape_->bytes;
        tapePutVarint(out, (static_cast<uint64_t>(tests) << 4) |
                               (static_cast<uint64_t>(push_count) << 1));
        // Kind-swizzle: ChildRef keeps its 2-bit kind in [31:30]; moving
        // it to the low bits lets small node indices varint-encode in
        // one or two bytes instead of always five.
        for (uint32_t i = 0; i < push_count; ++i) {
            uint32_t bits = static_cast<uint32_t>(push_values[i]);
            tapePutVarint(out, (static_cast<uint64_t>(bits & 0x3fffffffu)
                                << 2) |
                                   (bits >> 30));
        }
    }

    /** Record a leaf visit of one lane. */
    void
    leafVisit(uint32_t tested, bool abandoned)
    {
        tapePutVarint(tape_->bytes,
                      (static_cast<uint64_t>(tested) << 2) |
                          (abandoned ? 2u : 0u) | 1u);
    }

    /** Record the job's oracle-validation outcome (job complete). */
    void finish(uint32_t mismatches) { tape_->mismatches = mismatches; }

  private:
    JobTape *tape_;
};

/** Reads one JobTape's step records back in order. */
class TapeCursor
{
  public:
    TapeCursor() = default;
    explicit TapeCursor(const JobTape *tape) : tape_(tape)
    {
        if (tape_) {
            data_ = tape_->bytes.data();
            size_ = tape_->bytes.size();
        }
    }

    bool enabled() const { return tape_ != nullptr; }
    const JobTape *tape() const { return tape_; }

    /** Inverse of TapeWriter::fetchPhase. */
    void
    fetchPhase(FetchLineList &lines, bool &has_internal, bool &has_leaf,
               uint32_t &max_leaf_prims)
    {
        lines.clear();
        uint64_t count = varint();
        uint64_t idx = 0;
        for (uint64_t i = 0; i < count; ++i) {
            uint64_t v = varint();
            idx += v >> 2;
            lines.push_back((idx << 2) | (v & 3));
        }
        uint64_t op = varint();
        has_internal = (op & 1) != 0;
        has_leaf = (op & 2) != 0;
        max_leaf_prims = static_cast<uint32_t>(op >> 2);
    }

    /** One lane's action this step. */
    struct LaneAction
    {
        bool is_leaf;
        bool abandoned;   ///< leaf only: any-hit early termination
        uint32_t tests;   ///< box tests (internal) / prim tests (leaf)
        uint32_t pushes;  ///< internal only: children pushed
    };

    LaneAction
    laneAction()
    {
        uint64_t h = varint();
        LaneAction a;
        a.is_leaf = (h & 1) != 0;
        if (a.is_leaf) {
            a.abandoned = (h & 2) != 0;
            a.tests = static_cast<uint32_t>(h >> 2);
            a.pushes = 0;
        } else {
            a.abandoned = false;
            a.pushes = static_cast<uint32_t>((h >> 1) & 7);
            a.tests = static_cast<uint32_t>(h >> 4);
        }
        return a;
    }

    /** Next recorded push value (follows an internal laneAction). */
    uint64_t
    pushValue()
    {
        uint64_t v = varint();
        return (static_cast<uint64_t>(v & 3) << 30) |
               static_cast<uint64_t>(v >> 2);
    }

    /** True when every recorded byte has been consumed. */
    bool atEnd() const { return off_ == size_; }

  private:
    uint64_t
    varint()
    {
        // The replay loop decodes every tape byte of every cell, so the
        // buffer is cached as a raw pointer/size pair and the dominant
        // single-byte encoding takes an early return.
        SMS_ASSERT(off_ < size_, "traversal tape truncated at byte %zu",
                   off_);
        uint64_t v = data_[off_++];
        if (v < 0x80)
            return v;
        v &= 0x7f;
        int shift = 7;
        for (;;) {
            SMS_ASSERT(off_ < size_,
                       "traversal tape truncated at byte %zu", off_);
            uint8_t b = data_[off_++];
            v |= static_cast<uint64_t>(b & 0x7f) << shift;
            if (!(b & 0x80))
                return v;
            shift += 7;
        }
    }

    const JobTape *tape_ = nullptr;
    const uint8_t *data_ = nullptr;
    size_t size_ = 0;
    size_t off_ = 0;
};

/** Account a finished recording (stats; called once per tape). */
void noteTapeRecorded(const TraversalTape &tape);

/** Account one replayed run over @p tape (stats). */
void noteTapeReplayed(const TraversalTape &tape);

/** Account a discarded/invalid tape (stats). */
void noteTapeFailure();

/** Account an on-disk tape load / store (stats). */
void noteTapeDiskLoad();
void noteTapeDiskStore();

} // namespace sms

#endif // SMS_SIM_TRAVERSAL_TAPE_HPP
