/**
 * @file
 * Minimal 3-component float vector used by all geometry code.
 */

#ifndef SMS_GEOMETRY_VEC3_HPP
#define SMS_GEOMETRY_VEC3_HPP

#include <cmath>

namespace sms {

/** 3-component float vector with the usual arithmetic operators. */
struct Vec3
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    constexpr Vec3() = default;
    constexpr Vec3(float xx, float yy, float zz) : x(xx), y(yy), z(zz) {}
    constexpr explicit Vec3(float s) : x(s), y(s), z(s) {}

    constexpr float
    operator[](int i) const
    {
        return i == 0 ? x : (i == 1 ? y : z);
    }

    constexpr Vec3 operator-() const { return {-x, -y, -z}; }

    constexpr Vec3 &
    operator+=(const Vec3 &o)
    {
        x += o.x; y += o.y; z += o.z;
        return *this;
    }

    constexpr Vec3 &
    operator-=(const Vec3 &o)
    {
        x -= o.x; y -= o.y; z -= o.z;
        return *this;
    }

    constexpr Vec3 &
    operator*=(float s)
    {
        x *= s; y *= s; z *= s;
        return *this;
    }
};

constexpr Vec3
operator+(Vec3 a, const Vec3 &b)
{
    return a += b;
}

constexpr Vec3
operator-(Vec3 a, const Vec3 &b)
{
    return a -= b;
}

constexpr Vec3
operator*(Vec3 a, float s)
{
    return a *= s;
}

constexpr Vec3
operator*(float s, Vec3 a)
{
    return a *= s;
}

constexpr Vec3
operator*(const Vec3 &a, const Vec3 &b)
{
    return {a.x * b.x, a.y * b.y, a.z * b.z};
}

constexpr Vec3
operator/(Vec3 a, float s)
{
    return a *= (1.0f / s);
}

constexpr bool
operator==(const Vec3 &a, const Vec3 &b)
{
    return a.x == b.x && a.y == b.y && a.z == b.z;
}

constexpr float
dot(const Vec3 &a, const Vec3 &b)
{
    return a.x * b.x + a.y * b.y + a.z * b.z;
}

constexpr Vec3
cross(const Vec3 &a, const Vec3 &b)
{
    return {a.y * b.z - a.z * b.y,
            a.z * b.x - a.x * b.z,
            a.x * b.y - a.y * b.x};
}

inline float
length(const Vec3 &v)
{
    return std::sqrt(dot(v, v));
}

constexpr float
lengthSquared(const Vec3 &v)
{
    return dot(v, v);
}

inline Vec3
normalize(const Vec3 &v)
{
    float len = length(v);
    return len > 0.0f ? v / len : Vec3(0.0f);
}

constexpr Vec3
min(const Vec3 &a, const Vec3 &b)
{
    return {a.x < b.x ? a.x : b.x,
            a.y < b.y ? a.y : b.y,
            a.z < b.z ? a.z : b.z};
}

constexpr Vec3
max(const Vec3 &a, const Vec3 &b)
{
    return {a.x > b.x ? a.x : b.x,
            a.y > b.y ? a.y : b.y,
            a.z > b.z ? a.z : b.z};
}

/** Component index (0..2) of the largest component. */
constexpr int
maxAxis(const Vec3 &v)
{
    if (v.x >= v.y && v.x >= v.z)
        return 0;
    return v.y >= v.z ? 1 : 2;
}

/** Reflect direction d about unit normal n. */
constexpr Vec3
reflect(const Vec3 &d, const Vec3 &n)
{
    return d - 2.0f * dot(d, n) * n;
}

/** Linear interpolation a + t (b - a). */
constexpr Vec3
lerp(const Vec3 &a, const Vec3 &b, float t)
{
    return a + (b - a) * t;
}

} // namespace sms

#endif // SMS_GEOMETRY_VEC3_HPP
