/**
 * @file
 * Out-of-line anchor for the Aabb translation unit (keeps the library
 * non-empty and gives the header a home for future non-inline helpers).
 */

#include "src/geometry/aabb.hpp"

namespace sms {

// All Aabb members are currently inline; nothing out-of-line yet.

} // namespace sms
