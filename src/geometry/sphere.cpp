/**
 * @file
 * Ray-sphere intersection using the numerically robust quadratic form.
 */

#include "src/geometry/sphere.hpp"

#include <cmath>

namespace sms {

bool
Sphere::intersect(const Ray &ray, float &t) const
{
    const Vec3 oc = ray.origin - center;
    const float a = dot(ray.dir, ray.dir);
    const float half_b = dot(oc, ray.dir);
    const float c = dot(oc, oc) - radius * radius;
    const float disc = half_b * half_b - a * c;
    if (disc < 0.0f)
        return false;

    const float sqrt_disc = std::sqrt(disc);
    float root = (-half_b - sqrt_disc) / a;
    if (root < ray.tMin || root > ray.tMax) {
        root = (-half_b + sqrt_disc) / a;
        if (root < ray.tMin || root > ray.tMax)
            return false;
    }
    t = root;
    return true;
}

} // namespace sms
