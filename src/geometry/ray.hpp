/**
 * @file
 * Ray representation shared by the functional tracer and the timing model.
 */

#ifndef SMS_GEOMETRY_RAY_HPP
#define SMS_GEOMETRY_RAY_HPP

#include <cstdint>
#include <limits>

#include "src/geometry/vec3.hpp"

namespace sms {

/** Sentinel "no hit" distance. */
constexpr float kRayInfinity = std::numeric_limits<float>::infinity();

/**
 * A ray segment [tMin, tMax] along origin + t * dir.
 *
 * invDir caches the reciprocal direction for slab tests; components of a
 * zero direction axis become +/-inf, which the slab test handles via the
 * IEEE inf*0 = NaN fallback comparisons.
 */
struct Ray
{
    Vec3 origin;
    Vec3 dir;
    Vec3 invDir;
    float tMin = 1.0e-4f;
    float tMax = kRayInfinity;

    Ray() = default;

    Ray(const Vec3 &o, const Vec3 &d, float tmin = 1.0e-4f,
        float tmax = kRayInfinity)
        : origin(o), dir(d), tMin(tmin), tMax(tmax)
    {
        invDir = {1.0f / d.x, 1.0f / d.y, 1.0f / d.z};
    }

    Vec3 at(float t) const { return origin + dir * t; }
};

/** Primitive kinds a leaf may reference. */
enum class PrimitiveKind : uint8_t { Triangle, Sphere };

/** Result of the closest-hit query against a scene. */
struct HitRecord
{
    float t = kRayInfinity;
    uint32_t primitive = UINT32_MAX;    ///< index into the scene primitives
    PrimitiveKind kind = PrimitiveKind::Triangle;
    float u = 0.0f;                     ///< barycentric u (triangles)
    float v = 0.0f;                     ///< barycentric v (triangles)
    Vec3 normal;                        ///< geometric unit normal at hit

    bool valid() const { return primitive != UINT32_MAX; }
};

} // namespace sms

#endif // SMS_GEOMETRY_RAY_HPP
