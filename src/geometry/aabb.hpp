/**
 * @file
 * Axis-aligned bounding box with the slab intersection test used by the
 * simulated ray-box units.
 */

#ifndef SMS_GEOMETRY_AABB_HPP
#define SMS_GEOMETRY_AABB_HPP

#include <limits>

#include "src/geometry/ray.hpp"
#include "src/geometry/vec3.hpp"

namespace sms {

/** Axis-aligned bounding box [lo, hi]. Default-constructed boxes are empty. */
struct Aabb
{
    Vec3 lo{std::numeric_limits<float>::max(),
            std::numeric_limits<float>::max(),
            std::numeric_limits<float>::max()};
    Vec3 hi{std::numeric_limits<float>::lowest(),
            std::numeric_limits<float>::lowest(),
            std::numeric_limits<float>::lowest()};

    Aabb() = default;
    Aabb(const Vec3 &l, const Vec3 &h) : lo(l), hi(h) {}

    bool
    empty() const
    {
        return lo.x > hi.x || lo.y > hi.y || lo.z > hi.z;
    }

    /** Grow to include a point. */
    void
    extend(const Vec3 &p)
    {
        lo = min(lo, p);
        hi = max(hi, p);
    }

    /** Grow to include another box. */
    void
    extend(const Aabb &b)
    {
        lo = min(lo, b.lo);
        hi = max(hi, b.hi);
    }

    Vec3 centroid() const { return (lo + hi) * 0.5f; }
    Vec3 extent() const { return hi - lo; }

    /** Surface area; 0 for empty boxes (used by the SAH builder). */
    float
    surfaceArea() const
    {
        if (empty())
            return 0.0f;
        Vec3 e = extent();
        return 2.0f * (e.x * e.y + e.y * e.z + e.z * e.x);
    }

    /** True when the point lies inside or on the boundary. */
    bool
    contains(const Vec3 &p) const
    {
        return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
               p.z >= lo.z && p.z <= hi.z;
    }

    /** True when the other box lies fully inside this one. */
    bool
    contains(const Aabb &b) const
    {
        return b.empty() || (contains(b.lo) && contains(b.hi));
    }

    /**
     * Slab test against a ray segment.
     *
     * @param ray   the ray (invDir must be populated)
     * @param tHit  on hit, receives the entry distance clamped to tMin
     * @return true when the box overlaps [ray.tMin, ray.tMax]
     */
    bool
    intersect(const Ray &ray, float &tHit) const
    {
        float t0 = ray.tMin;
        float t1 = ray.tMax;
        for (int axis = 0; axis < 3; ++axis) {
            float inv = ray.invDir[axis];
            float near = (lo[axis] - ray.origin[axis]) * inv;
            float far = (hi[axis] - ray.origin[axis]) * inv;
            if (near > far) {
                float tmp = near;
                near = far;
                far = tmp;
            }
            // NaN (0 * inf) propagates as "no constraint" because the
            // comparisons below are false for NaN.
            if (near > t0)
                t0 = near;
            if (far < t1)
                t1 = far;
            if (t0 > t1)
                return false;
        }
        tHit = t0;
        return true;
    }

    /** Union of two boxes. */
    static Aabb
    merge(const Aabb &a, const Aabb &b)
    {
        Aabb out = a;
        out.extend(b);
        return out;
    }
};

} // namespace sms

#endif // SMS_GEOMETRY_AABB_HPP
