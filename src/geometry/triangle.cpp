/**
 * @file
 * Möller–Trumbore ray-triangle intersection.
 */

#include "src/geometry/triangle.hpp"

#include <cmath>

namespace sms {

bool
Triangle::intersect(const Ray &ray, float &t, float &u, float &v) const
{
    const Vec3 e1 = v1 - v0;
    const Vec3 e2 = v2 - v0;
    const Vec3 pvec = cross(ray.dir, e2);
    const float det = dot(e1, pvec);

    // Cull near-degenerate configurations; |det| below epsilon means the
    // ray is (numerically) parallel to the triangle plane.
    constexpr float kEps = 1.0e-9f;
    if (std::fabs(det) < kEps)
        return false;

    const float inv_det = 1.0f / det;
    const Vec3 tvec = ray.origin - v0;
    const float uu = dot(tvec, pvec) * inv_det;
    if (uu < 0.0f || uu > 1.0f)
        return false;

    const Vec3 qvec = cross(tvec, e1);
    const float vv = dot(ray.dir, qvec) * inv_det;
    if (vv < 0.0f || uu + vv > 1.0f)
        return false;

    const float tt = dot(e2, qvec) * inv_det;
    if (tt < ray.tMin || tt > ray.tMax)
        return false;

    t = tt;
    u = uu;
    v = vv;
    return true;
}

} // namespace sms
