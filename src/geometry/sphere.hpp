/**
 * @file
 * Procedural sphere primitive.
 *
 * LumiBench's WKND scene ("Ray Tracing in One Weekend") contains zero
 * triangles — all geometry is procedural spheres intersected in the
 * shader/RT unit. We support the same primitive kind so the scene suite
 * can include a faithful WKND stand-in.
 */

#ifndef SMS_GEOMETRY_SPHERE_HPP
#define SMS_GEOMETRY_SPHERE_HPP

#include "src/geometry/aabb.hpp"
#include "src/geometry/ray.hpp"
#include "src/geometry/vec3.hpp"

namespace sms {

/** Sphere given by center and radius. */
struct Sphere
{
    Vec3 center;
    float radius = 1.0f;

    Sphere() = default;
    Sphere(const Vec3 &c, float r) : center(c), radius(r) {}

    Aabb
    bounds() const
    {
        Vec3 r(radius, radius, radius);
        return Aabb(center - r, center + r);
    }

    /**
     * Ray-sphere intersection against [ray.tMin, ray.tMax].
     *
     * @param ray the query ray
     * @param t   nearest in-range hit distance output
     * @return true when the ray hits the sphere surface in range
     */
    bool
    intersect(const Ray &ray, float &t) const;

    /** Outward unit normal at a surface point. */
    Vec3
    normalAt(const Vec3 &p) const
    {
        return normalize(p - center);
    }
};

} // namespace sms

#endif // SMS_GEOMETRY_SPHERE_HPP
