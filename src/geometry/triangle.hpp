/**
 * @file
 * Triangle primitive and the Möller–Trumbore intersection routine that the
 * simulated ray-triangle units execute.
 */

#ifndef SMS_GEOMETRY_TRIANGLE_HPP
#define SMS_GEOMETRY_TRIANGLE_HPP

#include "src/geometry/aabb.hpp"
#include "src/geometry/ray.hpp"
#include "src/geometry/vec3.hpp"

namespace sms {

/** Triangle given by three vertices, wound counter-clockwise. */
struct Triangle
{
    Vec3 v0, v1, v2;

    Triangle() = default;
    Triangle(const Vec3 &a, const Vec3 &b, const Vec3 &c)
        : v0(a), v1(b), v2(c)
    {}

    /** Tight bounding box. */
    Aabb
    bounds() const
    {
        Aabb box;
        box.extend(v0);
        box.extend(v1);
        box.extend(v2);
        return box;
    }

    Vec3 centroid() const { return (v0 + v1 + v2) * (1.0f / 3.0f); }

    /** Unnormalized geometric normal (v1-v0) x (v2-v0). */
    Vec3 geometricNormal() const { return cross(v1 - v0, v2 - v0); }

    float area() const { return 0.5f * length(geometricNormal()); }

    /**
     * Möller–Trumbore intersection against [ray.tMin, ray.tMax].
     *
     * @param ray the query ray
     * @param t   hit distance output
     * @param u   barycentric coordinate of v1
     * @param v   barycentric coordinate of v2
     * @return true when the ray hits the triangle interior or edge
     */
    bool
    intersect(const Ray &ray, float &t, float &u, float &v) const;
};

} // namespace sms

#endif // SMS_GEOMETRY_TRIANGLE_HPP
