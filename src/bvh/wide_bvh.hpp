/**
 * @file
 * Wide BVH (BVH6) — the acceleration structure the simulated RT unit
 * traverses, plus its byte-level layout in the simulated global address
 * space.
 *
 * The paper's Fig. 3 illustrates BVH6 traversal with a short stack; node
 * addresses (8 B each) are what traversal stacks hold. We encode a child
 * reference in 32 bits (internal index or leaf primitive range) and the
 * stack entry as that reference zero-extended to 64 bits, mirroring the
 * 8-byte entries the paper assumes.
 */

#ifndef SMS_BVH_WIDE_BVH_HPP
#define SMS_BVH_WIDE_BVH_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "src/bvh/binary_bvh.hpp"
#include "src/geometry/aabb.hpp"
#include "src/scene/scene.hpp"

namespace sms {

/** Maximum branching factor of the wide BVH. */
constexpr int kWideBvhWidth = 6;

/**
 * Compact child reference.
 *
 * Bit layout: [31:30] kind (0 invalid, 1 internal, 2 leaf);
 * internal: [29:0] node index; leaf: [29:6] primIndices offset,
 * [5:0] primitive count.
 */
class ChildRef
{
  public:
    ChildRef() : bits_(0) {}

    static ChildRef
    makeInternal(uint32_t node_index)
    {
        return ChildRef((1u << 30) | node_index);
    }

    static ChildRef
    makeLeaf(uint32_t prim_offset, uint32_t prim_count)
    {
        return ChildRef((2u << 30) | (prim_offset << 6) | prim_count);
    }

    static ChildRef fromBits(uint32_t bits) { return ChildRef(bits); }

    bool valid() const { return (bits_ >> 30) != 0; }
    bool isInternal() const { return (bits_ >> 30) == 1; }
    bool isLeaf() const { return (bits_ >> 30) == 2; }
    uint32_t nodeIndex() const { return bits_ & 0x3fffffffu; }
    uint32_t primOffset() const { return (bits_ >> 6) & 0xffffffu; }
    uint32_t primCount() const { return bits_ & 0x3fu; }
    uint32_t bits() const { return bits_; }

    /** 8-byte traversal-stack entry value for this reference. */
    uint64_t stackValue() const { return bits_; }

    static ChildRef
    fromStackValue(uint64_t v)
    {
        return ChildRef(static_cast<uint32_t>(v));
    }

    bool operator==(const ChildRef &o) const { return bits_ == o.bits_; }

  private:
    explicit ChildRef(uint32_t bits) : bits_(bits) {}
    uint32_t bits_;
};

/** One BVH6 node: up to six child boxes and references. */
struct WideNode
{
    std::array<Aabb, kWideBvhWidth> child_bounds;
    std::array<ChildRef, kWideBvhWidth> children;
    uint8_t child_count = 0;
};

/** Structural statistics of a wide BVH. */
struct WideBvhStats
{
    uint32_t node_count = 0;
    uint32_t leaf_count = 0;      ///< number of leaf child references
    uint32_t max_depth = 0;       ///< deepest internal-node chain
    double avg_children = 0.0;    ///< mean child count of internal nodes
    double avg_leaf_prims = 0.0;  ///< mean primitives per leaf reference
    uint64_t footprint_bytes = 0; ///< nodes + index lists + prim data
};

/**
 * The wide BVH plus its simulated memory layout.
 *
 * Address map (simulated global addresses):
 *  - node i occupies [kNodeBase + i*kNodeBytes, +kNodeBytes)
 *  - triangle t occupies [kTriBase + t*kTriBytes, +kTriBytes)
 *  - sphere s occupies [kSphereBase + s*kSphereBytes, +kSphereBytes)
 * These feed the cache/DRAM models; traffic footprints therefore match
 * the real structure sizes.
 */
class WideBvh
{
  public:
    static constexpr uint64_t kNodeBase = 0x10000000ull;
    static constexpr uint64_t kTriBase = 0x40000000ull;
    static constexpr uint64_t kSphereBase = 0x50000000ull;
    /** 6 child AABBs (144 B) + 6 child refs (24 B) + metadata (8 B). */
    static constexpr uint64_t kNodeBytes = 176;
    static constexpr uint64_t kTriBytes = 48;
    static constexpr uint64_t kSphereBytes = 32;

    /** Collapse a binary BVH into wide form (params.wide_width). */
    static WideBvh build(const Scene &scene,
                         const BvhBuildParams &params = {});

    /** Collapse an already-built binary BVH (shares prim order). */
    static WideBvh fromBinary(const Scene &scene, const BinaryBvh &binary,
                              int wide_width = 6);

    /**
     * Reassemble a BVH from its serialized parts (workload snapshot
     * cache). The parts must come from a previously built BVH; no
     * structural validation beyond what traversal itself asserts.
     */
    static WideBvh fromParts(int wide_width, std::vector<WideNode> nodes,
                             std::vector<uint32_t> prim_indices,
                             ChildRef root_ref);

    const std::vector<WideNode> &nodes() const { return nodes_; }
    const std::vector<uint32_t> &primIndices() const { return prim_indices_; }
    /** True when the BVH covers no geometry. A tiny scene may collapse
     *  to a single leaf reference with zero interior nodes. */
    bool empty() const { return !root_ref_.valid(); }

    /** Root reference (invalid for empty scenes). */
    ChildRef
    rootRef() const
    {
        return root_ref_;
    }

    /** Simulated byte address of a node. */
    uint64_t
    nodeAddress(uint32_t index) const
    {
        return kNodeBase + index * kNodeBytes;
    }

    /** Simulated byte address of a unified primitive id. */
    uint64_t primitiveAddress(const Scene &scene, uint32_t prim_id) const;

    /** Bytes of primitive data fetched when testing a primitive. */
    uint64_t primitiveFetchBytes(const Scene &scene, uint32_t prim_id) const;

    /** Structural statistics (footprint uses @p scene primitive data). */
    WideBvhStats computeStats(const Scene &scene) const;

    /** Deepest chain of internal nodes starting from @p ref. */
    uint32_t depthFrom(ChildRef ref) const;

  private:
    ChildRef collapse(const BinaryBvh &binary, uint32_t binary_index);

    int wide_width_ = kWideBvhWidth;
    std::vector<WideNode> nodes_;
    std::vector<uint32_t> prim_indices_;
    ChildRef root_ref_;
};

} // namespace sms

#endif // SMS_BVH_WIDE_BVH_HPP
