/**
 * @file
 * Binary BVH built with a binned surface-area heuristic.
 *
 * The binary tree is an intermediate: it is collapsed into the wide
 * (BVH6) structure that the simulated RT unit traverses. It is also a
 * convenient shape for structural invariant tests.
 */

#ifndef SMS_BVH_BINARY_BVH_HPP
#define SMS_BVH_BINARY_BVH_HPP

#include <cstdint>
#include <vector>

#include "src/geometry/aabb.hpp"
#include "src/scene/scene.hpp"

namespace sms {

/** Build parameters for the binary SAH builder. */
struct BvhBuildParams
{
    /** Number of SAH bins per axis. */
    int sah_bins = 16;
    /** Maximum primitives per leaf (small leaves match driver BVHs). */
    int max_leaf_prims = 2;
    /** Relative cost of a primitive test vs. a node test. */
    float prim_cost = 1.0f;
    float node_cost = 1.0f;
    /**
     * Branching factor of the collapsed wide BVH (2..kWideBvhWidth).
     * Vulkan driver acceleration structures are narrower than the
     * RTX-style BVH6; the default matches the paper's stack-depth
     * profile (avg 4-5, max ~30) at our scene scale.
     */
    int wide_width = 6;
};

/**
 * Node of the binary BVH. Internal nodes reference children by index;
 * leaves reference a contiguous range of the primitive-index array.
 */
struct BinaryNode
{
    Aabb bounds;
    uint32_t left = 0;       ///< left child index (internal only)
    uint32_t right = 0;      ///< right child index (internal only)
    uint32_t prim_offset = 0; ///< first index into primIndices (leaf only)
    uint16_t prim_count = 0; ///< 0 for internal nodes
    bool isLeaf() const { return prim_count > 0; }
};

/** Binary BVH over a scene's unified primitive ids. */
class BinaryBvh
{
  public:
    /** Build over all primitives of @p scene. */
    static BinaryBvh build(const Scene &scene,
                           const BvhBuildParams &params = {});

    const std::vector<BinaryNode> &nodes() const { return nodes_; }
    const std::vector<uint32_t> &primIndices() const { return prim_indices_; }
    uint32_t rootIndex() const { return 0; }
    bool empty() const { return nodes_.empty(); }

    /** Maximum leaf depth (root = 0). */
    uint32_t depth() const;

    /** SAH cost of the tree under the given params. */
    double sahCost(const BvhBuildParams &params = {}) const;

  private:
    friend class BinaryBuilder;
    std::vector<BinaryNode> nodes_;
    std::vector<uint32_t> prim_indices_;
};

} // namespace sms

#endif // SMS_BVH_BINARY_BVH_HPP
