/**
 * @file
 * Wide-BVH node layouts: the byte-level encoding the simulated RT unit
 * fetches per node visit, as a first-class configuration axis.
 *
 * The baseline "exact" layout is the uncompressed BVH6 node (176 B:
 * six full-precision child AABBs plus refs and metadata). The
 * "quantized" layout follows Grauer et al. (PAPERS.md, arXiv
 * 2505.24653): child planes are quantized to a configurable
 * bits-per-plane grid anchored at a per-node origin with per-axis
 * power-of-two scales, shrinking the node to
 *
 *   16 B header (origin 3xf32, scale exponents 3xi8, child_count)
 *   + 24 B child refs (6 x u32)
 *   + ceil(36 * bits / 8) B quantized planes (6 children x 6 planes)
 *
 * i.e. 76 B at 8 bits/plane vs 176 B exact — fewer cache lines per
 * node visit, at the cost of a per-visit decode charge
 * (GpuConfig::timing.node_decode_op) and slightly inflated boxes.
 *
 * Correctness contract: quantization is CONSERVATIVE. Lo planes round
 * down to the grid, hi planes round up, and the builder re-encodes
 * with a coarser scale whenever float rounding would violate
 * containment, so every decoded child AABB contains its exact AABB.
 * Traversal through decoded nodes therefore visits a superset of the
 * exact visit set and — because leaf primitive tests stay exact —
 * produces identical hit verdicts and closest distances (equal-t ties
 * may resolve to a different primitive id; see DESIGN.md).
 *
 * The simulator consumes decoded nodes, pre-materialized at build time
 * by QuantizedBvh: the timing model charges the narrow fetch footprint
 * and decode latency while the functional traversal reads the decoded
 * (inflated) boxes — exactly what quantized hardware would compute.
 */

#ifndef SMS_BVH_NODE_LAYOUT_HPP
#define SMS_BVH_NODE_LAYOUT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "src/bvh/wide_bvh.hpp"

namespace sms {

/** Node encodings the traversal hardware can fetch. */
enum class NodeLayoutKind : uint8_t
{
    Exact = 0,     ///< uncompressed BVH6 node (WideBvh::kNodeBytes)
    Quantized = 1, ///< per-node-grid quantized planes
};

/** One point on the node-layout axis of a GpuConfig. */
struct NodeLayoutConfig
{
    NodeLayoutKind kind = NodeLayoutKind::Exact;
    /** Grid resolution per plane, 1..16 bits (quantized layouts only). */
    uint32_t bits_per_plane = 8;

    static NodeLayoutConfig
    exact()
    {
        return NodeLayoutConfig{};
    }

    static NodeLayoutConfig
    quantized(uint32_t bits = 8)
    {
        NodeLayoutConfig c;
        c.kind = NodeLayoutKind::Quantized;
        c.bits_per_plane = bits;
        return c;
    }

    bool isQuantized() const { return kind == NodeLayoutKind::Quantized; }

    /** Simulated footprint of one node under this layout. */
    uint64_t
    nodeBytes() const
    {
        if (!isQuantized())
            return WideBvh::kNodeBytes;
        // 16 B header + 24 B refs + 36 planes at bits_per_plane each.
        return 16 + 24 +
               (36ull * bits_per_plane + 7) / 8;
    }

    /** Simulated byte address of node @p index under this layout. */
    uint64_t
    nodeAddress(uint32_t index) const
    {
        return WideBvh::kNodeBase + index * nodeBytes();
    }

    /** Short tag for record/display keys: "exact", "q8", "q12", ... */
    std::string name() const;

    bool
    operator==(const NodeLayoutConfig &o) const
    {
        return kind == o.kind &&
               (!isQuantized() || bits_per_plane == o.bits_per_plane);
    }
    bool operator!=(const NodeLayoutConfig &o) const { return !(*this == o); }
};

/**
 * Decoded view of a WideBvh re-encoded under a quantized layout.
 *
 * build() quantizes every node's child planes to the layout grid and
 * stores the DECODED (conservatively inflated) boxes as plain
 * WideNodes, so traversal code paths are shared with the exact layout.
 * Child refs, counts and the primitive index list are untouched — only
 * boxes change.
 */
class QuantizedBvh
{
  public:
    /** Re-encode @p bvh under @p layout (which must be quantized). */
    void build(const WideBvh &bvh, const NodeLayoutConfig &layout);

    bool empty() const { return nodes_.empty(); }
    const NodeLayoutConfig &layout() const { return layout_; }

    /** Decoded node (boxes conservatively contain the exact ones). */
    const WideNode &
    node(uint32_t index) const
    {
        return nodes_[index];
    }

    const std::vector<WideNode> &nodes() const { return nodes_; }

  private:
    NodeLayoutConfig layout_ = NodeLayoutConfig::quantized();
    std::vector<WideNode> nodes_;
};

} // namespace sms

#endif // SMS_BVH_NODE_LAYOUT_HPP
