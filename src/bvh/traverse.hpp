/**
 * @file
 * Functional wide-BVH traversal.
 *
 * Two consumers share the per-node stepping logic defined here:
 *  - the reference traverser (unbounded std::vector stack) used by the
 *    path tracer and by correctness tests, and
 *  - the timing simulator, which runs the same steps through the
 *    hierarchical hardware stack model so images are identical across
 *    all stack configurations (DESIGN.md invariant 2).
 *
 * Traversal follows the paper's Fig. 3 semantics: at an internal node
 * the intersected children are sorted by entry distance; the closest is
 * visited next while the rest are pushed far-to-near.
 */

#ifndef SMS_BVH_TRAVERSE_HPP
#define SMS_BVH_TRAVERSE_HPP

#include <cstdint>

#include "src/bvh/wide_bvh.hpp"
#include "src/geometry/ray.hpp"
#include "src/scene/scene.hpp"

namespace sms {

/** Result of intersecting one wide node's child boxes. */
struct ChildHits
{
    /** Hit children sorted nearest-first. */
    std::array<ChildRef, kWideBvhWidth> refs;
    std::array<float, kWideBvhWidth> t;
    int count = 0;
    /** Number of ray-box tests performed (== child_count of the node). */
    int tests = 0;
};

/**
 * Test a ray against all child AABBs of @p node, returning the hit
 * children sorted nearest-first. Respects ray.tMax so already-found
 * hits prune the result.
 */
ChildHits intersectNodeChildren(const WideNode &node, const Ray &ray);

/**
 * Test a ray against all primitives of a leaf reference.
 *
 * @param any_hit when true, stop at the first accepted hit
 * @param tested  incremented by the number of primitive tests performed
 * @return true when any primitive was hit (hit/ray updated)
 */
bool intersectLeaf(const Scene &scene, const WideBvh &bvh, ChildRef leaf,
                   Ray &ray, HitRecord &hit, bool any_hit, uint32_t &tested);

/** Per-traversal operation counts (basis of instruction counting). */
struct TraversalCounters
{
    uint64_t nodes_visited = 0;
    uint64_t box_tests = 0;
    uint64_t leaf_visits = 0;
    uint64_t prim_tests = 0;
    uint64_t stack_pushes = 0;
    uint64_t stack_pops = 0;
    uint32_t max_stack_depth = 0;
};

/**
 * Reference closest-hit traversal with an unbounded stack.
 *
 * @param counters optional operation counters
 * @return the closest hit (invalid record when the ray misses)
 */
HitRecord traverseClosest(const Scene &scene, const WideBvh &bvh,
                          const Ray &ray,
                          TraversalCounters *counters = nullptr);

/**
 * Reference any-hit traversal (shadow rays): returns true when any
 * primitive intersects the ray segment.
 */
bool traverseAnyHit(const Scene &scene, const WideBvh &bvh, const Ray &ray,
                    TraversalCounters *counters = nullptr);

} // namespace sms

#endif // SMS_BVH_TRAVERSE_HPP
